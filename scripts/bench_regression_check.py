#!/usr/bin/env python3
"""CI bench-regression gate for the ΣVP benches.

Compares freshly produced BENCH_*.json files against the checked-in
baselines in bench/baselines/ and exits nonzero on:

  * interp_throughput: any app whose instrs/sec dropped more than the
    tolerance band (default 25%) below its baseline, or a drop of the
    non-atomic aggregate speedup beyond the band. Wall-clock throughput is
    host-dependent, hence the wide band; the band is a floor, never a
    ratchet (faster results always pass).
  * launch_cache_speedup: ANY hit-rate regression (hits and misses are
    deterministic counters — they must not change at all without a baseline
    update), a missing VP point, or a cache wall-clock speedup dropping
    below the band.
  * app_suite: ANY change to a scenario's sim-domain results (makespan,
    request count, latency percentiles, coalescing counters, ...). The
    whole per-job object is a pure function of the job config, so it is
    compared exactly; only the top-level workers/wall_ms fields are host-
    dependent and ignored.
  * tier_throughput: ANY change to the per-kernel promotion bookkeeping
    (promoted flag, compiles, fused superinstruction counts — all pure
    functions of the launch stream), or a Tier-2 throughput/speedup drop
    beyond the tolerance band.
  * fleet_scale: shard_determinism must be true (sharded runs byte-identical
    at --shards {1,2,4,8}); per-point resident_bytes/sync_rounds/
    fabric_messages compared exactly (pure functions of the scenario); VPs/s
    banded like the other wall-clock throughputs.
  * multigpu_placement: placement_determinism must be true (multi-GPU runs
    byte-identical across workers x shards); per-point makespans, speedups
    and placement/migration counters compared exactly (all sim-domain);
    jobs/s banded like the other wall-clock throughputs.

Divergence regressions (parallel interpreter vs serial profile, cached vs
uncached byte-identity) are enforced by the benches themselves via nonzero
exit codes, upstream of this gate.

Usage:
  bench_regression_check.py --baseline-dir bench/baselines \
      [--interp BENCH_interp.json] [--cache BENCH_launch_cache_speedup.json] \
      [--app-suite BENCH_app_suite.json] [--tolerance 0.25] [--update]

--update rewrites the baselines from the supplied results instead of
checking (for intentional perf/behaviour changes; commit the diff).
"""

import argparse
import json
import os
import pathlib
import shutil
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}")


def ok(msg):
    print(f"  ok: {msg}")


def load(path):
    with open(path) as f:
        return json.load(f)


def check_interp(baseline, current, tolerance):
    print(f"== interp_throughput (tolerance: -{tolerance:.0%} throughput)")
    base_apps = {a["app"]: a for a in baseline["apps"]}
    cur_apps = {a["app"]: a for a in current["apps"]}
    for app, base in sorted(base_apps.items()):
        cur = cur_apps.get(app)
        if cur is None:
            fail(f"interp: app '{app}' disappeared from the bench")
            continue
        base_runs = {r["workers"]: r for r in base["runs"]}
        cur_runs = {r["workers"]: r for r in cur["runs"]}
        for workers, base_run in sorted(base_runs.items()):
            cur_run = cur_runs.get(workers)
            if cur_run is None:
                fail(f"interp: {app} workers={workers} missing from the bench")
                continue
            floor = base_run["instrs_per_sec"] * (1.0 - tolerance)
            ips = cur_run["instrs_per_sec"]
            if ips < floor:
                fail(
                    f"interp: {app} workers={workers} throughput "
                    f"{ips / 1e6:.1f} Minstr/s < floor {floor / 1e6:.1f} "
                    f"(baseline {base_run['instrs_per_sec'] / 1e6:.1f})"
                )
            else:
                ok(f"{app} workers={workers}: {ips / 1e6:.1f} Minstr/s "
                   f">= floor {floor / 1e6:.1f}")
    base_speedup = baseline.get("nonatomic_speedup_max_workers_vs_1", 1.0)
    cur_speedup = current.get("nonatomic_speedup_max_workers_vs_1", 1.0)
    if base_speedup > 1.0:
        floor = base_speedup * (1.0 - tolerance)
        if cur_speedup < floor:
            fail(f"interp: parallel speedup {cur_speedup:.2f}x < floor {floor:.2f}x")
        else:
            ok(f"parallel speedup {cur_speedup:.2f}x >= floor {floor:.2f}x")


def hit_rate(point):
    total = point["hits"] + point["misses"]
    return point["hits"] / total if total else 0.0


def check_cache(baseline, current, tolerance):
    print(f"== launch_cache_speedup (hit rate: exact; speedup: -{tolerance:.0%})")
    base_points = {p["vps"]: p for p in baseline["points"]}
    cur_points = {p["vps"]: p for p in current["points"]}
    for vps, base in sorted(base_points.items()):
        cur = cur_points.get(vps)
        if cur is None:
            fail(f"cache: vps={vps} point missing from the bench")
            continue
        # Hits/misses are sim-domain deterministic: any change is a real
        # behavioural regression (or an intentional change -> --update).
        if (cur["hits"], cur["misses"]) != (base["hits"], base["misses"]):
            fail(
                f"cache: vps={vps} hit/miss counts changed: "
                f"{cur['hits']}/{cur['misses']} vs baseline "
                f"{base['hits']}/{base['misses']}"
            )
        elif hit_rate(cur) < hit_rate(base):
            fail(f"cache: vps={vps} hit rate regressed "
                 f"{hit_rate(cur):.3f} < {hit_rate(base):.3f}")
        else:
            ok(f"vps={vps}: hit rate {hit_rate(cur):.3f}, "
               f"hits/misses {cur['hits']}/{cur['misses']} unchanged")
        floor = base["speedup"] * (1.0 - tolerance)
        if cur["speedup"] < floor:
            fail(f"cache: vps={vps} speedup {cur['speedup']:.2f}x < floor {floor:.2f}x "
                 f"(baseline {base['speedup']:.2f}x)")
        else:
            ok(f"vps={vps}: speedup {cur['speedup']:.2f}x >= floor {floor:.2f}x")
    base_shared = baseline.get("shared_sweep")
    cur_shared = current.get("shared_sweep")
    if base_shared and cur_shared:
        if (cur_shared["hits"], cur_shared["misses"]) != (
            base_shared["hits"], base_shared["misses"]
        ):
            fail("cache: shared-sweep hit/miss counts changed: "
                 f"{cur_shared['hits']}/{cur_shared['misses']} vs "
                 f"{base_shared['hits']}/{base_shared['misses']}")
        else:
            ok(f"shared sweep: hits/misses "
               f"{cur_shared['hits']}/{cur_shared['misses']} unchanged")


def check_tier(baseline, current, tolerance):
    print(f"== tier_throughput (promotion bookkeeping: exact; throughput: -{tolerance:.0%})")
    base_kernels = {k["kernel"]: k for k in baseline["kernels"]}
    cur_kernels = {k["kernel"]: k for k in current["kernels"]}
    for name, base in sorted(base_kernels.items()):
        cur = cur_kernels.get(name)
        if cur is None:
            fail(f"tier: kernel '{name}' disappeared from the bench")
            continue
        # Promotion decisions and lowering stats are pure functions of the
        # launch stream: any change is a behavioural regression (or an
        # intentional policy change -> --update).
        exact = ("promoted", "compiles", "fused_superinsts", "instrs")
        changed = [f for f in exact if cur.get(f) != base.get(f)]
        if changed:
            fail(f"tier: {name} promotion bookkeeping changed "
                 f"({', '.join(f'{f}: {base.get(f)} -> {cur.get(f)}' for f in changed)})")
        else:
            ok(f"{name}: promoted={base['promoted']}, "
               f"fused={base['fused_superinsts']} unchanged")
        floor = base["t2_minstr_per_sec"] * (1.0 - tolerance)
        if cur["t2_minstr_per_sec"] < floor:
            fail(f"tier: {name} Tier-2 throughput {cur['t2_minstr_per_sec']:.1f} "
                 f"Minstr/s < floor {floor:.1f} "
                 f"(baseline {base['t2_minstr_per_sec']:.1f})")
        else:
            ok(f"{name}: {cur['t2_minstr_per_sec']:.1f} Minstr/s >= floor {floor:.1f}")
        if base.get("promoted") and base.get("speedup", 0.0) > 1.0:
            sfloor = base["speedup"] * (1.0 - tolerance)
            if cur.get("speedup", 0.0) < sfloor:
                fail(f"tier: {name} speedup {cur.get('speedup', 0.0):.2f}x < "
                     f"floor {sfloor:.2f}x (baseline {base['speedup']:.2f}x)")
    for name in sorted(set(cur_kernels) - set(base_kernels)):
        fail(f"tier: new kernel '{name}' has no baseline "
             f"(run with --update to record it)")
    for field in ("promoted_kernels", "total_compiles", "total_fused_superinsts"):
        if current.get(field) != baseline.get(field):
            fail(f"tier: {field} changed {baseline.get(field)} -> {current.get(field)}")
        else:
            ok(f"{field}: {baseline.get(field)} unchanged")


def check_fleet(baseline, current, tolerance):
    print(f"== fleet_scale (determinism/resident: exact; VPs/s: -{tolerance:.0%})")
    # The bench exits nonzero itself on divergence; the recorded flag guards
    # against a stale JSON from a run whose exit code was ignored.
    if current.get("shard_determinism") is not True:
        fail("fleet: shard_determinism is not true — sharded runs diverged")
    else:
        ok("shard determinism: byte-identical across --shards {1,2,4,8}")
    base_points = {p["vps"]: p for p in baseline["points"]}
    cur_points = {p["vps"]: p for p in current["points"]}
    for vps, base in sorted(base_points.items()):
        cur = cur_points.get(vps)
        if cur is None:
            fail(f"fleet: vps={vps} point missing from the bench")
            continue
        # Resident bytes and sync rounds are pure functions of the scenario:
        # any change is behavioural (or an intentional change -> --update).
        exact = ("domains", "resident_bytes", "sync_rounds", "fabric_messages")
        changed = [f for f in exact if cur.get(f) != base.get(f)]
        if changed:
            fail(f"fleet: vps={vps} deterministic fields changed "
                 f"({', '.join(f'{f}: {base.get(f)} -> {cur.get(f)}' for f in changed)})")
        else:
            ok(f"vps={vps}: {base['domains']} domains, "
               f"{base['resident_bytes']} resident bytes "
               f"({cur['bytes_per_vp']:.1f} B/VP) unchanged")
        floor = base["vps_per_sec"] * (1.0 - tolerance)
        if cur["vps_per_sec"] < floor:
            fail(f"fleet: vps={vps} throughput {cur['vps_per_sec']:.0f} VPs/s "
                 f"< floor {floor:.0f} (baseline {base['vps_per_sec']:.0f})")
        else:
            ok(f"vps={vps}: {cur['vps_per_sec']:.0f} VPs/s >= floor {floor:.0f}")
    db = current.get("dispatch_bound", {})
    if db:
        ok(f"dispatch-bound {db.get('vps')}-VP point: "
           f"{db.get('shard_speedup', 0.0):.2f}x at 8 shards "
           f"({db.get('host_cores')} host cores; informational)")


def check_multigpu(baseline, current, tolerance):
    print(f"== multigpu_placement (sim-domain: exact; jobs/s: -{tolerance:.0%})")
    # The bench exits nonzero itself on divergence; the recorded flag guards
    # against a stale JSON from a run whose exit code was ignored.
    if current.get("placement_determinism") is not True:
        fail("multigpu: placement_determinism is not true — "
             "multi-GPU runs diverged across workers/shards")
    else:
        ok("placement determinism: byte-identical across workers x shards")
    base_points = {p["label"]: p for p in baseline["points"]}
    cur_points = {p["label"]: p for p in current["points"]}
    for label, base in sorted(base_points.items()):
        cur = cur_points.get(label)
        if cur is None:
            fail(f"multigpu: point '{label}' missing from the bench")
            continue
        # Makespans, speedups and placement/migration counters are pure
        # functions of the scenario: any change is behavioural (or an
        # intentional change -> --update).
        exact = ("devices", "makespan_us", "speedup_vs_1", "jobs",
                 "migrations", "migrated_bytes")
        changed = [f for f in exact if cur.get(f) != base.get(f)]
        if changed:
            fail(f"multigpu: {label} deterministic fields changed "
                 f"({', '.join(f'{f}: {base.get(f)} -> {cur.get(f)}' for f in changed)})")
        else:
            ok(f"{label}: makespan {base['makespan_us']:.0f} us "
               f"({base['speedup_vs_1']:.2f}x), {base['migrations']} migrations "
               f"unchanged")
        floor = base["jobs_per_sec"] * (1.0 - tolerance)
        if cur["jobs_per_sec"] < floor:
            fail(f"multigpu: {label} throughput {cur['jobs_per_sec']:.0f} jobs/s "
                 f"< floor {floor:.0f} (baseline {base['jobs_per_sec']:.0f})")
        else:
            ok(f"{label}: {cur['jobs_per_sec']:.0f} jobs/s >= floor {floor:.0f}")
    for label in sorted(set(cur_points) - set(base_points)):
        fail(f"multigpu: new point '{label}' has no baseline "
             f"(run with --update to record it)")
    for block in ("placement", "migration"):
        if current.get(block) != baseline.get(block):
            fail(f"multigpu: {block} block changed "
                 f"{baseline.get(block)} -> {current.get(block)}")
        else:
            ok(f"{block} block unchanged")


def check_app_suite(baseline, current, tolerance):
    del tolerance  # sim-domain results are exact, not banded
    print("== app_suite (sim-domain scenario results: exact)")
    base_jobs = {j["name"]: j for j in baseline["jobs"]}
    cur_jobs = {j["name"]: j for j in current["jobs"]}
    for name, base in sorted(base_jobs.items()):
        cur = cur_jobs.get(name)
        if cur is None:
            fail(f"app_suite: scenario '{name}' disappeared from the bench")
            continue
        if cur != base:
            diffs = [
                k for k in sorted(set(base) | set(cur))
                if base.get(k) != cur.get(k)
            ]
            fail(f"app_suite: {name} results changed (fields: {', '.join(diffs)})")
        else:
            lat = base.get("latency", {})
            ok(f"{name}: p50/p95/p99 "
               f"{lat.get('p50_us', 0):.0f}/{lat.get('p95_us', 0):.0f}/"
               f"{lat.get('p99_us', 0):.0f} us, "
               f"{base.get('coalesced_groups', 0)} groups unchanged")
    for name in sorted(set(cur_jobs) - set(base_jobs)):
        fail(f"app_suite: new scenario '{name}' has no baseline "
             f"(run with --update to record it)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        type=pathlib.Path)
    parser.add_argument("--interp", type=pathlib.Path,
                        help="fresh BENCH_interp.json to check")
    parser.add_argument("--cache", type=pathlib.Path,
                        help="fresh BENCH_launch_cache_speedup.json to check")
    parser.add_argument("--app-suite", type=pathlib.Path,
                        help="fresh BENCH_app_suite.json to check")
    parser.add_argument("--tier", type=pathlib.Path,
                        help="fresh BENCH_tier.json to check")
    parser.add_argument("--fleet", type=pathlib.Path,
                        help="fresh BENCH_fleet_scale.json to check")
    parser.add_argument("--multigpu", type=pathlib.Path,
                        help="fresh BENCH_multigpu_placement.json to check")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional throughput drop (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from the supplied results")
    args = parser.parse_args()

    pairs = []
    if args.interp:
        pairs.append(("interp_throughput.json", args.interp, check_interp))
    if args.cache:
        pairs.append(("launch_cache_speedup.json", args.cache, check_cache))
    if args.app_suite:
        pairs.append(("app_suite.json", args.app_suite, check_app_suite))
    if args.tier:
        pairs.append(("tier_throughput.json", args.tier, check_tier))
    if args.fleet:
        pairs.append(("fleet_scale.json", args.fleet, check_fleet))
    if args.multigpu:
        pairs.append(("multigpu_placement.json", args.multigpu, check_multigpu))
    if not pairs:
        parser.error(
            "nothing to do: pass --interp, --cache, --app-suite, --tier, "
            "--fleet, and/or --multigpu")

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for name, path, _ in pairs:
            # Atomic publish: never leave a torn baseline if interrupted.
            dest = args.baseline_dir / name
            tmp = dest.with_suffix(dest.suffix + f".tmp.{os.getpid()}")
            shutil.copyfile(path, tmp)
            os.replace(tmp, dest)
            print(f"updated {dest} from {path}")
        return 0

    for name, path, check in pairs:
        baseline_path = args.baseline_dir / name
        if not baseline_path.exists():
            fail(f"missing baseline {baseline_path} (run with --update to create)")
            continue
        check(load(baseline_path), load(path), args.tolerance)

    if FAILURES:
        print(f"\nbench regression gate: {len(FAILURES)} failure(s)")
        return 1
    print("\nbench regression gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
