file(REMOVE_RECURSE
  "CMakeFiles/test_workload_correctness.dir/test_workload_correctness.cpp.o"
  "CMakeFiles/test_workload_correctness.dir/test_workload_correctness.cpp.o.d"
  "test_workload_correctness"
  "test_workload_correctness.pdb"
  "test_workload_correctness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
