# Empty dependencies file for test_workload_correctness.
# This may be replaced when dependencies are built.
