# Empty dependencies file for test_coalescing_window.
# This may be replaced when dependencies are built.
