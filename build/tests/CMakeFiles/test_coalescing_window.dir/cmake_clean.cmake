file(REMOVE_RECURSE
  "CMakeFiles/test_coalescing_window.dir/test_coalescing_window.cpp.o"
  "CMakeFiles/test_coalescing_window.dir/test_coalescing_window.cpp.o.d"
  "test_coalescing_window"
  "test_coalescing_window.pdb"
  "test_coalescing_window[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coalescing_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
