file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_properties.dir/test_scheduler_properties.cpp.o"
  "CMakeFiles/test_scheduler_properties.dir/test_scheduler_properties.cpp.o.d"
  "test_scheduler_properties"
  "test_scheduler_properties.pdb"
  "test_scheduler_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
