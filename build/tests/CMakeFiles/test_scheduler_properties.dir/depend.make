# Empty dependencies file for test_scheduler_properties.
# This may be replaced when dependencies are built.
