file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_models.dir/test_pipeline_models.cpp.o"
  "CMakeFiles/test_pipeline_models.dir/test_pipeline_models.cpp.o.d"
  "test_pipeline_models"
  "test_pipeline_models.pdb"
  "test_pipeline_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
