# Empty dependencies file for test_pipeline_models.
# This may be replaced when dependencies are built.
