
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/run/CMakeFiles/sigvp_run.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sigvp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sigvp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/sigvp_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/vp/CMakeFiles/sigvp_vp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sigvp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/sigvp_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/sigvp_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/sigvp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sigvp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sigvp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sigvp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sigvp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sigvp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
