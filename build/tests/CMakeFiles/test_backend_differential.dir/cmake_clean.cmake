file(REMOVE_RECURSE
  "CMakeFiles/test_backend_differential.dir/test_backend_differential.cpp.o"
  "CMakeFiles/test_backend_differential.dir/test_backend_differential.cpp.o.d"
  "test_backend_differential"
  "test_backend_differential.pdb"
  "test_backend_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
