# Empty dependencies file for test_backend_differential.
# This may be replaced when dependencies are built.
