# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_ipc[1]_include.cmake")
include("/root/repo/build/tests/test_dispatcher[1]_include.cmake")
include("/root/repo/build/tests/test_vp[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_workload_correctness[1]_include.cmake")
include("/root/repo/build/tests/test_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_models[1]_include.cmake")
include("/root/repo/build/tests/test_end_to_end[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler_properties[1]_include.cmake")
include("/root/repo/build/tests/test_backend_differential[1]_include.cmake")
include("/root/repo/build/tests/test_coalescing_window[1]_include.cmake")
