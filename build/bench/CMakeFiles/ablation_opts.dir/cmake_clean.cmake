file(REMOVE_RECURSE
  "CMakeFiles/ablation_opts.dir/ablation_opts.cpp.o"
  "CMakeFiles/ablation_opts.dir/ablation_opts.cpp.o.d"
  "ablation_opts"
  "ablation_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
