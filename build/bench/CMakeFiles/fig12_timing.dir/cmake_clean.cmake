file(REMOVE_RECURSE
  "CMakeFiles/fig12_timing.dir/fig12_timing.cpp.o"
  "CMakeFiles/fig12_timing.dir/fig12_timing.cpp.o.d"
  "fig12_timing"
  "fig12_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
