# Empty compiler generated dependencies file for fig12_timing.
# This may be replaced when dependencies are built.
