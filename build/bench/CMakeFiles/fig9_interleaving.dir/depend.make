# Empty dependencies file for fig9_interleaving.
# This may be replaced when dependencies are built.
