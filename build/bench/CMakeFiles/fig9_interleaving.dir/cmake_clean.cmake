file(REMOVE_RECURSE
  "CMakeFiles/fig9_interleaving.dir/fig9_interleaving.cpp.o"
  "CMakeFiles/fig9_interleaving.dir/fig9_interleaving.cpp.o.d"
  "fig9_interleaving"
  "fig9_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
