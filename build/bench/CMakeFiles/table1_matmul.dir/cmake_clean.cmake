file(REMOVE_RECURSE
  "CMakeFiles/table1_matmul.dir/table1_matmul.cpp.o"
  "CMakeFiles/table1_matmul.dir/table1_matmul.cpp.o.d"
  "table1_matmul"
  "table1_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
