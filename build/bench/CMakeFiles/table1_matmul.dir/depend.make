# Empty dependencies file for table1_matmul.
# This may be replaced when dependencies are built.
