file(REMOVE_RECURSE
  "CMakeFiles/ablation_ipc.dir/ablation_ipc.cpp.o"
  "CMakeFiles/ablation_ipc.dir/ablation_ipc.cpp.o.d"
  "ablation_ipc"
  "ablation_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
