file(REMOVE_RECURSE
  "CMakeFiles/fig11_suite.dir/fig11_suite.cpp.o"
  "CMakeFiles/fig11_suite.dir/fig11_suite.cpp.o.d"
  "fig11_suite"
  "fig11_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
