# Empty dependencies file for fig11_suite.
# This may be replaced when dependencies are built.
