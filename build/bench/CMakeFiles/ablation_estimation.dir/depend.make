# Empty dependencies file for ablation_estimation.
# This may be replaced when dependencies are built.
