file(REMOVE_RECURSE
  "CMakeFiles/ablation_estimation.dir/ablation_estimation.cpp.o"
  "CMakeFiles/ablation_estimation.dir/ablation_estimation.cpp.o.d"
  "ablation_estimation"
  "ablation_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
