# Empty compiler generated dependencies file for sigvp_vp.
# This may be replaced when dependencies are built.
