file(REMOVE_RECURSE
  "libsigvp_vp.a"
)
