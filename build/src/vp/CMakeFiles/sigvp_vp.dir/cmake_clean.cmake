file(REMOVE_RECURSE
  "CMakeFiles/sigvp_vp.dir/emulation_driver.cpp.o"
  "CMakeFiles/sigvp_vp.dir/emulation_driver.cpp.o.d"
  "CMakeFiles/sigvp_vp.dir/native_driver.cpp.o"
  "CMakeFiles/sigvp_vp.dir/native_driver.cpp.o.d"
  "CMakeFiles/sigvp_vp.dir/processor.cpp.o"
  "CMakeFiles/sigvp_vp.dir/processor.cpp.o.d"
  "CMakeFiles/sigvp_vp.dir/sigmavp_driver.cpp.o"
  "CMakeFiles/sigvp_vp.dir/sigmavp_driver.cpp.o.d"
  "libsigvp_vp.a"
  "libsigvp_vp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_vp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
