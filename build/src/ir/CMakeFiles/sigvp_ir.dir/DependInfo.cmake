
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/sigvp_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/sigvp_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/disasm.cpp" "src/ir/CMakeFiles/sigvp_ir.dir/disasm.cpp.o" "gcc" "src/ir/CMakeFiles/sigvp_ir.dir/disasm.cpp.o.d"
  "/root/repo/src/ir/opcode.cpp" "src/ir/CMakeFiles/sigvp_ir.dir/opcode.cpp.o" "gcc" "src/ir/CMakeFiles/sigvp_ir.dir/opcode.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/ir/CMakeFiles/sigvp_ir.dir/program.cpp.o" "gcc" "src/ir/CMakeFiles/sigvp_ir.dir/program.cpp.o.d"
  "/root/repo/src/ir/validate.cpp" "src/ir/CMakeFiles/sigvp_ir.dir/validate.cpp.o" "gcc" "src/ir/CMakeFiles/sigvp_ir.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sigvp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
