file(REMOVE_RECURSE
  "CMakeFiles/sigvp_ir.dir/builder.cpp.o"
  "CMakeFiles/sigvp_ir.dir/builder.cpp.o.d"
  "CMakeFiles/sigvp_ir.dir/disasm.cpp.o"
  "CMakeFiles/sigvp_ir.dir/disasm.cpp.o.d"
  "CMakeFiles/sigvp_ir.dir/opcode.cpp.o"
  "CMakeFiles/sigvp_ir.dir/opcode.cpp.o.d"
  "CMakeFiles/sigvp_ir.dir/program.cpp.o"
  "CMakeFiles/sigvp_ir.dir/program.cpp.o.d"
  "CMakeFiles/sigvp_ir.dir/validate.cpp.o"
  "CMakeFiles/sigvp_ir.dir/validate.cpp.o.d"
  "libsigvp_ir.a"
  "libsigvp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
