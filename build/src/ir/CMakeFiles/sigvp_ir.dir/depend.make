# Empty dependencies file for sigvp_ir.
# This may be replaced when dependencies are built.
