file(REMOVE_RECURSE
  "libsigvp_ir.a"
)
