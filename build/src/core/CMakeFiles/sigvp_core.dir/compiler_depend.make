# Empty compiler generated dependencies file for sigvp_core.
# This may be replaced when dependencies are built.
