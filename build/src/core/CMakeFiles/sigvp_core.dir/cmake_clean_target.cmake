file(REMOVE_RECURSE
  "libsigvp_core.a"
)
