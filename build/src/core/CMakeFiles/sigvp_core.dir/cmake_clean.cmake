file(REMOVE_RECURSE
  "CMakeFiles/sigvp_core.dir/app_run.cpp.o"
  "CMakeFiles/sigvp_core.dir/app_run.cpp.o.d"
  "CMakeFiles/sigvp_core.dir/scenario.cpp.o"
  "CMakeFiles/sigvp_core.dir/scenario.cpp.o.d"
  "libsigvp_core.a"
  "libsigvp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
