# Empty compiler generated dependencies file for sigvp_ipc.
# This may be replaced when dependencies are built.
