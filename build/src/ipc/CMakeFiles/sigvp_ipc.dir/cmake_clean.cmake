file(REMOVE_RECURSE
  "CMakeFiles/sigvp_ipc.dir/ipc_manager.cpp.o"
  "CMakeFiles/sigvp_ipc.dir/ipc_manager.cpp.o.d"
  "libsigvp_ipc.a"
  "libsigvp_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
