file(REMOVE_RECURSE
  "libsigvp_ipc.a"
)
