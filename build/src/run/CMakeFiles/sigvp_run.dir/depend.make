# Empty dependencies file for sigvp_run.
# This may be replaced when dependencies are built.
