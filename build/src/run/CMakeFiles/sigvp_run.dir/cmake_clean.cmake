file(REMOVE_RECURSE
  "CMakeFiles/sigvp_run.dir/json_writer.cpp.o"
  "CMakeFiles/sigvp_run.dir/json_writer.cpp.o.d"
  "CMakeFiles/sigvp_run.dir/sweep.cpp.o"
  "CMakeFiles/sigvp_run.dir/sweep.cpp.o.d"
  "CMakeFiles/sigvp_run.dir/thread_pool.cpp.o"
  "CMakeFiles/sigvp_run.dir/thread_pool.cpp.o.d"
  "libsigvp_run.a"
  "libsigvp_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
