file(REMOVE_RECURSE
  "libsigvp_run.a"
)
