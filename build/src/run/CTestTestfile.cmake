# CMake generated Testfile for 
# Source directory: /root/repo/src/run
# Build directory: /root/repo/build/src/run
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
