file(REMOVE_RECURSE
  "CMakeFiles/sigvp_sim.dir/engine.cpp.o"
  "CMakeFiles/sigvp_sim.dir/engine.cpp.o.d"
  "CMakeFiles/sigvp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/sigvp_sim.dir/event_queue.cpp.o.d"
  "libsigvp_sim.a"
  "libsigvp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
