# Empty dependencies file for sigvp_sim.
# This may be replaced when dependencies are built.
