file(REMOVE_RECURSE
  "libsigvp_sim.a"
)
