# Empty dependencies file for sigvp_util.
# This may be replaced when dependencies are built.
