file(REMOVE_RECURSE
  "CMakeFiles/sigvp_util.dir/log.cpp.o"
  "CMakeFiles/sigvp_util.dir/log.cpp.o.d"
  "CMakeFiles/sigvp_util.dir/stats.cpp.o"
  "CMakeFiles/sigvp_util.dir/stats.cpp.o.d"
  "CMakeFiles/sigvp_util.dir/table.cpp.o"
  "CMakeFiles/sigvp_util.dir/table.cpp.o.d"
  "libsigvp_util.a"
  "libsigvp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
