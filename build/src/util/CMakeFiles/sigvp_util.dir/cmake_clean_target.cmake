file(REMOVE_RECURSE
  "libsigvp_util.a"
)
