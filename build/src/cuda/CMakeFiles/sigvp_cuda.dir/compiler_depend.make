# Empty compiler generated dependencies file for sigvp_cuda.
# This may be replaced when dependencies are built.
