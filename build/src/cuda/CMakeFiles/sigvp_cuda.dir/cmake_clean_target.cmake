file(REMOVE_RECURSE
  "libsigvp_cuda.a"
)
