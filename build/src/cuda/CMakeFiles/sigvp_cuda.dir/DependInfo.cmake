
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cuda/registry.cpp" "src/cuda/CMakeFiles/sigvp_cuda.dir/registry.cpp.o" "gcc" "src/cuda/CMakeFiles/sigvp_cuda.dir/registry.cpp.o.d"
  "/root/repo/src/cuda/runtime.cpp" "src/cuda/CMakeFiles/sigvp_cuda.dir/runtime.cpp.o" "gcc" "src/cuda/CMakeFiles/sigvp_cuda.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/sigvp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sigvp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sigvp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sigvp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sigvp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sigvp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
