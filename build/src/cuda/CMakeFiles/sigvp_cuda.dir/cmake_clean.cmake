file(REMOVE_RECURSE
  "CMakeFiles/sigvp_cuda.dir/registry.cpp.o"
  "CMakeFiles/sigvp_cuda.dir/registry.cpp.o.d"
  "CMakeFiles/sigvp_cuda.dir/runtime.cpp.o"
  "CMakeFiles/sigvp_cuda.dir/runtime.cpp.o.d"
  "libsigvp_cuda.a"
  "libsigvp_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
