file(REMOVE_RECURSE
  "libsigvp_sched.a"
)
