# Empty compiler generated dependencies file for sigvp_sched.
# This may be replaced when dependencies are built.
