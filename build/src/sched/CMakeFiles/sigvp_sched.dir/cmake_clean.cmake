file(REMOVE_RECURSE
  "CMakeFiles/sigvp_sched.dir/coalescer.cpp.o"
  "CMakeFiles/sigvp_sched.dir/coalescer.cpp.o.d"
  "CMakeFiles/sigvp_sched.dir/dispatcher.cpp.o"
  "CMakeFiles/sigvp_sched.dir/dispatcher.cpp.o.d"
  "libsigvp_sched.a"
  "libsigvp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
