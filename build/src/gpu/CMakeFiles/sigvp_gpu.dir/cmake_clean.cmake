file(REMOVE_RECURSE
  "CMakeFiles/sigvp_gpu.dir/arch.cpp.o"
  "CMakeFiles/sigvp_gpu.dir/arch.cpp.o.d"
  "CMakeFiles/sigvp_gpu.dir/cache.cpp.o"
  "CMakeFiles/sigvp_gpu.dir/cache.cpp.o.d"
  "CMakeFiles/sigvp_gpu.dir/cost_model.cpp.o"
  "CMakeFiles/sigvp_gpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/sigvp_gpu.dir/device.cpp.o"
  "CMakeFiles/sigvp_gpu.dir/device.cpp.o.d"
  "CMakeFiles/sigvp_gpu.dir/offline.cpp.o"
  "CMakeFiles/sigvp_gpu.dir/offline.cpp.o.d"
  "CMakeFiles/sigvp_gpu.dir/prob_cache.cpp.o"
  "CMakeFiles/sigvp_gpu.dir/prob_cache.cpp.o.d"
  "libsigvp_gpu.a"
  "libsigvp_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
