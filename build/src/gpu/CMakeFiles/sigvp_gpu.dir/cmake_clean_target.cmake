file(REMOVE_RECURSE
  "libsigvp_gpu.a"
)
