# Empty dependencies file for sigvp_gpu.
# This may be replaced when dependencies are built.
