
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/arch.cpp" "src/gpu/CMakeFiles/sigvp_gpu.dir/arch.cpp.o" "gcc" "src/gpu/CMakeFiles/sigvp_gpu.dir/arch.cpp.o.d"
  "/root/repo/src/gpu/cache.cpp" "src/gpu/CMakeFiles/sigvp_gpu.dir/cache.cpp.o" "gcc" "src/gpu/CMakeFiles/sigvp_gpu.dir/cache.cpp.o.d"
  "/root/repo/src/gpu/cost_model.cpp" "src/gpu/CMakeFiles/sigvp_gpu.dir/cost_model.cpp.o" "gcc" "src/gpu/CMakeFiles/sigvp_gpu.dir/cost_model.cpp.o.d"
  "/root/repo/src/gpu/device.cpp" "src/gpu/CMakeFiles/sigvp_gpu.dir/device.cpp.o" "gcc" "src/gpu/CMakeFiles/sigvp_gpu.dir/device.cpp.o.d"
  "/root/repo/src/gpu/offline.cpp" "src/gpu/CMakeFiles/sigvp_gpu.dir/offline.cpp.o" "gcc" "src/gpu/CMakeFiles/sigvp_gpu.dir/offline.cpp.o.d"
  "/root/repo/src/gpu/prob_cache.cpp" "src/gpu/CMakeFiles/sigvp_gpu.dir/prob_cache.cpp.o" "gcc" "src/gpu/CMakeFiles/sigvp_gpu.dir/prob_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sigvp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sigvp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sigvp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sigvp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sigvp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
