
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/elementwise.cpp" "src/workloads/CMakeFiles/sigvp_workloads.dir/elementwise.cpp.o" "gcc" "src/workloads/CMakeFiles/sigvp_workloads.dir/elementwise.cpp.o.d"
  "/root/repo/src/workloads/loops.cpp" "src/workloads/CMakeFiles/sigvp_workloads.dir/loops.cpp.o" "gcc" "src/workloads/CMakeFiles/sigvp_workloads.dir/loops.cpp.o.d"
  "/root/repo/src/workloads/shared_mem.cpp" "src/workloads/CMakeFiles/sigvp_workloads.dir/shared_mem.cpp.o" "gcc" "src/workloads/CMakeFiles/sigvp_workloads.dir/shared_mem.cpp.o.d"
  "/root/repo/src/workloads/stencil.cpp" "src/workloads/CMakeFiles/sigvp_workloads.dir/stencil.cpp.o" "gcc" "src/workloads/CMakeFiles/sigvp_workloads.dir/stencil.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/sigvp_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/sigvp_workloads.dir/suite.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/sigvp_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/sigvp_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cuda/CMakeFiles/sigvp_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/sigvp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sigvp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sigvp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sigvp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sigvp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sigvp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
