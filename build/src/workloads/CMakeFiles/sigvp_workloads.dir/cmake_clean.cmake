file(REMOVE_RECURSE
  "CMakeFiles/sigvp_workloads.dir/elementwise.cpp.o"
  "CMakeFiles/sigvp_workloads.dir/elementwise.cpp.o.d"
  "CMakeFiles/sigvp_workloads.dir/loops.cpp.o"
  "CMakeFiles/sigvp_workloads.dir/loops.cpp.o.d"
  "CMakeFiles/sigvp_workloads.dir/shared_mem.cpp.o"
  "CMakeFiles/sigvp_workloads.dir/shared_mem.cpp.o.d"
  "CMakeFiles/sigvp_workloads.dir/stencil.cpp.o"
  "CMakeFiles/sigvp_workloads.dir/stencil.cpp.o.d"
  "CMakeFiles/sigvp_workloads.dir/suite.cpp.o"
  "CMakeFiles/sigvp_workloads.dir/suite.cpp.o.d"
  "CMakeFiles/sigvp_workloads.dir/workload.cpp.o"
  "CMakeFiles/sigvp_workloads.dir/workload.cpp.o.d"
  "libsigvp_workloads.a"
  "libsigvp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
