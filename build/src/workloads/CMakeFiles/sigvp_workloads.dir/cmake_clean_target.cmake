file(REMOVE_RECURSE
  "libsigvp_workloads.a"
)
