# Empty compiler generated dependencies file for sigvp_workloads.
# This may be replaced when dependencies are built.
