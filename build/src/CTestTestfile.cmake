# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("ir")
subdirs("interp")
subdirs("mem")
subdirs("gpu")
subdirs("cuda")
subdirs("ipc")
subdirs("sched")
subdirs("vp")
subdirs("workloads")
subdirs("estimate")
subdirs("core")
subdirs("run")
