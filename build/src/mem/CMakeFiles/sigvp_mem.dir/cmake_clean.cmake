file(REMOVE_RECURSE
  "CMakeFiles/sigvp_mem.dir/address_space.cpp.o"
  "CMakeFiles/sigvp_mem.dir/address_space.cpp.o.d"
  "CMakeFiles/sigvp_mem.dir/allocator.cpp.o"
  "CMakeFiles/sigvp_mem.dir/allocator.cpp.o.d"
  "libsigvp_mem.a"
  "libsigvp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
