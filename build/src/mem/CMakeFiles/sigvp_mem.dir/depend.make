# Empty dependencies file for sigvp_mem.
# This may be replaced when dependencies are built.
