file(REMOVE_RECURSE
  "libsigvp_mem.a"
)
