# Empty dependencies file for sigvp_estimate.
# This may be replaced when dependencies are built.
