file(REMOVE_RECURSE
  "libsigvp_estimate.a"
)
