file(REMOVE_RECURSE
  "CMakeFiles/sigvp_estimate.dir/estimator.cpp.o"
  "CMakeFiles/sigvp_estimate.dir/estimator.cpp.o.d"
  "libsigvp_estimate.a"
  "libsigvp_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
