file(REMOVE_RECURSE
  "libsigvp_interp.a"
)
