# Empty compiler generated dependencies file for sigvp_interp.
# This may be replaced when dependencies are built.
