# Empty dependencies file for sigvp_interp.
# This may be replaced when dependencies are built.
