file(REMOVE_RECURSE
  "CMakeFiles/sigvp_interp.dir/interpreter.cpp.o"
  "CMakeFiles/sigvp_interp.dir/interpreter.cpp.o.d"
  "libsigvp_interp.a"
  "libsigvp_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigvp_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
