#include "trace/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/jsonfmt.hpp"

namespace sigvp::trace {

Histogram::Histogram(std::vector<double> bucket_edges) : edges(std::move(bucket_edges)) {
  for (std::size_t i = 1; i < edges.size(); ++i) {
    SIGVP_REQUIRE(edges[i - 1] < edges[i], "histogram edges must be strictly ascending");
  }
  counts.assign(edges.size() + 1, 0);
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(edges.begin(), edges.end(), v);
  ++counts[static_cast<std::size_t>(it - edges.begin())];
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; ceil(q * count) with integer math.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, count - static_cast<std::uint64_t>(
                                             static_cast<double>(count) * (1.0 - q)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      // Overflow bucket (and an exact-max fallback): report the observed max.
      if (i >= edges.size()) return max;
      return std::min(edges[i], max);
    }
  }
  return max;
}

void Histogram::merge(const Histogram& other) {
  if (other.count == 0) return;
  SIGVP_REQUIRE(edges == other.edges, "cannot merge histograms with different bucket edges");
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

namespace {

std::vector<double> make_1_2_5_ladder(double lo, double hi) {
  std::vector<double> edges;
  for (double decade = lo; decade <= hi; decade *= 10.0) {
    edges.push_back(decade);
    if (decade * 2.0 <= hi) edges.push_back(decade * 2.0);
    if (decade * 5.0 <= hi) edges.push_back(decade * 5.0);
  }
  return edges;
}

std::vector<double> make_pow2(double lo, double hi) {
  std::vector<double> edges;
  for (double v = lo; v <= hi; v *= 2.0) edges.push_back(v);
  return edges;
}

}  // namespace

const std::vector<double>& latency_buckets_us() {
  static const std::vector<double> edges = make_1_2_5_ladder(1.0, 5e6);
  return edges;
}

const std::vector<double>& depth_buckets() {
  static const std::vector<double> edges = make_pow2(1.0, 512.0);
  return edges;
}

const std::vector<double>& group_size_buckets() {
  static const std::vector<double> edges = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
  return edges;
}

const std::vector<double>& bytes_buckets() {
  static const std::vector<double> edges = make_pow2(256.0, 16.0 * 1024.0 * 1024.0);
  return edges;
}

Histogram& Metrics::histogram(const std::string& name, const std::vector<double>& edges) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(edges)).first;
  }
  return it->second;
}

void Metrics::merge(const Metrics& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].value += c.value;
  for (const auto& [name, g] : other.gauges_) {
    if (g.set) gauges_[name].record_max(g.value);
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.edges).merge(h);
  }
}

std::string Metrics::to_json(const std::string& indent) const {
  using util::json_escape;
  using util::json_number;
  const std::string in1 = indent + "  ";
  const std::string in2 = in1 + "  ";
  const std::string in3 = in2 + "  ";
  std::string out = "{";
  bool first_section = true;
  const auto open_section = [&](const char* name) {
    out += first_section ? "\n" : ",\n";
    first_section = false;
    out += in1;
    out += '"';
    out += name;
    out += "\": {\n";
  };
  if (!counters_.empty()) {
    open_section("counters");
    bool first = true;
    for (const auto& [name, c] : counters_) {
      if (!first) out += ",\n";
      first = false;
      out += in2 + "\"" + json_escape(name) + "\": " + std::to_string(c.value);
    }
    out += "\n" + in1 + "}";
  }
  if (!gauges_.empty()) {
    open_section("gauges");
    bool first = true;
    for (const auto& [name, g] : gauges_) {
      if (!first) out += ",\n";
      first = false;
      out += in2 + "\"" + json_escape(name) + "\": " + json_number(g.value);
    }
    out += "\n" + in1 + "}";
  }
  if (!histograms_.empty()) {
    open_section("histograms");
    bool first = true;
    for (const auto& [name, h] : histograms_) {
      if (!first) out += ",\n";
      first = false;
      out += in2 + "\"" + json_escape(name) + "\": {\n";
      out += in3 + "\"count\": " + std::to_string(h.count) + ",\n";
      out += in3 + "\"sum\": " + json_number(h.sum) + ",\n";
      out += in3 + "\"min\": " + json_number(h.min) + ",\n";
      out += in3 + "\"max\": " + json_number(h.max) + ",\n";
      out += in3 + "\"mean\": " + json_number(h.mean()) + ",\n";
      out += in3 + "\"p50\": " + json_number(h.quantile(0.50)) + ",\n";
      out += in3 + "\"p95\": " + json_number(h.quantile(0.95)) + ",\n";
      out += in3 + "\"p99\": " + json_number(h.quantile(0.99)) + ",\n";
      out += in3 + "\"edges\": [";
      for (std::size_t i = 0; i < h.edges.size(); ++i) {
        if (i != 0) out += ", ";
        out += json_number(h.edges[i]);
      }
      out += "],\n";
      out += in3 + "\"counts\": [";
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(h.counts[i]);
      }
      out += "]\n";
      out += in2 + "}";
    }
    out += "\n" + in1 + "}";
  }
  out += first_section ? "}" : "\n" + indent + "}";
  return out;
}

}  // namespace sigvp::trace
