#include "trace/trace.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "util/fileio.hpp"
#include "util/jsonfmt.hpp"
#include "util/log.hpp"

namespace sigvp::trace {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};
std::once_flag g_env_once;
std::once_flag g_atexit_once;
std::atomic<bool> g_metrics_forced{false};

// Tracers replaced by enable()/disable() are parked here instead of freed:
// another thread may still hold the raw pointer from an earlier active()
// call. Keeping them reachable also keeps LeakSanitizer quiet in tests that
// flip tracing on and off. Enable/disable happen a handful of times per
// process, so the parked set stays tiny.
std::mutex g_retired_mu;
std::vector<std::unique_ptr<Tracer>>& retired_tracers() {
  static auto* retired = new std::vector<std::unique_ptr<Tracer>>();
  return *retired;
}

void retire(Tracer* t) {
  if (t == nullptr) return;
  std::lock_guard<std::mutex> lock(g_retired_mu);
  retired_tracers().emplace_back(t);
}

void write_at_exit() {
  if (Tracer* t = g_tracer.load(std::memory_order_acquire)) t->write();
}

}  // namespace

Arg arg(std::string key, const std::string& value) {
  return {std::move(key), "\"" + util::json_escape(value) + "\""};
}
Arg arg(std::string key, const char* value) { return arg(std::move(key), std::string(value)); }
Arg arg(std::string key, double value) { return {std::move(key), util::json_number(value)}; }
Arg arg(std::string key, std::uint64_t value) { return {std::move(key), std::to_string(value)}; }
Arg arg(std::string key, int value) { return {std::move(key), std::to_string(value)}; }

Tracer::Tracer(std::string path)
    : path_(std::move(path)), epoch_(std::chrono::steady_clock::now()) {
  host_pid_ = begin_process("sigvp host");
}

Tracer* Tracer::active() {
  std::call_once(g_env_once, [] {
    const char* p = std::getenv("SIGVP_TRACE");
    if (p != nullptr && *p != '\0' && std::string(p) != "0") enable(p);
  });
  return g_tracer.load(std::memory_order_acquire);
}

void Tracer::enable(const std::string& path) {
  retire(g_tracer.exchange(new Tracer(path), std::memory_order_acq_rel));
  std::call_once(g_atexit_once, [] { std::atexit(write_at_exit); });
}

void Tracer::disable() {
  retire(g_tracer.exchange(nullptr, std::memory_order_acq_rel));
}

void Tracer::append(std::string event_json) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event_json));
}

std::uint32_t Tracer::begin_process(const std::string& name) {
  std::uint32_t pid = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pid = next_pid_++;
  }
  append("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
         util::json_escape(name) + "\"}}");
  return pid;
}

void Tracer::thread_name(std::uint32_t pid, std::uint32_t tid, const std::string& name) {
  append("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + util::json_escape(name) + "\"}}");
}

namespace {

std::string render_args(const std::vector<Arg>& args) {
  if (args.empty()) return {};
  std::string out = ",\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += util::json_escape(args[i].key);
    out += "\":";
    out += args[i].json_value;
  }
  out += '}';
  return out;
}

}  // namespace

void Tracer::complete(std::uint32_t pid, std::uint32_t tid, const char* cat,
                      const std::string& name, double ts_us, double dur_us,
                      const std::vector<Arg>& args) {
  append("{\"ph\":\"X\",\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
         ",\"cat\":\"" + cat + "\",\"name\":\"" + util::json_escape(name) +
         "\",\"ts\":" + util::json_number(ts_us) + ",\"dur\":" + util::json_number(dur_us) +
         render_args(args) + "}");
}

void Tracer::instant(std::uint32_t pid, std::uint32_t tid, const char* cat,
                     const std::string& name, double ts_us, const std::vector<Arg>& args) {
  append("{\"ph\":\"i\",\"s\":\"t\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"cat\":\"" + cat + "\",\"name\":\"" +
         util::json_escape(name) + "\",\"ts\":" + util::json_number(ts_us) + render_args(args) +
         "}");
}

void Tracer::counter(std::uint32_t pid, const char* name, double ts_us, double value) {
  append("{\"ph\":\"C\",\"pid\":" + std::to_string(pid) + ",\"tid\":0,\"name\":\"" +
         std::string(name) + "\",\"ts\":" + util::json_number(ts_us) +
         ",\"args\":{\"value\":" + util::json_number(value) + "}}");
}

void Tracer::flow(const char* ph, std::uint32_t pid, std::uint32_t tid, double ts_us,
                  std::uint64_t id, bool binding_next) {
  std::string ev = "{\"ph\":\"" + std::string(ph) + "\",\"pid\":" + std::to_string(pid) +
                   ",\"tid\":" + std::to_string(tid) +
                   ",\"cat\":\"job\",\"name\":\"job\",\"id\":" + std::to_string(id) +
                   ",\"ts\":" + util::json_number(ts_us);
  // Bind the terminating flow arrow to the enclosing slice rather than the
  // next one, so the arrow lands on the span that completed the job.
  if (binding_next) ev += ",\"bp\":\"e\"";
  ev += "}";
  append(std::move(ev));
}

void Tracer::flow_begin(std::uint32_t pid, std::uint32_t tid, double ts_us, std::uint64_t id) {
  flow("s", pid, tid, ts_us, id, false);
}
void Tracer::flow_step(std::uint32_t pid, std::uint32_t tid, double ts_us, std::uint64_t id) {
  flow("t", pid, tid, ts_us, id, false);
}
void Tracer::flow_end(std::uint32_t pid, std::uint32_t tid, double ts_us, std::uint64_t id) {
  flow("f", pid, tid, ts_us, id, true);
}

double Tracer::host_now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t Tracer::host_tid() {
  thread_local std::uint32_t tid = 0;
  if (tid == 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tid = next_host_tid_++;
    }
    thread_name(host_pid_, tid, "host.thread-" + std::to_string(tid));
  }
  return tid;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out += events_[i];
    if (i + 1 != events_.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

bool Tracer::write() const {
  const std::string text = to_json();
  // Atomic publish (temp + fsync + rename): the atexit-hook write path may
  // run while the process is dying, and a torn trace JSON is worse than the
  // previous intact one.
  if (!util::write_file_atomic(path_, text)) {
    SIGVP_WARN("trace") << "failed writing '" << path_ << "'";
    return false;
  }
  return true;
}

bool collecting() {
  static const bool env_metrics = [] {
    const char* p = std::getenv("SIGVP_METRICS");
    return p != nullptr && std::string(p) == "1";
  }();
  return Tracer::active() != nullptr || env_metrics ||
         g_metrics_forced.load(std::memory_order_relaxed);
}

void set_metrics_forced(bool on) { g_metrics_forced.store(on, std::memory_order_relaxed); }

RunTrace::RunTrace(const std::string& label)
    : ipc_requests(&metrics.counter("ipc.requests")),
      jobs_dispatched(&metrics.counter("sched.jobs_dispatched")),
      reorders(&metrics.counter("sched.reorders")),
      coalesced_groups(&metrics.counter("sched.coalesced_groups")),
      coalesced_jobs(&metrics.counter("sched.coalesced_jobs")),
      cache_hits(&metrics.counter("cache.hits")),
      cache_misses(&metrics.counter("cache.misses")),
      cache_bypasses(&metrics.counter("cache.bypasses")),
      tier2_eligible(&metrics.counter("tier2.eligible_launches")),
      job_latency_us(&metrics.histogram("ipc.job_latency_us", latency_buckets_us())),
      queue_wait_us(&metrics.histogram("sched.queue_wait_us", latency_buckets_us())),
      queue_depth(&metrics.histogram("sched.queue_depth", depth_buckets())),
      group_size(&metrics.histogram("sched.coalesce_group_size", group_size_buckets())),
      ipc_payload_bytes(&metrics.histogram("ipc.payload_bytes", bytes_buckets())),
      queue_depth_max(&metrics.gauge("sched.queue_depth_max")) {
  tracer_ = Tracer::active();
  if (tracer_ != nullptr) {
    pid_ = tracer_->begin_process(label);
    tracer_->thread_name(pid_, kTidDispatcher, "sched.dispatcher");
    tracer_->thread_name(pid_, kTidGpuCompute, "gpu.compute");
    tracer_->thread_name(pid_, kTidGpuCopyIn, "gpu.copy-in");
    tracer_->thread_name(pid_, kTidGpuCopyOut, "gpu.copy-out");
    tracer_->thread_name(pid_, kTidIpc, "ipc.transport");
  }
}

void RunTrace::thread_name(std::uint32_t tid, const std::string& name) {
  if (tracer_ != nullptr) tracer_->thread_name(pid_, tid, name);
}

void RunTrace::span(std::uint32_t tid, const char* cat, const std::string& name, SimTime t0,
                    SimTime t1, const std::vector<Arg>& args) {
  if (tracer_ != nullptr) tracer_->complete(pid_, tid, cat, name, t0, t1 - t0, args);
}

void RunTrace::instant(std::uint32_t tid, const char* cat, const std::string& name, SimTime ts,
                       const std::vector<Arg>& args) {
  if (tracer_ != nullptr) tracer_->instant(pid_, tid, cat, name, ts, args);
}

void RunTrace::counter(const char* name, SimTime ts, double value) {
  if (tracer_ != nullptr) tracer_->counter(pid_, name, ts, value);
}

void RunTrace::flow_begin(std::uint32_t tid, SimTime ts, std::uint64_t job_id) {
  if (tracer_ != nullptr) tracer_->flow_begin(pid_, tid, ts, flow_id(job_id));
}
void RunTrace::flow_step(std::uint32_t tid, SimTime ts, std::uint64_t job_id) {
  if (tracer_ != nullptr) tracer_->flow_step(pid_, tid, ts, flow_id(job_id));
}
void RunTrace::flow_end(std::uint32_t tid, SimTime ts, std::uint64_t job_id) {
  if (tracer_ != nullptr) tracer_->flow_end(pid_, tid, ts, flow_id(job_id));
}

}  // namespace sigvp::trace
