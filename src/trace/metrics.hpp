#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sigvp::trace {

/// Monotonic event count. POD on purpose: call sites increment `value`
/// directly, so a disabled registry costs exactly one pointer test.
struct Counter {
  std::uint64_t value = 0;
};

/// Last-written level (queue high-water mark, engine utilization, ...).
/// Merging two registries keeps the maximum, which is the only order-free
/// (and therefore deterministic) combination for levels.
struct Gauge {
  double value = 0.0;
  bool set = false;

  void record(double v) {
    value = v;
    set = true;
  }
  void record_max(double v) {
    if (!set || v > value) value = v;
    set = true;
  }
};

/// Fixed-bucket histogram with Prometheus-style upper-bound edges: bucket i
/// counts samples with `edges[i-1] < v <= edges[i]`, and one overflow bucket
/// holds everything above `edges.back()`. Edges are fixed at registration,
/// so merging registries (the sweep runner folds per-scenario metrics in
/// canonical job order) is an exact bucket-wise sum — no re-binning, no
/// order dependence, bit-identical for any worker count.
struct Histogram {
  std::vector<double> edges;            // ascending upper bounds
  std::vector<std::uint64_t> counts;    // edges.size() + 1 buckets
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  explicit Histogram(std::vector<double> bucket_edges = {});

  void record(double v);

  /// Upper edge of the bucket containing the q-quantile (q in [0,1]); the
  /// overflow bucket reports the exact observed maximum. 0 when empty.
  double quantile(double q) const;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Bucket-wise sum; both histograms must share the same edges.
  void merge(const Histogram& other);
};

// --- canonical bucket ladders -------------------------------------------------
// Shared edges so the same quantity is always binned the same way and any two
// registries that track it can merge. All simulated-time buckets are in µs.

const std::vector<double>& latency_buckets_us();   // 1 µs .. 5 s, 1-2-5 ladder
const std::vector<double>& depth_buckets();        // queue depths, powers of two
const std::vector<double>& group_size_buckets();   // coalescing group sizes
const std::vector<double>& bytes_buckets();        // payload sizes, 256 B .. 16 MB

/// Named registry of counters, gauges and fixed-bucket histograms.
///
/// One instance per scenario run (single-threaded on that scenario's event
/// queue — no locks), merged across a sweep's runs in canonical input order
/// by the SweepRunner. Serialization iterates std::map, so the JSON `metrics`
/// block is deterministic byte-for-byte given deterministic contents.
class Metrics {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// Registers (or finds) a histogram; `edges` only applies on first use.
  Histogram& histogram(const std::string& name, const std::vector<double>& edges);

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }

  /// Folds `other` into this registry: counters add, gauges keep the max,
  /// histograms sum bucket-wise. Call in canonical order for determinism.
  void merge(const Metrics& other);

  /// Deterministic JSON object ({"counters": .., "gauges": .., "histograms":
  /// ..}; empty sections omitted). `indent` is the prefix of the opening
  /// brace's line; nested lines indent by two more spaces.
  std::string to_json(const std::string& indent) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sigvp::trace
