#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/metrics.hpp"

namespace sigvp::trace {

/// One key/value pair for a trace event's "args" object. The value is stored
/// pre-rendered as JSON so one overload set covers strings and numbers.
struct Arg {
  std::string key;
  std::string json_value;
};

Arg arg(std::string key, const std::string& value);
Arg arg(std::string key, const char* value);
Arg arg(std::string key, double value);
Arg arg(std::string key, std::uint64_t value);
Arg arg(std::string key, int value);

/// Process-wide Chrome trace-event collector (chrome://tracing / Perfetto's
/// "trace event" JSON). Disabled by default: `Tracer::active()` returns
/// nullptr unless `SIGVP_TRACE=path.json` is set in the environment or a
/// bench passed `--trace path.json`, so every instrumentation site reduces
/// to one branch on a pointer when tracing is off.
///
/// Timestamp domains — the determinism rule of this subsystem:
///   * Simulated events (IPC, queue, scheduler, GPU engines) carry the
///     scenario's SimTime, already in microseconds — the unit the trace
///     format expects. They are bit-identical for any `--workers`.
///   * Host events (interpreter chunks, sweep workers) carry monotonic
///     steady_clock deltas since enable(). They describe the simulator
///     itself and are naturally run-to-run variable; they live on separate
///     "host" process tracks and never feed the BENCH `metrics` block.
/// No wall-clock time ever enters the deterministic path.
///
/// Events are rendered to JSON strings at emit time and appended under a
/// mutex; `write()` dumps `{"traceEvents":[...]}` to the configured path.
/// enable()/disable() must not race concurrent emitters — benches and tests
/// flip them only while no scenario or interpreter is running.
class Tracer {
 public:
  /// The process tracer, or nullptr when tracing is disabled. First call
  /// reads SIGVP_TRACE once.
  static Tracer* active();

  /// Turns tracing on, writing to `path` (used by `--trace`). Replaces any
  /// previous tracer. Registers an atexit hook so every binary dumps the
  /// trace on normal exit without per-bench plumbing.
  static void enable(const std::string& path);

  /// Drops the tracer (tests). Does not write.
  static void disable();

  /// Allocates a fresh Perfetto "process" id for a group of tracks and
  /// emits its process_name metadata. Thread-safe, strictly increasing.
  std::uint32_t begin_process(const std::string& name);

  void thread_name(std::uint32_t pid, std::uint32_t tid, const std::string& name);

  /// Complete event ("ph":"X"): a span [ts_us, ts_us + dur_us).
  void complete(std::uint32_t pid, std::uint32_t tid, const char* cat,
                const std::string& name, double ts_us, double dur_us,
                const std::vector<Arg>& args = {});

  /// Thread-scoped instant event ("ph":"i").
  void instant(std::uint32_t pid, std::uint32_t tid, const char* cat,
               const std::string& name, double ts_us, const std::vector<Arg>& args = {});

  /// Counter track sample ("ph":"C").
  void counter(std::uint32_t pid, const char* name, double ts_us, double value);

  /// Flow events ("ph":"s"/"t"/"f") stitch one job's lifecycle across
  /// tracks; all three phases must share cat/name/id for Perfetto to bind
  /// them, so cat and name are fixed to "job".
  void flow_begin(std::uint32_t pid, std::uint32_t tid, double ts_us, std::uint64_t id);
  void flow_step(std::uint32_t pid, std::uint32_t tid, double ts_us, std::uint64_t id);
  void flow_end(std::uint32_t pid, std::uint32_t tid, double ts_us, std::uint64_t id);

  /// Monotonic host microseconds since enable(); for host-domain events only.
  double host_now_us() const;

  /// Stable per-OS-thread track id on the host process track (for
  /// interpreter chunk spans from pool workers); also names the track.
  std::uint32_t host_tid();

  /// Reserved pid for host-domain tracks (allocated in the constructor).
  std::uint32_t host_pid() const { return host_pid_; }

  std::size_t event_count() const;
  std::string to_json() const;
  const std::string& path() const { return path_; }

  /// Writes to_json() to path(); returns false (and logs) on I/O failure.
  bool write() const;

 private:
  explicit Tracer(std::string path);
  void append(std::string event_json);
  void flow(const char* ph, std::uint32_t pid, std::uint32_t tid, double ts_us,
            std::uint64_t id, bool binding_next);

  std::string path_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint32_t host_pid_ = 0;

  mutable std::mutex mu_;
  std::vector<std::string> events_;
  std::uint32_t next_pid_ = 1;
  std::uint32_t next_host_tid_ = 1;
};

/// True when per-scenario metrics should be collected: the tracer is active,
/// SIGVP_METRICS=1, or a test forced it via set_metrics_forced(). Scenario
/// setup checks this once; when false no RunTrace is built and every
/// instrumentation site sees a null pointer.
bool collecting();

/// Test hook: force metrics collection on/off regardless of environment.
void set_metrics_forced(bool on);

/// Per-scenario trace context: one Perfetto process (track group) plus one
/// single-threaded Metrics registry. Built by run_scenario() only when
/// collecting(); components receive it via set_trace() and treat nullptr as
/// "instrumentation off". All emit helpers forward to the process Tracer
/// when one is active and are metrics-only no-ops otherwise.
///
/// Track ids within the scenario's process: tids [0, n_vps) are the guest
/// VP tracks; the constants below carve out host-stack tracks.
class RunTrace {
 public:
  static constexpr std::uint32_t kTidDispatcher = 1000;
  static constexpr std::uint32_t kTidGpuCompute = 1001;
  static constexpr std::uint32_t kTidGpuCopyIn = 1002;
  static constexpr std::uint32_t kTidGpuCopyOut = 1003;
  static constexpr std::uint32_t kTidIpc = 1004;

  explicit RunTrace(const std::string& label);

  Tracer* tracer() const { return tracer_; }
  std::uint32_t pid() const { return pid_; }

  /// Globally unique flow id for a job: scenario pid in the high bits, the
  /// IpcManager-assigned job id (process-unique per run) in the low bits —
  /// unique across VPs and across concurrent sweep scenarios.
  std::uint64_t flow_id(std::uint64_t job_id) const {
    return (static_cast<std::uint64_t>(pid_) << 40) | job_id;
  }

  void thread_name(std::uint32_t tid, const std::string& name);
  void span(std::uint32_t tid, const char* cat, const std::string& name, SimTime t0,
            SimTime t1, const std::vector<Arg>& args = {});
  void instant(std::uint32_t tid, const char* cat, const std::string& name, SimTime ts,
               const std::vector<Arg>& args = {});
  void counter(const char* name, SimTime ts, double value);
  void flow_begin(std::uint32_t tid, SimTime ts, std::uint64_t job_id);
  void flow_step(std::uint32_t tid, SimTime ts, std::uint64_t job_id);
  void flow_end(std::uint32_t tid, SimTime ts, std::uint64_t job_id);

  /// Deterministic sim-domain metrics; serialized into the BENCH `metrics`
  /// block. Pre-resolved members below avoid a map lookup per event on the
  /// hot path — names and bucket ladders live in one place (the ctor).
  Metrics metrics;

  Counter* ipc_requests;
  Counter* jobs_dispatched;
  Counter* reorders;
  Counter* coalesced_groups;
  Counter* coalesced_jobs;
  Counter* cache_hits;
  Counter* cache_misses;
  Counter* cache_bypasses;
  Counter* tier2_eligible;  // functional launches eligible for Tier-2 promotion
  Histogram* job_latency_us;
  Histogram* queue_wait_us;
  Histogram* queue_depth;
  Histogram* group_size;
  Histogram* ipc_payload_bytes;
  Gauge* queue_depth_max;

 private:
  Tracer* tracer_ = nullptr;  // null in metrics-only mode
  std::uint32_t pid_ = 0;
};

}  // namespace sigvp::trace
