#include "snapshot/state.hpp"

namespace sigvp::snapshot {

void save_histogram(Writer& w, const trace::Histogram& h) {
  w.f64_vec(h.edges);
  w.u64_vec(h.counts);
  w.u64(h.count);
  w.f64(h.sum);
  w.f64(h.min);
  w.f64(h.max);
}

trace::Histogram load_histogram(Reader& r) {
  trace::Histogram h(r.f64_vec());
  h.counts = r.u64_vec();
  if (h.counts.size() != h.edges.size() + 1) {
    throw SnapshotError("histogram bucket count does not match its edges");
  }
  h.count = r.u64();
  h.sum = r.f64();
  h.min = r.f64();
  h.max = r.f64();
  return h;
}

void save_metrics(Writer& w, const trace::Metrics& m) {
  w.u64(m.counters().size());
  for (const auto& [name, c] : m.counters()) {
    w.str(name);
    w.u64(c.value);
  }
  w.u64(m.gauges().size());
  for (const auto& [name, g] : m.gauges()) {
    w.str(name);
    w.f64(g.value);
    w.boolean(g.set);
  }
  w.u64(m.histograms().size());
  for (const auto& [name, h] : m.histograms()) {
    w.str(name);
    save_histogram(w, h);
  }
}

trace::Metrics load_metrics(Reader& r) {
  trace::Metrics m;
  const std::uint64_t nc = r.u64();
  for (std::uint64_t i = 0; i < nc; ++i) {
    const std::string name = r.str();
    m.counter(name).value = r.u64();
  }
  const std::uint64_t ng = r.u64();
  for (std::uint64_t i = 0; i < ng; ++i) {
    const std::string name = r.str();
    trace::Gauge& g = m.gauge(name);
    g.value = r.f64();
    g.set = r.boolean();
  }
  const std::uint64_t nh = r.u64();
  for (std::uint64_t i = 0; i < nh; ++i) {
    const std::string name = r.str();
    trace::Histogram h = load_histogram(r);
    trace::Histogram& dst = m.histogram(name, h.edges);
    dst = std::move(h);
  }
  return m;
}

void save_fault_stats(Writer& w, const FaultStats& s) {
  w.boolean(s.active);
  w.u64(s.messages_dropped);
  w.u64(s.messages_duplicated);
  w.u64(s.latency_spikes);
  w.u64(s.acks_dropped);
  w.u64(s.launch_failures);
  w.u64(s.engine_hangs);
  w.u64(s.device_resets);
  w.u64(s.ops_killed_by_reset);
  w.u64(s.vp_stalls);
  w.u64(s.retransmits);
  w.u64(s.duplicates_suppressed);
  w.u64(s.launch_retries);
  w.u64(s.reset_requeues);
  w.u64(s.group_resplits);
  w.u64(s.vps_quarantined);
  w.u64(s.vp_restarts);
  w.u64(s.fallbacks);
  w.u64(s.fallback_jobs);
  w.u64(s.unrecovered_jobs);
  w.f64(s.recovery_latency_total_us);
  w.f64(s.recovery_latency_max_us);
  w.u64(s.recovery_events);
}

FaultStats load_fault_stats(Reader& r) {
  FaultStats s;
  s.active = r.boolean();
  s.messages_dropped = r.u64();
  s.messages_duplicated = r.u64();
  s.latency_spikes = r.u64();
  s.acks_dropped = r.u64();
  s.launch_failures = r.u64();
  s.engine_hangs = r.u64();
  s.device_resets = r.u64();
  s.ops_killed_by_reset = r.u64();
  s.vp_stalls = r.u64();
  s.retransmits = r.u64();
  s.duplicates_suppressed = r.u64();
  s.launch_retries = r.u64();
  s.reset_requeues = r.u64();
  s.group_resplits = r.u64();
  s.vps_quarantined = r.u64();
  s.vp_restarts = r.u64();
  s.fallbacks = r.u64();
  s.fallback_jobs = r.u64();
  s.unrecovered_jobs = r.u64();
  s.recovery_latency_total_us = r.f64();
  s.recovery_latency_max_us = r.f64();
  s.recovery_events = r.u64();
  return s;
}

void save_scenario_result(Writer& w, const ScenarioResult& result) {
  w.f64(result.makespan_us);
  w.f64_vec(result.app_done_us);
  w.u64(result.jobs_dispatched);
  w.u64(result.reorders);
  w.u64(result.coalesced_groups);
  w.u64(result.coalesced_jobs);
  w.u64(result.ipc_messages);
  w.f64(result.gpu_dynamic_energy_j);
  w.f64(result.gpu_compute_busy_us);
  w.f64(result.gpu_copy_busy_us);
  save_fault_stats(w, result.fault);
  w.u32(result.fleet.domains);
  w.f64(result.fleet.lookahead_us);
  w.u64(result.fleet.sync_rounds);
  w.u64(result.fleet.fabric_messages);
  w.u64(result.fleet.fabric_hops);
  w.f64(result.fleet.fleet_done_us);
  w.u64(result.fleet.resident_bytes);
  w.u64(result.fleet.cache_hits);
  w.u64(result.fleet.cache_misses);
  w.u32(result.gpus.devices);
  w.u64(result.gpus.migrations);
  w.u64(result.gpus.migrated_bytes);
  w.u64(result.gpus.per_device.size());
  for (const GpuDeviceStats& d : result.gpus.per_device) {
    w.str(d.arch);
    w.u32(d.vps);
    w.u64(d.jobs);
    w.u64(d.kernels);
    w.f64(d.compute_busy_us);
    w.f64(d.copy_busy_us);
    w.f64(d.energy_j);
  }
  w.u64(result.app_outputs.size());
  for (const auto& bytes : result.app_outputs) w.byte_vec(bytes);
  save_histogram(w, result.latency);
  w.u64(result.requests_completed);
  w.boolean(result.metrics != nullptr);
  if (result.metrics != nullptr) save_metrics(w, *result.metrics);
}

ScenarioResult load_scenario_result(Reader& r) {
  ScenarioResult result;
  result.makespan_us = r.f64();
  result.app_done_us = r.f64_vec();
  result.jobs_dispatched = r.u64();
  result.reorders = r.u64();
  result.coalesced_groups = r.u64();
  result.coalesced_jobs = r.u64();
  result.ipc_messages = r.u64();
  result.gpu_dynamic_energy_j = r.f64();
  result.gpu_compute_busy_us = r.f64();
  result.gpu_copy_busy_us = r.f64();
  result.fault = load_fault_stats(r);
  result.fleet.domains = r.u32();
  result.fleet.lookahead_us = r.f64();
  result.fleet.sync_rounds = r.u64();
  result.fleet.fabric_messages = r.u64();
  result.fleet.fabric_hops = r.u64();
  result.fleet.fleet_done_us = r.f64();
  result.fleet.resident_bytes = r.u64();
  result.fleet.cache_hits = r.u64();
  result.fleet.cache_misses = r.u64();
  result.gpus.devices = r.u32();
  result.gpus.migrations = r.u64();
  result.gpus.migrated_bytes = r.u64();
  const std::uint64_t n_devices = r.u64();
  result.gpus.per_device.reserve(n_devices);
  for (std::uint64_t i = 0; i < n_devices; ++i) {
    GpuDeviceStats d;
    d.arch = r.str();
    d.vps = r.u32();
    d.jobs = r.u64();
    d.kernels = r.u64();
    d.compute_busy_us = r.f64();
    d.copy_busy_us = r.f64();
    d.energy_j = r.f64();
    result.gpus.per_device.push_back(std::move(d));
  }
  const std::uint64_t n_outputs = r.u64();
  result.app_outputs.reserve(n_outputs);
  for (std::uint64_t i = 0; i < n_outputs; ++i) result.app_outputs.push_back(r.byte_vec());
  result.latency = load_histogram(r);
  result.requests_completed = r.u64();
  if (r.boolean()) {
    result.metrics = std::make_shared<trace::Metrics>(load_metrics(r));
  }
  return result;
}

void save_capture(Writer& w, const FleetCapture& c) {
  w.f64(c.at_us);
  w.u64(c.events_processed);
  w.u64(c.digest);
}

FleetCapture load_capture(Reader& r) {
  FleetCapture c;
  c.at_us = r.f64();
  c.events_processed = r.u64();
  c.digest = r.u64();
  return c;
}

void save_cache_stats(Writer& w, const LaunchCacheStats& s) {
  w.u64(s.hits);
  w.u64(s.misses);
  w.u64(s.bypasses);
  w.u64(s.bytes_replayed);
  w.u64(s.evictions);
  w.u64(s.entries);
  w.u64(s.bytes);
}

LaunchCacheStats load_cache_stats(Reader& r) {
  LaunchCacheStats s;
  s.hits = r.u64();
  s.misses = r.u64();
  s.bypasses = r.u64();
  s.bytes_replayed = r.u64();
  s.evictions = r.u64();
  s.entries = r.u64();
  s.bytes = r.u64();
  return s;
}

std::vector<std::uint8_t> encode_sweep_checkpoint(const SweepCheckpoint& cp) {
  Writer w;
  w.u64(cp.fingerprint);
  w.u64(cp.jobs.size());
  for (const JobCheckpoint& job : cp.jobs) {
    w.boolean(job.done);
    if (job.done) {
      save_scenario_result(w, job.result);
    } else {
      w.u64(job.captures.size());
      for (const FleetCapture& c : job.captures) save_capture(w, c);
    }
  }
  w.byte_vec(cp.cache_blob);
  save_cache_stats(w, cp.cache_delta);
  return w.take();
}

SweepCheckpoint decode_sweep_checkpoint(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  SweepCheckpoint cp;
  cp.fingerprint = r.u64();
  const std::uint64_t n = r.u64();
  cp.jobs.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    JobCheckpoint& job = cp.jobs[i];
    job.done = r.boolean();
    if (job.done) {
      job.result = load_scenario_result(r);
    } else {
      const std::uint64_t nc = r.u64();
      job.captures.reserve(nc);
      for (std::uint64_t c = 0; c < nc; ++c) job.captures.push_back(load_capture(r));
    }
  }
  cp.cache_blob = r.byte_vec();
  cp.cache_delta = load_cache_stats(r);
  if (!r.done()) {
    throw SnapshotError("sweep checkpoint has " + std::to_string(r.remaining()) +
                        " trailing bytes");
  }
  return cp;
}

std::uint64_t scenario_fingerprint(const std::string& name, const std::string& group,
                                   const ScenarioConfig& config,
                                   const std::vector<AppInstance>& apps) {
  Writer w;
  w.str(name);
  w.str(group);
  w.u8(static_cast<std::uint8_t>(config.backend));
  w.boolean(config.dispatch.interleave);
  w.boolean(config.dispatch.coalesce);
  w.f64(config.dispatch.coalesce_window_us);
  w.u32(config.dispatch.coalesce_eager_peers);
  w.f64(config.dispatch.dispatch_overhead_us);
  w.f64(config.calib.host_cpu.effective_ips);
  w.f64(config.calib.host_cpu.memcpy_gbps);
  w.f64(config.calib.host_cpu.native_call_overhead_us);
  w.f64(config.calib.vp.bt_slowdown);
  w.f64(config.calib.vp.emul_isa_expansion);
  w.f64(config.calib.vp.user_lib_instrs_per_call);
  w.f64(config.calib.vp.driver_instrs_per_call);
  w.str(config.calib.ipc.name);
  w.f64(config.calib.ipc.per_message_us);
  w.f64(config.calib.ipc.bandwidth_gbps);
  w.str(config.gpu.name);
  w.u64(config.gpu_mem_bytes);
  w.u8(static_cast<std::uint8_t>(config.mode));
  w.boolean(config.async_launches);
  w.boolean(config.functional_io);
  // Fleet sharding is semantic (D domains = D job queues, D coalescing
  // windows, fabric latency on completion traffic), so it fingerprints;
  // the execution-only --shards knob deliberately does not.
  w.u32(config.fleet.domains);
  w.str(config.fleet.topology);
  w.f64(config.fleet.edge_latency_us);
  // The declared host GPU complement and the placement policy both change
  // what system is simulated, so they fingerprint. An empty declaration
  // hashes as count 0 — plus the default placement fields, which the
  // version bump to kSnapshotVersion 2 keeps from colliding with pre-
  // multi-GPU checkpoints.
  w.u64(config.host_gpus.size());
  for (const HostGpuSpec& spec : config.host_gpus) {
    w.str(spec.arch.name);
    w.u64(spec.mem_bytes);
  }
  w.u8(static_cast<std::uint8_t>(config.placement.policy));
  w.f64(config.placement.migration_fixed_us);
  w.f64(config.placement.migration_gbps);
  w.f64(config.placement.hysteresis_us);
  w.boolean(config.placement.allow_migration);
  w.u64(config.fault.seed);
  w.f64(config.fault.drop_rate);
  w.f64(config.fault.dup_rate);
  w.f64(config.fault.latency_spike_rate);
  w.f64(config.fault.latency_spike_us);
  w.f64(config.fault.launch_fail_rate);
  w.f64(config.fault.launch_fail_latency_us);
  w.f64(config.fault.engine_hang_rate);
  w.f64(config.fault.engine_hang_us);
  w.f64_vec(config.fault.device_reset_at_us);
  w.f64(config.fault.device_reset_latency_us);
  w.i64(config.fault.stall_vp);
  w.u32(config.fault.stall_after_completions);
  w.f64(config.recovery.ack_timeout_us);
  w.f64(config.recovery.backoff_mult);
  w.f64(config.recovery.max_backoff_us);
  w.u32(config.recovery.max_retries);
  w.u32(config.recovery.max_launch_retries);
  w.u32(config.recovery.quarantine_threshold);
  w.f64(config.recovery.vp_stall_timeout_us);
  w.u64(apps.size());
  for (const AppInstance& a : apps) {
    w.str(a.workload->app);
    w.u64(a.n);
    w.boolean(a.traits.has_value());
    w.u64(a.jitter);
    w.f64_vec(a.arrivals);
    w.u64(a.requests.size());
    for (const workloads::Request& req : a.requests) {
      w.str(req.workload->app);
      w.u64(req.n);
      w.u64(req.jitter);
    }
  }
  return w.digest();
}

}  // namespace sigvp::snapshot
