#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "gpu/launch_cache.hpp"
#include "snapshot/serial.hpp"
#include "trace/metrics.hpp"

namespace sigvp::snapshot {

// --- component codecs ---------------------------------------------------------
// Bit-exact round trips: every double travels by bit pattern, every map in
// its deterministic iteration order, so save(load(x)) == x byte-for-byte —
// the property the resume path's "final JSON identical to an uninterrupted
// run" contract reduces to.

void save_histogram(Writer& w, const trace::Histogram& h);
trace::Histogram load_histogram(Reader& r);

void save_metrics(Writer& w, const trace::Metrics& m);
trace::Metrics load_metrics(Reader& r);

void save_fault_stats(Writer& w, const FaultStats& s);
FaultStats load_fault_stats(Reader& r);

void save_scenario_result(Writer& w, const ScenarioResult& result);
ScenarioResult load_scenario_result(Reader& r);

void save_capture(Writer& w, const FleetCapture& c);
FleetCapture load_capture(Reader& r);

void save_cache_stats(Writer& w, const LaunchCacheStats& s);
LaunchCacheStats load_cache_stats(Reader& r);

// --- sweep checkpoint ---------------------------------------------------------

/// Durable state of one sweep job inside a checkpoint: either its finished
/// result (the durable unit of progress — serialized bit-exact, spliced
/// into the resumed sweep without re-execution) or the fleet-capture
/// digests its interrupted execution had produced so far (replayed jobs
/// re-verify against them capture by capture).
struct JobCheckpoint {
  bool done = false;
  ScenarioResult result;               // valid when done
  std::vector<FleetCapture> captures;  // capture prefix when not done
};

/// Whole-sweep checkpoint payload (wrapped in the io.hpp file container).
struct SweepCheckpoint {
  /// scenario_fingerprint over every job of the sweep — a resume against a
  /// different job list/config is rejected before any state is trusted.
  std::uint64_t fingerprint = 0;
  std::vector<JobCheckpoint> jobs;
  /// Launch-cache resident entries (LaunchCache::export_state payload) and
  /// the stat-counter deltas accumulated by completed jobs, both recorded
  /// at job-completion boundaries only — capture-cadence publishes reuse
  /// the last boundary values, so a mid-job crash never double-counts the
  /// partial cache work of the job that will re-execute.
  std::vector<std::uint8_t> cache_blob;
  LaunchCacheStats cache_delta;
};

std::vector<std::uint8_t> encode_sweep_checkpoint(const SweepCheckpoint& cp);
SweepCheckpoint decode_sweep_checkpoint(const std::vector<std::uint8_t>& payload);

/// Deterministic fingerprint of one sweep job's identity: its name/group
/// plus every ScenarioConfig knob and app-instance parameter that feeds the
/// simulation. Two jobs with equal fingerprints produce identical results,
/// so a checkpoint is only ever resumed into the sweep that wrote it.
std::uint64_t scenario_fingerprint(const std::string& name, const std::string& group,
                                   const ScenarioConfig& config,
                                   const std::vector<AppInstance>& apps);

}  // namespace sigvp::snapshot
