#include "snapshot/io.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "fault/crash.hpp"
#include "util/fileio.hpp"
#include "util/log.hpp"

namespace sigvp::snapshot {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kHeaderSize = sizeof(kSnapshotMagic) + 4 + 8 + 8;

void put_le32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_le64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

constexpr const char* kCheckpointPrefix = "checkpoint_";
constexpr const char* kCheckpointSuffix = ".svps";

/// checkpoint_<seq>.svps -> seq, or 0 when the name doesn't match.
std::uint64_t parse_seq(const std::string& filename) {
  const std::string prefix = kCheckpointPrefix;
  const std::string suffix = kCheckpointSuffix;
  if (filename.size() <= prefix.size() + suffix.size()) return 0;
  if (filename.compare(0, prefix.size(), prefix) != 0) return 0;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(), suffix) != 0) return 0;
  const std::string digits =
      filename.substr(prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (digits.empty()) return 0;
  std::uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

/// Existing checkpoints, sorted by ascending sequence number.
std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const std::uint64_t seq = parse_seq(name);
    if (seq > 0) out.emplace_back(seq, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

bool save_snapshot_file(const std::string& path, const std::vector<std::uint8_t>& payload) {
  std::string blob;
  blob.reserve(kHeaderSize + payload.size());
  blob.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_le32(blob, kSnapshotVersion);
  put_le64(blob, payload.size());
  put_le64(blob, fnv1a64(payload.data(), payload.size()));
  blob.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  return util::write_file_atomic(path, blob,
                                 [] { crash_point(CrashSite::kSnapshotWrite); });
}

std::vector<std::uint8_t> load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("snapshot file unreadable: " + path);
  std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (blob.size() < kHeaderSize) {
    throw SnapshotError("snapshot file truncated (header): " + path);
  }
  if (std::memcmp(blob.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    throw SnapshotError("snapshot file bad magic: " + path);
  }
  const std::uint32_t version = get_le32(blob.data() + sizeof(kSnapshotMagic));
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot file unsupported version " + std::to_string(version) +
                        ": " + path);
  }
  const std::uint64_t size = get_le64(blob.data() + sizeof(kSnapshotMagic) + 4);
  if (blob.size() - kHeaderSize != size) {
    throw SnapshotError("snapshot file truncated (payload): " + path);
  }
  const std::uint64_t checksum = get_le64(blob.data() + sizeof(kSnapshotMagic) + 4 + 8);
  std::vector<std::uint8_t> payload(blob.begin() + kHeaderSize, blob.end());
  if (fnv1a64(payload.data(), payload.size()) != checksum) {
    throw SnapshotError("snapshot file checksum mismatch: " + path);
  }
  return payload;
}

CheckpointStore::CheckpointStore(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(keep == 0 ? 1 : keep) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // Resume from the highest existing sequence so a restarted process never
  // re-publishes (and silently clobbers) a checkpoint name it didn't write.
  for (const auto& [seq, path] : list_checkpoints(dir_)) {
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

std::string CheckpointStore::publish(const std::vector<std::uint8_t>& payload) {
  const std::uint64_t seq = next_seq_++;
  const std::string path =
      (fs::path(dir_) / (kCheckpointPrefix + std::to_string(seq) + kCheckpointSuffix)).string();
  if (!save_snapshot_file(path, payload)) {
    SIGVP_WARN("snapshot") << "failed to publish checkpoint " << path;
    return {};
  }
  auto existing = list_checkpoints(dir_);
  while (existing.size() > keep_) {
    std::error_code ec;
    fs::remove(existing.front().second, ec);
    existing.erase(existing.begin());
  }
  return path;
}

CheckpointStore::Latest CheckpointStore::find_latest_valid() const {
  Latest out;
  auto existing = list_checkpoints(dir_);
  for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
    try {
      out.payload = load_snapshot_file(it->second);
      out.path = it->second;
      return out;
    } catch (const SnapshotError& e) {
      SIGVP_WARN("snapshot") << "rejected " << it->second << ": " << e.what();
      out.rejected.push_back(it->second);
    }
  }
  return out;
}

}  // namespace sigvp::snapshot
