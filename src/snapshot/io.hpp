#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/serial.hpp"

namespace sigvp::snapshot {

/// Snapshot file container (DESIGN.md §14):
///
///   magic "SVPSNAP1" | u32 version | u64 payload size | u64 FNV-1a-64
///   checksum of the payload | payload bytes
///
/// The header is fixed-width so a torn write is detectable before any
/// payload parsing: short file, wrong magic, unknown version, size
/// mismatch and checksum mismatch each throw SnapshotError with a
/// distinct message.
inline constexpr char kSnapshotMagic[8] = {'S', 'V', 'P', 'S', 'N', 'A', 'P', '1'};
/// Version 2: ScenarioResult carries the MultiGpuStats block and scenario
/// fingerprints cover host_gpus + placement, so version-1 checkpoints are
/// rejected instead of misparsed.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Writes `payload` wrapped in the container, via write-temp + fsync +
/// atomic rename — a crash at any instant leaves either the previous file
/// or the complete new one, never a torn hybrid. The kSnapshotWrite crash
/// point fires after the temp file is durable but before the rename, so
/// injected crashes exercise exactly the window the protocol protects.
/// Returns false on I/O failure (disk full, unwritable dir).
bool save_snapshot_file(const std::string& path, const std::vector<std::uint8_t>& payload);

/// Reads and validates a container file; returns the payload. Throws
/// SnapshotError on any corruption (missing file, truncation, bad magic,
/// unknown version, checksum mismatch).
std::vector<std::uint8_t> load_snapshot_file(const std::string& path);

/// Rotating checkpoint directory: publishes `checkpoint_<seq>.svps` files
/// with monotonically increasing sequence numbers and keeps the newest
/// `keep` of them. Recovery scans newest-first and falls back past any
/// file that fails validation, so one torn/corrupt checkpoint costs one
/// cadence of progress, not the run.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir, std::size_t keep = 3);

  /// Atomically publishes a new checkpoint and prunes old ones.
  /// Returns the published path, or empty on I/O failure.
  std::string publish(const std::vector<std::uint8_t>& payload);

  /// Newest checkpoint that validates. Files that fail are appended to
  /// `rejected` (newest first) so callers can report the fallback.
  /// Returns empty payload + empty path when no valid checkpoint exists.
  struct Latest {
    std::string path;
    std::vector<std::uint8_t> payload;
    std::vector<std::string> rejected;
  };
  Latest find_latest_valid() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::size_t keep_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace sigvp::snapshot
