#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace sigvp::snapshot {

/// Raised on any malformed, truncated or checksum-mismatched snapshot input.
/// Derives from ContractError so existing catch sites treat a bad snapshot
/// like any other violated invariant; recovery paths catch it specifically
/// to fall back to an older checkpoint.
class SnapshotError : public ContractError {
 public:
  explicit SnapshotError(const std::string& what) : ContractError(what) {}
};

/// FNV-1a 64-bit over a byte range. Used both as the snapshot file checksum
/// and as the fleet-capture digest hash: the only property needed is
/// deterministic sensitivity to every byte, not cryptographic strength.
inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Append-only little-endian byte buffer. Fixed-width integers and
/// bit-pattern doubles only, so the encoding of any value is unique and the
/// same fleet state always serializes to the same bytes — which is what lets
/// a digest over the buffer stand in for the state itself.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  /// Doubles round-trip by bit pattern (NaN payloads, -0.0, denormals
  /// included): restore-then-compare must be exact, not approximate.
  void f64(double v) { append_le(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  void u64_vec(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }
  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    for (double x : v) f64(x);
  }
  void byte_vec(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    bytes(v.data(), v.size());
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::uint64_t digest() const { return fnv1a64(buf_.data(), buf_.size()); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked cursor over a serialized buffer; every under-read throws
/// SnapshotError instead of reading garbage, so a truncated payload that
/// somehow passed the file checksum still cannot produce a silently-wrong
/// restore.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf) : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }
  double f64() { return std::bit_cast<double>(read_le<std::uint64_t>()); }
  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint64_t n = length(u64());
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t n = length(u64());
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = u64();
    return v;
  }
  std::vector<double> f64_vec() {
    const std::uint64_t n = length(u64());
    std::vector<double> v(n);
    for (auto& x : v) x = f64();
    return v;
  }
  std::vector<std::uint8_t> byte_vec() {
    const std::uint64_t n = length(u64());
    const std::uint8_t* p = take(n);
    return std::vector<std::uint8_t>(p, p + n);
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (size_ - pos_ < n) {
      throw SnapshotError("snapshot payload truncated: need " + std::to_string(n) +
                          " bytes at offset " + std::to_string(pos_) + " of " +
                          std::to_string(size_));
    }
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }
  /// Guards vector/string prefixes against absurd lengths from corrupt
  /// payloads before any allocation happens.
  std::uint64_t length(std::uint64_t n) {
    if (n > size_ - pos_) {
      throw SnapshotError("snapshot length prefix " + std::to_string(n) +
                          " exceeds remaining payload");
    }
    return n;
  }
  template <typename T>
  T read_le() {
    const std::uint8_t* p = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) v |= static_cast<T>(p[i]) << (8 * i);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace sigvp::snapshot
