#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace sigvp {

/// Counters of everything the fault layer injected and everything the
/// tolerance layer did to survive it. One instance per scenario run, shared
/// by the IPC manager, the device model, the dispatcher and the health
/// policy (all single-threaded on the scenario's private event queue).
///
/// `active` records whether a non-trivial FaultPlan was installed; the JSON
/// writer uses it to keep zero-fault bench output byte-identical to a build
/// without the fault layer.
struct FaultStats {
  bool active = false;

  // --- injected faults --------------------------------------------------------
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t acks_dropped = 0;
  std::uint64_t launch_failures = 0;   // transient kernel-launch aborts
  std::uint64_t engine_hangs = 0;
  std::uint64_t device_resets = 0;
  std::uint64_t ops_killed_by_reset = 0;  // in-flight device ops killed
  std::uint64_t vp_stalls = 0;         // VP endpoints that wedged

  // --- recovery actions -------------------------------------------------------
  std::uint64_t retransmits = 0;       // watchdog-triggered message resends
  std::uint64_t duplicates_suppressed = 0;  // redeliveries caught by id dedup
  std::uint64_t launch_retries = 0;    // jobs re-queued after a transient abort
  std::uint64_t reset_requeues = 0;    // jobs re-queued after a device reset
  std::uint64_t group_resplits = 0;    // coalesced groups split back to singles
  std::uint64_t vps_quarantined = 0;
  std::uint64_t vp_restarts = 0;       // stall-watchdog forced endpoint restarts
  std::uint64_t fallbacks = 0;         // VPs degraded to the emulation path
  std::uint64_t fallback_jobs = 0;     // jobs served by the emulation fallback
  std::uint64_t unrecovered_jobs = 0;  // jobs lost for good (must stay 0)

  /// Summed / worst-case time between a detected fault and the completed
  /// recovery action (retransmit landing, requeue dispatched, endpoint
  /// restarted). recovery_events divides the sum into a mean.
  SimTime recovery_latency_total_us = 0.0;
  SimTime recovery_latency_max_us = 0.0;
  std::uint64_t recovery_events = 0;

  void note_recovery(SimTime latency_us) {
    recovery_latency_total_us += latency_us;
    if (latency_us > recovery_latency_max_us) recovery_latency_max_us = latency_us;
    ++recovery_events;
  }

  SimTime recovery_latency_mean_us() const {
    return recovery_events == 0 ? 0.0
                                : recovery_latency_total_us /
                                      static_cast<double>(recovery_events);
  }

  bool operator==(const FaultStats&) const = default;
};

}  // namespace sigvp
