#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace sigvp {

/// Counters of everything the fault layer injected and everything the
/// tolerance layer did to survive it. One instance per scenario run, shared
/// by the IPC manager, the device model, the dispatcher and the health
/// policy (all single-threaded on the scenario's private event queue).
///
/// `active` records whether a non-trivial FaultPlan was installed; the JSON
/// writer uses it to keep zero-fault bench output byte-identical to a build
/// without the fault layer.
struct FaultStats {
  bool active = false;

  // --- injected faults --------------------------------------------------------
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t acks_dropped = 0;
  std::uint64_t launch_failures = 0;   // transient kernel-launch aborts
  std::uint64_t engine_hangs = 0;
  std::uint64_t device_resets = 0;
  std::uint64_t ops_killed_by_reset = 0;  // in-flight device ops killed
  std::uint64_t vp_stalls = 0;         // VP endpoints that wedged

  // --- recovery actions -------------------------------------------------------
  std::uint64_t retransmits = 0;       // watchdog-triggered message resends
  std::uint64_t duplicates_suppressed = 0;  // redeliveries caught by id dedup
  std::uint64_t launch_retries = 0;    // jobs re-queued after a transient abort
  std::uint64_t reset_requeues = 0;    // jobs re-queued after a device reset
  std::uint64_t group_resplits = 0;    // coalesced groups split back to singles
  std::uint64_t vps_quarantined = 0;
  std::uint64_t vp_restarts = 0;       // stall-watchdog forced endpoint restarts
  std::uint64_t fallbacks = 0;         // VPs degraded to the emulation path
  std::uint64_t fallback_jobs = 0;     // jobs served by the emulation fallback
  std::uint64_t unrecovered_jobs = 0;  // jobs lost for good (must stay 0)

  /// Summed / worst-case time between a detected fault and the completed
  /// recovery action (retransmit landing, requeue dispatched, endpoint
  /// restarted). recovery_events divides the sum into a mean.
  SimTime recovery_latency_total_us = 0.0;
  SimTime recovery_latency_max_us = 0.0;
  std::uint64_t recovery_events = 0;

  void note_recovery(SimTime latency_us) {
    recovery_latency_total_us += latency_us;
    if (latency_us > recovery_latency_max_us) recovery_latency_max_us = latency_us;
    ++recovery_events;
  }

  SimTime recovery_latency_mean_us() const {
    return recovery_events == 0 ? 0.0
                                : recovery_latency_total_us /
                                      static_cast<double>(recovery_events);
  }

  /// Folds another run's (or fleet domain's) stats into this one: `active`
  /// ORs, every counter and latency total adds, the worst-case latency keeps
  /// the max. Called in canonical domain order by the sharded fleet
  /// executor; folding into a default-constructed instance reproduces the
  /// source exactly, so the single-domain path can share this too.
  void merge(const FaultStats& o) {
    active = active || o.active;
    messages_dropped += o.messages_dropped;
    messages_duplicated += o.messages_duplicated;
    latency_spikes += o.latency_spikes;
    acks_dropped += o.acks_dropped;
    launch_failures += o.launch_failures;
    engine_hangs += o.engine_hangs;
    device_resets += o.device_resets;
    ops_killed_by_reset += o.ops_killed_by_reset;
    vp_stalls += o.vp_stalls;
    retransmits += o.retransmits;
    duplicates_suppressed += o.duplicates_suppressed;
    launch_retries += o.launch_retries;
    reset_requeues += o.reset_requeues;
    group_resplits += o.group_resplits;
    vps_quarantined += o.vps_quarantined;
    vp_restarts += o.vp_restarts;
    fallbacks += o.fallbacks;
    fallback_jobs += o.fallback_jobs;
    unrecovered_jobs += o.unrecovered_jobs;
    recovery_latency_total_us += o.recovery_latency_total_us;
    if (o.recovery_latency_max_us > recovery_latency_max_us) {
      recovery_latency_max_us = o.recovery_latency_max_us;
    }
    recovery_events += o.recovery_events;
  }

  bool operator==(const FaultStats&) const = default;
};

}  // namespace sigvp
