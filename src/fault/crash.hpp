#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace sigvp {

/// Process-death injection sites. Unlike the in-run FaultSite faults (which
/// the tolerance layer recovers from inside one simulation), a crash site
/// terminates the whole process — the failure mode the checkpoint/restore
/// path exists for. Sites are chosen to die at the most state-laden moments:
///  - kDispatch: between a job's dispatch accounting and its device
///    submission (mid-flight scheduler state);
///  - kCoalescedGroup: between a merged group's arena gathers and its
///    single launch (multi-VP transaction half done);
///  - kSnapshotWrite: between a checkpoint temp file becoming durable and
///    its rename (the classic torn-publish window).
enum class CrashSite : std::uint32_t {
  kDispatch = 1,
  kCoalescedGroup = 2,
  kSnapshotWrite = 3,
};

const char* crash_site_name(CrashSite site);

/// Exit status of an injected crash, distinct from every normal failure path
/// so a supervising harness can tell "injected death" from a real bug.
inline constexpr int kCrashExitCode = 86;

/// Process-wide arming of crash points (the sites stay compiled in but cost
/// one relaxed atomic load while disarmed). Armed from the environment at
/// first use:
///
///   SIGVP_CRASH=<site>:<n>   die at the n-th visit (1-based) of the named
///                            site ("dispatch", "group", "snapshot");
///   SIGVP_CRASH_SEED=<s>     seeded probabilistic mode: every visit of every
///   SIGVP_CRASH_RATE=<r>     site dies with probability r, decided by
///                            hashing (seed, site, visit counter) — the same
///                            pure-function determinism rule FaultPlan uses,
///                            so a given (seed, rate) always kills the
///                            process at the same visit of the same site.
///
/// The counted mode is exact even when sites race across sweep worker
/// threads: visits are claimed with fetch_add, so exactly one thread sees
/// the armed index.
class CrashPlan {
 public:
  static CrashPlan& instance();

  /// Counts this visit and terminates the process (exit code kCrashExitCode)
  /// if the plan says so. No-op (after one atomic load) while disarmed.
  void crash_point(CrashSite site);

  /// Programmatic arming (tests; overrides any environment arming).
  void arm_at(CrashSite site, std::uint64_t nth_visit);
  void arm_seeded(std::uint64_t seed, double rate);
  void disarm();

  std::uint64_t visits(CrashSite site) const;

  /// Replaces process termination (tests only). The handler receives the
  /// would-be exit code; if it returns, execution continues past the site.
  void set_exit_handler(std::function<void(int)> handler);

 private:
  CrashPlan();

  static constexpr std::size_t kNumSites = 4;  // index by CrashSite value

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> counts_[kNumSites] = {};
  // Counted mode: site + 1-based visit index (0 = off).
  CrashSite at_site_ = CrashSite::kDispatch;
  std::uint64_t at_visit_ = 0;
  // Seeded mode (rate > 0 switches it on).
  std::uint64_t seed_ = 0;
  double rate_ = 0.0;
  std::function<void(int)> exit_handler_;

  void die(CrashSite site, std::uint64_t visit);
};

/// Convenience wrapper used at the instrumented sites.
inline void crash_point(CrashSite site) { CrashPlan::instance().crash_point(site); }

}  // namespace sigvp
