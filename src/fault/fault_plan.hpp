#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace sigvp {

/// Fault classes the injection layer can produce, one enumerator per
/// decision site. Every decision is a pure function of
/// (seed, site, decision index), so two runs of the same scenario — or the
/// same scenario sharded to a different worker slot of a sweep — draw
/// exactly the same faults regardless of host scheduling. This is what
/// keeps the PR 1 bit-identical sweep contract intact under injection.
enum class FaultSite : std::uint64_t {
  kRequestDrop = 1,    // VP→host job request lost in transport
  kRequestDup = 2,     // request delivered twice
  kRequestDelay = 3,   // request hit by a latency spike
  kResponseDrop = 4,   // host→VP completion lost in transport
  kResponseDup = 5,    // completion delivered twice
  kResponseDelay = 6,  // completion hit by a latency spike
  kAckDrop = 7,        // delivery acknowledgement lost (forces a retransmit)
  kLaunchFail = 8,     // transient kernel-launch failure on the host GPU
  kEngineHang = 9,     // compute engine stalls mid-launch
  /// Whole-process death (ProcessCrash). Not recoverable inside a run: it is
  /// injected by the CrashPlan (fault/crash.hpp) at counter-hashed sites and
  /// survived only through the checkpoint/restore path (src/snapshot).
  kProcessCrash = 10,
};

/// Declarative description of every fault a scenario run will experience.
/// All rates are per-opportunity probabilities in [0, 1]; deterministic
/// one-shot events (device resets, the stalling VP) are listed explicitly.
/// The default-constructed config is the zero-fault plan: with it, the
/// tolerance machinery is bypassed entirely and the simulation is
/// bit-identical to a build without the fault layer.
struct FaultConfig {
  std::uint64_t seed = 0x5157f4a7ULL;

  // --- IPC transport faults (IpcManager) -------------------------------------
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double latency_spike_rate = 0.0;
  SimTime latency_spike_us = 500.0;

  // --- host GPU faults (GpuDevice) -------------------------------------------
  /// Transient kernel-launch failure: the launch aborts after
  /// `launch_fail_latency_us` on the compute engine and must be retried.
  double launch_fail_rate = 0.0;
  SimTime launch_fail_latency_us = 25.0;
  /// Compute-engine hang: the launch takes `engine_hang_us` longer.
  double engine_hang_rate = 0.0;
  SimTime engine_hang_us = 2000.0;
  /// Full device resets at these simulated times: every in-flight job is
  /// killed and both engines are unavailable for `device_reset_latency_us`.
  std::vector<SimTime> device_reset_at_us;
  SimTime device_reset_latency_us = 1500.0;

  // --- VP faults --------------------------------------------------------------
  /// VP that stops consuming completion notifications (wedged guest stack),
  /// or -1 for none. It wedges after `stall_after_completions` deliveries
  /// and is revived by the IPC manager's stall watchdog.
  std::int32_t stall_vp = -1;
  std::uint32_t stall_after_completions = 4;

  bool enabled() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || latency_spike_rate > 0.0 ||
           launch_fail_rate > 0.0 || engine_hang_rate > 0.0 ||
           !device_reset_at_us.empty() || stall_vp >= 0;
  }
};

/// Recovery-policy knobs of the fault-tolerant host stack. Only consulted
/// when the scenario's FaultConfig is enabled.
struct RecoveryConfig {
  /// Watchdog timeout for the first delivery attempt of a message; each
  /// retransmission multiplies it by `backoff_mult` (exponential backoff),
  /// clamped at `max_backoff_us` so a long retransmission tail (raised
  /// max_retries) cannot grow the delay without bound or overflow it into
  /// inf. Defaults leave every trajectory with attempts <= 7 untouched.
  SimTime ack_timeout_us = 600.0;
  double backoff_mult = 2.0;
  SimTime max_backoff_us = 60000.0;
  /// Retransmissions before a message is declared undeliverable and the
  /// VP's traffic is escalated to the emulation fallback.
  std::uint32_t max_retries = 4;
  /// Per-job launch retries before a kernel job escalates to the fallback.
  std::uint32_t max_launch_retries = 4;
  /// Recovery incidents (timeouts, transient failures, reset kills) a VP
  /// may accumulate before it is quarantined out of coalescing eligibility.
  std::uint32_t quarantine_threshold = 3;
  /// How long a completion may sit undelivered at a wedged VP endpoint
  /// before the stall watchdog force-restarts the endpoint.
  SimTime vp_stall_timeout_us = 5000.0;
};

/// Watchdog delay before retransmission attempt `attempts` (1-based: the
/// first transmission waits `ack_timeout_us`). Overflow-safe at any attempt
/// count: the exponent saturates instead of producing inf, and the result is
/// clamped to `max_backoff_us`.
SimTime retransmit_backoff(const RecoveryConfig& recovery, std::uint32_t attempts);

/// Seeded, event-queue-driven fault oracle. Holds no mutable state: every
/// query hashes (seed, site, index), so the plan can be shared read-only by
/// the IPC manager, the device model and the dispatcher without any
/// cross-component ordering dependence (and without a wall clock).
class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig config) : cfg_(config) {}

  const FaultConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled(); }

  /// Uniform draw in [0, 1) for decision `index` at `site`.
  double roll01(FaultSite site, std::uint64_t index) const;
  /// True when decision `index` at `site` trips a fault of probability `rate`.
  bool roll(FaultSite site, std::uint64_t index, double rate) const {
    return rate > 0.0 && roll01(site, index) < rate;
  }

  // --- convenience wrappers, one per fault class -----------------------------
  bool drop_message(bool response, std::uint64_t index) const {
    return roll(response ? FaultSite::kResponseDrop : FaultSite::kRequestDrop, index,
                cfg_.drop_rate);
  }
  bool duplicate_message(bool response, std::uint64_t index) const {
    return roll(response ? FaultSite::kResponseDup : FaultSite::kRequestDup, index,
                cfg_.dup_rate);
  }
  SimTime message_delay(bool response, std::uint64_t index) const {
    return roll(response ? FaultSite::kResponseDelay : FaultSite::kRequestDelay, index,
                cfg_.latency_spike_rate)
               ? cfg_.latency_spike_us
               : 0.0;
  }
  bool drop_ack(std::uint64_t index) const {
    return roll(FaultSite::kAckDrop, index, cfg_.drop_rate);
  }
  bool fail_launch(std::uint64_t launch_index) const {
    return roll(FaultSite::kLaunchFail, launch_index, cfg_.launch_fail_rate);
  }
  SimTime engine_hang(std::uint64_t launch_index) const {
    return roll(FaultSite::kEngineHang, launch_index, cfg_.engine_hang_rate)
               ? cfg_.engine_hang_us
               : 0.0;
  }

 private:
  FaultConfig cfg_;
};

}  // namespace sigvp
