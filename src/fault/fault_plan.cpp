#include "fault/fault_plan.hpp"

#include <algorithm>

namespace sigvp {

namespace {

/// SplitMix64 finalizer — the same mixer Rng uses for seeding, applied here
/// as a stateless counter-based hash so fault decisions are independent of
/// the order the components query the plan in.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

SimTime retransmit_backoff(const RecoveryConfig& recovery, std::uint32_t attempts) {
  if (attempts == 0) attempts = 1;
  // Multiply-with-clamp instead of pow: once the delay reaches the cap the
  // remaining exponent cannot matter, so arbitrarily high attempt counts
  // never overflow to inf (which std::pow would happily produce around
  // attempt ~1000 with the default multiplier).
  SimTime delay = recovery.ack_timeout_us;
  for (std::uint32_t i = 1; i < attempts; ++i) {
    if (delay >= recovery.max_backoff_us) break;
    delay *= recovery.backoff_mult;
  }
  return std::min(delay, recovery.max_backoff_us);
}

double FaultPlan::roll01(FaultSite site, std::uint64_t index) const {
  const std::uint64_t h =
      mix64(mix64(cfg_.seed + static_cast<std::uint64_t>(site) * 0x9e3779b97f4a7c15ULL) ^
            mix64(index));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace sigvp
