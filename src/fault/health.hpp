#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/fault_stats.hpp"

namespace sigvp {

/// Per-VP health bookkeeping of the fault-tolerant host stack.
///
/// Two escalation levels, driven by incident reports from the IPC manager
/// (watchdog timeouts, forced endpoint restarts) and the dispatcher
/// (transient launch aborts, reset kills):
///
///  - quarantine: a VP whose incident count reaches
///    `RecoveryConfig::quarantine_threshold` loses Kernel Coalescing
///    eligibility — its jobs still run, but no longer merge with healthy
///    VPs' requests (a flaky VP must not drag peers into its retries);
///  - failure: a VP whose message or launch retries exhaust the bounded
///    retry budget is marked failed — the scenario wiring reroutes its
///    traffic to the EmulationDriver fallback so the fleet keeps making
///    progress (graceful degradation).
///
/// The policy holds no simulation-time state; it is plain bookkeeping the
/// surrounding components consult synchronously.
class HealthPolicy {
 public:
  HealthPolicy(RecoveryConfig recovery, FaultStats& stats)
      : recovery_(recovery), stats_(stats) {}

  void register_vp() {
    incidents_.push_back(0);
    quarantined_.push_back(false);
    failed_.push_back(false);
  }
  std::size_t num_vps() const { return incidents_.size(); }

  /// Records one recovery incident against `vp_id`; quarantines the VP when
  /// the threshold is reached and fires `on_quarantine` once.
  void report_incident(std::uint32_t vp_id);

  /// Marks `vp_id` permanently failed (retry budget exhausted). Implies
  /// quarantine. Fires `on_failed` once; returns true on the first call.
  bool mark_failed(std::uint32_t vp_id);

  bool quarantined(std::uint32_t vp_id) const { return quarantined_.at(vp_id); }
  bool failed(std::uint32_t vp_id) const { return failed_.at(vp_id); }
  std::uint32_t incidents(std::uint32_t vp_id) const { return incidents_.at(vp_id); }

  const RecoveryConfig& recovery() const { return recovery_; }

  /// Notification hooks (optional). `on_quarantine` lets the dispatcher drop
  /// the VP from coalescing; `on_failed` lets the driver switch to fallback.
  std::function<void(std::uint32_t)> on_quarantine;
  std::function<void(std::uint32_t)> on_failed;

 private:
  RecoveryConfig recovery_;
  FaultStats& stats_;
  std::vector<std::uint32_t> incidents_;
  std::vector<bool> quarantined_;  // deque<bool> semantics are fine: single-threaded
  std::vector<bool> failed_;
};

}  // namespace sigvp
