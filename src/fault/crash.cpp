#include "fault/crash.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/check.hpp"

namespace sigvp {

namespace {

/// splitmix64 finalizer — same family as FaultPlan's hash: decisions are a
/// pure function of (seed, site, index), independent of host scheduling.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

CrashSite parse_site(const std::string& name) {
  if (name == "dispatch") return CrashSite::kDispatch;
  if (name == "group") return CrashSite::kCoalescedGroup;
  if (name == "snapshot") return CrashSite::kSnapshotWrite;
  throw ContractError("SIGVP_CRASH: unknown crash site '" + name +
                      "' (want dispatch|group|snapshot)");
}

}  // namespace

const char* crash_site_name(CrashSite site) {
  switch (site) {
    case CrashSite::kDispatch: return "dispatch";
    case CrashSite::kCoalescedGroup: return "group";
    case CrashSite::kSnapshotWrite: return "snapshot";
  }
  return "?";
}

CrashPlan::CrashPlan() {
  const char* spec = std::getenv("SIGVP_CRASH");
  if (spec != nullptr && *spec != '\0') {
    const std::string s(spec);
    const std::size_t colon = s.find(':');
    SIGVP_REQUIRE(colon != std::string::npos && colon + 1 < s.size(),
                  "SIGVP_CRASH must be <site>:<nth-visit>, got '" + s + "'");
    at_site_ = parse_site(s.substr(0, colon));
    at_visit_ = std::strtoull(s.c_str() + colon + 1, nullptr, 10);
    SIGVP_REQUIRE(at_visit_ > 0, "SIGVP_CRASH visit index is 1-based, got 0");
    armed_.store(true, std::memory_order_release);
  }
  const char* seed = std::getenv("SIGVP_CRASH_SEED");
  const char* rate = std::getenv("SIGVP_CRASH_RATE");
  if (rate != nullptr && *rate != '\0') {
    seed_ = seed != nullptr ? std::strtoull(seed, nullptr, 10) : 1;
    rate_ = std::strtod(rate, nullptr);
    if (rate_ > 0.0) armed_.store(true, std::memory_order_release);
  }
}

CrashPlan& CrashPlan::instance() {
  static CrashPlan plan;
  return plan;
}

void CrashPlan::crash_point(CrashSite site) {
  if (!armed_.load(std::memory_order_acquire)) return;
  const auto idx = static_cast<std::size_t>(site);
  // fetch_add gives every concurrent visit a unique 1-based index, so the
  // counted mode kills the process at exactly the armed visit even when
  // sweep workers race through the same site.
  const std::uint64_t visit = counts_[idx].fetch_add(1, std::memory_order_acq_rel) + 1;
  if (at_visit_ > 0 && site == at_site_ && visit == at_visit_) die(site, visit);
  if (rate_ > 0.0) {
    const std::uint64_t h = mix64(seed_ ^ (static_cast<std::uint64_t>(site) << 56) ^ visit);
    const double roll = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (roll < rate_) die(site, visit);
  }
}

void CrashPlan::die(CrashSite site, std::uint64_t visit) {
  if (exit_handler_) {
    exit_handler_(kCrashExitCode);
    return;
  }
  // stderr is unbuffered on purpose: this line must survive the _Exit.
  std::fprintf(stderr, "[crash] injected process crash at site %s visit %llu\n",
               crash_site_name(site), static_cast<unsigned long long>(visit));
  std::fflush(stderr);
  // _Exit, not exit: no atexit hooks, no stream flushing — the point is to
  // model sudden death, leaving half-written state exactly as it was.
  std::_Exit(kCrashExitCode);
}

void CrashPlan::arm_at(CrashSite site, std::uint64_t nth_visit) {
  SIGVP_REQUIRE(nth_visit > 0, "crash visit index is 1-based");
  at_site_ = site;
  at_visit_ = nth_visit;
  rate_ = 0.0;
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void CrashPlan::arm_seeded(std::uint64_t seed, double rate) {
  SIGVP_REQUIRE(rate >= 0.0 && rate <= 1.0, "crash rate must be in [0, 1]");
  seed_ = seed;
  rate_ = rate;
  at_visit_ = 0;
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  armed_.store(rate > 0.0, std::memory_order_release);
}

void CrashPlan::disarm() {
  armed_.store(false, std::memory_order_release);
  at_visit_ = 0;
  rate_ = 0.0;
}

std::uint64_t CrashPlan::visits(CrashSite site) const {
  return counts_[static_cast<std::size_t>(site)].load(std::memory_order_acquire);
}

void CrashPlan::set_exit_handler(std::function<void(int)> handler) {
  exit_handler_ = std::move(handler);
}

}  // namespace sigvp
