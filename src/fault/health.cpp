#include "fault/health.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp {

void HealthPolicy::report_incident(std::uint32_t vp_id) {
  SIGVP_REQUIRE(vp_id < incidents_.size(), "health report for unregistered VP");
  ++incidents_[vp_id];
  if (!quarantined_[vp_id] && incidents_[vp_id] >= recovery_.quarantine_threshold) {
    quarantined_[vp_id] = true;
    ++stats_.vps_quarantined;
    SIGVP_DEBUG("health") << "vp" << vp_id << " quarantined after " << incidents_[vp_id]
                          << " incidents";
    if (on_quarantine) on_quarantine(vp_id);
  }
}

bool HealthPolicy::mark_failed(std::uint32_t vp_id) {
  SIGVP_REQUIRE(vp_id < failed_.size(), "health failure for unregistered VP");
  if (failed_[vp_id]) return false;
  failed_[vp_id] = true;
  if (!quarantined_[vp_id]) {
    quarantined_[vp_id] = true;
    ++stats_.vps_quarantined;
    if (on_quarantine) on_quarantine(vp_id);
  }
  ++stats_.fallbacks;
  SIGVP_DEBUG("health") << "vp" << vp_id << " failed; degrading to emulation fallback";
  if (on_failed) on_failed(vp_id);
  return true;
}

}  // namespace sigvp
