#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "ipc/job.hpp"
#include "sim/event_queue.hpp"

namespace sigvp {

/// Transport cost model of the VP↔host IPC channel.
///
/// Two presets mirror the transports the paper names: shared memory (cheap
/// per-message, high bandwidth) and sockets (expensive per-message). Data
/// payloads (the bytes of guest memcpys) pay the bandwidth term; control
/// messages (launch requests, completions) pay only the per-message term.
struct IpcCostModel {
  std::string name = "shm";
  double per_message_us = 30.0;
  double bandwidth_gbps = 2.5;

  SimTime message_cost(std::uint64_t payload_bytes) const {
    return per_message_us + static_cast<double>(payload_bytes) / (bandwidth_gbps * 1e3);
  }

  /// Shared-memory transport (calibrated so the paper's Table 1 ΣVP
  /// overhead of ~3.3× native is reproduced for the matmul loop).
  static IpcCostModel shared_memory();
  /// TCP-socket transport: higher per-message cost, lower bandwidth.
  static IpcCostModel socket();
};

/// The IPC Manager of the paper's Fig. 2: moves job requests from the
/// virtual embedded GPUs to the host-side Job Queue (with transport delay)
/// and completion notifications back, and hosts the VP Control submodule
/// that stops and resumes VPs for synchronous Kernel Interleaving.
///
/// The manager is decoupled from the Re-scheduler through a delivery sink,
/// so the scheduling policy is pluggable.
class IpcManager {
 public:
  using DeliverFn = std::function<void(Job)>;

  IpcManager(EventQueue& queue, IpcCostModel cost);

  /// Connects the host-side consumer (the Re-scheduler/Dispatcher).
  void set_sink(DeliverFn sink);

  /// Registers a VP endpoint; returns its id.
  std::uint32_t register_vp(const std::string& name);
  std::size_t num_vps() const { return vps_.size(); }

  /// Sends a job from `vp_id` to the host. `payload_bytes` is the data
  /// carried across the transport (0 for control-only messages). The job's
  /// on_complete is wrapped so the response message cost and any VP-control
  /// stop are applied before the VP sees the completion.
  void send_job(std::uint32_t vp_id, Job job, std::uint64_t payload_bytes);

  // --- VP control -------------------------------------------------------------
  /// Stops a VP: completion notifications destined to it are held.
  void stop_vp(std::uint32_t vp_id);
  /// Resumes a VP: held notifications are delivered immediately.
  void resume_vp(std::uint32_t vp_id);
  bool is_stopped(std::uint32_t vp_id) const;

  // --- stats ------------------------------------------------------------------
  std::uint64_t messages_sent() const { return messages_sent_; }
  SimTime transport_time_total() const { return transport_time_total_; }
  const IpcCostModel& cost_model() const { return cost_; }

 private:
  struct VpEndpoint {
    std::string name;
    bool stopped = false;
    std::deque<std::function<void()>> held;  // notifications gated by VP control
  };

  void notify_vp(std::uint32_t vp_id, std::function<void()> deliver);

  EventQueue& queue_;
  IpcCostModel cost_;
  DeliverFn sink_;
  std::vector<VpEndpoint> vps_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t messages_sent_ = 0;
  SimTime transport_time_total_ = 0.0;
};

}  // namespace sigvp
