#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/fault_stats.hpp"
#include "fault/health.hpp"
#include "ipc/job.hpp"
#include "sim/event_queue.hpp"

namespace sigvp {

namespace trace {
class RunTrace;
}
namespace snapshot {
class Writer;
}

/// Transport cost model of the VP↔host IPC channel.
///
/// Two presets mirror the transports the paper names: shared memory (cheap
/// per-message, high bandwidth) and sockets (expensive per-message). Data
/// payloads (the bytes of guest memcpys) pay the bandwidth term; control
/// messages (launch requests, completions) pay only the per-message term.
struct IpcCostModel {
  std::string name = "shm";
  double per_message_us = 30.0;
  double bandwidth_gbps = 2.5;

  SimTime message_cost(std::uint64_t payload_bytes) const {
    return per_message_us + static_cast<double>(payload_bytes) / (bandwidth_gbps * 1e3);
  }

  /// Shared-memory transport (calibrated so the paper's Table 1 ΣVP
  /// overhead of ~3.3× native is reproduced for the matmul loop).
  static IpcCostModel shared_memory();
  /// TCP-socket transport: higher per-message cost, lower bandwidth.
  static IpcCostModel socket();
};

/// The IPC Manager of the paper's Fig. 2: moves job requests from the
/// virtual embedded GPUs to the host-side Job Queue (with transport delay)
/// and completion notifications back, and hosts the VP Control submodule
/// that stops and resumes VPs for synchronous Kernel Interleaving.
///
/// The manager is decoupled from the Re-scheduler through a delivery sink,
/// so the scheduling policy is pluggable.
///
/// With an active FaultPlan (see set_fault) the transport becomes lossy —
/// messages drop, duplicate and suffer latency spikes — and the manager
/// compensates with a reliable-delivery layer: every logical message is
/// acknowledged by its receiver, a watchdog retransmits on ack timeout with
/// exponential backoff, redeliveries are deduplicated by message id, and a
/// message whose bounded retry budget is exhausted escalates the VP to the
/// emulation fallback (graceful degradation). Without a fault plan none of
/// this machinery exists at runtime: the code path, message counts and
/// timing are byte-identical to the pre-fault-layer implementation.
class IpcManager {
 public:
  using DeliverFn = std::function<void(Job)>;

  IpcManager(EventQueue& queue, IpcCostModel cost);

  /// Connects the host-side consumer (the Re-scheduler/Dispatcher).
  void set_sink(DeliverFn sink);

  /// Installs the scenario's trace/metrics context (null = off; the default).
  /// Call before register_vp so VP tracks get named. Must outlive the manager.
  void set_trace(trace::RunTrace* trace) { trace_ = trace; }

  /// Registers a VP endpoint; returns its id.
  std::uint32_t register_vp(const std::string& name);
  std::size_t num_vps() const { return vps_.size(); }

  /// Sends a job from `vp_id` to the host. `payload_bytes` is the data
  /// carried across the transport (0 for control-only messages). The job's
  /// on_complete is wrapped so the response message cost and any VP-control
  /// stop are applied before the VP sees the completion.
  void send_job(std::uint32_t vp_id, Job job, std::uint64_t payload_bytes);

  // --- VP control -------------------------------------------------------------
  /// Stops a VP: completion notifications destined to it are held.
  void stop_vp(std::uint32_t vp_id);
  /// Resumes a VP: held notifications are delivered immediately.
  void resume_vp(std::uint32_t vp_id);
  bool is_stopped(std::uint32_t vp_id) const;

  // --- fault tolerance --------------------------------------------------------
  /// Installs the scenario's fault oracle plus the recovery policy. All four
  /// must outlive the manager. Passing a null plan (the default state)
  /// disables the reliable-delivery layer entirely.
  void set_fault(const FaultPlan* plan, FaultStats* stats, HealthPolicy* health,
                 RecoveryConfig recovery);
  /// Handler that serves a job outside the ΣVP path (the EmulationDriver
  /// fallback) once its VP is failed; receives the job with the response
  /// wrapping already applied, so its completion still flows back through
  /// notify_vp gating.
  void set_escalation(std::function<void(std::uint32_t vp_id, Job job)> escalate);
  /// True when `vp_id`'s retry budget was exhausted and its traffic has been
  /// degraded to the fallback path.
  bool vp_failed(std::uint32_t vp_id) const;
  /// Fallback drain gate: true when `seq` is the lowest unreleased sequence
  /// number of `vp_id`, i.e. the only position at which a fallback job may
  /// execute without breaking the VP's program order.
  bool fallback_turn(std::uint32_t vp_id, std::uint64_t seq) const;
  /// True when `seq` of `vp_id` already released its completion to the VP.
  /// The fallback drain uses it to discard stale duplicate escalations (a
  /// request the watchdog gave up on may in fact have been delivered — the
  /// two-generals ambiguity — and completed through the normal path).
  bool seq_released(std::uint32_t vp_id, std::uint64_t seq) const;
  /// Invoked after every in-order completion release (any VP); the fallback
  /// path uses it to re-check its drain gate.
  void set_release_listener(std::function<void(std::uint32_t vp_id)> listener);

  /// Serializes the transport and per-endpoint state a fleet capture must
  /// pin down: message/fault-roll counters, and for every VP endpoint the
  /// control state plus the retransmit/dedup/in-order-release buffers
  /// (outstanding sequence numbers, parked out-of-order completions, held
  /// notifications). Used as digest input for resume replay-verification.
  void capture_state(snapshot::Writer& w) const;

  // --- stats ------------------------------------------------------------------
  std::uint64_t messages_sent() const { return messages_sent_; }
  SimTime transport_time_total() const { return transport_time_total_; }
  const IpcCostModel& cost_model() const { return cost_; }

  /// Deterministic size-based estimate of resident host memory: struct plus
  /// per-VP endpoint capacity (the fleet bytes-per-VP denominator).
  std::uint64_t resident_bytes() const {
    return sizeof(IpcManager) + vps_.capacity() * sizeof(VpEndpoint);
  }

 private:
  struct VpEndpoint {
    std::string name;
    bool stopped = false;                    // VP control (interleaving)
    std::deque<std::function<void()>> held;  // notifications gated by VP control
    // Fault layer: a wedged endpoint stopped consuming completions (the
    // injected VP stall); `stall_fired` makes the injection one-shot.
    bool wedged = false;
    bool stall_fired = false;
    std::uint64_t completions_delivered = 0;
    // Fault layer: in-order completion release. `outstanding` holds the
    // sequence number of every job sent over the faulty transport and not
    // yet released back to the VP; `ready` parks completions that arrived
    // out of order (late retransmissions, latency spikes) until every
    // earlier sequence number has been released. Submission order ==
    // completion order, faulty transport or not.
    std::set<std::uint64_t> outstanding;
    std::map<std::uint64_t, std::function<void()>> ready;
  };

  /// One logical message in flight over the faulty transport, shared by the
  /// retransmission watchdog and the (possibly duplicated) arrival events.
  struct Transfer {
    std::uint32_t vp_id = 0;
    bool response = false;  // direction: host→VP completion vs VP→host request
    std::uint64_t payload_bytes = 0;
    std::uint32_t attempts = 0;
    bool delivered = false;  // receiver-side dedup marker
    bool acked = false;      // sender-side: watchdog disarmed
    SimTime first_sent_at = 0.0;
    std::function<void()> deliver;
    std::function<void()> give_up;
  };

  bool fault_active() const { return fault_plan_ != nullptr && fault_plan_->enabled(); }
  void notify_vp(std::uint32_t vp_id, std::function<void()> deliver);
  void flush_held(VpEndpoint& vp);
  /// Transmits `xfer` once (charging transport), rolls drop/dup/spike faults,
  /// and arms the ack watchdog for this attempt.
  void attempt_transfer(const std::shared_ptr<Transfer>& xfer);
  void start_transfer(std::uint32_t vp_id, bool response, std::uint64_t payload_bytes,
                      std::function<void()> deliver, std::function<void()> give_up);
  void send_job_faulty(std::uint32_t vp_id, Job job, std::uint64_t payload_bytes);
  /// Funnels a completion for (vp_id, seq) into the per-VP release buffer;
  /// `deliver` runs once, when every earlier outstanding seq has released.
  void complete_in_order(std::uint32_t vp_id, std::uint64_t seq,
                         std::function<void()> deliver);
  void wedge_watchdog(std::uint32_t vp_id);

  EventQueue& queue_;
  IpcCostModel cost_;
  DeliverFn sink_;
  trace::RunTrace* trace_ = nullptr;
  std::vector<VpEndpoint> vps_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t messages_sent_ = 0;
  SimTime transport_time_total_ = 0.0;

  // --- fault-layer state (inert without an active plan) ------------------------
  const FaultPlan* fault_plan_ = nullptr;
  FaultStats* fault_stats_ = nullptr;
  HealthPolicy* health_ = nullptr;
  RecoveryConfig recovery_;
  std::function<void(std::uint32_t, Job)> escalate_;
  std::function<void(std::uint32_t)> release_listener_;
  std::uint64_t msg_roll_index_ = 0;  // fault-decision counter, one per transmission
};

}  // namespace sigvp
