#include "ipc/ipc_manager.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp {

IpcCostModel IpcCostModel::shared_memory() {
  IpcCostModel m;
  m.name = "shm";
  m.per_message_us = 30.0;
  m.bandwidth_gbps = 2.5;
  return m;
}

IpcCostModel IpcCostModel::socket() {
  IpcCostModel m;
  m.name = "socket";
  m.per_message_us = 120.0;
  m.bandwidth_gbps = 1.0;
  return m;
}

IpcManager::IpcManager(EventQueue& queue, IpcCostModel cost)
    : queue_(queue), cost_(std::move(cost)) {}

void IpcManager::set_sink(DeliverFn sink) { sink_ = std::move(sink); }

std::uint32_t IpcManager::register_vp(const std::string& name) {
  vps_.push_back(VpEndpoint{name, false, {}});
  return static_cast<std::uint32_t>(vps_.size() - 1);
}

void IpcManager::send_job(std::uint32_t vp_id, Job job, std::uint64_t payload_bytes) {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  SIGVP_REQUIRE(static_cast<bool>(sink_), "IPC manager has no host-side sink");

  job.id = next_job_id_++;
  job.vp_id = vp_id;

  const SimTime request_cost = cost_.message_cost(payload_bytes);
  ++messages_sent_;
  transport_time_total_ += request_cost;

  // Wrap the completion so the response message (control-only) is charged
  // and VP control can hold the notification while the VP is stopped.
  auto original = std::move(job.on_complete);
  job.on_complete = [this, vp_id, original](SimTime end, const KernelExecStats* stats) {
    const SimTime response_cost = cost_.message_cost(0);
    ++messages_sent_;
    transport_time_total_ += response_cost;
    KernelExecStats stats_copy;
    const bool has_stats = stats != nullptr;
    if (has_stats) stats_copy = *stats;
    queue_.schedule_at(end + response_cost, [this, vp_id, original, has_stats, stats_copy] {
      notify_vp(vp_id, [this, original, has_stats, stats_copy] {
        if (original) original(queue_.now(), has_stats ? &stats_copy : nullptr);
      });
    });
  };

  queue_.schedule_after(request_cost, [this, job = std::move(job)]() mutable {
    job.enqueue_time = queue_.now();
    SIGVP_TRACE("ipc") << "deliver job " << job.id << " from vp" << job.vp_id
                       << " at t=" << queue_.now();
    sink_(std::move(job));
  });
}

void IpcManager::notify_vp(std::uint32_t vp_id, std::function<void()> deliver) {
  VpEndpoint& vp = vps_[vp_id];
  if (vp.stopped) {
    vp.held.push_back(std::move(deliver));
    return;
  }
  deliver();
}

void IpcManager::stop_vp(std::uint32_t vp_id) {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  vps_[vp_id].stopped = true;
}

void IpcManager::resume_vp(std::uint32_t vp_id) {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  VpEndpoint& vp = vps_[vp_id];
  if (!vp.stopped) return;
  vp.stopped = false;
  while (!vp.held.empty() && !vp.stopped) {
    auto deliver = std::move(vp.held.front());
    vp.held.pop_front();
    deliver();
  }
}

bool IpcManager::is_stopped(std::uint32_t vp_id) const {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  return vps_[vp_id].stopped;
}

}  // namespace sigvp
