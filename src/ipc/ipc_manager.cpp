#include "ipc/ipc_manager.hpp"

#include <memory>
#include <utility>

#include "snapshot/serial.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp {

IpcCostModel IpcCostModel::shared_memory() {
  IpcCostModel m;
  m.name = "shm";
  m.per_message_us = 30.0;
  m.bandwidth_gbps = 2.5;
  return m;
}

IpcCostModel IpcCostModel::socket() {
  IpcCostModel m;
  m.name = "socket";
  m.per_message_us = 120.0;
  m.bandwidth_gbps = 1.0;
  return m;
}

IpcManager::IpcManager(EventQueue& queue, IpcCostModel cost)
    : queue_(queue), cost_(std::move(cost)) {}

void IpcManager::set_sink(DeliverFn sink) { sink_ = std::move(sink); }

std::uint32_t IpcManager::register_vp(const std::string& name) {
  vps_.push_back(VpEndpoint{});
  vps_.back().name = name;
  const auto id = static_cast<std::uint32_t>(vps_.size() - 1);
  if (trace_ != nullptr) trace_->thread_name(id, name + ".guest");
  return id;
}

void IpcManager::set_fault(const FaultPlan* plan, FaultStats* stats, HealthPolicy* health,
                           RecoveryConfig recovery) {
  SIGVP_REQUIRE(plan == nullptr || (stats != nullptr && health != nullptr),
                "fault plan without stats/health sinks");
  fault_plan_ = plan;
  fault_stats_ = stats;
  health_ = health;
  recovery_ = recovery;
}

void IpcManager::set_escalation(std::function<void(std::uint32_t, Job)> escalate) {
  escalate_ = std::move(escalate);
}

bool IpcManager::vp_failed(std::uint32_t vp_id) const {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  return fault_active() && health_ != nullptr && health_->failed(vp_id);
}

bool IpcManager::fallback_turn(std::uint32_t vp_id, std::uint64_t seq) const {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  const VpEndpoint& vp = vps_[vp_id];
  return vp.outstanding.empty() || *vp.outstanding.begin() == seq;
}

bool IpcManager::seq_released(std::uint32_t vp_id, std::uint64_t seq) const {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  const VpEndpoint& vp = vps_[vp_id];
  return vp.outstanding.find(seq) == vp.outstanding.end();
}

void IpcManager::set_release_listener(std::function<void(std::uint32_t)> listener) {
  release_listener_ = std::move(listener);
}

void IpcManager::send_job(std::uint32_t vp_id, Job job, std::uint64_t payload_bytes) {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  SIGVP_REQUIRE(static_cast<bool>(sink_), "IPC manager has no host-side sink");

  job.id = next_job_id_++;
  job.vp_id = vp_id;

  // Guest-submit observability: the flow starts here (on the VP's track)
  // and ends when the completion is released back to the guest.
  const SimTime submit_time = queue_.now();
  const std::uint64_t job_id = job.id;
  if (trace_ != nullptr) {
    ++trace_->ipc_requests->value;
    trace_->ipc_payload_bytes->record(static_cast<double>(payload_bytes));
    trace_->flow_begin(vp_id, submit_time, job_id);
    trace_->span(vp_id, "ipc", std::string("submit:") + job_kind_name(job.kind), submit_time,
                 submit_time + cost_.message_cost(payload_bytes),
                 {trace::arg("job", job_id), trace::arg("payload_bytes", payload_bytes)});
  }

  if (fault_active()) {
    send_job_faulty(vp_id, std::move(job), payload_bytes);
    return;
  }

  const SimTime request_cost = cost_.message_cost(payload_bytes);
  ++messages_sent_;
  transport_time_total_ += request_cost;

  // Wrap the completion so the response message (control-only) is charged
  // and VP control can hold the notification while the VP is stopped.
  auto original = std::move(job.on_complete);
  job.on_complete = [this, vp_id, original, job_id,
                     submit_time](SimTime end, const KernelExecStats* stats) {
    const SimTime response_cost = cost_.message_cost(0);
    ++messages_sent_;
    transport_time_total_ += response_cost;
    if (trace_ != nullptr) {
      trace_->span(vp_id, "ipc", "response", end, end + response_cost,
                   {trace::arg("job", job_id)});
    }
    KernelExecStats stats_copy;
    const bool has_stats = stats != nullptr;
    if (has_stats) stats_copy = *stats;
    queue_.schedule_at(end + response_cost, [this, vp_id, original, has_stats, stats_copy,
                                             job_id, submit_time] {
      notify_vp(vp_id, [this, vp_id, original, has_stats, stats_copy, job_id, submit_time] {
        if (trace_ != nullptr) {
          trace_->job_latency_us->record(queue_.now() - submit_time);
          trace_->flow_end(vp_id, queue_.now(), job_id);
        }
        if (original) original(queue_.now(), has_stats ? &stats_copy : nullptr);
      });
    });
  };

  queue_.schedule_after(request_cost, [this, job = std::move(job)]() mutable {
    job.enqueue_time = queue_.now();
    SIGVP_TRACE("ipc") << "deliver job " << job.id << " from vp" << job.vp_id
                       << " at t=" << queue_.now();
    sink_(std::move(job));
  });
}

// --- fault-tolerant transport --------------------------------------------------

void IpcManager::attempt_transfer(const std::shared_ptr<Transfer>& xfer) {
  const SimTime cost = cost_.message_cost(xfer->payload_bytes);
  ++messages_sent_;
  transport_time_total_ += cost;
  ++xfer->attempts;

  const std::uint64_t roll = msg_roll_index_++;
  const bool dropped = fault_plan_->drop_message(xfer->response, roll);
  const SimTime spike = dropped ? 0.0 : fault_plan_->message_delay(xfer->response, roll);
  const bool duplicated = !dropped && fault_plan_->duplicate_message(xfer->response, roll);

  if (trace_ != nullptr) {
    const char* dir = xfer->response ? "resp" : "req";
    const std::vector<trace::Arg> args = {trace::arg("vp", static_cast<int>(xfer->vp_id)),
                                          trace::arg("attempt", static_cast<int>(xfer->attempts))};
    if (dropped) {
      trace_->instant(trace::RunTrace::kTidIpc, "fault", std::string("drop:") + dir,
                      queue_.now(), args);
    } else {
      trace_->span(trace::RunTrace::kTidIpc, "ipc", std::string("xfer:") + dir, queue_.now(),
                   queue_.now() + cost + spike, args);
      if (spike > 0.0) {
        trace_->instant(trace::RunTrace::kTidIpc, "fault", std::string("spike:") + dir,
                        queue_.now(), args);
      }
      if (duplicated) {
        trace_->instant(trace::RunTrace::kTidIpc, "fault", std::string("dup:") + dir,
                        queue_.now(), args);
      }
    }
  }

  // Receiver side: run the payload once (redeliveries and duplicates are
  // suppressed by message id), then return an ack. A lost ack leaves the
  // sender's watchdog armed, so the message is retransmitted and the dedup
  // absorbs it — exactly-once delivery on an at-least-once transport.
  auto arrive = [this, xfer] {
    if (xfer->delivered) {
      ++fault_stats_->duplicates_suppressed;
    } else {
      xfer->delivered = true;
      xfer->deliver();
    }
    const SimTime ack_cost = cost_.message_cost(0);
    ++messages_sent_;
    transport_time_total_ += ack_cost;
    const std::uint64_t ack_roll = msg_roll_index_++;
    if (fault_plan_->drop_ack(ack_roll)) {
      ++fault_stats_->acks_dropped;
      return;
    }
    queue_.schedule_after(ack_cost, [this, xfer] {
      if (xfer->acked) return;
      xfer->acked = true;
      if (xfer->attempts > 1) {
        // This message needed the watchdog: recovery latency is the stretch
        // from the first transmission to the ack that finally landed.
        fault_stats_->note_recovery(queue_.now() - xfer->first_sent_at);
      }
    });
  };

  if (dropped) {
    ++fault_stats_->messages_dropped;
  } else {
    if (spike > 0.0) ++fault_stats_->latency_spikes;
    queue_.schedule_after(cost + spike, arrive);
    if (duplicated) {
      ++fault_stats_->messages_duplicated;
      // The duplicate trails the original by one control-message time.
      queue_.schedule_after(cost + spike + cost_.message_cost(0), arrive);
    }
  }

  // Watchdog for this attempt, with clamped exponential backoff
  // (overflow-safe at any attempt count — see retransmit_backoff).
  const SimTime timeout = retransmit_backoff(recovery_, xfer->attempts);
  queue_.schedule_after(timeout, [this, xfer] {
    if (xfer->acked) return;
    if (health_) health_->report_incident(xfer->vp_id);
    if (xfer->attempts > recovery_.max_retries) {
      SIGVP_DEBUG("ipc") << (xfer->response ? "response" : "request") << " to/from vp"
                         << xfer->vp_id << " undeliverable after " << xfer->attempts
                         << " attempts";
      if (trace_ != nullptr) {
        trace_->instant(trace::RunTrace::kTidIpc, "fault",
                        xfer->response ? "give_up:resp" : "give_up:req", queue_.now(),
                        {trace::arg("vp", static_cast<int>(xfer->vp_id)),
                         trace::arg("attempts", static_cast<int>(xfer->attempts))});
      }
      xfer->acked = true;  // disarm: no further retransmissions
      fault_stats_->note_recovery(queue_.now() - xfer->first_sent_at);
      xfer->give_up();
      return;
    }
    ++fault_stats_->retransmits;
    if (trace_ != nullptr) {
      trace_->instant(trace::RunTrace::kTidIpc, "fault",
                      xfer->response ? "retransmit:resp" : "retransmit:req", queue_.now(),
                      {trace::arg("vp", static_cast<int>(xfer->vp_id)),
                       trace::arg("attempt", static_cast<int>(xfer->attempts))});
    }
    attempt_transfer(xfer);
  });
}

void IpcManager::start_transfer(std::uint32_t vp_id, bool response,
                                std::uint64_t payload_bytes, std::function<void()> deliver,
                                std::function<void()> give_up) {
  auto xfer = std::make_shared<Transfer>();
  xfer->vp_id = vp_id;
  xfer->response = response;
  xfer->payload_bytes = payload_bytes;
  xfer->first_sent_at = queue_.now();
  xfer->deliver = std::move(deliver);
  xfer->give_up = std::move(give_up);
  attempt_transfer(xfer);
}

void IpcManager::send_job_faulty(std::uint32_t vp_id, Job job, std::uint64_t payload_bytes) {
  const std::uint64_t seq = job.seq_in_vp;
  vps_[vp_id].outstanding.insert(seq);

  // Wrap the completion. The response leg is itself a reliable transfer, and
  // every completion — transported, degraded or fallback-served — funnels
  // through the per-VP in-order release buffer, so retried, duplicated or
  // latency-spiked responses can never invert the VP's completion order.
  auto original = std::move(job.on_complete);
  const std::uint32_t vp = vp_id;
  const std::uint64_t job_id = job.id;
  const SimTime submit_time = queue_.now();
  job.on_complete = [this, vp, seq, original, job_id,
                     submit_time](SimTime, const KernelExecStats* stats) {
    KernelExecStats stats_copy;
    const bool has_stats = stats != nullptr;
    if (has_stats) stats_copy = *stats;
    auto notify = [this, vp, original, has_stats, stats_copy, job_id, submit_time] {
      notify_vp(vp, [this, vp, original, has_stats, stats_copy, job_id, submit_time] {
        if (trace_ != nullptr) {
          trace_->job_latency_us->record(queue_.now() - submit_time);
          trace_->flow_end(vp, queue_.now(), job_id);
        }
        if (original) original(queue_.now(), has_stats ? &stats_copy : nullptr);
      });
    };
    if (health_ != nullptr && health_->failed(vp)) {
      // The VP's transport is already declared dead (fallback mode): skip
      // the transfer machinery, keep the in-order gate.
      complete_in_order(vp, seq, std::move(notify));
      return;
    }
    auto deliver = [this, vp, seq, notify] { complete_in_order(vp, seq, notify); };
    // An undeliverable completion means the VP endpoint can no longer be
    // reached over IPC: degrade the VP and hand the completion over
    // directly (the restarted endpoint resyncs state from the host side) —
    // a job is never lost, only late.
    auto give_up = [this, vp, deliver] {
      if (health_) health_->mark_failed(vp);
      deliver();
    };
    start_transfer(vp, /*response=*/true, 0, std::move(deliver), std::move(give_up));
  };

  // A failed VP's traffic short-circuits to the emulation fallback: the
  // transport to/from it is considered dead, but the fleet keeps going.
  if (health_ != nullptr && health_->failed(vp_id) && escalate_) {
    escalate_(vp_id, std::move(job));
    return;
  }

  // Request leg. The job is boxed so watchdog retransmissions and the
  // escalation path can both reach it; delivery hands the sink a copy.
  auto boxed = std::make_shared<Job>(std::move(job));
  auto deliver = [this, vp_id, boxed] {
    if (health_ != nullptr && health_->failed(vp_id) && escalate_) {
      // The VP failed while this request was in flight; its queued peers
      // were already rerouted, so this one must follow them, not the sink.
      escalate_(vp_id, Job(*boxed));
      return;
    }
    Job copy = *boxed;
    copy.enqueue_time = queue_.now();
    SIGVP_TRACE("ipc") << "deliver job " << copy.id << " from vp" << copy.vp_id
                       << " at t=" << queue_.now();
    sink_(std::move(copy));
  };
  auto give_up = [this, vp_id, boxed] {
    if (health_ != nullptr && escalate_) {
      // Degrade first (purging the dispatcher's queued jobs of this VP into
      // the fallback), then escalate the stuck job itself; the fallback
      // drain re-sorts everything by sequence number.
      health_->mark_failed(vp_id);
      escalate_(vp_id, std::move(*boxed));
      return;
    }
    ++fault_stats_->unrecovered_jobs;  // no fallback wired: the job is lost
  };
  start_transfer(vp_id, /*response=*/false, payload_bytes, std::move(deliver),
                 std::move(give_up));
}

void IpcManager::complete_in_order(std::uint32_t vp_id, std::uint64_t seq,
                                   std::function<void()> deliver) {
  VpEndpoint& vp = vps_[vp_id];
  if (vp.outstanding.find(seq) == vp.outstanding.end()) {
    // Already released: a watchdog gave up on a response whose original
    // delivery actually landed (the classic two-generals ambiguity).
    ++fault_stats_->duplicates_suppressed;
    return;
  }
  if (!vp.ready.emplace(seq, std::move(deliver)).second) {
    ++fault_stats_->duplicates_suppressed;  // second completion while parked
    return;
  }
  while (!vp.outstanding.empty()) {
    const std::uint64_t head = *vp.outstanding.begin();
    auto it = vp.ready.find(head);
    if (it == vp.ready.end()) break;
    auto fire = std::move(it->second);
    vp.ready.erase(it);
    vp.outstanding.erase(vp.outstanding.begin());
    fire();
    if (release_listener_) release_listener_(vp_id);
  }
}

// --- delivery gating (VP control + injected stalls) -----------------------------

void IpcManager::notify_vp(std::uint32_t vp_id, std::function<void()> deliver) {
  SIGVP_ASSERT(vp_id < vps_.size(), "notification for unknown VP endpoint");
  VpEndpoint& vp = vps_[vp_id];

  // Injected VP stall: after the configured number of consumed completions
  // the endpoint wedges — it stops consuming notifications until the stall
  // watchdog force-restarts it.
  if (fault_active() && !vp.stall_fired &&
      fault_plan_->config().stall_vp == static_cast<std::int32_t>(vp_id) &&
      vp.completions_delivered >= fault_plan_->config().stall_after_completions) {
    vp.stall_fired = true;
    vp.wedged = true;
    ++fault_stats_->vp_stalls;
    SIGVP_DEBUG("ipc") << "vp" << vp_id << " wedged (stopped consuming completions) at t="
                       << queue_.now();
    wedge_watchdog(vp_id);
  }

  if (vp.stopped || vp.wedged) {
    vp.held.push_back(std::move(deliver));
    return;
  }
  ++vp.completions_delivered;
  deliver();
}

void IpcManager::wedge_watchdog(std::uint32_t vp_id) {
  const SimTime wedged_at = queue_.now();
  queue_.schedule_after(recovery_.vp_stall_timeout_us, [this, vp_id, wedged_at] {
    VpEndpoint& vp = vps_[vp_id];
    if (!vp.wedged) return;
    vp.wedged = false;
    ++fault_stats_->vp_restarts;
    fault_stats_->note_recovery(queue_.now() - wedged_at);
    if (health_) health_->report_incident(vp_id);
    SIGVP_DEBUG("ipc") << "vp" << vp_id << " force-restarted by the stall watchdog at t="
                       << queue_.now();
    flush_held(vp);
  });
}

void IpcManager::flush_held(VpEndpoint& vp) {
  while (!vp.held.empty() && !vp.stopped && !vp.wedged) {
    auto deliver = std::move(vp.held.front());
    vp.held.pop_front();
    ++vp.completions_delivered;
    deliver();
  }
}

void IpcManager::stop_vp(std::uint32_t vp_id) {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  vps_[vp_id].stopped = true;
}

void IpcManager::resume_vp(std::uint32_t vp_id) {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  VpEndpoint& vp = vps_[vp_id];
  if (!vp.stopped) return;
  vp.stopped = false;
  flush_held(vp);
}

bool IpcManager::is_stopped(std::uint32_t vp_id) const {
  SIGVP_REQUIRE(vp_id < vps_.size(), "unknown VP endpoint");
  return vps_[vp_id].stopped;
}

void IpcManager::capture_state(snapshot::Writer& w) const {
  w.u64(next_job_id_);
  w.u64(messages_sent_);
  w.f64(transport_time_total_);
  w.u64(msg_roll_index_);
  w.u64(vps_.size());
  for (const VpEndpoint& vp : vps_) {
    w.boolean(vp.stopped);
    w.u64(vp.held.size());
    w.boolean(vp.wedged);
    w.boolean(vp.stall_fired);
    w.u64(vp.completions_delivered);
    w.u64(vp.outstanding.size());
    for (std::uint64_t seq : vp.outstanding) w.u64(seq);
    w.u64(vp.ready.size());
    for (const auto& [seq, fn] : vp.ready) w.u64(seq);
  }
}

}  // namespace sigvp
