#pragma once

#include <cstdint>
#include <functional>

#include "cuda/launch_spec.hpp"
#include "sim/time.hpp"

namespace sigvp {

/// Kind of work a virtual embedded GPU pushes into the host Job Queue.
enum class JobKind { kMemcpyH2D, kMemcpyD2H, kKernel };

/// Short label for traces and diagnostics.
inline const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kMemcpyH2D: return "h2d";
    case JobKind::kMemcpyD2H: return "d2h";
    case JobKind::kKernel: return "kernel";
  }
  return "?";
}

/// One entry of the host-side Job Queue (paper Fig. 2).
///
/// The (vp_id, seq_in_vp) pair encodes the partial order the Re-scheduler
/// must preserve: jobs of the same VP execute in seq order; jobs of
/// different VPs may be freely reordered.
struct Job {
  std::uint64_t id = 0;
  std::uint32_t vp_id = 0;
  std::uint64_t seq_in_vp = 0;
  JobKind kind = JobKind::kKernel;

  // Copies.
  std::uint64_t device_addr = 0;
  std::uint64_t bytes = 0;
  const void* host_src = nullptr;  // h2d source (nullptr = timing-only)
  void* host_dst = nullptr;        // d2h destination (nullptr = timing-only)

  // Kernel launches.
  cuda::LaunchSpec launch;

  /// Completion notification. `stats` is non-null for kernel jobs.
  std::function<void(SimTime end, const KernelExecStats* stats)> on_complete;

  SimTime enqueue_time = 0.0;

  /// Fault layer: transient-launch retries this job has already consumed
  /// (survives re-queueing; bounds the dispatcher's retry loop).
  std::uint32_t attempts = 0;
};

}  // namespace sigvp
