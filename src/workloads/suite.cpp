#include "workloads/suite.hpp"

#include "util/check.hpp"

namespace sigvp::workloads {

std::vector<Workload> make_suite() {
  std::vector<Workload> suite;
  suite.reserve(20);
  // Paper Fig. 11 chart order (left to right), with our two additions
  // (reduction, histogram) appended.
  suite.push_back(make_simple_gl());
  suite.push_back(make_mandelbrot());
  suite.push_back(make_bicubic_texture());
  suite.push_back(make_recursive_gaussian());
  suite.push_back(make_monte_carlo());
  suite.push_back(make_segmentation_tree());
  suite.push_back(make_marching_cubes());
  suite.push_back(make_volume_filtering());
  suite.push_back(make_sobel_filter());
  suite.push_back(make_nbody());
  suite.push_back(make_smoke_particles());
  suite.push_back(make_merge_sort());
  suite.push_back(make_stereo_disparity());
  suite.push_back(make_convolution_separable());
  suite.push_back(make_dct8x8());
  suite.push_back(make_black_scholes());
  suite.push_back(make_matrix_mul());
  suite.push_back(make_vector_add());
  suite.push_back(make_reduction());
  suite.push_back(make_histogram());
  return suite;
}

const Workload& find(const std::vector<Workload>& suite, const std::string& app) {
  for (const Workload& w : suite) {
    if (w.app == app) return w;
  }
  throw ContractError("no workload named " + app);
}

}  // namespace sigvp::workloads
