#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace sigvp::workloads {

// Elementwise kernels.
Workload make_vector_add();
Workload make_black_scholes();
Workload make_simple_gl();
Workload make_smoke_particles();
Workload make_merge_sort();
Workload make_histogram();
Workload make_segmentation_tree();

// Stencil / image kernels.
Workload make_sobel_filter();
Workload make_volume_filtering();
Workload make_bicubic_texture();
Workload make_marching_cubes();

// Loop-heavy kernels.
Workload make_matrix_mul();
Workload make_mandelbrot();
Workload make_monte_carlo();
Workload make_nbody();
Workload make_convolution_separable();
Workload make_recursive_gaussian();
Workload make_stereo_disparity();

// Shared-memory kernels.
Workload make_dct8x8();
Workload make_reduction();

// App-shaped multi-kernel pipelines (src/workloads/apps.cpp): each iteration
// chains PipelineStage launches over one shared buffer set, with per-VP
// scalar jitter producing the almost-identical request regime.
Workload make_graph_analytics();  // BFS step + PageRank contrib/gather (CSR)
Workload make_ml_inference();     // matmul -> bias/ReLU -> group softmax
Workload make_cam_pipeline();     // gain -> 3-tap blur -> quantize

/// The jittered per-VP scalars of the pipeline stages — exposed so golden
/// models and tests reproduce the exact f32 value a stage received.
float graph_damping(std::uint64_t jitter);
float ml_gain(std::uint64_t jitter);
float ml_inv_temperature(std::uint64_t jitter);
float cam_gain(std::uint64_t jitter);
float cam_qstep(std::uint64_t jitter);

/// The full 20-app suite used by the Fig. 11 reproduction, in the paper's
/// chart order where the paper names the app, with our additions appended.
std::vector<Workload> make_suite();

/// The three app-shaped pipelines (graphAnalytics, mlInference, camPipeline)
/// used by the open-loop traffic benches; kept separate from make_suite()
/// so the Fig. 11 suite stays exactly the paper's app set.
std::vector<Workload> make_app_suite();

/// Finds a workload by app name in a suite; throws when absent.
const Workload& find(const std::vector<Workload>& suite, const std::string& app);

}  // namespace sigvp::workloads
