#include "workloads/spec.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "workloads/suite.hpp"

namespace sigvp::workloads {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::vector<std::vector<Request>> build_request_streams(const WorkloadSpec& spec,
                                                        const std::vector<Workload>& apps) {
  SIGVP_REQUIRE(spec.request_count > 0, "workload spec needs at least one request");
  SIGVP_REQUIRE(spec.vp_count > 0, "workload spec needs at least one VP");
  SIGVP_REQUIRE(!spec.mix.empty(), "workload spec needs a non-empty mix");
  SIGVP_REQUIRE(spec.n_jitter_pct < 100, "size jitter must stay below 100%");

  std::uint32_t total_pct = 0;
  std::vector<const Workload*> mix_apps;
  for (const MixEntry& e : spec.mix) {
    total_pct += e.percent;
    mix_apps.push_back(&find(apps, e.app));  // throws when absent
  }
  SIGVP_REQUIRE(total_pct == 100, "mix percentages must sum to 100");

  std::vector<std::vector<Request>> streams(spec.vp_count);
  for (std::uint32_t vp = 0; vp < spec.vp_count; ++vp) {
    // Per-VP generator stream: independent of every other VP's draws, so
    // adding a VP never perturbs existing streams.
    Rng rng(mix64(spec.seed ^ (0x9E3779B97F4A7C15ull * (vp + 1))));
    // The scalar-jitter seed is per-VP (one VP = one guest configuration),
    // nonzero by construction so jitter_scale always perturbs.
    const std::uint64_t vp_jitter =
        spec.scalar_jitter ? (mix64(spec.seed + vp) | 1ull) : 0;
    streams[vp].reserve(spec.request_count);
    for (std::uint32_t r = 0; r < spec.request_count; ++r) {
      const std::uint64_t draw = rng.next_below(100);
      std::uint64_t cum = 0;
      const Workload* w = mix_apps.back();
      for (std::size_t i = 0; i < spec.mix.size(); ++i) {
        cum += spec.mix[i].percent;
        if (draw < cum) {
          w = mix_apps[i];
          break;
        }
      }
      std::uint64_t n = spec.base_n;
      if (spec.n_jitter_pct > 0) {
        const std::uint64_t p = spec.n_jitter_pct;
        const std::uint64_t pct = 100 - p + rng.next_below(2 * p + 1);
        n = spec.base_n * pct / 100;
      }
      n = std::max<std::uint64_t>(32, n / 32 * 32);  // every app accepts 32-multiples
      streams[vp].push_back(Request{w, n, vp_jitter});
    }
  }
  return streams;
}

}  // namespace sigvp::workloads
