#include <algorithm>
#include <cstdint>

#include "workloads/suite.hpp"

namespace sigvp::workloads {

Workload make_dct8x8() {
  // Row pass of the 8x8 DCT: each 64-thread block stages one tile in shared
  // memory, synchronizes, and contracts rows against the DCT matrix.
  KernelBuilder b("dct8x8", 4);
  b.set_shared_bytes(8 * 8 * 4);
  const auto pin = b.reg(), pcoef = b.reg(), pout = b.reg(), n = b.reg();
  b.block("entry");
  b.ld_param(pin, 0);
  b.ld_param(pcoef, 1);
  b.ld_param(pout, 2);
  b.ld_param(n, 3);

  const auto tid = b.reg(), ctaid = b.reg(), lsize = b.reg(), g = b.reg();
  b.special(tid, SpecialReg::kTidX);
  b.special(ctaid, SpecialReg::kCtaidX);
  b.mov_imm_i(lsize, 64);
  b.mul_i(g, ctaid, lsize);
  b.add_i(g, g, tid);

  const auto tx = b.reg(), ty = b.reg(), eight = b.reg(), zero = b.reg();
  b.mov_imm_i(eight, 8);
  b.mov_imm_i(zero, 0);
  b.rem_i(tx, tid, eight);
  b.div_i(ty, tid, eight);

  // Stage the tile element into shared memory.
  const auto gaddr = b.reg(), x = b.reg(), saddr = b.reg();
  b.addr_of(gaddr, pin, g, 2);
  b.ld_global_f32(x, gaddr);
  b.addr_of(saddr, zero, tid, 2);
  b.st_shared_f32(x, saddr);
  b.bar();

  // acc = sum_k coef[tx*8+k] * tile[ty*8+k]
  const auto tx8 = b.reg(), ty8 = b.reg(), acc = b.reg(), k = b.reg(), one = b.reg();
  b.mul_i(tx8, tx, eight);
  b.mul_i(ty8, ty, eight);
  b.mov_imm_f32(acc, 0.0f);
  b.mov_imm_i(k, 0);
  b.mov_imm_i(one, 1);
  auto loop = b.loop_begin(k, eight, one, "k");
  const auto cidx = b.reg(), caddr = b.reg(), c = b.reg(), sidx = b.reg(),
             s2addr = b.reg(), v = b.reg();
  b.add_i(cidx, tx8, k);
  b.addr_of(caddr, pcoef, cidx, 2);
  b.ld_global_f32(c, caddr);
  b.add_i(sidx, ty8, k);
  b.addr_of(s2addr, zero, sidx, 2);
  b.ld_shared_f32(v, s2addr);
  b.fma_f32(acc, c, v, acc);
  b.loop_end(loop);

  const auto oaddr = b.reg();
  b.addr_of(oaddr, pout, g, 2);
  b.st_global_f32(acc, oaddr);
  b.ret();

  Workload w;
  w.app = "dct8x8";
  w.kernel = b.build();
  w.default_n = 4u << 20;
  w.test_n = 256;  // four tiles
  w.estimate_n = 65536;
  const KernelIR ir = w.kernel;
  auto tile_dims = [](std::uint64_t n_) {
    LaunchDims d;
    d.block_x = 64;
    d.grid_x = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, n_ / 64));
    return d;
  };
  w.dims = tile_dims;
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{
        {4 * n_, true, false}, {64 * 4, true, false}, {4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_ptr(a[2]);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir, tile_dims](std::uint64_t n_) {
    const std::uint64_t total = tile_dims(n_).total_threads();
    return profile_from_visits(ir, {{"entry", total},
                                    {"k.head", total * 9},
                                    {"k.body", total * 8},
                                    {"k.exit", total}});
  };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{8 * n_ + 256, 10 * n_, 0.9, 0.95};
  };
  w.traits.coalescable = false;  // tile layout, shared-memory staging
  w.traits.iterations = 30;
  w.traits.launches_per_iter = 2;
  w.traits.iter_h2d_bytes = 1u << 20;  // fresh image blocks per iteration
  w.traits.iter_d2h_bytes = 1u << 20;
  w.traits.noncuda_guest_instrs = 3000;
  return w;
}

Workload make_reduction() {
  // Shared-memory tree reduction; one partial sum per block. Branch-free
  // inner loop (select-guarded) so the profile is exact.
  KernelBuilder b("reduction", 3);
  b.set_shared_bytes(256 * 4);
  const auto pin = b.reg(), pout = b.reg(), n = b.reg();
  b.block("entry");
  b.ld_param(pin, 0);
  b.ld_param(pout, 1);
  b.ld_param(n, 2);
  (void)n;

  const auto tid = b.reg(), ctaid = b.reg(), bsize = b.reg(), gid = b.reg(),
             zero = b.reg();
  b.special(tid, SpecialReg::kTidX);
  b.special(ctaid, SpecialReg::kCtaidX);
  b.mov_imm_i(bsize, 256);
  b.mov_imm_i(zero, 0);
  b.mul_i(gid, ctaid, bsize);
  b.add_i(gid, gid, tid);

  const auto gaddr = b.reg(), x = b.reg(), saddr = b.reg();
  b.addr_of(gaddr, pin, gid, 2);
  b.ld_global_f32(x, gaddr);
  b.addr_of(saddr, zero, tid, 2);
  b.st_shared_f32(x, saddr);
  b.bar();

  const auto s = b.reg(), i = b.reg(), one = b.reg(), steps = b.reg();
  b.mov_imm_i(s, 128);
  b.mov_imm_i(i, 0);
  b.mov_imm_i(one, 1);
  b.mov_imm_i(steps, 8);
  auto loop = b.loop_begin(i, steps, one, "s");
  const auto active = b.reg(), idx2 = b.reg(), a2 = b.reg(), v1 = b.reg(),
             v2 = b.reg(), sum = b.reg(), res = b.reg();
  b.set_lt_i(active, tid, s);
  b.add_i(idx2, tid, s);
  b.select(idx2, active, idx2, tid);  // inactive threads read their own slot
  b.ld_shared_f32(v1, saddr);
  b.addr_of(a2, zero, idx2, 2);
  b.ld_shared_f32(v2, a2);
  b.add_f32(sum, v1, v2);
  b.select(res, active, sum, v1);
  b.st_shared_f32(res, saddr);
  b.bar();
  b.shr_b(s, s, one);
  b.loop_end(loop);

  // Every thread stores the block total to out[ctaid] (same value).
  const auto base = b.reg(), total = b.reg(), oaddr = b.reg();
  b.addr_of(base, zero, zero, 2);
  b.ld_shared_f32(total, base);
  b.addr_of(oaddr, pout, ctaid, 2);
  b.st_global_f32(total, oaddr);
  b.ret();

  Workload w;
  w.app = "reduction";
  w.kernel = b.build();
  w.default_n = 8u << 20;
  w.test_n = 1024;
  const KernelIR ir = w.kernel;
  auto red_dims = [](std::uint64_t n_) {
    LaunchDims d;
    d.block_x = 256;
    d.grid_x = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, n_ / 256));
    return d;
  };
  w.dims = red_dims;
  w.buffers = [red_dims](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, true, false},
                                   {4 * red_dims(n_).num_blocks(), false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir, red_dims](std::uint64_t n_) {
    const std::uint64_t total = red_dims(n_).total_threads();
    return profile_from_visits(ir, {{"entry", total},
                                    {"s.head", total * 9},
                                    {"s.body", total * 8},
                                    {"s.exit", total}});
  };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{4 * n_ + 4 * (n_ / 256), n_ + n_ / 256, 0.9, 0.97};
  };
  w.fill_inputs = [](std::uint64_t, std::vector<std::vector<std::uint8_t>>& bufs) {
    fill_f32_pattern(bufs[0], 0.0f, 2.0f, 0x81);
  };
  w.traits.coalescable = false;  // per-block partials feed a host-side pass
  w.traits.iterations = 30;
  w.traits.launches_per_iter = 4;
  w.traits.noncuda_guest_instrs = 4000;
  return w;
}

}  // namespace sigvp::workloads
