#include <algorithm>
#include <cstdint>

#include "workloads/suite.hpp"

namespace sigvp::workloads {

namespace {

LaunchDims dims1d(std::uint64_t n, std::uint32_t block = 256) {
  LaunchDims d;
  d.block_x = block;
  d.grid_x = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, (n + block - 1) / block));
  return d;
}

}  // namespace

Workload make_sobel_filter() {
  // 3x3 Sobel edge detector over an 8-bit image; integer-dominated, which is
  // why the paper observes a comparatively low speedup for it.
  KernelBuilder b("SobelFilter", 4);
  const auto pin = b.reg(), pout = b.reg(), wreg = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pin, 0);
  b.ld_param(pout, 1);
  b.ld_param(wreg, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto x = b.reg(), y = b.reg(), h = b.reg(), zero = b.reg(), one = b.reg();
  b.rem_i(x, gid, wreg);
  b.div_i(y, gid, wreg);
  b.div_i(h, n, wreg);
  b.mov_imm_i(zero, 0);
  b.mov_imm_i(one, 1);

  const auto wm1 = b.reg(), hm1 = b.reg();
  b.sub_i(wm1, wreg, one);
  b.sub_i(hm1, h, one);

  // Row base offsets for y-1, y, y+1 (clamped).
  auto clamped_row = [&](int dy) {
    const auto r = b.reg(), off = b.reg();
    if (dy < 0) {
      b.sub_i(r, y, one);
    } else if (dy > 0) {
      b.add_i(r, y, one);
    } else {
      b.mov(r, y);
    }
    b.max_i(r, r, zero);
    b.min_i(r, r, hm1);
    b.mul_i(off, r, wreg);
    return off;
  };
  const auto row_m = clamped_row(-1), row_0 = clamped_row(0), row_p = clamped_row(1);

  auto clamped_col = [&](int dx) {
    const auto c = b.reg();
    if (dx < 0) {
      b.sub_i(c, x, one);
    } else if (dx > 0) {
      b.add_i(c, x, one);
    } else {
      b.mov(c, x);
    }
    b.max_i(c, c, zero);
    b.min_i(c, c, wm1);
    return c;
  };
  const auto col_m = clamped_col(-1), col_0 = clamped_col(0), col_p = clamped_col(1);

  auto load_pixel = [&](KernelBuilder::Reg row_off, KernelBuilder::Reg col) {
    const auto idx = b.reg(), addr = b.reg(), v = b.reg();
    b.add_i(idx, row_off, col);
    b.add_i(addr, pin, idx);
    b.ld_global_u8(v, addr);
    return v;
  };
  const auto p00 = load_pixel(row_m, col_m), p01 = load_pixel(row_m, col_0),
             p02 = load_pixel(row_m, col_p);
  const auto p10 = load_pixel(row_0, col_m), p12 = load_pixel(row_0, col_p);
  const auto p20 = load_pixel(row_p, col_m), p21 = load_pixel(row_p, col_0),
             p22 = load_pixel(row_p, col_p);

  // gx = (p02 + 2 p12 + p22) - (p00 + 2 p10 + p20)
  const auto t0 = b.reg(), t1 = b.reg(), gx = b.reg(), gy = b.reg(), mag = b.reg();
  b.add_i(t0, p02, p22);
  b.add_i(t1, p12, p12);
  b.add_i(t0, t0, t1);
  b.add_i(t1, p00, p20);
  b.sub_i(gx, t0, t1);
  b.add_i(t1, p10, p10);
  b.sub_i(gx, gx, t1);
  // gy = (p20 + 2 p21 + p22) - (p00 + 2 p01 + p02)
  b.add_i(t0, p20, p22);
  b.add_i(t1, p21, p21);
  b.add_i(t0, t0, t1);
  b.add_i(t1, p00, p02);
  b.sub_i(gy, t0, t1);
  b.add_i(t1, p01, p01);
  b.sub_i(gy, gy, t1);

  b.abs_i(gx, gx);
  b.abs_i(gy, gy);
  b.add_i(mag, gx, gy);
  const auto max_v = b.reg(), addr = b.reg();
  b.mov_imm_i(max_v, 255);
  b.min_i(mag, mag, max_v);
  b.add_i(addr, pout, gid);
  b.st_global_u8(mag, addr);
  emit_guard_exit(b);

  Workload w;
  w.app = "SobelFilter";
  w.kernel = b.build();
  w.default_n = 4u << 20;  // 2048x2048 image
  w.test_n = 1024;         // 32x32 image
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{n_, true, false}, {n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    // Width: square images; tests pass n that is a perfect square.
    std::uint64_t width = 1;
    while (width * width < n_) ++width;
    args.push_i64(static_cast<std::int64_t>(width));
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{2 * n_, 9 * n_, 0.85, 0.9};
  };
  w.fill_inputs = [](std::uint64_t, std::vector<std::vector<std::uint8_t>>& bufs) {
    fill_u8_pattern(bufs[0], 0x61);  // grayscale image
  };
  // 2D stencil: rows interleave across the merged arena incorrectly, so
  // the kernel matcher refuses it (paper lists SobelFilter as not helped).
  w.traits.coalescable = false;
  w.traits.iterations = 30;
  w.traits.launches_per_iter = 1;
  w.traits.iter_h2d_bytes = 1u << 20;
  w.traits.iter_d2h_bytes = 1u << 20;
  w.traits.noncuda_guest_instrs = 150000;  // image file I/O + display
  return w;
}

Workload make_volume_filtering() {
  // 6-point 3D box filter over a D^3 f32 volume.
  KernelBuilder b("VolumeFiltering", 4);
  const auto pin = b.reg(), pout = b.reg(), dreg = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pin, 0);
  b.ld_param(pout, 1);
  b.ld_param(dreg, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto x = b.reg(), y = b.reg(), z = b.reg(), t = b.reg(), zero = b.reg(),
             one = b.reg(), dm1 = b.reg(), d2 = b.reg();
  b.rem_i(x, gid, dreg);
  b.div_i(t, gid, dreg);
  b.rem_i(y, t, dreg);
  b.div_i(z, t, dreg);
  b.mov_imm_i(zero, 0);
  b.mov_imm_i(one, 1);
  b.sub_i(dm1, dreg, one);
  b.mul_i(d2, dreg, dreg);

  const auto acc = b.reg(), addr = b.reg(), v = b.reg(), idx = b.reg();
  // Center sample.
  b.addr_of(addr, pin, gid, 2);
  b.ld_global_f32(acc, addr);

  auto sample = [&](KernelBuilder::Reg coord, KernelBuilder::Reg stride, int delta) {
    const auto c = b.reg();
    if (delta < 0) {
      b.sub_i(c, coord, one);
    } else {
      b.add_i(c, coord, one);
    }
    b.max_i(c, c, zero);
    b.min_i(c, c, dm1);
    // idx = gid + (c - coord) * stride
    const auto diff = b.reg();
    b.sub_i(diff, c, coord);
    b.mul_i(diff, diff, stride);
    b.add_i(idx, gid, diff);
    b.addr_of(addr, pin, idx, 2);
    b.ld_global_f32(v, addr);
    b.add_f32(acc, acc, v);
  };
  sample(x, one, -1);
  sample(x, one, +1);
  sample(y, dreg, -1);
  sample(y, dreg, +1);
  sample(z, d2, -1);
  sample(z, d2, +1);

  const auto inv7 = b.reg(), res = b.reg();
  b.mov_imm_f32(inv7, 1.0f / 7.0f);
  b.mul_f32(res, acc, inv7);
  b.addr_of(addr, pout, gid, 2);
  b.st_global_f32(res, addr);
  emit_guard_exit(b);

  Workload w;
  w.app = "VolumeFiltering";
  w.kernel = b.build();
  w.default_n = 1u << 21;  // 128^3
  w.test_n = 512;          // 8^3
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, true, false}, {4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    std::uint64_t d = 1;
    while (d * d * d < n_) ++d;
    args.push_i64(static_cast<std::int64_t>(d));
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{8 * n_, 8 * n_, 0.8, 0.85};
  };
  w.fill_inputs = [](std::uint64_t, std::vector<std::vector<std::uint8_t>>& bufs) {
    fill_f32_pattern(bufs[0], 0.0f, 1.0f, 0x71);  // scalar field
  };
  w.traits.coalescable = false;  // 3D neighborhoods break across arena seams
  w.traits.iterations = 25;
  w.traits.launches_per_iter = 1;
  w.traits.noncuda_guest_instrs = 200000;  // OpenGL volume rendering
  return w;
}

Workload make_bicubic_texture() {
  // 1D bicubic reconstruction along x (Catmull-Rom weights).
  KernelBuilder b("bicubicTexture", 4);
  const auto pin = b.reg(), pout = b.reg(), scale = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pin, 0);
  b.ld_param(pout, 1);
  b.ld_param(scale, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto fx = b.reg(), u = b.reg(), fu = b.reg(), frac = b.reg(), i0 = b.reg();
  b.cvt_i_to_f32(fx, gid);
  b.mul_f32(u, fx, scale);
  b.floor_f32(fu, u);
  b.sub_f32(frac, u, fu);
  b.cvt_f32_to_i(i0, fu);

  // Catmull-Rom weights of `frac`.
  const auto one_f = b.reg(), half = b.reg(), t2 = b.reg(), t3 = b.reg();
  b.mov_imm_f32(one_f, 1.0f);
  b.mov_imm_f32(half, 0.5f);
  b.mul_f32(t2, frac, frac);
  b.mul_f32(t3, t2, frac);

  // w0 = 0.5(-t^3 + 2t^2 - t); w1 = 0.5(3t^3 - 5t^2 + 2); etc.
  auto weight = [&](float c3, float c2, float c1, float c0) {
    const auto acc = b.reg(), k = b.reg();
    b.mov_imm_f32(k, c3);
    b.mul_f32(acc, k, t3);
    b.mov_imm_f32(k, c2);
    b.fma_f32(acc, k, t2, acc);
    b.mov_imm_f32(k, c1);
    b.fma_f32(acc, k, frac, acc);
    b.mov_imm_f32(k, c0);
    b.add_f32(acc, acc, k);
    b.mul_f32(acc, acc, half);
    return acc;
  };
  const auto w0 = weight(-1.0f, 2.0f, -1.0f, 0.0f);
  const auto w1 = weight(3.0f, -5.0f, 0.0f, 2.0f);
  const auto w2 = weight(-3.0f, 4.0f, 1.0f, 0.0f);
  const auto w3 = weight(1.0f, -1.0f, 0.0f, 0.0f);

  const auto zero = b.reg(), one = b.reg(), nm1 = b.reg();
  b.mov_imm_i(zero, 0);
  b.mov_imm_i(one, 1);
  b.sub_i(nm1, n, one);

  const auto acc = b.reg(), fzero = b.reg();
  b.mov_imm_f32(fzero, 0.0f);
  b.mov(acc, fzero);
  auto tap = [&](int delta, KernelBuilder::Reg wgt) {
    const auto idx = b.reg(), addr = b.reg(), v = b.reg(), dconst = b.reg();
    b.mov_imm_i(dconst, delta);
    b.add_i(idx, i0, dconst);
    b.max_i(idx, idx, zero);
    b.min_i(idx, idx, nm1);
    b.addr_of(addr, pin, idx, 2);
    b.ld_global_f32(v, addr);
    b.fma_f32(acc, v, wgt, acc);
  };
  tap(-1, w0);
  tap(0, w1);
  tap(1, w2);
  tap(2, w3);

  const auto addr = b.reg();
  b.addr_of(addr, pout, gid, 2);
  b.st_global_f32(acc, addr);
  emit_guard_exit(b);

  Workload w;
  w.app = "bicubicTexture";
  w.kernel = b.build();
  w.default_n = 2u << 20;
  w.test_n = 1024;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, true, false}, {4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_f32(0.5f);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{8 * n_, 5 * n_, 0.9, 0.9};
  };
  w.coalesce = [](std::uint64_t n_) {
    cuda::CoalesceInfo c;
    c.eligible = true;
    c.key = "bicubicTexture.f32";
    c.elems = n_;
    c.buffers = {{0, 4, false}, {1, 4, true}};
    c.size_arg_index = 3;
    c.block_x = 256;
    return c;
  };
  w.traits.coalescable = true;
  w.traits.iterations = 30;
  w.traits.launches_per_iter = 2;
  w.traits.noncuda_guest_instrs = 160000;  // texture file reads + display
  return w;
}

Workload make_marching_cubes() {
  // Voxel classification pass: compare cell corners against the isovalue,
  // build the cube index with bit ops, and look up the vertex count.
  KernelBuilder b("marchingCubes", 5);
  const auto pfield = b.reg(), ptable = b.reg(), pcount = b.reg(), n = b.reg(),
             gid = b.reg();
  b.block("entry");
  b.ld_param(pfield, 0);
  b.ld_param(ptable, 1);
  b.ld_param(pcount, 2);
  // param 3 is the isovalue (f32), param 4 the element count.
  const auto iso = b.reg();
  b.ld_param(iso, 3);
  b.ld_param(n, 4);
  emit_guard(b, gid, n);

  const auto zero = b.reg(), one = b.reg(), nm1 = b.reg();
  b.mov_imm_i(zero, 0);
  b.mov_imm_i(one, 1);
  b.sub_i(nm1, n, one);

  const auto cube = b.reg();
  b.mov(cube, zero);
  auto corner = [&](int delta, int bit) {
    const auto idx = b.reg(), addr = b.reg(), v = b.reg(), in_set = b.reg(),
               shift = b.reg(), bits = b.reg();
    b.mov_imm_i(idx, delta);
    b.add_i(idx, gid, idx);
    b.min_i(idx, idx, nm1);
    b.addr_of(addr, pfield, idx, 2);
    b.ld_global_f32(v, addr);
    b.set_lt_f32(in_set, v, iso);
    b.mov_imm_i(shift, bit);
    b.shl_b(bits, in_set, shift);
    b.or_b(cube, cube, bits);
  };
  corner(0, 0);
  corner(1, 1);
  corner(2, 2);
  corner(3, 3);

  const auto taddr = b.reg(), count = b.reg(), oaddr = b.reg();
  b.addr_of(taddr, ptable, cube, 2);
  b.ld_global_i32(count, taddr);
  b.addr_of(oaddr, pcount, gid, 2);
  b.st_global_i32(count, oaddr);
  emit_guard_exit(b);

  Workload w;
  w.app = "marchingCubes";
  w.kernel = b.build();
  w.default_n = 2u << 20;
  w.test_n = 1024;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{
        {4 * n_, true, false}, {16 * 4, true, false}, {4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_ptr(a[2]);
    args.push_f32(0.5f);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{8 * n_ + 64, 6 * n_, 0.85, 0.9};
  };
  w.traits.coalescable = false;  // shared lookup table + cell windows
  w.traits.iterations = 25;
  w.traits.launches_per_iter = 3;
  w.traits.noncuda_guest_instrs = 250000;  // OpenGL mesh rendering
  return w;
}

}  // namespace sigvp::workloads
