#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cuda/launch_spec.hpp"
#include "gpu/prob_cache.hpp"
#include "interp/launch.hpp"
#include "interp/profile.hpp"
#include "ir/builder.hpp"
#include "ir/program.hpp"

namespace sigvp::workloads {

/// Role and size of one device buffer an app allocates for its kernel.
struct BufferSpec {
  std::uint64_t bytes = 0;
  bool is_input = false;   // host→device before launching
  bool is_output = false;  // device→host after launching
};

/// How an application behaves around its kernels — the knobs that explain
/// the per-app speedup differences in the paper's Fig. 11.
struct AppTraits {
  /// Fraction of ΣVP-accelerated app time spent in non-CUDA work (file I/O,
  /// OpenGL) that no GPU forwarding can accelerate; expressed as guest
  /// instructions per iteration.
  double noncuda_guest_instrs = 0.0;

  /// Kernel launches per iteration (mergeSort-style apps launch a cascade
  /// of small steps per iteration).
  std::uint32_t launches_per_iter = 1;

  /// Bytes streamed host↔device per iteration (0 = device-resident app
  /// that copies only at setup/teardown).
  std::uint64_t iter_h2d_bytes = 0;
  std::uint64_t iter_d2h_bytes = 0;

  /// Iterations of the app's main loop for the Fig. 11 scenario.
  std::uint32_t iterations = 20;

  /// Whether the kernel's memory layout admits Kernel Coalescing.
  bool coalescable = false;
};

/// One kernel of an app-shaped multi-kernel pipeline. Stage arguments are
/// jitter-aware: `jitter` is a per-VP seed (0 = canonical scalars) that
/// perturbs the stage's scalar parameters, producing the *almost-identical*
/// request regime — same kernel structure across VPs, slightly different
/// scalar args — that the re-scheduler's coalescing has to discriminate.
struct PipelineStage {
  std::string name;
  KernelIR kernel;
  std::function<LaunchDims(std::uint64_t n)> dims;
  /// Builds the stage's argument block given the device addresses of the
  /// *workload's* buffers (all of them, in `Workload::buffers` order).
  std::function<KernelArgs(const std::vector<std::uint64_t>& addrs, std::uint64_t n,
                           std::uint64_t jitter)>
      args;
  std::function<DynamicProfile(std::uint64_t n)> profile;
  std::function<MemoryBehavior(std::uint64_t n)> behavior;
  /// Coalescing descriptor; null (or !eligible) for stages whose memory
  /// access pattern crosses per-VP chunk seams (gathers, stencils).
  std::function<cuda::CoalesceInfo(std::uint64_t n)> coalesce;
};

/// One CUDA-SDK-like application: a kernel in the IR plus everything the
/// framework needs to size, launch, price, and validate it.
///
/// Per-size functions take `n`, the workload's element count (app-specific
/// meaning: vector length, matrix dimension, pixel count, body count, ...).
struct Workload {
  std::string app;            // CUDA SDK sample this stands in for
  KernelIR kernel;

  /// Problem sizes: the paper-scale default, a small functional-test size,
  /// and a mid size for the Fig. 12/13 estimation experiments (large enough
  /// that per-block overheads stop dominating, small enough to interpret).
  std::uint64_t default_n = 1 << 20;
  std::uint64_t test_n = 1 << 10;
  std::uint64_t estimate_n = 0;  // 0 = use test_n

  /// True when the analytic profile is exact (data-independent control
  /// flow); false for kernels like Mandelbrot whose λ depends on the data,
  /// where the analytic profile is the expectation.
  bool exact_profile = true;

  std::function<LaunchDims(std::uint64_t n)> dims;
  std::function<std::vector<BufferSpec>(std::uint64_t n)> buffers;
  /// Builds the argument block given device addresses for `buffers(n)`,
  /// in order.
  std::function<KernelArgs(const std::vector<std::uint64_t>& addrs, std::uint64_t n)> args;
  /// Analytic per-block λ profile for a launch of size n (paper Eq. 1).
  std::function<DynamicProfile(std::uint64_t n)> profile;
  /// Locality summary for the probabilistic cache model.
  std::function<MemoryBehavior(std::uint64_t n)> behavior;
  /// Coalescing descriptor (only when traits.coalescable).
  std::function<cuda::CoalesceInfo(std::uint64_t n)> coalesce;

  /// Fills host input buffers with deterministic values for functional runs
  /// and returns the expected outputs. in/out vectors are sized per
  /// buffers(n). Null for workloads validated by dedicated tests only.
  std::function<void(std::uint64_t n, std::vector<std::vector<std::uint8_t>>& host_bufs)>
      fill_inputs;

  /// Non-empty for app-shaped pipelines: each iteration launches the stages
  /// in order (kernel chaining), sharing the buffer set of `buffers(n)`.
  /// `traits.launches_per_iter` must be a multiple of `stages.size()`.
  /// The single-kernel fields above then describe the first stage, so code
  /// unaware of pipelines still sees a valid Workload.
  std::vector<PipelineStage> stages;

  AppTraits traits;
};

/// Deterministic input-fill helpers for `Workload::fill_inputs` — the same
/// bytes for a given (seed, size) on every backend and platform (seeded
/// xorshift from util/rng), which is what makes the cross-backend
/// differential tests byte-exact.
void fill_f32_pattern(std::vector<std::uint8_t>& buf, float lo, float hi, std::uint64_t seed);
void fill_f64_pattern(std::vector<std::uint8_t>& buf, double lo, double hi, std::uint64_t seed);
void fill_u8_pattern(std::vector<std::uint8_t>& buf, std::uint64_t seed);

/// Deterministic per-VP scalar perturbation for pipeline stages: 1.0 when
/// `jitter` is 0 (the canonical, trivially-coalescible configuration),
/// otherwise a seeded uniform draw in [lo, hi]. Golden-model tests call this
/// with the same seed to reproduce the exact f32 scalar a stage used.
double jitter_scale(std::uint64_t jitter, double lo, double hi);

/// Neighbor `j` (0..degree-1) of vertex `v` in the seeded fixed-degree
/// synthetic graph the graphAnalytics pipeline runs over. Pure hash — the
/// golden models regenerate the CSR without reading device memory.
std::uint64_t graph_neighbor(std::uint64_t v, std::uint32_t j, std::uint64_t n);

/// Index of the block labeled `label`; throws if absent.
std::size_t block_index(const KernelIR& ir, const std::string& label);

/// Builds a DynamicProfile from per-label λ counts: σ = Σ λ_b·µ_b and the
/// global load/store byte totals implied by the IR's memory ops.
DynamicProfile profile_from_visits(
    const KernelIR& ir,
    const std::vector<std::pair<std::string, std::uint64_t>>& label_visits);

/// λ vector for the canonical guarded-elementwise scaffold (blocks "entry",
/// "body", "exit"): entry = all threads, body = active, exit = inactive.
DynamicProfile guarded_profile(const KernelIR& ir, const LaunchDims& dims, std::uint64_t active);

/// The canonical guard prologue: loads no parameters, computes
/// gid = ctaid.x·ntid.x + tid.x into `gid`, and branches to "exit" when
/// gid >= regs[n]. Opens the "body" block. The caller must already have
/// opened the "entry" block and loaded `n`.
void emit_guard(KernelBuilder& b, KernelBuilder::Reg gid, KernelBuilder::Reg n);

/// Closes the canonical scaffold: terminates "body" with ret and emits the
/// "exit" block.
void emit_guard_exit(KernelBuilder& b);

}  // namespace sigvp::workloads
