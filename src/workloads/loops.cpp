#include <algorithm>
#include <cstdint>

#include "workloads/suite.hpp"

namespace sigvp::workloads {

namespace {

LaunchDims dims1d(std::uint64_t n, std::uint32_t block = 256) {
  LaunchDims d;
  d.block_x = block;
  d.grid_x = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, (n + block - 1) / block));
  return d;
}

/// λ profile of a guarded elementwise kernel with one inner loop of fixed
/// trip count `trips` (loop blocks labeled <loop>.head/.body/.exit).
DynamicProfile guarded_loop_profile(const KernelIR& ir, const LaunchDims& dims,
                                    std::uint64_t active, const std::string& loop,
                                    std::uint64_t trips) {
  const std::uint64_t total = dims.total_threads();
  return profile_from_visits(ir, {{"entry", total},
                                  {"body", active},
                                  {loop + ".head", active * (trips + 1)},
                                  {loop + ".body", active * trips},
                                  {loop + ".exit", active},
                                  {"exit", total - active}});
}

}  // namespace

Workload make_matrix_mul() {
  // C = A x B over FP64 squares — the kernel of the paper's Table 1
  // experiment (320x320 doubles, 300 invocations) and of Fig. 12/13.
  // The matrix dimension must be a multiple of the 16x16 block.
  KernelBuilder b("matrixMul", 4);
  const auto pa = b.reg(), pb = b.reg(), pc = b.reg(), m = b.reg();
  b.block("entry");
  b.ld_param(pa, 0);
  b.ld_param(pb, 1);
  b.ld_param(pc, 2);
  b.ld_param(m, 3);

  const auto row = b.reg(), col = b.reg(), t0 = b.reg(), t1 = b.reg();
  b.special(t0, SpecialReg::kCtaidY);
  b.special(t1, SpecialReg::kNtidY);
  b.mul_i(row, t0, t1);
  b.special(t0, SpecialReg::kTidY);
  b.add_i(row, row, t0);
  b.special(t0, SpecialReg::kCtaidX);
  b.special(t1, SpecialReg::kNtidX);
  b.mul_i(col, t0, t1);
  b.special(t0, SpecialReg::kTidX);
  b.add_i(col, col, t0);

  // Strength-reduced pointers: a_ptr walks row `row` of A, b_ptr walks
  // column `col` of B with stride m*8.
  const auto acc = b.reg(), a_ptr = b.reg(), b_ptr = b.reg(), row_off = b.reg(),
             c8 = b.reg(), stride = b.reg(), k = b.reg(), one = b.reg();
  b.mov_imm_f64(acc, 0.0);
  b.mov_imm_i(c8, 8);
  b.mul_i(stride, m, c8);
  b.mul_i(row_off, row, stride);
  b.add_i(a_ptr, pa, row_off);
  const auto col_off = b.reg();
  b.mul_i(col_off, col, c8);
  b.add_i(b_ptr, pb, col_off);
  b.mov_imm_i(k, 0);
  b.mov_imm_i(one, 1);

  // 4x unrolled inner product (what a real compiler emits): A walks with
  // immediate offsets, B with stride multiples; pointer updates amortize.
  const auto four = b.reg(), c32 = b.reg(), stride4 = b.reg();
  b.mov_imm_i(four, 4);
  b.mov_imm_i(c32, 32);
  b.mul_i(stride4, stride, four);
  const auto b1 = b.reg(), b2 = b.reg(), b3 = b.reg();
  b.add_i(b1, b_ptr, stride);
  b.add_i(b2, b1, stride);
  b.add_i(b3, b2, stride);

  auto loop = b.loop_begin(k, m, four, "k");
  const auto av = b.reg(), bv = b.reg();
  for (int u = 0; u < 4; ++u) {
    b.ld_global_f64(av, a_ptr, 8 * u);
    switch (u) {
      case 0: b.ld_global_f64(bv, b_ptr); break;
      case 1: b.ld_global_f64(bv, b1); break;
      case 2: b.ld_global_f64(bv, b2); break;
      case 3: b.ld_global_f64(bv, b3); break;
    }
    b.fma_f64(acc, av, bv, acc);
  }
  b.add_i(a_ptr, a_ptr, c32);
  b.add_i(b_ptr, b_ptr, stride4);
  b.add_i(b1, b1, stride4);
  b.add_i(b2, b2, stride4);
  b.add_i(b3, b3, stride4);
  b.loop_end(loop);

  const auto c_idx = b.reg(), c_addr = b.reg();
  b.mul_i(c_idx, row, m);
  b.add_i(c_idx, c_idx, col);
  b.addr_of(c_addr, pc, c_idx, 3);
  b.st_global_f64(acc, c_addr);
  b.ret();

  Workload w;
  w.app = "matrixMul";
  w.kernel = b.build();
  w.default_n = 320;
  w.test_n = 32;
  w.estimate_n = 96;
  const KernelIR ir = w.kernel;
  auto mm_dims = [](std::uint64_t m_) {
    LaunchDims d;
    d.block_x = 16;
    d.block_y = 16;
    d.grid_x = static_cast<std::uint32_t>(m_ / 16);
    d.grid_y = static_cast<std::uint32_t>(m_ / 16);
    return d;
  };
  w.dims = mm_dims;
  w.buffers = [](std::uint64_t m_) {
    const std::uint64_t bytes = 8 * m_ * m_;
    return std::vector<BufferSpec>{{bytes, true, false}, {bytes, true, false},
                                   {bytes, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t m_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_ptr(a[2]);
    args.push_i64(static_cast<std::int64_t>(m_));
    return args;
  };
  w.profile = [ir, mm_dims](std::uint64_t m_) {
    // 4x unrolled loop: m/4 trips per thread.
    const std::uint64_t threads = m_ * m_;
    const std::uint64_t trips = m_ / 4;
    return profile_from_visits(ir, {{"entry", threads},
                                    {"k.head", threads * (trips + 1)},
                                    {"k.body", threads * trips},
                                    {"k.exit", threads}});
  };
  w.behavior = [](std::uint64_t m_) {
    // Warp-level access pattern: A-row loads broadcast across the warp and
    // B-row segments coalesce, so the line-granular probe count is ~1/8 of
    // the raw load count; column revisits across blocks are distant.
    return MemoryBehavior{3 * 8 * m_ * m_, (2 * m_ * m_ * m_) / 8 + m_ * m_, 0.95, 0.95};
  };
  w.fill_inputs = [](std::uint64_t, std::vector<std::vector<std::uint8_t>>& bufs) {
    fill_f64_pattern(bufs[0], -1.0, 1.0, 0x41);
    fill_f64_pattern(bufs[1], -1.0, 1.0, 0x42);
  };
  w.traits.coalescable = false;  // 2D tiling does not concatenate linearly
  w.traits.iterations = 25;
  w.traits.launches_per_iter = 2;
  w.traits.iter_h2d_bytes = 2 * 8 * 320 * 320;
  w.traits.iter_d2h_bytes = 8 * 320 * 320;
  w.traits.noncuda_guest_instrs = 3000;
  return w;
}

Workload make_mandelbrot() {
  KernelBuilder b("Mandelbrot", 7);
  const auto pout = b.reg(), width = b.reg(), max_iter = b.reg(), cx0 = b.reg(),
             cy0 = b.reg(), step = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pout, 0);
  b.ld_param(width, 1);
  b.ld_param(max_iter, 2);
  b.ld_param(cx0, 3);
  b.ld_param(cy0, 4);
  b.ld_param(step, 5);
  b.ld_param(n, 6);
  emit_guard(b, gid, n);

  const auto xi = b.reg(), yi = b.reg(), fx = b.reg(), fy = b.reg(), cx = b.reg(),
             cy = b.reg();
  b.rem_i(xi, gid, width);
  b.div_i(yi, gid, width);
  b.cvt_i_to_f64(fx, xi);
  b.cvt_i_to_f64(fy, yi);
  b.fma_f64(cx, fx, step, cx0);
  b.fma_f64(cy, fy, step, cy0);

  const auto zx = b.reg(), zy = b.reg(), four = b.reg(), k = b.reg(), one = b.reg(),
             two = b.reg();
  b.mov_imm_f64(zx, 0.0);
  b.mov_imm_f64(zy, 0.0);
  b.mov_imm_f64(four, 4.0);
  b.mov_imm_f64(two, 2.0);
  b.mov_imm_i(k, 0);
  b.mov_imm_i(one, 1);
  b.jmp("it.head");

  b.block("it.head");
  const auto zx2 = b.reg(), zy2 = b.reg(), mag = b.reg(), in_budget = b.reg(),
             in_radius = b.reg(), go = b.reg();
  b.mul_f64(zx2, zx, zx);
  b.mul_f64(zy2, zy, zy);
  b.add_f64(mag, zx2, zy2);
  b.set_lt_i(in_budget, k, max_iter);
  b.set_lt_f64(in_radius, mag, four);
  b.and_b(go, in_budget, in_radius);
  b.bra_z(go, "it.exit");

  b.block("it.body");
  const auto t = b.reg(), nzx = b.reg();
  b.sub_f64(nzx, zx2, zy2);
  b.add_f64(nzx, nzx, cx);
  b.mul_f64(t, zx, zy);
  b.fma_f64(zy, t, two, cy);
  b.mov(zx, nzx);
  b.add_i(k, k, one);
  b.jmp("it.head");

  b.block("it.exit");
  const auto addr = b.reg();
  b.addr_of(addr, pout, gid, 2);
  b.st_global_i32(k, addr);
  b.ret();

  b.block("exit");
  b.ret();

  Workload w;
  w.app = "Mandelbrot";
  w.kernel = b.build();
  w.default_n = 1u << 20;
  w.test_n = 1024;
  w.estimate_n = 4096;
  w.exact_profile = false;  // iteration count is data-dependent
  const KernelIR ir = w.kernel;
  constexpr std::uint64_t kMaxIter = 64;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_i64(1024);                        // image width
    args.push_i64(kMaxIter);                    // iteration budget
    args.push_f64(-0.2);                        // region inside the set
    args.push_f64(-0.05);
    args.push_f64(1e-7);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) {
    // Expectation: the default region lies inside the set, so (nearly) all
    // pixels exhaust the budget.
    const LaunchDims d = dims1d(n_);
    const std::uint64_t total = d.total_threads();
    return profile_from_visits(ir, {{"entry", total},
                                    {"body", n_},
                                    {"it.head", n_ * (kMaxIter + 1)},
                                    {"it.body", n_ * kMaxIter},
                                    {"it.exit", n_},
                                    {"exit", total - n_}});
  };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{4 * n_, n_, 0.9, 0.97};
  };
  w.coalesce = [](std::uint64_t n_) {
    cuda::CoalesceInfo c;
    c.eligible = true;
    c.key = "Mandelbrot.f64";
    c.elems = n_;
    c.buffers = {{0, 4, true}};
    c.size_arg_index = 6;
    c.block_x = 256;
    return c;
  };
  w.traits.coalescable = true;
  w.traits.iterations = 30;
  w.traits.launches_per_iter = 4;
  w.traits.noncuda_guest_instrs = 140000;  // image output + display
  return w;
}

Workload make_monte_carlo() {
  // European option pricing by Monte Carlo path sampling: LCG random walk
  // plus exp-heavy payoff per path.
  constexpr std::int64_t kPaths = 64;
  KernelBuilder b("MonteCarlo", 3);
  const auto pout = b.reg(), paths = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pout, 0);
  b.ld_param(paths, 1);
  b.ld_param(n, 2);
  emit_guard(b, gid, n);

  const auto state = b.reg(), mul_c = b.reg(), add_c = b.reg(), mask = b.reg(),
             inv = b.reg(), acc = b.reg(), sigma = b.reg();
  b.mov_imm_i(mul_c, 1664525);
  b.mov_imm_i(add_c, 1013904223);
  b.mov_imm_i(mask, 0xFFFF);
  b.mov_imm_f32(inv, 1.0f / 65536.0f);
  b.mov_imm_f32(sigma, 0.25f);
  b.mov_imm_f32(acc, 0.0f);
  b.mul_i(state, gid, mul_c);
  b.add_i(state, state, add_c);

  const auto i = b.reg(), one = b.reg();
  b.mov_imm_i(i, 0);
  b.mov_imm_i(one, 1);
  auto loop = b.loop_begin(i, paths, one, "p");
  const auto bits = b.reg(), uf = b.reg(), u = b.reg(), e = b.reg();
  b.mul_i(state, state, mul_c);
  b.add_i(state, state, add_c);
  b.and_b(bits, state, mask);
  b.cvt_i_to_f32(uf, bits);
  b.mul_f32(u, uf, inv);
  b.mul_f32(u, u, sigma);
  b.exp_f32(e, u);
  b.add_f32(acc, acc, e);
  b.loop_end(loop);

  const auto cnt = b.reg(), mean = b.reg(), addr = b.reg();
  b.cvt_i_to_f32(cnt, paths);
  b.div_f32(mean, acc, cnt);
  b.addr_of(addr, pout, gid, 2);
  b.st_global_f32(mean, addr);
  b.ret();
  b.block("exit");
  b.ret();

  Workload w;
  w.app = "MonteCarlo";
  w.kernel = b.build();
  w.default_n = 1u << 19;
  w.test_n = 512;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_i64(kPaths);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) {
    return guarded_loop_profile(ir, dims1d(n_), n_, "p", kPaths);
  };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{4 * n_, n_, 0.9, 0.97};
  };
  w.traits.coalescable = false;  // RNG streams are seeded per global id
  w.traits.iterations = 25;
  w.traits.launches_per_iter = 1;
  w.traits.noncuda_guest_instrs = 120000;  // option table file I/O
  return w;
}

Workload make_nbody() {
  // All-pairs gravitational step over 1D positions.
  KernelBuilder b("nbody", 4);
  const auto ppos = b.reg(), pvel = b.reg(), nbodies = b.reg(), n = b.reg(),
             gid = b.reg();
  b.block("entry");
  b.ld_param(ppos, 0);
  b.ld_param(pvel, 1);
  b.ld_param(nbodies, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto my_addr = b.reg(), my_pos = b.reg(), acc = b.reg(), eps = b.reg(),
             ptr = b.reg(), c4 = b.reg();
  b.addr_of(my_addr, ppos, gid, 2);
  b.ld_global_f32(my_pos, my_addr);
  b.mov_imm_f32(acc, 0.0f);
  b.mov_imm_f32(eps, 1e-4f);
  b.mov(ptr, ppos);
  b.mov_imm_i(c4, 4);

  const auto j = b.reg(), one = b.reg();
  b.mov_imm_i(j, 0);
  b.mov_imm_i(one, 1);
  auto loop = b.loop_begin(j, nbodies, one, "j");
  const auto other = b.reg(), d = b.reg(), r2 = b.reg(), inv = b.reg(), inv3 = b.reg();
  b.ld_global_f32(other, ptr);
  b.sub_f32(d, other, my_pos);
  b.fma_f32(r2, d, d, eps);
  b.rsqrt_f32(inv, r2);
  b.mul_f32(inv3, inv, inv);
  b.mul_f32(inv3, inv3, inv);
  b.fma_f32(acc, inv3, d, acc);
  b.add_i(ptr, ptr, c4);
  b.loop_end(loop);

  const auto vaddr = b.reg(), vel = b.reg(), dt = b.reg();
  b.addr_of(vaddr, pvel, gid, 2);
  b.ld_global_f32(vel, vaddr);
  b.mov_imm_f32(dt, 0.001f);
  b.fma_f32(vel, acc, dt, vel);
  b.st_global_f32(vel, vaddr);
  b.ret();
  b.block("exit");
  b.ret();

  Workload w;
  w.app = "nbody";
  w.kernel = b.build();
  w.default_n = 16384;
  w.test_n = 128;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, true, false}, {4 * n_, true, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_i64(static_cast<std::int64_t>(n_));
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) {
    return guarded_loop_profile(ir, dims1d(n_), n_, "j", n_);
  };
  w.behavior = [](std::uint64_t n_) {
    // The j-loop load broadcasts across the warp: ~1/32 line probes.
    return MemoryBehavior{8 * n_, n_ * n_ / 32 + 3 * n_, 0.95, 0.9};
  };
  w.fill_inputs = [](std::uint64_t, std::vector<std::vector<std::uint8_t>>& bufs) {
    fill_f32_pattern(bufs[0], -10.0f, 10.0f, 0x51);  // positions
    fill_f32_pattern(bufs[1], -1.0f, 1.0f, 0x52);    // velocities
  };
  w.traits.coalescable = false;  // all-pairs interaction, not elementwise
  w.traits.iterations = 30;
  w.traits.launches_per_iter = 1;
  w.traits.noncuda_guest_instrs = 170000;  // OpenGL body rendering
  return w;
}

Workload make_convolution_separable() {
  // Row pass of a separable 17-tap convolution.
  constexpr std::int64_t kTaps = 17;
  KernelBuilder b("convolutionSeparable", 4);
  const auto pin = b.reg(), pcoef = b.reg(), pout = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pin, 0);
  b.ld_param(pcoef, 1);
  b.ld_param(pout, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto zero = b.reg(), one = b.reg(), nm1 = b.reg(), radius = b.reg(),
             taps = b.reg(), acc = b.reg();
  b.mov_imm_i(zero, 0);
  b.mov_imm_i(one, 1);
  b.sub_i(nm1, n, one);
  b.mov_imm_i(radius, kTaps / 2);
  b.mov_imm_i(taps, kTaps);
  b.mov_imm_f32(acc, 0.0f);

  const auto t = b.reg();
  b.mov_imm_i(t, 0);
  auto loop = b.loop_begin(t, taps, one, "t");
  const auto idx = b.reg(), addr = b.reg(), x = b.reg(), caddr = b.reg(), c = b.reg();
  b.add_i(idx, gid, t);
  b.sub_i(idx, idx, radius);
  b.max_i(idx, idx, zero);
  b.min_i(idx, idx, nm1);
  b.addr_of(addr, pin, idx, 2);
  b.ld_global_f32(x, addr);
  b.addr_of(caddr, pcoef, t, 2);
  b.ld_global_f32(c, caddr);
  b.fma_f32(acc, x, c, acc);
  b.loop_end(loop);

  const auto oaddr = b.reg();
  b.addr_of(oaddr, pout, gid, 2);
  b.st_global_f32(acc, oaddr);
  b.ret();
  b.block("exit");
  b.ret();

  Workload w;
  w.app = "convolutionSeparable";
  w.kernel = b.build();
  w.default_n = 4u << 20;
  w.test_n = 1024;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{
        {4 * n_, true, false}, {4 * kTaps, true, false}, {4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_ptr(a[2]);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) {
    return guarded_loop_profile(ir, dims1d(n_), n_, "t", kTaps);
  };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{8 * n_ + 4 * kTaps, (2 * kTaps + 1) * n_, 0.9, 0.9};
  };
  w.traits.coalescable = false;  // halo regions break across arena seams
  w.traits.iterations = 30;
  w.traits.launches_per_iter = 2;
  w.traits.noncuda_guest_instrs = 3000;
  return w;
}

Workload make_recursive_gaussian() {
  // IIR Gaussian along columns: one thread per column, serial over rows.
  constexpr std::int64_t kHeight = 256;
  KernelBuilder b("recursiveGaussian", 4);
  const auto pin = b.reg(), pout = b.reg(), height = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pin, 0);
  b.ld_param(pout, 1);
  b.ld_param(height, 2);
  b.ld_param(n, 3);  // n = image width = thread count
  emit_guard(b, gid, n);

  const auto a_coef = b.reg(), b_coef = b.reg(), yprev = b.reg(), stride = b.reg(),
             in_ptr = b.reg(), out_ptr = b.reg(), c4 = b.reg();
  b.mov_imm_f32(a_coef, 0.25f);
  b.mov_imm_f32(b_coef, 0.75f);
  b.mov_imm_f32(yprev, 0.0f);
  b.mov_imm_i(c4, 4);
  b.mul_i(stride, n, c4);
  b.addr_of(in_ptr, pin, gid, 2);
  b.addr_of(out_ptr, pout, gid, 2);

  const auto r = b.reg(), one = b.reg();
  b.mov_imm_i(r, 0);
  b.mov_imm_i(one, 1);
  auto loop = b.loop_begin(r, height, one, "r");
  const auto x = b.reg(), t = b.reg();
  b.ld_global_f32(x, in_ptr);
  b.mul_f32(t, b_coef, yprev);
  b.fma_f32(yprev, a_coef, x, t);
  b.st_global_f32(yprev, out_ptr);
  b.add_i(in_ptr, in_ptr, stride);
  b.add_i(out_ptr, out_ptr, stride);
  b.loop_end(loop);
  b.ret();
  b.block("exit");
  b.ret();

  Workload w;
  w.app = "recursiveGaussian";
  w.kernel = b.build();
  w.default_n = 8192;  // 8192-wide image, 256 rows
  w.test_n = 64;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    const std::uint64_t bytes = 4 * n_ * kHeight;
    return std::vector<BufferSpec>{{bytes, true, false}, {bytes, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_i64(kHeight);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) {
    return guarded_loop_profile(ir, dims1d(n_), n_, "r", kHeight);
  };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{8 * n_ * kHeight, 2 * n_ * kHeight, 0.9, 0.95};
  };
  w.coalesce = [](std::uint64_t n_) {
    cuda::CoalesceInfo c;
    c.eligible = true;
    c.key = "recursiveGaussian.col";
    c.elems = n_;  // columns concatenate cleanly when height matches
    c.buffers = {};  // buffers are column-major slabs; only timing merges
    c.size_arg_index = 3;
    c.block_x = 256;
    return c;
  };
  // Columns of independent images cannot share a width parameter without
  // re-striding, so coalescing is not attempted despite the linear layout.
  w.traits.coalescable = false;
  w.traits.iterations = 30;
  w.traits.launches_per_iter = 3;
  w.traits.noncuda_guest_instrs = 150000;  // image file I/O
  return w;
}

Workload make_stereo_disparity() {
  // Winner-takes-all disparity search over a 16-level range; SAD over
  // single pixels (integer absolute differences).
  constexpr std::int64_t kLevels = 16;
  KernelBuilder b("stereoDisparity", 4);
  const auto pleft = b.reg(), pright = b.reg(), pdisp = b.reg(), n = b.reg(),
             gid = b.reg();
  b.block("entry");
  b.ld_param(pleft, 0);
  b.ld_param(pright, 1);
  b.ld_param(pdisp, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto laddr = b.reg(), left = b.reg(), one = b.reg(), nm1 = b.reg(),
             best = b.reg(), best_d = b.reg(), levels = b.reg();
  b.add_i(laddr, pleft, gid);
  b.ld_global_u8(left, laddr);
  b.mov_imm_i(one, 1);
  b.sub_i(nm1, n, one);
  b.mov_imm_i(best, 1 << 20);
  b.mov_imm_i(best_d, 0);
  b.mov_imm_i(levels, kLevels);

  const auto d = b.reg();
  b.mov_imm_i(d, 0);
  auto loop = b.loop_begin(d, levels, one, "d");
  const auto idx = b.reg(), raddr = b.reg(), right = b.reg(), diff = b.reg(),
             better = b.reg();
  b.add_i(idx, gid, d);
  b.min_i(idx, idx, nm1);
  b.add_i(raddr, pright, idx);
  b.ld_global_u8(right, raddr);
  b.sub_i(diff, left, right);
  b.abs_i(diff, diff);
  b.set_lt_i(better, diff, best);
  b.select(best, better, diff, best);
  b.select(best_d, better, d, best_d);
  b.loop_end(loop);

  const auto oaddr = b.reg();
  b.addr_of(oaddr, pdisp, gid, 2);
  b.st_global_i32(best_d, oaddr);
  b.ret();
  b.block("exit");
  b.ret();

  Workload w;
  w.app = "stereoDisparity";
  w.kernel = b.build();
  w.default_n = 2u << 20;
  w.test_n = 1024;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{n_, true, false}, {n_, true, false},
                                   {4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_ptr(a[2]);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) {
    return guarded_loop_profile(ir, dims1d(n_), n_, "d", kLevels);
  };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{6 * n_, (kLevels + 2) * n_, 0.9, 0.9};
  };
  w.coalesce = [](std::uint64_t n_) {
    cuda::CoalesceInfo c;
    c.eligible = true;
    c.key = "stereoDisparity.u8";
    c.elems = n_;
    c.buffers = {{0, 1, false}, {1, 1, false}, {2, 4, true}};
    c.size_arg_index = 3;
    c.block_x = 256;
    return c;
  };
  w.traits.coalescable = true;
  w.traits.iterations = 25;
  w.traits.launches_per_iter = 2;
  w.traits.iter_h2d_bytes = 2u << 20;  // fresh stereo pair per iteration
  w.traits.noncuda_guest_instrs = 90000;
  return w;
}

}  // namespace sigvp::workloads
