// App-shaped multi-kernel pipelines (ROADMAP item 4): graph analytics
// (BFS/PageRank over a seeded fixed-degree CSR), ML inference (matmul →
// bias/ReLU → group softmax), and a camera/codec-style streaming pipeline
// (gain → 3-tap blur → quantize). Each app chains PipelineStage launches
// over one shared buffer set, with per-VP scalar jitter so requests from
// different VPs are *almost* identical — same kernel fingerprint, slightly
// different scalar args — which is the regime the re-scheduler's Kernel
// Coalescing has to discriminate (merge only byte-equal scalars).

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp::workloads {

namespace {

constexpr std::uint32_t kGraphDegree = 8;
constexpr std::uint32_t kMlInnerDim = 32;
constexpr std::uint32_t kSoftmaxGroup = 32;

LaunchDims dims1d(std::uint64_t n, std::uint32_t block = 256) {
  LaunchDims d;
  d.block_x = block;
  d.grid_x = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, (n + block - 1) / block));
  return d;
}

/// λ profile of a guarded elementwise kernel with one counted inner loop
/// (blocks labeled <loop>.head/.body/.exit), as in src/workloads/loops.cpp.
DynamicProfile guarded_loop_profile(const KernelIR& ir, const LaunchDims& dims,
                                    std::uint64_t active, const std::string& loop,
                                    std::uint64_t trips) {
  const std::uint64_t total = dims.total_threads();
  return profile_from_visits(ir, {{"entry", total},
                                  {"body", active},
                                  {loop + ".head", active * (trips + 1)},
                                  {loop + ".body", active * trips},
                                  {loop + ".exit", active},
                                  {"exit", total - active}});
}

cuda::CoalesceInfo linear_coalesce(const std::string& key, std::uint64_t elems,
                                   std::vector<cuda::CoalesceInfo::BufferArg> buffers,
                                   std::uint32_t size_arg, std::uint32_t block = 256) {
  cuda::CoalesceInfo c;
  c.eligible = true;
  c.key = key;
  c.elems = elems;
  c.buffers = std::move(buffers);
  c.size_arg_index = size_arg;
  c.block_x = block;
  return c;
}

void fill_f32_formula(std::vector<std::uint8_t>& buf, std::uint64_t count,
                      const std::function<float(std::uint64_t)>& f) {
  for (std::uint64_t i = 0; i < count && (i + 1) * 4 <= buf.size(); ++i) {
    const float v = f(i);
    std::memcpy(buf.data() + 4 * i, &v, 4);
  }
}

// --- graphAnalytics kernels ---------------------------------------------------

KernelIR build_bfs_step() {
  KernelBuilder b("bfsStep", 4);
  const auto pn = b.reg(), pdin = b.reg(), pdout = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pn, 0);
  b.ld_param(pdin, 1);
  b.ld_param(pdout, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto addr = b.reg(), best = b.reg(), one_f = b.reg(), base_nbr = b.reg();
  b.addr_of(addr, pdin, gid, 2);
  b.ld_global_f32(best, addr);
  b.mov_imm_f32(one_f, 1.0f);
  // Row base: 8 neighbors x 8 bytes = 64 B per vertex (beyond addr_of's
  // 16-byte stride cap, so scale the index explicitly).
  const auto degc = b.reg(), row = b.reg();
  b.mov_imm_i(degc, kGraphDegree);
  b.mul_i(row, gid, degc);
  b.addr_of(base_nbr, pn, row, 3);

  const auto j = b.reg(), deg = b.reg(), step = b.reg();
  b.mov_imm_i(j, 0);
  b.mov_imm_i(deg, kGraphDegree);
  b.mov_imm_i(step, 1);
  auto loop = b.loop_begin(j, deg, step, "nbr");
  const auto u = b.reg(), du = b.reg(), cand = b.reg();
  b.addr_of(addr, base_nbr, j, 3);
  b.ld_global_i64(u, addr);
  b.addr_of(addr, pdin, u, 2);
  b.ld_global_f32(du, addr);
  b.add_f32(cand, du, one_f);
  b.min_f32(best, best, cand);
  b.loop_end(loop);

  b.addr_of(addr, pdout, gid, 2);
  b.st_global_f32(best, addr);
  emit_guard_exit(b);
  return b.build();
}

KernelIR build_pr_contrib() {
  KernelBuilder b("prContrib", 4);
  const auto prank = b.reg(), pcontrib = b.reg(), n = b.reg(), scale = b.reg(),
             gid = b.reg();
  b.block("entry");
  b.ld_param(prank, 0);
  b.ld_param(pcontrib, 1);
  b.ld_param(n, 2);
  b.ld_param(scale, 3);
  emit_guard(b, gid, n);
  const auto addr = b.reg(), v = b.reg();
  b.addr_of(addr, prank, gid, 2);
  b.ld_global_f32(v, addr);
  b.mul_f32(v, v, scale);
  b.addr_of(addr, pcontrib, gid, 2);
  b.st_global_f32(v, addr);
  emit_guard_exit(b);
  return b.build();
}

KernelIR build_pr_gather() {
  KernelBuilder b("prGather", 5);
  const auto pn = b.reg(), pcontrib = b.reg(), pout = b.reg(), n = b.reg(),
             base = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pn, 0);
  b.ld_param(pcontrib, 1);
  b.ld_param(pout, 2);
  b.ld_param(n, 3);
  b.ld_param(base, 4);
  emit_guard(b, gid, n);

  const auto addr = b.reg(), acc = b.reg(), base_nbr = b.reg();
  b.mov_imm_f32(acc, 0.0f);
  const auto degc = b.reg(), row = b.reg();
  b.mov_imm_i(degc, kGraphDegree);
  b.mul_i(row, gid, degc);
  b.addr_of(base_nbr, pn, row, 3);  // 64 B per vertex row

  const auto j = b.reg(), deg = b.reg(), step = b.reg();
  b.mov_imm_i(j, 0);
  b.mov_imm_i(deg, kGraphDegree);
  b.mov_imm_i(step, 1);
  auto loop = b.loop_begin(j, deg, step, "nbr");
  const auto u = b.reg(), cu = b.reg();
  b.addr_of(addr, base_nbr, j, 3);
  b.ld_global_i64(u, addr);
  b.addr_of(addr, pcontrib, u, 2);
  b.ld_global_f32(cu, addr);
  b.add_f32(acc, acc, cu);
  b.loop_end(loop);

  b.add_f32(acc, acc, base);
  b.addr_of(addr, pout, gid, 2);
  b.st_global_f32(acc, addr);
  emit_guard_exit(b);
  return b.build();
}

// --- mlInference kernels ------------------------------------------------------

KernelIR build_mlp_matmul() {
  KernelBuilder b("mlpMatmul", 4);
  const auto px = b.reg(), pw = b.reg(), py = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(px, 0);
  b.ld_param(pw, 1);
  b.ld_param(py, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto addr = b.reg(), acc = b.reg(), base_w = b.reg();
  b.mov_imm_f32(acc, 0.0f);
  const auto dimc = b.reg(), row = b.reg();
  b.mov_imm_i(dimc, kMlInnerDim);
  b.mul_i(row, gid, dimc);
  b.addr_of(base_w, pw, row, 2);  // 32 weights x 4 bytes = 128 B per row

  const auto k = b.reg(), bound = b.reg(), step = b.reg();
  b.mov_imm_i(k, 0);
  b.mov_imm_i(bound, kMlInnerDim);
  b.mov_imm_i(step, 1);
  auto loop = b.loop_begin(k, bound, step, "k");
  const auto xv = b.reg(), wv = b.reg(), t = b.reg();
  b.addr_of(addr, px, k, 2);
  b.ld_global_f32(xv, addr);
  b.addr_of(addr, base_w, k, 2);
  b.ld_global_f32(wv, addr);
  b.mul_f32(t, xv, wv);
  b.add_f32(acc, acc, t);
  b.loop_end(loop);

  b.addr_of(addr, py, gid, 2);
  b.st_global_f32(acc, addr);
  emit_guard_exit(b);
  return b.build();
}

KernelIR build_mlp_bias() {
  KernelBuilder b("mlpBias", 5);
  const auto py0 = b.reg(), pb = b.reg(), py1 = b.reg(), n = b.reg(), gain = b.reg(),
             gid = b.reg();
  b.block("entry");
  b.ld_param(py0, 0);
  b.ld_param(pb, 1);
  b.ld_param(py1, 2);
  b.ld_param(n, 3);
  b.ld_param(gain, 4);
  emit_guard(b, gid, n);
  const auto addr = b.reg(), v = b.reg(), bv = b.reg(), zero = b.reg();
  b.addr_of(addr, py0, gid, 2);
  b.ld_global_f32(v, addr);
  b.addr_of(addr, pb, gid, 2);
  b.ld_global_f32(bv, addr);
  b.add_f32(v, v, bv);
  b.mov_imm_f32(zero, 0.0f);
  b.max_f32(v, v, zero);  // ReLU
  b.mul_f32(v, v, gain);
  b.addr_of(addr, py1, gid, 2);
  b.st_global_f32(v, addr);
  emit_guard_exit(b);
  return b.build();
}

KernelIR build_softmax32() {
  // One thread per group of 32 activations: numerically-stable softmax with
  // a per-VP temperature (max-subtract, exp, normalize). The exp pass parks
  // e^(v-m)/T in the output buffer, the normalize pass divides in place.
  KernelBuilder b("softmax32", 4);
  const auto py = b.reg(), pp = b.reg(), ngroups = b.reg(), invt = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(py, 0);
  b.ld_param(pp, 1);
  b.ld_param(ngroups, 2);
  b.ld_param(invt, 3);
  emit_guard(b, gid, ngroups);

  const auto addr = b.reg(), base_y = b.reg(), base_p = b.reg();
  const auto grpc = b.reg(), row = b.reg();
  b.mov_imm_i(grpc, kSoftmaxGroup);
  b.mul_i(row, gid, grpc);
  b.addr_of(base_y, py, row, 2);  // 32 floats = 128 B per group
  b.addr_of(base_p, pp, row, 2);

  const auto k = b.reg(), bound = b.reg(), step = b.reg();
  const auto m = b.reg(), v = b.reg();
  b.ld_global_f32(m, base_y);
  b.mov_imm_i(k, 1);
  b.mov_imm_i(bound, kSoftmaxGroup);
  b.mov_imm_i(step, 1);
  auto lmax = b.loop_begin(k, bound, step, "max");
  b.addr_of(addr, base_y, k, 2);
  b.ld_global_f32(v, addr);
  b.max_f32(m, m, v);
  b.loop_end(lmax);

  const auto sum = b.reg(), e = b.reg();
  b.mov_imm_f32(sum, 0.0f);
  b.mov_imm_i(k, 0);
  auto lexp = b.loop_begin(k, bound, step, "exp");
  b.addr_of(addr, base_y, k, 2);
  b.ld_global_f32(v, addr);
  b.sub_f32(v, v, m);
  b.mul_f32(v, v, invt);
  b.exp_f32(e, v);
  b.add_f32(sum, sum, e);
  b.addr_of(addr, base_p, k, 2);
  b.st_global_f32(e, addr);
  b.loop_end(lexp);

  b.mov_imm_i(k, 0);
  auto lnorm = b.loop_begin(k, bound, step, "norm");
  b.addr_of(addr, base_p, k, 2);
  b.ld_global_f32(e, addr);
  b.div_f32(e, e, sum);
  b.st_global_f32(e, addr);
  b.loop_end(lnorm);

  emit_guard_exit(b);
  return b.build();
}

// --- camPipeline kernels ------------------------------------------------------

KernelIR build_cam_gain() {
  KernelBuilder b("camGain", 4);
  const auto praw = b.reg(), pwork = b.reg(), n = b.reg(), gain = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(praw, 0);
  b.ld_param(pwork, 1);
  b.ld_param(n, 2);
  b.ld_param(gain, 3);
  emit_guard(b, gid, n);
  const auto addr = b.reg(), v = b.reg();
  b.addr_of(addr, praw, gid, 2);
  b.ld_global_f32(v, addr);
  b.mul_f32(v, v, gain);
  b.addr_of(addr, pwork, gid, 2);
  b.st_global_f32(v, addr);
  emit_guard_exit(b);
  return b.build();
}

KernelIR build_cam_blur3() {
  KernelBuilder b("camBlur3", 3);
  const auto pwork = b.reg(), pblur = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pwork, 0);
  b.ld_param(pblur, 1);
  b.ld_param(n, 2);
  emit_guard(b, gid, n);

  const auto addr = b.reg(), zero = b.reg(), one = b.reg(), nm1 = b.reg();
  const auto li = b.reg(), ri = b.reg();
  b.mov_imm_i(zero, 0);
  b.mov_imm_i(one, 1);
  b.sub_i(nm1, n, one);
  b.sub_i(li, gid, one);
  b.max_i(li, li, zero);  // clamp: replicate the edge pixel
  b.add_i(ri, gid, one);
  b.min_i(ri, ri, nm1);

  const auto l = b.reg(), c = b.reg(), r = b.reg(), qtr = b.reg(), half = b.reg(),
             acc = b.reg(), t = b.reg();
  b.addr_of(addr, pwork, li, 2);
  b.ld_global_f32(l, addr);
  b.addr_of(addr, pwork, gid, 2);
  b.ld_global_f32(c, addr);
  b.addr_of(addr, pwork, ri, 2);
  b.ld_global_f32(r, addr);
  b.mov_imm_f32(qtr, 0.25f);
  b.mov_imm_f32(half, 0.5f);
  b.mul_f32(acc, l, qtr);
  b.mul_f32(t, c, half);
  b.add_f32(acc, acc, t);
  b.mul_f32(t, r, qtr);
  b.add_f32(acc, acc, t);
  b.addr_of(addr, pblur, gid, 2);
  b.st_global_f32(acc, addr);
  emit_guard_exit(b);
  return b.build();
}

KernelIR build_cam_quant() {
  KernelBuilder b("camQuant", 4);
  const auto pblur = b.reg(), pout = b.reg(), n = b.reg(), qstep = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pblur, 0);
  b.ld_param(pout, 1);
  b.ld_param(n, 2);
  b.ld_param(qstep, 3);
  emit_guard(b, gid, n);
  const auto addr = b.reg(), v = b.reg();
  b.addr_of(addr, pblur, gid, 2);
  b.ld_global_f32(v, addr);
  b.div_f32(v, v, qstep);
  b.floor_f32(v, v);
  b.mul_f32(v, v, qstep);
  b.addr_of(addr, pout, gid, 2);
  b.st_global_f32(v, addr);
  emit_guard_exit(b);
  return b.build();
}

}  // namespace

float graph_damping(std::uint64_t jitter) {
  return static_cast<float>(0.85 * jitter_scale(jitter, 0.9, 1.1));
}

float ml_gain(std::uint64_t jitter) {
  return static_cast<float>(jitter_scale(jitter, 0.9, 1.2));
}

float ml_inv_temperature(std::uint64_t jitter) {
  return static_cast<float>(jitter_scale(jitter, 0.8, 1.25));
}

float cam_gain(std::uint64_t jitter) {
  return static_cast<float>(0.75 * jitter_scale(jitter, 0.8, 1.25));
}

float cam_qstep(std::uint64_t jitter) {
  return static_cast<float>(0.125 * jitter_scale(jitter, 0.75, 1.5));
}

Workload make_graph_analytics() {
  Workload w;
  w.app = "graphAnalytics";
  w.default_n = 1 << 14;
  w.test_n = 1024;
  const std::uint64_t deg = kGraphDegree;

  PipelineStage bfs;
  bfs.name = "bfsStep";
  bfs.kernel = build_bfs_step();
  bfs.dims = [](std::uint64_t n) { return dims1d(n); };
  bfs.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n, std::uint64_t) {
    KernelArgs args;
    args.push_ptr(a[0]);  // nbr
    args.push_ptr(a[1]);  // dist_in
    args.push_ptr(a[2]);  // dist_out
    args.push_i64(static_cast<std::int64_t>(n));
    return args;
  };
  {
    const KernelIR ir = bfs.kernel;
    bfs.profile = [ir, deg](std::uint64_t n) {
      return guarded_loop_profile(ir, dims1d(n), n, "nbr", deg);
    };
  }
  bfs.behavior = [deg](std::uint64_t n) {
    // Random-neighbor gathers: large touched set, little spatial locality.
    return MemoryBehavior{(8 * deg + 8) * n, (2 * deg + 2) * n, 0.3, 0.25};
  };

  PipelineStage contrib;
  contrib.name = "prContrib";
  contrib.kernel = build_pr_contrib();
  contrib.dims = [](std::uint64_t n) { return dims1d(n); };
  contrib.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n,
                    std::uint64_t jitter) {
    KernelArgs args;
    args.push_ptr(a[3]);  // rank
    args.push_ptr(a[4]);  // contrib
    args.push_i64(static_cast<std::int64_t>(n));
    args.push_f32(graph_damping(jitter) / static_cast<float>(kGraphDegree));
    return args;
  };
  {
    const KernelIR ir = contrib.kernel;
    contrib.profile = [ir](std::uint64_t n) { return guarded_profile(ir, dims1d(n), n); };
  }
  contrib.behavior = [](std::uint64_t n) { return MemoryBehavior{8 * n, 2 * n, 0.9, 0.97}; };
  contrib.coalesce = [](std::uint64_t n) {
    return linear_coalesce("graph.contrib", n, {{0, 4, false}, {1, 4, true}}, 2);
  };

  PipelineStage gather;
  gather.name = "prGather";
  gather.kernel = build_pr_gather();
  gather.dims = [](std::uint64_t n) { return dims1d(n); };
  gather.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n,
                   std::uint64_t jitter) {
    KernelArgs args;
    args.push_ptr(a[0]);  // nbr
    args.push_ptr(a[4]);  // contrib
    args.push_ptr(a[5]);  // rank_out
    args.push_i64(static_cast<std::int64_t>(n));
    args.push_f32((1.0f - graph_damping(jitter)) / static_cast<float>(n));
    return args;
  };
  {
    const KernelIR ir = gather.kernel;
    gather.profile = [ir, deg](std::uint64_t n) {
      return guarded_loop_profile(ir, dims1d(n), n, "nbr", deg);
    };
  }
  gather.behavior = [deg](std::uint64_t n) {
    return MemoryBehavior{(8 * deg + 8) * n, (2 * deg + 2) * n, 0.3, 0.25};
  };

  w.stages = {bfs, contrib, gather};

  w.buffers = [deg](std::uint64_t n) {
    return std::vector<BufferSpec>{
        {8 * deg * n, true, false},  // nbr (CSR neighbor lists, degree 8)
        {4 * n, true, false},        // dist_in
        {4 * n, false, true},        // dist_out
        {4 * n, true, false},        // rank
        {4 * n, false, false},       // contrib (device scratch)
        {4 * n, false, true},        // rank_out
    };
  };
  w.fill_inputs = [deg](std::uint64_t n, std::vector<std::vector<std::uint8_t>>& bufs) {
    for (std::uint64_t v = 0; v < n; ++v) {
      for (std::uint32_t j = 0; j < deg; ++j) {
        const std::int64_t u = static_cast<std::int64_t>(graph_neighbor(v, j, n));
        std::memcpy(bufs[0].data() + 8 * (deg * v + j), &u, 8);
      }
    }
    fill_f32_formula(bufs[1], n,
                     [](std::uint64_t v) { return v % 16 == 0 ? 0.0f : 1.0e9f; });
    fill_f32_formula(bufs[3], n, [n](std::uint64_t) { return 1.0f / static_cast<float>(n); });
  };

  // Single-kernel mirror (stage 0) so pipeline-unaware code sees a valid app.
  w.kernel = w.stages[0].kernel;
  w.dims = w.stages[0].dims;
  w.args = [stage = w.stages[0].args](const std::vector<std::uint64_t>& a, std::uint64_t n) {
    return stage(a, n, 0);
  };
  w.profile = w.stages[0].profile;
  w.behavior = w.stages[0].behavior;

  w.traits.coalescable = true;
  w.traits.iterations = 4;
  w.traits.launches_per_iter = 3;
  w.traits.noncuda_guest_instrs = 2000;
  return w;
}

Workload make_ml_inference() {
  Workload w;
  w.app = "mlInference";
  w.default_n = 1 << 14;
  w.test_n = 1024;
  const std::uint64_t d = kMlInnerDim;

  PipelineStage matmul;
  matmul.name = "mlpMatmul";
  matmul.kernel = build_mlp_matmul();
  matmul.dims = [](std::uint64_t n) { return dims1d(n); };
  matmul.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n, std::uint64_t) {
    KernelArgs args;
    args.push_ptr(a[0]);  // x
    args.push_ptr(a[1]);  // W
    args.push_ptr(a[3]);  // y0
    args.push_i64(static_cast<std::int64_t>(n));
    return args;
  };
  {
    const KernelIR ir = matmul.kernel;
    matmul.profile = [ir, d](std::uint64_t n) {
      return guarded_loop_profile(ir, dims1d(n), n, "k", d);
    };
  }
  matmul.behavior = [d](std::uint64_t n) {
    // The broadcast x vector is hot; the weight matrix streams once.
    return MemoryBehavior{4 * d * n, (2 * d + 1) * n, 0.6, 0.9};
  };

  PipelineStage bias;
  bias.name = "mlpBias";
  bias.kernel = build_mlp_bias();
  bias.dims = [](std::uint64_t n) { return dims1d(n); };
  bias.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n, std::uint64_t jitter) {
    KernelArgs args;
    args.push_ptr(a[3]);  // y0
    args.push_ptr(a[2]);  // bias
    args.push_ptr(a[4]);  // y1
    args.push_i64(static_cast<std::int64_t>(n));
    args.push_f32(ml_gain(jitter));
    return args;
  };
  {
    const KernelIR ir = bias.kernel;
    bias.profile = [ir](std::uint64_t n) { return guarded_profile(ir, dims1d(n), n); };
  }
  bias.behavior = [](std::uint64_t n) { return MemoryBehavior{12 * n, 3 * n, 0.9, 0.97}; };
  bias.coalesce = [](std::uint64_t n) {
    return linear_coalesce("ml.bias", n, {{0, 4, false}, {1, 4, false}, {2, 4, true}}, 3);
  };

  PipelineStage softmax;
  softmax.name = "softmax32";
  softmax.kernel = build_softmax32();
  softmax.dims = [](std::uint64_t n) { return dims1d(n / kSoftmaxGroup, 64); };
  softmax.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n,
                    std::uint64_t jitter) {
    KernelArgs args;
    args.push_ptr(a[4]);  // y1
    args.push_ptr(a[5]);  // probs
    args.push_i64(static_cast<std::int64_t>(n / kSoftmaxGroup));
    args.push_f32(ml_inv_temperature(jitter));
    return args;
  };
  {
    const KernelIR ir = softmax.kernel;
    softmax.profile = [ir](std::uint64_t n) {
      const std::uint64_t g = n / kSoftmaxGroup;
      const LaunchDims dims = dims1d(g, 64);
      const std::uint64_t total = dims.total_threads();
      return profile_from_visits(ir, {{"entry", total},
                                      {"body", g},
                                      {"max.head", g * kSoftmaxGroup},
                                      {"max.body", g * (kSoftmaxGroup - 1)},
                                      {"max.exit", g},
                                      {"exp.head", g * (kSoftmaxGroup + 1)},
                                      {"exp.body", g * kSoftmaxGroup},
                                      {"exp.exit", g},
                                      {"norm.head", g * (kSoftmaxGroup + 1)},
                                      {"norm.body", g * kSoftmaxGroup},
                                      {"norm.exit", g},
                                      {"exit", total - g}});
    };
  }
  softmax.behavior = [](std::uint64_t n) { return MemoryBehavior{8 * n, 3 * n, 0.8, 0.9}; };
  softmax.coalesce = [](std::uint64_t n) {
    // One element = one 32-float group (128 B), so merged grids keep group
    // boundaries intact and the in-group loops never cross a chunk seam.
    return linear_coalesce("ml.softmax32", n / kSoftmaxGroup,
                           {{0, 128, false}, {1, 128, true}}, 2, 64);
  };

  w.stages = {matmul, bias, softmax};

  w.buffers = [d](std::uint64_t n) {
    SIGVP_REQUIRE(n % kSoftmaxGroup == 0, "mlInference size must be a multiple of 32");
    return std::vector<BufferSpec>{
        {4 * d, true, false},      // x (broadcast input)
        {4 * d * n, true, false},  // W
        {4 * n, true, false},      // bias
        {4 * n, false, false},     // y0
        {4 * n, false, false},     // y1
        {4 * n, false, true},      // probs
    };
  };
  w.fill_inputs = [](std::uint64_t, std::vector<std::vector<std::uint8_t>>& bufs) {
    fill_f32_pattern(bufs[0], -1.0f, 1.0f, 0x51);
    fill_f32_pattern(bufs[1], -0.5f, 0.5f, 0x52);
    fill_f32_pattern(bufs[2], -0.25f, 0.25f, 0x53);
  };

  w.kernel = w.stages[0].kernel;
  w.dims = w.stages[0].dims;
  w.args = [stage = w.stages[0].args](const std::vector<std::uint64_t>& a, std::uint64_t n) {
    return stage(a, n, 0);
  };
  w.profile = w.stages[0].profile;
  w.behavior = w.stages[0].behavior;

  w.traits.coalescable = true;
  w.traits.iterations = 4;
  w.traits.launches_per_iter = 3;
  w.traits.noncuda_guest_instrs = 3000;
  return w;
}

Workload make_cam_pipeline() {
  Workload w;
  w.app = "camPipeline";
  w.default_n = 1 << 15;
  w.test_n = 2048;

  PipelineStage gain;
  gain.name = "camGain";
  gain.kernel = build_cam_gain();
  gain.dims = [](std::uint64_t n) { return dims1d(n); };
  gain.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n, std::uint64_t jitter) {
    KernelArgs args;
    args.push_ptr(a[0]);  // raw
    args.push_ptr(a[1]);  // work
    args.push_i64(static_cast<std::int64_t>(n));
    args.push_f32(cam_gain(jitter));
    return args;
  };
  {
    const KernelIR ir = gain.kernel;
    gain.profile = [ir](std::uint64_t n) { return guarded_profile(ir, dims1d(n), n); };
  }
  gain.behavior = [](std::uint64_t n) { return MemoryBehavior{8 * n, 2 * n, 0.9, 0.97}; };
  gain.coalesce = [](std::uint64_t n) {
    return linear_coalesce("cam.gain", n, {{0, 4, false}, {1, 4, true}}, 2);
  };

  PipelineStage blur;
  blur.name = "camBlur3";
  blur.kernel = build_cam_blur3();
  blur.dims = [](std::uint64_t n) { return dims1d(n); };
  blur.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n, std::uint64_t) {
    KernelArgs args;
    args.push_ptr(a[1]);  // work
    args.push_ptr(a[2]);  // blur
    args.push_i64(static_cast<std::int64_t>(n));
    return args;
  };
  {
    const KernelIR ir = blur.kernel;
    blur.profile = [ir](std::uint64_t n) { return guarded_profile(ir, dims1d(n), n); };
  }
  blur.behavior = [](std::uint64_t n) { return MemoryBehavior{8 * n, 4 * n, 0.95, 0.97}; };
  // Not coalesce-eligible: the 3-tap stencil reads neighbors, which across a
  // merged arena would blur one VP's frame edge into the next VP's frame.

  PipelineStage quant;
  quant.name = "camQuant";
  quant.kernel = build_cam_quant();
  quant.dims = [](std::uint64_t n) { return dims1d(n); };
  quant.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n, std::uint64_t jitter) {
    KernelArgs args;
    args.push_ptr(a[2]);  // blur
    args.push_ptr(a[3]);  // outq
    args.push_i64(static_cast<std::int64_t>(n));
    args.push_f32(cam_qstep(jitter));
    return args;
  };
  {
    const KernelIR ir = quant.kernel;
    quant.profile = [ir](std::uint64_t n) { return guarded_profile(ir, dims1d(n), n); };
  }
  quant.behavior = [](std::uint64_t n) { return MemoryBehavior{8 * n, 2 * n, 0.9, 0.97}; };
  quant.coalesce = [](std::uint64_t n) {
    return linear_coalesce("cam.quant", n, {{0, 4, false}, {1, 4, true}}, 2);
  };

  w.stages = {gain, blur, quant};

  w.buffers = [](std::uint64_t n) {
    return std::vector<BufferSpec>{
        {4 * n, true, false},   // raw frame
        {4 * n, false, false},  // work (gain-corrected)
        {4 * n, false, false},  // blur
        {4 * n, false, true},   // quantized output
    };
  };
  w.fill_inputs = [](std::uint64_t, std::vector<std::vector<std::uint8_t>>& bufs) {
    fill_f32_pattern(bufs[0], 0.0f, 255.0f, 0x61);
  };

  w.kernel = w.stages[0].kernel;
  w.dims = w.stages[0].dims;
  w.args = [stage = w.stages[0].args](const std::vector<std::uint64_t>& a, std::uint64_t n) {
    return stage(a, n, 0);
  };
  w.profile = w.stages[0].profile;
  w.behavior = w.stages[0].behavior;
  w.coalesce = [stage = w.stages[0].coalesce](std::uint64_t n) { return stage(n); };

  w.traits.coalescable = true;
  w.traits.iterations = 4;
  w.traits.launches_per_iter = 3;
  w.traits.noncuda_guest_instrs = 1500;
  w.traits.iter_h2d_bytes = 0;
  return w;
}

std::vector<Workload> make_app_suite() {
  return {make_graph_analytics(), make_ml_inference(), make_cam_pipeline()};
}

}  // namespace sigvp::workloads
