#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace sigvp::workloads {

/// One entry of a workload mix: `percent` of the requests run `app`.
struct MixEntry {
  std::string app;
  std::uint32_t percent = 0;
};

/// Declarative description of a per-VP request-stream population (the
/// request-count / mix-percent / thread-count style of classic storage
/// workload generators): `vp_count` VPs each issue `request_count` requests
/// drawn from `mix`, with seeded per-request size jitter and optional per-VP
/// scalar jitter. Everything is a pure function of the spec's `seed`.
struct WorkloadSpec {
  std::uint32_t request_count = 32;  // requests per VP
  std::uint32_t vp_count = 4;        // concurrent VPs (thread_count analogue)
  std::vector<MixEntry> mix;         // percents must sum to 100
  std::uint64_t base_n = 1 << 10;    // canonical problem size
  std::uint32_t n_jitter_pct = 0;    // +/- percent size jitter per request
  bool scalar_jitter = false;        // per-VP scalar parameter jitter
  std::uint64_t seed = 1;
};

/// One concrete request of a stream: which app, at what size, with which
/// per-VP scalar-jitter seed (0 = canonical scalars).
struct Request {
  const Workload* workload = nullptr;
  std::uint64_t n = 0;
  std::uint64_t jitter = 0;
};

/// Expands `spec` into per-VP request streams over `apps` (each mix entry
/// must name an app in `apps`). Deterministic: the same (spec, apps) yields
/// the same streams on every platform and run. Sizes are clamped to >= 32
/// and rounded to multiples of 32 so every app's layout constraints hold.
std::vector<std::vector<Request>> build_request_streams(const WorkloadSpec& spec,
                                                        const std::vector<Workload>& apps);

}  // namespace sigvp::workloads
