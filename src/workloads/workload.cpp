#include "workloads/workload.hpp"

#include <cstring>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sigvp::workloads {

void fill_f32_pattern(std::vector<std::uint8_t>& buf, float lo, float hi, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t off = 0; off + 4 <= buf.size(); off += 4) {
    const float v = static_cast<float>(rng.uniform(lo, hi));
    std::memcpy(buf.data() + off, &v, 4);
  }
}

void fill_f64_pattern(std::vector<std::uint8_t>& buf, double lo, double hi, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t off = 0; off + 8 <= buf.size(); off += 8) {
    const double v = rng.uniform(lo, hi);
    std::memcpy(buf.data() + off, &v, 8);
  }
}

void fill_u8_pattern(std::vector<std::uint8_t>& buf, std::uint64_t seed) {
  Rng rng(seed);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
}

double jitter_scale(std::uint64_t jitter, double lo, double hi) {
  if (jitter == 0) return 1.0;
  Rng rng(jitter);
  return rng.uniform(lo, hi);
}

std::uint64_t graph_neighbor(std::uint64_t v, std::uint32_t j, std::uint64_t n) {
  // SplitMix64-style finalizer over (v, j); bias-free enough for a synthetic
  // topology and, crucially, identical in the kernel's host-side fill and
  // the golden models.
  std::uint64_t x = v * 0x9E3779B97F4A7C15ull + (j + 1) * 0xBF58476D1CE4E5B9ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x % n;
}

std::size_t block_index(const KernelIR& ir, const std::string& label) {
  for (std::size_t i = 0; i < ir.blocks.size(); ++i) {
    if (ir.blocks[i].label == label) return i;
  }
  throw ContractError("kernel " + ir.name + " has no block labeled " + label);
}

DynamicProfile profile_from_visits(
    const KernelIR& ir,
    const std::vector<std::pair<std::string, std::uint64_t>>& label_visits) {
  DynamicProfile p;
  p.block_visits.assign(ir.blocks.size(), 0);
  for (const auto& [label, count] : label_visits) {
    p.block_visits[block_index(ir, label)] += count;
  }
  p.instr_counts = DynamicProfile::counts_from_visits(ir, p.block_visits);

  // Byte traffic and SFU counts implied by the λ counts and the static IR.
  for (std::size_t b = 0; b < ir.blocks.size(); ++b) {
    const std::uint64_t visits = p.block_visits[b];
    if (visits == 0) continue;
    for (const Instr& in : ir.blocks[b].instrs) {
      if (is_sfu_op(in.op)) {
        if (is_sqrt_op(in.op)) {
          p.sqrt_instrs += visits;
        } else {
          p.sfu_instrs += visits;
        }
      }
      if (!is_global_memory_op(in.op)) continue;
      const std::uint64_t bytes = memory_width_bytes(in.op) * visits;
      if (instr_class(in.op) == InstrClass::kLoad) {
        p.global_load_bytes += bytes;
      } else {
        p.global_store_bytes += bytes;
      }
    }
  }
  return p;
}

DynamicProfile guarded_profile(const KernelIR& ir, const LaunchDims& dims,
                               std::uint64_t active) {
  const std::uint64_t total = dims.total_threads();
  SIGVP_REQUIRE(active <= total, "more active threads than launched threads");
  return profile_from_visits(
      ir, {{"entry", total}, {"body", active}, {"exit", total - active}});
}

void emit_guard(KernelBuilder& b, KernelBuilder::Reg gid, KernelBuilder::Reg n) {
  const auto ctaid = b.reg();
  const auto ntid = b.reg();
  const auto tid = b.reg();
  const auto cond = b.reg();
  b.special(ctaid, SpecialReg::kCtaidX);
  b.special(ntid, SpecialReg::kNtidX);
  b.special(tid, SpecialReg::kTidX);
  b.mul_i(gid, ctaid, ntid);
  b.add_i(gid, gid, tid);
  b.set_lt_i(cond, gid, n);
  b.bra_z(cond, "exit");
  b.block("body");
}

void emit_guard_exit(KernelBuilder& b) {
  b.ret();
  b.block("exit");
  b.ret();
}

}  // namespace sigvp::workloads
