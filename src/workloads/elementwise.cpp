#include <algorithm>
#include <cstdint>

#include "workloads/suite.hpp"

namespace sigvp::workloads {

namespace {

LaunchDims dims1d(std::uint64_t n, std::uint32_t block = 256) {
  LaunchDims d;
  d.block_x = block;
  d.grid_x = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, (n + block - 1) / block));
  return d;
}

cuda::CoalesceInfo linear_coalesce(const std::string& key, std::uint64_t n,
                                   std::vector<cuda::CoalesceInfo::BufferArg> buffers,
                                   std::uint32_t size_arg, std::uint32_t block = 256) {
  cuda::CoalesceInfo c;
  c.eligible = true;
  c.key = key;
  c.elems = n;
  c.buffers = std::move(buffers);
  c.size_arg_index = size_arg;
  c.block_x = block;
  return c;
}

}  // namespace

Workload make_vector_add() {
  KernelBuilder b("vectorAdd", 4);
  const auto pa = b.reg(), pb = b.reg(), pc = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pa, 0);
  b.ld_param(pb, 1);
  b.ld_param(pc, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);
  const auto av = b.reg(), bv = b.reg(), cv = b.reg(), addr = b.reg();
  b.addr_of(addr, pa, gid, 2);
  b.ld_global_f32(av, addr);
  b.addr_of(addr, pb, gid, 2);
  b.ld_global_f32(bv, addr);
  b.add_f32(cv, av, bv);
  b.addr_of(addr, pc, gid, 2);
  b.st_global_f32(cv, addr);
  emit_guard_exit(b);

  Workload w;
  w.app = "vectorAdd";
  w.kernel = b.build();
  w.default_n = 4u << 20;
  w.test_n = 1500;  // deliberately not a multiple of the block size
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, true, false}, {4 * n_, true, false},
                                   {4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_ptr(a[2]);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{12 * n_, 3 * n_, 0.9, 0.97};
  };
  w.coalesce = [](std::uint64_t n_) {
    return linear_coalesce("vectorAdd.f32", n_,
                           {{0, 4, false}, {1, 4, false}, {2, 4, true}}, 3);
  };
  w.fill_inputs = [](std::uint64_t, std::vector<std::vector<std::uint8_t>>& bufs) {
    fill_f32_pattern(bufs[0], -4.0f, 4.0f, 0x11);
    fill_f32_pattern(bufs[1], -4.0f, 4.0f, 0x22);
  };
  w.traits.coalescable = true;
  w.traits.iterations = 40;
  w.traits.launches_per_iter = 4;
  w.traits.noncuda_guest_instrs = 4000;
  return w;
}

Workload make_black_scholes() {
  KernelBuilder b("BlackScholes", 6);
  const auto ps = b.reg(), px = b.reg(), pt = b.reg(), pcall = b.reg(), pput = b.reg(),
             n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(ps, 0);
  b.ld_param(px, 1);
  b.ld_param(pt, 2);
  b.ld_param(pcall, 3);
  b.ld_param(pput, 4);
  b.ld_param(n, 5);
  emit_guard(b, gid, n);

  const auto addr = b.reg(), s = b.reg(), x = b.reg(), t = b.reg();
  b.addr_of(addr, ps, gid, 2);
  b.ld_global_f32(s, addr);
  b.addr_of(addr, px, gid, 2);
  b.ld_global_f32(x, addr);
  b.addr_of(addr, pt, gid, 2);
  b.ld_global_f32(t, addr);

  // Black-Scholes with the logistic approximation of the cumulative normal:
  // CND(d) ~= 1 / (1 + exp(-1.702 d)).
  const auto r = b.reg(), vol = b.reg(), half_v2 = b.reg();
  b.mov_imm_f32(r, 0.02f);
  b.mov_imm_f32(vol, 0.30f);
  b.mov_imm_f32(half_v2, 0.02f + 0.5f * 0.30f * 0.30f);  // r + sigma^2/2

  const auto sqrt_t = b.reg(), sig_sqrt_t = b.reg(), ratio = b.reg(), log_r = b.reg();
  b.sqrt_f32(sqrt_t, t);
  b.mul_f32(sig_sqrt_t, vol, sqrt_t);
  b.div_f32(ratio, s, x);
  b.log_f32(log_r, ratio);

  const auto d1 = b.reg(), d2 = b.reg(), tmp = b.reg();
  b.fma_f32(tmp, half_v2, t, log_r);     // log(S/X) + (r + sigma^2/2) t
  b.div_f32(d1, tmp, sig_sqrt_t);
  b.sub_f32(d2, d1, sig_sqrt_t);

  auto cnd = [&](KernelBuilder::Reg out, KernelBuilder::Reg d) {
    const auto k = b.reg(), e = b.reg(), one = b.reg(), den = b.reg();
    b.mov_imm_f32(k, -1.702f);
    b.mul_f32(e, k, d);
    b.exp_f32(e, e);
    b.mov_imm_f32(one, 1.0f);
    b.add_f32(den, one, e);
    b.div_f32(out, one, den);
  };
  const auto cnd1 = b.reg(), cnd2 = b.reg();
  cnd(cnd1, d1);
  cnd(cnd2, d2);

  const auto neg_rt = b.reg(), disc = b.reg(), xd = b.reg(), call = b.reg(), put = b.reg();
  b.mul_f32(neg_rt, r, t);
  b.neg_f32(neg_rt, neg_rt);
  b.exp_f32(disc, neg_rt);
  b.mul_f32(xd, x, disc);

  const auto sc = b.reg(), xc = b.reg();
  b.mul_f32(sc, s, cnd1);
  b.mul_f32(xc, xd, cnd2);
  b.sub_f32(call, sc, xc);

  // put = call - S + X e^{-rt}  (put-call parity)
  b.sub_f32(put, call, s);
  b.add_f32(put, put, xd);

  b.addr_of(addr, pcall, gid, 2);
  b.st_global_f32(call, addr);
  b.addr_of(addr, pput, gid, 2);
  b.st_global_f32(put, addr);
  emit_guard_exit(b);

  Workload w;
  w.app = "BlackScholes";
  w.kernel = b.build();
  w.default_n = 4u << 20;
  w.test_n = 2000;
  w.estimate_n = 65536;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, true, false},
                                   {4 * n_, true, false},
                                   {4 * n_, true, false},
                                   {4 * n_, false, true},
                                   {4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    for (int i = 0; i < 5; ++i) args.push_ptr(a[static_cast<std::size_t>(i)]);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{20 * n_, 5 * n_, 0.9, 0.97};
  };
  w.coalesce = [](std::uint64_t n_) {
    return linear_coalesce(
        "BlackScholes.f32", n_,
        {{0, 4, false}, {1, 4, false}, {2, 4, false}, {3, 4, true}, {4, 4, true}}, 5);
  };
  w.fill_inputs = [](std::uint64_t, std::vector<std::vector<std::uint8_t>>& bufs) {
    fill_f32_pattern(bufs[0], 15.0f, 80.0f, 0x31);  // spot
    fill_f32_pattern(bufs[1], 25.0f, 55.0f, 0x32);  // strike
    fill_f32_pattern(bufs[2], 0.1f, 1.5f, 0x33);    // expiry
  };
  w.traits.coalescable = true;
  w.traits.iterations = 40;
  w.traits.launches_per_iter = 6;
  w.traits.noncuda_guest_instrs = 3000;
  return w;
}

Workload make_simple_gl() {
  // simpleGL's vertex kernel: animate a sine-wave height field. The real app
  // spends much of its time in OpenGL display calls, which stay on the VP.
  KernelBuilder b("simpleGL", 4);
  const auto ppos = b.reg(), width = b.reg(), timev = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(ppos, 0);
  b.ld_param(width, 1);
  b.ld_param(timev, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto xi = b.reg(), yi = b.reg(), fx = b.reg(), fy = b.reg();
  b.rem_i(xi, gid, width);
  b.div_i(yi, gid, width);
  b.cvt_i_to_f32(fx, xi);
  b.cvt_i_to_f32(fy, yi);

  const auto freq = b.reg(), u = b.reg(), v = b.reg(), su = b.reg(), cv2 = b.reg(),
             h = b.reg(), addr = b.reg();
  b.mov_imm_f32(freq, 4.0f);
  b.mul_f32(u, fx, freq);
  b.add_f32(u, u, timev);
  b.mul_f32(v, fy, freq);
  b.add_f32(v, v, timev);
  b.sin_f32(su, u);
  b.cos_f32(cv2, v);
  b.mul_f32(h, su, cv2);
  b.addr_of(addr, ppos, gid, 2);
  b.st_global_f32(h, addr);
  emit_guard_exit(b);

  Workload w;
  w.app = "simpleGL";
  w.kernel = b.build();
  w.default_n = 1u << 21;
  w.test_n = 900;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_i64(256);  // mesh width
    args.push_f32(0.5f);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{4 * n_, n_, 0.9, 0.97};
  };
  w.coalesce = [](std::uint64_t n_) {
    return linear_coalesce("simpleGL.f32", n_, {{0, 4, true}}, 3);
  };
  w.traits.coalescable = true;
  w.traits.iterations = 60;
  w.traits.launches_per_iter = 3;
  // Heavy OpenGL rendering per frame stays on the guest (paper calls this
  // out as the reason simpleGL's speedup saturates).
  w.traits.noncuda_guest_instrs = 220000;
  return w;
}

Workload make_smoke_particles() {
  KernelBuilder b("smokeParticles", 4);
  const auto ppos = b.reg(), pvel = b.reg(), dt = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(ppos, 0);
  b.ld_param(pvel, 1);
  b.ld_param(dt, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto pos = b.reg(), vel = b.reg(), addr_p = b.reg(), addr_v = b.reg();
  b.addr_of(addr_p, ppos, gid, 2);
  b.ld_global_f32(pos, addr_p);
  b.addr_of(addr_v, pvel, gid, 2);
  b.ld_global_f32(vel, addr_v);

  const auto damp = b.reg(), grav = b.reg();
  b.mov_imm_f32(damp, 0.995f);
  b.mov_imm_f32(grav, -9.8f);
  b.mul_f32(vel, vel, damp);
  b.fma_f32(vel, grav, dt, vel);   // vel += g*dt
  b.fma_f32(pos, vel, dt, pos);    // pos += vel*dt
  b.st_global_f32(pos, addr_p);
  b.st_global_f32(vel, addr_v);
  emit_guard_exit(b);

  Workload w;
  w.app = "smokeParticles";
  w.kernel = b.build();
  w.default_n = 1u << 22;
  w.test_n = 1024;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, true, true}, {4 * n_, true, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_f32(0.01f);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{8 * n_, 4 * n_, 0.9, 0.97};
  };
  // Paper: smokeParticles is one of the kernels the two optimizations do
  // NOT speed up (memory management pattern); its grid is large and aligned
  // and the app is OpenGL-bound, so no coalescing is attempted.
  w.traits.coalescable = false;
  w.traits.iterations = 40;
  w.traits.launches_per_iter = 2;
  w.traits.noncuda_guest_instrs = 180000;
  return w;
}

Workload make_merge_sort() {
  // One compare-exchange step of a bitonic sorting network over i64 keys.
  // The mergeSort app launches a cascade of these per iteration, which is
  // why launch overhead dominates it — and why the paper measured its best
  // gain (10x) from the two optimizations.
  KernelBuilder b("mergeSortStep", 4);
  const auto pdata = b.reg(), jp = b.reg(), kp = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pdata, 0);
  b.ld_param(jp, 1);
  b.ld_param(kp, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto ixj = b.reg(), is_upper = b.reg();
  b.xor_b(ixj, gid, jp);
  b.set_gt_i(is_upper, ixj, gid);  // handle each pair once

  const auto addr_a = b.reg(), addr_b = b.reg(), va = b.reg(), vb = b.reg();
  // Clamp partner index to n-1 so tail threads stay in bounds (their writes
  // are idempotent swaps with themselves suppressed by is_upper).
  const auto one = b.reg(), nm1 = b.reg(), ixj_c = b.reg();
  b.mov_imm_i(one, 1);
  b.sub_i(nm1, n, one);
  b.min_i(ixj_c, ixj, nm1);
  b.addr_of(addr_a, pdata, gid, 3);
  b.addr_of(addr_b, pdata, ixj_c, 3);
  b.ld_global_i64(va, addr_a);
  b.ld_global_i64(vb, addr_b);

  const auto dir_bit = b.reg(), zero = b.reg(), ascending = b.reg();
  b.and_b(dir_bit, gid, kp);
  b.mov_imm_i(zero, 0);
  b.set_eq_i(ascending, dir_bit, zero);

  const auto gt = b.reg(), lt = b.reg(), want_swap = b.reg(), do_swap = b.reg();
  b.set_gt_i(gt, va, vb);
  b.set_lt_i(lt, va, vb);
  b.select(want_swap, ascending, gt, lt);
  b.and_b(do_swap, want_swap, is_upper);

  const auto na = b.reg(), nb = b.reg();
  b.select(na, do_swap, vb, va);
  b.select(nb, do_swap, va, vb);
  b.st_global_i64(na, addr_a);
  b.st_global_i64(nb, addr_b);
  emit_guard_exit(b);

  Workload w;
  w.app = "mergeSort";
  w.kernel = b.build();
  w.default_n = 1u << 20;
  w.test_n = 256;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{8 * n_, true, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_i64(1);  // j
    args.push_i64(2);  // k
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{8 * n_, 4 * n_, 0.4, 0.8};
  };
  w.coalesce = [](std::uint64_t n_) {
    return linear_coalesce("mergeSortStep.i64", n_, {{0, 8, true}}, 3);
  };
  w.traits.coalescable = true;
  w.traits.iterations = 25;
  w.traits.launches_per_iter = 36;  // bitonic cascade of tiny steps
  w.traits.noncuda_guest_instrs = 5000;
  return w;
}

Workload make_histogram() {
  KernelBuilder b("histogram", 3);
  const auto pdata = b.reg(), phist = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pdata, 0);
  b.ld_param(phist, 1);
  b.ld_param(n, 2);
  emit_guard(b, gid, n);

  const auto addr = b.reg(), v = b.reg(), haddr = b.reg(), one = b.reg();
  b.add_i(addr, pdata, gid);  // u8 elements: stride 1
  b.ld_global_u8(v, addr);
  b.addr_of(haddr, phist, v, 3);
  b.mov_imm_i(one, 1);
  b.atom_add_global_i64(one, haddr);
  emit_guard_exit(b);

  Workload w;
  w.app = "histogram";
  w.kernel = b.build();
  w.default_n = 32u << 20;
  w.test_n = 4096;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{n_, true, false}, {256 * 8, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{n_ + 2048, 2 * n_, 0.8, 0.9};
  };
  // Atomic scatter writes don't relocate safely across a merged arena
  // unless the histogram buffer is shared; keep histogram un-coalesced.
  w.traits.coalescable = false;
  w.traits.iterations = 30;
  w.traits.launches_per_iter = 2;
  w.traits.iter_h2d_bytes = 1u << 20;  // streams new data chunks each pass
  w.traits.noncuda_guest_instrs = 40000;  // reads input files
  return w;
}

Workload make_segmentation_tree() {
  // segmentationTreeThrust stand-in: one Hillis-Steele scan step over f32
  // edge weights — the memory-bound primitive Thrust's tree construction
  // leans on.
  KernelBuilder b("segScanStep", 4);
  const auto pin = b.reg(), pout = b.reg(), stride = b.reg(), n = b.reg(), gid = b.reg();
  b.block("entry");
  b.ld_param(pin, 0);
  b.ld_param(pout, 1);
  b.ld_param(stride, 2);
  b.ld_param(n, 3);
  emit_guard(b, gid, n);

  const auto addr = b.reg(), x = b.reg(), has_prev = b.reg();
  b.addr_of(addr, pin, gid, 2);
  b.ld_global_f32(x, addr);
  b.set_ge_i(has_prev, gid, stride);

  const auto zero = b.reg(), prev_idx = b.reg(), paddr = b.reg(), y = b.reg(),
             yz = b.reg(), fzero = b.reg(), sum = b.reg();
  b.mov_imm_i(zero, 0);
  b.sub_i(prev_idx, gid, stride);
  b.max_i(prev_idx, prev_idx, zero);  // clamp; contribution masked below
  b.addr_of(paddr, pin, prev_idx, 2);
  b.ld_global_f32(y, paddr);
  b.mov_imm_f32(fzero, 0.0f);
  b.select(yz, has_prev, y, fzero);
  b.add_f32(sum, x, yz);
  b.addr_of(addr, pout, gid, 2);
  b.st_global_f32(sum, addr);
  emit_guard_exit(b);

  Workload w;
  w.app = "segmentationTreeThrust";
  w.kernel = b.build();
  w.default_n = 4u << 20;
  w.test_n = 1024;
  const KernelIR ir = w.kernel;
  w.dims = [](std::uint64_t n_) { return dims1d(n_); };
  w.buffers = [](std::uint64_t n_) {
    return std::vector<BufferSpec>{{4 * n_, true, false}, {4 * n_, false, true}};
  };
  w.args = [](const std::vector<std::uint64_t>& a, std::uint64_t n_) {
    KernelArgs args;
    args.push_ptr(a[0]);
    args.push_ptr(a[1]);
    args.push_i64(1);
    args.push_i64(static_cast<std::int64_t>(n_));
    return args;
  };
  w.profile = [ir](std::uint64_t n_) { return guarded_profile(ir, dims1d(n_), n_); };
  w.behavior = [](std::uint64_t n_) {
    return MemoryBehavior{8 * n_, 3 * n_, 0.85, 0.95};
  };
  w.coalesce = [](std::uint64_t n_) {
    return linear_coalesce("segScanStep.f32", n_, {{0, 4, false}, {1, 4, true}}, 3);
  };
  w.traits.coalescable = true;
  w.traits.iterations = 20;
  w.traits.launches_per_iter = 21;  // log2(n) scan steps
  w.traits.noncuda_guest_instrs = 60000;  // graph I/O
  return w;
}

}  // namespace sigvp::workloads
