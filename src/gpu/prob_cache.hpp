#pragma once

#include <cstdint>

#include "gpu/arch.hpp"

namespace sigvp {

/// Locality summary of one kernel's global-memory traffic, supplied by the
/// workload definition (analytic mode) or derived from measurement.
struct MemoryBehavior {
  /// Distinct bytes the kernel touches in global memory.
  std::uint64_t footprint_bytes = 0;
  /// Total dynamic global accesses (load + store instructions).
  std::uint64_t accesses = 0;
  /// Quality of the kernel's temporal locality: the fraction of line
  /// revisits that happen at short reuse distance (and therefore hit even
  /// under capacity pressure). Streaming kernels revisit lines immediately
  /// (adjacent threads) — high values; kernels with large-stride revisit
  /// patterns (matrix columns, bitonic partners) — lower values.
  double reuse_fraction = 0.5;
  /// Fraction of intra-warp accesses falling into the same cache line
  /// (spatial coalescing); unit-stride kernels ~0.97, gather kernels lower.
  double coalescing = 0.9;
};

/// Probabilistic data-cache behaviour model (after Puranik et al., EMSOFT'09,
/// the paper's reference [17]).
///
/// Given a locality summary and a cache geometry, predicts the expected miss
/// count without simulating the cache. The paper uses this to transplant the
/// data-stall term from the host GPU to the target GPU (Eq. 5): Υ^[data] is
/// predicted misses × exposed miss latency.
class ProbCacheModel {
 public:
  explicit ProbCacheModel(const CacheConfig& config) : config_(config) {}

  /// Expected number of line-granular misses for the given behaviour.
  double expected_misses(const MemoryBehavior& behavior) const;

  /// Expected miss rate (misses / line-granular accesses).
  double expected_miss_rate(const MemoryBehavior& behavior) const;

 private:
  CacheConfig config_;
};

}  // namespace sigvp
