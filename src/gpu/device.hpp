#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/fault_stats.hpp"
#include "gpu/arch.hpp"
#include "gpu/cost_model.hpp"
#include "gpu/offline.hpp"
#include "mem/address_space.hpp"
#include "mem/allocator.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace sigvp {

class LaunchCache;
namespace trace {
class RunTrace;
}
namespace snapshot {
class Writer;
}

/// How a kernel launch is evaluated by the device model.
enum class ExecMode {
  /// Interpret the IR over device memory with full cache simulation
  /// (functional validation + measured timing).
  kFunctional,
  /// Price the launch from a caller-supplied analytic profile; data is not
  /// touched (for workload sizes too large to interpret).
  kAnalytic,
};

/// One kernel launch request against a GpuDevice.
struct LaunchRequest {
  const KernelIR* kernel = nullptr;
  LaunchDims dims;
  KernelArgs args;
  ExecMode mode = ExecMode::kFunctional;
  /// Analytic mode only: λ/traffic profile and locality summary.
  DynamicProfile analytic_profile;
  MemoryBehavior mem_behavior;
};

/// Discrete-event model of a CUDA-capable GPU: two Copy Engines (one per
/// direction, as on Fermi-class Quadro boards), one Compute Engine, N
/// streams.
///
/// Scheduling semantics match the hardware behaviour the paper's Kernel
/// Interleaving exploits and repairs (Fig. 3):
///  - ops within a stream execute in order;
///  - each engine serves its queue strictly in submission order, with
///    head-of-line blocking: if the next op's stream dependency is not yet
///    ready, the engine waits (it does not look past it);
///  - the two engines run concurrently, so copies and kernels from different
///    streams overlap only when the submission order allows it.
///
/// Because all submissions happen in causal simulation order, the schedule
/// is computed eagerly: each submit returns the op's completion time, and an
/// optional callback fires at that simulated instant. Functional data
/// movement is applied at submission; well-formed clients only read results
/// after the completion callback, which the guest driver stack guarantees.
class GpuDevice {
 public:
  using StreamId = std::uint32_t;
  using CopyCallback = std::function<void(SimTime end)>;
  using KernelCallback = std::function<void(SimTime end, const KernelExecStats& stats)>;
  using LaunchFailCallback = std::function<void(SimTime end)>;

  GpuDevice(EventQueue& queue, GpuArch arch, std::uint64_t mem_bytes, std::string name);

  /// Installs the scenario's trace/metrics context (null = off; the default).
  /// Must outlive the device.
  void set_trace(trace::RunTrace* trace) { trace_ = trace; }

  /// Redirects this device's trace tracks (compute / copy-in / copy-out
  /// spans) to the given track ids. Defaults to the process-wide
  /// RunTrace::kTidGpu* constants, so single-device scenarios trace exactly
  /// as before; multi-GPU host sets give each extra device its own tracks.
  void set_trace_tids(std::uint32_t compute, std::uint32_t copy_in, std::uint32_t copy_out) {
    tid_compute_ = compute;
    tid_copy_in_ = copy_in;
    tid_copy_out_ = copy_out;
  }
  std::uint32_t trace_tid_compute() const { return tid_compute_; }
  std::uint32_t trace_tid_copy_in() const { return tid_copy_in_; }
  std::uint32_t trace_tid_copy_out() const { return tid_copy_out_; }

  /// Routes functional launches through a private launch-cache shard instead
  /// of the process singleton (null = singleton; the default). Sharded
  /// fleets give each domain its own shard so hit/miss sequences are a pure
  /// function of the domain's launch stream. Must outlive the device.
  void set_launch_cache(LaunchCache* cache) { launch_cache_ = cache; }

  // --- memory management -----------------------------------------------------
  /// Allocates device memory; throws on exhaustion (paper-scale workloads
  /// never legitimately exhaust the modeled memory).
  std::uint64_t malloc(std::uint64_t bytes, std::uint64_t align = 256);
  void free(std::uint64_t addr);
  AddressSpace& memory() { return memory_; }
  std::uint64_t bytes_allocated() const { return allocator_.bytes_allocated(); }

  // --- streams ---------------------------------------------------------------
  StreamId create_stream();
  std::size_t num_streams() const { return streams_.size(); }
  SimTime stream_idle_at(StreamId stream) const;

  // --- asynchronous operations ------------------------------------------------
  /// Host-to-device copy; `src` may be nullptr for timing-only transfers.
  SimTime memcpy_h2d(StreamId stream, std::uint64_t dst, const void* src, std::uint64_t bytes,
                     CopyCallback cb = {});
  /// Device-to-host copy; `dst` may be nullptr for timing-only transfers.
  SimTime memcpy_d2h(StreamId stream, void* dst, std::uint64_t src, std::uint64_t bytes,
                     CopyCallback cb = {});
  /// Device-to-device copy (used by the kernel coalescer's gather/scatter).
  SimTime memcpy_d2d(StreamId stream, std::uint64_t dst, std::uint64_t src, std::uint64_t bytes,
                     CopyCallback cb = {});

  /// Batched device-to-device copy: one DMA descriptor list moving every
  /// (dst, src, bytes) triple, priced as a single transfer of the summed
  /// bytes. The kernel coalescer gathers/scatters arena slices with this.
  struct CopyDesc {
    std::uint64_t dst = 0;
    std::uint64_t src = 0;
    std::uint64_t bytes = 0;
  };
  SimTime memcpy_d2d_batch(StreamId stream, const std::vector<CopyDesc>& descs,
                           CopyCallback cb = {});
  /// Kernel launch; returns completion time, callback receives the stats.
  /// With an active fault plan AND a non-empty `on_fault`, the launch may be
  /// aborted by an injected transient failure: the compute engine is held
  /// for the abort latency, no functional work happens, and `on_fault`
  /// fires instead of `cb`. Call sites that cannot recover (no `on_fault`)
  /// are never given injected failures.
  SimTime launch(StreamId stream, const LaunchRequest& request, KernelCallback cb = {},
                 LaunchFailCallback on_fault = {});

  // --- fault injection ---------------------------------------------------------
  /// Installs the scenario's fault oracle. Also enables in-flight op
  /// tracking, which `reset()` needs to kill pending completions. With no
  /// plan (or a zero-fault plan) every code path is byte-identical to a
  /// build without the fault layer.
  void set_fault(const FaultPlan* plan, FaultStats* stats);

  /// Handler invoked once per in-flight op killed by `reset()`, with the op
  /// id returned by `last_op_id()` at submission time. The op's normal
  /// completion callback is suppressed.
  using KillHandler = std::function<void(std::uint64_t op_id)>;
  void set_kill_handler(KillHandler handler) { kill_handler_ = std::move(handler); }

  /// Id of the most recently submitted tracked op (0 before any, or when
  /// fault tracking is off). Submission is single-threaded per scenario, so
  /// "submit, then read last_op_id()" is race-free.
  std::uint64_t last_op_id() const { return last_op_id_; }
  std::size_t ops_in_flight() const { return live_ops_.size(); }

  /// True when the most recent `launch()` was aborted by an injected
  /// transient failure (synchronous check — the coalescer uses it to skip
  /// submitting scatters for a group whose merged launch will abort).
  bool last_launch_faulted() const { return last_launch_faulted_; }

  /// Full device reset (fault injection): every in-flight op is killed (its
  /// kill handler fires now, its completion never does), and both copy
  /// engines, the compute engine and all stream tails become available only
  /// at now + `recovery_latency_us`. Returns that recovery time.
  SimTime reset(SimTime recovery_latency_us);

  /// Time at which every submitted op (all streams, both engines) is done.
  SimTime device_idle_at() const;

  /// Earliest time a new job could start on each engine; the Re-scheduler
  /// uses these to decide what keeps every engine busy. Fermi-class Quadro
  /// and Kepler GRID boards have two asynchronous copy engines (one per
  /// direction), which is what lets uploads, downloads and kernels of
  /// different VPs overlap three-way (paper Eq. 7).
  SimTime h2d_engine_free_at() const { return copy_in_engine_.free_at; }
  SimTime d2h_engine_free_at() const { return copy_out_engine_.free_at; }
  SimTime compute_engine_free_at() const { return compute_engine_.free_at; }

  // --- introspection -----------------------------------------------------------
  const GpuArch& arch() const { return arch_; }
  const std::string& name() const { return name_; }
  double dynamic_energy_j() const { return dynamic_energy_j_; }
  SimTime copy_busy_us() const { return copy_busy_; }
  SimTime compute_busy_us() const { return compute_busy_; }
  std::uint64_t kernels_launched() const { return kernels_launched_; }
  std::uint64_t copies_submitted() const { return copies_submitted_; }
  const KernelExecStats& last_kernel_stats() const;

  /// Average power over [0, horizon]: static + dynamic energy / horizon.
  double average_power_w(SimTime horizon_us) const;

  /// Serializes device state for a fleet capture: engine clocks, stream
  /// tails, busy/energy accumulators, allocator level, live tracked ops and
  /// the fault-roll counter. With `hash_memory` the full address-space
  /// content is folded in too (functional scenarios — the base-image +
  /// MemDelta state the paper-scale analytic runs never touch).
  void capture_state(snapshot::Writer& w, bool hash_memory) const;

  /// Deterministic size-based estimate of the model's resident host memory:
  /// struct plus container capacities (streams, live-op map nodes). The
  /// modeled device address space is excluded — it is simulated state, not
  /// per-VP host residency.
  std::uint64_t resident_bytes() const {
    return sizeof(GpuDevice) + streams_.capacity() * sizeof(Stream) +
           live_ops_.size() * (sizeof(std::uint64_t) + sizeof(SimTime) + 48);
  }

 private:
  struct Stream {
    SimTime tail = 0.0;  // completion time of the last op in this stream
  };

  /// Engine bookkeeping for eager scheduling with head-of-line blocking.
  struct EngineState {
    SimTime free_at = 0.0;
  };

  SimTime schedule_on(EngineState& engine, Stream& stream, SimTime duration);
  SimTime copy_duration(std::uint64_t bytes) const;
  bool fault_tracking() const { return fault_plan_ != nullptr && fault_plan_->enabled(); }
  /// Registers a tracked op ending at `end` and schedules `fire` there,
  /// suppressed if the op is killed by a reset first. No-op wrapper (plain
  /// schedule_at) when fault tracking is off and `fire` is non-empty.
  void complete_tracked(SimTime end, std::function<void()> fire);

  EventQueue& queue_;
  GpuArch arch_;
  std::string name_;
  AddressSpace memory_;
  FreeListAllocator allocator_;
  trace::RunTrace* trace_ = nullptr;
  LaunchCache* launch_cache_ = nullptr;  // null = process singleton
  // Trace track ids; initialized in the ctor to the RunTrace::kTidGpu*
  // defaults (the constants live behind a forward declaration here).
  std::uint32_t tid_compute_;
  std::uint32_t tid_copy_in_;
  std::uint32_t tid_copy_out_;

  EngineState copy_in_engine_;
  EngineState copy_out_engine_;
  EngineState compute_engine_;
  std::vector<Stream> streams_;

  SimTime copy_busy_ = 0.0;
  SimTime compute_busy_ = 0.0;
  double dynamic_energy_j_ = 0.0;
  std::uint64_t kernels_launched_ = 0;
  std::uint64_t copies_submitted_ = 0;
  KernelExecStats last_kernel_stats_;

  // --- fault-injection state (inert without an active plan) --------------------
  const FaultPlan* fault_plan_ = nullptr;
  FaultStats* fault_stats_ = nullptr;
  KillHandler kill_handler_;
  /// Live tracked ops, id → scheduled end time. std::map keeps reset's kill
  /// order deterministic (ascending op id == submission order).
  std::map<std::uint64_t, SimTime> live_ops_;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t last_op_id_ = 0;
  std::uint64_t launch_roll_index_ = 0;  // fault-decision counter for launches
  bool last_launch_faulted_ = false;
};

}  // namespace sigvp
