#pragma once

#include <cstdint>
#include <string>

#include "ir/instr_class.hpp"

namespace sigvp {

/// Cache geometry (the simulated L2 of a GPU).
struct CacheConfig {
  std::uint64_t size_bytes = 512 * 1024;
  std::uint32_t line_bytes = 128;
  std::uint32_t associativity = 8;

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / associativity; }
};

/// Architecture descriptor of a (simulated) GPU.
///
/// Three presets reproduce the paper's setup: the two host GPUs
/// (NVIDIA Quadro 4000 — Fermi GF100, and Grid K520 — Kepler GK104) and the
/// target embedded GPU (Tegra K1 — Kepler GK20A). Numbers come from public
/// datasheets; where a parameter is not public it is marked "calibrated".
struct GpuArch {
  std::string name;

  // --- compute geometry ------------------------------------------------------
  std::uint32_t num_sms = 1;
  std::uint32_t warp_width = 32;
  std::uint32_t max_threads_per_sm = 1536;
  std::uint32_t max_blocks_per_sm = 8;
  double clock_ghz = 1.0;

  /// Functional-unit lanes per SM for each instruction class; a warp
  /// instruction of class i issues in warp_width / lanes[i] cycles.
  ClassValues lanes_per_sm;

  /// Fixed per-thread-block dispatch overhead (cycles) — the hardware part
  /// of the launch overhead To in the paper's Eq. 9.
  double block_overhead_cycles = 300.0;

  /// Fraction of ideal issue cycles lost to non-data stalls (scheduler
  /// conflicts, RAW hazards the compiler cannot hide). Calibrated.
  double other_stall_fraction = 0.08;

  // --- memory system ---------------------------------------------------------
  CacheConfig l2;
  double mem_latency_cycles = 400.0;
  double mem_bandwidth_gbps = 80.0;

  /// Host-link (PCIe or SoC fabric) used by the copy engine.
  double copy_bandwidth_gbps = 6.0;
  double copy_latency_us = 15.0;

  /// Per-launch front-end overhead (driver + command processor), µs.
  double launch_overhead_us = 8.0;

  /// Per-class static code expansion of this ISA relative to the generic IR
  /// ("compiling" the kernel for this architecture, paper Fig. 8: the same
  /// program block has µ=32 on the host and µ=43 on the target). The device
  /// model prices launches with the expanded counts — it executes its own
  /// binary — and the estimator reconstructs them per block via Eq. 1.
  ClassValues compile_expansion = ClassValues::uniform(1.0);

  // --- power -----------------------------------------------------------------
  double static_power_w = 30.0;
  /// Dynamic energy per executed thread-instruction, by class (nanojoules).
  ClassValues instr_energy_nj;

  // --- derived ---------------------------------------------------------------

  /// Device-wide peak IPC (thread instructions per cycle) — the IPC_T / IPC_H
  /// of the paper's Eq. 2: all SMs issuing full FP32-rate warps.
  double max_ipc() const {
    return static_cast<double>(num_sms) * lanes_per_sm[InstrClass::kFp32];
  }

  /// Cycles one SM needs to issue a single warp instruction of class i.
  double warp_cpi(InstrClass c) const {
    const double lanes = lanes_per_sm[c];
    return lanes > 0.0 ? static_cast<double>(warp_width) / lanes : 0.0;
  }

  /// Resident blocks per SM for a given block size (occupancy limit).
  std::uint32_t concurrent_blocks_per_sm(std::uint64_t threads_per_block) const;

  /// Device-wide concurrently resident blocks ("slots"); the paper's Eq. 9
  /// alignment unit λ equals slots × threads_per_block data units.
  std::uint64_t concurrent_blocks(std::uint64_t threads_per_block) const;
};

/// NVIDIA Quadro 4000: Fermi GF100, 8 SMs × 32 cores, 950 MHz shaders.
GpuArch make_quadro4000();
/// NVIDIA Grid K520 (one GK104 GPU): 8 SMX × 192 cores, 800 MHz.
GpuArch make_gridk520();
/// NVIDIA Tegra K1 (GK20A): 1 SMX × 192 cores, 850 MHz, embedded SoC.
GpuArch make_tegrak1();

}  // namespace sigvp
