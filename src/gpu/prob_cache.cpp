#include "gpu/prob_cache.hpp"

#include <algorithm>
#include <cmath>

namespace sigvp {

double ProbCacheModel::expected_misses(const MemoryBehavior& b) const {
  if (b.accesses == 0 || b.footprint_bytes == 0) return 0.0;

  const double line = static_cast<double>(config_.line_bytes);
  const double cache = static_cast<double>(config_.size_bytes);
  const double footprint = static_cast<double>(b.footprint_bytes);

  // Compulsory misses: each distinct line must be fetched once.
  const double cold = std::ceil(footprint / line);

  // Effective line-granular accesses: spatially-coalesced accesses within a
  // warp collapse onto one line probe.
  const double effective_accesses =
      static_cast<double>(b.accesses) * (1.0 - 0.75 * std::clamp(b.coalescing, 0.0, 1.0));
  const double reuse_accesses = std::max(0.0, effective_accesses - cold);

  // Capacity term: when the footprint exceeds the cache, a *distant* line
  // revisit finds its line evicted with probability ~ 1 - cache/footprint
  // (uniform stack-distance approximation of the probabilistic model in
  // [17]). Short-distance revisits — the `reuse_fraction` of them — hit
  // regardless of footprint.
  double capacity_miss_prob = 0.0;
  if (footprint > cache) {
    capacity_miss_prob = (footprint - cache) / footprint;
  }
  const double reuse = std::clamp(b.reuse_fraction, 0.0, 1.0);
  const double capacity_misses = reuse_accesses * capacity_miss_prob * (1.0 - reuse);

  return cold + capacity_misses;
}

double ProbCacheModel::expected_miss_rate(const MemoryBehavior& b) const {
  if (b.accesses == 0) return 0.0;
  const double effective_accesses =
      static_cast<double>(b.accesses) * (1.0 - 0.75 * std::clamp(b.coalescing, 0.0, 1.0));
  if (effective_accesses <= 0.0) return 0.0;
  return std::min(1.0, expected_misses(b) / effective_accesses);
}

}  // namespace sigvp
