#pragma once

#include "gpu/arch.hpp"
#include "gpu/cost_model.hpp"
#include "gpu/prob_cache.hpp"
#include "interp/interpreter.hpp"
#include "interp/profile.hpp"

namespace sigvp {

/// Result of evaluating one kernel launch outside the event loop.
struct LaunchEvaluation {
  KernelExecStats stats;
  DynamicProfile profile;
};

/// Functionally executes `kernel` on `memory` with a cycle-accurate L2 cache
/// simulation for `arch`, then prices the run with the cost model. This is
/// the "execute on the host GPU and profile it" step of the paper's
/// Profile-Based Execution Analysis (Fig. 7, step 2).
LaunchEvaluation evaluate_functional(const GpuArch& arch, const KernelIR& kernel,
                                     const LaunchDims& dims, const KernelArgs& args,
                                     AddressSpace& memory);

/// Prices a launch from an analytic profile (per-block λ counts and byte
/// traffic) plus a locality summary, without touching data — used for
/// workload sizes too large to interpret functionally.
KernelExecStats evaluate_analytic(const GpuArch& arch, const KernelIR& kernel,
                                  const LaunchDims& dims, const DynamicProfile& profile,
                                  const MemoryBehavior& behavior);

}  // namespace sigvp
