#pragma once

#include "gpu/arch.hpp"
#include "gpu/cost_model.hpp"
#include "gpu/prob_cache.hpp"
#include "interp/interpreter.hpp"
#include "interp/profile.hpp"

namespace sigvp {

/// How the launch cache was involved in producing a LaunchEvaluation.
/// kUncached = the cache never looked at the launch (disabled, or a direct
/// evaluate_functional call); the others are the counted cache outcomes.
enum class LaunchCacheOutcome { kUncached, kHit, kMiss, kBypass };

inline const char* launch_cache_outcome_name(LaunchCacheOutcome outcome) {
  switch (outcome) {
    case LaunchCacheOutcome::kUncached: return "uncached";
    case LaunchCacheOutcome::kHit: return "hit";
    case LaunchCacheOutcome::kMiss: return "miss";
    case LaunchCacheOutcome::kBypass: return "bypass";
  }
  return "?";
}

/// Result of evaluating one kernel launch outside the event loop.
struct LaunchEvaluation {
  KernelExecStats stats;
  DynamicProfile profile;
  LaunchCacheOutcome cache = LaunchCacheOutcome::kUncached;
};

/// Functionally executes `kernel` on `memory` with a cycle-accurate L2 cache
/// simulation for `arch`, then prices the run with the cost model. This is
/// the "execute on the host GPU and profile it" step of the paper's
/// Profile-Based Execution Analysis (Fig. 7, step 2).
LaunchEvaluation evaluate_functional(const GpuArch& arch, const KernelIR& kernel,
                                     const LaunchDims& dims, const KernelArgs& args,
                                     AddressSpace& memory);

/// As above, but additionally installs `capture` as the interpreter's
/// per-chunk access recorder (Interpreter::Options::capture_hook), composed
/// with the L2 shard hook. The launch cache uses this to record a launch's
/// read-set/write-set on the fill path without perturbing stats or profile.
LaunchEvaluation evaluate_functional(
    const GpuArch& arch, const KernelIR& kernel, const LaunchDims& dims,
    const KernelArgs& args, AddressSpace& memory,
    const std::function<MemAccessHook(std::size_t chunk)>& capture);

/// Prices a launch from an analytic profile (per-block λ counts and byte
/// traffic) plus a locality summary, without touching data — used for
/// workload sizes too large to interpret functionally.
KernelExecStats evaluate_analytic(const GpuArch& arch, const KernelIR& kernel,
                                  const LaunchDims& dims, const DynamicProfile& profile,
                                  const MemoryBehavior& behavior);

}  // namespace sigvp
