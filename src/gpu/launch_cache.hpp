#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gpu/arch.hpp"
#include "gpu/offline.hpp"
#include "interp/launch.hpp"
#include "ir/program.hpp"
#include "mem/address_space.hpp"

namespace sigvp {

namespace snapshot {
class Writer;
class Reader;
}

/// Monotonic counters of the process-wide launch cache. `snapshot()` deltas
/// are what the sweep runner folds into the BENCH JSON `cache` block.
struct LaunchCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bypasses = 0;
  std::uint64_t bytes_replayed = 0;  // write-set bytes applied on hits
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  // current resident entries
  std::uint64_t bytes = 0;    // current resident write-set bytes

  LaunchCacheStats operator-(const LaunchCacheStats& base) const {
    LaunchCacheStats d;
    d.hits = hits - base.hits;
    d.misses = misses - base.misses;
    d.bypasses = bypasses - base.bypasses;
    d.bytes_replayed = bytes_replayed - base.bytes_replayed;
    d.evictions = evictions - base.evictions;
    d.entries = entries;  // resident counts are levels, not deltas
    d.bytes = bytes;
    return d;
  }
};

/// Process-wide content-addressed memoization of functional kernel launches.
///
/// The fleet premise of the paper (ΣVP coalesces launches precisely because
/// VPs run *identical* kernels) means an N-VP scenario interprets the same
/// (kernel, dims, args, input bytes) N times. This cache executes it once,
/// records the complete outcome — KernelExecStats, DynamicProfile, and the
/// write-set (address ranges + bytes) captured by the interpreter's
/// capture_hook — and replays the memory effects into the caller's
/// AddressSpace on every subsequent identical launch.
///
/// Key derivation (see DESIGN.md §11):
///   base key  = mix(arch fingerprint, kernel structural fingerprint
///               via interp_detail::kernel_fingerprint, launch dims,
///               raw argument bits)
///   input hash = chained hash of the *pre-launch* bytes of every memory
///               range the launch read (reconstructed on the fill path from
///               an undo log, since reads interleave with writes)
/// A lookup recomputes the input hash over the caller's current memory and
/// only hits when it matches — so two launches with equal fingerprints/dims/
/// args but different input bytes are distinct entries in one bucket.
///
/// Determinism contract: a hit is byte-identical in memory and bit-identical
/// in stats/profile to recomputation for any interpreter worker count,
/// because the interpreter itself guarantees worker-independent results and
/// the write-set is captured from one such execution. The opt-in
/// SIGVP_LAUNCH_CACHE_VERIFY=1 mode re-executes every hit against a copy of
/// memory and throws ContractError on any divergence.
///
/// Bypass rules (never cached, never replayed):
///  - kFault: the device has an active FaultPlan — fault rolls and
///    injected hangs must see real executions;
///  - kAtomics: kernels with global atomics (accumulation order is
///    observable and their hook stream under-reports reads);
///  - kHook: the caller installed its own access observer, which must see
///    real traffic.
///
/// Capacity is bounded; eviction is strict global insertion order (FIFO by
/// fill sequence, never clock- or recency-based), so the resident set after
/// any fixed launch sequence is reproducible run-to-run.
class LaunchCache {
 public:
  enum class Bypass {
    kNone,
    kFault,    // active fault plan on the device
    kAtomics,  // kernel uses global atomics (detected internally)
    kHook,     // caller-installed access observer
  };

  /// Per-chunk observer factory, same shape as Interpreter::Options hooks.
  using ObserverFactory = std::function<MemAccessHook(std::size_t chunk)>;

  /// Singleton; first use reads SIGVP_LAUNCH_CACHE ("0" disables) and
  /// SIGVP_LAUNCH_CACHE_VERIFY ("1" enables recompute-and-diff on hits).
  static LaunchCache& instance();

  /// A private cache instance for one fleet domain (launch-cache sharding by
  /// VP slice, DESIGN.md §16): same environment-derived configuration as the
  /// singleton, but an independent resident set and counters, so a sharded
  /// domain's hit/miss sequence is a pure function of its own launch stream
  /// no matter how shard threads interleave.
  static std::unique_ptr<LaunchCache> create_shard();

  ~LaunchCache();  // public so create_shard() shards can be owned by callers

  /// Evaluates one functional launch through the cache: lookup → replay on
  /// hit, execute-with-capture → fill on miss, or plain execution when
  /// disabled/bypassed. `bypass` carries the caller-known reason (kFault);
  /// atomics are detected here, and a non-empty `observer` forces kHook
  /// (the observer then sees the real execution's traffic).
  LaunchEvaluation evaluate(const GpuArch& arch, const KernelIR& kernel,
                            const LaunchDims& dims, const KernelArgs& args,
                            AddressSpace& memory, Bypass bypass = Bypass::kNone,
                            const ObserverFactory& observer = nullptr);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }
  bool verify() const { return verify_; }
  void set_verify(bool on) { verify_ = on; }

  /// Bounds the resident set; evicts oldest-inserted entries first until
  /// both limits hold. Takes effect on the next fill.
  void set_capacity(std::uint64_t max_entries, std::uint64_t max_bytes);

  /// Drops every entry (stat counters keep accumulating).
  void clear();

  /// Monotonic counters + current residency, coherent snapshot.
  LaunchCacheStats stats() const;

  /// Serializes every resident entry in global FIFO (fill) order — the
  /// order eviction replays — so an import rebuilds a byte-identical
  /// resident set including its future eviction sequence.
  void export_state(snapshot::Writer& w) const;

  /// Re-inserts entries previously written by export_state, preserving
  /// fill order. Duplicate entries (already resident) are dropped by the
  /// normal insert dedup, so importing over a warm cache is safe.
  void import_state(snapshot::Reader& r);

 private:
  struct Entry;
  struct Shard;

  LaunchCache();  // out-of-line: Shard/Entry are incomplete here
  LaunchCache(const LaunchCache&) = delete;
  LaunchCache& operator=(const LaunchCache&) = delete;

  LaunchEvaluation execute_and_fill(const GpuArch& arch, const KernelIR& kernel,
                                    const LaunchDims& dims, const KernelArgs& args,
                                    AddressSpace& memory, std::uint64_t base_key);
  void verify_hit(const Entry& entry, const GpuArch& arch, const KernelIR& kernel,
                  const LaunchDims& dims, const KernelArgs& args,
                  const AddressSpace& memory) const;
  void insert(std::uint64_t base_key, std::shared_ptr<const Entry> entry);

  static constexpr std::size_t kNumShards = 16;

  std::vector<Shard> shards_;

  /// Global FIFO of live entries in fill order, plus residency totals — one
  /// queue (not per-shard) so eviction order is independent of how keys
  /// hash across shards. Lock order: fifo_mutex_ before any shard mutex.
  mutable std::mutex fifo_mutex_;
  struct FifoRef {
    std::uint64_t base_key = 0;
    std::size_t shard = 0;
    const Entry* entry = nullptr;  // identity only; shard owns the ref
  };
  std::vector<FifoRef> fifo_;
  std::size_t fifo_head_ = 0;  // amortized pop-front
  std::uint64_t resident_entries_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t max_entries_;
  std::uint64_t max_bytes_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> bypasses_{0};
  std::atomic<std::uint64_t> bytes_replayed_{0};
  std::atomic<std::uint64_t> evictions_{0};

  std::atomic<bool> enabled_{true};
  std::atomic<bool> verify_{false};
};

}  // namespace sigvp
