#include "gpu/host_gpu_set.hpp"

#include "util/check.hpp"

namespace sigvp {

HostGpuSet::HostGpuSet(EventQueue& queue, const std::vector<HostGpuSpec>& specs,
                       bool private_caches) {
  SIGVP_REQUIRE(!specs.empty(), "a host GPU set needs at least one device");
  const bool multi = specs.size() > 1;
  devices_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string name = multi ? "hostGPU" + std::to_string(i) : "hostGPU";
    devices_.push_back(
        std::make_unique<GpuDevice>(queue, specs[i].arch, specs[i].mem_bytes, name));
  }
  if (private_caches || multi) {
    caches_.reserve(devices_.size());
    for (auto& dev : devices_) {
      caches_.push_back(LaunchCache::create_shard());
      dev->set_launch_cache(caches_.back().get());
    }
  }
}

std::vector<GpuDevice*> HostGpuSet::device_ptrs() {
  std::vector<GpuDevice*> ptrs;
  ptrs.reserve(devices_.size());
  for (auto& dev : devices_) ptrs.push_back(dev.get());
  return ptrs;
}

LaunchCacheStats HostGpuSet::cache_stats() const {
  LaunchCacheStats total;
  for (const auto& cache : caches_) {
    const LaunchCacheStats s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.bypasses += s.bypasses;
    total.bytes_replayed += s.bytes_replayed;
    total.evictions += s.evictions;
    total.entries += s.entries;
    total.bytes += s.bytes;
  }
  return total;
}

std::vector<double> HostGpuSet::relative_speeds() const {
  std::vector<double> speeds;
  speeds.reserve(devices_.size());
  for (const auto& dev : devices_) {
    speeds.push_back(dev->arch().max_ipc() * dev->arch().clock_ghz);
  }
  return speeds;
}

std::uint64_t HostGpuSet::resident_bytes() const {
  std::uint64_t total = sizeof(HostGpuSet);
  for (const auto& dev : devices_) total += dev->resident_bytes();
  for (const auto& cache : caches_) {
    const LaunchCacheStats cs = cache->stats();
    total += cs.bytes + cs.entries * 256;  // resident write-sets + entry overhead
  }
  return total;
}

}  // namespace sigvp
