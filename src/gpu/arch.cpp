#include "gpu/arch.hpp"

#include <algorithm>

namespace sigvp {

std::uint32_t GpuArch::concurrent_blocks_per_sm(std::uint64_t threads_per_block) const {
  if (threads_per_block == 0) return max_blocks_per_sm;
  const std::uint64_t by_threads = max_threads_per_sm / threads_per_block;
  const std::uint64_t limit = std::min<std::uint64_t>(by_threads, max_blocks_per_sm);
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(1, limit));
}

std::uint64_t GpuArch::concurrent_blocks(std::uint64_t threads_per_block) const {
  return static_cast<std::uint64_t>(num_sms) * concurrent_blocks_per_sm(threads_per_block);
}

GpuArch make_quadro4000() {
  GpuArch a;
  a.name = "Quadro 4000";
  a.num_sms = 8;
  a.warp_width = 32;
  a.max_threads_per_sm = 1536;
  a.max_blocks_per_sm = 8;
  a.clock_ghz = 0.95;

  // GF100 SM: 32 CUDA cores (FP32/Int), half-rate FP64 (Quadro keeps the
  // full 1/2 ratio), 16 LD/ST units, full-rate branch resolution.
  a.lanes_per_sm[InstrClass::kFp32] = 32.0;
  a.lanes_per_sm[InstrClass::kFp64] = 16.0;
  a.lanes_per_sm[InstrClass::kInt] = 32.0;
  a.lanes_per_sm[InstrClass::kBit] = 32.0;
  a.lanes_per_sm[InstrClass::kBranch] = 32.0;
  a.lanes_per_sm[InstrClass::kLoad] = 16.0;
  a.lanes_per_sm[InstrClass::kStore] = 16.0;

  a.block_overhead_cycles = 200.0;
  a.other_stall_fraction = 0.08;
  // Fermi sm_20 is the reference ISA for the generic IR.
  a.compile_expansion = ClassValues::uniform(1.0);

  a.l2 = CacheConfig{512 * 1024, 128, 8};
  a.mem_latency_cycles = 400.0;
  a.mem_bandwidth_gbps = 89.6;
  a.copy_bandwidth_gbps = 6.0;   // PCIe 2.0 x16 effective
  a.copy_latency_us = 15.0;
  a.launch_overhead_us = 8.0;

  // 142 W TDP: ~35 W static, the rest calibrated so full-rate FP32 issue
  // dissipates close to the dynamic budget.
  a.static_power_w = 35.0;
  a.instr_energy_nj[InstrClass::kFp32] = 0.38;
  a.instr_energy_nj[InstrClass::kFp64] = 0.95;
  a.instr_energy_nj[InstrClass::kInt] = 0.22;
  a.instr_energy_nj[InstrClass::kBit] = 0.18;
  a.instr_energy_nj[InstrClass::kBranch] = 0.10;
  a.instr_energy_nj[InstrClass::kLoad] = 0.55;
  a.instr_energy_nj[InstrClass::kStore] = 0.55;
  return a;
}

GpuArch make_gridk520() {
  GpuArch a;
  a.name = "Grid K520";
  a.num_sms = 8;
  a.warp_width = 32;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 16;
  a.clock_ghz = 0.80;

  // GK104 SMX: 192 CUDA cores, 1/24-rate FP64, 32 LD/ST units.
  a.lanes_per_sm[InstrClass::kFp32] = 192.0;
  a.lanes_per_sm[InstrClass::kFp64] = 8.0;
  a.lanes_per_sm[InstrClass::kInt] = 160.0;
  a.lanes_per_sm[InstrClass::kBit] = 160.0;
  a.lanes_per_sm[InstrClass::kBranch] = 192.0;
  a.lanes_per_sm[InstrClass::kLoad] = 32.0;
  a.lanes_per_sm[InstrClass::kStore] = 32.0;

  a.block_overhead_cycles = 150.0;
  a.other_stall_fraction = 0.07;
  // Kepler sm_30 code is slightly larger: extra scheduling hints and
  // integer address expansion.
  a.compile_expansion = ClassValues::uniform(1.0);
  a.compile_expansion[InstrClass::kInt] = 1.06;
  a.compile_expansion[InstrClass::kLoad] = 1.03;
  a.compile_expansion[InstrClass::kStore] = 1.03;

  a.l2 = CacheConfig{512 * 1024, 128, 8};
  a.mem_latency_cycles = 300.0;
  a.mem_bandwidth_gbps = 160.0;
  a.copy_bandwidth_gbps = 6.0;
  a.copy_latency_us = 15.0;
  a.launch_overhead_us = 7.0;

  // 225 W TDP for the dual-GPU board → ~110 W per GK104; ~40 W static.
  a.static_power_w = 40.0;
  a.instr_energy_nj[InstrClass::kFp32] = 0.18;
  a.instr_energy_nj[InstrClass::kFp64] = 1.30;
  a.instr_energy_nj[InstrClass::kInt] = 0.12;
  a.instr_energy_nj[InstrClass::kBit] = 0.10;
  a.instr_energy_nj[InstrClass::kBranch] = 0.06;
  a.instr_energy_nj[InstrClass::kLoad] = 0.40;
  a.instr_energy_nj[InstrClass::kStore] = 0.40;
  return a;
}

GpuArch make_tegrak1() {
  GpuArch a;
  a.name = "Tegra K1";
  a.num_sms = 1;
  a.warp_width = 32;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 16;
  a.clock_ghz = 0.85;

  // GK20A: one Kepler SMX, 1/24-rate FP64, embedded memory system.
  a.lanes_per_sm[InstrClass::kFp32] = 192.0;
  a.lanes_per_sm[InstrClass::kFp64] = 8.0;
  a.lanes_per_sm[InstrClass::kInt] = 160.0;
  a.lanes_per_sm[InstrClass::kBit] = 160.0;
  a.lanes_per_sm[InstrClass::kBranch] = 192.0;
  a.lanes_per_sm[InstrClass::kLoad] = 32.0;
  a.lanes_per_sm[InstrClass::kStore] = 32.0;

  a.block_overhead_cycles = 150.0;
  a.other_stall_fraction = 0.10;
  // GK20A (sm_32): Kepler ISA plus embedded addressing sequences; FP64
  // helper sequences inflate double-precision code (paper Fig. 8 shows the
  // target block growing from 32 to 43 instructions).
  a.compile_expansion = ClassValues::uniform(1.0);
  a.compile_expansion[InstrClass::kInt] = 1.12;
  a.compile_expansion[InstrClass::kFp64] = 1.18;
  a.compile_expansion[InstrClass::kLoad] = 1.08;
  a.compile_expansion[InstrClass::kStore] = 1.08;
  a.compile_expansion[InstrClass::kBit] = 1.05;

  a.l2 = CacheConfig{128 * 1024, 128, 8};
  a.mem_latency_cycles = 250.0;
  a.mem_bandwidth_gbps = 14.9;   // shared LPDDR3
  a.copy_bandwidth_gbps = 12.0;  // on-SoC copies, no PCIe hop
  a.copy_latency_us = 5.0;
  a.launch_overhead_us = 12.0;   // slower ARM host driver path

  // SoC GPU rail: ~0.6 W static, low-voltage dynamic energy.
  a.static_power_w = 0.6;
  a.instr_energy_nj[InstrClass::kFp32] = 0.030;
  a.instr_energy_nj[InstrClass::kFp64] = 0.210;
  a.instr_energy_nj[InstrClass::kInt] = 0.020;
  a.instr_energy_nj[InstrClass::kBit] = 0.017;
  a.instr_energy_nj[InstrClass::kBranch] = 0.010;
  a.instr_energy_nj[InstrClass::kLoad] = 0.065;
  a.instr_energy_nj[InstrClass::kStore] = 0.065;
  return a;
}

}  // namespace sigvp
