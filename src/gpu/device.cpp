#include "gpu/device.hpp"

#include <algorithm>
#include <utility>

#include "gpu/launch_cache.hpp"

#include "interp/decoded.hpp"
#include "interp/tier2.hpp"
#include "snapshot/serial.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp {

namespace {
// Device allocations start above the null page so address 0 stays invalid.
constexpr std::uint64_t kHeapBase = 4096;
}  // namespace

GpuDevice::GpuDevice(EventQueue& queue, GpuArch arch, std::uint64_t mem_bytes, std::string name)
    : queue_(queue),
      arch_(std::move(arch)),
      name_(std::move(name)),
      memory_(mem_bytes, name_ + ".mem"),
      allocator_(kHeapBase, mem_bytes - kHeapBase),
      tid_compute_(trace::RunTrace::kTidGpuCompute),
      tid_copy_in_(trace::RunTrace::kTidGpuCopyIn),
      tid_copy_out_(trace::RunTrace::kTidGpuCopyOut) {
  SIGVP_REQUIRE(mem_bytes > kHeapBase, "device memory too small");
  streams_.push_back(Stream{});  // stream 0: the default stream
}

std::uint64_t GpuDevice::malloc(std::uint64_t bytes, std::uint64_t align) {
  auto addr = allocator_.allocate(bytes, align);
  SIGVP_REQUIRE(addr.has_value(),
                name_ + ": device memory exhausted allocating " + std::to_string(bytes) + " bytes");
  return *addr;
}

void GpuDevice::free(std::uint64_t addr) { allocator_.free(addr); }

GpuDevice::StreamId GpuDevice::create_stream() {
  streams_.push_back(Stream{});
  return static_cast<StreamId>(streams_.size() - 1);
}

SimTime GpuDevice::stream_idle_at(StreamId stream) const {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  return streams_[stream].tail;
}

SimTime GpuDevice::schedule_on(EngineState& engine, Stream& stream, SimTime duration) {
  // Head-of-line blocking: the engine commits to this op now. It starts when
  // the engine frees up AND the op's stream dependency has completed.
  const SimTime start = std::max({queue_.now(), engine.free_at, stream.tail});
  const SimTime end = start + duration;
  engine.free_at = end;
  stream.tail = end;
  return end;
}

SimTime GpuDevice::copy_duration(std::uint64_t bytes) const {
  const double gbps = arch_.copy_bandwidth_gbps;
  // bytes / (GB/s) = nanoseconds per byte × bytes; convert to µs.
  const double transfer_us = static_cast<double>(bytes) / (gbps * 1e3);
  return arch_.copy_latency_us + transfer_us;
}

void GpuDevice::complete_tracked(SimTime end, std::function<void()> fire) {
  if (!fault_tracking()) {
    if (fire) queue_.schedule_at(end, std::move(fire));
    return;
  }
  const std::uint64_t id = next_op_id_++;
  last_op_id_ = id;
  live_ops_.emplace(id, end);
  queue_.schedule_at(end, [this, id, fire = std::move(fire)] {
    if (live_ops_.erase(id) == 0) return;  // killed by a device reset
    if (fire) fire();
  });
}

SimTime GpuDevice::memcpy_h2d(StreamId stream, std::uint64_t dst, const void* src,
                              std::uint64_t bytes, CopyCallback cb) {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  if (src != nullptr) memory_.copy_in(dst, src, bytes);
  const SimTime end = schedule_on(copy_in_engine_, streams_[stream], copy_duration(bytes));
  copy_busy_ += copy_duration(bytes);
  ++copies_submitted_;
  if (trace_ != nullptr) {
    trace_->span(tid_copy_in_, "gpu", "h2d", end - copy_duration(bytes), end,
                 {trace::arg("bytes", bytes), trace::arg("stream", static_cast<int>(stream))});
  }
  std::function<void()> fire;
  if (cb) fire = [end, cb = std::move(cb)] { cb(end); };
  complete_tracked(end, std::move(fire));
  return end;
}

SimTime GpuDevice::memcpy_d2h(StreamId stream, void* dst, std::uint64_t src, std::uint64_t bytes,
                              CopyCallback cb) {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  if (dst != nullptr) memory_.copy_out(dst, src, bytes);
  const SimTime end = schedule_on(copy_out_engine_, streams_[stream], copy_duration(bytes));
  copy_busy_ += copy_duration(bytes);
  ++copies_submitted_;
  if (trace_ != nullptr) {
    trace_->span(tid_copy_out_, "gpu", "d2h", end - copy_duration(bytes), end,
                 {trace::arg("bytes", bytes), trace::arg("stream", static_cast<int>(stream))});
  }
  std::function<void()> fire;
  if (cb) fire = [end, cb = std::move(cb)] { cb(end); };
  complete_tracked(end, std::move(fire));
  return end;
}

SimTime GpuDevice::memcpy_d2d(StreamId stream, std::uint64_t dst, std::uint64_t src,
                              std::uint64_t bytes, CopyCallback cb) {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  memory_.copy_within(dst, src, bytes);
  // On-device copies move at memory bandwidth, not host-link bandwidth,
  // with a sub-µs DMA setup cost.
  const double transfer_us = static_cast<double>(bytes) / (arch_.mem_bandwidth_gbps * 1e3);
  const SimTime duration = 0.8 + transfer_us;
  const SimTime end = schedule_on(copy_out_engine_, streams_[stream], duration);
  copy_busy_ += duration;
  ++copies_submitted_;
  if (trace_ != nullptr) {
    trace_->span(tid_copy_out_, "gpu", "d2d", end - duration, end,
                 {trace::arg("bytes", bytes), trace::arg("stream", static_cast<int>(stream))});
  }
  std::function<void()> fire;
  if (cb) fire = [end, cb = std::move(cb)] { cb(end); };
  complete_tracked(end, std::move(fire));
  return end;
}

SimTime GpuDevice::memcpy_d2d_batch(StreamId stream, const std::vector<CopyDesc>& descs,
                                    CopyCallback cb) {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  std::uint64_t total_bytes = 0;
  for (const CopyDesc& d : descs) {
    memory_.copy_within(d.dst, d.src, d.bytes);
    total_bytes += d.bytes;
  }
  const double transfer_us = static_cast<double>(total_bytes) / (arch_.mem_bandwidth_gbps * 1e3);
  const SimTime duration = 0.8 + transfer_us;
  const SimTime end = schedule_on(copy_out_engine_, streams_[stream], duration);
  copy_busy_ += duration;
  ++copies_submitted_;
  if (trace_ != nullptr) {
    trace_->span(tid_copy_out_, "gpu", "d2d_batch", end - duration, end,
                 {trace::arg("bytes", total_bytes),
                  trace::arg("descs", static_cast<int>(descs.size())),
                  trace::arg("stream", static_cast<int>(stream))});
  }
  std::function<void()> fire;
  if (cb) fire = [end, cb = std::move(cb)] { cb(end); };
  complete_tracked(end, std::move(fire));
  return end;
}

SimTime GpuDevice::launch(StreamId stream, const LaunchRequest& request, KernelCallback cb,
                          LaunchFailCallback on_fault) {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  SIGVP_REQUIRE(request.kernel != nullptr, "launch without a kernel");

  // One fault-decision index per launch, consumed for both the transient
  // failure roll and the engine-hang roll. Injected failures are offered
  // only to call sites that can recover (they passed `on_fault`).
  std::uint64_t roll = 0;
  if (fault_tracking()) roll = launch_roll_index_++;
  last_launch_faulted_ = fault_tracking() && on_fault && fault_plan_->fail_launch(roll);
  if (last_launch_faulted_) {
    const SimTime end = schedule_on(compute_engine_, streams_[stream],
                                    fault_plan_->config().launch_fail_latency_us);
    compute_busy_ += fault_plan_->config().launch_fail_latency_us;
    ++fault_stats_->launch_failures;
    SIGVP_DEBUG("gpu") << name_ << " TRANSIENT LAUNCH FAILURE of "
                       << request.kernel->name << " at t=" << queue_.now();
    if (trace_ != nullptr) {
      trace_->instant(tid_compute_, "fault", "launch_failure", queue_.now(),
                      {trace::arg("kernel", request.kernel->name)});
    }
    complete_tracked(end, [end, on_fault = std::move(on_fault)] { on_fault(end); });
    return end;
  }

  LaunchCacheOutcome cache_outcome = LaunchCacheOutcome::kUncached;
  KernelExecStats stats;
  if (request.mode == ExecMode::kFunctional) {
    // Functional launches go through the process-wide launch cache: an
    // identical (kernel, dims, args, input bytes) launch from another VP,
    // iteration, or sweep job replays the recorded write-set instead of
    // re-interpreting. Under an active fault plan the cache is bypassed —
    // injected hangs and resets must observe real executions.
    const LaunchCache::Bypass bypass =
        fault_tracking() ? LaunchCache::Bypass::kFault : LaunchCache::Bypass::kNone;
    LaunchCache& cache = launch_cache_ != nullptr ? *launch_cache_ : LaunchCache::instance();
    LaunchEvaluation eval =
        cache.evaluate(arch_, *request.kernel, request.dims, request.args, memory_, bypass);
    stats = eval.stats;
    cache_outcome = eval.cache;
  } else {
    stats = evaluate_analytic(arch_, *request.kernel, request.dims, request.analytic_profile,
                              request.mem_behavior);
  }

  SimTime duration = stats.duration_us;
  if (fault_tracking()) {
    const SimTime hang = fault_plan_->engine_hang(roll);
    if (hang > 0.0) {
      duration += hang;
      ++fault_stats_->engine_hangs;
    }
  }
  const SimTime end = schedule_on(compute_engine_, streams_[stream], duration);
  compute_busy_ += duration;
  dynamic_energy_j_ += stats.dynamic_energy_j;
  ++kernels_launched_;
  last_kernel_stats_ = stats;

  if (trace_ != nullptr) {
    switch (cache_outcome) {
      case LaunchCacheOutcome::kHit: ++trace_->cache_hits->value; break;
      case LaunchCacheOutcome::kMiss: ++trace_->cache_misses->value; break;
      case LaunchCacheOutcome::kBypass: ++trace_->cache_bypasses->value; break;
      case LaunchCacheOutcome::kUncached: break;
    }
    // Tier-2 eligibility of this launch: a pure function of (kernel, dims),
    // counted on the pre-cache launch stream so the metric is identical at
    // any worker count and unaffected by cross-VP launch-cache dedup (which
    // would make per-scenario *execution* counts nondeterministic).
    if (request.mode == ExecMode::kFunctional &&
        Tier2Engine::instance().eligible(
            *interp_detail::DecodedCache::instance().get(*request.kernel), request.dims)) {
      ++trace_->tier2_eligible->value;
    }
    trace_->span(tid_compute_, "gpu", request.kernel->name, end - duration,
                 end,
                 {trace::arg("blocks", static_cast<std::uint64_t>(stats.num_blocks)),
                  trace::arg("cycles", static_cast<double>(stats.total_cycles)),
                  trace::arg("cache", launch_cache_outcome_name(cache_outcome)),
                  trace::arg("stream", static_cast<int>(stream))});
  }

  SIGVP_DEBUG("gpu") << name_ << " launch " << request.kernel->name << " blocks="
                     << stats.num_blocks << " cycles=" << stats.total_cycles
                     << " dur=" << stats.duration_us << "us end=" << end << "us";

  std::function<void()> fire;
  if (cb) fire = [end, stats, cb = std::move(cb)] { cb(end, stats); };
  complete_tracked(end, std::move(fire));
  return end;
}

void GpuDevice::set_fault(const FaultPlan* plan, FaultStats* stats) {
  SIGVP_REQUIRE(plan == nullptr || stats != nullptr, "fault plan without a stats sink");
  fault_plan_ = plan;
  fault_stats_ = stats;
}

SimTime GpuDevice::reset(SimTime recovery_latency_us) {
  SIGVP_REQUIRE(fault_tracking(), "device reset requires an active fault plan");
  SIGVP_REQUIRE(recovery_latency_us >= 0.0, "negative reset latency");
  const SimTime back = queue_.now() + recovery_latency_us;
  ++fault_stats_->device_resets;

  // Kill every in-flight op in submission order. Swapping the map first
  // makes the already-scheduled completion events no-ops, and lets kill
  // handlers submit fresh (tracked) work without invalidating iteration.
  std::map<std::uint64_t, SimTime> killed;
  killed.swap(live_ops_);
  fault_stats_->ops_killed_by_reset += killed.size();
  SIGVP_DEBUG("gpu") << name_ << " DEVICE RESET at t=" << queue_.now() << ": killed "
                     << killed.size() << " in-flight ops, back at t=" << back;
  if (trace_ != nullptr) {
    trace_->span(tid_compute_, "fault", "device_reset", queue_.now(), back,
                 {trace::arg("ops_killed", static_cast<int>(killed.size()))});
  }

  // The reset wipes all queued work, so both engines and every stream
  // restart together once the device comes back.
  copy_in_engine_.free_at = back;
  copy_out_engine_.free_at = back;
  compute_engine_.free_at = back;
  for (Stream& s : streams_) s.tail = back;

  if (kill_handler_) {
    for (const auto& [id, end] : killed) {
      (void)end;
      kill_handler_(id);
    }
  }
  return back;
}

SimTime GpuDevice::device_idle_at() const {
  SimTime idle = std::max({copy_in_engine_.free_at, copy_out_engine_.free_at,
                           compute_engine_.free_at});
  for (const Stream& s : streams_) idle = std::max(idle, s.tail);
  return idle;
}

const KernelExecStats& GpuDevice::last_kernel_stats() const {
  SIGVP_REQUIRE(kernels_launched_ > 0, "no kernel has been launched yet");
  return last_kernel_stats_;
}

double GpuDevice::average_power_w(SimTime horizon_us) const {
  SIGVP_REQUIRE(horizon_us > 0.0, "power horizon must be positive");
  return arch_.static_power_w + dynamic_energy_j_ / s_from_us(horizon_us);
}

void GpuDevice::capture_state(snapshot::Writer& w, bool hash_memory) const {
  w.f64(copy_in_engine_.free_at);
  w.f64(copy_out_engine_.free_at);
  w.f64(compute_engine_.free_at);
  w.u64(streams_.size());
  for (const Stream& s : streams_) w.f64(s.tail);
  w.f64(copy_busy_);
  w.f64(compute_busy_);
  w.f64(dynamic_energy_j_);
  w.u64(kernels_launched_);
  w.u64(copies_submitted_);
  w.u64(allocator_.bytes_allocated());
  w.u64(live_ops_.size());
  for (const auto& [op_id, end] : live_ops_) {
    w.u64(op_id);
    w.f64(end);
  }
  w.u64(next_op_id_);
  w.u64(launch_roll_index_);
  if (hash_memory) w.u64(memory_.hash_range(0, memory_.size(), 0x5157f4a7ULL));
}

}  // namespace sigvp
