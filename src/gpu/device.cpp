#include "gpu/device.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp {

namespace {
// Device allocations start above the null page so address 0 stays invalid.
constexpr std::uint64_t kHeapBase = 4096;
}  // namespace

GpuDevice::GpuDevice(EventQueue& queue, GpuArch arch, std::uint64_t mem_bytes, std::string name)
    : queue_(queue),
      arch_(std::move(arch)),
      name_(std::move(name)),
      memory_(mem_bytes, name_ + ".mem"),
      allocator_(kHeapBase, mem_bytes - kHeapBase) {
  SIGVP_REQUIRE(mem_bytes > kHeapBase, "device memory too small");
  streams_.push_back(Stream{});  // stream 0: the default stream
}

std::uint64_t GpuDevice::malloc(std::uint64_t bytes, std::uint64_t align) {
  auto addr = allocator_.allocate(bytes, align);
  SIGVP_REQUIRE(addr.has_value(),
                name_ + ": device memory exhausted allocating " + std::to_string(bytes) + " bytes");
  return *addr;
}

void GpuDevice::free(std::uint64_t addr) { allocator_.free(addr); }

GpuDevice::StreamId GpuDevice::create_stream() {
  streams_.push_back(Stream{});
  return static_cast<StreamId>(streams_.size() - 1);
}

SimTime GpuDevice::stream_idle_at(StreamId stream) const {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  return streams_[stream].tail;
}

SimTime GpuDevice::schedule_on(EngineState& engine, Stream& stream, SimTime duration) {
  // Head-of-line blocking: the engine commits to this op now. It starts when
  // the engine frees up AND the op's stream dependency has completed.
  const SimTime start = std::max({queue_.now(), engine.free_at, stream.tail});
  const SimTime end = start + duration;
  engine.free_at = end;
  stream.tail = end;
  return end;
}

SimTime GpuDevice::copy_duration(std::uint64_t bytes) const {
  const double gbps = arch_.copy_bandwidth_gbps;
  // bytes / (GB/s) = nanoseconds per byte × bytes; convert to µs.
  const double transfer_us = static_cast<double>(bytes) / (gbps * 1e3);
  return arch_.copy_latency_us + transfer_us;
}

SimTime GpuDevice::memcpy_h2d(StreamId stream, std::uint64_t dst, const void* src,
                              std::uint64_t bytes, CopyCallback cb) {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  if (src != nullptr) memory_.copy_in(dst, src, bytes);
  const SimTime end = schedule_on(copy_in_engine_, streams_[stream], copy_duration(bytes));
  copy_busy_ += copy_duration(bytes);
  ++copies_submitted_;
  if (cb) queue_.schedule_at(end, [end, cb = std::move(cb)] { cb(end); });
  return end;
}

SimTime GpuDevice::memcpy_d2h(StreamId stream, void* dst, std::uint64_t src, std::uint64_t bytes,
                              CopyCallback cb) {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  if (dst != nullptr) memory_.copy_out(dst, src, bytes);
  const SimTime end = schedule_on(copy_out_engine_, streams_[stream], copy_duration(bytes));
  copy_busy_ += copy_duration(bytes);
  ++copies_submitted_;
  if (cb) queue_.schedule_at(end, [end, cb = std::move(cb)] { cb(end); });
  return end;
}

SimTime GpuDevice::memcpy_d2d(StreamId stream, std::uint64_t dst, std::uint64_t src,
                              std::uint64_t bytes, CopyCallback cb) {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  memory_.copy_within(dst, src, bytes);
  // On-device copies move at memory bandwidth, not host-link bandwidth,
  // with a sub-µs DMA setup cost.
  const double transfer_us = static_cast<double>(bytes) / (arch_.mem_bandwidth_gbps * 1e3);
  const SimTime duration = 0.8 + transfer_us;
  const SimTime end = schedule_on(copy_out_engine_, streams_[stream], duration);
  copy_busy_ += duration;
  ++copies_submitted_;
  if (cb) queue_.schedule_at(end, [end, cb = std::move(cb)] { cb(end); });
  return end;
}

SimTime GpuDevice::memcpy_d2d_batch(StreamId stream, const std::vector<CopyDesc>& descs,
                                    CopyCallback cb) {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  std::uint64_t total_bytes = 0;
  for (const CopyDesc& d : descs) {
    memory_.copy_within(d.dst, d.src, d.bytes);
    total_bytes += d.bytes;
  }
  const double transfer_us = static_cast<double>(total_bytes) / (arch_.mem_bandwidth_gbps * 1e3);
  const SimTime duration = 0.8 + transfer_us;
  const SimTime end = schedule_on(copy_out_engine_, streams_[stream], duration);
  copy_busy_ += duration;
  ++copies_submitted_;
  if (cb) queue_.schedule_at(end, [end, cb = std::move(cb)] { cb(end); });
  return end;
}

SimTime GpuDevice::launch(StreamId stream, const LaunchRequest& request, KernelCallback cb) {
  SIGVP_REQUIRE(stream < streams_.size(), "unknown stream");
  SIGVP_REQUIRE(request.kernel != nullptr, "launch without a kernel");

  KernelExecStats stats;
  if (request.mode == ExecMode::kFunctional) {
    LaunchEvaluation eval =
        evaluate_functional(arch_, *request.kernel, request.dims, request.args, memory_);
    stats = eval.stats;
  } else {
    stats = evaluate_analytic(arch_, *request.kernel, request.dims, request.analytic_profile,
                              request.mem_behavior);
  }

  const SimTime end = schedule_on(compute_engine_, streams_[stream], stats.duration_us);
  compute_busy_ += stats.duration_us;
  dynamic_energy_j_ += stats.dynamic_energy_j;
  ++kernels_launched_;
  last_kernel_stats_ = stats;

  SIGVP_DEBUG("gpu") << name_ << " launch " << request.kernel->name << " blocks="
                     << stats.num_blocks << " cycles=" << stats.total_cycles
                     << " dur=" << stats.duration_us << "us end=" << end << "us";

  if (cb) {
    queue_.schedule_at(end, [end, stats, cb = std::move(cb)] { cb(end, stats); });
  }
  return end;
}

SimTime GpuDevice::device_idle_at() const {
  SimTime idle = std::max({copy_in_engine_.free_at, copy_out_engine_.free_at,
                           compute_engine_.free_at});
  for (const Stream& s : streams_) idle = std::max(idle, s.tail);
  return idle;
}

const KernelExecStats& GpuDevice::last_kernel_stats() const {
  SIGVP_REQUIRE(kernels_launched_ > 0, "no kernel has been launched yet");
  return last_kernel_stats_;
}

double GpuDevice::average_power_w(SimTime horizon_us) const {
  SIGVP_REQUIRE(horizon_us > 0.0, "power horizon must be positive");
  return arch_.static_power_w + dynamic_energy_j_ / s_from_us(horizon_us);
}

}  // namespace sigvp
