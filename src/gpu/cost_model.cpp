#include "gpu/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sigvp {

namespace {

double exposure_factor(const GpuArch& arch, std::uint64_t threads_per_block) {
  // Resident warps hide miss latency by switching; with W warps in flight a
  // miss's latency is exposed ~1/W of the time (round-robin hiding). The
  // floor keeps a residual exposure for dependency chains even at full
  // occupancy; throughput limits are enforced separately by the bandwidth
  // bound in exposed_data_stalls().
  const std::uint64_t warps_per_block = (threads_per_block + arch.warp_width - 1) / arch.warp_width;
  const std::uint64_t resident_warps =
      std::max<std::uint64_t>(
          1, warps_per_block * arch.concurrent_blocks_per_sm(threads_per_block));
  return std::clamp(1.0 / static_cast<double>(resident_warps), 0.02, 1.0);
}

}  // namespace

double KernelCostModel::ideal_issue_cycles(const GpuArch& arch, const LaunchDims& dims,
                                           const ClassCounts& sigma) {
  const double total_threads = static_cast<double>(dims.total_threads());
  const std::uint64_t tpb = dims.threads_per_block();
  const std::uint64_t warps_per_block = (tpb + arch.warp_width - 1) / arch.warp_width;
  const std::uint64_t serial_blocks =
      (dims.num_blocks() + arch.num_sms - 1) / arch.num_sms;

  auto pipe_cycles = [&](std::initializer_list<InstrClass> classes) {
    double cycles = 0.0;
    for (InstrClass c : classes) {
      const double per_thread = static_cast<double>(sigma[c]) / total_threads;
      cycles += per_thread * static_cast<double>(warps_per_block) * arch.warp_cpi(c);
    }
    return cycles;
  };
  const double fp_pipe = pipe_cycles({InstrClass::kFp32, InstrClass::kFp64});
  const double int_pipe =
      pipe_cycles({InstrClass::kInt, InstrClass::kBit, InstrClass::kBranch});
  const double mem_pipe = pipe_cycles({InstrClass::kLoad, InstrClass::kStore});

  const double per_block = std::max({fp_pipe, int_pipe, mem_pipe});
  return static_cast<double>(serial_blocks) * per_block;
}

double KernelCostModel::exposed_data_stalls(const GpuArch& arch, const LaunchDims& dims,
                                            double misses) {
  // Exposed miss latency, but never less than the raw DRAM bandwidth bound
  // for the missed lines.
  const std::uint64_t active_sms =
      std::min<std::uint64_t>(arch.num_sms, std::max<std::uint64_t>(1, dims.num_blocks()));
  const double exposure = exposure_factor(arch, dims.threads_per_block());
  const double latency_stalls =
      misses * arch.mem_latency_cycles * exposure / static_cast<double>(active_sms);
  const double miss_bytes = misses * static_cast<double>(arch.l2.line_bytes);
  const double bytes_per_cycle = arch.mem_bandwidth_gbps / arch.clock_ghz;
  const double bandwidth_cycles = miss_bytes / bytes_per_cycle;
  return std::max(latency_stalls, bandwidth_cycles);
}

double KernelCostModel::effective_tau(InstrClass c, const LaunchDims& dims) const {
  const std::uint64_t active_sms =
      std::min<std::uint64_t>(arch_.num_sms, std::max<std::uint64_t>(1, dims.num_blocks()));
  // One warp instruction of class c covers warp_width thread-instructions and
  // takes warp_cpi cycles on one SM; active SMs issue in parallel.
  return arch_.warp_cpi(c) /
         (static_cast<double>(arch_.warp_width) * static_cast<double>(active_sms));
}

KernelExecStats KernelCostModel::evaluate(const LaunchDims& dims, const ClassCounts& sigma,
                                          const CacheStats& cache) const {
  SIGVP_REQUIRE(dims.total_threads() > 0, "launch must have threads");
  KernelExecStats s;
  // The device executes its own compiled binary: scale the generic-IR
  // instruction mix by the ISA's static code expansion.
  s.sigma = sigma;
  for (InstrClass c : kAllInstrClasses) {
    s.sigma[c] = static_cast<std::uint64_t>(
        static_cast<double>(sigma[c]) * arch_.compile_expansion[c] + 0.5);
  }
  s.cache = cache;
  s.num_blocks = dims.num_blocks();
  s.serial_blocks = (s.num_blocks + arch_.num_sms - 1) / arch_.num_sms;

  s.issue_cycles = ideal_issue_cycles(arch_, dims, s.sigma);
  s.block_overhead_cycles = static_cast<double>(s.serial_blocks) * arch_.block_overhead_cycles;

  s.stall_cycles_data =
      exposed_data_stalls(arch_, dims, static_cast<double>(cache.misses));

  s.stall_cycles_other = arch_.other_stall_fraction * s.issue_cycles;

  s.total_cycles =
      s.issue_cycles + s.block_overhead_cycles + s.stall_cycles_data + s.stall_cycles_other;
  s.duration_us = us_from_cycles(s.total_cycles, arch_.clock_ghz) + arch_.launch_overhead_us;

  for (InstrClass c : kAllInstrClasses) {
    s.dynamic_energy_j +=
        static_cast<double>(s.sigma[c]) * arch_.instr_energy_nj[c] * 1e-9;
  }
  return s;
}

}  // namespace sigvp
