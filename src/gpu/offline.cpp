#include "gpu/offline.hpp"

#include "gpu/cache.hpp"
#include "util/check.hpp"

namespace sigvp {

LaunchEvaluation evaluate_functional(const GpuArch& arch, const KernelIR& kernel,
                                     const LaunchDims& dims, const KernelArgs& args,
                                     AddressSpace& memory) {
  CacheModel l2(arch.l2);
  Interpreter::Options options;
  options.mem_hook = [&l2](std::uint64_t addr, std::uint32_t bytes, bool /*is_store*/) {
    l2.access(addr, bytes);
  };

  Interpreter interp;
  LaunchEvaluation out;
  out.profile = interp.run(kernel, dims, args, memory, options);

  KernelCostModel model(arch);
  out.stats = model.evaluate(dims, out.profile.instr_counts, l2.stats());
  return out;
}

KernelExecStats evaluate_analytic(const GpuArch& arch, const KernelIR& kernel,
                                  const LaunchDims& dims, const DynamicProfile& profile,
                                  const MemoryBehavior& behavior) {
  SIGVP_REQUIRE(profile.block_visits.size() == kernel.blocks.size() ||
                    profile.block_visits.empty(),
                "analytic profile shape does not match the kernel");

  // σ from λ·µ when per-block visits are provided (Eq. 1); otherwise the
  // profile's own class counts must already be filled in.
  ClassCounts sigma = profile.instr_counts;
  if (sigma.total() == 0 && !profile.block_visits.empty()) {
    sigma = DynamicProfile::counts_from_visits(kernel, profile.block_visits);
  }
  SIGVP_REQUIRE(sigma.total() > 0, "analytic profile carries no instructions");

  ProbCacheModel prob(arch.l2);
  CacheStats cache;
  cache.accesses = behavior.accesses;
  cache.misses = static_cast<std::uint64_t>(prob.expected_misses(behavior));
  cache.hits = cache.accesses > cache.misses ? cache.accesses - cache.misses : 0;

  KernelCostModel model(arch);
  return model.evaluate(dims, sigma, cache);
}

}  // namespace sigvp
