#include "gpu/offline.hpp"

#include <cmath>
#include <vector>

#include "gpu/cache.hpp"
#include "util/check.hpp"

namespace sigvp {

LaunchEvaluation evaluate_functional(const GpuArch& arch, const KernelIR& kernel,
                                     const LaunchDims& dims, const KernelArgs& args,
                                     AddressSpace& memory) {
  return evaluate_functional(arch, kernel, dims, args, memory, nullptr);
}

LaunchEvaluation evaluate_functional(
    const GpuArch& arch, const KernelIR& kernel, const LaunchDims& dims,
    const KernelArgs& args, AddressSpace& memory,
    const std::function<MemAccessHook(std::size_t chunk)>& capture) {
  // One cold L2 shard per canonical interpreter chunk. The shard layout
  // depends only on the launch geometry, so the merged stats are identical
  // for any worker count; on a GPU the chunks would run on different SMs
  // against cold cache state anyway, so per-shard cold misses model the
  // hardware at least as faithfully as one globally warm cache did.
  const std::size_t chunks = Interpreter::canonical_chunks(dims);
  std::vector<CacheModel> shards(chunks, CacheModel(arch.l2));

  Interpreter::Options options;
  options.shard_hook = [&shards](std::size_t chunk) -> MemAccessHook {
    CacheModel* shard = &shards[chunk];
    return [shard](std::uint64_t addr, std::uint32_t bytes, bool /*is_store*/) {
      shard->access(addr, bytes);
    };
  };
  options.capture_hook = capture;

  Interpreter interp;
  LaunchEvaluation out;
  out.profile = interp.run(kernel, dims, args, memory, options);

  // Merge in canonical chunk order (additive counters, but keep the order
  // canonical on principle: determinism bugs hide in "it's commutative").
  CacheStats l2_stats;
  for (const CacheModel& shard : shards) l2_stats += shard.stats();

  KernelCostModel model(arch);
  out.stats = model.evaluate(dims, out.profile.instr_counts, l2_stats);
  return out;
}

KernelExecStats evaluate_analytic(const GpuArch& arch, const KernelIR& kernel,
                                  const LaunchDims& dims, const DynamicProfile& profile,
                                  const MemoryBehavior& behavior) {
  SIGVP_REQUIRE(profile.block_visits.size() == kernel.blocks.size() ||
                    profile.block_visits.empty(),
                "analytic profile shape does not match the kernel");

  // σ from λ·µ when per-block visits are provided (Eq. 1); otherwise the
  // profile's own class counts must already be filled in.
  ClassCounts sigma = profile.instr_counts;
  if (sigma.total() == 0 && !profile.block_visits.empty()) {
    sigma = DynamicProfile::counts_from_visits(kernel, profile.block_visits);
  }
  SIGVP_REQUIRE(sigma.total() > 0, "analytic profile carries no instructions");

  ProbCacheModel prob(arch.l2);
  CacheStats cache;
  cache.accesses = behavior.accesses;
  // Round to nearest rather than truncate: 99.7 expected misses should
  // price as 100, not 99.
  cache.misses = static_cast<std::uint64_t>(std::llround(prob.expected_misses(behavior)));
  cache.hits = cache.accesses > cache.misses ? cache.accesses - cache.misses : 0;

  KernelCostModel model(arch);
  return model.evaluate(dims, sigma, cache);
}

}  // namespace sigvp
