#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpu/arch.hpp"
#include "gpu/device.hpp"
#include "gpu/launch_cache.hpp"
#include "sim/event_queue.hpp"

namespace sigvp {

/// One declared host GPU of a multi-device host set. A scenario that leaves
/// ScenarioConfig::host_gpus empty gets one implicit device built from the
/// legacy `gpu` + `gpu_mem_bytes` fields — byte-identical to every release
/// before multi-GPU existed.
struct HostGpuSpec {
  GpuArch arch = make_quadro4000();
  std::uint64_t mem_bytes = 2ull * 1024 * 1024 * 1024;
};

/// The host's GPU complement: N GpuDevice models on one event queue, each
/// with its own engines/streams/allocator and — whenever the set is sharded
/// or holds more than one device — a private launch-cache shard, so
/// hit/miss sequences stay a pure function of each device's own launch
/// stream (the cache key already includes the arch fingerprint, so
/// heterogeneous sets never cross-pollinate entries).
///
/// Device naming preserves the single-device contract: a 1-device set names
/// its device "hostGPU" exactly as before; N >= 2 names them "hostGPU0",
/// "hostGPU1", ...
class HostGpuSet {
 public:
  /// `private_caches` forces a launch-cache shard per device even for a
  /// 1-device set (sharded fleets); multi-device sets always get them.
  HostGpuSet(EventQueue& queue, const std::vector<HostGpuSpec>& specs, bool private_caches);

  std::size_t count() const { return devices_.size(); }
  GpuDevice& device(std::size_t i) { return *devices_.at(i); }
  const GpuDevice& device(std::size_t i) const { return *devices_.at(i); }
  GpuDevice* primary() { return devices_.front().get(); }

  /// Non-owning device pointers in declaration order (dispatcher lanes).
  std::vector<GpuDevice*> device_ptrs();

  bool has_private_caches() const { return !caches_.empty(); }

  /// Summed launch-cache shard activity across the set's private shards
  /// (zero stats when the set uses the process singleton).
  LaunchCacheStats cache_stats() const;

  /// Relative throughput per device (peak thread-IPC × clock) — the
  /// speed vector the affinity placement scales loads by.
  std::vector<double> relative_speeds() const;

  /// Deterministic size-based resident-host-memory estimate: device models
  /// plus private cache shards (resident write-sets + entry overhead).
  std::uint64_t resident_bytes() const;

 private:
  std::vector<std::unique_ptr<GpuDevice>> devices_;
  std::vector<std::unique_ptr<LaunchCache>> caches_;  // index-aligned when present
};

}  // namespace sigvp
