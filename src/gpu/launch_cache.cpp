#include "gpu/launch_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "gpu/cache.hpp"
#include "interp/decoded.hpp"
#include "interp/interpreter.hpp"
#include "snapshot/serial.hpp"
#include "util/check.hpp"

namespace sigvp {

namespace {

// --- key derivation ----------------------------------------------------------

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v * 0xFF51AFD7ED558CCDull;
  h = (h << 29) | (h >> 35);
  h *= 0xC4CEB9FE1A85EC53ull;
  return h;
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return mix64(h, bits);
}

std::uint64_t mix_class_values(std::uint64_t h, const ClassValues& v) {
  for (double x : v.values) h = mix_double(h, x);
  return h;
}

/// Every arch parameter that feeds evaluate_functional's pricing (cost
/// model, L2 geometry, energy) — two archs with equal fingerprints produce
/// bit-identical LaunchEvaluations for the same launch.
std::uint64_t arch_fingerprint(const GpuArch& a) {
  std::uint64_t h = kMemHashSeed;
  h = mix64(h, a.num_sms);
  h = mix64(h, a.warp_width);
  h = mix64(h, a.max_threads_per_sm);
  h = mix64(h, a.max_blocks_per_sm);
  h = mix_double(h, a.clock_ghz);
  h = mix_class_values(h, a.lanes_per_sm);
  h = mix_double(h, a.block_overhead_cycles);
  h = mix_double(h, a.other_stall_fraction);
  h = mix64(h, a.l2.size_bytes);
  h = mix64(h, a.l2.line_bytes);
  h = mix64(h, a.l2.associativity);
  h = mix_double(h, a.mem_latency_cycles);
  h = mix_double(h, a.mem_bandwidth_gbps);
  h = mix_double(h, a.copy_bandwidth_gbps);
  h = mix_double(h, a.copy_latency_us);
  h = mix_double(h, a.launch_overhead_us);
  h = mix_class_values(h, a.compile_expansion);
  h = mix_double(h, a.static_power_w);
  h = mix_class_values(h, a.instr_energy_nj);
  return h;
}

std::uint64_t base_key_of(const GpuArch& arch, const KernelIR& kernel,
                          const LaunchDims& dims, const KernelArgs& args) {
  std::uint64_t h = arch_fingerprint(arch);
  h = mix64(h, interp_detail::kernel_fingerprint(kernel));
  h = mix64(h, (static_cast<std::uint64_t>(dims.grid_x) << 32) | dims.grid_y);
  h = mix64(h, (static_cast<std::uint64_t>(dims.block_x) << 32) | dims.block_y);
  h = mix64(h, args.values.size());
  for (std::uint64_t v : args.values) h = mix64(h, v);
  return h;
}

// --- read/write-set capture --------------------------------------------------

/// Ordered, coalesced set of [start, end) byte intervals. add() reports the
/// previously-uncovered gaps so the store path can snapshot pre-store bytes
/// exactly once per byte (first-write-wins undo log).
class IntervalSet {
 public:
  void add(std::uint64_t addr, std::uint64_t size, std::vector<MemChunk>* gaps) {
    if (size == 0) return;
    const std::uint64_t end = addr + size;
    auto it = map_.upper_bound(addr);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= addr) it = prev;
    }
    // Fast path: the whole range is already covered (repeated access
    // patterns — by far the common case after the first block).
    if (it != map_.end() && it->first <= addr && it->second >= end) return;
    std::uint64_t new_start = addr;
    std::uint64_t new_end = end;
    std::uint64_t cursor = addr;
    while (it != map_.end() && it->first <= end) {
      if (gaps && it->first > cursor) gaps->push_back({cursor, it->first - cursor});
      cursor = std::max(cursor, it->second);
      new_start = std::min(new_start, it->first);
      new_end = std::max(new_end, it->second);
      it = map_.erase(it);
    }
    if (gaps && cursor < end) gaps->push_back({cursor, end - cursor});
    map_.emplace(new_start, new_end);
  }

  std::vector<MemChunk> ranges() const {
    std::vector<MemChunk> out;
    out.reserve(map_.size());
    for (const auto& [start, end] : map_) out.push_back({start, end - start});
    return out;
  }

  const std::map<std::uint64_t, std::uint64_t>& raw() const { return map_; }

 private:
  std::map<std::uint64_t, std::uint64_t> map_;  // start -> end
};

/// Per-canonical-chunk capture state; chunk-private, so recording needs no
/// synchronization even when chunks run on different interpreter workers.
struct ChunkCapture {
  IntervalSet reads;
  IntervalSet writes;
  /// Pre-store bytes of each byte this chunk wrote, first write wins:
  /// `undo_ranges[i]` holds bytes at offset Σ size of earlier ranges.
  std::vector<MemChunk> undo_ranges;
  std::vector<std::uint8_t> undo_bytes;
  std::vector<MemChunk> gap_scratch;
};

/// Merges per-chunk interval sets into one sorted, coalesced range list.
std::vector<MemChunk> merge_ranges(const std::vector<ChunkCapture>& chunks,
                                   IntervalSet ChunkCapture::*which) {
  IntervalSet merged;
  for (const ChunkCapture& c : chunks) {
    for (const auto& [start, end] : (c.*which).raw()) {
      merged.add(start, end - start, nullptr);
    }
  }
  return merged.ranges();
}

/// Chained content hash over `ranges` of `mem` — the validation-time side.
/// Range addresses are folded in too, so the chain is well-defined even for
/// an empty read-set.
std::uint64_t hash_ranges_in(const AddressSpace& mem, const std::vector<MemChunk>& ranges) {
  std::uint64_t h = kMemHashSeed;
  for (const MemChunk& r : ranges) {
    h = mix64(h, r.addr);
    h = mem.hash_range(r.addr, r.size, h);
  }
  return h;
}

/// Reconstructs the pre-launch bytes of `ranges` from post-launch memory
/// plus the per-chunk undo logs: start from the post bytes, then overlay
/// undo entries in reverse canonical chunk order so the earliest-recorded
/// (oldest) value of every byte wins — exactly the pre-launch value under
/// the interpreter's determinism contract.
std::vector<std::uint8_t> pre_image_of(const AddressSpace& mem,
                                       const std::vector<MemChunk>& ranges,
                                       const std::vector<ChunkCapture>& chunks) {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(ranges.size());
  for (const MemChunk& r : ranges) {
    offsets.push_back(total);
    total += r.size;
  }
  std::vector<std::uint8_t> bytes(total);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    mem.copy_out(bytes.data() + offsets[i], ranges[i].addr, ranges[i].size);
  }
  for (std::size_t c = chunks.size(); c-- > 0;) {
    const ChunkCapture& cap = chunks[c];
    std::uint64_t undo_off = 0;
    for (const MemChunk& u : cap.undo_ranges) {
      // Overlay u ∩ each read range (ranges are sorted and disjoint).
      auto it = std::upper_bound(ranges.begin(), ranges.end(), u.addr,
                                 [](std::uint64_t a, const MemChunk& r) { return a < r.end(); });
      for (; it != ranges.end() && it->addr < u.end(); ++it) {
        const std::uint64_t lo = std::max(u.addr, it->addr);
        const std::uint64_t hi = std::min(u.end(), it->end());
        const std::size_t ri = static_cast<std::size_t>(it - ranges.begin());
        std::memcpy(bytes.data() + offsets[ri] + (lo - it->addr),
                    cap.undo_bytes.data() + undo_off + (lo - u.addr), hi - lo);
      }
      undo_off += u.size;
    }
    SIGVP_ASSERT(undo_off == cap.undo_bytes.size(), "undo log ranges/bytes out of sync");
  }
  return bytes;
}

/// Fill-time twin of hash_ranges_in, over the reconstructed pre-image
/// buffer. Byte-for-byte the same chain: per range, fold the address, then
/// hash the range's bytes as one contiguous call.
std::uint64_t hash_ranges_buf(const std::vector<MemChunk>& ranges,
                              const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = kMemHashSeed;
  std::uint64_t off = 0;
  for (const MemChunk& r : ranges) {
    h = mix64(h, r.addr);
    h = mem_hash_bytes(bytes.data() + off, r.size, h);
    off += r.size;
  }
  return h;
}

bool profiles_equal(const DynamicProfile& a, const DynamicProfile& b) {
  return a.block_visits == b.block_visits && a.instr_counts == b.instr_counts &&
         a.global_load_bytes == b.global_load_bytes &&
         a.global_store_bytes == b.global_store_bytes &&
         a.barriers_waited == b.barriers_waited && a.sfu_instrs == b.sfu_instrs &&
         a.sqrt_instrs == b.sqrt_instrs;
}

bool stats_equal(const KernelExecStats& a, const KernelExecStats& b) {
  return a.sigma == b.sigma && a.num_blocks == b.num_blocks &&
         a.serial_blocks == b.serial_blocks && a.issue_cycles == b.issue_cycles &&
         a.block_overhead_cycles == b.block_overhead_cycles &&
         a.stall_cycles_data == b.stall_cycles_data &&
         a.stall_cycles_other == b.stall_cycles_other && a.total_cycles == b.total_cycles &&
         a.duration_us == b.duration_us && a.dynamic_energy_j == b.dynamic_energy_j &&
         a.cache.accesses == b.cache.accesses && a.cache.hits == b.cache.hits &&
         a.cache.misses == b.cache.misses;
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

// --- cache structure ---------------------------------------------------------

struct LaunchCache::Entry {
  std::uint64_t base_key = 0;
  std::vector<MemChunk> read_ranges;  // sorted, coalesced
  std::uint64_t input_hash = 0;       // pre-launch content of read_ranges
  KernelExecStats stats;
  DynamicProfile profile;
  MemDelta writes;  // post-launch content of the write-set
  std::uint64_t footprint = 0;
};

struct LaunchCache::Shard {
  std::mutex mutex;
  /// base key -> entries; one bucket holds multiple entries differing only
  /// in read-set content (key-collision safety).
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<const Entry>>> buckets;
};

namespace {
constexpr std::uint64_t kDefaultMaxEntries = 1024;
constexpr std::uint64_t kDefaultMaxBytes = 512ull << 20;  // resident write-set bytes
}  // namespace

LaunchCache::LaunchCache()
    : shards_(kNumShards), max_entries_(kDefaultMaxEntries), max_bytes_(kDefaultMaxBytes) {
  enabled_ = env_flag("SIGVP_LAUNCH_CACHE", true);
  verify_ = env_flag("SIGVP_LAUNCH_CACHE_VERIFY", false);
}

LaunchCache::~LaunchCache() = default;

LaunchCache& LaunchCache::instance() {
  static LaunchCache cache;
  return cache;
}

std::unique_ptr<LaunchCache> LaunchCache::create_shard() {
  return std::unique_ptr<LaunchCache>(new LaunchCache());
}

void LaunchCache::set_capacity(std::uint64_t max_entries, std::uint64_t max_bytes) {
  SIGVP_REQUIRE(max_entries > 0 && max_bytes > 0, "launch cache capacity must be positive");
  std::lock_guard<std::mutex> lock(fifo_mutex_);
  max_entries_ = max_entries;
  max_bytes_ = max_bytes;
}

void LaunchCache::clear() {
  std::lock_guard<std::mutex> fifo_lock(fifo_mutex_);
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.buckets.clear();
  }
  fifo_.clear();
  fifo_head_ = 0;
  resident_entries_ = 0;
  resident_bytes_ = 0;
}

LaunchCacheStats LaunchCache::stats() const {
  LaunchCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.bypasses = bypasses_.load(std::memory_order_relaxed);
  out.bytes_replayed = bytes_replayed_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(fifo_mutex_);
  out.entries = resident_entries_;
  out.bytes = resident_bytes_;
  return out;
}

LaunchEvaluation LaunchCache::evaluate(const GpuArch& arch, const KernelIR& kernel,
                                       const LaunchDims& dims, const KernelArgs& args,
                                       AddressSpace& memory, Bypass bypass,
                                       const ObserverFactory& observer) {
  if (observer) bypass = Bypass::kHook;
  if (!enabled_.load(std::memory_order_relaxed)) {
    // Disabled: the plain path, not a counted bypass — zero-hit runs stay
    // byte-identical to a build without the cache.
    return evaluate_functional(arch, kernel, dims, args, memory, observer);
  }
  if (bypass == Bypass::kNone &&
      interp_detail::DecodedCache::instance().get(kernel)->has_global_atomics) {
    bypass = Bypass::kAtomics;
  }
  if (bypass != Bypass::kNone) {
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    LaunchEvaluation out = evaluate_functional(arch, kernel, dims, args, memory, observer);
    out.cache = LaunchCacheOutcome::kBypass;
    return out;
  }

  const std::uint64_t base_key = base_key_of(arch, kernel, dims, args);
  const std::size_t shard_idx = (base_key >> 58) % kNumShards;
  Shard& shard = shards_[shard_idx];

  // Snapshot the bucket under the shard lock, validate outside it: read-set
  // hashing over caller memory can be expensive, and entries are immutable
  // shared_ptrs so a concurrent eviction cannot free them mid-validate.
  std::vector<std::shared_ptr<const Entry>> candidates;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.buckets.find(base_key);
    if (it != shard.buckets.end()) candidates = it->second;
  }
  for (const std::shared_ptr<const Entry>& e : candidates) {
    bool fits = true;
    for (const MemChunk& r : e->read_ranges) {
      if (!memory.in_bounds(r.addr, r.size)) {
        fits = false;
        break;
      }
    }
    for (const MemChunk& r : e->writes.ranges) {
      if (!fits || !memory.in_bounds(r.addr, r.size)) {
        fits = false;
        break;
      }
    }
    if (!fits || hash_ranges_in(memory, e->read_ranges) != e->input_hash) continue;

    if (verify_.load(std::memory_order_relaxed)) {
      verify_hit(*e, arch, kernel, dims, args, memory);
    }
    apply_delta(memory, e->writes);
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_replayed_.fetch_add(e->writes.total_bytes(), std::memory_order_relaxed);
    LaunchEvaluation out;
    out.stats = e->stats;
    out.profile = e->profile;
    out.cache = LaunchCacheOutcome::kHit;
    return out;
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  LaunchEvaluation out = execute_and_fill(arch, kernel, dims, args, memory, base_key);
  out.cache = LaunchCacheOutcome::kMiss;
  return out;
}

LaunchEvaluation LaunchCache::execute_and_fill(const GpuArch& arch, const KernelIR& kernel,
                                               const LaunchDims& dims, const KernelArgs& args,
                                               AddressSpace& memory, std::uint64_t base_key) {
  const std::size_t chunks = Interpreter::canonical_chunks(dims);
  std::vector<ChunkCapture> capture(chunks);
  AddressSpace* mem = &memory;
  ObserverFactory recorder = [&capture, mem](std::size_t chunk) -> MemAccessHook {
    ChunkCapture* cap = &capture[chunk];
    return [cap, mem](std::uint64_t addr, std::uint32_t bytes, bool is_store) {
      if (!is_store) {
        cap->reads.add(addr, bytes, nullptr);
        return;
      }
      cap->gap_scratch.clear();
      cap->writes.add(addr, bytes, &cap->gap_scratch);
      for (const MemChunk& gap : cap->gap_scratch) {
        // The hook fires before the store, so memory still holds the
        // pre-store bytes of every not-yet-written gap.
        cap->undo_ranges.push_back(gap);
        const std::size_t off = cap->undo_bytes.size();
        cap->undo_bytes.resize(off + gap.size);
        mem->copy_out(cap->undo_bytes.data() + off, gap.addr, gap.size);
      }
    };
  };

  LaunchEvaluation out = evaluate_functional(arch, kernel, dims, args, memory, recorder);

  auto entry = std::make_shared<Entry>();
  entry->base_key = base_key;
  entry->read_ranges = merge_ranges(capture, &ChunkCapture::reads);
  entry->input_hash =
      hash_ranges_buf(entry->read_ranges, pre_image_of(memory, entry->read_ranges, capture));
  entry->stats = out.stats;
  entry->profile = out.profile;
  entry->writes = extract_delta(memory, merge_ranges(capture, &ChunkCapture::writes));
  entry->footprint = entry->writes.total_bytes() +
                     64 * (entry->read_ranges.size() + entry->writes.ranges.size());
  insert(base_key, std::move(entry));
  return out;
}

void LaunchCache::insert(std::uint64_t base_key, std::shared_ptr<const Entry> entry) {
  const std::size_t shard_idx = (base_key >> 58) % kNumShards;
  // Lock order everywhere: fifo_mutex_ first, then one shard mutex at a
  // time — fills and evictions serialize on the FIFO, lookups only touch
  // shard locks.
  std::lock_guard<std::mutex> fifo_lock(fifo_mutex_);
  {
    Shard& shard = shards_[shard_idx];
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::vector<std::shared_ptr<const Entry>>& bucket = shard.buckets[base_key];
    for (const std::shared_ptr<const Entry>& e : bucket) {
      if (e->input_hash == entry->input_hash && e->read_ranges == entry->read_ranges) {
        return;  // a concurrent miss on the same launch already filled it
      }
    }
    bucket.push_back(entry);
  }
  fifo_.push_back({base_key, shard_idx, entry.get()});
  resident_entries_ += 1;
  resident_bytes_ += entry->footprint;

  while (resident_entries_ > 0 &&
         (resident_entries_ > max_entries_ || resident_bytes_ > max_bytes_)) {
    SIGVP_ASSERT(fifo_head_ < fifo_.size(), "launch cache FIFO out of sync");
    const FifoRef victim = fifo_[fifo_head_++];
    Shard& shard = shards_[victim.shard];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.buckets.find(victim.base_key);
    SIGVP_ASSERT(it != shard.buckets.end(), "launch cache victim bucket missing");
    auto& bucket = it->second;
    auto pos = std::find_if(bucket.begin(), bucket.end(),
                            [&](const std::shared_ptr<const Entry>& e) {
                              return e.get() == victim.entry;
                            });
    SIGVP_ASSERT(pos != bucket.end(), "launch cache victim entry missing");
    resident_entries_ -= 1;
    resident_bytes_ -= (*pos)->footprint;
    bucket.erase(pos);
    if (bucket.empty()) shard.buckets.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  // Compact the FIFO once the dead prefix dominates.
  if (fifo_head_ > 64 && fifo_head_ * 2 > fifo_.size()) {
    fifo_.erase(fifo_.begin(), fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
    fifo_head_ = 0;
  }
}

// --- checkpoint export/import ------------------------------------------------

namespace {

void save_chunks(snapshot::Writer& w, const std::vector<MemChunk>& ranges) {
  w.u64(ranges.size());
  for (const MemChunk& r : ranges) {
    w.u64(r.addr);
    w.u64(r.size);
  }
}

std::vector<MemChunk> load_chunks(snapshot::Reader& r) {
  const std::uint64_t n = r.u64();
  std::vector<MemChunk> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    MemChunk c;
    c.addr = r.u64();
    c.size = r.u64();
    out.push_back(c);
  }
  return out;
}

void save_class_counts(snapshot::Writer& w, const ClassCounts& c) {
  w.u64(c.counts.size());
  for (std::uint64_t v : c.counts) w.u64(v);
}

void load_class_counts(snapshot::Reader& r, ClassCounts& c) {
  const std::uint64_t n = r.u64();
  if (n != c.counts.size()) {
    throw snapshot::SnapshotError("launch cache entry: instruction class count mismatch");
  }
  for (auto& v : c.counts) v = r.u64();
}

void save_stats(snapshot::Writer& w, const KernelExecStats& s) {
  save_class_counts(w, s.sigma);
  w.u64(s.num_blocks);
  w.u64(s.serial_blocks);
  w.f64(s.issue_cycles);
  w.f64(s.block_overhead_cycles);
  w.f64(s.stall_cycles_data);
  w.f64(s.stall_cycles_other);
  w.f64(s.total_cycles);
  w.f64(s.duration_us);
  w.f64(s.dynamic_energy_j);
  w.u64(s.cache.accesses);
  w.u64(s.cache.hits);
  w.u64(s.cache.misses);
}

void load_stats(snapshot::Reader& r, KernelExecStats& s) {
  load_class_counts(r, s.sigma);
  s.num_blocks = r.u64();
  s.serial_blocks = r.u64();
  s.issue_cycles = r.f64();
  s.block_overhead_cycles = r.f64();
  s.stall_cycles_data = r.f64();
  s.stall_cycles_other = r.f64();
  s.total_cycles = r.f64();
  s.duration_us = r.f64();
  s.dynamic_energy_j = r.f64();
  s.cache.accesses = r.u64();
  s.cache.hits = r.u64();
  s.cache.misses = r.u64();
}

void save_profile(snapshot::Writer& w, const DynamicProfile& p) {
  w.u64_vec(p.block_visits);
  save_class_counts(w, p.instr_counts);
  w.u64(p.global_load_bytes);
  w.u64(p.global_store_bytes);
  w.u64(p.barriers_waited);
  w.u64(p.sfu_instrs);
  w.u64(p.sqrt_instrs);
}

void load_profile(snapshot::Reader& r, DynamicProfile& p) {
  p.block_visits = r.u64_vec();
  load_class_counts(r, p.instr_counts);
  p.global_load_bytes = r.u64();
  p.global_store_bytes = r.u64();
  p.barriers_waited = r.u64();
  p.sfu_instrs = r.u64();
  p.sqrt_instrs = r.u64();
}

}  // namespace

void LaunchCache::export_state(snapshot::Writer& w) const {
  // Holding fifo_mutex_ pins every resident entry: insert/evict also take
  // it first, so the raw FifoRef pointers stay valid for the whole walk.
  std::lock_guard<std::mutex> lock(fifo_mutex_);
  w.u64(resident_entries_);
  for (std::size_t i = fifo_head_; i < fifo_.size(); ++i) {
    const Entry& e = *fifo_[i].entry;
    w.u64(e.base_key);
    save_chunks(w, e.read_ranges);
    w.u64(e.input_hash);
    save_stats(w, e.stats);
    save_profile(w, e.profile);
    save_chunks(w, e.writes.ranges);
    w.byte_vec(e.writes.bytes);
    w.u64(e.footprint);
  }
}

void LaunchCache::import_state(snapshot::Reader& r) {
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    auto entry = std::make_shared<Entry>();
    entry->base_key = r.u64();
    entry->read_ranges = load_chunks(r);
    entry->input_hash = r.u64();
    load_stats(r, entry->stats);
    load_profile(r, entry->profile);
    entry->writes.ranges = load_chunks(r);
    entry->writes.bytes = r.byte_vec();
    if (entry->writes.total_bytes() !=
        [&] {
          std::uint64_t total = 0;
          for (const MemChunk& c : entry->writes.ranges) total += c.size;
          return total;
        }()) {
      throw snapshot::SnapshotError("launch cache entry: write-set ranges/bytes out of sync");
    }
    entry->footprint = r.u64();
    const std::uint64_t key = entry->base_key;
    insert(key, std::move(entry));  // re-takes fifo order, dedups duplicates
  }
}

void LaunchCache::verify_hit(const Entry& entry, const GpuArch& arch, const KernelIR& kernel,
                             const LaunchDims& dims, const KernelArgs& args,
                             const AddressSpace& memory) const {
  // Re-execute against a copy of the caller's memory and demand bit-for-bit
  // agreement with the stored outcome. Opt-in (SIGVP_LAUNCH_CACHE_VERIFY=1):
  // copying the whole space per hit is the point — it proves replay ==
  // recompute without disturbing the caller.
  AddressSpace scratch = memory;
  LaunchEvaluation fresh = evaluate_functional(arch, kernel, dims, args, scratch, nullptr);
  SIGVP_REQUIRE(stats_equal(fresh.stats, entry.stats),
                kernel.name + ": launch cache verify: stats diverge from recomputation");
  SIGVP_REQUIRE(profiles_equal(fresh.profile, entry.profile),
                kernel.name + ": launch cache verify: profile diverges from recomputation");
  const MemDelta recomputed = extract_delta(scratch, entry.writes.ranges);
  SIGVP_REQUIRE(recomputed.bytes == entry.writes.bytes,
                kernel.name + ": launch cache verify: write-set bytes diverge");
}

}  // namespace sigvp
