#include "gpu/cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sigvp {

CacheModel::CacheModel(const CacheConfig& config) : config_(config) {
  SIGVP_REQUIRE(config.line_bytes > 0 && (config.line_bytes & (config.line_bytes - 1)) == 0,
                "cache line size must be a power of two");
  SIGVP_REQUIRE(config.associativity > 0, "associativity must be positive");
  SIGVP_REQUIRE(config.num_sets() > 0, "cache must have at least one set");
  sets_.resize(config.num_sets());
}

bool CacheModel::touch_line(std::uint64_t line_addr) {
  const std::uint64_t set_idx = line_addr % sets_.size();
  auto& set = sets_[set_idx];
  auto it = std::find(set.begin(), set.end(), line_addr);
  if (it != set.end()) {
    // Hit: move to MRU position.
    set.erase(it);
    set.insert(set.begin(), line_addr);
    return true;
  }
  // Miss: insert at MRU, evict LRU if the set is full.
  set.insert(set.begin(), line_addr);
  if (set.size() > config_.associativity) set.pop_back();
  return false;
}

std::uint32_t CacheModel::access(std::uint64_t addr, std::uint32_t bytes) {
  SIGVP_REQUIRE(bytes > 0, "cache access must cover at least one byte");
  const std::uint64_t first_line = addr / config_.line_bytes;
  const std::uint64_t last_line = (addr + bytes - 1) / config_.line_bytes;
  std::uint32_t misses = 0;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    ++stats_.accesses;
    if (touch_line(line)) {
      ++stats_.hits;
    } else {
      ++stats_.misses;
      ++misses;
    }
  }
  return misses;
}

void CacheModel::flush() {
  for (auto& set : sets_) set.clear();
}

}  // namespace sigvp
