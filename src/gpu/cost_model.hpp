#pragma once

#include <cstdint>

#include "gpu/arch.hpp"
#include "gpu/cache.hpp"
#include "interp/launch.hpp"
#include "sim/time.hpp"

namespace sigvp {

/// Timing/energy breakdown of one kernel launch on a device-model GPU.
/// This is also what the "manufacturer profiler" of the paper's Fig. 2
/// exposes: executed instructions per class, elapsed cycles, cache
/// hit/miss counts, and stall reasons.
struct KernelExecStats {
  ClassCounts sigma;                  // dynamic instructions per class
  std::uint64_t num_blocks = 0;
  std::uint64_t serial_blocks = 0;    // ceil(blocks / SMs): wave quantization
  double issue_cycles = 0.0;          // ideal issue time, no stalls
  double block_overhead_cycles = 0.0; // per-block dispatch cost
  double stall_cycles_data = 0.0;     // exposed data-dependency stalls (Υ^data)
  double stall_cycles_other = 0.0;    // scheduler/hazard stalls
  double total_cycles = 0.0;
  SimTime duration_us = 0.0;          // includes per-launch driver overhead
  double dynamic_energy_j = 0.0;
  CacheStats cache;

  double stall_fraction() const {
    return total_cycles > 0.0 ? (stall_cycles_data + stall_cycles_other) / total_cycles : 0.0;
  }
};

/// Analytic warp-level timing model of a GPU architecture.
///
/// Given the dynamic instruction mix σ of a launch and its cache behaviour,
/// computes cycles the way the device "hardware" would spend them:
///
///   total = ceil(B / SMs) · (issue_per_block + dispatch)
///         + exposed data stalls (latency- or bandwidth-bound)
///         + other stalls
///
/// The ceil(B / SMs) term quantizes execution into block waves and is what
/// produces the staircase of the paper's Fig. 10(b) and the alignment gain
/// of Kernel Coalescing.
class KernelCostModel {
 public:
  explicit KernelCostModel(const GpuArch& arch) : arch_(arch) {}

  KernelExecStats evaluate(const LaunchDims& dims, const ClassCounts& sigma,
                           const CacheStats& cache) const;

  /// Effective device-level cycles per dynamic instruction of class i for a
  /// launch of this geometry — the τ{i,T} of the paper's Eq. 3, folding the
  /// machine width into a per-instruction latency.
  double effective_tau(InstrClass c, const LaunchDims& dims) const;

  /// Exposed data-dependency stall cycles for `misses` L2 misses under this
  /// launch geometry: max(latency-bound, bandwidth-bound). Used both when
  /// pricing a launch and as the Υ^[data] term of the estimation models.
  static double exposed_data_stalls(const GpuArch& arch, const LaunchDims& dims,
                                    double misses);

  /// Ideal whole-launch issue cycles for an instruction mix σ, modeling the
  /// SM's parallel issue pipes: the FP units, the INT/branch path, and the
  /// LD/ST units operate concurrently (dual-issue warp schedulers), so the
  /// issue time of a block is the maximum over the three pipes, and waves
  /// quantize across blocks. Shared by evaluate() and the estimator's C^P
  /// so measured and estimated cycles use one definition of "ideal".
  static double ideal_issue_cycles(const GpuArch& arch, const LaunchDims& dims,
                                   const ClassCounts& sigma);

  const GpuArch& arch() const { return arch_; }

 private:
  GpuArch arch_;
};

}  // namespace sigvp
