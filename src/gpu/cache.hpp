#pragma once

#include <cstdint>
#include <vector>

#include "gpu/arch.hpp"

namespace sigvp {

/// Hit/miss counters of a cache simulation run.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }

  CacheStats& operator+=(const CacheStats& o) {
    accesses += o.accesses;
    hits += o.hits;
    misses += o.misses;
    return *this;
  }
};

/// Set-associative LRU cache simulator.
///
/// This is the "measured" data-cache behaviour of a device-model GPU: the
/// interpreter's global-memory hook feeds every access here, and the cost
/// model turns the resulting miss count into data-dependency stall cycles —
/// the Υ^[data] term of the paper's Eq. 5, as observed rather than predicted.
class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& config);

  /// Simulates one access of `bytes` starting at `addr` (accesses crossing a
  /// line boundary touch every covered line). Returns the number of misses
  /// this access caused.
  std::uint32_t access(std::uint64_t addr, std::uint32_t bytes);

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Invalidates all lines (e.g. between independent kernel launches).
  void flush();

  const CacheConfig& config() const { return config_; }

 private:
  bool touch_line(std::uint64_t line_addr);

  CacheConfig config_;
  // Per set: line tags in LRU order (front = most recent). Empty slots are
  // represented by absence; a set holds at most `associativity` tags.
  std::vector<std::vector<std::uint64_t>> sets_;
  CacheStats stats_;
};

}  // namespace sigvp
