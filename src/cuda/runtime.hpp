#pragma once

#include <cstdint>

#include "cuda/driver.hpp"
#include "sim/event_queue.hpp"

namespace sigvp::cuda {

/// The GPU User Library: the CUDA-runtime-flavored API applications link
/// against (paper Fig. 2, guest side). It forwards every request to a
/// DeviceDriver backend and adds blocking convenience wrappers that advance
/// the discrete-event simulation until the request completes — the shape a
/// synchronous cudaMemcpy/cudaDeviceSynchronize has from the guest's view.
class Runtime {
 public:
  Runtime(EventQueue& queue, DeviceDriver& driver) : queue_(queue), driver_(driver) {}

  // --- memory ---------------------------------------------------------------
  std::uint64_t malloc(std::uint64_t bytes) { return driver_.malloc(bytes); }
  void free(std::uint64_t addr) { driver_.free(addr); }

  // --- asynchronous API (callback at simulated completion) -------------------
  void memcpy_h2d_async(std::uint64_t dst, const void* src, std::uint64_t bytes,
                        DoneCallback cb = {}) {
    driver_.memcpy_h2d(dst, src, bytes, std::move(cb));
  }
  void memcpy_d2h_async(void* dst, std::uint64_t src, std::uint64_t bytes,
                        DoneCallback cb = {}) {
    driver_.memcpy_d2h(dst, src, bytes, std::move(cb));
  }
  void launch_async(const LaunchSpec& spec, KernelDoneCallback cb = {}) {
    driver_.launch(spec, std::move(cb));
  }

  // --- blocking API (runs the event loop until completion) -------------------
  void memcpy_h2d(std::uint64_t dst, const void* src, std::uint64_t bytes);
  void memcpy_d2h(void* dst, std::uint64_t src, std::uint64_t bytes);
  /// Blocking launch; returns the kernel's execution stats.
  KernelExecStats launch(const LaunchSpec& spec);
  void synchronize();

 private:
  void run_until_done(const bool& done_flag);

  EventQueue& queue_;
  DeviceDriver& driver_;
};

}  // namespace sigvp::cuda
