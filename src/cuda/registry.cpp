#include "cuda/registry.hpp"

#include <utility>

#include "util/check.hpp"

namespace sigvp::cuda {

const KernelIR& KernelRegistry::add(KernelIR kernel) {
  SIGVP_REQUIRE(!kernels_.contains(kernel.name), "duplicate kernel: " + kernel.name);
  const std::string name = kernel.name;
  auto owned = std::make_unique<KernelIR>(std::move(kernel));
  const KernelIR& ref = *owned;
  kernels_.emplace(name, std::move(owned));
  return ref;
}

const KernelIR& KernelRegistry::get(const std::string& name) const {
  auto it = kernels_.find(name);
  SIGVP_REQUIRE(it != kernels_.end(), "unknown kernel: " + name);
  return *it->second;
}

bool KernelRegistry::contains(const std::string& name) const {
  return kernels_.contains(name);
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(kernels_.size());
  for (const auto& [name, _] : kernels_) out.push_back(name);
  return out;
}

}  // namespace sigvp::cuda
