#include "cuda/runtime.hpp"

#include "util/check.hpp"

namespace sigvp::cuda {

void Runtime::run_until_done(const bool& done_flag) {
  while (!done_flag) {
    SIGVP_REQUIRE(queue_.step(),
                  "event queue drained before the blocking operation completed "
                  "(a backend failed to schedule a completion)");
  }
}

void Runtime::memcpy_h2d(std::uint64_t dst, const void* src, std::uint64_t bytes) {
  bool done = false;
  driver_.memcpy_h2d(dst, src, bytes, [&done](SimTime) { done = true; });
  run_until_done(done);
}

void Runtime::memcpy_d2h(void* dst, std::uint64_t src, std::uint64_t bytes) {
  bool done = false;
  driver_.memcpy_d2h(dst, src, bytes, [&done](SimTime) { done = true; });
  run_until_done(done);
}

KernelExecStats Runtime::launch(const LaunchSpec& spec) {
  bool done = false;
  KernelExecStats out;
  driver_.launch(spec, [&done, &out](SimTime, const KernelExecStats& stats) {
    out = stats;
    done = true;
  });
  run_until_done(done);
  return out;
}

void Runtime::synchronize() {
  bool done = false;
  driver_.synchronize([&done](SimTime) { done = true; });
  run_until_done(done);
}

}  // namespace sigvp::cuda
