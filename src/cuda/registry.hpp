#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace sigvp::cuda {

/// Immutable store of compiled kernels, keyed by name — the stand-in for a
/// loaded CUDA module/fatbinary. Kernels are registered once (typically by
/// the workload suite) and referenced by pointer for the lifetime of the
/// registry, so LaunchSpec can carry a stable `const KernelIR*`.
class KernelRegistry {
 public:
  /// Registers a kernel; throws on duplicate names.
  const KernelIR& add(KernelIR kernel);

  /// Throws if the kernel is unknown.
  const KernelIR& get(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;
  std::size_t size() const { return kernels_.size(); }

 private:
  // unique_ptr keeps KernelIR addresses stable across rehash/moves.
  std::map<std::string, std::unique_ptr<KernelIR>> kernels_;
};

}  // namespace sigvp::cuda
