#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/device.hpp"

namespace sigvp::cuda {

/// Describes how a kernel launch can participate in Kernel Coalescing.
///
/// A launch is eligible when the kernel maps a linear element index onto its
/// buffers through a base pointer and an element-count argument — the shape
/// the paper coalesces (Fig. 5/6): concatenating the per-VP chunks and
/// launching once over the summed element count is semantics-preserving.
struct CoalesceInfo {
  bool eligible = false;

  /// Identity used by the Kernel Match submodule: launches coalesce only
  /// when their keys are equal (kernel name + shape class).
  std::string key;

  /// Elements this launch processes.
  std::uint64_t elems = 0;

  /// Which kernel arguments are device-buffer pointers, and their layout.
  struct BufferArg {
    std::uint32_t arg_index = 0;
    std::uint32_t bytes_per_elem = 0;
    bool is_output = false;
  };
  std::vector<BufferArg> buffers;

  /// Index of the i64 argument carrying the element count.
  std::uint32_t size_arg_index = 0;

  /// Threads per block the merged launch should keep.
  std::uint32_t block_x = 256;
};

/// Everything the guest user library hands to the driver for one launch:
/// the device-model launch request plus coalescing metadata.
struct LaunchSpec {
  LaunchRequest request;
  CoalesceInfo coalesce;
};

}  // namespace sigvp::cuda
