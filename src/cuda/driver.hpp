#pragma once

#include <cstdint>
#include <functional>

#include "cuda/launch_spec.hpp"
#include "sim/time.hpp"

namespace sigvp::cuda {

/// Completion callback carrying the simulated completion time; kernel
/// completions additionally carry the execution stats the profiler exposes.
using DoneCallback = std::function<void(SimTime end)>;
using KernelDoneCallback = std::function<void(SimTime end, const KernelExecStats& stats)>;

/// The interface the GPU User Library programs against — the boundary that
/// gives ΣVP binary compatibility in the paper: the same application code
/// runs whether the backend is the software GPU emulator on the virtual
/// platform, the ΣVP multiplexing stack, or the native host GPU.
///
/// All operations are asynchronous in simulated time: they return after
/// scheduling and invoke the callback at the op's simulated completion.
/// malloc/free return immediately (allocation is host-side bookkeeping);
/// their latency is folded into the per-call driver overhead of the backend.
class DeviceDriver {
 public:
  virtual ~DeviceDriver() = default;

  virtual std::uint64_t malloc(std::uint64_t bytes) = 0;
  virtual void free(std::uint64_t addr) = 0;

  /// `src`/`dst` may be nullptr for timing-only transfers (analytic mode).
  virtual void memcpy_h2d(std::uint64_t dst, const void* src, std::uint64_t bytes,
                          DoneCallback cb) = 0;
  virtual void memcpy_d2h(void* dst, std::uint64_t src, std::uint64_t bytes,
                          DoneCallback cb) = 0;

  virtual void launch(const LaunchSpec& spec, KernelDoneCallback cb) = 0;

  /// Completes once every previously issued operation has completed.
  virtual void synchronize(DoneCallback cb) = 0;
};

}  // namespace sigvp::cuda
