#pragma once

#include <cstdint>
#include <map>
#include <optional>

namespace sigvp {

/// First-fit free-list allocator over a [base, base+size) address range.
///
/// Backs cudaMalloc in the device model. The kernel coalescer relies on a
/// property this allocator provides: a single allocation is physically
/// contiguous, so N chunks can be merged by allocating one chunk of the
/// summed size and copying (paper Fig. 5).
class FreeListAllocator {
 public:
  FreeListAllocator(std::uint64_t base, std::uint64_t size);

  /// Returns the address of a free block of `size` bytes aligned to `align`
  /// (a power of two), or nullopt when fragmentation/capacity prevents it.
  std::optional<std::uint64_t> allocate(std::uint64_t size, std::uint64_t align = 256);

  /// Frees a block previously returned by allocate(); throws on a foreign
  /// or double free. Adjacent free ranges are merged.
  void free(std::uint64_t addr);

  bool owns(std::uint64_t addr) const { return live_.contains(addr); }
  std::uint64_t bytes_allocated() const { return bytes_allocated_; }
  std::uint64_t capacity() const { return size_; }
  std::size_t live_blocks() const { return live_.size(); }
  std::size_t free_ranges() const { return free_.size(); }

 private:
  std::uint64_t base_;
  std::uint64_t size_;
  std::map<std::uint64_t, std::uint64_t> free_;  // addr -> length
  std::map<std::uint64_t, std::uint64_t> live_;  // addr -> length
  std::uint64_t bytes_allocated_ = 0;
};

}  // namespace sigvp
