#include "mem/allocator.hpp"

#include "util/check.hpp"

namespace sigvp {

namespace {
std::uint64_t align_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

FreeListAllocator::FreeListAllocator(std::uint64_t base, std::uint64_t size)
    : base_(base), size_(size) {
  SIGVP_REQUIRE(size > 0, "allocator capacity must be positive");
  free_[base_] = size_;
}

std::optional<std::uint64_t> FreeListAllocator::allocate(std::uint64_t size,
                                                         std::uint64_t align) {
  SIGVP_REQUIRE(size > 0, "allocation size must be positive");
  SIGVP_REQUIRE(is_pow2(align), "alignment must be a power of two");

  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const std::uint64_t range_addr = it->first;
    const std::uint64_t range_len = it->second;
    const std::uint64_t user_addr = align_up(range_addr, align);
    const std::uint64_t pad = user_addr - range_addr;
    if (pad + size > range_len) continue;

    // Split: [range_addr, user_addr) stays free, the block is carved out,
    // and the tail [user_addr+size, range end) is re-inserted if non-empty.
    const std::uint64_t tail_addr = user_addr + size;
    const std::uint64_t tail_len = range_len - pad - size;
    free_.erase(it);
    if (pad > 0) free_[range_addr] = pad;
    if (tail_len > 0) free_[tail_addr] = tail_len;

    live_[user_addr] = size;
    bytes_allocated_ += size;
    return user_addr;
  }
  return std::nullopt;
}

void FreeListAllocator::free(std::uint64_t addr) {
  auto it = live_.find(addr);
  SIGVP_REQUIRE(it != live_.end(), "free of unallocated address " + std::to_string(addr));
  const std::uint64_t len = it->second;
  live_.erase(it);
  bytes_allocated_ -= len;

  auto [ins, ok] = free_.emplace(addr, len);
  SIGVP_ASSERT(ok, "freed range already present in free list");

  // Merge with the successor range if it abuts.
  auto next = std::next(ins);
  if (next != free_.end() && ins->first + ins->second == next->first) {
    ins->second += next->second;
    free_.erase(next);
  }
  // Merge with the predecessor range if it abuts.
  if (ins != free_.begin()) {
    auto prev = std::prev(ins);
    if (prev->first + prev->second == ins->first) {
      prev->second += ins->second;
      free_.erase(ins);
    }
  }
}

}  // namespace sigvp
