#include "mem/address_space.hpp"

namespace sigvp {

AddressSpace::AddressSpace(std::uint64_t size_bytes, std::string name)
    : bytes_(size_bytes, 0), name_(std::move(name)) {
  SIGVP_REQUIRE(size_bytes > 0, "address space must be non-empty");
}

void AddressSpace::check_range(std::uint64_t addr, std::size_t n) const {
  SIGVP_REQUIRE(addr + n <= bytes_.size() && addr + n >= addr,
                name_ + ": access [" + std::to_string(addr) + ", " +
                    std::to_string(addr + n) + ") out of bounds (size " +
                    std::to_string(bytes_.size()) + ")");
}

void AddressSpace::copy_in(std::uint64_t dst, const void* src, std::size_t n) {
  if (n == 0) return;
  check_range(dst, n);
  std::memcpy(bytes_.data() + dst, src, n);
}

void AddressSpace::copy_out(void* dst, std::uint64_t src, std::size_t n) const {
  if (n == 0) return;
  check_range(src, n);
  std::memcpy(dst, bytes_.data() + src, n);
}

void AddressSpace::copy_within(std::uint64_t dst, std::uint64_t src, std::size_t n) {
  if (n == 0) return;
  check_range(dst, n);
  check_range(src, n);
  std::memmove(bytes_.data() + dst, bytes_.data() + src, n);
}

void AddressSpace::fill(std::uint64_t dst, std::uint8_t value, std::size_t n) {
  if (n == 0) return;
  check_range(dst, n);
  std::memset(bytes_.data() + dst, value, n);
}

std::uint64_t AddressSpace::hash_range(std::uint64_t addr, std::uint64_t size,
                                       std::uint64_t seed) const {
  if (size == 0) return seed;
  check_range(addr, size);
  return mem_hash_bytes(bytes_.data() + addr, size, seed);
}

std::uint64_t mem_hash_bytes(const std::uint8_t* data, std::uint64_t size, std::uint64_t seed) {
  // xor-multiply-rotate over 64-bit words; the tail is zero-padded into one
  // final word tagged with the length so "abc" and "abc\0" differ.
  std::uint64_t h = seed;
  std::uint64_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h ^= w * 0xFF51AFD7ED558CCDull;
    h = (h << 29) | (h >> 35);
    h *= 0xC4CEB9FE1A85EC53ull;
  }
  if (i < size) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, size - i);
    h ^= w * 0xFF51AFD7ED558CCDull;
    h = (h << 29) | (h >> 35);
    h *= 0xC4CEB9FE1A85EC53ull;
  }
  h ^= size;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h;
}

MemDelta extract_delta(const AddressSpace& space, std::vector<MemChunk> ranges) {
  MemDelta out;
  out.ranges = std::move(ranges);
  std::uint64_t total = 0;
  for (const MemChunk& r : out.ranges) total += r.size;
  out.bytes.resize(total);
  std::uint64_t off = 0;
  for (const MemChunk& r : out.ranges) {
    space.copy_out(out.bytes.data() + off, r.addr, r.size);
    off += r.size;
  }
  return out;
}

void apply_delta(AddressSpace& space, const MemDelta& delta) {
  std::uint64_t off = 0;
  for (const MemChunk& r : delta.ranges) {
    space.copy_in(r.addr, delta.bytes.data() + off, r.size);
    off += r.size;
  }
}

}  // namespace sigvp
