#include "mem/address_space.hpp"

namespace sigvp {

AddressSpace::AddressSpace(std::uint64_t size_bytes, std::string name)
    : bytes_(size_bytes, 0), name_(std::move(name)) {
  SIGVP_REQUIRE(size_bytes > 0, "address space must be non-empty");
}

void AddressSpace::check_range(std::uint64_t addr, std::size_t n) const {
  SIGVP_REQUIRE(addr + n <= bytes_.size() && addr + n >= addr,
                name_ + ": access [" + std::to_string(addr) + ", " +
                    std::to_string(addr + n) + ") out of bounds (size " +
                    std::to_string(bytes_.size()) + ")");
}

void AddressSpace::copy_in(std::uint64_t dst, const void* src, std::size_t n) {
  if (n == 0) return;
  check_range(dst, n);
  std::memcpy(bytes_.data() + dst, src, n);
}

void AddressSpace::copy_out(void* dst, std::uint64_t src, std::size_t n) const {
  if (n == 0) return;
  check_range(src, n);
  std::memcpy(dst, bytes_.data() + src, n);
}

void AddressSpace::copy_within(std::uint64_t dst, std::uint64_t src, std::size_t n) {
  if (n == 0) return;
  check_range(dst, n);
  check_range(src, n);
  std::memmove(bytes_.data() + dst, bytes_.data() + src, n);
}

void AddressSpace::fill(std::uint64_t dst, std::uint8_t value, std::size_t n) {
  if (n == 0) return;
  check_range(dst, n);
  std::memset(bytes_.data() + dst, value, n);
}

}  // namespace sigvp
