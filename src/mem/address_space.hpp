#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace sigvp {

/// A flat byte-addressed memory space with bounds-checked access.
///
/// Used for both the device global memory of each simulated GPU and the
/// guest RAM of each virtual platform. Addresses are plain 64-bit offsets
/// into the space; address 0 is never handed out by the allocator so it can
/// serve as a null device pointer.
class AddressSpace {
 public:
  AddressSpace(std::uint64_t size_bytes, std::string name);

  std::uint64_t size() const { return bytes_.size(); }
  const std::string& name() const { return name_; }

  template <typename T>
  T read(std::uint64_t addr) const {
    check_range(addr, sizeof(T));
    T out;
    std::memcpy(&out, bytes_.data() + addr, sizeof(T));
    return out;
  }

  template <typename T>
  void write(std::uint64_t addr, T value) {
    check_range(addr, sizeof(T));
    std::memcpy(bytes_.data() + addr, &value, sizeof(T));
  }

  void copy_in(std::uint64_t dst, const void* src, std::size_t n);
  void copy_out(void* dst, std::uint64_t src, std::size_t n) const;
  void copy_within(std::uint64_t dst, std::uint64_t src, std::size_t n);
  void fill(std::uint64_t dst, std::uint8_t value, std::size_t n);

  /// True when [addr, addr+n) lies entirely inside the space.
  bool in_bounds(std::uint64_t addr, std::uint64_t n) const {
    return addr + n <= bytes_.size() && addr + n >= addr;
  }

  /// Folds the bytes of [addr, addr+size) into `seed` (word-at-a-time
  /// mixing, see mem_hash_bytes). The launch-evaluation cache uses this to
  /// content-address the input regions a kernel reads.
  std::uint64_t hash_range(std::uint64_t addr, std::uint64_t size, std::uint64_t seed) const;

 private:
  void check_range(std::uint64_t addr, std::size_t n) const;

  std::vector<std::uint8_t> bytes_;
  std::string name_;
};

/// A contiguous region inside some address space; the unit the kernel
/// coalescer merges and scatters (paper Fig. 5).
struct MemChunk {
  std::uint64_t addr = 0;
  std::uint64_t size = 0;

  std::uint64_t end() const { return addr + size; }
  bool operator==(const MemChunk&) const = default;
};

/// Seed for mem_hash_bytes / AddressSpace::hash_range chains.
inline constexpr std::uint64_t kMemHashSeed = 0x9E3779B97F4A7C15ull;

/// Folds `size` bytes at `data` into `seed`: 8 bytes per step with
/// multiply-xor-rotate mixing (order-sensitive, position-dependent), so
/// hashing a range in one call equals hashing it in any contiguous pieces
/// only when the piece boundaries match — callers chain whole ranges.
std::uint64_t mem_hash_bytes(const std::uint8_t* data, std::uint64_t size, std::uint64_t seed);

/// A sparse memory delta: `ranges` (ascending, non-overlapping) plus the
/// concatenation of each range's bytes. The launch-evaluation cache records
/// a kernel's write-set this way and replays it on a hit.
struct MemDelta {
  std::vector<MemChunk> ranges;
  std::vector<std::uint8_t> bytes;  // sum of range sizes

  std::uint64_t total_bytes() const { return bytes.size(); }
};

/// Captures the current contents of `ranges` from `space` into a MemDelta.
MemDelta extract_delta(const AddressSpace& space, std::vector<MemChunk> ranges);

/// Writes `delta` back into `space` (bounds-checked per range).
void apply_delta(AddressSpace& space, const MemDelta& delta);

}  // namespace sigvp
