#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace sigvp {

/// A flat byte-addressed memory space with bounds-checked access.
///
/// Used for both the device global memory of each simulated GPU and the
/// guest RAM of each virtual platform. Addresses are plain 64-bit offsets
/// into the space; address 0 is never handed out by the allocator so it can
/// serve as a null device pointer.
class AddressSpace {
 public:
  AddressSpace(std::uint64_t size_bytes, std::string name);

  std::uint64_t size() const { return bytes_.size(); }
  const std::string& name() const { return name_; }

  template <typename T>
  T read(std::uint64_t addr) const {
    check_range(addr, sizeof(T));
    T out;
    std::memcpy(&out, bytes_.data() + addr, sizeof(T));
    return out;
  }

  template <typename T>
  void write(std::uint64_t addr, T value) {
    check_range(addr, sizeof(T));
    std::memcpy(bytes_.data() + addr, &value, sizeof(T));
  }

  void copy_in(std::uint64_t dst, const void* src, std::size_t n);
  void copy_out(void* dst, std::uint64_t src, std::size_t n) const;
  void copy_within(std::uint64_t dst, std::uint64_t src, std::size_t n);
  void fill(std::uint64_t dst, std::uint8_t value, std::size_t n);

 private:
  void check_range(std::uint64_t addr, std::size_t n) const;

  std::vector<std::uint8_t> bytes_;
  std::string name_;
};

/// A contiguous region inside some address space; the unit the kernel
/// coalescer merges and scatters (paper Fig. 5).
struct MemChunk {
  std::uint64_t addr = 0;
  std::uint64_t size = 0;

  std::uint64_t end() const { return addr + size; }
  bool operator==(const MemChunk&) const = default;
};

}  // namespace sigvp
