#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace sigvp {

/// CUDA-style launch geometry (2D grid of 2D thread blocks).
struct LaunchDims {
  std::uint32_t grid_x = 1;
  std::uint32_t grid_y = 1;
  std::uint32_t block_x = 1;
  std::uint32_t block_y = 1;

  std::uint64_t num_blocks() const {
    return static_cast<std::uint64_t>(grid_x) * grid_y;
  }
  std::uint64_t threads_per_block() const {
    return static_cast<std::uint64_t>(block_x) * block_y;
  }
  std::uint64_t total_threads() const { return num_blocks() * threads_per_block(); }

  bool operator==(const LaunchDims&) const = default;
};

/// Raw kernel parameters: each entry is the 64-bit bit pattern of a device
/// pointer, integer, or floating-point scalar, in declaration order.
struct KernelArgs {
  std::vector<std::uint64_t> values;

  void push_ptr(std::uint64_t device_addr) { values.push_back(device_addr); }
  void push_i64(std::int64_t v) { values.push_back(std::bit_cast<std::uint64_t>(v)); }
  void push_f64(double v) { values.push_back(std::bit_cast<std::uint64_t>(v)); }
  void push_f32(float v) { values.push_back(std::bit_cast<std::uint32_t>(v)); }

  bool operator==(const KernelArgs&) const = default;
};

}  // namespace sigvp
