#pragma once

#include <bit>
#include <cstdint>
#include <functional>

#include "interp/launch.hpp"
#include "interp/profile.hpp"
#include "ir/program.hpp"
#include "mem/address_space.hpp"

namespace sigvp {

/// One 64-bit architectural register. Typed views go through std::bit_cast;
/// f32 values occupy the low 32 bits (zero-extended), matching how the
/// stores/loads of the IR move them.
struct RegValue {
  std::uint64_t bits = 0;

  std::int64_t i() const { return std::bit_cast<std::int64_t>(bits); }
  void set_i(std::int64_t v) { bits = std::bit_cast<std::uint64_t>(v); }

  double f64() const { return std::bit_cast<double>(bits); }
  void set_f64(double v) { bits = std::bit_cast<std::uint64_t>(v); }

  float f32() const { return std::bit_cast<float>(static_cast<std::uint32_t>(bits)); }
  void set_f32(float v) { bits = std::bit_cast<std::uint32_t>(v); }

  bool truthy() const { return bits != 0; }
};

/// Callback invoked for every global-memory access; the GPU device model
/// plugs its cache simulator in here.
using MemAccessHook =
    std::function<void(std::uint64_t addr, std::uint32_t bytes, bool is_store)>;

/// Functional executor for KernelIR programs.
///
/// Semantics:
///  - thread blocks run in row-major grid order, threads in row-major block
///    order, so every run is deterministic (atomics included);
///  - `bar.sync` suspends a thread until every other non-retired thread of
///    the same block reaches a barrier (threads that already returned do not
///    participate, mirroring CUDA's exited-thread rule);
///  - conditional terminators fall through to the lexically next block.
///
/// The interpreter doubles as the paper's instrumentation pass: it returns a
/// DynamicProfile with exact per-block iteration counts λ_b and per-class
/// instruction counts.
class Interpreter {
 public:
  struct Options {
    /// Abort threshold against runaway kernels (per-thread dynamic instrs).
    std::uint64_t max_instrs_per_thread = 100'000'000;
    /// Optional observer for global-memory traffic (cache simulation).
    MemAccessHook mem_hook;
  };

  /// Executes `ir` over `global` memory and returns the dynamic profile.
  /// Throws ContractError on invalid launches, out-of-bounds accesses,
  /// integer division by zero, or budget exhaustion.
  DynamicProfile run(const KernelIR& ir, const LaunchDims& dims, const KernelArgs& args,
                     AddressSpace& global, const Options& options);
  DynamicProfile run(const KernelIR& ir, const LaunchDims& dims, const KernelArgs& args,
                     AddressSpace& global) {
    return run(ir, dims, args, global, Options{});
  }
};

}  // namespace sigvp
