#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "interp/launch.hpp"
#include "interp/profile.hpp"
#include "ir/program.hpp"
#include "mem/address_space.hpp"

namespace sigvp {

/// One 64-bit architectural register. Typed views go through std::bit_cast;
/// f32 values occupy the low 32 bits (zero-extended), matching how the
/// stores/loads of the IR move them.
struct RegValue {
  std::uint64_t bits = 0;

  std::int64_t i() const { return std::bit_cast<std::int64_t>(bits); }
  void set_i(std::int64_t v) { bits = std::bit_cast<std::uint64_t>(v); }

  double f64() const { return std::bit_cast<double>(bits); }
  void set_f64(double v) { bits = std::bit_cast<std::uint64_t>(v); }

  float f32() const { return std::bit_cast<float>(static_cast<std::uint32_t>(bits)); }
  void set_f32(float v) { bits = std::bit_cast<std::uint32_t>(v); }

  bool truthy() const { return bits != 0; }
};

/// Callback invoked for every global-memory access; the GPU device model
/// plugs its cache simulator in here.
using MemAccessHook =
    std::function<void(std::uint64_t addr, std::uint32_t bytes, bool is_store)>;

/// Functional executor for KernelIR programs.
///
/// Semantics (identical for every worker count — see the determinism
/// contract in DESIGN.md):
///  - the grid is partitioned into `canonical_chunks(dims)` contiguous
///    row-major chunks whose boundaries depend only on the grid, never on
///    the worker count; chunks execute concurrently, blocks within a chunk
///    serially in row-major order, threads in row-major block order;
///  - per-chunk profiles are merged in canonical chunk order and the
///    per-class/byte counters are reconstructed from λ·µ, so the returned
///    DynamicProfile is bit-identical for any `Options::workers`;
///  - kernels containing global atomics run their chunks serially in
///    canonical order (floating-point accumulation order is part of the
///    observable result), which degenerates to exactly the old serial
///    row-major block order;
///  - `bar.sync` suspends a thread until every other non-retired thread of
///    the same block reaches a barrier (threads that already returned do not
///    participate, mirroring CUDA's exited-thread rule);
///  - conditional terminators fall through to the lexically next block.
///
/// The interpreter doubles as the paper's instrumentation pass: it returns a
/// DynamicProfile with exact per-block iteration counts λ_b and per-class
/// instruction counts.
class Interpreter {
 public:
  struct Options {
    /// Abort threshold against runaway kernels (per-thread dynamic instrs).
    std::uint64_t max_instrs_per_thread = 100'000'000;

    /// Legacy observer for global-memory traffic. Order-sensitive: setting
    /// it forces fully serial execution so accesses arrive in the exact
    /// historical order (row-major blocks, row-major threads). Mutually
    /// exclusive with `shard_hook`.
    MemAccessHook mem_hook;

    /// Parallel-friendly observer factory: called once per canonical chunk
    /// (`shard_hook(chunk)`), and the returned hook sees that chunk's
    /// accesses in deterministic intra-chunk order. Chunks run concurrently,
    /// so the factory and the hooks it returns must be safe to invoke from
    /// different threads for *different* chunks. The GPU cost model uses
    /// this for per-chunk cold L2 shards merged in chunk order.
    std::function<MemAccessHook(std::size_t chunk)> shard_hook;

    /// Read-set/write-set capture factory, composable with either hook
    /// above: called once per canonical chunk, and the returned recorder
    /// observes that chunk's global accesses (before each access is
    /// applied, so a store recorder can still read the pre-store bytes).
    /// Unlike mem_hook it never forces serial execution — same threading
    /// contract as shard_hook. The launch-evaluation cache uses this to
    /// record which memory a launch consumed and produced.
    std::function<MemAccessHook(std::size_t chunk)> capture_hook;

    /// Worker threads for grid-level parallelism. 0 = automatic: the host
    /// default, collapsed to 1 inside an outer ThreadPool worker (nested
    /// sweeps stay serial). 1 = serial. Any value yields bit-identical
    /// results; only wall-clock changes.
    std::size_t workers = 0;

    /// Diagnose divergent-exit barriers: when a barrier releases while some
    /// threads of the block already retired, throw a ContractError naming
    /// the kernel and block instead of releasing silently.
    bool strict_barriers = false;
  };

  /// Executes `ir` over `global` memory and returns the dynamic profile.
  /// Throws ContractError on invalid launches, out-of-bounds accesses,
  /// integer division by zero, or budget exhaustion; with several failing
  /// chunks the error of the lowest-numbered chunk wins, so error reporting
  /// is deterministic too.
  DynamicProfile run(const KernelIR& ir, const LaunchDims& dims, const KernelArgs& args,
                     AddressSpace& global, const Options& options);
  DynamicProfile run(const KernelIR& ir, const LaunchDims& dims, const KernelArgs& args,
                     AddressSpace& global) {
    return run(ir, dims, args, global, Options{});
  }

  /// Number of canonical chunks the grid of `dims` is partitioned into:
  /// `min(num_blocks, 64)` contiguous row-major ranges. Depends only on the
  /// launch geometry — this is what makes per-chunk cache shards and profile
  /// merges independent of the worker count.
  static std::size_t canonical_chunks(const LaunchDims& dims);

  /// True when `ir` contains a global atomic (kAtomAddGlobal*); such
  /// kernels execute their chunks serially in canonical order.
  static bool uses_global_atomics(const KernelIR& ir);
};

}  // namespace sigvp
