#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "interp/decoded.hpp"

namespace sigvp::interp_detail {

/// Opcode space of the Tier-2 threaded-code engine (DESIGN.md §15). The
/// X-macro keeps the enum, the computed-goto label table, and the dispatch
/// bodies in tier2.cpp in lockstep: adding an op here without a body is a
/// compile error, not a runtime hole.
///
/// Generic ops mirror the Tier-1 handler set one-to-one; the fused block at
/// the end holds the peephole superinstructions. Every fused op executes its
/// constituent micro-ops in the original program order — all destination
/// registers are written, every memory access fires in sequence, and the
/// per-thread budget ticks once per micro-op — so fusion is invisible to the
/// byte-exactness contract by construction.
#define SIGVP_TIER2_OPS(X)                                                    \
  X(nop) X(load_const) X(mov) X(select) X(read_special) X(ld_param)           \
  X(add_i) X(sub_i) X(mul_i) X(div_i) X(rem_i) X(min_i) X(max_i)              \
  X(neg_i) X(abs_i)                                                           \
  X(set_lt_i) X(set_le_i) X(set_eq_i) X(set_ne_i) X(set_gt_i) X(set_ge_i)     \
  X(cvt_f32_to_i) X(cvt_f64_to_i)                                             \
  X(and_b) X(or_b) X(xor_b) X(not_b) X(shl_b) X(shr_b) X(shr_a)               \
  X(add_f32) X(sub_f32) X(mul_f32) X(div_f32) X(fma_f32) X(sqrt_f32)          \
  X(rsqrt_f32) X(exp_f32) X(log_f32) X(sin_f32) X(cos_f32) X(min_f32)         \
  X(max_f32) X(abs_f32) X(neg_f32) X(floor_f32)                               \
  X(set_lt_f32) X(set_le_f32) X(set_eq_f32) X(set_gt_f32) X(set_ge_f32)       \
  X(cvt_i_to_f32) X(cvt_f64_to_f32)                                           \
  X(add_f64) X(sub_f64) X(mul_f64) X(div_f64) X(fma_f64) X(sqrt_f64)          \
  X(exp_f64) X(log_f64) X(sin_f64) X(cos_f64) X(min_f64) X(max_f64)           \
  X(abs_f64) X(neg_f64) X(floor_f64)                                          \
  X(set_lt_f64) X(set_le_f64) X(set_eq_f64) X(set_gt_f64) X(set_ge_f64)       \
  X(cvt_i_to_f64) X(cvt_f32_to_f64)                                           \
  X(jmp) X(bra_z) X(bra_nz) X(ret) X(bar)                                     \
  X(ld_global_f32) X(ld_global_f64) X(ld_global_i32) X(ld_global_i64)         \
  X(ld_global_u8)                                                             \
  X(st_global_f32) X(st_global_f64) X(st_global_i32) X(st_global_i64)         \
  X(st_global_u8)                                                             \
  X(ld_shared_f32) X(ld_shared_f64) X(ld_shared_i64)                          \
  X(st_shared_f32) X(st_shared_f64) X(st_shared_i64)                          \
  /* fused superinstructions (two micro-ops per dispatch) */                  \
  X(mul_add_i) X(shl_add_i) X(add_add_i) X(add_i_jmp)                         \
  X(set_lt_i_bra_z) X(set_lt_i_bra_nz) X(set_ge_i_bra_z) X(set_ge_i_bra_nz)  \
  X(ld_ld_f32) X(ld_add_f32) X(ld_mul_f32) X(ld_sub_f32)                      \
  X(add_st_f32) X(mul_st_f32) X(sub_st_f32) X(fma_st_f32) X(mul_add_f32)

enum class SOp : std::uint16_t {
#define SIGVP_T2_ENUM(name) k_##name,
  SIGVP_TIER2_OPS(SIGVP_T2_ENUM)
#undef SIGVP_T2_ENUM
      kCount
};

/// Index of the first fused opcode; everything at or past it carries two
/// micro-ops (used by the lowering pass to count fusions).
inline constexpr std::uint16_t kFirstFusedSOp =
    static_cast<std::uint16_t>(SOp::k_mul_add_i);

/// One Tier-2 threaded instruction. Register operands are pre-scaled SoA
/// slot offsets (`reg << stride_shift`), so a handler's register access is
/// `slab[lane + slot]` — the same single-add addressing Tier-1 pays, but
/// with each architectural register's lanes contiguous in memory (the layout
/// the vector prologue's inner loops auto-vectorize over).
///
/// `d/a/b/c` are the first micro-op's dst/src0/src1/src2; `d2/a2/b2` belong
/// to the second micro-op of a fused pair. Branch targets are pre-resolved
/// flat pcs in the *lowered* code space.
struct Tier2Instr {
  std::uint32_t d = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t d2 = 0;
  std::uint32_t a2 = 0;
  std::uint32_t b2 = 0;
  std::uint16_t sop = 0;  // SOp index into the dispatch table
  std::int64_t imm = 0;
  std::int64_t imm2 = 0;
  std::uint32_t target_pc = 0;
  std::uint32_t target_block = 0;
  std::uint32_t fall_pc = 0;  // kInvalidPc when the lexically last block
  std::uint32_t fall_block = 0;
};

/// One instruction of the vectorized entry-block prologue, executed in lane
/// lockstep across the whole thread block (see Tier2Program::prologue).
/// Operands are pre-scaled SoA slot offsets like Tier2Instr.
struct VecOp {
  Opcode op = Opcode::kNop;
  std::uint32_t d = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::int64_t imm = 0;
};

/// A DecodedProgram lowered to Tier-2 threaded code for one SoA stride.
///
/// The prologue is the maximal prefix of the entry block consisting of pure
/// register ops (no memory, no control flow, no div/rem traps): every thread
/// executes exactly these instructions first, they touch only lane-private
/// registers, fire no hooks and bump no λ, so running them lane-lockstep is
/// provably byte-exact and the inner loops vectorize over the contiguous SoA
/// lanes. The scalar code still contains the prologue instructions (lowered
/// 1:1, never fused), so execution can start from flat pc 0 whenever the
/// vector phase is skipped (e.g. a budget smaller than the prologue).
struct Tier2Program {
  std::vector<Tier2Instr> code;
  std::vector<std::uint32_t> block_first_pc;  // lowered pc of each block
  std::vector<VecOp> prologue;
  std::uint32_t scalar_entry_pc = 0;  // lowered pc right after the prologue
  std::uint32_t num_regs = 1;
  unsigned stride_shift = 0;  // SoA lane stride = 1 << stride_shift
  std::uint64_t fingerprint = 0;
  std::uint32_t fused_pairs = 0;  // superinstructions formed by the peephole

  std::size_t mem_bytes() const {
    return code.size() * sizeof(Tier2Instr) + prologue.size() * sizeof(VecOp) +
           block_first_pc.size() * sizeof(std::uint32_t);
  }
};

/// True when every instruction of `prog` has a Tier-2 lowering (no global
/// atomics, no mid-block terminators, only known opcodes). Pure function of
/// the program — the per-scenario eligibility metric leans on that.
bool tier2_supported(const DecodedProgram& prog);

/// Lowers `prog` into threaded code with operands pre-scaled for an SoA
/// stride of `1 << stride_shift` (which must cover threads_per_block).
/// Returns nullptr when the program is unsupported.
std::shared_ptr<const Tier2Program> lower_program(const DecodedProgram& prog,
                                                  unsigned stride_shift);

}  // namespace sigvp::interp_detail
