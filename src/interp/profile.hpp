#pragma once

#include <cstdint>
#include <vector>

#include "ir/instr_class.hpp"
#include "ir/program.hpp"

namespace sigvp {

/// Dynamic execution profile of one kernel launch, produced either by the
/// instrumented interpreter (exact, like the paper's PTX instrumentation)
/// or analytically by a workload's profile function (like the paper's
/// probabilistic estimation of iteration counts).
struct DynamicProfile {
  /// λ_b: number of times each basic block was entered, summed over all
  /// threads of the launch (indexed by block id).
  std::vector<std::uint64_t> block_visits;

  /// Dynamic per-class instruction counts σ (kNop excluded).
  ClassCounts instr_counts;

  std::uint64_t global_load_bytes = 0;
  std::uint64_t global_store_bytes = 0;
  std::uint64_t barriers_waited = 0;

  /// Dynamic count of hard transcendental (SFU) instructions (exp, log,
  /// sin, cos) — emulators execute these via full libm calls.
  std::uint64_t sfu_instrs = 0;
  /// Dynamic count of sqrt/rsqrt instructions — cheap SSE ops on a CPU.
  std::uint64_t sqrt_instrs = 0;

  std::uint64_t total_instrs() const { return instr_counts.total(); }

  /// Recomputes per-class counts from λ and the static µ of each block:
  /// σ_i = Σ_b λ_b · µ{b,i} (paper Eq. 1 with the host ISA's µ).
  /// The interpreter guarantees this equals `instr_counts` exactly; the
  /// equality is exercised by property tests.
  static ClassCounts counts_from_visits(const KernelIR& ir,
                                        const std::vector<std::uint64_t>& visits);
};

}  // namespace sigvp
