#include "interp/superinst.hpp"

namespace sigvp::interp_detail {

namespace {

/// Generic (one micro-op) Tier-2 opcode for a Tier-1 opcode, or SOp::kCount
/// when the op has no Tier-2 lowering (global atomics stay on Tier 1: their
/// cross-chunk memory order already forces the interpreter serial, so there
/// is nothing for a faster tier to win).
SOp generic_sop(Opcode op) {
  switch (op) {
    case Opcode::kNop: return SOp::k_nop;
    case Opcode::kMovImmI:
    case Opcode::kMovImmF32:
    case Opcode::kMovImmF64: return SOp::k_load_const;
    case Opcode::kMov: return SOp::k_mov;
    case Opcode::kReadSpecial: return SOp::k_read_special;
    case Opcode::kLdParam: return SOp::k_ld_param;
    case Opcode::kSelect: return SOp::k_select;

    case Opcode::kAddI: return SOp::k_add_i;
    case Opcode::kSubI: return SOp::k_sub_i;
    case Opcode::kMulI: return SOp::k_mul_i;
    case Opcode::kDivI: return SOp::k_div_i;
    case Opcode::kRemI: return SOp::k_rem_i;
    case Opcode::kMinI: return SOp::k_min_i;
    case Opcode::kMaxI: return SOp::k_max_i;
    case Opcode::kNegI: return SOp::k_neg_i;
    case Opcode::kAbsI: return SOp::k_abs_i;
    case Opcode::kSetLtI: return SOp::k_set_lt_i;
    case Opcode::kSetLeI: return SOp::k_set_le_i;
    case Opcode::kSetEqI: return SOp::k_set_eq_i;
    case Opcode::kSetNeI: return SOp::k_set_ne_i;
    case Opcode::kSetGtI: return SOp::k_set_gt_i;
    case Opcode::kSetGeI: return SOp::k_set_ge_i;
    case Opcode::kCvtF32ToI: return SOp::k_cvt_f32_to_i;
    case Opcode::kCvtF64ToI: return SOp::k_cvt_f64_to_i;

    case Opcode::kAndB: return SOp::k_and_b;
    case Opcode::kOrB: return SOp::k_or_b;
    case Opcode::kXorB: return SOp::k_xor_b;
    case Opcode::kNotB: return SOp::k_not_b;
    case Opcode::kShlB: return SOp::k_shl_b;
    case Opcode::kShrB: return SOp::k_shr_b;
    case Opcode::kShrA: return SOp::k_shr_a;

    case Opcode::kAddF32: return SOp::k_add_f32;
    case Opcode::kSubF32: return SOp::k_sub_f32;
    case Opcode::kMulF32: return SOp::k_mul_f32;
    case Opcode::kDivF32: return SOp::k_div_f32;
    case Opcode::kFmaF32: return SOp::k_fma_f32;
    case Opcode::kSqrtF32: return SOp::k_sqrt_f32;
    case Opcode::kRsqrtF32: return SOp::k_rsqrt_f32;
    case Opcode::kExpF32: return SOp::k_exp_f32;
    case Opcode::kLogF32: return SOp::k_log_f32;
    case Opcode::kSinF32: return SOp::k_sin_f32;
    case Opcode::kCosF32: return SOp::k_cos_f32;
    case Opcode::kMinF32: return SOp::k_min_f32;
    case Opcode::kMaxF32: return SOp::k_max_f32;
    case Opcode::kAbsF32: return SOp::k_abs_f32;
    case Opcode::kNegF32: return SOp::k_neg_f32;
    case Opcode::kFloorF32: return SOp::k_floor_f32;
    case Opcode::kSetLtF32: return SOp::k_set_lt_f32;
    case Opcode::kSetLeF32: return SOp::k_set_le_f32;
    case Opcode::kSetEqF32: return SOp::k_set_eq_f32;
    case Opcode::kSetGtF32: return SOp::k_set_gt_f32;
    case Opcode::kSetGeF32: return SOp::k_set_ge_f32;
    case Opcode::kCvtIToF32: return SOp::k_cvt_i_to_f32;
    case Opcode::kCvtF64ToF32: return SOp::k_cvt_f64_to_f32;

    case Opcode::kAddF64: return SOp::k_add_f64;
    case Opcode::kSubF64: return SOp::k_sub_f64;
    case Opcode::kMulF64: return SOp::k_mul_f64;
    case Opcode::kDivF64: return SOp::k_div_f64;
    case Opcode::kFmaF64: return SOp::k_fma_f64;
    case Opcode::kSqrtF64: return SOp::k_sqrt_f64;
    case Opcode::kExpF64: return SOp::k_exp_f64;
    case Opcode::kLogF64: return SOp::k_log_f64;
    case Opcode::kSinF64: return SOp::k_sin_f64;
    case Opcode::kCosF64: return SOp::k_cos_f64;
    case Opcode::kMinF64: return SOp::k_min_f64;
    case Opcode::kMaxF64: return SOp::k_max_f64;
    case Opcode::kAbsF64: return SOp::k_abs_f64;
    case Opcode::kNegF64: return SOp::k_neg_f64;
    case Opcode::kFloorF64: return SOp::k_floor_f64;
    case Opcode::kSetLtF64: return SOp::k_set_lt_f64;
    case Opcode::kSetLeF64: return SOp::k_set_le_f64;
    case Opcode::kSetEqF64: return SOp::k_set_eq_f64;
    case Opcode::kSetGtF64: return SOp::k_set_gt_f64;
    case Opcode::kSetGeF64: return SOp::k_set_ge_f64;
    case Opcode::kCvtIToF64: return SOp::k_cvt_i_to_f64;
    case Opcode::kCvtF32ToF64: return SOp::k_cvt_f32_to_f64;

    case Opcode::kJmp: return SOp::k_jmp;
    case Opcode::kBraZ: return SOp::k_bra_z;
    case Opcode::kBraNZ: return SOp::k_bra_nz;
    case Opcode::kRet: return SOp::k_ret;
    case Opcode::kBar: return SOp::k_bar;

    case Opcode::kLdGlobalF32: return SOp::k_ld_global_f32;
    case Opcode::kLdGlobalF64: return SOp::k_ld_global_f64;
    case Opcode::kLdGlobalI32: return SOp::k_ld_global_i32;
    case Opcode::kLdGlobalI64: return SOp::k_ld_global_i64;
    case Opcode::kLdGlobalU8: return SOp::k_ld_global_u8;
    case Opcode::kStGlobalF32: return SOp::k_st_global_f32;
    case Opcode::kStGlobalF64: return SOp::k_st_global_f64;
    case Opcode::kStGlobalI32: return SOp::k_st_global_i32;
    case Opcode::kStGlobalI64: return SOp::k_st_global_i64;
    case Opcode::kStGlobalU8: return SOp::k_st_global_u8;

    case Opcode::kLdSharedF32: return SOp::k_ld_shared_f32;
    case Opcode::kLdSharedF64: return SOp::k_ld_shared_f64;
    case Opcode::kLdSharedI64: return SOp::k_ld_shared_i64;
    case Opcode::kStSharedF32: return SOp::k_st_shared_f32;
    case Opcode::kStSharedF64: return SOp::k_st_shared_f64;
    case Opcode::kStSharedI64: return SOp::k_st_shared_i64;

    case Opcode::kAtomAddGlobalI64:
    case Opcode::kAtomAddGlobalF32: return SOp::kCount;
  }
  return SOp::kCount;
}

/// Peephole pair table. A fused superinstruction executes `x` then `y` as
/// two budget-ticked micro-ops in original order, so any operand overlap
/// (y reading x's dst, y overwriting x's dst, ...) is automatically correct;
/// the table only needs to name profitable adjacent shapes. Pairs whose
/// second op is a branch may only form at a block's end (the caller
/// guarantees `y` is then the block terminator).
SOp fuse_pair(Opcode x, Opcode y) {
  switch (x) {
    case Opcode::kMulI:
      if (y == Opcode::kAddI) return SOp::k_mul_add_i;  // gid = ctaid*ntid + tid
      break;
    case Opcode::kShlB:
      if (y == Opcode::kAddI) return SOp::k_shl_add_i;  // addr_of: base + (i<<log2)
      break;
    case Opcode::kAddI:
      if (y == Opcode::kAddI) return SOp::k_add_add_i;
      if (y == Opcode::kJmp) return SOp::k_add_i_jmp;  // loop-end increment+backedge
      break;
    case Opcode::kSetLtI:
      if (y == Opcode::kBraZ) return SOp::k_set_lt_i_bra_z;  // guard / loop head
      if (y == Opcode::kBraNZ) return SOp::k_set_lt_i_bra_nz;
      break;
    case Opcode::kSetGeI:
      if (y == Opcode::kBraZ) return SOp::k_set_ge_i_bra_z;
      if (y == Opcode::kBraNZ) return SOp::k_set_ge_i_bra_nz;
      break;
    case Opcode::kLdGlobalF32:
      if (y == Opcode::kLdGlobalF32) return SOp::k_ld_ld_f32;
      if (y == Opcode::kAddF32) return SOp::k_ld_add_f32;
      if (y == Opcode::kMulF32) return SOp::k_ld_mul_f32;
      if (y == Opcode::kSubF32) return SOp::k_ld_sub_f32;
      break;
    case Opcode::kAddF32:
      if (y == Opcode::kStGlobalF32) return SOp::k_add_st_f32;
      break;
    case Opcode::kMulF32:
      if (y == Opcode::kStGlobalF32) return SOp::k_mul_st_f32;
      // Two separate roundings, never contracted to an fma — bit-exactness.
      if (y == Opcode::kAddF32) return SOp::k_mul_add_f32;
      break;
    case Opcode::kSubF32:
      if (y == Opcode::kStGlobalF32) return SOp::k_sub_st_f32;
      break;
    case Opcode::kFmaF32:
      if (y == Opcode::kStGlobalF32) return SOp::k_fma_st_f32;
      break;
    default:
      break;
  }
  return SOp::kCount;
}

/// Ops eligible for the lane-lockstep vector prologue: pure register → no
/// memory traffic, no hooks, no λ, no control flow. DivI/RemI are excluded
/// (their zero-divisor trap would need per-lane unwind ordering); everything
/// else that only reads lane-private registers and launch constants is in.
bool vec_ok(Opcode op) {
  switch (op) {
    case Opcode::kMovImmI:
    case Opcode::kMovImmF32:
    case Opcode::kMovImmF64:
    case Opcode::kMov:
    case Opcode::kReadSpecial:
    case Opcode::kLdParam:  // uniform bounds check, broadcast value
    case Opcode::kSelect:
    case Opcode::kAddI:
    case Opcode::kSubI:
    case Opcode::kMulI:
    case Opcode::kMinI:
    case Opcode::kMaxI:
    case Opcode::kNegI:
    case Opcode::kAbsI:
    case Opcode::kSetLtI:
    case Opcode::kSetLeI:
    case Opcode::kSetEqI:
    case Opcode::kSetNeI:
    case Opcode::kSetGtI:
    case Opcode::kSetGeI:
    case Opcode::kCvtF32ToI:
    case Opcode::kCvtF64ToI:
    case Opcode::kAndB:
    case Opcode::kOrB:
    case Opcode::kXorB:
    case Opcode::kNotB:
    case Opcode::kShlB:
    case Opcode::kShrB:
    case Opcode::kShrA:
    case Opcode::kAddF32:
    case Opcode::kSubF32:
    case Opcode::kMulF32:
    case Opcode::kDivF32:
    case Opcode::kFmaF32:
    case Opcode::kMinF32:
    case Opcode::kMaxF32:
    case Opcode::kAbsF32:
    case Opcode::kNegF32:
    case Opcode::kFloorF32:
    case Opcode::kSetLtF32:
    case Opcode::kSetLeF32:
    case Opcode::kSetEqF32:
    case Opcode::kSetGtF32:
    case Opcode::kSetGeF32:
    case Opcode::kCvtIToF32:
    case Opcode::kCvtF64ToF32:
    case Opcode::kAddF64:
    case Opcode::kSubF64:
    case Opcode::kMulF64:
    case Opcode::kDivF64:
    case Opcode::kFmaF64:
    case Opcode::kMinF64:
    case Opcode::kMaxF64:
    case Opcode::kAbsF64:
    case Opcode::kNegF64:
    case Opcode::kFloorF64:
    case Opcode::kSetLtF64:
    case Opcode::kSetLeF64:
    case Opcode::kSetEqF64:
    case Opcode::kSetGtF64:
    case Opcode::kSetGeF64:
    case Opcode::kCvtIToF64:
    case Opcode::kCvtF32ToF64:
      return true;
    default:
      return false;
  }
}

bool sop_is_branch(SOp s) {
  switch (s) {
    case SOp::k_jmp:
    case SOp::k_bra_z:
    case SOp::k_bra_nz:
    case SOp::k_add_i_jmp:
    case SOp::k_set_lt_i_bra_z:
    case SOp::k_set_lt_i_bra_nz:
    case SOp::k_set_ge_i_bra_z:
    case SOp::k_set_ge_i_bra_nz:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool tier2_supported(const DecodedProgram& prog) {
  if (prog.has_global_atomics) return false;
  for (const DecodedBlock& db : prog.blocks) {
    for (std::uint32_t k = 0; k < db.num_instrs; ++k) {
      const DecodedInstr& d = prog.code[db.first_pc + k];
      if (generic_sop(d.op) == SOp::kCount) return false;
      // A mid-block terminator would make the block's lowered length
      // ambiguous; the builder never emits one, so just fall back.
      if (k + 1 < db.num_instrs && is_terminator(d.op)) return false;
    }
  }
  return true;
}

std::shared_ptr<const Tier2Program> lower_program(const DecodedProgram& prog,
                                                  unsigned stride_shift) {
  if (!tier2_supported(prog)) return nullptr;

  auto out = std::make_shared<Tier2Program>();
  out->num_regs = prog.num_regs;
  out->stride_shift = stride_shift;
  out->fingerprint = prog.fingerprint;
  out->block_first_pc.resize(prog.blocks.size());
  out->code.reserve(prog.code.size());

  const auto scale = [stride_shift](std::uint16_t reg) {
    return static_cast<std::uint32_t>(reg) << stride_shift;
  };

  // Vector prologue: maximal pure-register prefix of the entry block —
  // unless some branch re-enters block 0, in which case a mid-prologue pc
  // could be a jump target and the prefix is not straight-line for every
  // visit.
  bool entry_is_target = false;
  for (const DecodedInstr& d : prog.code) {
    if (is_branch_with_target(d.op) && d.target_block == 0) entry_is_target = true;
  }
  std::uint32_t prologue_len = 0;
  if (!entry_is_target) {
    const DecodedBlock& b0 = prog.blocks[0];
    while (prologue_len < b0.num_instrs &&
           vec_ok(prog.code[b0.first_pc + prologue_len].op)) {
      ++prologue_len;
    }
  }
  out->prologue.reserve(prologue_len);
  for (std::uint32_t k = 0; k < prologue_len; ++k) {
    const DecodedInstr& d = prog.code[prog.blocks[0].first_pc + k];
    VecOp v;
    v.op = d.op == Opcode::kMovImmF32 || d.op == Opcode::kMovImmF64 ? Opcode::kMovImmI : d.op;
    v.d = scale(d.dst);
    v.a = scale(d.src0);
    v.b = scale(d.src1);
    v.c = scale(d.src2);
    v.imm = d.imm;  // FP immediates already pre-encoded as bit patterns
    out->prologue.push_back(v);
  }

  // Lower each block: 1:1 for the prologue region (so scalar execution can
  // start at flat pc 0 when the vector phase is skipped), greedy
  // non-overlapping pair fusion for everything else. Fusion never crosses a
  // block boundary, and branch targets only ever point at a block's first
  // instruction, so no fused pair can hide a jump target.
  for (std::size_t bi = 0; bi < prog.blocks.size(); ++bi) {
    const DecodedBlock& db = prog.blocks[bi];
    out->block_first_pc[bi] = static_cast<std::uint32_t>(out->code.size());
    std::uint32_t k = 0;
    const std::uint32_t no_fuse_below = bi == 0 ? prologue_len : 0u;
    while (k < db.num_instrs) {
      const DecodedInstr& x = prog.code[db.first_pc + k];
      Tier2Instr t;
      t.d = scale(x.dst);
      t.a = scale(x.src0);
      t.b = scale(x.src1);
      t.c = scale(x.src2);
      t.imm = x.imm;
      SOp fused = SOp::kCount;
      if (k >= no_fuse_below && k + 1 < db.num_instrs) {
        const DecodedInstr& y = prog.code[db.first_pc + k + 1];
        fused = fuse_pair(x.op, y.op);
        if (fused != SOp::kCount) {
          t.sop = static_cast<std::uint16_t>(fused);
          t.d2 = scale(y.dst);
          t.a2 = scale(y.src0);
          t.b2 = scale(y.src1);
          t.imm2 = y.imm;
          // Branch metadata of a fused-with-branch pair comes from `y`.
          t.target_block = y.target_block;
          t.fall_pc = y.fall_pc;  // kInvalidPc marker survives; pc fixed below
          t.fall_block = y.fall_block;
          ++out->fused_pairs;
          k += 2;
        }
      }
      if (fused == SOp::kCount) {
        t.sop = static_cast<std::uint16_t>(generic_sop(x.op));
        t.target_block = x.target_block;
        t.fall_pc = x.fall_pc;
        t.fall_block = x.fall_block;
        k += 1;
      }
      out->code.push_back(t);
    }
  }
  out->scalar_entry_pc = prologue_len;  // prologue region lowered 1:1 from pc 0

  // Fix up branch targets into the lowered pc space.
  for (Tier2Instr& t : out->code) {
    if (!sop_is_branch(static_cast<SOp>(t.sop))) continue;
    t.target_pc = out->block_first_pc[t.target_block];
    if (t.fall_pc != kInvalidPc) t.fall_pc = out->block_first_pc[t.fall_block];
  }
  return out;
}

}  // namespace sigvp::interp_detail
