#include "interp/tier2.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace sigvp {
namespace interp_detail {

namespace {

// ---------------------------------------------------------------------------
// Execution context + cold paths. Identical shape (and messages) to the
// Tier-1 interpreter so a launch that errors on Tier 2 errors the same way
// it would have on Tier 1.
// ---------------------------------------------------------------------------

struct T2Ctx {
  const Tier2Instr* code = nullptr;
  LaunchDims dims;
  const std::uint64_t* argv = nullptr;
  std::size_t argc = 0;
  AddressSpace* global = nullptr;
  const MemAccessHook* hook = nullptr;
  std::uint64_t* block_visits = nullptr;
  std::uint8_t* shared = nullptr;
  std::size_t shared_size = 0;
  std::uint32_t ctaid_x = 0;
  std::uint32_t ctaid_y = 0;
  const KernelIR* ir = nullptr;  // cold paths only (error messages)
  RegValue* slab = nullptr;      // SoA register slab of the current block
};

[[noreturn]] __attribute__((noinline, cold)) void throw_budget_exhausted(const T2Ctx& m) {
  sigvp::detail::raise_contract_error(
      "precondition", "instrs_executed <= max_instrs_per_thread", __FILE__, __LINE__,
      m.ir->name + ": per-thread instruction budget exhausted");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_shared_oob(const T2Ctx& m) {
  sigvp::detail::raise_contract_error("precondition", "shared access in bounds", __FILE__,
                                      __LINE__,
                                      m.ir->name + ": shared-memory access out of bounds");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_div_zero(const T2Ctx& m) {
  sigvp::detail::raise_contract_error("precondition", "divisor != 0", __FILE__, __LINE__,
                                      m.ir->name + ": integer division by zero");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_rem_zero(const T2Ctx& m) {
  sigvp::detail::raise_contract_error("precondition", "divisor != 0", __FILE__, __LINE__,
                                      m.ir->name + ": integer remainder by zero");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_bad_param(const T2Ctx& m) {
  sigvp::detail::raise_contract_error(
      "precondition", "param index < argument count", __FILE__, __LINE__,
      m.ir->name + ": kernel launched with too few arguments");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_bad_fallthrough(const T2Ctx& m) {
  sigvp::detail::raise_contract_error("invariant", "fallthrough block exists", __FILE__,
                                      __LINE__, m.ir->name + ": branch to nonexistent block");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_vec_unsupported(const T2Ctx& m) {
  sigvp::detail::raise_contract_error("invariant", "prologue op is vectorizable", __FILE__,
                                      __LINE__,
                                      m.ir->name + ": non-vector op reached the prologue");
}

// ---------------------------------------------------------------------------
// Vector prologue: the pure-register prefix of the entry block, executed in
// lane lockstep over the SoA slab. Each case is a tight loop over lanes with
// contiguous loads/stores (register r's lanes live at slab[(r<<shift)..]),
// which the compiler auto-vectorizes. Semantically this is exactly "every
// thread runs the prefix before anything else" — legal because the prefix
// touches no memory, fires no hooks, bumps no λ, and cannot branch, so no
// thread can observe another thread's progress through it.
// ---------------------------------------------------------------------------

void run_vec_prologue(T2Ctx& m, const std::vector<VecOp>& ops, std::uint32_t lanes,
                      const T2Thread* threads) {
  RegValue* const slab = m.slab;
  for (const VecOp& v : ops) {
    RegValue* const D = slab + v.d;
    const RegValue* const A = slab + v.a;
    const RegValue* const B = slab + v.b;
    const RegValue* const C = slab + v.c;

#define T2_VEC(opc, stmt)                                 \
  case Opcode::opc:                                       \
    for (std::uint32_t l = 0; l < lanes; ++l) { stmt; }   \
    break;

    switch (v.op) {
      case Opcode::kMovImmI: {  // FP immediates pre-encoded as bit patterns
        const std::uint64_t bits = static_cast<std::uint64_t>(v.imm);
        for (std::uint32_t l = 0; l < lanes; ++l) D[l].bits = bits;
        break;
      }
      case Opcode::kReadSpecial: {
        switch (static_cast<SpecialReg>(v.imm)) {
          case SpecialReg::kTidX:
            for (std::uint32_t l = 0; l < lanes; ++l) D[l].bits = threads[l].tid_x;
            break;
          case SpecialReg::kTidY:
            for (std::uint32_t l = 0; l < lanes; ++l) D[l].bits = threads[l].tid_y;
            break;
          case SpecialReg::kCtaidX:
            for (std::uint32_t l = 0; l < lanes; ++l) D[l].bits = m.ctaid_x;
            break;
          case SpecialReg::kCtaidY:
            for (std::uint32_t l = 0; l < lanes; ++l) D[l].bits = m.ctaid_y;
            break;
          case SpecialReg::kNtidX:
            for (std::uint32_t l = 0; l < lanes; ++l) D[l].bits = m.dims.block_x;
            break;
          case SpecialReg::kNtidY:
            for (std::uint32_t l = 0; l < lanes; ++l) D[l].bits = m.dims.block_y;
            break;
          case SpecialReg::kNctaidX:
            for (std::uint32_t l = 0; l < lanes; ++l) D[l].bits = m.dims.grid_x;
            break;
          case SpecialReg::kNctaidY:
            for (std::uint32_t l = 0; l < lanes; ++l) D[l].bits = m.dims.grid_y;
            break;
        }
        break;
      }
      case Opcode::kLdParam: {
        if (static_cast<std::size_t>(v.imm) >= m.argc) [[unlikely]] throw_bad_param(m);
        const std::uint64_t val = m.argv[static_cast<std::size_t>(v.imm)];
        for (std::uint32_t l = 0; l < lanes; ++l) D[l].bits = val;
        break;
      }
      T2_VEC(kMov, D[l] = A[l])
      T2_VEC(kSelect, D[l] = A[l].truthy() ? B[l] : C[l])
      T2_VEC(kAddI, D[l].set_i(A[l].i() + B[l].i()))
      T2_VEC(kSubI, D[l].set_i(A[l].i() - B[l].i()))
      T2_VEC(kMulI, D[l].set_i(A[l].i() * B[l].i()))
      T2_VEC(kMinI, D[l].set_i(std::min(A[l].i(), B[l].i())))
      T2_VEC(kMaxI, D[l].set_i(std::max(A[l].i(), B[l].i())))
      T2_VEC(kNegI, D[l].set_i(-A[l].i()))
      T2_VEC(kAbsI, D[l].set_i(std::abs(A[l].i())))
      T2_VEC(kSetLtI, D[l].set_i(A[l].i() < B[l].i()))
      T2_VEC(kSetLeI, D[l].set_i(A[l].i() <= B[l].i()))
      T2_VEC(kSetEqI, D[l].set_i(A[l].i() == B[l].i()))
      T2_VEC(kSetNeI, D[l].set_i(A[l].i() != B[l].i()))
      T2_VEC(kSetGtI, D[l].set_i(A[l].i() > B[l].i()))
      T2_VEC(kSetGeI, D[l].set_i(A[l].i() >= B[l].i()))
      T2_VEC(kCvtF32ToI, D[l].set_i(static_cast<std::int64_t>(A[l].f32())))
      T2_VEC(kCvtF64ToI, D[l].set_i(static_cast<std::int64_t>(A[l].f64())))
      T2_VEC(kAndB, D[l].bits = A[l].bits & B[l].bits)
      T2_VEC(kOrB, D[l].bits = A[l].bits | B[l].bits)
      T2_VEC(kXorB, D[l].bits = A[l].bits ^ B[l].bits)
      T2_VEC(kNotB, D[l].bits = ~A[l].bits)
      T2_VEC(kShlB, D[l].bits = A[l].bits << (B[l].bits & 63))
      T2_VEC(kShrB, D[l].bits = A[l].bits >> (B[l].bits & 63))
      T2_VEC(kShrA, D[l].set_i(A[l].i() >> (B[l].bits & 63)))
      T2_VEC(kAddF32, D[l].set_f32(A[l].f32() + B[l].f32()))
      T2_VEC(kSubF32, D[l].set_f32(A[l].f32() - B[l].f32()))
      T2_VEC(kMulF32, D[l].set_f32(A[l].f32() * B[l].f32()))
      T2_VEC(kDivF32, D[l].set_f32(A[l].f32() / B[l].f32()))
      T2_VEC(kFmaF32, D[l].set_f32(std::fma(A[l].f32(), B[l].f32(), C[l].f32())))
      T2_VEC(kMinF32, D[l].set_f32(std::fmin(A[l].f32(), B[l].f32())))
      T2_VEC(kMaxF32, D[l].set_f32(std::fmax(A[l].f32(), B[l].f32())))
      T2_VEC(kAbsF32, D[l].set_f32(std::fabs(A[l].f32())))
      T2_VEC(kNegF32, D[l].set_f32(-A[l].f32()))
      T2_VEC(kFloorF32, D[l].set_f32(std::floor(A[l].f32())))
      T2_VEC(kSetLtF32, D[l].set_i(A[l].f32() < B[l].f32()))
      T2_VEC(kSetLeF32, D[l].set_i(A[l].f32() <= B[l].f32()))
      T2_VEC(kSetEqF32, D[l].set_i(A[l].f32() == B[l].f32()))
      T2_VEC(kSetGtF32, D[l].set_i(A[l].f32() > B[l].f32()))
      T2_VEC(kSetGeF32, D[l].set_i(A[l].f32() >= B[l].f32()))
      T2_VEC(kCvtIToF32, D[l].set_f32(static_cast<float>(A[l].i())))
      T2_VEC(kCvtF64ToF32, D[l].set_f32(static_cast<float>(A[l].f64())))
      T2_VEC(kAddF64, D[l].set_f64(A[l].f64() + B[l].f64()))
      T2_VEC(kSubF64, D[l].set_f64(A[l].f64() - B[l].f64()))
      T2_VEC(kMulF64, D[l].set_f64(A[l].f64() * B[l].f64()))
      T2_VEC(kDivF64, D[l].set_f64(A[l].f64() / B[l].f64()))
      T2_VEC(kFmaF64, D[l].set_f64(std::fma(A[l].f64(), B[l].f64(), C[l].f64())))
      T2_VEC(kMinF64, D[l].set_f64(std::fmin(A[l].f64(), B[l].f64())))
      T2_VEC(kMaxF64, D[l].set_f64(std::fmax(A[l].f64(), B[l].f64())))
      T2_VEC(kAbsF64, D[l].set_f64(std::fabs(A[l].f64())))
      T2_VEC(kNegF64, D[l].set_f64(-A[l].f64()))
      T2_VEC(kFloorF64, D[l].set_f64(std::floor(A[l].f64())))
      T2_VEC(kSetLtF64, D[l].set_i(A[l].f64() < B[l].f64()))
      T2_VEC(kSetLeF64, D[l].set_i(A[l].f64() <= B[l].f64()))
      T2_VEC(kSetEqF64, D[l].set_i(A[l].f64() == B[l].f64()))
      T2_VEC(kSetGtF64, D[l].set_i(A[l].f64() > B[l].f64()))
      T2_VEC(kSetGeF64, D[l].set_i(A[l].f64() >= B[l].f64()))
      T2_VEC(kCvtIToF64, D[l].set_f64(static_cast<double>(A[l].i())))
      T2_VEC(kCvtF32ToF64, D[l].set_f64(static_cast<double>(A[l].f32())))
      default:
        throw_vec_unsupported(m);  // lowering and this switch drifted apart
    }
#undef T2_VEC
  }
}

// ---------------------------------------------------------------------------
// Threaded-code scalar executor. One computed-goto dispatch per (possibly
// fused) superinstruction: no indirect call, no per-instruction done/barrier
// flag checks — ret/bar exit through their own labels. `T2_TICK()` charges
// the per-thread budget before each micro-op body, exactly where Tier 1
// checks it, so budget exhaustion fires at the same dynamic instruction with
// the same partial side effects.
// ---------------------------------------------------------------------------

void run_t2_thread(T2Ctx& m, T2Thread& t, const std::uint64_t max_instrs) {
  const Tier2Instr* d = m.code + t.pc;
  RegValue* const r = m.slab + t.lane;  // r[slot] = this thread's register
  std::uint64_t n = t.instrs_executed;

#if defined(__GNUC__) || defined(__clang__)
  static const void* const table[] = {
#define SIGVP_T2_LABEL(name) &&t2_##name,
      SIGVP_TIER2_OPS(SIGVP_T2_LABEL)
#undef SIGVP_T2_LABEL
  };
#define T2_CASE(name) t2_##name:
#define T2_GO() goto* table[d->sop]
#define T2_END()
  T2_GO();
#else
#define T2_CASE(name) case SOp::k_##name:
#define T2_GO() goto t2_dispatch
#define T2_END() \
  default: break; \
  }
t2_dispatch:
  switch (static_cast<SOp>(d->sop)) {
#endif

#define T2_TICK() \
  do { if (++n > max_instrs) [[unlikely]] throw_budget_exhausted(m); } while (0)
#define T2_NEXT() \
  do { ++d; T2_GO(); } while (0)
// Branch: bump λ of the target block, jump. Operands are captured before
// `d` moves.
#define T2_TAKE(pc_expr, blk_expr)                       \
  do {                                                   \
    const std::uint32_t t2_p = (pc_expr);                \
    const std::uint32_t t2_b = (blk_expr);               \
    ++m.block_visits[t2_b];                              \
    d = m.code + t2_p;                                   \
    T2_GO();                                             \
  } while (0)
#define T2_SIMPLE(name, body) \
  T2_CASE(name) { T2_TICK(); body; T2_NEXT(); }
#define T2_GADDR(slot, immv) (r[(slot)].bits + static_cast<std::uint64_t>(immv))

  T2_SIMPLE(nop, (void)0)
  T2_SIMPLE(load_const, r[d->d].bits = static_cast<std::uint64_t>(d->imm))
  T2_SIMPLE(mov, r[d->d] = r[d->a])
  T2_SIMPLE(select, r[d->d] = r[d->a].truthy() ? r[d->b] : r[d->c])

  T2_CASE(read_special) {
    T2_TICK();
    std::uint64_t v = 0;
    switch (static_cast<SpecialReg>(d->imm)) {
      case SpecialReg::kTidX: v = t.tid_x; break;
      case SpecialReg::kTidY: v = t.tid_y; break;
      case SpecialReg::kCtaidX: v = m.ctaid_x; break;
      case SpecialReg::kCtaidY: v = m.ctaid_y; break;
      case SpecialReg::kNtidX: v = m.dims.block_x; break;
      case SpecialReg::kNtidY: v = m.dims.block_y; break;
      case SpecialReg::kNctaidX: v = m.dims.grid_x; break;
      case SpecialReg::kNctaidY: v = m.dims.grid_y; break;
    }
    r[d->d].bits = v;
    T2_NEXT();
  }

  T2_CASE(ld_param) {
    T2_TICK();
    if (static_cast<std::size_t>(d->imm) >= m.argc) [[unlikely]] throw_bad_param(m);
    r[d->d].bits = m.argv[static_cast<std::size_t>(d->imm)];
    T2_NEXT();
  }

  // --- integer ---------------------------------------------------------------
  T2_SIMPLE(add_i, r[d->d].set_i(r[d->a].i() + r[d->b].i()))
  T2_SIMPLE(sub_i, r[d->d].set_i(r[d->a].i() - r[d->b].i()))
  T2_SIMPLE(mul_i, r[d->d].set_i(r[d->a].i() * r[d->b].i()))
  T2_CASE(div_i) {
    T2_TICK();
    if (r[d->b].i() == 0) [[unlikely]] throw_div_zero(m);
    r[d->d].set_i(r[d->a].i() / r[d->b].i());
    T2_NEXT();
  }
  T2_CASE(rem_i) {
    T2_TICK();
    if (r[d->b].i() == 0) [[unlikely]] throw_rem_zero(m);
    r[d->d].set_i(r[d->a].i() % r[d->b].i());
    T2_NEXT();
  }
  T2_SIMPLE(min_i, r[d->d].set_i(std::min(r[d->a].i(), r[d->b].i())))
  T2_SIMPLE(max_i, r[d->d].set_i(std::max(r[d->a].i(), r[d->b].i())))
  T2_SIMPLE(neg_i, r[d->d].set_i(-r[d->a].i()))
  T2_SIMPLE(abs_i, r[d->d].set_i(std::abs(r[d->a].i())))
  T2_SIMPLE(set_lt_i, r[d->d].set_i(r[d->a].i() < r[d->b].i()))
  T2_SIMPLE(set_le_i, r[d->d].set_i(r[d->a].i() <= r[d->b].i()))
  T2_SIMPLE(set_eq_i, r[d->d].set_i(r[d->a].i() == r[d->b].i()))
  T2_SIMPLE(set_ne_i, r[d->d].set_i(r[d->a].i() != r[d->b].i()))
  T2_SIMPLE(set_gt_i, r[d->d].set_i(r[d->a].i() > r[d->b].i()))
  T2_SIMPLE(set_ge_i, r[d->d].set_i(r[d->a].i() >= r[d->b].i()))
  T2_SIMPLE(cvt_f32_to_i, r[d->d].set_i(static_cast<std::int64_t>(r[d->a].f32())))
  T2_SIMPLE(cvt_f64_to_i, r[d->d].set_i(static_cast<std::int64_t>(r[d->a].f64())))

  // --- bit -------------------------------------------------------------------
  T2_SIMPLE(and_b, r[d->d].bits = r[d->a].bits & r[d->b].bits)
  T2_SIMPLE(or_b, r[d->d].bits = r[d->a].bits | r[d->b].bits)
  T2_SIMPLE(xor_b, r[d->d].bits = r[d->a].bits ^ r[d->b].bits)
  T2_SIMPLE(not_b, r[d->d].bits = ~r[d->a].bits)
  T2_SIMPLE(shl_b, r[d->d].bits = r[d->a].bits << (r[d->b].bits & 63))
  T2_SIMPLE(shr_b, r[d->d].bits = r[d->a].bits >> (r[d->b].bits & 63))
  T2_SIMPLE(shr_a, r[d->d].set_i(r[d->a].i() >> (r[d->b].bits & 63)))

  // --- fp32 ------------------------------------------------------------------
  T2_SIMPLE(add_f32, r[d->d].set_f32(r[d->a].f32() + r[d->b].f32()))
  T2_SIMPLE(sub_f32, r[d->d].set_f32(r[d->a].f32() - r[d->b].f32()))
  T2_SIMPLE(mul_f32, r[d->d].set_f32(r[d->a].f32() * r[d->b].f32()))
  T2_SIMPLE(div_f32, r[d->d].set_f32(r[d->a].f32() / r[d->b].f32()))
  T2_SIMPLE(fma_f32, r[d->d].set_f32(std::fma(r[d->a].f32(), r[d->b].f32(), r[d->c].f32())))
  T2_SIMPLE(sqrt_f32, r[d->d].set_f32(std::sqrt(r[d->a].f32())))
  T2_SIMPLE(rsqrt_f32, r[d->d].set_f32(1.0f / std::sqrt(r[d->a].f32())))
  T2_SIMPLE(exp_f32, r[d->d].set_f32(std::exp(r[d->a].f32())))
  T2_SIMPLE(log_f32, r[d->d].set_f32(std::log(r[d->a].f32())))
  T2_SIMPLE(sin_f32, r[d->d].set_f32(std::sin(r[d->a].f32())))
  T2_SIMPLE(cos_f32, r[d->d].set_f32(std::cos(r[d->a].f32())))
  T2_SIMPLE(min_f32, r[d->d].set_f32(std::fmin(r[d->a].f32(), r[d->b].f32())))
  T2_SIMPLE(max_f32, r[d->d].set_f32(std::fmax(r[d->a].f32(), r[d->b].f32())))
  T2_SIMPLE(abs_f32, r[d->d].set_f32(std::fabs(r[d->a].f32())))
  T2_SIMPLE(neg_f32, r[d->d].set_f32(-r[d->a].f32()))
  T2_SIMPLE(floor_f32, r[d->d].set_f32(std::floor(r[d->a].f32())))
  T2_SIMPLE(set_lt_f32, r[d->d].set_i(r[d->a].f32() < r[d->b].f32()))
  T2_SIMPLE(set_le_f32, r[d->d].set_i(r[d->a].f32() <= r[d->b].f32()))
  T2_SIMPLE(set_eq_f32, r[d->d].set_i(r[d->a].f32() == r[d->b].f32()))
  T2_SIMPLE(set_gt_f32, r[d->d].set_i(r[d->a].f32() > r[d->b].f32()))
  T2_SIMPLE(set_ge_f32, r[d->d].set_i(r[d->a].f32() >= r[d->b].f32()))
  T2_SIMPLE(cvt_i_to_f32, r[d->d].set_f32(static_cast<float>(r[d->a].i())))
  T2_SIMPLE(cvt_f64_to_f32, r[d->d].set_f32(static_cast<float>(r[d->a].f64())))

  // --- fp64 ------------------------------------------------------------------
  T2_SIMPLE(add_f64, r[d->d].set_f64(r[d->a].f64() + r[d->b].f64()))
  T2_SIMPLE(sub_f64, r[d->d].set_f64(r[d->a].f64() - r[d->b].f64()))
  T2_SIMPLE(mul_f64, r[d->d].set_f64(r[d->a].f64() * r[d->b].f64()))
  T2_SIMPLE(div_f64, r[d->d].set_f64(r[d->a].f64() / r[d->b].f64()))
  T2_SIMPLE(fma_f64, r[d->d].set_f64(std::fma(r[d->a].f64(), r[d->b].f64(), r[d->c].f64())))
  T2_SIMPLE(sqrt_f64, r[d->d].set_f64(std::sqrt(r[d->a].f64())))
  T2_SIMPLE(exp_f64, r[d->d].set_f64(std::exp(r[d->a].f64())))
  T2_SIMPLE(log_f64, r[d->d].set_f64(std::log(r[d->a].f64())))
  T2_SIMPLE(sin_f64, r[d->d].set_f64(std::sin(r[d->a].f64())))
  T2_SIMPLE(cos_f64, r[d->d].set_f64(std::cos(r[d->a].f64())))
  T2_SIMPLE(min_f64, r[d->d].set_f64(std::fmin(r[d->a].f64(), r[d->b].f64())))
  T2_SIMPLE(max_f64, r[d->d].set_f64(std::fmax(r[d->a].f64(), r[d->b].f64())))
  T2_SIMPLE(abs_f64, r[d->d].set_f64(std::fabs(r[d->a].f64())))
  T2_SIMPLE(neg_f64, r[d->d].set_f64(-r[d->a].f64()))
  T2_SIMPLE(floor_f64, r[d->d].set_f64(std::floor(r[d->a].f64())))
  T2_SIMPLE(set_lt_f64, r[d->d].set_i(r[d->a].f64() < r[d->b].f64()))
  T2_SIMPLE(set_le_f64, r[d->d].set_i(r[d->a].f64() <= r[d->b].f64()))
  T2_SIMPLE(set_eq_f64, r[d->d].set_i(r[d->a].f64() == r[d->b].f64()))
  T2_SIMPLE(set_gt_f64, r[d->d].set_i(r[d->a].f64() > r[d->b].f64()))
  T2_SIMPLE(set_ge_f64, r[d->d].set_i(r[d->a].f64() >= r[d->b].f64()))
  T2_SIMPLE(cvt_i_to_f64, r[d->d].set_f64(static_cast<double>(r[d->a].i())))
  T2_SIMPLE(cvt_f32_to_f64, r[d->d].set_f64(static_cast<double>(r[d->a].f32())))

  // --- control flow ----------------------------------------------------------
  T2_CASE(jmp) {
    T2_TICK();
    T2_TAKE(d->target_pc, d->target_block);
  }
  T2_CASE(bra_z) {
    T2_TICK();
    if (!r[d->a].truthy()) T2_TAKE(d->target_pc, d->target_block);
    if (d->fall_pc == kInvalidPc) [[unlikely]] throw_bad_fallthrough(m);
    T2_TAKE(d->fall_pc, d->fall_block);
  }
  T2_CASE(bra_nz) {
    T2_TICK();
    if (r[d->a].truthy()) T2_TAKE(d->target_pc, d->target_block);
    if (d->fall_pc == kInvalidPc) [[unlikely]] throw_bad_fallthrough(m);
    T2_TAKE(d->fall_pc, d->fall_block);
  }
  T2_CASE(ret) {
    T2_TICK();
    t.done = true;
    t.pc = static_cast<std::uint32_t>(d - m.code);
    t.instrs_executed = n;
    return;
  }
  T2_CASE(bar) {
    T2_TICK();
    t.at_barrier = true;
    t.pc = static_cast<std::uint32_t>(d - m.code) + 1;
    t.instrs_executed = n;
    return;
  }

  // --- global memory (hook fires before the access, as in Tier 1) -----------
#define T2_LD_GLOBAL(name, type, assign)                        \
  T2_CASE(name) {                                               \
    T2_TICK();                                                  \
    const std::uint64_t addr = T2_GADDR(d->a, d->imm);          \
    if (m.hook) (*m.hook)(addr, sizeof(type), false);           \
    const type v = m.global->read<type>(addr);                  \
    assign;                                                     \
    T2_NEXT();                                                  \
  }
#define T2_ST_GLOBAL(name, type, value)                         \
  T2_CASE(name) {                                               \
    T2_TICK();                                                  \
    const std::uint64_t addr = T2_GADDR(d->a, d->imm);          \
    if (m.hook) (*m.hook)(addr, sizeof(type), true);            \
    m.global->write<type>(addr, (value));                       \
    T2_NEXT();                                                  \
  }

  T2_LD_GLOBAL(ld_global_f32, float, r[d->d].set_f32(v))
  T2_LD_GLOBAL(ld_global_f64, double, r[d->d].set_f64(v))
  T2_LD_GLOBAL(ld_global_i32, std::int32_t, r[d->d].set_i(v))
  T2_LD_GLOBAL(ld_global_i64, std::int64_t, r[d->d].set_i(v))
  T2_LD_GLOBAL(ld_global_u8, std::uint8_t, r[d->d].bits = v)
  T2_ST_GLOBAL(st_global_f32, float, r[d->b].f32())
  T2_ST_GLOBAL(st_global_f64, double, r[d->b].f64())
  T2_ST_GLOBAL(st_global_i32, std::int32_t, static_cast<std::int32_t>(r[d->b].i()))
  T2_ST_GLOBAL(st_global_i64, std::int64_t, r[d->b].i())
  T2_ST_GLOBAL(st_global_u8, std::uint8_t, static_cast<std::uint8_t>(r[d->b].bits))

  // --- shared memory ---------------------------------------------------------
#define T2_LD_SHARED(name, type, assign)                                     \
  T2_CASE(name) {                                                            \
    T2_TICK();                                                               \
    const std::uint64_t addr = T2_GADDR(d->a, d->imm);                       \
    if (addr + sizeof(type) > m.shared_size || addr + sizeof(type) < addr)   \
        [[unlikely]] throw_shared_oob(m);                                    \
    type v;                                                                  \
    std::memcpy(&v, m.shared + addr, sizeof(type));                          \
    assign;                                                                  \
    T2_NEXT();                                                               \
  }
#define T2_ST_SHARED(name, type, value)                                      \
  T2_CASE(name) {                                                            \
    T2_TICK();                                                               \
    const std::uint64_t addr = T2_GADDR(d->a, d->imm);                       \
    if (addr + sizeof(type) > m.shared_size || addr + sizeof(type) < addr)   \
        [[unlikely]] throw_shared_oob(m);                                    \
    const type v = (value);                                                  \
    std::memcpy(m.shared + addr, &v, sizeof(type));                          \
    T2_NEXT();                                                               \
  }

  T2_LD_SHARED(ld_shared_f32, float, r[d->d].set_f32(v))
  T2_LD_SHARED(ld_shared_f64, double, r[d->d].set_f64(v))
  T2_LD_SHARED(ld_shared_i64, std::int64_t, r[d->d].set_i(v))
  T2_ST_SHARED(st_shared_f32, float, r[d->b].f32())
  T2_ST_SHARED(st_shared_f64, double, r[d->b].f64())
  T2_ST_SHARED(st_shared_i64, std::int64_t, r[d->b].i())

  // --- fused superinstructions ----------------------------------------------
  // Each fused handler is its constituent Tier-1 bodies back to back, each
  // behind its own budget tick; `2`-suffixed operands belong to the second
  // micro-op.
  T2_CASE(mul_add_i) {
    T2_TICK();
    r[d->d].set_i(r[d->a].i() * r[d->b].i());
    T2_TICK();
    r[d->d2].set_i(r[d->a2].i() + r[d->b2].i());
    T2_NEXT();
  }
  T2_CASE(shl_add_i) {
    T2_TICK();
    r[d->d].bits = r[d->a].bits << (r[d->b].bits & 63);
    T2_TICK();
    r[d->d2].set_i(r[d->a2].i() + r[d->b2].i());
    T2_NEXT();
  }
  T2_CASE(add_add_i) {
    T2_TICK();
    r[d->d].set_i(r[d->a].i() + r[d->b].i());
    T2_TICK();
    r[d->d2].set_i(r[d->a2].i() + r[d->b2].i());
    T2_NEXT();
  }
  T2_CASE(add_i_jmp) {
    T2_TICK();
    r[d->d].set_i(r[d->a].i() + r[d->b].i());
    T2_TICK();
    T2_TAKE(d->target_pc, d->target_block);
  }
#define T2_SET_BRA(name, cmp, taken_when_false)                         \
  T2_CASE(name) {                                                       \
    T2_TICK();                                                          \
    r[d->d].set_i(r[d->a].i() cmp r[d->b].i());                         \
    T2_TICK();                                                          \
    if (r[d->a2].truthy() != (taken_when_false))                        \
      T2_TAKE(d->target_pc, d->target_block);                           \
    if (d->fall_pc == kInvalidPc) [[unlikely]] throw_bad_fallthrough(m);\
    T2_TAKE(d->fall_pc, d->fall_block);                                 \
  }
  // bra_z takes when the predicate is false; bra_nz when it is true.
  T2_SET_BRA(set_lt_i_bra_z, <, true)
  T2_SET_BRA(set_lt_i_bra_nz, <, false)
  T2_SET_BRA(set_ge_i_bra_z, >=, true)
  T2_SET_BRA(set_ge_i_bra_nz, >=, false)
#undef T2_SET_BRA
  T2_CASE(ld_ld_f32) {
    T2_TICK();
    {
      const std::uint64_t addr = T2_GADDR(d->a, d->imm);
      if (m.hook) (*m.hook)(addr, 4, false);
      r[d->d].set_f32(m.global->read<float>(addr));
    }
    T2_TICK();
    {
      const std::uint64_t addr = T2_GADDR(d->a2, d->imm2);
      if (m.hook) (*m.hook)(addr, 4, false);
      r[d->d2].set_f32(m.global->read<float>(addr));
    }
    T2_NEXT();
  }
#define T2_LD_ARITH(name, op)                                   \
  T2_CASE(name) {                                               \
    T2_TICK();                                                  \
    const std::uint64_t addr = T2_GADDR(d->a, d->imm);          \
    if (m.hook) (*m.hook)(addr, 4, false);                      \
    r[d->d].set_f32(m.global->read<float>(addr));               \
    T2_TICK();                                                  \
    r[d->d2].set_f32(r[d->a2].f32() op r[d->b2].f32());         \
    T2_NEXT();                                                  \
  }
  T2_LD_ARITH(ld_add_f32, +)
  T2_LD_ARITH(ld_mul_f32, *)
  T2_LD_ARITH(ld_sub_f32, -)
#undef T2_LD_ARITH
#define T2_ARITH_ST(name, op)                                   \
  T2_CASE(name) {                                               \
    T2_TICK();                                                  \
    r[d->d].set_f32(r[d->a].f32() op r[d->b].f32());            \
    T2_TICK();                                                  \
    const std::uint64_t addr = T2_GADDR(d->a2, d->imm2);        \
    if (m.hook) (*m.hook)(addr, 4, true);                       \
    m.global->write<float>(addr, r[d->b2].f32());               \
    T2_NEXT();                                                  \
  }
  T2_ARITH_ST(add_st_f32, +)
  T2_ARITH_ST(mul_st_f32, *)
  T2_ARITH_ST(sub_st_f32, -)
#undef T2_ARITH_ST
  T2_CASE(fma_st_f32) {
    T2_TICK();
    r[d->d].set_f32(std::fma(r[d->a].f32(), r[d->b].f32(), r[d->c].f32()));
    T2_TICK();
    const std::uint64_t addr = T2_GADDR(d->a2, d->imm2);
    if (m.hook) (*m.hook)(addr, 4, true);
    m.global->write<float>(addr, r[d->b2].f32());
    T2_NEXT();
  }
  T2_CASE(mul_add_f32) {
    // Two separate roundings through set_f32's bit_cast — never an fma.
    T2_TICK();
    r[d->d].set_f32(r[d->a].f32() * r[d->b].f32());
    T2_TICK();
    r[d->d2].set_f32(r[d->a2].f32() + r[d->b2].f32());
    T2_NEXT();
  }

  T2_END()

#undef T2_LD_GLOBAL
#undef T2_ST_GLOBAL
#undef T2_LD_SHARED
#undef T2_ST_SHARED
#undef T2_SIMPLE
#undef T2_GADDR
#undef T2_TAKE
#undef T2_NEXT
#undef T2_TICK
#undef T2_CASE
#undef T2_GO
#undef T2_END
}

}  // namespace

void run_tier2_block(const Tier2Program& prog2, const KernelIR& ir, const LaunchDims& dims,
                     const KernelArgs& args, AddressSpace& global, const MemAccessHook* hook,
                     std::uint64_t max_instrs_per_thread, Tier2Arena& arena,
                     DynamicProfile& profile, std::uint32_t ctaid_x, std::uint32_t ctaid_y) {
  const auto nthreads = static_cast<std::uint32_t>(dims.threads_per_block());

  arena.threads.resize(nthreads);
  arena.slab.assign(static_cast<std::size_t>(prog2.num_regs) << prog2.stride_shift,
                    RegValue{});
  arena.shared.assign(ir.shared_bytes, 0);

  T2Ctx m;
  m.code = prog2.code.data();
  m.dims = dims;
  m.argv = args.values.data();
  m.argc = args.values.size();
  m.global = &global;
  m.hook = hook;
  m.block_visits = profile.block_visits.data();
  m.shared = arena.shared.data();
  m.shared_size = arena.shared.size();
  m.ctaid_x = ctaid_x;
  m.ctaid_y = ctaid_y;
  m.ir = &ir;
  m.slab = arena.slab.data();

  for (std::uint32_t ty = 0; ty < dims.block_y; ++ty) {
    for (std::uint32_t tx = 0; tx < dims.block_x; ++tx) {
      const std::uint32_t lane = ty * dims.block_x + tx;
      T2Thread& t = arena.threads[lane];
      t.pc = 0;
      t.lane = lane;
      t.tid_x = tx;
      t.tid_y = ty;
      t.done = false;
      t.at_barrier = false;
      t.instrs_executed = 0;
      ++m.block_visits[0];  // λ of the entry block, one per thread (as Tier 1)
    }
  }

  // Vector phase: run the pure-register prologue for all lanes at once, then
  // park every thread right after it with the budget charged. Skipped when
  // the budget could expire inside the prologue — the scalar code contains
  // the prologue instructions too, so starting from pc 0 reproduces Tier-1
  // budget exhaustion exactly.
  if (!prog2.prologue.empty() && max_instrs_per_thread >= prog2.prologue.size()) {
    run_vec_prologue(m, prog2.prologue, nthreads, arena.threads.data());
    for (T2Thread& t : arena.threads) {
      t.pc = prog2.scalar_entry_pc;
      t.instrs_executed = prog2.prologue.size();
    }
  }

  // Barrier-phase scheduling, identical to run_decoded_block. Strict-barrier
  // diagnostics never route here (the engine keeps them on Tier 1), so the
  // release is always the silent CUDA exited-thread rule.
  while (true) {
    for (T2Thread& t : arena.threads) {
      if (t.done || t.at_barrier) continue;
      run_t2_thread(m, t, max_instrs_per_thread);
    }
    std::size_t waiting = 0;
    for (const T2Thread& t : arena.threads) {
      if (t.at_barrier) ++waiting;
    }
    if (waiting == 0) break;
    for (T2Thread& t : arena.threads) t.at_barrier = false;
    ++profile.barriers_waited;
  }
}

void check_tier_divergence(const KernelIR& ir, const DynamicProfile& ref,
                           const DynamicProfile& got, const AddressSpace& ref_mem,
                           const AddressSpace& got_mem) {
  const auto fail = [&](const std::string& what) {
    throw ContractError("SIGVP_TIER_VERIFY: kernel '" + ir.name +
                        "' diverged between Tier 2 and Tier 1 — " + what);
  };
  if (got.block_visits != ref.block_visits) fail("block_visits (λ) mismatch");
  if (got.instr_counts.counts != ref.instr_counts.counts) {
    fail("per-class instruction counts mismatch");
  }
  if (got.global_load_bytes != ref.global_load_bytes) fail("global_load_bytes mismatch");
  if (got.global_store_bytes != ref.global_store_bytes) fail("global_store_bytes mismatch");
  if (got.barriers_waited != ref.barriers_waited) fail("barriers_waited mismatch");
  if (got.sfu_instrs != ref.sfu_instrs) fail("sfu_instrs mismatch");
  if (got.sqrt_instrs != ref.sqrt_instrs) fail("sqrt_instrs mismatch");
  if (got_mem.size() != ref_mem.size()) fail("address-space size mismatch");
  constexpr std::uint64_t kWindow = 1u << 20;
  for (std::uint64_t off = 0; off < got_mem.size(); off += kWindow) {
    const std::uint64_t len = std::min<std::uint64_t>(kWindow, got_mem.size() - off);
    if (got_mem.hash_range(off, len, kMemHashSeed) !=
        ref_mem.hash_range(off, len, kMemHashSeed)) {
      fail("memory mismatch in window [" + std::to_string(off) + ", " +
           std::to_string(off + len) + ")");
    }
  }
}

}  // namespace interp_detail

// ---------------------------------------------------------------------------
// Tier2Engine
// ---------------------------------------------------------------------------

namespace {

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

unsigned stride_shift_for(std::uint64_t threads_per_block) {
  unsigned s = 0;
  while ((1ull << s) < threads_per_block) ++s;
  return s;
}

/// Static heat of a launch: total threads × static instruction count. A pure
/// function of (kernel, dims) — the promotion threshold compares against it.
std::uint64_t static_heat(const interp_detail::DecodedProgram& prog, const LaunchDims& dims) {
  const std::uint64_t instrs = prog.code.size();
  const std::uint64_t threads = dims.total_threads();
  if (instrs != 0 && threads > ~0ull / instrs) return ~0ull;  // saturate
  return threads * instrs;
}

std::uint64_t promo_key(const interp_detail::DecodedProgram& prog, const LaunchDims& dims,
                        const KernelArgs& args) {
  std::uint64_t h = prog.fingerprint;
  h = mix64(h, dims.grid_x);
  h = mix64(h, dims.grid_y);
  h = mix64(h, dims.block_x);
  h = mix64(h, dims.block_y);
  h = mix64(h, args.values.size());
  for (std::uint64_t v : args.values) h = mix64(h, v);
  return h;
}

}  // namespace

Tier2Engine::Tier2Engine() {
  if (const char* e = std::getenv("SIGVP_TIER")) {
    if (e[0] == '1' && e[1] == '\0') {
      mode_.store(Mode::kForceTier1, std::memory_order_relaxed);
    } else if (e[0] == '2' && e[1] == '\0') {
      mode_.store(Mode::kForceTier2, std::memory_order_relaxed);
    }
  }
  if (const char* v = std::getenv("SIGVP_TIER_VERIFY")) {
    if (v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
      verify_.store(true, std::memory_order_relaxed);
    }
  }
}

Tier2Engine& Tier2Engine::instance() {
  static Tier2Engine engine;
  return engine;
}

void Tier2Engine::set_capacity(std::size_t max_entries, std::size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_entries_ = max_entries;
  max_bytes_ = max_bytes;
}

void Tier2Engine::set_promotion(std::uint64_t min_static_heat,
                                std::uint32_t warmup_launches) {
  min_static_heat_.store(min_static_heat, std::memory_order_relaxed);
  warmup_launches_.store(warmup_launches, std::memory_order_relaxed);
}

Tier2Stats Tier2Engine::stats() const {
  Tier2Stats s;
  s.launches_tier2 = launches_tier2_.load(std::memory_order_relaxed);
  s.launches_warming = launches_warming_.load(std::memory_order_relaxed);
  s.launches_tier1 = launches_tier1_.load(std::memory_order_relaxed);
  s.compiles = compiles_.load(std::memory_order_relaxed);
  s.fused_superinsts = fused_superinsts_.load(std::memory_order_relaxed);
  s.verify_launches = verify_launches_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.lowered_entries = lowered_entries_.load(std::memory_order_relaxed);
  return s;
}

void Tier2Engine::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ordinals_.clear();
  lowered_.clear();
  fifo_.clear();
  fifo_head_ = 0;
  cur_bytes_ = 0;
  launches_tier2_.store(0, std::memory_order_relaxed);
  launches_warming_.store(0, std::memory_order_relaxed);
  launches_tier1_.store(0, std::memory_order_relaxed);
  compiles_.store(0, std::memory_order_relaxed);
  fused_superinsts_.store(0, std::memory_order_relaxed);
  verify_launches_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  lowered_entries_.store(0, std::memory_order_relaxed);
}

bool Tier2Engine::eligible(const interp_detail::DecodedProgram& prog,
                           const LaunchDims& dims) const {
  return interp_detail::tier2_supported(prog) &&
         static_heat(prog, dims) >= min_static_heat_.load(std::memory_order_relaxed);
}

std::shared_ptr<const interp_detail::Tier2Program> Tier2Engine::lowered_get(
    const KernelIR& ir, const interp_detail::DecodedProgram& prog, unsigned shift) {
  const std::uint64_t key = mix64(prog.fingerprint, shift);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = lowered_.find(key);
    if (it != lowered_.end() && it->second->fingerprint == prog.fingerprint &&
        it->second->stride_shift == shift) {
      return it->second;
    }
  }
  // Lower outside the lock (deterministic, so a rare duplicate lowering of
  // the same kernel is identical work; only the unique insert is counted).
  trace::Tracer* tracer = trace::Tracer::active();
  const double host_t0 = tracer != nullptr ? tracer->host_now_us() : 0.0;
  std::shared_ptr<const interp_detail::Tier2Program> prog2 =
      interp_detail::lower_program(prog, shift);
  if (prog2 == nullptr) return nullptr;

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = lowered_.find(key);
  if (it != lowered_.end() && it->second->fingerprint == prog.fingerprint &&
      it->second->stride_shift == shift) {
    return it->second;  // lost the race; keep the winner, count no compile
  }
  if (it != lowered_.end()) {
    cur_bytes_ -= it->second->mem_bytes();  // stale fingerprint, replace in place
    lowered_.erase(it);
  }
  lowered_.emplace(key, prog2);
  fifo_.push_back(key);
  cur_bytes_ += prog2->mem_bytes();
  compiles_.fetch_add(1, std::memory_order_relaxed);
  fused_superinsts_.fetch_add(prog2->fused_pairs, std::memory_order_relaxed);
  if (tracer != nullptr) {
    tracer->complete(tracer->host_pid(), tracer->host_tid(), "tier2", "lower:" + ir.name,
                     host_t0, tracer->host_now_us() - host_t0,
                     {trace::arg("fused", static_cast<int>(prog2->fused_pairs)),
                      trace::arg("instrs", static_cast<int>(prog2->code.size()))});
  }
  while (lowered_.size() > max_entries_ || cur_bytes_ > max_bytes_) {
    if (fifo_head_ >= fifo_.size()) break;
    const std::uint64_t victim = fifo_[fifo_head_++];
    auto vit = lowered_.find(victim);
    if (vit != lowered_.end()) {
      cur_bytes_ -= vit->second->mem_bytes();
      lowered_.erase(vit);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (fifo_head_ > 64 && fifo_head_ * 2 > fifo_.size()) {
    fifo_.erase(fifo_.begin(),
                fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
    fifo_head_ = 0;
  }
  lowered_entries_.store(lowered_.size(), std::memory_order_relaxed);
  return prog2;
}

std::shared_ptr<const interp_detail::Tier2Program> Tier2Engine::select(
    const KernelIR& ir, const interp_detail::DecodedProgram& prog, const LaunchDims& dims,
    const KernelArgs& args, bool has_mem_hook, bool strict_barriers) {
  const Mode mode = mode_.load(std::memory_order_relaxed);
  if (mode == Mode::kForceTier1) {
    launches_tier1_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Unsupported constructs stay on Tier 1: the legacy serial mem_hook,
  // strict-barrier diagnostics, global atomics / unknown ops.
  if (has_mem_hook || strict_barriers || !interp_detail::tier2_supported(prog)) {
    launches_tier1_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (mode == Mode::kAuto) {
    if (static_heat(prog, dims) < min_static_heat_.load(std::memory_order_relaxed)) {
      launches_tier1_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    // Per-key warmup ordinal: how many identical (kernel, dims, args)
    // launches preceded this one, process-wide. Counted under a lock so the
    // ordinal — and therefore the tier decision — is a pure function of the
    // sim-domain launch multiset, not of worker interleaving.
    const std::uint64_t key = promo_key(prog, dims, args);
    std::uint32_t ordinal = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ordinal = ordinals_[key]++;
    }
    if (ordinal < warmup_launches_.load(std::memory_order_relaxed)) {
      launches_warming_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
  }
  std::shared_ptr<const interp_detail::Tier2Program> prog2 =
      lowered_get(ir, prog, stride_shift_for(dims.threads_per_block()));
  if (prog2 == nullptr) {
    launches_tier1_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  launches_tier2_.fetch_add(1, std::memory_order_relaxed);
  return prog2;
}

}  // namespace sigvp
