#include "interp/interpreter.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <vector>

#include "interp/decoded.hpp"
#include "interp/tier2.hpp"
#include "run/thread_pool.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace sigvp {

ClassCounts DynamicProfile::counts_from_visits(const KernelIR& ir,
                                               const std::vector<std::uint64_t>& visits) {
  SIGVP_REQUIRE(visits.size() == ir.blocks.size(), "visit vector must match block count");
  ClassCounts out;
  for (std::size_t b = 0; b < visits.size(); ++b) {
    out += ir.blocks[b].static_counts().scaled(visits[b]);
  }
  return out;
}

namespace {

using interp_detail::DecodedCache;
using interp_detail::DecodedProgram;
using interp_detail::ExecArena;
using interp_detail::run_decoded_block;
using interp_detail::run_tier2_block;
using interp_detail::Tier2Arena;
using interp_detail::Tier2Program;

/// Upper bound on canonical chunks. Chosen so an 8-worker run still has ~8
/// chunks per worker to balance uneven block costs, while per-chunk L2
/// shards stay coarse enough to be meaningful.
constexpr std::size_t kMaxChunks = 64;

/// Shared pool for grid-level parallelism. Sized past the host concurrency
/// so the multi-worker code paths are exercised (and testable) even on small
/// machines; idle workers just sleep on the queue.
run::ThreadPool& interp_pool() {
  static run::ThreadPool pool(std::max<std::size_t>(run::ThreadPool::default_workers(), 8));
  return pool;
}

/// [first_block, last_block) of canonical chunk `c` out of `chunks`, over a
/// grid of `num_blocks` row-major linear block ids. Pure function of the
/// grid — worker count never enters.
struct ChunkRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
};

ChunkRange chunk_range(std::uint64_t num_blocks, std::size_t chunks, std::size_t c) {
  ChunkRange r;
  r.first = num_blocks * c / chunks;
  r.last = num_blocks * (c + 1) / chunks;
  return r;
}

/// Per-runner scratch: the Tier-1 arena plus the Tier-2 slab arena. Only the
/// tier the launch selected allocates anything.
struct RunnerArenas {
  ExecArena t1;
  Tier2Arena t2;
};

/// Executes the blocks of one canonical chunk serially in row-major order on
/// whichever tier the launch selected (`t2` non-null ⇒ Tier 2), accumulating
/// λ/barrier counts into `chunk_profile` (full-size block_visits; merged by
/// the caller in chunk order). Per-block observables are tier-invariant, so
/// the chunk/hook plumbing is shared.
void run_chunk(const DecodedProgram& prog, const Tier2Program* t2, const KernelIR& ir,
               const LaunchDims& dims, const KernelArgs& args, AddressSpace& global,
               const MemAccessHook* hook, const Interpreter::Options& options,
               RunnerArenas& arenas, DynamicProfile& chunk_profile, ChunkRange range) {
  for (std::uint64_t lin = range.first; lin < range.last; ++lin) {
    const auto bx = static_cast<std::uint32_t>(lin % dims.grid_x);
    const auto by = static_cast<std::uint32_t>(lin / dims.grid_x);
    if (t2 != nullptr) {
      run_tier2_block(*t2, ir, dims, args, global, hook, options.max_instrs_per_thread,
                      arenas.t2, chunk_profile, bx, by);
    } else {
      run_decoded_block(prog, ir, dims, args, global, hook, options.max_instrs_per_thread,
                        options.strict_barriers, arenas.t1, chunk_profile, bx, by);
    }
  }
}

/// Composes the per-chunk observer for canonical chunk `c`: the capture
/// recorder (if any) fires first so it can snapshot pre-store bytes, then
/// the shard/mem observer. Returns an empty hook when nothing observes.
MemAccessHook compose_chunk_hook(const Interpreter::Options& options, std::size_t c) {
  MemAccessHook base;
  if (options.shard_hook) {
    base = options.shard_hook(c);
  } else if (options.mem_hook) {
    base = options.mem_hook;
  }
  MemAccessHook capture;
  if (options.capture_hook) capture = options.capture_hook(c);
  if (base && capture) {
    return [base = std::move(base), capture = std::move(capture)](
               std::uint64_t addr, std::uint32_t bytes, bool is_store) {
      capture(addr, bytes, is_store);
      base(addr, bytes, is_store);
    };
  }
  return base ? std::move(base) : std::move(capture);
}

/// Derives every λ-reconstructible counter of `profile` from its merged
/// block_visits and the decoded per-block static summaries. By the
/// interpreter's documented contract (profile.hpp) these equal what
/// per-instruction counting would have produced, so the post-pass replaces
/// hundreds of millions of hot-loop increments with one pass over blocks.
void finalize_from_visits(const DecodedProgram& prog, DynamicProfile& profile) {
  for (std::size_t b = 0; b < prog.blocks.size(); ++b) {
    const auto& db = prog.blocks[b];
    const std::uint64_t lambda = profile.block_visits[b];
    if (lambda == 0) continue;
    profile.instr_counts += db.mu.scaled(lambda);
    profile.sfu_instrs += lambda * db.sfu_instrs;
    profile.sqrt_instrs += lambda * db.sqrt_instrs;
    profile.global_load_bytes += lambda * db.global_load_bytes;
    profile.global_store_bytes += lambda * db.global_store_bytes;
  }
}

/// Runs one decoded launch end to end on the tier picked by the caller
/// (`t2` null ⇒ Tier 1) and returns the finalized profile. Factored out of
/// Interpreter::run so the SIGVP_TIER_VERIFY oracle can re-execute the same
/// launch on Tier 1 without re-entering tier selection.
DynamicProfile execute_launch(const KernelIR& ir, const DecodedProgram& prog,
                              const Tier2Program* t2, const LaunchDims& dims,
                              const KernelArgs& args, AddressSpace& global,
                              const Interpreter::Options& options) {
  DynamicProfile profile;
  profile.block_visits.assign(ir.blocks.size(), 0);

  const std::uint64_t num_blocks = dims.num_blocks();
  const std::size_t chunks = Interpreter::canonical_chunks(dims);

  // Resolve the worker budget. The legacy mem_hook observes accesses in
  // global serial order, and global atomics make cross-chunk memory order
  // observable — both force serial chunk execution (which reproduces the
  // old row-major serial semantics exactly).
  std::size_t workers = run::inner_parallel_workers(options.workers);
  if (options.mem_hook || prog.has_global_atomics) workers = 1;
  workers = std::min(workers, chunks);

  // Host-domain chunk spans: how the simulator's own threads spent their
  // wall-clock interpreting this launch. One pointer test when tracing is
  // off; never feeds the deterministic metrics.
  trace::Tracer* tracer = trace::Tracer::active();
  const char* const span_cat = t2 != nullptr ? "tier2" : "interp";

  if (workers <= 1) {
    // Serial path: chunks in canonical order on the calling thread. Shard
    // hooks still see per-chunk streams so results match the parallel path.
    RunnerArenas arenas;
    for (std::size_t c = 0; c < chunks; ++c) {
      MemAccessHook combined = compose_chunk_hook(options, c);
      const MemAccessHook* hook = combined ? &combined : nullptr;
      const double host_t0 = tracer != nullptr ? tracer->host_now_us() : 0.0;
      run_chunk(prog, t2, ir, dims, args, global, hook, options, arenas, profile,
                chunk_range(num_blocks, chunks, c));
      if (tracer != nullptr) {
        tracer->complete(tracer->host_pid(), tracer->host_tid(), span_cat,
                         ir.name + "#" + std::to_string(c), host_t0,
                         tracer->host_now_us() - host_t0,
                         {trace::arg("chunk", static_cast<int>(c))});
      }
    }
    finalize_from_visits(prog, profile);
    return profile;
  }

  // Parallel path: `workers` runner tasks pull chunk indices from a shared
  // counter. Each chunk accumulates into a private profile (and optional
  // private shard hook); merges happen below in canonical chunk order.
  std::vector<DynamicProfile> chunk_profiles(chunks);
  for (DynamicProfile& p : chunk_profiles) p.block_visits.assign(ir.blocks.size(), 0);
  std::vector<std::exception_ptr> chunk_errors(chunks);
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> failed{false};

  run::ThreadPool& pool = interp_pool();
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      RunnerArenas arenas;  // reused across every chunk this runner executes
      for (;;) {
        const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks || failed.load(std::memory_order_relaxed)) return;
        try {
          MemAccessHook combined = compose_chunk_hook(options, c);
          const MemAccessHook* hook = combined ? &combined : nullptr;
          const double host_t0 = tracer != nullptr ? tracer->host_now_us() : 0.0;
          run_chunk(prog, t2, ir, dims, args, global, hook, options, arenas,
                    chunk_profiles[c], chunk_range(num_blocks, chunks, c));
          if (tracer != nullptr) {
            tracer->complete(tracer->host_pid(), tracer->host_tid(), span_cat,
                             ir.name + "#" + std::to_string(c), host_t0,
                             tracer->host_now_us() - host_t0,
                             {trace::arg("chunk", static_cast<int>(c))});
          }
        } catch (...) {
          chunk_errors[c] = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.wait_idle();

  // Deterministic error reporting: the lowest-numbered failing chunk wins,
  // independent of which worker hit it first.
  for (const std::exception_ptr& e : chunk_errors) {
    if (e) std::rethrow_exception(e);
  }

  for (std::size_t c = 0; c < chunks; ++c) {
    const DynamicProfile& p = chunk_profiles[c];
    for (std::size_t b = 0; b < profile.block_visits.size(); ++b) {
      profile.block_visits[b] += p.block_visits[b];
    }
    profile.barriers_waited += p.barriers_waited;
  }
  finalize_from_visits(prog, profile);
  return profile;
}

}  // namespace

std::size_t Interpreter::canonical_chunks(const LaunchDims& dims) {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(dims.num_blocks(), kMaxChunks));
}

bool Interpreter::uses_global_atomics(const KernelIR& ir) {
  for (const BasicBlock& b : ir.blocks) {
    for (const Instr& in : b.instrs) {
      if (in.op == Opcode::kAtomAddGlobalI64 || in.op == Opcode::kAtomAddGlobalF32) {
        return true;
      }
    }
  }
  return false;
}

DynamicProfile Interpreter::run(const KernelIR& ir, const LaunchDims& dims,
                                const KernelArgs& args, AddressSpace& global,
                                const Options& options) {
  SIGVP_REQUIRE(dims.grid_x > 0 && dims.grid_y > 0 && dims.block_x > 0 && dims.block_y > 0,
                "launch dimensions must be positive");
  SIGVP_REQUIRE(args.values.size() >= ir.num_params,
                ir.name + ": launch provides fewer arguments than the kernel declares");
  SIGVP_REQUIRE(!(options.mem_hook && options.shard_hook),
                ir.name + ": mem_hook and shard_hook are mutually exclusive");

  const std::shared_ptr<const DecodedProgram> prog = DecodedCache::instance().get(ir);

  // Tier decision: a pure function of the sim-domain launch stream (see
  // Tier2Engine::select). Launch observables are byte-exact either way.
  Tier2Engine& engine = Tier2Engine::instance();
  const std::shared_ptr<const Tier2Program> t2 = engine.select(
      ir, *prog, dims, args, static_cast<bool>(options.mem_hook), options.strict_barriers);

  if (t2 != nullptr && engine.verify()) {
    // SIGVP_TIER_VERIFY divergence oracle: snapshot memory, run Tier 2 for
    // real (hooks and all), then replay the launch from the snapshot on a
    // serial hook-free Tier 1 and insist on identical profile + memory.
    AddressSpace reference = global;
    DynamicProfile got = execute_launch(ir, *prog, t2.get(), dims, args, global, options);
    Options ref_options;
    ref_options.max_instrs_per_thread = options.max_instrs_per_thread;
    ref_options.workers = 1;
    DynamicProfile ref =
        execute_launch(ir, *prog, nullptr, dims, args, reference, ref_options);
    interp_detail::check_tier_divergence(ir, ref, got, reference, global);
    engine.note_verified();
    return got;
  }

  return execute_launch(ir, *prog, t2.get(), dims, args, global, options);
}

}  // namespace sigvp
