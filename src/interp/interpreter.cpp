#include "interp/interpreter.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace sigvp {

ClassCounts DynamicProfile::counts_from_visits(const KernelIR& ir,
                                               const std::vector<std::uint64_t>& visits) {
  SIGVP_REQUIRE(visits.size() == ir.blocks.size(), "visit vector must match block count");
  ClassCounts out;
  for (std::size_t b = 0; b < visits.size(); ++b) {
    out += ir.blocks[b].static_counts().scaled(visits[b]);
  }
  return out;
}

namespace {

/// Per-thread execution state.
struct ThreadState {
  std::vector<RegValue> regs;
  std::size_t pc_block = 0;
  std::size_t pc_instr = 0;
  bool done = false;
  bool at_barrier = false;
  std::uint32_t tid_x = 0;
  std::uint32_t tid_y = 0;
  std::uint64_t instrs_executed = 0;
};

struct BlockContext {
  std::uint32_t ctaid_x = 0;
  std::uint32_t ctaid_y = 0;
  std::vector<std::uint8_t> shared;
};

class Machine {
 public:
  Machine(const KernelIR& ir, const LaunchDims& dims, const KernelArgs& args,
          AddressSpace& global, const Interpreter::Options& options, DynamicProfile& profile)
      : ir_(ir), dims_(dims), args_(args), global_(global), options_(options),
        profile_(profile) {}

  void run_block(std::uint32_t ctaid_x, std::uint32_t ctaid_y) {
    BlockContext cta;
    cta.ctaid_x = ctaid_x;
    cta.ctaid_y = ctaid_y;
    cta.shared.assign(ir_.shared_bytes, 0);

    const std::uint64_t nthreads = dims_.threads_per_block();
    std::vector<ThreadState> threads(nthreads);
    for (std::uint32_t ty = 0; ty < dims_.block_y; ++ty) {
      for (std::uint32_t tx = 0; tx < dims_.block_x; ++tx) {
        ThreadState& t = threads[static_cast<std::size_t>(ty) * dims_.block_x + tx];
        t.regs.assign(ir_.num_regs == 0 ? 1 : ir_.num_regs, RegValue{});
        t.tid_x = tx;
        t.tid_y = ty;
        enter_block(t, 0);
      }
    }

    // Barrier-phase scheduling: run each runnable thread until it retires or
    // parks at a barrier; release the barrier when no runnable thread is left.
    while (true) {
      bool any_live = false;
      for (ThreadState& t : threads) {
        if (t.done || t.at_barrier) continue;
        run_thread(t, cta);
        any_live = true;
      }
      bool someone_waiting = false;
      for (ThreadState& t : threads) {
        if (!t.done && t.at_barrier) someone_waiting = true;
      }
      if (!someone_waiting) break;
      // All non-retired threads are parked: the barrier releases.
      for (ThreadState& t : threads) t.at_barrier = false;
      ++profile_.barriers_waited;
      (void)any_live;
    }
  }

 private:
  void enter_block(ThreadState& t, std::size_t block) {
    SIGVP_ASSERT(block < ir_.blocks.size(), "branch to nonexistent block");
    t.pc_block = block;
    t.pc_instr = 0;
    ++profile_.block_visits[block];
  }

  std::uint64_t special_value(const ThreadState& t, const BlockContext& cta,
                              SpecialReg sr) const {
    switch (sr) {
      case SpecialReg::kTidX: return t.tid_x;
      case SpecialReg::kTidY: return t.tid_y;
      case SpecialReg::kCtaidX: return cta.ctaid_x;
      case SpecialReg::kCtaidY: return cta.ctaid_y;
      case SpecialReg::kNtidX: return dims_.block_x;
      case SpecialReg::kNtidY: return dims_.block_y;
      case SpecialReg::kNctaidX: return dims_.grid_x;
      case SpecialReg::kNctaidY: return dims_.grid_y;
    }
    return 0;
  }

  void shared_check(const BlockContext& cta, std::uint64_t addr, std::size_t n) const {
    SIGVP_REQUIRE(addr + n <= cta.shared.size() && addr + n >= addr,
                  ir_.name + ": shared-memory access out of bounds");
  }

  template <typename T>
  T shared_read(const BlockContext& cta, std::uint64_t addr) const {
    shared_check(cta, addr, sizeof(T));
    T out;
    std::memcpy(&out, cta.shared.data() + addr, sizeof(T));
    return out;
  }

  template <typename T>
  void shared_write(BlockContext& cta, std::uint64_t addr, T value) {
    shared_check(cta, addr, sizeof(T));
    std::memcpy(cta.shared.data() + addr, &value, sizeof(T));
  }

  void note_global(std::uint64_t addr, std::uint32_t bytes, bool is_store) {
    if (is_store) {
      profile_.global_store_bytes += bytes;
    } else {
      profile_.global_load_bytes += bytes;
    }
    if (options_.mem_hook) options_.mem_hook(addr, bytes, is_store);
  }

  /// Runs `t` until it retires or parks at a barrier.
  void run_thread(ThreadState& t, BlockContext& cta) {
    while (!t.done && !t.at_barrier) {
      const BasicBlock& blk = ir_.blocks[t.pc_block];
      SIGVP_ASSERT(t.pc_instr < blk.instrs.size(), "pc ran past the end of a block");
      const Instr& in = blk.instrs[t.pc_instr];
      step(t, cta, in);
    }
  }

  void step(ThreadState& t, BlockContext& cta, const Instr& in) {
    if (in.op != Opcode::kNop) {
      profile_.instr_counts[instr_class(in.op)] += 1;
      if (is_sfu_op(in.op)) {
        if (is_sqrt_op(in.op)) {
          ++profile_.sqrt_instrs;
        } else {
          ++profile_.sfu_instrs;
        }
      }
    }
    ++t.instrs_executed;
    SIGVP_REQUIRE(t.instrs_executed <= options_.max_instrs_per_thread,
                  ir_.name + ": per-thread instruction budget exhausted");

    auto& r = t.regs;
    auto advance = [&] { ++t.pc_instr; };
    auto gaddr = [&] { return r[in.src0].bits + static_cast<std::uint64_t>(in.imm); };

    switch (in.op) {
      case Opcode::kNop: advance(); break;
      case Opcode::kMovImmI: r[in.dst].set_i(in.imm); advance(); break;
      case Opcode::kMovImmF32: r[in.dst].set_f32(static_cast<float>(in.fimm)); advance(); break;
      case Opcode::kMovImmF64: r[in.dst].set_f64(in.fimm); advance(); break;
      case Opcode::kMov: r[in.dst] = r[in.src0]; advance(); break;
      case Opcode::kReadSpecial:
        r[in.dst].bits = special_value(t, cta, static_cast<SpecialReg>(in.imm));
        advance();
        break;
      case Opcode::kLdParam:
        SIGVP_REQUIRE(static_cast<std::size_t>(in.imm) < args_.values.size(),
                      ir_.name + ": kernel launched with too few arguments");
        r[in.dst].bits = args_.values[static_cast<std::size_t>(in.imm)];
        advance();
        break;
      case Opcode::kSelect:
        r[in.dst] = r[in.src0].truthy() ? r[in.src1] : r[in.src2];
        advance();
        break;

      // --- integer ---------------------------------------------------------
      case Opcode::kAddI: r[in.dst].set_i(r[in.src0].i() + r[in.src1].i()); advance(); break;
      case Opcode::kSubI: r[in.dst].set_i(r[in.src0].i() - r[in.src1].i()); advance(); break;
      case Opcode::kMulI: r[in.dst].set_i(r[in.src0].i() * r[in.src1].i()); advance(); break;
      case Opcode::kDivI:
        SIGVP_REQUIRE(r[in.src1].i() != 0, ir_.name + ": integer division by zero");
        r[in.dst].set_i(r[in.src0].i() / r[in.src1].i());
        advance();
        break;
      case Opcode::kRemI:
        SIGVP_REQUIRE(r[in.src1].i() != 0, ir_.name + ": integer remainder by zero");
        r[in.dst].set_i(r[in.src0].i() % r[in.src1].i());
        advance();
        break;
      case Opcode::kMinI: r[in.dst].set_i(std::min(r[in.src0].i(), r[in.src1].i())); advance(); break;
      case Opcode::kMaxI: r[in.dst].set_i(std::max(r[in.src0].i(), r[in.src1].i())); advance(); break;
      case Opcode::kNegI: r[in.dst].set_i(-r[in.src0].i()); advance(); break;
      case Opcode::kAbsI: r[in.dst].set_i(std::abs(r[in.src0].i())); advance(); break;
      case Opcode::kSetLtI: r[in.dst].set_i(r[in.src0].i() < r[in.src1].i()); advance(); break;
      case Opcode::kSetLeI: r[in.dst].set_i(r[in.src0].i() <= r[in.src1].i()); advance(); break;
      case Opcode::kSetEqI: r[in.dst].set_i(r[in.src0].i() == r[in.src1].i()); advance(); break;
      case Opcode::kSetNeI: r[in.dst].set_i(r[in.src0].i() != r[in.src1].i()); advance(); break;
      case Opcode::kSetGtI: r[in.dst].set_i(r[in.src0].i() > r[in.src1].i()); advance(); break;
      case Opcode::kSetGeI: r[in.dst].set_i(r[in.src0].i() >= r[in.src1].i()); advance(); break;
      case Opcode::kCvtF32ToI: r[in.dst].set_i(static_cast<std::int64_t>(r[in.src0].f32())); advance(); break;
      case Opcode::kCvtF64ToI: r[in.dst].set_i(static_cast<std::int64_t>(r[in.src0].f64())); advance(); break;

      // --- bit -------------------------------------------------------------
      case Opcode::kAndB: r[in.dst].bits = r[in.src0].bits & r[in.src1].bits; advance(); break;
      case Opcode::kOrB: r[in.dst].bits = r[in.src0].bits | r[in.src1].bits; advance(); break;
      case Opcode::kXorB: r[in.dst].bits = r[in.src0].bits ^ r[in.src1].bits; advance(); break;
      case Opcode::kNotB: r[in.dst].bits = ~r[in.src0].bits; advance(); break;
      case Opcode::kShlB: r[in.dst].bits = r[in.src0].bits << (r[in.src1].bits & 63); advance(); break;
      case Opcode::kShrB: r[in.dst].bits = r[in.src0].bits >> (r[in.src1].bits & 63); advance(); break;
      case Opcode::kShrA: r[in.dst].set_i(r[in.src0].i() >> (r[in.src1].bits & 63)); advance(); break;

      // --- fp32 --------------------------------------------------------------
      case Opcode::kAddF32: r[in.dst].set_f32(r[in.src0].f32() + r[in.src1].f32()); advance(); break;
      case Opcode::kSubF32: r[in.dst].set_f32(r[in.src0].f32() - r[in.src1].f32()); advance(); break;
      case Opcode::kMulF32: r[in.dst].set_f32(r[in.src0].f32() * r[in.src1].f32()); advance(); break;
      case Opcode::kDivF32: r[in.dst].set_f32(r[in.src0].f32() / r[in.src1].f32()); advance(); break;
      case Opcode::kFmaF32:
        r[in.dst].set_f32(std::fma(r[in.src0].f32(), r[in.src1].f32(), r[in.src2].f32()));
        advance();
        break;
      case Opcode::kSqrtF32: r[in.dst].set_f32(std::sqrt(r[in.src0].f32())); advance(); break;
      case Opcode::kRsqrtF32: r[in.dst].set_f32(1.0f / std::sqrt(r[in.src0].f32())); advance(); break;
      case Opcode::kExpF32: r[in.dst].set_f32(std::exp(r[in.src0].f32())); advance(); break;
      case Opcode::kLogF32: r[in.dst].set_f32(std::log(r[in.src0].f32())); advance(); break;
      case Opcode::kSinF32: r[in.dst].set_f32(std::sin(r[in.src0].f32())); advance(); break;
      case Opcode::kCosF32: r[in.dst].set_f32(std::cos(r[in.src0].f32())); advance(); break;
      case Opcode::kMinF32: r[in.dst].set_f32(std::fmin(r[in.src0].f32(), r[in.src1].f32())); advance(); break;
      case Opcode::kMaxF32: r[in.dst].set_f32(std::fmax(r[in.src0].f32(), r[in.src1].f32())); advance(); break;
      case Opcode::kAbsF32: r[in.dst].set_f32(std::fabs(r[in.src0].f32())); advance(); break;
      case Opcode::kNegF32: r[in.dst].set_f32(-r[in.src0].f32()); advance(); break;
      case Opcode::kFloorF32: r[in.dst].set_f32(std::floor(r[in.src0].f32())); advance(); break;
      case Opcode::kSetLtF32: r[in.dst].set_i(r[in.src0].f32() < r[in.src1].f32()); advance(); break;
      case Opcode::kSetLeF32: r[in.dst].set_i(r[in.src0].f32() <= r[in.src1].f32()); advance(); break;
      case Opcode::kSetEqF32: r[in.dst].set_i(r[in.src0].f32() == r[in.src1].f32()); advance(); break;
      case Opcode::kSetGtF32: r[in.dst].set_i(r[in.src0].f32() > r[in.src1].f32()); advance(); break;
      case Opcode::kSetGeF32: r[in.dst].set_i(r[in.src0].f32() >= r[in.src1].f32()); advance(); break;
      case Opcode::kCvtIToF32: r[in.dst].set_f32(static_cast<float>(r[in.src0].i())); advance(); break;
      case Opcode::kCvtF64ToF32: r[in.dst].set_f32(static_cast<float>(r[in.src0].f64())); advance(); break;

      // --- fp64 --------------------------------------------------------------
      case Opcode::kAddF64: r[in.dst].set_f64(r[in.src0].f64() + r[in.src1].f64()); advance(); break;
      case Opcode::kSubF64: r[in.dst].set_f64(r[in.src0].f64() - r[in.src1].f64()); advance(); break;
      case Opcode::kMulF64: r[in.dst].set_f64(r[in.src0].f64() * r[in.src1].f64()); advance(); break;
      case Opcode::kDivF64: r[in.dst].set_f64(r[in.src0].f64() / r[in.src1].f64()); advance(); break;
      case Opcode::kFmaF64:
        r[in.dst].set_f64(std::fma(r[in.src0].f64(), r[in.src1].f64(), r[in.src2].f64()));
        advance();
        break;
      case Opcode::kSqrtF64: r[in.dst].set_f64(std::sqrt(r[in.src0].f64())); advance(); break;
      case Opcode::kExpF64: r[in.dst].set_f64(std::exp(r[in.src0].f64())); advance(); break;
      case Opcode::kLogF64: r[in.dst].set_f64(std::log(r[in.src0].f64())); advance(); break;
      case Opcode::kSinF64: r[in.dst].set_f64(std::sin(r[in.src0].f64())); advance(); break;
      case Opcode::kCosF64: r[in.dst].set_f64(std::cos(r[in.src0].f64())); advance(); break;
      case Opcode::kMinF64: r[in.dst].set_f64(std::fmin(r[in.src0].f64(), r[in.src1].f64())); advance(); break;
      case Opcode::kMaxF64: r[in.dst].set_f64(std::fmax(r[in.src0].f64(), r[in.src1].f64())); advance(); break;
      case Opcode::kAbsF64: r[in.dst].set_f64(std::fabs(r[in.src0].f64())); advance(); break;
      case Opcode::kNegF64: r[in.dst].set_f64(-r[in.src0].f64()); advance(); break;
      case Opcode::kFloorF64: r[in.dst].set_f64(std::floor(r[in.src0].f64())); advance(); break;
      case Opcode::kSetLtF64: r[in.dst].set_i(r[in.src0].f64() < r[in.src1].f64()); advance(); break;
      case Opcode::kSetLeF64: r[in.dst].set_i(r[in.src0].f64() <= r[in.src1].f64()); advance(); break;
      case Opcode::kSetEqF64: r[in.dst].set_i(r[in.src0].f64() == r[in.src1].f64()); advance(); break;
      case Opcode::kSetGtF64: r[in.dst].set_i(r[in.src0].f64() > r[in.src1].f64()); advance(); break;
      case Opcode::kSetGeF64: r[in.dst].set_i(r[in.src0].f64() >= r[in.src1].f64()); advance(); break;
      case Opcode::kCvtIToF64: r[in.dst].set_f64(static_cast<double>(r[in.src0].i())); advance(); break;
      case Opcode::kCvtF32ToF64: r[in.dst].set_f64(static_cast<double>(r[in.src0].f32())); advance(); break;

      // --- control flow ------------------------------------------------------
      case Opcode::kJmp:
        enter_block(t, static_cast<std::size_t>(in.imm));
        break;
      case Opcode::kBraZ:
        if (!r[in.src0].truthy()) {
          enter_block(t, static_cast<std::size_t>(in.imm));
        } else {
          enter_block(t, t.pc_block + 1);
        }
        break;
      case Opcode::kBraNZ:
        if (r[in.src0].truthy()) {
          enter_block(t, static_cast<std::size_t>(in.imm));
        } else {
          enter_block(t, t.pc_block + 1);
        }
        break;
      case Opcode::kRet:
        t.done = true;
        break;
      case Opcode::kBar:
        t.at_barrier = true;
        advance();
        break;

      // --- global memory -----------------------------------------------------
      case Opcode::kLdGlobalF32:
        note_global(gaddr(), 4, false);
        r[in.dst].set_f32(global_.read<float>(gaddr()));
        advance();
        break;
      case Opcode::kLdGlobalF64:
        note_global(gaddr(), 8, false);
        r[in.dst].set_f64(global_.read<double>(gaddr()));
        advance();
        break;
      case Opcode::kLdGlobalI32:
        note_global(gaddr(), 4, false);
        r[in.dst].set_i(global_.read<std::int32_t>(gaddr()));
        advance();
        break;
      case Opcode::kLdGlobalI64:
        note_global(gaddr(), 8, false);
        r[in.dst].set_i(global_.read<std::int64_t>(gaddr()));
        advance();
        break;
      case Opcode::kLdGlobalU8:
        note_global(gaddr(), 1, false);
        r[in.dst].bits = global_.read<std::uint8_t>(gaddr());
        advance();
        break;
      case Opcode::kStGlobalF32:
        note_global(gaddr(), 4, true);
        global_.write<float>(gaddr(), r[in.src1].f32());
        advance();
        break;
      case Opcode::kStGlobalF64:
        note_global(gaddr(), 8, true);
        global_.write<double>(gaddr(), r[in.src1].f64());
        advance();
        break;
      case Opcode::kStGlobalI32:
        note_global(gaddr(), 4, true);
        global_.write<std::int32_t>(gaddr(), static_cast<std::int32_t>(r[in.src1].i()));
        advance();
        break;
      case Opcode::kStGlobalI64:
        note_global(gaddr(), 8, true);
        global_.write<std::int64_t>(gaddr(), r[in.src1].i());
        advance();
        break;
      case Opcode::kStGlobalU8:
        note_global(gaddr(), 1, true);
        global_.write<std::uint8_t>(gaddr(), static_cast<std::uint8_t>(r[in.src1].bits));
        advance();
        break;
      case Opcode::kAtomAddGlobalI64: {
        note_global(gaddr(), 8, true);
        const std::int64_t old = global_.read<std::int64_t>(gaddr());
        global_.write<std::int64_t>(gaddr(), old + r[in.src1].i());
        r[in.dst].set_i(old);
        advance();
        break;
      }
      case Opcode::kAtomAddGlobalF32: {
        note_global(gaddr(), 4, true);
        const float old = global_.read<float>(gaddr());
        global_.write<float>(gaddr(), old + r[in.src1].f32());
        r[in.dst].set_f32(old);
        advance();
        break;
      }

      // --- shared memory -----------------------------------------------------
      case Opcode::kLdSharedF32: r[in.dst].set_f32(shared_read<float>(cta, gaddr())); advance(); break;
      case Opcode::kLdSharedF64: r[in.dst].set_f64(shared_read<double>(cta, gaddr())); advance(); break;
      case Opcode::kLdSharedI64: r[in.dst].set_i(shared_read<std::int64_t>(cta, gaddr())); advance(); break;
      case Opcode::kStSharedF32: shared_write<float>(cta, gaddr(), r[in.src1].f32()); advance(); break;
      case Opcode::kStSharedF64: shared_write<double>(cta, gaddr(), r[in.src1].f64()); advance(); break;
      case Opcode::kStSharedI64: shared_write<std::int64_t>(cta, gaddr(), r[in.src1].i()); advance(); break;
    }
  }

  const KernelIR& ir_;
  const LaunchDims& dims_;
  const KernelArgs& args_;
  AddressSpace& global_;
  const Interpreter::Options& options_;
  DynamicProfile& profile_;
};

}  // namespace

DynamicProfile Interpreter::run(const KernelIR& ir, const LaunchDims& dims,
                                const KernelArgs& args, AddressSpace& global,
                                const Options& options) {
  SIGVP_REQUIRE(dims.grid_x > 0 && dims.grid_y > 0 && dims.block_x > 0 && dims.block_y > 0,
                "launch dimensions must be positive");
  SIGVP_REQUIRE(args.values.size() >= ir.num_params,
                ir.name + ": launch provides fewer arguments than the kernel declares");

  DynamicProfile profile;
  profile.block_visits.assign(ir.blocks.size(), 0);

  Machine machine(ir, dims, args, global, options, profile);
  for (std::uint32_t by = 0; by < dims.grid_y; ++by) {
    for (std::uint32_t bx = 0; bx < dims.grid_x; ++bx) {
      machine.run_block(bx, by);
    }
  }
  return profile;
}

}  // namespace sigvp
