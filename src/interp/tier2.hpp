#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "interp/superinst.hpp"

namespace sigvp {

/// Process-wide Tier-2 counters. All fields except `lowered_entries` are
/// monotonically increasing totals; `lowered_entries` is the current level
/// of the lowered-program cache. `operator-` yields a delta (levels pass
/// through), mirroring LaunchCacheStats.
///
/// Every count is a pure function of the sim-domain launch stream: tier
/// decisions never look at wall-clock or worker interleaving, so two runs of
/// the same fleet produce identical deltas at any `--workers`.
struct Tier2Stats {
  std::uint64_t launches_tier2 = 0;    ///< launches executed on Tier 2
  std::uint64_t launches_warming = 0;  ///< supported+hot but inside warmup
  std::uint64_t launches_tier1 = 0;    ///< cold / unsupported / forced Tier 1
  std::uint64_t compiles = 0;          ///< distinct (fingerprint, stride) lowers
  std::uint64_t fused_superinsts = 0;  ///< static fused pairs across compiles
  std::uint64_t verify_launches = 0;   ///< Tier-2 launches cross-checked on Tier 1
  std::uint64_t evictions = 0;         ///< lowered-cache FIFO evictions
  std::uint64_t lowered_entries = 0;   ///< current lowered-cache size (level)

  Tier2Stats operator-(const Tier2Stats& base) const {
    Tier2Stats d;
    d.launches_tier2 = launches_tier2 - base.launches_tier2;
    d.launches_warming = launches_warming - base.launches_warming;
    d.launches_tier1 = launches_tier1 - base.launches_tier1;
    d.compiles = compiles - base.compiles;
    d.fused_superinsts = fused_superinsts - base.fused_superinsts;
    d.verify_launches = verify_launches - base.verify_launches;
    d.evictions = evictions - base.evictions;
    d.lowered_entries = lowered_entries;  // level, not a delta
    return d;
  }
  bool operator==(const Tier2Stats&) const = default;
};

/// Tier-2 execution engine: decides per launch whether to run the lowered
/// threaded code or fall back to the Tier-1 interpreter, and owns the
/// process-wide lowered-program cache (FIFO-bounded like the launch cache).
///
/// Promotion policy (DESIGN.md §15): a launch runs on Tier 2 iff
///   1. nothing forces Tier 1 (legacy mem_hook, strict barriers, global
///      atomics, unsupported opcodes, `SIGVP_TIER=1`), and
///   2. its static heat `total_threads × static_instrs` reaches the
///      threshold, and
///   3. at least `warmup` prior launches of the same (kernel fingerprint,
///      dims, args) key have been seen — a per-key ordinal, counted
///      process-wide under a lock, so the decision depends only on how many
///      identical launches preceded this one in the sim domain, never on
///      worker interleaving.
/// `SIGVP_TIER=2` skips (2) and (3); results are byte-exact either way.
class Tier2Engine {
 public:
  enum class Mode { kAuto, kForceTier1, kForceTier2 };

  /// Defaults; tests override via set_capacity / set_promotion.
  static constexpr std::size_t kDefaultMaxEntries = 1024;
  static constexpr std::size_t kDefaultMaxBytes = 64u << 20;
  static constexpr std::uint64_t kDefaultMinStaticHeat = 4096;
  static constexpr std::uint32_t kDefaultWarmupLaunches = 1;

  /// Singleton; first use reads SIGVP_TIER / SIGVP_TIER_VERIFY.
  static Tier2Engine& instance();

  Mode mode() const { return mode_.load(std::memory_order_relaxed); }
  void set_mode(Mode m) { mode_.store(m, std::memory_order_relaxed); }
  bool verify() const { return verify_.load(std::memory_order_relaxed); }
  void set_verify(bool v) { verify_.store(v, std::memory_order_relaxed); }

  void set_capacity(std::size_t max_entries, std::size_t max_bytes);
  void set_promotion(std::uint64_t min_static_heat, std::uint32_t warmup_launches);

  Tier2Stats stats() const;

  /// Drops the lowered cache, promotion ordinals, and all counters (mode,
  /// verify flag, capacity and promotion knobs are left as configured).
  void reset();

  /// Pure eligibility: would a warmed-up launch of `prog` at `dims` run on
  /// Tier 2 under the auto policy? No state is read or written beyond the
  /// configured thresholds — the per-scenario metrics counter uses this.
  bool eligible(const interp_detail::DecodedProgram& prog, const LaunchDims& dims) const;

  /// Launch-time tier decision. Returns the lowered program to execute, or
  /// nullptr to stay on Tier 1. Bumps the per-key warmup ordinal and the
  /// stats counters; lowers (and caches) the program on first promotion.
  std::shared_ptr<const interp_detail::Tier2Program> select(
      const KernelIR& ir, const interp_detail::DecodedProgram& prog,
      const LaunchDims& dims, const KernelArgs& args, bool has_mem_hook,
      bool strict_barriers);

  void note_verified() { verify_launches_.fetch_add(1, std::memory_order_relaxed); }

 private:
  Tier2Engine();

  std::shared_ptr<const interp_detail::Tier2Program> lowered_get(
      const KernelIR& ir, const interp_detail::DecodedProgram& prog, unsigned shift);

  std::atomic<Mode> mode_{Mode::kAuto};
  std::atomic<bool> verify_{false};

  std::atomic<std::uint64_t> launches_tier2_{0};
  std::atomic<std::uint64_t> launches_warming_{0};
  std::atomic<std::uint64_t> launches_tier1_{0};
  std::atomic<std::uint64_t> compiles_{0};
  std::atomic<std::uint64_t> fused_superinsts_{0};
  std::atomic<std::uint64_t> verify_launches_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> lowered_entries_{0};

  std::atomic<std::uint64_t> min_static_heat_{kDefaultMinStaticHeat};
  std::atomic<std::uint32_t> warmup_launches_{kDefaultWarmupLaunches};

  mutable std::mutex mutex_;  // guards ordinals_, lowered_, fifo_, capacity
  std::unordered_map<std::uint64_t, std::uint32_t> ordinals_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const interp_detail::Tier2Program>>
      lowered_;
  std::vector<std::uint64_t> fifo_;  // lowered-cache keys in insertion order
  std::size_t fifo_head_ = 0;
  std::size_t max_entries_ = kDefaultMaxEntries;
  std::size_t max_bytes_ = kDefaultMaxBytes;
  std::size_t cur_bytes_ = 0;
};

namespace interp_detail {

/// Per-thread Tier-2 state. Registers live in the block-wide SoA slab
/// (`slab[slot + lane]`), so the struct is just control state.
struct T2Thread {
  std::uint32_t pc = 0;
  std::uint32_t lane = 0;
  std::uint32_t tid_x = 0;
  std::uint32_t tid_y = 0;
  bool done = false;
  bool at_barrier = false;
  std::uint64_t instrs_executed = 0;
};

/// Reusable per-worker scratch for Tier-2 blocks (SoA slab + thread states +
/// shared-memory image), the Tier-2 twin of ExecArena.
struct Tier2Arena {
  std::vector<RegValue> slab;
  std::vector<T2Thread> threads;
  std::vector<std::uint8_t> shared;
};

/// Executes one thread block of the lowered program, byte-exact vs
/// run_decoded_block: same thread-serial barrier-phase scheduling, same λ
/// bumps, same hook-before-access order, same budget semantics (one tick per
/// micro-op, checked before the op body), same error behavior.
void run_tier2_block(const Tier2Program& prog2, const KernelIR& ir, const LaunchDims& dims,
                     const KernelArgs& args, AddressSpace& global, const MemAccessHook* hook,
                     std::uint64_t max_instrs_per_thread, Tier2Arena& arena,
                     DynamicProfile& profile, std::uint32_t ctaid_x, std::uint32_t ctaid_y);

/// SIGVP_TIER_VERIFY oracle: compares the Tier-2 run's profile and post-run
/// memory against a Tier-1 reference; throws ContractError naming the first
/// divergent field or memory window.
void check_tier_divergence(const KernelIR& ir, const DynamicProfile& ref,
                           const DynamicProfile& got, const AddressSpace& ref_mem,
                           const AddressSpace& got_mem);

}  // namespace interp_detail
}  // namespace sigvp
