#include "interp/decoded.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace sigvp::interp_detail {

namespace {

// ---------------------------------------------------------------------------
// Cold paths. Everything that throws is kept out of line so the dispatch
// loop stays branch-predictable and free of implicit string construction.
// ---------------------------------------------------------------------------

[[noreturn]] __attribute__((noinline, cold)) void throw_budget_exhausted(const ExecContext& m) {
  sigvp::detail::raise_contract_error(
      "precondition", "instrs_executed <= max_instrs_per_thread", __FILE__, __LINE__,
      m.ir->name + ": per-thread instruction budget exhausted");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_shared_oob(const ExecContext& m) {
  sigvp::detail::raise_contract_error("precondition", "shared access in bounds", __FILE__,
                                      __LINE__,
                                      m.ir->name + ": shared-memory access out of bounds");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_div_zero(const ExecContext& m) {
  sigvp::detail::raise_contract_error("precondition", "divisor != 0", __FILE__, __LINE__,
                                      m.ir->name + ": integer division by zero");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_rem_zero(const ExecContext& m) {
  sigvp::detail::raise_contract_error("precondition", "divisor != 0", __FILE__, __LINE__,
                                      m.ir->name + ": integer remainder by zero");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_bad_param(const ExecContext& m) {
  sigvp::detail::raise_contract_error(
      "precondition", "param index < argument count", __FILE__, __LINE__,
      m.ir->name + ": kernel launched with too few arguments");
}

[[noreturn]] __attribute__((noinline, cold)) void throw_bad_fallthrough(const ExecContext& m) {
  sigvp::detail::raise_contract_error("invariant", "fallthrough block exists", __FILE__,
                                      __LINE__, m.ir->name + ": branch to nonexistent block");
}

// ---------------------------------------------------------------------------
// Handlers. Each handler is one specialized opcode: operands are pre-widened
// slots, branch targets are pre-resolved flat pcs, FP immediates are
// pre-encoded register bit patterns. Handlers advance t.pc themselves.
// ---------------------------------------------------------------------------

#define SIGVP_OP(name) \
  void name(ExecContext& m, ThreadState& t, const DecodedInstr& d)

// Straight-line op: body computes into r[...], pc advances by one.
#define SIGVP_SIMPLE_OP(name, ...)                     \
  SIGVP_OP(name) {                                     \
    (void)m;                                           \
    RegValue* const r = t.regs;                        \
    (void)r;                                           \
    __VA_ARGS__;                                       \
    ++t.pc;                                            \
  }

SIGVP_SIMPLE_OP(op_nop, (void)d)
SIGVP_SIMPLE_OP(op_load_const, r[d.dst].bits = static_cast<std::uint64_t>(d.imm))
SIGVP_SIMPLE_OP(op_mov, r[d.dst] = r[d.src0])
SIGVP_SIMPLE_OP(op_select, r[d.dst] = r[d.src0].truthy() ? r[d.src1] : r[d.src2])

SIGVP_OP(op_read_special) {
  std::uint64_t v = 0;
  switch (static_cast<SpecialReg>(d.imm)) {
    case SpecialReg::kTidX: v = t.tid_x; break;
    case SpecialReg::kTidY: v = t.tid_y; break;
    case SpecialReg::kCtaidX: v = m.ctaid_x; break;
    case SpecialReg::kCtaidY: v = m.ctaid_y; break;
    case SpecialReg::kNtidX: v = m.dims.block_x; break;
    case SpecialReg::kNtidY: v = m.dims.block_y; break;
    case SpecialReg::kNctaidX: v = m.dims.grid_x; break;
    case SpecialReg::kNctaidY: v = m.dims.grid_y; break;
  }
  t.regs[d.dst].bits = v;
  ++t.pc;
}

SIGVP_OP(op_ld_param) {
  if (static_cast<std::size_t>(d.imm) >= m.argc) [[unlikely]] throw_bad_param(m);
  t.regs[d.dst].bits = m.argv[static_cast<std::size_t>(d.imm)];
  ++t.pc;
}

// --- integer -----------------------------------------------------------------
SIGVP_SIMPLE_OP(op_add_i, r[d.dst].set_i(r[d.src0].i() + r[d.src1].i()))
SIGVP_SIMPLE_OP(op_sub_i, r[d.dst].set_i(r[d.src0].i() - r[d.src1].i()))
SIGVP_SIMPLE_OP(op_mul_i, r[d.dst].set_i(r[d.src0].i() * r[d.src1].i()))
SIGVP_OP(op_div_i) {
  RegValue* const r = t.regs;
  if (r[d.src1].i() == 0) [[unlikely]] throw_div_zero(m);
  r[d.dst].set_i(r[d.src0].i() / r[d.src1].i());
  ++t.pc;
}
SIGVP_OP(op_rem_i) {
  RegValue* const r = t.regs;
  if (r[d.src1].i() == 0) [[unlikely]] throw_rem_zero(m);
  r[d.dst].set_i(r[d.src0].i() % r[d.src1].i());
  ++t.pc;
}
SIGVP_SIMPLE_OP(op_min_i, r[d.dst].set_i(std::min(r[d.src0].i(), r[d.src1].i())))
SIGVP_SIMPLE_OP(op_max_i, r[d.dst].set_i(std::max(r[d.src0].i(), r[d.src1].i())))
SIGVP_SIMPLE_OP(op_neg_i, r[d.dst].set_i(-r[d.src0].i()))
SIGVP_SIMPLE_OP(op_abs_i, r[d.dst].set_i(std::abs(r[d.src0].i())))
SIGVP_SIMPLE_OP(op_set_lt_i, r[d.dst].set_i(r[d.src0].i() < r[d.src1].i()))
SIGVP_SIMPLE_OP(op_set_le_i, r[d.dst].set_i(r[d.src0].i() <= r[d.src1].i()))
SIGVP_SIMPLE_OP(op_set_eq_i, r[d.dst].set_i(r[d.src0].i() == r[d.src1].i()))
SIGVP_SIMPLE_OP(op_set_ne_i, r[d.dst].set_i(r[d.src0].i() != r[d.src1].i()))
SIGVP_SIMPLE_OP(op_set_gt_i, r[d.dst].set_i(r[d.src0].i() > r[d.src1].i()))
SIGVP_SIMPLE_OP(op_set_ge_i, r[d.dst].set_i(r[d.src0].i() >= r[d.src1].i()))
SIGVP_SIMPLE_OP(op_cvt_f32_to_i, r[d.dst].set_i(static_cast<std::int64_t>(r[d.src0].f32())))
SIGVP_SIMPLE_OP(op_cvt_f64_to_i, r[d.dst].set_i(static_cast<std::int64_t>(r[d.src0].f64())))

// --- bit ---------------------------------------------------------------------
SIGVP_SIMPLE_OP(op_and_b, r[d.dst].bits = r[d.src0].bits & r[d.src1].bits)
SIGVP_SIMPLE_OP(op_or_b, r[d.dst].bits = r[d.src0].bits | r[d.src1].bits)
SIGVP_SIMPLE_OP(op_xor_b, r[d.dst].bits = r[d.src0].bits ^ r[d.src1].bits)
SIGVP_SIMPLE_OP(op_not_b, r[d.dst].bits = ~r[d.src0].bits)
SIGVP_SIMPLE_OP(op_shl_b, r[d.dst].bits = r[d.src0].bits << (r[d.src1].bits & 63))
SIGVP_SIMPLE_OP(op_shr_b, r[d.dst].bits = r[d.src0].bits >> (r[d.src1].bits & 63))
SIGVP_SIMPLE_OP(op_shr_a, r[d.dst].set_i(r[d.src0].i() >> (r[d.src1].bits & 63)))

// --- fp32 --------------------------------------------------------------------
SIGVP_SIMPLE_OP(op_add_f32, r[d.dst].set_f32(r[d.src0].f32() + r[d.src1].f32()))
SIGVP_SIMPLE_OP(op_sub_f32, r[d.dst].set_f32(r[d.src0].f32() - r[d.src1].f32()))
SIGVP_SIMPLE_OP(op_mul_f32, r[d.dst].set_f32(r[d.src0].f32() * r[d.src1].f32()))
SIGVP_SIMPLE_OP(op_div_f32, r[d.dst].set_f32(r[d.src0].f32() / r[d.src1].f32()))
SIGVP_SIMPLE_OP(op_fma_f32,
                r[d.dst].set_f32(std::fma(r[d.src0].f32(), r[d.src1].f32(), r[d.src2].f32())))
SIGVP_SIMPLE_OP(op_sqrt_f32, r[d.dst].set_f32(std::sqrt(r[d.src0].f32())))
SIGVP_SIMPLE_OP(op_rsqrt_f32, r[d.dst].set_f32(1.0f / std::sqrt(r[d.src0].f32())))
SIGVP_SIMPLE_OP(op_exp_f32, r[d.dst].set_f32(std::exp(r[d.src0].f32())))
SIGVP_SIMPLE_OP(op_log_f32, r[d.dst].set_f32(std::log(r[d.src0].f32())))
SIGVP_SIMPLE_OP(op_sin_f32, r[d.dst].set_f32(std::sin(r[d.src0].f32())))
SIGVP_SIMPLE_OP(op_cos_f32, r[d.dst].set_f32(std::cos(r[d.src0].f32())))
SIGVP_SIMPLE_OP(op_min_f32, r[d.dst].set_f32(std::fmin(r[d.src0].f32(), r[d.src1].f32())))
SIGVP_SIMPLE_OP(op_max_f32, r[d.dst].set_f32(std::fmax(r[d.src0].f32(), r[d.src1].f32())))
SIGVP_SIMPLE_OP(op_abs_f32, r[d.dst].set_f32(std::fabs(r[d.src0].f32())))
SIGVP_SIMPLE_OP(op_neg_f32, r[d.dst].set_f32(-r[d.src0].f32()))
SIGVP_SIMPLE_OP(op_floor_f32, r[d.dst].set_f32(std::floor(r[d.src0].f32())))
SIGVP_SIMPLE_OP(op_set_lt_f32, r[d.dst].set_i(r[d.src0].f32() < r[d.src1].f32()))
SIGVP_SIMPLE_OP(op_set_le_f32, r[d.dst].set_i(r[d.src0].f32() <= r[d.src1].f32()))
SIGVP_SIMPLE_OP(op_set_eq_f32, r[d.dst].set_i(r[d.src0].f32() == r[d.src1].f32()))
SIGVP_SIMPLE_OP(op_set_gt_f32, r[d.dst].set_i(r[d.src0].f32() > r[d.src1].f32()))
SIGVP_SIMPLE_OP(op_set_ge_f32, r[d.dst].set_i(r[d.src0].f32() >= r[d.src1].f32()))
SIGVP_SIMPLE_OP(op_cvt_i_to_f32, r[d.dst].set_f32(static_cast<float>(r[d.src0].i())))
SIGVP_SIMPLE_OP(op_cvt_f64_to_f32, r[d.dst].set_f32(static_cast<float>(r[d.src0].f64())))

// --- fp64 --------------------------------------------------------------------
SIGVP_SIMPLE_OP(op_add_f64, r[d.dst].set_f64(r[d.src0].f64() + r[d.src1].f64()))
SIGVP_SIMPLE_OP(op_sub_f64, r[d.dst].set_f64(r[d.src0].f64() - r[d.src1].f64()))
SIGVP_SIMPLE_OP(op_mul_f64, r[d.dst].set_f64(r[d.src0].f64() * r[d.src1].f64()))
SIGVP_SIMPLE_OP(op_div_f64, r[d.dst].set_f64(r[d.src0].f64() / r[d.src1].f64()))
SIGVP_SIMPLE_OP(op_fma_f64,
                r[d.dst].set_f64(std::fma(r[d.src0].f64(), r[d.src1].f64(), r[d.src2].f64())))
SIGVP_SIMPLE_OP(op_sqrt_f64, r[d.dst].set_f64(std::sqrt(r[d.src0].f64())))
SIGVP_SIMPLE_OP(op_exp_f64, r[d.dst].set_f64(std::exp(r[d.src0].f64())))
SIGVP_SIMPLE_OP(op_log_f64, r[d.dst].set_f64(std::log(r[d.src0].f64())))
SIGVP_SIMPLE_OP(op_sin_f64, r[d.dst].set_f64(std::sin(r[d.src0].f64())))
SIGVP_SIMPLE_OP(op_cos_f64, r[d.dst].set_f64(std::cos(r[d.src0].f64())))
SIGVP_SIMPLE_OP(op_min_f64, r[d.dst].set_f64(std::fmin(r[d.src0].f64(), r[d.src1].f64())))
SIGVP_SIMPLE_OP(op_max_f64, r[d.dst].set_f64(std::fmax(r[d.src0].f64(), r[d.src1].f64())))
SIGVP_SIMPLE_OP(op_abs_f64, r[d.dst].set_f64(std::fabs(r[d.src0].f64())))
SIGVP_SIMPLE_OP(op_neg_f64, r[d.dst].set_f64(-r[d.src0].f64()))
SIGVP_SIMPLE_OP(op_floor_f64, r[d.dst].set_f64(std::floor(r[d.src0].f64())))
SIGVP_SIMPLE_OP(op_set_lt_f64, r[d.dst].set_i(r[d.src0].f64() < r[d.src1].f64()))
SIGVP_SIMPLE_OP(op_set_le_f64, r[d.dst].set_i(r[d.src0].f64() <= r[d.src1].f64()))
SIGVP_SIMPLE_OP(op_set_eq_f64, r[d.dst].set_i(r[d.src0].f64() == r[d.src1].f64()))
SIGVP_SIMPLE_OP(op_set_gt_f64, r[d.dst].set_i(r[d.src0].f64() > r[d.src1].f64()))
SIGVP_SIMPLE_OP(op_set_ge_f64, r[d.dst].set_i(r[d.src0].f64() >= r[d.src1].f64()))
SIGVP_SIMPLE_OP(op_cvt_i_to_f64, r[d.dst].set_f64(static_cast<double>(r[d.src0].i())))
SIGVP_SIMPLE_OP(op_cvt_f32_to_f64, r[d.dst].set_f64(static_cast<double>(r[d.src0].f32())))

// --- control flow ------------------------------------------------------------

inline void take_branch(ExecContext& m, ThreadState& t, std::uint32_t pc, std::uint32_t block) {
  t.pc = pc;
  ++m.block_visits[block];
}

SIGVP_OP(op_jmp) { take_branch(m, t, d.target_pc, d.target_block); }

SIGVP_OP(op_bra_z) {
  if (!t.regs[d.src0].truthy()) {
    take_branch(m, t, d.target_pc, d.target_block);
  } else {
    if (d.fall_pc == kInvalidPc) [[unlikely]] throw_bad_fallthrough(m);
    take_branch(m, t, d.fall_pc, d.fall_block);
  }
}

SIGVP_OP(op_bra_nz) {
  if (t.regs[d.src0].truthy()) {
    take_branch(m, t, d.target_pc, d.target_block);
  } else {
    if (d.fall_pc == kInvalidPc) [[unlikely]] throw_bad_fallthrough(m);
    take_branch(m, t, d.fall_pc, d.fall_block);
  }
}

SIGVP_OP(op_ret) {
  (void)m;
  (void)d;
  t.done = true;
}

SIGVP_OP(op_bar) {
  (void)m;
  (void)d;
  t.at_barrier = true;
  ++t.pc;
}

// --- global memory -----------------------------------------------------------
// The address computation is hoisted: one gaddr per access (the tree-walking
// interpreter computed it twice, once for the profile hook and once for the
// access). The observer hook fires before the access, preserving the
// original's hook-then-bounds-check order.

#define SIGVP_GADDR() (t.regs[d.src0].bits + static_cast<std::uint64_t>(d.imm))

#define SIGVP_LD_GLOBAL(name, type, assign)                              \
  SIGVP_OP(name) {                                                       \
    const std::uint64_t addr = SIGVP_GADDR();                            \
    if (m.hook) (*m.hook)(addr, sizeof(type), false);                    \
    const type v = m.global->read<type>(addr);                           \
    assign;                                                              \
    ++t.pc;                                                              \
  }

#define SIGVP_ST_GLOBAL(name, type, value)                               \
  SIGVP_OP(name) {                                                       \
    const std::uint64_t addr = SIGVP_GADDR();                            \
    if (m.hook) (*m.hook)(addr, sizeof(type), true);                     \
    m.global->write<type>(addr, (value));                                \
    ++t.pc;                                                              \
  }

SIGVP_LD_GLOBAL(op_ld_global_f32, float, t.regs[d.dst].set_f32(v))
SIGVP_LD_GLOBAL(op_ld_global_f64, double, t.regs[d.dst].set_f64(v))
SIGVP_LD_GLOBAL(op_ld_global_i32, std::int32_t, t.regs[d.dst].set_i(v))
SIGVP_LD_GLOBAL(op_ld_global_i64, std::int64_t, t.regs[d.dst].set_i(v))
SIGVP_LD_GLOBAL(op_ld_global_u8, std::uint8_t, t.regs[d.dst].bits = v)
SIGVP_ST_GLOBAL(op_st_global_f32, float, t.regs[d.src1].f32())
SIGVP_ST_GLOBAL(op_st_global_f64, double, t.regs[d.src1].f64())
SIGVP_ST_GLOBAL(op_st_global_i32, std::int32_t, static_cast<std::int32_t>(t.regs[d.src1].i()))
SIGVP_ST_GLOBAL(op_st_global_i64, std::int64_t, t.regs[d.src1].i())
SIGVP_ST_GLOBAL(op_st_global_u8, std::uint8_t, static_cast<std::uint8_t>(t.regs[d.src1].bits))

SIGVP_OP(op_atom_add_global_i64) {
  const std::uint64_t addr = SIGVP_GADDR();
  if (m.hook) (*m.hook)(addr, 8, true);
  const std::int64_t old = m.global->read<std::int64_t>(addr);
  m.global->write<std::int64_t>(addr, old + t.regs[d.src1].i());
  t.regs[d.dst].set_i(old);
  ++t.pc;
}

SIGVP_OP(op_atom_add_global_f32) {
  const std::uint64_t addr = SIGVP_GADDR();
  if (m.hook) (*m.hook)(addr, 4, true);
  const float old = m.global->read<float>(addr);
  m.global->write<float>(addr, old + t.regs[d.src1].f32());
  t.regs[d.dst].set_f32(old);
  ++t.pc;
}

// --- shared memory -----------------------------------------------------------

#define SIGVP_LD_SHARED(name, type, assign)                                           \
  SIGVP_OP(name) {                                                                    \
    const std::uint64_t addr = SIGVP_GADDR();                                         \
    if (addr + sizeof(type) > m.shared_size || addr + sizeof(type) < addr)            \
        [[unlikely]] throw_shared_oob(m);                                             \
    type v;                                                                           \
    std::memcpy(&v, m.shared + addr, sizeof(type));                                   \
    assign;                                                                           \
    ++t.pc;                                                                           \
  }

#define SIGVP_ST_SHARED(name, type, value)                                            \
  SIGVP_OP(name) {                                                                    \
    const std::uint64_t addr = SIGVP_GADDR();                                         \
    if (addr + sizeof(type) > m.shared_size || addr + sizeof(type) < addr)            \
        [[unlikely]] throw_shared_oob(m);                                             \
    const type v = (value);                                                           \
    std::memcpy(m.shared + addr, &v, sizeof(type));                                   \
    ++t.pc;                                                                           \
  }

SIGVP_LD_SHARED(op_ld_shared_f32, float, t.regs[d.dst].set_f32(v))
SIGVP_LD_SHARED(op_ld_shared_f64, double, t.regs[d.dst].set_f64(v))
SIGVP_LD_SHARED(op_ld_shared_i64, std::int64_t, t.regs[d.dst].set_i(v))
SIGVP_ST_SHARED(op_st_shared_f32, float, t.regs[d.src1].f32())
SIGVP_ST_SHARED(op_st_shared_f64, double, t.regs[d.src1].f64())
SIGVP_ST_SHARED(op_st_shared_i64, std::int64_t, t.regs[d.src1].i())

#undef SIGVP_GADDR
#undef SIGVP_LD_GLOBAL
#undef SIGVP_ST_GLOBAL
#undef SIGVP_LD_SHARED
#undef SIGVP_ST_SHARED
#undef SIGVP_SIMPLE_OP
#undef SIGVP_OP

InstrFn handler_for(Opcode op) {
  switch (op) {
    case Opcode::kNop: return op_nop;
    case Opcode::kMovImmI:
    case Opcode::kMovImmF32:
    case Opcode::kMovImmF64: return op_load_const;
    case Opcode::kMov: return op_mov;
    case Opcode::kReadSpecial: return op_read_special;
    case Opcode::kLdParam: return op_ld_param;
    case Opcode::kSelect: return op_select;

    case Opcode::kAddI: return op_add_i;
    case Opcode::kSubI: return op_sub_i;
    case Opcode::kMulI: return op_mul_i;
    case Opcode::kDivI: return op_div_i;
    case Opcode::kRemI: return op_rem_i;
    case Opcode::kMinI: return op_min_i;
    case Opcode::kMaxI: return op_max_i;
    case Opcode::kNegI: return op_neg_i;
    case Opcode::kAbsI: return op_abs_i;
    case Opcode::kSetLtI: return op_set_lt_i;
    case Opcode::kSetLeI: return op_set_le_i;
    case Opcode::kSetEqI: return op_set_eq_i;
    case Opcode::kSetNeI: return op_set_ne_i;
    case Opcode::kSetGtI: return op_set_gt_i;
    case Opcode::kSetGeI: return op_set_ge_i;
    case Opcode::kCvtF32ToI: return op_cvt_f32_to_i;
    case Opcode::kCvtF64ToI: return op_cvt_f64_to_i;

    case Opcode::kAndB: return op_and_b;
    case Opcode::kOrB: return op_or_b;
    case Opcode::kXorB: return op_xor_b;
    case Opcode::kNotB: return op_not_b;
    case Opcode::kShlB: return op_shl_b;
    case Opcode::kShrB: return op_shr_b;
    case Opcode::kShrA: return op_shr_a;

    case Opcode::kAddF32: return op_add_f32;
    case Opcode::kSubF32: return op_sub_f32;
    case Opcode::kMulF32: return op_mul_f32;
    case Opcode::kDivF32: return op_div_f32;
    case Opcode::kFmaF32: return op_fma_f32;
    case Opcode::kSqrtF32: return op_sqrt_f32;
    case Opcode::kRsqrtF32: return op_rsqrt_f32;
    case Opcode::kExpF32: return op_exp_f32;
    case Opcode::kLogF32: return op_log_f32;
    case Opcode::kSinF32: return op_sin_f32;
    case Opcode::kCosF32: return op_cos_f32;
    case Opcode::kMinF32: return op_min_f32;
    case Opcode::kMaxF32: return op_max_f32;
    case Opcode::kAbsF32: return op_abs_f32;
    case Opcode::kNegF32: return op_neg_f32;
    case Opcode::kFloorF32: return op_floor_f32;
    case Opcode::kSetLtF32: return op_set_lt_f32;
    case Opcode::kSetLeF32: return op_set_le_f32;
    case Opcode::kSetEqF32: return op_set_eq_f32;
    case Opcode::kSetGtF32: return op_set_gt_f32;
    case Opcode::kSetGeF32: return op_set_ge_f32;
    case Opcode::kCvtIToF32: return op_cvt_i_to_f32;
    case Opcode::kCvtF64ToF32: return op_cvt_f64_to_f32;

    case Opcode::kAddF64: return op_add_f64;
    case Opcode::kSubF64: return op_sub_f64;
    case Opcode::kMulF64: return op_mul_f64;
    case Opcode::kDivF64: return op_div_f64;
    case Opcode::kFmaF64: return op_fma_f64;
    case Opcode::kSqrtF64: return op_sqrt_f64;
    case Opcode::kExpF64: return op_exp_f64;
    case Opcode::kLogF64: return op_log_f64;
    case Opcode::kSinF64: return op_sin_f64;
    case Opcode::kCosF64: return op_cos_f64;
    case Opcode::kMinF64: return op_min_f64;
    case Opcode::kMaxF64: return op_max_f64;
    case Opcode::kAbsF64: return op_abs_f64;
    case Opcode::kNegF64: return op_neg_f64;
    case Opcode::kFloorF64: return op_floor_f64;
    case Opcode::kSetLtF64: return op_set_lt_f64;
    case Opcode::kSetLeF64: return op_set_le_f64;
    case Opcode::kSetEqF64: return op_set_eq_f64;
    case Opcode::kSetGtF64: return op_set_gt_f64;
    case Opcode::kSetGeF64: return op_set_ge_f64;
    case Opcode::kCvtIToF64: return op_cvt_i_to_f64;
    case Opcode::kCvtF32ToF64: return op_cvt_f32_to_f64;

    case Opcode::kJmp: return op_jmp;
    case Opcode::kBraZ: return op_bra_z;
    case Opcode::kBraNZ: return op_bra_nz;
    case Opcode::kRet: return op_ret;
    case Opcode::kBar: return op_bar;

    case Opcode::kLdGlobalF32: return op_ld_global_f32;
    case Opcode::kLdGlobalF64: return op_ld_global_f64;
    case Opcode::kLdGlobalI32: return op_ld_global_i32;
    case Opcode::kLdGlobalI64: return op_ld_global_i64;
    case Opcode::kLdGlobalU8: return op_ld_global_u8;
    case Opcode::kStGlobalF32: return op_st_global_f32;
    case Opcode::kStGlobalF64: return op_st_global_f64;
    case Opcode::kStGlobalI32: return op_st_global_i32;
    case Opcode::kStGlobalI64: return op_st_global_i64;
    case Opcode::kStGlobalU8: return op_st_global_u8;
    case Opcode::kAtomAddGlobalI64: return op_atom_add_global_i64;
    case Opcode::kAtomAddGlobalF32: return op_atom_add_global_f32;

    case Opcode::kLdSharedF32: return op_ld_shared_f32;
    case Opcode::kLdSharedF64: return op_ld_shared_f64;
    case Opcode::kLdSharedI64: return op_ld_shared_i64;
    case Opcode::kStSharedF32: return op_st_shared_f32;
    case Opcode::kStSharedF64: return op_st_shared_f64;
    case Opcode::kStSharedI64: return op_st_shared_i64;
  }
  return op_nop;
}

void fnv1a(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
}

/// Runs `t` until it retires or parks at a barrier. The budget check is a
/// single counter compare; all error formatting lives on cold paths.
inline void run_thread(ExecContext& m, ThreadState& t, std::uint64_t max_instrs) {
  const DecodedInstr* const code = m.code;
  while (!t.done && !t.at_barrier) {
    const DecodedInstr& d = code[t.pc];
    if (++t.instrs_executed > max_instrs) [[unlikely]] throw_budget_exhausted(m);
    d.fn(m, t, d);
  }
}

[[noreturn]] __attribute__((noinline, cold)) void throw_divergent_barrier(
    const KernelIR& ir, std::uint32_t ctaid_x, std::uint32_t ctaid_y, std::size_t retired,
    std::size_t waiting) {
  throw ContractError(
      "strict barrier mode: kernel '" + ir.name + "' released a barrier in block (" +
      std::to_string(ctaid_x) + "," + std::to_string(ctaid_y) + ") while " +
      std::to_string(retired) + " thread(s) had already retired and " +
      std::to_string(waiting) +
      " were waiting — some threads exited before reaching bar.sync (divergent exit)");
}

}  // namespace

std::uint64_t kernel_fingerprint(const KernelIR& ir) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  fnv1a(h, ir.num_params);
  fnv1a(h, ir.num_regs);
  fnv1a(h, ir.shared_bytes);
  fnv1a(h, ir.blocks.size());
  for (const BasicBlock& b : ir.blocks) {
    fnv1a(h, b.instrs.size());
    for (const Instr& in : b.instrs) {
      fnv1a(h, static_cast<std::uint64_t>(in.op) | (static_cast<std::uint64_t>(in.dst) << 8) |
                   (static_cast<std::uint64_t>(in.src0) << 16) |
                   (static_cast<std::uint64_t>(in.src1) << 24) |
                   (static_cast<std::uint64_t>(in.src2) << 32));
      fnv1a(h, std::bit_cast<std::uint64_t>(in.imm));
      fnv1a(h, std::bit_cast<std::uint64_t>(in.fimm));
    }
  }
  return h;
}

std::shared_ptr<const DecodedProgram> decode_kernel(const KernelIR& ir) {
  SIGVP_REQUIRE(!ir.blocks.empty(), ir.name + ": kernel has no blocks");

  auto prog = std::make_shared<DecodedProgram>();
  prog->num_regs = ir.num_regs == 0 ? 1 : ir.num_regs;
  prog->fingerprint = kernel_fingerprint(ir);

  // Pass 1: flatten, record block boundaries and static per-block summaries.
  prog->blocks.resize(ir.blocks.size());
  std::size_t total = 0;
  for (const BasicBlock& b : ir.blocks) total += b.instrs.size();
  prog->code.reserve(total);

  for (std::size_t bi = 0; bi < ir.blocks.size(); ++bi) {
    const BasicBlock& b = ir.blocks[bi];
    DecodedBlock& db = prog->blocks[bi];
    db.first_pc = static_cast<std::uint32_t>(prog->code.size());
    db.num_instrs = static_cast<std::uint32_t>(b.instrs.size());
    db.mu = b.static_counts();
    SIGVP_REQUIRE(!b.instrs.empty() && is_terminator(b.instrs.back().op),
                  ir.name + ": pc ran past the end of a block");
    for (const Instr& in : b.instrs) {
      DecodedInstr d;
      d.op = in.op;
      d.fn = handler_for(in.op);
      d.dst = in.dst;
      d.src0 = in.src0;
      d.src1 = in.src1;
      d.src2 = in.src2;
      d.imm = in.imm;
      switch (in.op) {
        // Pre-encode FP immediates as destination bit patterns so the three
        // kMovImm* opcodes share one handler.
        case Opcode::kMovImmF32:
          d.imm = static_cast<std::int64_t>(
              std::bit_cast<std::uint32_t>(static_cast<float>(in.fimm)));
          break;
        case Opcode::kMovImmF64:
          d.imm = std::bit_cast<std::int64_t>(in.fimm);
          break;
        case Opcode::kAtomAddGlobalI64:
        case Opcode::kAtomAddGlobalF32:
          prog->has_global_atomics = true;
          break;
        default:
          break;
      }
      if (is_sfu_op(in.op)) {
        if (is_sqrt_op(in.op)) {
          ++db.sqrt_instrs;
        } else {
          ++db.sfu_instrs;
        }
      }
      if (is_global_memory_op(in.op)) {
        const std::uint32_t width = memory_width_bytes(in.op);
        switch (in.op) {
          case Opcode::kLdGlobalF32:
          case Opcode::kLdGlobalF64:
          case Opcode::kLdGlobalI32:
          case Opcode::kLdGlobalI64:
          case Opcode::kLdGlobalU8:
            db.global_load_bytes += width;
            break;
          default:  // stores and atomics count as store traffic
            db.global_store_bytes += width;
            break;
        }
      }
      prog->code.push_back(d);
    }
  }

  // Pass 2: resolve branch targets to flat pcs.
  const auto nblocks = ir.blocks.size();
  for (std::size_t bi = 0; bi < nblocks; ++bi) {
    const DecodedBlock& db = prog->blocks[bi];
    for (std::uint32_t k = 0; k < db.num_instrs; ++k) {
      DecodedInstr& d = prog->code[db.first_pc + k];
      if (!is_branch_with_target(d.op)) continue;
      const auto target = static_cast<std::size_t>(d.imm);
      SIGVP_REQUIRE(target < nblocks, ir.name + ": branch to nonexistent block");
      d.target_pc = prog->blocks[target].first_pc;
      d.target_block = static_cast<std::uint32_t>(target);
      if (bi + 1 < nblocks) {
        d.fall_pc = prog->blocks[bi + 1].first_pc;
        d.fall_block = static_cast<std::uint32_t>(bi + 1);
      } else {
        d.fall_pc = kInvalidPc;
        d.fall_block = 0;
      }
    }
  }
  return prog;
}

DecodedCache& DecodedCache::instance() {
  static DecodedCache cache;
  return cache;
}

std::shared_ptr<const DecodedProgram> DecodedCache::get(const KernelIR& ir) {
  const std::uint64_t fp = kernel_fingerprint(ir);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(&ir);
    if (it != map_.end() && it->second->fingerprint == fp) return it->second;
  }
  // Decode outside the lock: concurrent launches of distinct kernels decode
  // in parallel; a rare duplicate decode of the same kernel is harmless.
  std::shared_ptr<const DecodedProgram> prog = decode_kernel(ir);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(&ir);
  if (it != map_.end()) {
    // Stale (or racing) entry: replace in place, keeping the key's original
    // FIFO position so eviction order stays a function of first insertion.
    cur_bytes_ -= program_bytes(*it->second);
    it->second = prog;
  } else {
    map_.emplace(&ir, prog);
    fifo_.push_back(&ir);
  }
  cur_bytes_ += program_bytes(*prog);
  evict_to_cap_locked();
  return prog;
}

void DecodedCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  fifo_.clear();
  fifo_head_ = 0;
  cur_bytes_ = 0;
}

std::size_t DecodedCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::uint64_t DecodedCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

void DecodedCache::set_capacity(std::size_t max_entries, std::size_t max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_entries_ = max_entries;
  max_bytes_ = max_bytes;
  evict_to_cap_locked();
}

std::size_t DecodedCache::program_bytes(const DecodedProgram& prog) {
  return prog.code.size() * sizeof(DecodedInstr) +
         prog.blocks.size() * sizeof(DecodedBlock);
}

void DecodedCache::evict_to_cap_locked() {
  while (map_.size() > max_entries_ || cur_bytes_ > max_bytes_) {
    if (fifo_head_ >= fifo_.size()) break;  // invariant: never reached
    const KernelIR* victim = fifo_[fifo_head_++];
    auto it = map_.find(victim);
    if (it != map_.end()) {
      cur_bytes_ -= program_bytes(*it->second);
      map_.erase(it);
      ++evictions_;
    }
  }
  // Amortized compaction of the consumed FIFO prefix.
  if (fifo_head_ > 64 && fifo_head_ * 2 > fifo_.size()) {
    fifo_.erase(fifo_.begin(), fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
    fifo_head_ = 0;
  }
}

void run_decoded_block(const DecodedProgram& prog, const KernelIR& ir, const LaunchDims& dims,
                       const KernelArgs& args, AddressSpace& global, const MemAccessHook* hook,
                       std::uint64_t max_instrs_per_thread, bool strict_barriers,
                       ExecArena& arena, DynamicProfile& profile, std::uint32_t ctaid_x,
                       std::uint32_t ctaid_y) {
  const std::uint64_t nthreads = dims.threads_per_block();
  const std::uint32_t nregs = prog.num_regs;

  // Arena reuse: these assignments recycle the previous block's capacity.
  arena.threads.resize(static_cast<std::size_t>(nthreads));
  arena.regs.assign(static_cast<std::size_t>(nthreads) * nregs, RegValue{});
  arena.shared.assign(ir.shared_bytes, 0);

  ExecContext m;
  m.code = prog.code.data();
  m.dims = dims;
  m.argv = args.values.data();
  m.argc = args.values.size();
  m.global = &global;
  m.hook = hook;
  m.block_visits = profile.block_visits.data();
  m.shared = arena.shared.data();
  m.shared_size = arena.shared.size();
  m.ctaid_x = ctaid_x;
  m.ctaid_y = ctaid_y;
  m.ir = &ir;

  for (std::uint32_t ty = 0; ty < dims.block_y; ++ty) {
    for (std::uint32_t tx = 0; tx < dims.block_x; ++tx) {
      ThreadState& t = arena.threads[static_cast<std::size_t>(ty) * dims.block_x + tx];
      t.regs = arena.regs.data() +
               (static_cast<std::size_t>(ty) * dims.block_x + tx) * nregs;
      t.pc = 0;  // entry block starts at flat pc 0
      t.done = false;
      t.at_barrier = false;
      t.tid_x = tx;
      t.tid_y = ty;
      t.instrs_executed = 0;
      ++m.block_visits[0];  // λ of the entry block, one per thread
    }
  }

  // Barrier-phase scheduling: run each runnable thread until it retires or
  // parks at a barrier; release the barrier when no runnable thread is left.
  while (true) {
    for (ThreadState& t : arena.threads) {
      if (t.done || t.at_barrier) continue;
      run_thread(m, t, max_instrs_per_thread);
    }
    std::size_t waiting = 0;
    std::size_t retired = 0;
    for (const ThreadState& t : arena.threads) {
      if (t.done) {
        ++retired;
      } else if (t.at_barrier) {
        ++waiting;
      }
    }
    if (waiting == 0) break;
    // All non-retired threads are parked: the barrier releases. CUDA's
    // exited-thread rule makes this legal, but a kernel where some threads
    // retire before a barrier their siblings still reach is usually a
    // divergent-exit bug — strict mode turns the silent release into a
    // diagnostic instead of masking it.
    if (strict_barriers && retired > 0) {
      throw_divergent_barrier(ir, ctaid_x, ctaid_y, retired, waiting);
    }
    for (ThreadState& t : arena.threads) t.at_barrier = false;
    ++profile.barriers_waited;
  }
}

}  // namespace sigvp::interp_detail
