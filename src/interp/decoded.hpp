#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "interp/interpreter.hpp"
#include "interp/launch.hpp"
#include "interp/profile.hpp"
#include "ir/program.hpp"
#include "mem/address_space.hpp"

namespace sigvp::interp_detail {

struct DecodedInstr;
struct ExecContext;
struct ThreadState;

/// Specialized handler for one pre-decoded instruction. Handlers advance
/// `t.pc` themselves (branches jump, everything else increments).
using InstrFn = void (*)(ExecContext&, ThreadState&, const DecodedInstr&);

/// Flat-pc sentinel for "fallthrough past the last block" — taken paths are
/// resolved at decode time, but a conditional terminator in the lexically
/// last block has no fallthrough successor; executing that path is the same
/// "branch to nonexistent block" invariant the tree-walking interpreter
/// raised lazily, so it stays a runtime error.
inline constexpr std::uint32_t kInvalidPc = 0xFFFFFFFFu;

/// One pre-decoded instruction: a specialized handler plus widened operand
/// slots and fully resolved control-flow targets. Floating-point immediates
/// are pre-encoded into `imm` as the destination register's bit pattern, so
/// kMovImmI/kMovImmF32/kMovImmF64 all collapse into one "load constant bits"
/// handler and `fimm` disappears from the hot image entirely.
struct DecodedInstr {
  InstrFn fn = nullptr;
  std::uint16_t dst = 0;
  std::uint16_t src0 = 0;
  std::uint16_t src1 = 0;
  std::uint16_t src2 = 0;
  std::int64_t imm = 0;           // immediate bits / param index / byte offset / SpecialReg
  std::uint32_t target_pc = 0;    // flat pc of the taken branch target
  std::uint32_t target_block = 0; // block id of the taken target (λ accounting)
  std::uint32_t fall_pc = 0;      // flat pc of the not-taken successor (kInvalidPc if none)
  std::uint32_t fall_block = 0;   // block id of the not-taken successor
  Opcode op = Opcode::kNop;       // retained for scans and diagnostics
};

/// Per-block static summaries hoisted out of the execution loop. The
/// interpreter's determinism contract (DynamicProfile == λ·µ exactly, see
/// interp/profile.hpp) means every per-class/per-byte counter can be
/// reconstructed from λ after the run instead of being bumped per
/// instruction — the single biggest win of the pre-decoded design.
struct DecodedBlock {
  std::uint32_t first_pc = 0;     // flat pc of the block's first instruction
  std::uint32_t num_instrs = 0;
  ClassCounts mu;                 // static per-class counts (kNop excluded)
  std::uint64_t sfu_instrs = 0;   // exp/log/sin/cos (libm-priced)
  std::uint64_t sqrt_instrs = 0;  // sqrt/rsqrt (cheap on a CPU)
  std::uint64_t global_load_bytes = 0;
  std::uint64_t global_store_bytes = 0;
};

/// A KernelIR decoded once into the flat handler array, ready to execute.
struct DecodedProgram {
  std::vector<DecodedInstr> code;
  std::vector<DecodedBlock> blocks;
  std::uint32_t num_regs = 1;     // always >= 1 (a zero-reg kernel gets a scratch slot)
  bool has_global_atomics = false;
  std::uint64_t fingerprint = 0;  // structural hash used for cache invalidation
};

/// Structural fingerprint of a kernel: opcode/operand/immediate stream plus
/// the launch-relevant header fields. The kernel name is deliberately
/// excluded (renaming is not a semantic change).
std::uint64_t kernel_fingerprint(const KernelIR& ir);

/// Decodes `ir` into the flat executable form. Throws ContractError on
/// branches to nonexistent blocks (the builder/validator never emit them).
std::shared_ptr<const DecodedProgram> decode_kernel(const KernelIR& ir);

/// Process-wide cache of decoded programs, keyed by kernel identity
/// (address) and invalidated by structural fingerprint: rebuilding a kernel
/// in place (same KernelIR object, new body) re-decodes on the next launch.
/// Thread-safe; entries are shared_ptrs so a concurrent invalidation never
/// pulls a program out from under a running launch.
///
/// Bounded: under kernel churn the map would grow without limit, so the
/// cache enforces a deterministic entries/bytes cap with FIFO eviction in
/// insertion order (the launch cache's policy). An in-place fingerprint
/// refresh keeps the entry's original FIFO position. Evicted programs are
/// merely re-decoded on their next launch — results are unaffected.
class DecodedCache {
 public:
  static constexpr std::size_t kDefaultMaxEntries = 512;
  static constexpr std::size_t kDefaultMaxBytes = 256u << 20;

  static DecodedCache& instance();

  /// Returns the cached decode of `ir`, re-decoding when absent or stale.
  std::shared_ptr<const DecodedProgram> get(const KernelIR& ir);

  /// Drops every entry (tests use this to measure cold decodes).
  void clear();

  std::size_t size() const;

  /// Total FIFO evictions since process start (clear() does not count).
  std::uint64_t evictions() const;

  /// Reconfigures the cap and immediately evicts down to it.
  void set_capacity(std::size_t max_entries, std::size_t max_bytes);

 private:
  static std::size_t program_bytes(const DecodedProgram& prog);
  void evict_to_cap_locked();

  mutable std::mutex mutex_;
  std::unordered_map<const KernelIR*, std::shared_ptr<const DecodedProgram>> map_;
  std::vector<const KernelIR*> fifo_;  // keys in insertion order
  std::size_t fifo_head_ = 0;
  std::size_t max_entries_ = kDefaultMaxEntries;
  std::size_t max_bytes_ = kDefaultMaxBytes;
  std::size_t cur_bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

/// Per-thread execution state. Registers live in the arena's slab, not in
/// the struct, so a block switch is a pointer rebase instead of a
/// reallocation.
struct ThreadState {
  RegValue* regs = nullptr;
  std::uint32_t pc = 0;
  bool done = false;
  bool at_barrier = false;
  std::uint32_t tid_x = 0;
  std::uint32_t tid_y = 0;
  std::uint64_t instrs_executed = 0;
};

/// Everything a handler may touch, flattened into one context block.
struct ExecContext {
  const DecodedInstr* code = nullptr;
  LaunchDims dims;
  const std::uint64_t* argv = nullptr;
  std::size_t argc = 0;
  AddressSpace* global = nullptr;
  const MemAccessHook* hook = nullptr;  // null = no cache observer
  std::uint64_t* block_visits = nullptr;
  std::uint8_t* shared = nullptr;
  std::size_t shared_size = 0;
  std::uint32_t ctaid_x = 0;
  std::uint32_t ctaid_y = 0;
  const KernelIR* ir = nullptr;  // cold paths only (error messages)
};

/// Reusable per-worker scratch: thread states, one register slab for the
/// whole block, and the shared-memory image. Blocks executed back-to-back
/// on one worker reuse the same allocations.
struct ExecArena {
  std::vector<ThreadState> threads;
  std::vector<RegValue> regs;
  std::vector<std::uint8_t> shared;
};

/// Executes one thread block `(ctaid_x, ctaid_y)` of `prog` and accumulates
/// λ/barrier counts into `profile` (which must have `block_visits` sized to
/// the kernel's block count). `strict_barriers` turns the silent
/// divergent-exit barrier release into a diagnostic ContractError.
void run_decoded_block(const DecodedProgram& prog, const KernelIR& ir, const LaunchDims& dims,
                       const KernelArgs& args, AddressSpace& global, const MemAccessHook* hook,
                       std::uint64_t max_instrs_per_thread, bool strict_barriers,
                       ExecArena& arena, DynamicProfile& profile, std::uint32_t ctaid_x,
                       std::uint32_t ctaid_y);

}  // namespace sigvp::interp_detail
