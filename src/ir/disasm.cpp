#include "ir/disasm.hpp"

#include <sstream>

namespace sigvp {

std::string disassemble(const Instr& in) {
  std::ostringstream os;
  os << opcode_name(in.op);
  auto r = [](std::uint8_t reg) { return "%r" + std::to_string(reg); };

  switch (in.op) {
    case Opcode::kNop:
    case Opcode::kRet:
    case Opcode::kBar:
      break;
    case Opcode::kMovImmI:
      os << " " << r(in.dst) << ", " << in.imm;
      break;
    case Opcode::kMovImmF32:
    case Opcode::kMovImmF64:
      os << " " << r(in.dst) << ", " << in.fimm;
      break;
    case Opcode::kReadSpecial:
      os << " " << r(in.dst) << ", " << special_reg_name(static_cast<SpecialReg>(in.imm));
      break;
    case Opcode::kLdParam:
      os << " " << r(in.dst) << ", [param " << in.imm << "]";
      break;
    case Opcode::kJmp:
      os << " @" << in.imm;
      break;
    case Opcode::kBraZ:
    case Opcode::kBraNZ:
      os << " " << r(in.src0) << ", @" << in.imm;
      break;
    case Opcode::kSelect:
    case Opcode::kFmaF32:
    case Opcode::kFmaF64:
      os << " " << r(in.dst) << ", " << r(in.src0) << ", " << r(in.src1) << ", " << r(in.src2);
      break;
    default:
      if (is_memory_op(in.op)) {
        if (instr_class(in.op) == InstrClass::kLoad) {
          os << " " << r(in.dst) << ", [" << r(in.src0) << "+" << in.imm << "]";
        } else {
          os << " [" << r(in.src0) << "+" << in.imm << "], " << r(in.src1);
        }
      } else {
        os << " " << r(in.dst) << ", " << r(in.src0) << ", " << r(in.src1);
      }
      break;
  }
  return os.str();
}

std::string disassemble(const KernelIR& ir) {
  std::ostringstream os;
  os << ".kernel " << ir.name << " (params=" << ir.num_params << ", regs=" << ir.num_regs
     << ", shared=" << ir.shared_bytes << "B)\n";
  for (std::size_t bi = 0; bi < ir.blocks.size(); ++bi) {
    const BasicBlock& b = ir.blocks[bi];
    os << b.label << ":  // block " << bi << ", mu = {";
    const ClassCounts mu = b.static_counts();
    bool first = true;
    for (InstrClass c : kAllInstrClasses) {
      if (mu[c] == 0) continue;
      if (!first) os << ", ";
      os << instr_class_name(c) << ":" << mu[c];
      first = false;
    }
    os << "}\n";
    for (const Instr& in : b.instrs) os << "  " << disassemble(in) << "\n";
  }
  return os.str();
}

}  // namespace sigvp
