#include "ir/opcode.hpp"

namespace sigvp {

InstrClass instr_class(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kMovImmI:
    case Opcode::kMovImmF32:
    case Opcode::kMovImmF64:
    case Opcode::kMov:
    case Opcode::kReadSpecial:
    case Opcode::kLdParam:
    case Opcode::kSelect:
    case Opcode::kAddI:
    case Opcode::kSubI:
    case Opcode::kMulI:
    case Opcode::kDivI:
    case Opcode::kRemI:
    case Opcode::kMinI:
    case Opcode::kMaxI:
    case Opcode::kNegI:
    case Opcode::kAbsI:
    case Opcode::kSetLtI:
    case Opcode::kSetLeI:
    case Opcode::kSetEqI:
    case Opcode::kSetNeI:
    case Opcode::kSetGtI:
    case Opcode::kSetGeI:
    case Opcode::kCvtF32ToI:
    case Opcode::kCvtF64ToI:
      return InstrClass::kInt;

    case Opcode::kAndB:
    case Opcode::kOrB:
    case Opcode::kXorB:
    case Opcode::kNotB:
    case Opcode::kShlB:
    case Opcode::kShrB:
    case Opcode::kShrA:
      return InstrClass::kBit;

    case Opcode::kAddF32:
    case Opcode::kSubF32:
    case Opcode::kMulF32:
    case Opcode::kDivF32:
    case Opcode::kFmaF32:
    case Opcode::kSqrtF32:
    case Opcode::kRsqrtF32:
    case Opcode::kExpF32:
    case Opcode::kLogF32:
    case Opcode::kSinF32:
    case Opcode::kCosF32:
    case Opcode::kMinF32:
    case Opcode::kMaxF32:
    case Opcode::kAbsF32:
    case Opcode::kNegF32:
    case Opcode::kFloorF32:
    case Opcode::kSetLtF32:
    case Opcode::kSetLeF32:
    case Opcode::kSetEqF32:
    case Opcode::kSetGtF32:
    case Opcode::kSetGeF32:
    case Opcode::kCvtIToF32:
    case Opcode::kCvtF64ToF32:
      return InstrClass::kFp32;

    case Opcode::kAddF64:
    case Opcode::kSubF64:
    case Opcode::kMulF64:
    case Opcode::kDivF64:
    case Opcode::kFmaF64:
    case Opcode::kSqrtF64:
    case Opcode::kExpF64:
    case Opcode::kLogF64:
    case Opcode::kSinF64:
    case Opcode::kCosF64:
    case Opcode::kMinF64:
    case Opcode::kMaxF64:
    case Opcode::kAbsF64:
    case Opcode::kNegF64:
    case Opcode::kFloorF64:
    case Opcode::kSetLtF64:
    case Opcode::kSetLeF64:
    case Opcode::kSetEqF64:
    case Opcode::kSetGtF64:
    case Opcode::kSetGeF64:
    case Opcode::kCvtIToF64:
    case Opcode::kCvtF32ToF64:
      return InstrClass::kFp64;

    case Opcode::kJmp:
    case Opcode::kBraZ:
    case Opcode::kBraNZ:
    case Opcode::kRet:
    case Opcode::kBar:
      return InstrClass::kBranch;

    case Opcode::kLdGlobalF32:
    case Opcode::kLdGlobalF64:
    case Opcode::kLdGlobalI32:
    case Opcode::kLdGlobalI64:
    case Opcode::kLdGlobalU8:
    case Opcode::kLdSharedF32:
    case Opcode::kLdSharedF64:
    case Opcode::kLdSharedI64:
      return InstrClass::kLoad;

    case Opcode::kStGlobalF32:
    case Opcode::kStGlobalF64:
    case Opcode::kStGlobalI32:
    case Opcode::kStGlobalI64:
    case Opcode::kStGlobalU8:
    case Opcode::kAtomAddGlobalI64:
    case Opcode::kAtomAddGlobalF32:
    case Opcode::kStSharedF32:
    case Opcode::kStSharedF64:
    case Opcode::kStSharedI64:
      return InstrClass::kStore;
  }
  return InstrClass::kInt;
}

bool is_terminator(Opcode op) {
  switch (op) {
    case Opcode::kJmp:
    case Opcode::kBraZ:
    case Opcode::kBraNZ:
    case Opcode::kRet:
      return true;
    default:
      return false;
  }
}

bool is_branch_with_target(Opcode op) {
  switch (op) {
    case Opcode::kJmp:
    case Opcode::kBraZ:
    case Opcode::kBraNZ:
      return true;
    default:
      return false;
  }
}

bool is_memory_op(Opcode op) {
  const InstrClass c = instr_class(op);
  return c == InstrClass::kLoad || c == InstrClass::kStore;
}

bool is_global_memory_op(Opcode op) {
  switch (op) {
    case Opcode::kLdGlobalF32:
    case Opcode::kLdGlobalF64:
    case Opcode::kLdGlobalI32:
    case Opcode::kLdGlobalI64:
    case Opcode::kLdGlobalU8:
    case Opcode::kStGlobalF32:
    case Opcode::kStGlobalF64:
    case Opcode::kStGlobalI32:
    case Opcode::kStGlobalI64:
    case Opcode::kStGlobalU8:
    case Opcode::kAtomAddGlobalI64:
    case Opcode::kAtomAddGlobalF32:
      return true;
    default:
      return false;
  }
}

bool is_sfu_op(Opcode op) {
  switch (op) {
    case Opcode::kSqrtF32:
    case Opcode::kRsqrtF32:
    case Opcode::kExpF32:
    case Opcode::kLogF32:
    case Opcode::kSinF32:
    case Opcode::kCosF32:
    case Opcode::kSqrtF64:
    case Opcode::kExpF64:
    case Opcode::kLogF64:
    case Opcode::kSinF64:
    case Opcode::kCosF64:
      return true;
    default:
      return false;
  }
}

bool is_sqrt_op(Opcode op) {
  switch (op) {
    case Opcode::kSqrtF32:
    case Opcode::kRsqrtF32:
    case Opcode::kSqrtF64:
      return true;
    default:
      return false;
  }
}

std::uint32_t memory_width_bytes(Opcode op) {
  switch (op) {
    case Opcode::kLdGlobalU8:
    case Opcode::kStGlobalU8:
      return 1;
    case Opcode::kLdGlobalF32:
    case Opcode::kLdGlobalI32:
    case Opcode::kStGlobalF32:
    case Opcode::kStGlobalI32:
    case Opcode::kAtomAddGlobalF32:
    case Opcode::kLdSharedF32:
    case Opcode::kStSharedF32:
      return 4;
    case Opcode::kLdGlobalF64:
    case Opcode::kLdGlobalI64:
    case Opcode::kStGlobalF64:
    case Opcode::kStGlobalI64:
    case Opcode::kAtomAddGlobalI64:
    case Opcode::kLdSharedF64:
    case Opcode::kLdSharedI64:
    case Opcode::kStSharedF64:
    case Opcode::kStSharedI64:
      return 8;
    default:
      return 0;
  }
}

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kMovImmI: return "mov.imm.i";
    case Opcode::kMovImmF32: return "mov.imm.f32";
    case Opcode::kMovImmF64: return "mov.imm.f64";
    case Opcode::kMov: return "mov";
    case Opcode::kReadSpecial: return "mov.special";
    case Opcode::kLdParam: return "ld.param";
    case Opcode::kSelect: return "selp";
    case Opcode::kAddI: return "add.i";
    case Opcode::kSubI: return "sub.i";
    case Opcode::kMulI: return "mul.i";
    case Opcode::kDivI: return "div.i";
    case Opcode::kRemI: return "rem.i";
    case Opcode::kMinI: return "min.i";
    case Opcode::kMaxI: return "max.i";
    case Opcode::kNegI: return "neg.i";
    case Opcode::kAbsI: return "abs.i";
    case Opcode::kSetLtI: return "set.lt.i";
    case Opcode::kSetLeI: return "set.le.i";
    case Opcode::kSetEqI: return "set.eq.i";
    case Opcode::kSetNeI: return "set.ne.i";
    case Opcode::kSetGtI: return "set.gt.i";
    case Opcode::kSetGeI: return "set.ge.i";
    case Opcode::kCvtF32ToI: return "cvt.i.f32";
    case Opcode::kCvtF64ToI: return "cvt.i.f64";
    case Opcode::kAndB: return "and.b";
    case Opcode::kOrB: return "or.b";
    case Opcode::kXorB: return "xor.b";
    case Opcode::kNotB: return "not.b";
    case Opcode::kShlB: return "shl.b";
    case Opcode::kShrB: return "shr.b";
    case Opcode::kShrA: return "shr.a";
    case Opcode::kAddF32: return "add.f32";
    case Opcode::kSubF32: return "sub.f32";
    case Opcode::kMulF32: return "mul.f32";
    case Opcode::kDivF32: return "div.f32";
    case Opcode::kFmaF32: return "fma.f32";
    case Opcode::kSqrtF32: return "sqrt.f32";
    case Opcode::kRsqrtF32: return "rsqrt.f32";
    case Opcode::kExpF32: return "exp.f32";
    case Opcode::kLogF32: return "log.f32";
    case Opcode::kSinF32: return "sin.f32";
    case Opcode::kCosF32: return "cos.f32";
    case Opcode::kMinF32: return "min.f32";
    case Opcode::kMaxF32: return "max.f32";
    case Opcode::kAbsF32: return "abs.f32";
    case Opcode::kNegF32: return "neg.f32";
    case Opcode::kFloorF32: return "floor.f32";
    case Opcode::kSetLtF32: return "set.lt.f32";
    case Opcode::kSetLeF32: return "set.le.f32";
    case Opcode::kSetEqF32: return "set.eq.f32";
    case Opcode::kSetGtF32: return "set.gt.f32";
    case Opcode::kSetGeF32: return "set.ge.f32";
    case Opcode::kCvtIToF32: return "cvt.f32.i";
    case Opcode::kCvtF64ToF32: return "cvt.f32.f64";
    case Opcode::kAddF64: return "add.f64";
    case Opcode::kSubF64: return "sub.f64";
    case Opcode::kMulF64: return "mul.f64";
    case Opcode::kDivF64: return "div.f64";
    case Opcode::kFmaF64: return "fma.f64";
    case Opcode::kSqrtF64: return "sqrt.f64";
    case Opcode::kExpF64: return "exp.f64";
    case Opcode::kLogF64: return "log.f64";
    case Opcode::kSinF64: return "sin.f64";
    case Opcode::kCosF64: return "cos.f64";
    case Opcode::kMinF64: return "min.f64";
    case Opcode::kMaxF64: return "max.f64";
    case Opcode::kAbsF64: return "abs.f64";
    case Opcode::kNegF64: return "neg.f64";
    case Opcode::kFloorF64: return "floor.f64";
    case Opcode::kSetLtF64: return "set.lt.f64";
    case Opcode::kSetLeF64: return "set.le.f64";
    case Opcode::kSetEqF64: return "set.eq.f64";
    case Opcode::kSetGtF64: return "set.gt.f64";
    case Opcode::kSetGeF64: return "set.ge.f64";
    case Opcode::kCvtIToF64: return "cvt.f64.i";
    case Opcode::kCvtF32ToF64: return "cvt.f64.f32";
    case Opcode::kJmp: return "bra";
    case Opcode::kBraZ: return "bra.z";
    case Opcode::kBraNZ: return "bra.nz";
    case Opcode::kRet: return "ret";
    case Opcode::kBar: return "bar.sync";
    case Opcode::kLdGlobalF32: return "ld.global.f32";
    case Opcode::kLdGlobalF64: return "ld.global.f64";
    case Opcode::kLdGlobalI32: return "ld.global.i32";
    case Opcode::kLdGlobalI64: return "ld.global.i64";
    case Opcode::kLdGlobalU8: return "ld.global.u8";
    case Opcode::kStGlobalF32: return "st.global.f32";
    case Opcode::kStGlobalF64: return "st.global.f64";
    case Opcode::kStGlobalI32: return "st.global.i32";
    case Opcode::kStGlobalI64: return "st.global.i64";
    case Opcode::kStGlobalU8: return "st.global.u8";
    case Opcode::kAtomAddGlobalI64: return "atom.add.global.i64";
    case Opcode::kAtomAddGlobalF32: return "atom.add.global.f32";
    case Opcode::kLdSharedF32: return "ld.shared.f32";
    case Opcode::kLdSharedF64: return "ld.shared.f64";
    case Opcode::kLdSharedI64: return "ld.shared.i64";
    case Opcode::kStSharedF32: return "st.shared.f32";
    case Opcode::kStSharedF64: return "st.shared.f64";
    case Opcode::kStSharedI64: return "st.shared.i64";
  }
  return "?";
}

std::string_view special_reg_name(SpecialReg sr) {
  switch (sr) {
    case SpecialReg::kTidX: return "%tid.x";
    case SpecialReg::kTidY: return "%tid.y";
    case SpecialReg::kCtaidX: return "%ctaid.x";
    case SpecialReg::kCtaidY: return "%ctaid.y";
    case SpecialReg::kNtidX: return "%ntid.x";
    case SpecialReg::kNtidY: return "%ntid.y";
    case SpecialReg::kNctaidX: return "%nctaid.x";
    case SpecialReg::kNctaidY: return "%nctaid.y";
  }
  return "%?";
}

}  // namespace sigvp
