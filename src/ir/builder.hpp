#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace sigvp {

/// Fluent construction of KernelIR programs.
///
/// The builder plays the role of the CUDA-C compiler front-end in this
/// reproduction: workload kernels are written against it and the result is
/// the "binary" every execution path consumes. Branch targets are symbolic
/// labels resolved (and the whole program validated) in build().
///
/// Example — vectorAdd:
///   KernelBuilder b("vectorAdd", /*num_params=*/4);
///   auto [a, c, n] = ...;  // registers via b.reg()
///   b.block("entry");
///   ... b.ld_param(a, 0); ...
///   b.ret();
///   KernelIR ir = b.build();
class KernelBuilder {
 public:
  using Reg = std::uint8_t;

  KernelBuilder(std::string name, std::uint32_t num_params);

  /// Allocates a fresh register (at most 255 per kernel).
  Reg reg();

  /// Declares per-block shared-memory usage in bytes.
  void set_shared_bytes(std::uint32_t bytes);

  /// Starts a new basic block with a unique label. The first block created
  /// is the kernel entry. The previous block must already be terminated.
  void block(const std::string& label);

  // --- data movement -------------------------------------------------------
  void mov_imm_i(Reg dst, std::int64_t value);
  void mov_imm_f32(Reg dst, float value);
  void mov_imm_f64(Reg dst, double value);
  void mov(Reg dst, Reg src);
  void special(Reg dst, SpecialReg sr);
  void ld_param(Reg dst, std::uint32_t param_index);
  void select(Reg dst, Reg cond, Reg if_true, Reg if_false);

  // --- integer -------------------------------------------------------------
  void add_i(Reg dst, Reg a, Reg b);
  void sub_i(Reg dst, Reg a, Reg b);
  void mul_i(Reg dst, Reg a, Reg b);
  void div_i(Reg dst, Reg a, Reg b);
  void rem_i(Reg dst, Reg a, Reg b);
  void min_i(Reg dst, Reg a, Reg b);
  void max_i(Reg dst, Reg a, Reg b);
  void neg_i(Reg dst, Reg a);
  void abs_i(Reg dst, Reg a);
  void set_lt_i(Reg dst, Reg a, Reg b);
  void set_le_i(Reg dst, Reg a, Reg b);
  void set_eq_i(Reg dst, Reg a, Reg b);
  void set_ne_i(Reg dst, Reg a, Reg b);
  void set_gt_i(Reg dst, Reg a, Reg b);
  void set_ge_i(Reg dst, Reg a, Reg b);
  void cvt_f32_to_i(Reg dst, Reg a);
  void cvt_f64_to_i(Reg dst, Reg a);

  // --- bit -----------------------------------------------------------------
  void and_b(Reg dst, Reg a, Reg b);
  void or_b(Reg dst, Reg a, Reg b);
  void xor_b(Reg dst, Reg a, Reg b);
  void not_b(Reg dst, Reg a);
  void shl_b(Reg dst, Reg a, Reg b);
  void shr_b(Reg dst, Reg a, Reg b);
  void shr_a(Reg dst, Reg a, Reg b);

  // --- fp32 ----------------------------------------------------------------
  void add_f32(Reg dst, Reg a, Reg b);
  void sub_f32(Reg dst, Reg a, Reg b);
  void mul_f32(Reg dst, Reg a, Reg b);
  void div_f32(Reg dst, Reg a, Reg b);
  void fma_f32(Reg dst, Reg a, Reg b, Reg c);  // dst = a*b + c
  void sqrt_f32(Reg dst, Reg a);
  void rsqrt_f32(Reg dst, Reg a);
  void exp_f32(Reg dst, Reg a);
  void log_f32(Reg dst, Reg a);
  void sin_f32(Reg dst, Reg a);
  void cos_f32(Reg dst, Reg a);
  void min_f32(Reg dst, Reg a, Reg b);
  void max_f32(Reg dst, Reg a, Reg b);
  void abs_f32(Reg dst, Reg a);
  void neg_f32(Reg dst, Reg a);
  void floor_f32(Reg dst, Reg a);
  void set_lt_f32(Reg dst, Reg a, Reg b);
  void set_le_f32(Reg dst, Reg a, Reg b);
  void set_eq_f32(Reg dst, Reg a, Reg b);
  void set_gt_f32(Reg dst, Reg a, Reg b);
  void set_ge_f32(Reg dst, Reg a, Reg b);
  void cvt_i_to_f32(Reg dst, Reg a);
  void cvt_f64_to_f32(Reg dst, Reg a);

  // --- fp64 ----------------------------------------------------------------
  void add_f64(Reg dst, Reg a, Reg b);
  void sub_f64(Reg dst, Reg a, Reg b);
  void mul_f64(Reg dst, Reg a, Reg b);
  void div_f64(Reg dst, Reg a, Reg b);
  void fma_f64(Reg dst, Reg a, Reg b, Reg c);
  void sqrt_f64(Reg dst, Reg a);
  void exp_f64(Reg dst, Reg a);
  void log_f64(Reg dst, Reg a);
  void sin_f64(Reg dst, Reg a);
  void cos_f64(Reg dst, Reg a);
  void min_f64(Reg dst, Reg a, Reg b);
  void max_f64(Reg dst, Reg a, Reg b);
  void abs_f64(Reg dst, Reg a);
  void neg_f64(Reg dst, Reg a);
  void floor_f64(Reg dst, Reg a);
  void set_lt_f64(Reg dst, Reg a, Reg b);
  void set_le_f64(Reg dst, Reg a, Reg b);
  void set_eq_f64(Reg dst, Reg a, Reg b);
  void set_gt_f64(Reg dst, Reg a, Reg b);
  void set_ge_f64(Reg dst, Reg a, Reg b);
  void cvt_i_to_f64(Reg dst, Reg a);
  void cvt_f32_to_f64(Reg dst, Reg a);

  // --- control flow --------------------------------------------------------
  void jmp(const std::string& label);
  void bra_z(Reg cond, const std::string& label);
  void bra_nz(Reg cond, const std::string& label);
  void ret();
  void bar();

  // --- memory (byte address = regs[addr] + offset) --------------------------
  void ld_global_f32(Reg dst, Reg addr, std::int64_t offset = 0);
  void ld_global_f64(Reg dst, Reg addr, std::int64_t offset = 0);
  void ld_global_i32(Reg dst, Reg addr, std::int64_t offset = 0);
  void ld_global_i64(Reg dst, Reg addr, std::int64_t offset = 0);
  void ld_global_u8(Reg dst, Reg addr, std::int64_t offset = 0);
  void st_global_f32(Reg value, Reg addr, std::int64_t offset = 0);
  void st_global_f64(Reg value, Reg addr, std::int64_t offset = 0);
  void st_global_i32(Reg value, Reg addr, std::int64_t offset = 0);
  void st_global_i64(Reg value, Reg addr, std::int64_t offset = 0);
  void st_global_u8(Reg value, Reg addr, std::int64_t offset = 0);
  void atom_add_global_i64(Reg value, Reg addr, std::int64_t offset = 0);
  void atom_add_global_f32(Reg value, Reg addr, std::int64_t offset = 0);
  void ld_shared_f32(Reg dst, Reg addr, std::int64_t offset = 0);
  void ld_shared_f64(Reg dst, Reg addr, std::int64_t offset = 0);
  void ld_shared_i64(Reg dst, Reg addr, std::int64_t offset = 0);
  void st_shared_f32(Reg value, Reg addr, std::int64_t offset = 0);
  void st_shared_f64(Reg value, Reg addr, std::int64_t offset = 0);
  void st_shared_i64(Reg value, Reg addr, std::int64_t offset = 0);

  // --- composites ----------------------------------------------------------

  /// dst = base + (index << log2_elem_size); emits one Bit + one Int op,
  /// matching the address math a real compiler generates.
  void addr_of(Reg dst, Reg base, Reg index, int log2_elem_size);

  /// Structured counted loop. The caller initializes `counter`, `bound`
  /// and `step` beforehand. loop_begin terminates the current block; the
  /// loop body starts immediately after it; loop_end jumps back to the
  /// header and opens the exit block.
  struct Loop {
    Reg counter;
    Reg bound;
    Reg step;
    Reg cond;
    std::string head;
    std::string exit;
  };
  Loop loop_begin(Reg counter, Reg bound, Reg step, const std::string& name);
  void loop_end(const Loop& loop);

  /// Finalizes the program: resolves labels, runs the validator, and
  /// returns the immutable IR. The builder must not be reused afterwards.
  KernelIR build();

 private:
  struct PendingBranch {
    std::size_t block;
    std::size_t instr;
    std::string label;
  };

  BasicBlock& current();
  void emit(Instr instr);
  void emit_store(Opcode op, Reg value, Reg addr, std::int64_t offset);
  void emit_load(Opcode op, Reg dst, Reg addr, std::int64_t offset);

  KernelIR ir_;
  std::map<std::string, std::size_t> label_to_block_;
  std::vector<PendingBranch> pending_;
  std::uint32_t next_reg_ = 0;
  bool built_ = false;
};

}  // namespace sigvp
