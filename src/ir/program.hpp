#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instr_class.hpp"
#include "ir/opcode.hpp"

namespace sigvp {

/// One IR instruction. Field meaning depends on the opcode:
///  - dst/src0/src1/src2: register indices;
///  - imm: integer immediate, kernel-parameter index, SpecialReg value,
///    branch-target block index, or byte offset for memory ops;
///  - fimm: floating-point immediate for kMovImmF32/kMovImmF64.
struct Instr {
  Opcode op = Opcode::kNop;
  std::uint8_t dst = 0;
  std::uint8_t src0 = 0;
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
  std::int64_t imm = 0;
  double fimm = 0.0;
};

/// A basic block: straight-line code ending in exactly one terminator
/// (kJmp / kBraZ / kBraNZ / kRet). Conditional terminators fall through to
/// the lexically next block when the branch is not taken.
///
/// Blocks are the paper's unit of profiling: λ_b counts block executions and
/// µ{b,i} counts static instructions of class i in block b (Eq. 1, Fig. 8).
struct BasicBlock {
  std::string label;
  std::vector<Instr> instrs;

  /// Static per-class instruction histogram µ_b of this block.
  ClassCounts static_counts() const;
};

/// A complete kernel program in the IR.
///
/// The same KernelIR object runs unmodified on all execution paths
/// (GPU-emulation-on-VP, the host GPU device model, and ΣVP multiplexing) —
/// this is the repository's stand-in for the paper's binary compatibility.
struct KernelIR {
  std::string name;
  std::uint32_t num_params = 0;
  std::uint32_t num_regs = 0;
  std::uint32_t shared_bytes = 0;
  std::vector<BasicBlock> blocks;  // block 0 is the entry block

  /// Static per-class totals over all blocks.
  ClassCounts static_counts() const;

  /// Total static instruction count.
  std::uint64_t static_size() const;

  /// True if any instruction is a shared-memory access or a barrier.
  bool uses_shared_memory() const;
};

}  // namespace sigvp
