#pragma once

#include <string>

#include "ir/program.hpp"

namespace sigvp {

/// Renders one instruction as a PTX-flavored line (for logs and tests).
std::string disassemble(const Instr& instr);

/// Renders a whole kernel: header, per-block labels and instructions,
/// plus the static per-class histogram µ of every block.
std::string disassemble(const KernelIR& ir);

}  // namespace sigvp
