#pragma once

#include <cstdint>
#include <string_view>

#include "ir/instr_class.hpp"

namespace sigvp {

/// PTX-like opcode set of the kernel IR.
///
/// The set intentionally mirrors what the paper's profiler distinguishes:
/// FP32/FP64 arithmetic (including the transcendental ops CUDA maps onto the
/// SFU), integer and bit ops used for address math, control flow, and
/// global/shared memory accesses.
enum class Opcode : std::uint8_t {
  kNop = 0,

  // Data movement (classified as Int: register moves issue on the ALU).
  kMovImmI,   // dst <- imm (i64)
  kMovImmF32, // dst <- fimm (f32)
  kMovImmF64, // dst <- fimm (f64)
  kMov,       // dst <- src0
  kReadSpecial,  // dst <- special register (imm = SpecialReg)
  kLdParam,      // dst <- kernel parameter (imm = param index)
  kSelect,       // dst <- src0 ? src1 : src2

  // Integer arithmetic.
  kAddI, kSubI, kMulI, kDivI, kRemI, kMinI, kMaxI, kNegI, kAbsI,
  kSetLtI, kSetLeI, kSetEqI, kSetNeI, kSetGtI, kSetGeI,
  kCvtF32ToI, kCvtF64ToI,

  // Bit manipulation.
  kAndB, kOrB, kXorB, kNotB, kShlB, kShrB, kShrA,

  // FP32 arithmetic (kCvtIToF32/kCvtF64ToF32 produce an FP32 result).
  kAddF32, kSubF32, kMulF32, kDivF32, kFmaF32,
  kSqrtF32, kRsqrtF32, kExpF32, kLogF32, kSinF32, kCosF32,
  kMinF32, kMaxF32, kAbsF32, kNegF32, kFloorF32,
  kSetLtF32, kSetLeF32, kSetEqF32, kSetGtF32, kSetGeF32,
  kCvtIToF32, kCvtF64ToF32,

  // FP64 arithmetic.
  kAddF64, kSubF64, kMulF64, kDivF64, kFmaF64,
  kSqrtF64, kExpF64, kLogF64, kSinF64, kCosF64,
  kMinF64, kMaxF64, kAbsF64, kNegF64, kFloorF64,
  kSetLtF64, kSetLeF64, kSetEqF64, kSetGtF64, kSetGeF64,
  kCvtIToF64, kCvtF32ToF64,

  // Control flow (class B). Branch targets are block indices in `imm`.
  kJmp, kBraZ, kBraNZ, kRet, kBar,

  // Global memory (byte address = regs[src0] + imm).
  kLdGlobalF32, kLdGlobalF64, kLdGlobalI32, kLdGlobalI64, kLdGlobalU8,
  kStGlobalF32, kStGlobalF64, kStGlobalI32, kStGlobalI64, kStGlobalU8,
  kAtomAddGlobalI64, kAtomAddGlobalF32,

  // Shared memory (per-block scratchpad; byte address = regs[src0] + imm).
  kLdSharedF32, kLdSharedF64, kLdSharedI64,
  kStSharedF32, kStSharedF64, kStSharedI64,
};

/// Built-in per-thread values a kernel can read (CUDA's special registers).
enum class SpecialReg : std::uint8_t {
  kTidX = 0,
  kTidY,
  kCtaidX,
  kCtaidY,
  kNtidX,
  kNtidY,
  kNctaidX,
  kNctaidY,
};

/// Maps an opcode to the paper's 7 instruction classes.
InstrClass instr_class(Opcode op);

/// True for opcodes that terminate a basic block (kJmp/kBraZ/kBraNZ/kRet).
bool is_terminator(Opcode op);

/// True for conditional or unconditional jumps carrying a block target.
bool is_branch_with_target(Opcode op);

/// True for global/shared memory loads or stores (including atomics).
bool is_memory_op(Opcode op);
bool is_global_memory_op(Opcode op);

/// True for transcendental/special-function opcodes (sqrt, rsqrt, exp, log,
/// sin, cos). Real GPUs run these on SFU hardware; software emulators pay a
/// libm call for each, which is why FP-special-heavy apps emulate so badly.
bool is_sfu_op(Opcode op);

/// Subset of the SFU ops that CPUs handle cheaply in hardware (sqrt/rsqrt
/// have SSE instructions); the rest (exp/log/sin/cos) are full libm calls.
bool is_sqrt_op(Opcode op);

/// Number of bytes moved by a memory opcode (0 for non-memory opcodes).
std::uint32_t memory_width_bytes(Opcode op);

std::string_view opcode_name(Opcode op);
std::string_view special_reg_name(SpecialReg sr);

}  // namespace sigvp
