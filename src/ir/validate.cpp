#include "ir/validate.hpp"

#include <string>

#include "util/check.hpp"

namespace sigvp {

namespace {

bool is_shared_op(Opcode op) {
  switch (op) {
    case Opcode::kLdSharedF32:
    case Opcode::kLdSharedF64:
    case Opcode::kLdSharedI64:
    case Opcode::kStSharedF32:
    case Opcode::kStSharedF64:
    case Opcode::kStSharedI64:
      return true;
    default:
      return false;
  }
}

void check_regs(const KernelIR& ir, const Instr& in, const std::string& where) {
  const auto nr = ir.num_regs;
  auto check = [&](std::uint8_t r, const char* slot) {
    SIGVP_REQUIRE(r < nr || nr == 0,
                  "register " + std::string(slot) + "=" + std::to_string(r) +
                      " out of range in " + where);
  };
  // Not every slot is meaningful for every opcode, but unused slots are
  // zero-initialized by the builder, so a uniform check stays sound.
  check(in.dst, "dst");
  check(in.src0, "src0");
  check(in.src1, "src1");
  check(in.src2, "src2");
}

}  // namespace

void validate_kernel(const KernelIR& ir) {
  SIGVP_REQUIRE(!ir.name.empty(), "kernel must be named");
  SIGVP_REQUIRE(!ir.blocks.empty(), "kernel must have at least one block");

  for (std::size_t bi = 0; bi < ir.blocks.size(); ++bi) {
    const BasicBlock& b = ir.blocks[bi];
    const std::string where = ir.name + "/" + b.label;
    SIGVP_REQUIRE(!b.instrs.empty(), "empty block " + where);

    for (std::size_t ii = 0; ii < b.instrs.size(); ++ii) {
      const Instr& in = b.instrs[ii];
      const bool last = (ii + 1 == b.instrs.size());

      if (is_terminator(in.op)) {
        SIGVP_REQUIRE(last, "terminator mid-block in " + where);
      } else {
        SIGVP_REQUIRE(!last, "block " + where + " does not end with a terminator");
      }

      if (is_branch_with_target(in.op)) {
        SIGVP_REQUIRE(in.imm >= 0 && static_cast<std::size_t>(in.imm) < ir.blocks.size(),
                      "branch target out of range in " + where);
        if (in.op != Opcode::kJmp) {
          // Conditional terminators fall through to the lexically next block.
          SIGVP_REQUIRE(bi + 1 < ir.blocks.size(),
                        "conditional terminator in the final block " + where);
        }
      }

      if (in.op == Opcode::kLdParam) {
        SIGVP_REQUIRE(in.imm >= 0 && static_cast<std::uint32_t>(in.imm) < ir.num_params,
                      "parameter index out of range in " + where);
      }

      if (is_shared_op(in.op)) {
        SIGVP_REQUIRE(ir.shared_bytes > 0,
                      "shared-memory access without shared_bytes in " + where);
      }

      check_regs(ir, in, where);
    }
  }
}

}  // namespace sigvp
