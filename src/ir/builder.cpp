#include "ir/builder.hpp"

#include <utility>

#include "ir/validate.hpp"
#include "util/check.hpp"

namespace sigvp {

KernelBuilder::KernelBuilder(std::string name, std::uint32_t num_params) {
  SIGVP_REQUIRE(!name.empty(), "kernel name must be non-empty");
  ir_.name = std::move(name);
  ir_.num_params = num_params;
}

KernelBuilder::Reg KernelBuilder::reg() {
  SIGVP_REQUIRE(next_reg_ < 256, "kernel exceeds the 256-register budget");
  return static_cast<Reg>(next_reg_++);
}

void KernelBuilder::set_shared_bytes(std::uint32_t bytes) { ir_.shared_bytes = bytes; }

void KernelBuilder::block(const std::string& label) {
  SIGVP_REQUIRE(!built_, "builder already finalized");
  SIGVP_REQUIRE(!label.empty(), "block label must be non-empty");
  SIGVP_REQUIRE(!label_to_block_.contains(label), "duplicate block label: " + label);
  if (!ir_.blocks.empty()) {
    const BasicBlock& prev = ir_.blocks.back();
    SIGVP_REQUIRE(!prev.instrs.empty() && is_terminator(prev.instrs.back().op),
                  "previous block must end with a terminator before opening " + label);
  }
  label_to_block_[label] = ir_.blocks.size();
  ir_.blocks.push_back(BasicBlock{label, {}});
}

BasicBlock& KernelBuilder::current() {
  SIGVP_REQUIRE(!ir_.blocks.empty(), "open a block before emitting instructions");
  return ir_.blocks.back();
}

void KernelBuilder::emit(Instr instr) {
  SIGVP_REQUIRE(!built_, "builder already finalized");
  BasicBlock& b = current();
  SIGVP_REQUIRE(b.instrs.empty() || !is_terminator(b.instrs.back().op),
                "cannot emit past the terminator of block " + b.label);
  b.instrs.push_back(instr);
}

void KernelBuilder::emit_load(Opcode op, Reg dst, Reg addr, std::int64_t offset) {
  emit(Instr{op, dst, addr, 0, 0, offset, 0.0});
}

void KernelBuilder::emit_store(Opcode op, Reg value, Reg addr, std::int64_t offset) {
  // Stores carry the value register in src1 and the address in src0.
  emit(Instr{op, 0, addr, value, 0, offset, 0.0});
}

void KernelBuilder::mov_imm_i(Reg dst, std::int64_t value) {
  emit(Instr{Opcode::kMovImmI, dst, 0, 0, 0, value, 0.0});
}
void KernelBuilder::mov_imm_f32(Reg dst, float value) {
  emit(Instr{Opcode::kMovImmF32, dst, 0, 0, 0, 0, static_cast<double>(value)});
}
void KernelBuilder::mov_imm_f64(Reg dst, double value) {
  emit(Instr{Opcode::kMovImmF64, dst, 0, 0, 0, 0, value});
}
void KernelBuilder::mov(Reg dst, Reg src) { emit(Instr{Opcode::kMov, dst, src, 0, 0, 0, 0.0}); }
void KernelBuilder::special(Reg dst, SpecialReg sr) {
  emit(Instr{Opcode::kReadSpecial, dst, 0, 0, 0, static_cast<std::int64_t>(sr), 0.0});
}
void KernelBuilder::ld_param(Reg dst, std::uint32_t param_index) {
  SIGVP_REQUIRE(param_index < ir_.num_params, "parameter index out of range");
  emit(Instr{Opcode::kLdParam, dst, 0, 0, 0, static_cast<std::int64_t>(param_index), 0.0});
}
void KernelBuilder::select(Reg dst, Reg cond, Reg if_true, Reg if_false) {
  emit(Instr{Opcode::kSelect, dst, cond, if_true, if_false, 0, 0.0});
}

#define SIGVP_BIN(fn, opcode)                                            \
  void KernelBuilder::fn(Reg dst, Reg a, Reg b) {                        \
    emit(Instr{Opcode::opcode, dst, a, b, 0, 0, 0.0});                   \
  }
#define SIGVP_UN(fn, opcode)                                             \
  void KernelBuilder::fn(Reg dst, Reg a) {                               \
    emit(Instr{Opcode::opcode, dst, a, 0, 0, 0, 0.0});                   \
  }

SIGVP_BIN(add_i, kAddI)
SIGVP_BIN(sub_i, kSubI)
SIGVP_BIN(mul_i, kMulI)
SIGVP_BIN(div_i, kDivI)
SIGVP_BIN(rem_i, kRemI)
SIGVP_BIN(min_i, kMinI)
SIGVP_BIN(max_i, kMaxI)
SIGVP_UN(neg_i, kNegI)
SIGVP_UN(abs_i, kAbsI)
SIGVP_BIN(set_lt_i, kSetLtI)
SIGVP_BIN(set_le_i, kSetLeI)
SIGVP_BIN(set_eq_i, kSetEqI)
SIGVP_BIN(set_ne_i, kSetNeI)
SIGVP_BIN(set_gt_i, kSetGtI)
SIGVP_BIN(set_ge_i, kSetGeI)
SIGVP_UN(cvt_f32_to_i, kCvtF32ToI)
SIGVP_UN(cvt_f64_to_i, kCvtF64ToI)

SIGVP_BIN(and_b, kAndB)
SIGVP_BIN(or_b, kOrB)
SIGVP_BIN(xor_b, kXorB)
SIGVP_UN(not_b, kNotB)
SIGVP_BIN(shl_b, kShlB)
SIGVP_BIN(shr_b, kShrB)
SIGVP_BIN(shr_a, kShrA)

SIGVP_BIN(add_f32, kAddF32)
SIGVP_BIN(sub_f32, kSubF32)
SIGVP_BIN(mul_f32, kMulF32)
SIGVP_BIN(div_f32, kDivF32)
SIGVP_UN(sqrt_f32, kSqrtF32)
SIGVP_UN(rsqrt_f32, kRsqrtF32)
SIGVP_UN(exp_f32, kExpF32)
SIGVP_UN(log_f32, kLogF32)
SIGVP_UN(sin_f32, kSinF32)
SIGVP_UN(cos_f32, kCosF32)
SIGVP_BIN(min_f32, kMinF32)
SIGVP_BIN(max_f32, kMaxF32)
SIGVP_UN(abs_f32, kAbsF32)
SIGVP_UN(neg_f32, kNegF32)
SIGVP_UN(floor_f32, kFloorF32)
SIGVP_BIN(set_lt_f32, kSetLtF32)
SIGVP_BIN(set_le_f32, kSetLeF32)
SIGVP_BIN(set_eq_f32, kSetEqF32)
SIGVP_BIN(set_gt_f32, kSetGtF32)
SIGVP_BIN(set_ge_f32, kSetGeF32)
SIGVP_UN(cvt_i_to_f32, kCvtIToF32)
SIGVP_UN(cvt_f64_to_f32, kCvtF64ToF32)

SIGVP_BIN(add_f64, kAddF64)
SIGVP_BIN(sub_f64, kSubF64)
SIGVP_BIN(mul_f64, kMulF64)
SIGVP_BIN(div_f64, kDivF64)
SIGVP_UN(sqrt_f64, kSqrtF64)
SIGVP_UN(exp_f64, kExpF64)
SIGVP_UN(log_f64, kLogF64)
SIGVP_UN(sin_f64, kSinF64)
SIGVP_UN(cos_f64, kCosF64)
SIGVP_BIN(min_f64, kMinF64)
SIGVP_BIN(max_f64, kMaxF64)
SIGVP_UN(abs_f64, kAbsF64)
SIGVP_UN(neg_f64, kNegF64)
SIGVP_UN(floor_f64, kFloorF64)
SIGVP_BIN(set_lt_f64, kSetLtF64)
SIGVP_BIN(set_le_f64, kSetLeF64)
SIGVP_BIN(set_eq_f64, kSetEqF64)
SIGVP_BIN(set_gt_f64, kSetGtF64)
SIGVP_BIN(set_ge_f64, kSetGeF64)
SIGVP_UN(cvt_i_to_f64, kCvtIToF64)
SIGVP_UN(cvt_f32_to_f64, kCvtF32ToF64)

#undef SIGVP_BIN
#undef SIGVP_UN

void KernelBuilder::fma_f32(Reg dst, Reg a, Reg b, Reg c) {
  emit(Instr{Opcode::kFmaF32, dst, a, b, c, 0, 0.0});
}
void KernelBuilder::fma_f64(Reg dst, Reg a, Reg b, Reg c) {
  emit(Instr{Opcode::kFmaF64, dst, a, b, c, 0, 0.0});
}

void KernelBuilder::jmp(const std::string& label) {
  pending_.push_back({ir_.blocks.size() - 1, current().instrs.size(), label});
  emit(Instr{Opcode::kJmp, 0, 0, 0, 0, -1, 0.0});
}
void KernelBuilder::bra_z(Reg cond, const std::string& label) {
  pending_.push_back({ir_.blocks.size() - 1, current().instrs.size(), label});
  emit(Instr{Opcode::kBraZ, 0, cond, 0, 0, -1, 0.0});
}
void KernelBuilder::bra_nz(Reg cond, const std::string& label) {
  pending_.push_back({ir_.blocks.size() - 1, current().instrs.size(), label});
  emit(Instr{Opcode::kBraNZ, 0, cond, 0, 0, -1, 0.0});
}
void KernelBuilder::ret() { emit(Instr{Opcode::kRet, 0, 0, 0, 0, 0, 0.0}); }
void KernelBuilder::bar() { emit(Instr{Opcode::kBar, 0, 0, 0, 0, 0, 0.0}); }

void KernelBuilder::ld_global_f32(Reg dst, Reg addr, std::int64_t offset) {
  emit_load(Opcode::kLdGlobalF32, dst, addr, offset);
}
void KernelBuilder::ld_global_f64(Reg dst, Reg addr, std::int64_t offset) {
  emit_load(Opcode::kLdGlobalF64, dst, addr, offset);
}
void KernelBuilder::ld_global_i32(Reg dst, Reg addr, std::int64_t offset) {
  emit_load(Opcode::kLdGlobalI32, dst, addr, offset);
}
void KernelBuilder::ld_global_i64(Reg dst, Reg addr, std::int64_t offset) {
  emit_load(Opcode::kLdGlobalI64, dst, addr, offset);
}
void KernelBuilder::ld_global_u8(Reg dst, Reg addr, std::int64_t offset) {
  emit_load(Opcode::kLdGlobalU8, dst, addr, offset);
}
void KernelBuilder::st_global_f32(Reg value, Reg addr, std::int64_t offset) {
  emit_store(Opcode::kStGlobalF32, value, addr, offset);
}
void KernelBuilder::st_global_f64(Reg value, Reg addr, std::int64_t offset) {
  emit_store(Opcode::kStGlobalF64, value, addr, offset);
}
void KernelBuilder::st_global_i32(Reg value, Reg addr, std::int64_t offset) {
  emit_store(Opcode::kStGlobalI32, value, addr, offset);
}
void KernelBuilder::st_global_i64(Reg value, Reg addr, std::int64_t offset) {
  emit_store(Opcode::kStGlobalI64, value, addr, offset);
}
void KernelBuilder::st_global_u8(Reg value, Reg addr, std::int64_t offset) {
  emit_store(Opcode::kStGlobalU8, value, addr, offset);
}
void KernelBuilder::atom_add_global_i64(Reg value, Reg addr, std::int64_t offset) {
  emit_store(Opcode::kAtomAddGlobalI64, value, addr, offset);
}
void KernelBuilder::atom_add_global_f32(Reg value, Reg addr, std::int64_t offset) {
  emit_store(Opcode::kAtomAddGlobalF32, value, addr, offset);
}
void KernelBuilder::ld_shared_f32(Reg dst, Reg addr, std::int64_t offset) {
  emit_load(Opcode::kLdSharedF32, dst, addr, offset);
}
void KernelBuilder::ld_shared_f64(Reg dst, Reg addr, std::int64_t offset) {
  emit_load(Opcode::kLdSharedF64, dst, addr, offset);
}
void KernelBuilder::ld_shared_i64(Reg dst, Reg addr, std::int64_t offset) {
  emit_load(Opcode::kLdSharedI64, dst, addr, offset);
}
void KernelBuilder::st_shared_f32(Reg value, Reg addr, std::int64_t offset) {
  emit_store(Opcode::kStSharedF32, value, addr, offset);
}
void KernelBuilder::st_shared_f64(Reg value, Reg addr, std::int64_t offset) {
  emit_store(Opcode::kStSharedF64, value, addr, offset);
}
void KernelBuilder::st_shared_i64(Reg value, Reg addr, std::int64_t offset) {
  emit_store(Opcode::kStSharedI64, value, addr, offset);
}

void KernelBuilder::addr_of(Reg dst, Reg base, Reg index, int log2_elem_size) {
  SIGVP_REQUIRE(log2_elem_size >= 0 && log2_elem_size <= 4, "element size must be 1..16 bytes");
  const Reg shift = reg();
  mov_imm_i(shift, log2_elem_size);
  const Reg scaled = reg();
  shl_b(scaled, index, shift);
  add_i(dst, base, scaled);
}

KernelBuilder::Loop KernelBuilder::loop_begin(Reg counter, Reg bound, Reg step,
                                              const std::string& name) {
  Loop loop;
  loop.counter = counter;
  loop.bound = bound;
  loop.step = step;
  loop.cond = reg();
  loop.head = name + ".head";
  loop.exit = name + ".exit";
  jmp(loop.head);
  block(loop.head);
  set_lt_i(loop.cond, counter, bound);
  bra_z(loop.cond, loop.exit);
  block(name + ".body");
  return loop;
}

void KernelBuilder::loop_end(const Loop& loop) {
  add_i(loop.counter, loop.counter, loop.step);
  jmp(loop.head);
  block(loop.exit);
}

KernelIR KernelBuilder::build() {
  SIGVP_REQUIRE(!built_, "builder already finalized");
  SIGVP_REQUIRE(!ir_.blocks.empty(), "kernel has no blocks");
  for (const PendingBranch& pb : pending_) {
    auto it = label_to_block_.find(pb.label);
    SIGVP_REQUIRE(it != label_to_block_.end(), "undefined label: " + pb.label);
    ir_.blocks[pb.block].instrs[pb.instr].imm = static_cast<std::int64_t>(it->second);
  }
  ir_.num_regs = next_reg_;
  built_ = true;
  validate_kernel(ir_);
  return std::move(ir_);
}

}  // namespace sigvp
