#pragma once

#include "ir/program.hpp"

namespace sigvp {

/// Structural validation of a kernel program. Throws ContractError when:
///  - any block is empty or lacks a terminator, or has one mid-block;
///  - a conditional terminator ends the last block (no fall-through target);
///  - a branch target is out of range;
///  - a register or parameter index is out of range;
///  - shared-memory opcodes appear in a kernel with shared_bytes == 0.
void validate_kernel(const KernelIR& ir);

}  // namespace sigvp
