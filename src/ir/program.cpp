#include "ir/program.hpp"

namespace sigvp {

ClassCounts BasicBlock::static_counts() const {
  ClassCounts out;
  for (const Instr& in : instrs) {
    if (in.op == Opcode::kNop) continue;
    out[instr_class(in.op)] += 1;
  }
  return out;
}

ClassCounts KernelIR::static_counts() const {
  ClassCounts out;
  for (const BasicBlock& b : blocks) out += b.static_counts();
  return out;
}

std::uint64_t KernelIR::static_size() const {
  std::uint64_t n = 0;
  for (const BasicBlock& b : blocks) n += b.instrs.size();
  return n;
}

bool KernelIR::uses_shared_memory() const {
  for (const BasicBlock& b : blocks) {
    for (const Instr& in : b.instrs) {
      switch (in.op) {
        case Opcode::kBar:
        case Opcode::kLdSharedF32:
        case Opcode::kLdSharedF64:
        case Opcode::kLdSharedI64:
        case Opcode::kStSharedF32:
        case Opcode::kStSharedF64:
        case Opcode::kStSharedI64:
          return true;
        default:
          break;
      }
    }
  }
  return false;
}

}  // namespace sigvp
