#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sigvp {

/// The seven dynamic-instruction classes the paper's estimation models use:
/// i ∈ {FP32, FP64, Int, Bit, B, Ld, St} (paper Eq. 1).
enum class InstrClass : std::uint8_t {
  kFp32 = 0,
  kFp64,
  kInt,
  kBit,
  kBranch,
  kLoad,
  kStore,
};

inline constexpr std::size_t kNumInstrClasses = 7;

constexpr std::string_view instr_class_name(InstrClass c) {
  switch (c) {
    case InstrClass::kFp32: return "FP32";
    case InstrClass::kFp64: return "FP64";
    case InstrClass::kInt: return "Int";
    case InstrClass::kBit: return "Bit";
    case InstrClass::kBranch: return "B";
    case InstrClass::kLoad: return "Ld";
    case InstrClass::kStore: return "St";
  }
  return "?";
}

/// Per-class counters; the σ and µ vectors of the paper are instances of this.
struct ClassCounts {
  std::array<std::uint64_t, kNumInstrClasses> counts{};

  std::uint64_t& operator[](InstrClass c) { return counts[static_cast<std::size_t>(c)]; }
  std::uint64_t operator[](InstrClass c) const { return counts[static_cast<std::size_t>(c)]; }

  ClassCounts& operator+=(const ClassCounts& other) {
    for (std::size_t i = 0; i < kNumInstrClasses; ++i) counts[i] += other.counts[i];
    return *this;
  }

  friend ClassCounts operator+(ClassCounts a, const ClassCounts& b) { return a += b; }

  /// Element-wise scale (used for λ_b · µ_b accumulation, Eq. 1).
  ClassCounts scaled(std::uint64_t factor) const {
    ClassCounts out = *this;
    for (auto& c : out.counts) c *= factor;
    return out;
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts) t += c;
    return t;
  }

  bool operator==(const ClassCounts&) const = default;
};

/// Per-class doubles (expansion factors, latencies, energies, power shares).
struct ClassValues {
  std::array<double, kNumInstrClasses> values{};

  double& operator[](InstrClass c) { return values[static_cast<std::size_t>(c)]; }
  double operator[](InstrClass c) const { return values[static_cast<std::size_t>(c)]; }

  static ClassValues uniform(double v) {
    ClassValues out;
    out.values.fill(v);
    return out;
  }
};

/// Iteration helper: all classes in declaration order.
inline constexpr std::array<InstrClass, kNumInstrClasses> kAllInstrClasses = {
    InstrClass::kFp32, InstrClass::kFp64, InstrClass::kInt,  InstrClass::kBit,
    InstrClass::kBranch, InstrClass::kLoad, InstrClass::kStore,
};

}  // namespace sigvp
