#pragma once

#include <functional>
#include <string>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"

namespace sigvp {

/// A serial instruction-stream executor on the discrete-event timeline.
///
/// Models one CPU context: either the guest CPU of a virtual platform
/// (with an effective instruction rate degraded by binary translation) or a
/// host CPU core running natively. Work items queue FIFO; the processor is
/// busy until all accepted work has drained.
class Processor {
 public:
  Processor(EventQueue& queue, std::string name, double instrs_per_second);

  /// Queues `instrs` instructions of work; `cb` fires at completion.
  void run_instrs(double instrs, std::function<void(SimTime)> cb = {});

  /// Queues a fixed-duration activity (e.g. an I/O wait) on this CPU.
  void run_time(SimTime duration_us, std::function<void(SimTime)> cb = {});

  SimTime busy_until() const { return engine_.free_at(); }
  SimTime busy_total() const { return engine_.busy_time(); }
  double ips() const { return ips_; }
  const std::string& name() const { return engine_.name(); }

 private:
  Engine engine_;
  double ips_;
};

/// Host CPU calibration. `effective_ips` is the IR-instruction throughput of
/// one core of the paper's 32-core Xeon host including SIMD/superscalar
/// effects; calibrated so the C matrix-multiplication row of Table 1 lands
/// near the paper's 8213 ms.
struct HostCpuConfig {
  double effective_ips = 1.1e10;
  double memcpy_gbps = 8.0;
  /// Host-side per-call driver overhead for native GPU use, µs.
  double native_call_overhead_us = 4.0;
};

/// Virtual-platform calibration (QEMU ARM Versatile PB under binary
/// translation). Both factors are derived from the paper's own Table 1:
///  - bt_slowdown = C-on-VP / C-on-CPU = 269874.03 / 8213.09 = 32.86;
///  - emul_isa_expansion = (CUDA-emul-on-VP / CUDA-emul-on-CPU) / bt_slowdown
///    = 40.97 / 32.86 = 1.247 — the emulator's inner loop translates worse
///    than plain C code.
struct VpConfig {
  double bt_slowdown = 32.86;
  double emul_isa_expansion = 1.247;
  /// Guest-side GPU user-library work per API call (instructions).
  double user_lib_instrs_per_call = 1200.0;
  /// Guest-side GPU driver work per API call (instructions).
  double driver_instrs_per_call = 1800.0;

  double guest_ips(const HostCpuConfig& host) const {
    return host.effective_ips / bt_slowdown;
  }
  double guest_memcpy_gbps(const HostCpuConfig& host) const {
    return host.memcpy_gbps / bt_slowdown;
  }
};

}  // namespace sigvp
