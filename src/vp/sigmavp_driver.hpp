#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cuda/driver.hpp"
#include "gpu/device.hpp"
#include "ipc/ipc_manager.hpp"
#include "vp/processor.hpp"

namespace sigvp {

/// The ΣVP guest GPU stack: GPU User Library → guest GPU driver → Virtual
/// Embedded GPU Hardware Model (paper Fig. 2, left column).
///
/// Each API call charges the guest CPU for the user-library and driver code
/// (executed under binary translation), then the virtual GPU hardware model
/// pushes the request through the IPC manager into the host-side Job Queue.
/// Completions travel back through IPC (response message cost, VP-control
/// gating) before the application callback runs.
class SigmaVpDriver final : public cuda::DeviceDriver {
 public:
  /// `ipc_id` is this VP's endpoint from IpcManager::register_vp(); the
  /// dispatcher must have register_vp()'d in the same order.
  SigmaVpDriver(Processor& guest_cpu, IpcManager& ipc, GpuDevice& device,
                std::uint32_t ipc_id, const VpConfig& config);

  std::uint64_t malloc(std::uint64_t bytes) override;
  void free(std::uint64_t addr) override;
  void memcpy_h2d(std::uint64_t dst, const void* src, std::uint64_t bytes,
                  cuda::DoneCallback cb) override;
  void memcpy_d2h(void* dst, std::uint64_t src, std::uint64_t bytes,
                  cuda::DoneCallback cb) override;
  void launch(const cuda::LaunchSpec& spec, cuda::KernelDoneCallback cb) override;
  void synchronize(cuda::DoneCallback cb) override;

  std::uint32_t ipc_id() const { return ipc_id_; }
  std::uint64_t requests_sent() const { return seq_; }

  // --- fault-tolerance fallback ------------------------------------------------
  /// Installs the EmulationDriver (borrowed device memory) that serves this
  /// VP's jobs after the health policy declares the VP failed.
  void enable_fallback(cuda::DeviceDriver* fallback);
  /// Escalation sink: parks `job` until it is the VP's lowest unreleased
  /// sequence number (IpcManager::fallback_turn), then executes it on the
  /// fallback driver — program order survives the degradation boundary.
  void run_fallback_job(Job job);
  /// Re-checks the drain gate; wired to the IPC manager's release listener.
  void pump_fallback();
  std::uint64_t fallback_jobs_run() const { return fallback_jobs_run_; }

 private:
  /// Charges guest user-library + driver time, then runs `then`.
  void guest_call(std::function<void(SimTime)> then);
  void complete_one();
  void execute_fallback(Job job);

  Processor& guest_cpu_;
  IpcManager& ipc_;
  GpuDevice& device_;
  std::uint32_t ipc_id_;
  double call_instrs_;

  std::uint64_t seq_ = 0;
  std::uint32_t outstanding_ = 0;
  std::vector<cuda::DoneCallback> sync_waiters_;

  // --- fallback state (inert without enable_fallback) --------------------------
  cuda::DeviceDriver* fallback_ = nullptr;
  /// Escalated jobs parked by sequence number; drained strictly in order.
  std::map<std::uint64_t, Job> pending_fallback_;
  bool fallback_running_ = false;
  std::uint64_t fallback_jobs_run_ = 0;
};

}  // namespace sigvp
