#include "vp/sigmavp_driver.hpp"

#include <utility>

#include "util/check.hpp"

namespace sigvp {

SigmaVpDriver::SigmaVpDriver(Processor& guest_cpu, IpcManager& ipc, GpuDevice& device,
                             std::uint32_t ipc_id, const VpConfig& config)
    : guest_cpu_(guest_cpu),
      ipc_(ipc),
      device_(device),
      ipc_id_(ipc_id),
      call_instrs_(config.user_lib_instrs_per_call + config.driver_instrs_per_call) {}

void SigmaVpDriver::guest_call(std::function<void(SimTime)> then) {
  guest_cpu_.run_instrs(call_instrs_, std::move(then));
}

std::uint64_t SigmaVpDriver::malloc(std::uint64_t bytes) {
  // Allocation is host-side bookkeeping; the guest pays the stack traversal
  // plus one IPC round trip (it must wait for the device address).
  const std::uint64_t addr = device_.malloc(bytes);
  guest_cpu_.run_instrs(call_instrs_);
  guest_cpu_.run_time(2.0 * ipc_.cost_model().message_cost(0));
  return addr;
}

void SigmaVpDriver::free(std::uint64_t addr) {
  device_.free(addr);
  guest_cpu_.run_instrs(call_instrs_);
  guest_cpu_.run_time(2.0 * ipc_.cost_model().message_cost(0));
}

void SigmaVpDriver::memcpy_h2d(std::uint64_t dst, const void* src, std::uint64_t bytes,
                               cuda::DoneCallback cb) {
  ++outstanding_;
  const std::uint64_t seq = seq_++;
  guest_call([this, dst, src, bytes, seq, cb = std::move(cb)](SimTime) {
    Job job;
    job.vp_id = ipc_id_;
    job.seq_in_vp = seq;
    job.kind = JobKind::kMemcpyH2D;
    job.device_addr = dst;
    job.host_src = src;
    job.bytes = bytes;
    job.on_complete = [this, cb](SimTime end, const KernelExecStats*) {
      if (cb) cb(end);
      complete_one();
    };
    // The payload (guest buffer contents) rides the IPC transport.
    ipc_.send_job(ipc_id_, std::move(job), bytes);
  });
}

void SigmaVpDriver::memcpy_d2h(void* dst, std::uint64_t src, std::uint64_t bytes,
                               cuda::DoneCallback cb) {
  ++outstanding_;
  const std::uint64_t seq = seq_++;
  guest_call([this, dst, src, bytes, seq, cb = std::move(cb)](SimTime) {
    Job job;
    job.vp_id = ipc_id_;
    job.seq_in_vp = seq;
    job.kind = JobKind::kMemcpyD2H;
    job.device_addr = src;
    job.host_dst = dst;
    job.bytes = bytes;
    job.on_complete = [this, cb](SimTime end, const KernelExecStats*) {
      if (cb) cb(end);
      complete_one();
    };
    // Request is control-only; the data payload returns with the response,
    // whose cost is symmetric — charged here as the request payload.
    ipc_.send_job(ipc_id_, std::move(job), bytes);
  });
}

void SigmaVpDriver::launch(const cuda::LaunchSpec& spec, cuda::KernelDoneCallback cb) {
  SIGVP_REQUIRE(spec.request.kernel != nullptr, "launch without a kernel");
  ++outstanding_;
  const std::uint64_t seq = seq_++;
  guest_call([this, spec, seq, cb = std::move(cb)](SimTime) {
    Job job;
    job.vp_id = ipc_id_;
    job.seq_in_vp = seq;
    job.kind = JobKind::kKernel;
    job.launch = spec;
    job.on_complete = [this, cb](SimTime end, const KernelExecStats* stats) {
      SIGVP_ASSERT(stats != nullptr, "kernel completion without stats");
      if (cb) cb(end, *stats);
      complete_one();
    };
    // Launch requests carry only the argument block (~256 B of control).
    ipc_.send_job(ipc_id_, std::move(job), 256);
  });
}

void SigmaVpDriver::synchronize(cuda::DoneCallback cb) {
  if (outstanding_ == 0) {
    // Synchronization still traverses the guest stack.
    guest_call([cb = std::move(cb)](SimTime end) {
      if (cb) cb(end);
    });
    return;
  }
  sync_waiters_.push_back(std::move(cb));
}

// --- fault-tolerance fallback ------------------------------------------------------

void SigmaVpDriver::enable_fallback(cuda::DeviceDriver* fallback) {
  SIGVP_REQUIRE(fallback != nullptr, "null fallback driver");
  fallback_ = fallback;
}

void SigmaVpDriver::run_fallback_job(Job job) {
  SIGVP_REQUIRE(fallback_ != nullptr, "fallback job without a fallback driver");
  pending_fallback_.emplace(job.seq_in_vp, std::move(job));
  pump_fallback();
}

void SigmaVpDriver::pump_fallback() {
  if (fallback_running_) return;
  // Discard stale duplicates first: a request the watchdog gave up on may in
  // fact have been delivered (two-generals) and completed through the normal
  // path; its parked copy would otherwise wedge the seq-ordered drain.
  while (!pending_fallback_.empty() &&
         ipc_.seq_released(ipc_id_, pending_fallback_.begin()->first)) {
    pending_fallback_.erase(pending_fallback_.begin());
  }
  if (pending_fallback_.empty()) return;
  auto it = pending_fallback_.begin();
  // Program order across the degradation boundary: a fallback job runs only
  // when it is the VP's lowest unreleased sequence number, so it can never
  // overtake a predecessor still in flight on the device side (nor another
  // parked fallback job).
  if (!ipc_.fallback_turn(ipc_id_, it->first)) return;
  fallback_running_ = true;
  Job job = std::move(it->second);
  pending_fallback_.erase(it);
  execute_fallback(std::move(job));
}

void SigmaVpDriver::execute_fallback(Job job) {
  ++fallback_jobs_run_;
  auto finish = [this, cb = std::move(job.on_complete)](SimTime end,
                                                        const KernelExecStats* stats) {
    fallback_running_ = false;
    if (cb) cb(end, stats);
    // The completion above releases this job's seq through the in-order
    // buffer, which re-enters pump_fallback via the release listener; this
    // extra pump covers the no-listener (unit-test) wiring.
    pump_fallback();
  };
  switch (job.kind) {
    case JobKind::kMemcpyH2D:
      fallback_->memcpy_h2d(job.device_addr, job.host_src, job.bytes,
                            [finish](SimTime end) { finish(end, nullptr); });
      break;
    case JobKind::kMemcpyD2H:
      fallback_->memcpy_d2h(job.host_dst, job.device_addr, job.bytes,
                            [finish](SimTime end) { finish(end, nullptr); });
      break;
    case JobKind::kKernel:
      fallback_->launch(job.launch, [finish](SimTime end, const KernelExecStats& stats) {
        finish(end, &stats);
      });
      break;
  }
}

void SigmaVpDriver::complete_one() {
  SIGVP_ASSERT(outstanding_ > 0, "completion without an outstanding request");
  --outstanding_;
  if (outstanding_ == 0 && !sync_waiters_.empty()) {
    auto waiters = std::move(sync_waiters_);
    sync_waiters_.clear();
    for (auto& w : waiters) {
      guest_call([w = std::move(w)](SimTime end) {
        if (w) w(end);
      });
    }
  }
}

}  // namespace sigvp
