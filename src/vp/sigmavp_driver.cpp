#include "vp/sigmavp_driver.hpp"

#include <utility>

#include "util/check.hpp"

namespace sigvp {

SigmaVpDriver::SigmaVpDriver(Processor& guest_cpu, IpcManager& ipc, GpuDevice& device,
                             std::uint32_t ipc_id, const VpConfig& config)
    : guest_cpu_(guest_cpu),
      ipc_(ipc),
      device_(device),
      ipc_id_(ipc_id),
      call_instrs_(config.user_lib_instrs_per_call + config.driver_instrs_per_call) {}

void SigmaVpDriver::guest_call(std::function<void(SimTime)> then) {
  guest_cpu_.run_instrs(call_instrs_, std::move(then));
}

std::uint64_t SigmaVpDriver::malloc(std::uint64_t bytes) {
  // Allocation is host-side bookkeeping; the guest pays the stack traversal
  // plus one IPC round trip (it must wait for the device address).
  const std::uint64_t addr = device_.malloc(bytes);
  guest_cpu_.run_instrs(call_instrs_);
  guest_cpu_.run_time(2.0 * ipc_.cost_model().message_cost(0));
  return addr;
}

void SigmaVpDriver::free(std::uint64_t addr) {
  device_.free(addr);
  guest_cpu_.run_instrs(call_instrs_);
  guest_cpu_.run_time(2.0 * ipc_.cost_model().message_cost(0));
}

void SigmaVpDriver::memcpy_h2d(std::uint64_t dst, const void* src, std::uint64_t bytes,
                               cuda::DoneCallback cb) {
  ++outstanding_;
  const std::uint64_t seq = seq_++;
  guest_call([this, dst, src, bytes, seq, cb = std::move(cb)](SimTime) {
    Job job;
    job.vp_id = ipc_id_;
    job.seq_in_vp = seq;
    job.kind = JobKind::kMemcpyH2D;
    job.device_addr = dst;
    job.host_src = src;
    job.bytes = bytes;
    job.on_complete = [this, cb](SimTime end, const KernelExecStats*) {
      if (cb) cb(end);
      complete_one();
    };
    // The payload (guest buffer contents) rides the IPC transport.
    ipc_.send_job(ipc_id_, std::move(job), bytes);
  });
}

void SigmaVpDriver::memcpy_d2h(void* dst, std::uint64_t src, std::uint64_t bytes,
                               cuda::DoneCallback cb) {
  ++outstanding_;
  const std::uint64_t seq = seq_++;
  guest_call([this, dst, src, bytes, seq, cb = std::move(cb)](SimTime) {
    Job job;
    job.vp_id = ipc_id_;
    job.seq_in_vp = seq;
    job.kind = JobKind::kMemcpyD2H;
    job.device_addr = src;
    job.host_dst = dst;
    job.bytes = bytes;
    job.on_complete = [this, cb](SimTime end, const KernelExecStats*) {
      if (cb) cb(end);
      complete_one();
    };
    // Request is control-only; the data payload returns with the response,
    // whose cost is symmetric — charged here as the request payload.
    ipc_.send_job(ipc_id_, std::move(job), bytes);
  });
}

void SigmaVpDriver::launch(const cuda::LaunchSpec& spec, cuda::KernelDoneCallback cb) {
  SIGVP_REQUIRE(spec.request.kernel != nullptr, "launch without a kernel");
  ++outstanding_;
  const std::uint64_t seq = seq_++;
  guest_call([this, spec, seq, cb = std::move(cb)](SimTime) {
    Job job;
    job.vp_id = ipc_id_;
    job.seq_in_vp = seq;
    job.kind = JobKind::kKernel;
    job.launch = spec;
    job.on_complete = [this, cb](SimTime end, const KernelExecStats* stats) {
      SIGVP_ASSERT(stats != nullptr, "kernel completion without stats");
      if (cb) cb(end, *stats);
      complete_one();
    };
    // Launch requests carry only the argument block (~256 B of control).
    ipc_.send_job(ipc_id_, std::move(job), 256);
  });
}

void SigmaVpDriver::synchronize(cuda::DoneCallback cb) {
  if (outstanding_ == 0) {
    // Synchronization still traverses the guest stack.
    guest_call([cb = std::move(cb)](SimTime end) {
      if (cb) cb(end);
    });
    return;
  }
  sync_waiters_.push_back(std::move(cb));
}

void SigmaVpDriver::complete_one() {
  SIGVP_ASSERT(outstanding_ > 0, "completion without an outstanding request");
  --outstanding_;
  if (outstanding_ == 0 && !sync_waiters_.empty()) {
    auto waiters = std::move(sync_waiters_);
    sync_waiters_.clear();
    for (auto& w : waiters) {
      guest_call([w = std::move(w)](SimTime end) {
        if (w) w(end);
      });
    }
  }
}

}  // namespace sigvp
