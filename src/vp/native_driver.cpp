#include "vp/native_driver.hpp"

#include <utility>

namespace sigvp {

NativeDriver::NativeDriver(EventQueue& queue, GpuDevice& device, const HostCpuConfig& host)
    : queue_(queue),
      device_(device),
      stream_(device.create_stream()),
      call_overhead_us_(host.native_call_overhead_us) {}

void NativeDriver::memcpy_h2d(std::uint64_t dst, const void* src, std::uint64_t bytes,
                              cuda::DoneCallback cb) {
  // The host driver call costs a few µs before the DMA is queued; model it
  // as submission delay folded into the copy-engine schedule.
  const SimTime end = device_.memcpy_h2d(stream_, dst, src, bytes) + call_overhead_us_;
  if (cb) queue_.schedule_at(end, [end, cb = std::move(cb)] { cb(end); });
}

void NativeDriver::memcpy_d2h(void* dst, std::uint64_t src, std::uint64_t bytes,
                              cuda::DoneCallback cb) {
  const SimTime end = device_.memcpy_d2h(stream_, dst, src, bytes) + call_overhead_us_;
  if (cb) queue_.schedule_at(end, [end, cb = std::move(cb)] { cb(end); });
}

void NativeDriver::launch(const cuda::LaunchSpec& spec, cuda::KernelDoneCallback cb) {
  device_.launch(stream_, spec.request,
                 [cb = std::move(cb)](SimTime end, const KernelExecStats& stats) {
                   if (cb) cb(end, stats);
                 });
}

void NativeDriver::synchronize(cuda::DoneCallback cb) {
  const SimTime idle = device_.stream_idle_at(stream_);
  const SimTime when = std::max(idle, queue_.now());
  if (cb) queue_.schedule_at(when, [when, cb = std::move(cb)] { cb(when); });
}

}  // namespace sigvp
