#include "vp/processor.hpp"

#include <utility>

#include "util/check.hpp"

namespace sigvp {

Processor::Processor(EventQueue& queue, std::string name, double instrs_per_second)
    : engine_(queue, std::move(name)), ips_(instrs_per_second) {
  SIGVP_REQUIRE(instrs_per_second > 0.0, "processor rate must be positive");
}

void Processor::run_instrs(double instrs, std::function<void(SimTime)> cb) {
  SIGVP_REQUIRE(instrs >= 0.0, "instruction count must be non-negative");
  const SimTime duration_us = instrs / ips_ * 1e6;
  engine_.submit(duration_us, std::move(cb));
}

void Processor::run_time(SimTime duration_us, std::function<void(SimTime)> cb) {
  engine_.submit(duration_us, std::move(cb));
}

}  // namespace sigvp
