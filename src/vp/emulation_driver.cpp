#include "vp/emulation_driver.hpp"

#include <utility>

#include "interp/interpreter.hpp"
#include "util/check.hpp"

namespace sigvp {

namespace {
constexpr std::uint64_t kHeapBase = 4096;
}

EmulationDriver::EmulationDriver(Processor& cpu, EmulationConfig config)
    : cpu_(cpu),
      config_(config),
      owned_memory_(std::make_unique<AddressSpace>(config.device_mem_bytes,
                                                   cpu.name() + ".emul-gpu-mem")),
      memory_(owned_memory_.get()),
      allocator_(kHeapBase, config.device_mem_bytes - kHeapBase) {}

EmulationDriver::EmulationDriver(Processor& cpu, EmulationConfig config, AddressSpace& external)
    : cpu_(cpu),
      config_(config),
      memory_(&external),
      allocator_(kHeapBase, config.device_mem_bytes - kHeapBase) {}

std::uint64_t EmulationDriver::malloc(std::uint64_t bytes) {
  SIGVP_REQUIRE(owned_memory_ != nullptr,
                "malloc on a borrowed-memory emulation fallback (the owner allocates)");
  auto addr = allocator_.allocate(bytes);
  SIGVP_REQUIRE(addr.has_value(), "emulated GPU memory exhausted");
  cpu_.run_time(config_.per_call_us);
  return *addr;
}

void EmulationDriver::free(std::uint64_t addr) {
  SIGVP_REQUIRE(owned_memory_ != nullptr,
                "free on a borrowed-memory emulation fallback (the owner allocates)");
  allocator_.free(addr);
  cpu_.run_time(config_.per_call_us);
}

void EmulationDriver::memcpy_h2d(std::uint64_t dst, const void* src, std::uint64_t bytes,
                                 cuda::DoneCallback cb) {
  if (src != nullptr) memory_->copy_in(dst, src, bytes);
  cpu_.run_time(memcpy_time_us(bytes), std::move(cb));
}

void EmulationDriver::memcpy_d2h(void* dst, std::uint64_t src, std::uint64_t bytes,
                                 cuda::DoneCallback cb) {
  if (dst != nullptr) memory_->copy_out(dst, src, bytes);
  cpu_.run_time(memcpy_time_us(bytes), std::move(cb));
}

void EmulationDriver::launch(const cuda::LaunchSpec& spec, cuda::KernelDoneCallback cb) {
  SIGVP_REQUIRE(spec.request.kernel != nullptr, "launch without a kernel");
  const LaunchRequest& req = spec.request;

  KernelExecStats stats;  // what little the emulator can report
  std::uint64_t sfu = 0;
  std::uint64_t sqrts = 0;
  if (config_.functional) {
    Interpreter interp;
    const DynamicProfile profile = interp.run(*req.kernel, req.dims, req.args, *memory_);
    stats.sigma = profile.instr_counts;
    sfu = profile.sfu_instrs;
    sqrts = profile.sqrt_instrs;
  } else {
    ClassCounts sigma = req.analytic_profile.instr_counts;
    if (sigma.total() == 0 && !req.analytic_profile.block_visits.empty()) {
      sigma = DynamicProfile::counts_from_visits(*req.kernel, req.analytic_profile.block_visits);
    }
    SIGVP_REQUIRE(sigma.total() > 0, "analytic emulation launch without a profile");
    stats.sigma = sigma;
    sfu = req.analytic_profile.sfu_instrs;
    sqrts = req.analytic_profile.sqrt_instrs;
  }
  const double instrs = weighted_instrs(stats.sigma, sfu, sqrts);

  const SimTime duration = config_.per_call_us + kernel_time_us(instrs);
  stats.duration_us = duration;
  stats.num_blocks = req.dims.num_blocks();
  cpu_.run_time(duration, [stats, cb = std::move(cb)](SimTime end) {
    if (cb) cb(end, stats);
  });
}

void EmulationDriver::synchronize(cuda::DoneCallback cb) {
  // Everything executes serially on the CPU context, so synchronization is
  // a zero-length work item queued behind the outstanding ops.
  cpu_.run_time(0.0, std::move(cb));
}

}  // namespace sigvp
