#pragma once

#include <cstdint>
#include <memory>

#include "cuda/driver.hpp"
#include "mem/address_space.hpp"
#include "mem/allocator.hpp"
#include "vp/processor.hpp"

namespace sigvp {

/// Cost model of software GPU emulation (the Mesa-style layer of the
/// paper's Fig. 1(a)): kernels compiled to native code and executed
/// thread-by-thread on a CPU — fast relative to interpretation, but still a
/// CPU doing GPU work.
struct EmulationConfig {
  /// Effective IR-instructions/second of the CPU running the emulator.
  /// Host CPU: HostCpuConfig::effective_ips; VP guest:
  /// effective_ips / bt_slowdown / emul_isa_expansion.
  double cpu_ips = 1.1e10;
  /// Emulator overhead over equivalent plain C code (Table 1:
  /// 9141.51 / 8213.09 = 1.113 on the native host CPU).
  double overhead = 1.113;
  /// cudaMemcpy emulation bandwidth on this CPU.
  double memcpy_gbps = 8.0;
  /// Fixed bookkeeping per emulated API call, µs (at native CPU speed;
  /// scale by bt_slowdown for a guest).
  double per_call_us = 2.0;
  /// Run kernels through the interpreter (functional validation) or price
  /// them from the launch's analytic profile.
  bool functional = true;
  /// Size of the emulated GPU memory arena.
  std::uint64_t device_mem_bytes = 512ull * 1024 * 1024;
  /// Host instructions per emulated GPU instruction, by class: a CPU
  /// emulates floating-point GPU code relatively worse than integer code,
  /// which is why the paper sees lower ΣVP speedups for FP-light apps
  /// (SobelFilter, stereoDisparity, mergeSort, VolumeFilter).
  ClassValues class_weight = default_class_weights();

  /// Extra host instructions per hard transcendental (exp/log/sin/cos):
  /// the GPU executes these on special-function units in a few cycles, the
  /// emulator calls libm. Apps heavy in specials (BlackScholes, simpleGL,
  /// MonteCarlo) emulate disproportionately slowly — the high end of the
  /// paper's Fig. 11 speedup range.
  double sfu_extra_weight = 80.0;
  /// Extra host instructions per sqrt/rsqrt (cheap SSE hardware on CPUs).
  double sqrt_extra_weight = 12.0;

  static ClassValues default_class_weights() {
    ClassValues w = ClassValues::uniform(1.0);
    w[InstrClass::kFp32] = 2.2;
    w[InstrClass::kFp64] = 3.6;
    // Emulated global-memory accesses pay address translation and bounds
    // checks in the emulator on top of the data movement.
    w[InstrClass::kLoad] = 4.0;
    w[InstrClass::kStore] = 4.0;
    return w;
  }
};

/// GPU-emulation backend of the DeviceDriver interface: every operation
/// executes serially on the owning CPU context (no copy/compute overlap —
/// there is no real GPU underneath).
class EmulationDriver final : public cuda::DeviceDriver {
 public:
  EmulationDriver(Processor& cpu, EmulationConfig config);

  /// Borrowed-memory variant (the ΣVP fault-tolerance fallback): operate on
  /// `external` — typically the host GPU's address space — instead of an
  /// owned arena, so device pointers handed out by the real device stay
  /// valid when a failed VP's jobs degrade to emulation. malloc/free are
  /// not available in this mode (the owner allocates).
  EmulationDriver(Processor& cpu, EmulationConfig config, AddressSpace& external);

  std::uint64_t malloc(std::uint64_t bytes) override;
  void free(std::uint64_t addr) override;
  void memcpy_h2d(std::uint64_t dst, const void* src, std::uint64_t bytes,
                  cuda::DoneCallback cb) override;
  void memcpy_d2h(void* dst, std::uint64_t src, std::uint64_t bytes,
                  cuda::DoneCallback cb) override;
  void launch(const cuda::LaunchSpec& spec, cuda::KernelDoneCallback cb) override;
  void synchronize(cuda::DoneCallback cb) override;

  AddressSpace& emulated_memory() { return *memory_; }
  const EmulationConfig& config() const { return config_; }

  /// Class-weighted work of a kernel in equivalent host instructions.
  double weighted_instrs(const ClassCounts& sigma, std::uint64_t sfu_instrs = 0,
                         std::uint64_t sqrt_instrs = 0) const {
    double total = static_cast<double>(sfu_instrs) * config_.sfu_extra_weight +
                   static_cast<double>(sqrt_instrs) * config_.sqrt_extra_weight;
    for (InstrClass c : kAllInstrClasses) {
      total += static_cast<double>(sigma[c]) * config_.class_weight[c];
    }
    return total;
  }

  /// Time the emulator needs for `instrs` weighted kernel instructions.
  SimTime kernel_time_us(double instrs) const {
    return instrs * config_.overhead / config_.cpu_ips * 1e6;
  }
  SimTime memcpy_time_us(std::uint64_t bytes) const {
    return config_.per_call_us + static_cast<double>(bytes) / (config_.memcpy_gbps * 1e3);
  }

 private:
  Processor& cpu_;
  EmulationConfig config_;
  std::unique_ptr<AddressSpace> owned_memory_;  // null in borrowed mode
  AddressSpace* memory_;
  FreeListAllocator allocator_;
};

}  // namespace sigvp
