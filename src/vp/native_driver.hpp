#pragma once

#include <cstdint>
#include <vector>

#include "cuda/driver.hpp"
#include "gpu/device.hpp"
#include "vp/processor.hpp"

namespace sigvp {

/// Native host-GPU backend: the application runs on the host CPU and talks
/// to the physical GPU through the vendor driver — the paper's Table 1
/// baseline row ("CUDA executed by GPU"). Only a small per-call host driver
/// overhead separates this from raw device-model time.
class NativeDriver final : public cuda::DeviceDriver {
 public:
  NativeDriver(EventQueue& queue, GpuDevice& device, const HostCpuConfig& host);

  std::uint64_t malloc(std::uint64_t bytes) override { return device_.malloc(bytes); }
  void free(std::uint64_t addr) override { device_.free(addr); }
  void memcpy_h2d(std::uint64_t dst, const void* src, std::uint64_t bytes,
                  cuda::DoneCallback cb) override;
  void memcpy_d2h(void* dst, std::uint64_t src, std::uint64_t bytes,
                  cuda::DoneCallback cb) override;
  void launch(const cuda::LaunchSpec& spec, cuda::KernelDoneCallback cb) override;
  void synchronize(cuda::DoneCallback cb) override;

  GpuDevice::StreamId stream() const { return stream_; }

 private:
  EventQueue& queue_;
  GpuDevice& device_;
  GpuDevice::StreamId stream_;
  double call_overhead_us_;
};

}  // namespace sigvp
