#include "run/json_writer.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace sigvp::run {

namespace {

std::string json_escape(const std::string& s) { return json::escape(s); }

void append_number(std::ostringstream& os, double v) { os << json::number(v); }

void append_summary(std::ostringstream& os, const SampleSummary& s) {
  os << "{\"count\": " << s.count << ", \"min_us\": ";
  append_number(os, s.min);
  os << ", \"mean_us\": ";
  append_number(os, s.mean);
  os << ", \"p50_us\": ";
  append_number(os, s.p50);
  os << ", \"p95_us\": ";
  append_number(os, s.p95);
  os << ", \"max_us\": ";
  append_number(os, s.max);
  os << "}";
}

}  // namespace

namespace json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trippable representation; JSON has no NaN/Inf, so encode
/// them as null (no simulated quantity should produce them).
std::string number(double v) {
  if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace json

void write_json_file(const std::string& text, const std::string& path) {
  std::ofstream f(path);
  SIGVP_REQUIRE(f.good(), "cannot open JSON results file: " + path);
  f << text;
  SIGVP_REQUIRE(f.good(), "failed writing JSON results file: " + path);
}

std::string sweep_to_json(const SweepResult& sweep, const std::string& bench_name) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"" << json_escape(bench_name) << "\",\n";
  os << "  \"workers\": " << sweep.workers << ",\n";
  os << "  \"wall_ms\": ";
  append_number(os, sweep.wall_ms);
  os << ",\n  \"summary\": ";
  append_summary(os, sweep.summarize());
  // Launch-cache activity; emitted only when the cache did something a
  // trajectory should track (hits or bypasses), so zero-hit runs — cache
  // disabled, analytic-only sweeps, or all-unique launches — produce the
  // same JSON as before the cache existed.
  if (sweep.cache.hits > 0 || sweep.cache.bypasses > 0) {
    const LaunchCacheStats& c = sweep.cache;
    os << ",\n  \"cache\": {\"hits\": " << c.hits << ", \"misses\": " << c.misses
       << ", \"bypasses\": " << c.bypasses << ", \"bytes_replayed\": " << c.bytes_replayed
       << ", \"evictions\": " << c.evictions << ", \"entries\": " << c.entries
       << ", \"bytes\": " << c.bytes << "}";
  }
  os << ",\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < sweep.jobs.size(); ++i) {
    const SweepJobResult& j = sweep.jobs[i];
    const ScenarioResult& r = j.result;
    os << "    {\"name\": \"" << json_escape(j.name) << "\", \"group\": \""
       << json_escape(j.group) << "\", \"makespan_us\": ";
    append_number(os, r.makespan_us);
    os << ", \"app_done_us\": [";
    for (std::size_t a = 0; a < r.app_done_us.size(); ++a) {
      if (a != 0) os << ", ";
      append_number(os, r.app_done_us[a]);
    }
    os << "], \"jobs_dispatched\": " << r.jobs_dispatched
       << ", \"reorders\": " << r.reorders
       << ", \"coalesced_groups\": " << r.coalesced_groups
       << ", \"coalesced_jobs\": " << r.coalesced_jobs
       << ", \"ipc_messages\": " << r.ipc_messages << ", \"gpu_dynamic_energy_j\": ";
    append_number(os, r.gpu_dynamic_energy_j);
    os << ", \"gpu_compute_busy_us\": ";
    append_number(os, r.gpu_compute_busy_us);
    os << ", \"gpu_copy_busy_us\": ";
    append_number(os, r.gpu_copy_busy_us);
    if (r.fault.active) {
      const FaultStats& f = r.fault;
      os << ", \"fault\": {\"messages_dropped\": " << f.messages_dropped
         << ", \"messages_duplicated\": " << f.messages_duplicated
         << ", \"latency_spikes\": " << f.latency_spikes
         << ", \"acks_dropped\": " << f.acks_dropped
         << ", \"launch_failures\": " << f.launch_failures
         << ", \"engine_hangs\": " << f.engine_hangs
         << ", \"device_resets\": " << f.device_resets
         << ", \"ops_killed_by_reset\": " << f.ops_killed_by_reset
         << ", \"vp_stalls\": " << f.vp_stalls
         << ", \"retransmits\": " << f.retransmits
         << ", \"duplicates_suppressed\": " << f.duplicates_suppressed
         << ", \"launch_retries\": " << f.launch_retries
         << ", \"reset_requeues\": " << f.reset_requeues
         << ", \"group_resplits\": " << f.group_resplits
         << ", \"vps_quarantined\": " << f.vps_quarantined
         << ", \"vp_restarts\": " << f.vp_restarts
         << ", \"fallbacks\": " << f.fallbacks
         << ", \"fallback_jobs\": " << f.fallback_jobs
         << ", \"unrecovered_jobs\": " << f.unrecovered_jobs
         << ", \"recovery_latency_mean_us\": ";
      append_number(os, f.recovery_latency_mean_us());
      os << ", \"recovery_latency_max_us\": ";
      append_number(os, f.recovery_latency_max_us);
      os << "}";
    }
    os << "}";
    if (i + 1 != sweep.jobs.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void write_sweep_json(const SweepResult& sweep, const std::string& bench_name,
                      const std::string& path) {
  write_json_file(sweep_to_json(sweep, bench_name), path);
}

}  // namespace sigvp::run
