#include "run/json_writer.hpp"

#include <cstdio>
#include <sstream>

#include "trace/metrics.hpp"
#include "util/check.hpp"
#include "util/fileio.hpp"
#include "util/jsonfmt.hpp"
#include "util/log.hpp"

namespace sigvp::run {

namespace {

std::string json_escape(const std::string& s) { return json::escape(s); }

void append_number(std::ostringstream& os, double v) { os << json::number(v); }

void append_summary(std::ostringstream& os, const SampleSummary& s) {
  os << "{\"count\": " << s.count << ", \"min_us\": ";
  append_number(os, s.min);
  os << ", \"mean_us\": ";
  append_number(os, s.mean);
  os << ", \"p50_us\": ";
  append_number(os, s.p50);
  os << ", \"p95_us\": ";
  append_number(os, s.p95);
  os << ", \"max_us\": ";
  append_number(os, s.max);
  os << "}";
}

}  // namespace

namespace json {

// Thin aliases over the shared util primitives (kept for the existing bench
// call sites; src/trace uses util::json_* directly).
std::string escape(const std::string& s) { return util::json_escape(s); }
std::string number(double v) { return util::json_number(v); }

}  // namespace json

bool try_write_json_file(const std::string& text, const std::string& path) {
  // Crash-safe publication: write-temp + fsync + atomic rename, so a process
  // killed mid-write can never leave a torn BENCH/baseline file behind —
  // readers see the previous version or the complete new one. Non-regular
  // destinations (e.g. --json /dev/full in the error-path tests) are written
  // directly, preserving the device node and its failure semantics.
  return util::write_file_atomic(path, text);
}

void write_json_file(const std::string& text, const std::string& path) {
  SIGVP_REQUIRE(try_write_json_file(text, path),
                "failed writing JSON results file: " + path);
}

std::string sweep_to_json(const SweepResult& sweep, const std::string& bench_name) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"" << json_escape(bench_name) << "\",\n";
  os << "  \"workers\": " << sweep.workers << ",\n";
  os << "  \"wall_ms\": ";
  append_number(os, sweep.wall_ms);
  os << ",\n  \"summary\": ";
  append_summary(os, sweep.summarize());
  // Launch-cache activity; emitted only when the cache did something a
  // trajectory should track (hits or bypasses), so zero-hit runs — cache
  // disabled, analytic-only sweeps, or all-unique launches — produce the
  // same JSON as before the cache existed.
  if (sweep.cache.hits > 0 || sweep.cache.bypasses > 0) {
    const LaunchCacheStats& c = sweep.cache;
    os << ",\n  \"cache\": {\"hits\": " << c.hits << ", \"misses\": " << c.misses
       << ", \"bypasses\": " << c.bypasses << ", \"bytes_replayed\": " << c.bytes_replayed
       << ", \"evictions\": " << c.evictions << ", \"entries\": " << c.entries
       << ", \"bytes\": " << c.bytes << "}";
  }
  // Deterministic sim-domain metrics (src/trace), aggregated across the
  // sweep's scenarios in canonical input order. Present only when collection
  // was on (SIGVP_TRACE / SIGVP_METRICS=1 / --trace), so default runs stay
  // byte-identical to builds without the trace subsystem.
  if (sweep.metrics != nullptr && !sweep.metrics->empty()) {
    os << ",\n  \"metrics\": " << sweep.metrics->to_json("  ");
  }
  os << ",\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < sweep.jobs.size(); ++i) {
    const SweepJobResult& j = sweep.jobs[i];
    const ScenarioResult& r = j.result;
    os << "    {\"name\": \"" << json_escape(j.name) << "\", \"group\": \""
       << json_escape(j.group) << "\", \"makespan_us\": ";
    append_number(os, r.makespan_us);
    os << ", \"app_done_us\": [";
    for (std::size_t a = 0; a < r.app_done_us.size(); ++a) {
      if (a != 0) os << ", ";
      append_number(os, r.app_done_us[a]);
    }
    os << "], \"jobs_dispatched\": " << r.jobs_dispatched
       << ", \"reorders\": " << r.reorders
       << ", \"coalesced_groups\": " << r.coalesced_groups
       << ", \"coalesced_jobs\": " << r.coalesced_jobs
       << ", \"ipc_messages\": " << r.ipc_messages << ", \"gpu_dynamic_energy_j\": ";
    append_number(os, r.gpu_dynamic_energy_j);
    os << ", \"gpu_compute_busy_us\": ";
    append_number(os, r.gpu_compute_busy_us);
    os << ", \"gpu_copy_busy_us\": ";
    append_number(os, r.gpu_copy_busy_us);
    // Per-request latency percentiles (open-loop traffic scenarios only).
    // Emitted only when requests ran, so closed-loop jobs keep their JSON
    // byte-identical to builds without the traffic subsystem.
    if (r.latency.count > 0) {
      os << ", \"requests\": " << r.requests_completed
         << ", \"latency\": {\"count\": " << r.latency.count << ", \"mean_us\": ";
      append_number(os, r.latency.mean());
      os << ", \"p50_us\": ";
      append_number(os, r.latency.quantile(0.50));
      os << ", \"p95_us\": ";
      append_number(os, r.latency.quantile(0.95));
      os << ", \"p99_us\": ";
      append_number(os, r.latency.quantile(0.99));
      os << ", \"max_us\": ";
      append_number(os, r.latency.max);
      os << "}";
    }
    if (r.fault.active) {
      const FaultStats& f = r.fault;
      os << ", \"fault\": {\"messages_dropped\": " << f.messages_dropped
         << ", \"messages_duplicated\": " << f.messages_duplicated
         << ", \"latency_spikes\": " << f.latency_spikes
         << ", \"acks_dropped\": " << f.acks_dropped
         << ", \"launch_failures\": " << f.launch_failures
         << ", \"engine_hangs\": " << f.engine_hangs
         << ", \"device_resets\": " << f.device_resets
         << ", \"ops_killed_by_reset\": " << f.ops_killed_by_reset
         << ", \"vp_stalls\": " << f.vp_stalls
         << ", \"retransmits\": " << f.retransmits
         << ", \"duplicates_suppressed\": " << f.duplicates_suppressed
         << ", \"launch_retries\": " << f.launch_retries
         << ", \"reset_requeues\": " << f.reset_requeues
         << ", \"group_resplits\": " << f.group_resplits
         << ", \"vps_quarantined\": " << f.vps_quarantined
         << ", \"vp_restarts\": " << f.vp_restarts
         << ", \"fallbacks\": " << f.fallbacks
         << ", \"fallback_jobs\": " << f.fallback_jobs
         << ", \"unrecovered_jobs\": " << f.unrecovered_jobs
         << ", \"recovery_latency_mean_us\": ";
      append_number(os, f.recovery_latency_mean_us());
      os << ", \"recovery_latency_max_us\": ";
      append_number(os, f.recovery_latency_max_us);
      os << "}";
    }
    // Sharded-fleet observables (DESIGN.md §16); absent on the classic
    // single-domain path, so legacy BENCH JSON stays byte-identical.
    // sync_rounds / resident_bytes stay OUT of this block on purpose: an
    // armed snapshotter's capture-cadence events are real events in the
    // domain queues, so those two executor stats see them — emitting them
    // here would break §14's "checkpointing never changes a result byte"
    // contract. They are reported via the metrics block and bench/fleet_scale.
    if (r.fleet.domains > 0) {
      const FleetStats& fl = r.fleet;
      os << ", \"fleet\": {\"domains\": " << fl.domains << ", \"lookahead_us\": ";
      append_number(os, fl.lookahead_us);
      os << ", \"fabric_messages\": " << fl.fabric_messages
         << ", \"fabric_hops\": " << fl.fabric_hops << ", \"fleet_done_us\": ";
      append_number(os, fl.fleet_done_us);
      os << ", \"cache_hits\": " << fl.cache_hits
         << ", \"cache_misses\": " << fl.cache_misses << "}";
    }
    // Multi-GPU placement observables; absent unless the scenario declared
    // host_gpus, so legacy BENCH JSON stays byte-identical.
    if (r.gpus.devices > 0) {
      const MultiGpuStats& mg = r.gpus;
      os << ", \"host_gpus\": {\"devices\": " << mg.devices
         << ", \"migrations\": " << mg.migrations
         << ", \"migrated_bytes\": " << mg.migrated_bytes << ", \"per_device\": [";
      for (std::size_t d = 0; d < mg.per_device.size(); ++d) {
        const GpuDeviceStats& ds = mg.per_device[d];
        if (d != 0) os << ", ";
        os << "{\"arch\": \"" << ds.arch << "\", \"vps\": " << ds.vps
           << ", \"jobs\": " << ds.jobs << ", \"kernels\": " << ds.kernels
           << ", \"compute_busy_us\": ";
        append_number(os, ds.compute_busy_us);
        os << ", \"copy_busy_us\": ";
        append_number(os, ds.copy_busy_us);
        os << ", \"energy_j\": ";
        append_number(os, ds.energy_j);
        os << "}";
      }
      os << "]}";
    }
    os << "}";
    if (i + 1 != sweep.jobs.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void write_sweep_json(const SweepResult& sweep, const std::string& bench_name,
                      const std::string& path) {
  write_json_file(sweep_to_json(sweep, bench_name), path);
}

bool try_write_sweep_json(const SweepResult& sweep, const std::string& bench_name,
                          const std::string& path) {
  if (try_write_json_file(sweep_to_json(sweep, bench_name), path)) return true;
  SIGVP_WARN("bench") << "failed writing JSON results file: " << path;
  return false;
}

}  // namespace sigvp::run
