#include "run/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "run/thread_pool.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp::run {

const SweepJobResult& SweepResult::find(const std::string& name) const {
  for (const SweepJobResult& j : jobs) {
    if (j.name == name) return j;
  }
  throw ContractError("no sweep job named '" + name + "'");
}

double SweepResult::speedup(const std::string& job, const std::string& baseline) const {
  const double base = find(baseline).result.makespan_us;
  const double mine = find(job).result.makespan_us;
  SIGVP_REQUIRE(mine > 0.0, "speedup against a zero-makespan job");
  return base / mine;
}

SampleSummary SweepResult::summarize() const { return summarize_group(""); }

SampleSummary SweepResult::summarize_group(const std::string& group) const {
  std::vector<double> makespans;
  for (const SweepJobResult& j : jobs) {
    if (group.empty() || j.group == group) makespans.push_back(j.result.makespan_us);
  }
  SIGVP_REQUIRE(!makespans.empty(),
                group.empty() ? std::string("summary of an empty sweep")
                              : "no sweep jobs in group '" + group + "'");
  return sigvp::summarize(makespans);
}

SweepRunner::SweepRunner(std::size_t workers)
    : workers_(workers == 0 ? ThreadPool::default_workers() : workers) {}

SweepResult SweepRunner::run(const std::vector<SweepJob>& jobs) const {
  for (const SweepJob& a : jobs) {
    SIGVP_REQUIRE(!a.name.empty(), "sweep job without a name");
    for (const SweepJob& b : jobs) {
      SIGVP_REQUIRE(&a == &b || a.name != b.name, "duplicate sweep job name: " + a.name);
    }
  }

  SweepResult out;
  out.workers = workers_;
  out.jobs.resize(jobs.size());

  const LaunchCacheStats cache_before = LaunchCache::instance().stats();
  const auto wall_start = std::chrono::steady_clock::now();
  {
    // Results land in their input slot, so aggregation order — and therefore
    // every downstream number — is independent of scheduling order.
    ThreadPool pool(std::min(workers_, std::max<std::size_t>(1, jobs.size())));
    trace::Tracer* tracer = trace::Tracer::active();
    parallel_for(pool, jobs.size(), [&jobs, &out, tracer](std::size_t i) {
      // Host-domain span for this sweep job (how the simulator itself spent
      // its wall-clock); never part of the deterministic metrics.
      const double host_t0 = tracer != nullptr ? tracer->host_now_us() : 0.0;
      out.jobs[i].name = jobs[i].name;
      out.jobs[i].group = jobs[i].group;
      out.jobs[i].result = run_scenario(jobs[i].config, jobs[i].apps);
      if (tracer != nullptr) {
        tracer->complete(tracer->host_pid(), tracer->host_tid(), "sweep", jobs[i].name,
                         host_t0, tracer->host_now_us() - host_t0);
      }
    });
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                          wall_start)
                    .count();
  out.cache = LaunchCache::instance().stats() - cache_before;

  // Fold per-scenario metrics in canonical input order: counters add and
  // histograms sum bucket-wise, so the merged registry is bit-identical for
  // any worker count.
  for (const SweepJobResult& j : out.jobs) {
    if (j.result.metrics == nullptr) continue;
    if (out.metrics == nullptr) out.metrics = std::make_shared<trace::Metrics>();
    out.metrics->merge(*j.result.metrics);
  }
  return out;
}

SweepCli parse_sweep_cli(int argc, char** argv, const std::string& default_json) {
  SweepCli cli;
  cli.json_path = default_json;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      cli.workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      cli.json_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      cli.trace_path = argv[++i];
    }
  }
  if (!cli.trace_path.empty()) trace::Tracer::enable(cli.trace_path);
  return cli;
}

bool flush_trace() {
  trace::Tracer* tracer = trace::Tracer::active();
  if (tracer == nullptr) return true;
  const bool ok = tracer->write();
  if (ok) {
    SIGVP_INFO("trace") << "wrote " << tracer->event_count() << " events to "
                        << tracer->path();
  }
  return ok;
}

}  // namespace sigvp::run
