#include "run/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "run/thread_pool.hpp"
#include "snapshot/io.hpp"
#include "snapshot/state.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp::run {

const SweepJobResult& SweepResult::find(const std::string& name) const {
  for (const SweepJobResult& j : jobs) {
    if (j.name == name) return j;
  }
  throw ContractError("no sweep job named '" + name + "'");
}

double SweepResult::speedup(const std::string& job, const std::string& baseline) const {
  const double base = find(baseline).result.makespan_us;
  const double mine = find(job).result.makespan_us;
  SIGVP_REQUIRE(mine > 0.0, "speedup against a zero-makespan job");
  return base / mine;
}

SampleSummary SweepResult::summarize() const { return summarize_group(""); }

SampleSummary SweepResult::summarize_group(const std::string& group) const {
  std::vector<double> makespans;
  for (const SweepJobResult& j : jobs) {
    if (group.empty() || j.group == group) makespans.push_back(j.result.makespan_us);
  }
  SIGVP_REQUIRE(!makespans.empty(),
                group.empty() ? std::string("summary of an empty sweep")
                              : "no sweep jobs in group '" + group + "'");
  return sigvp::summarize(makespans);
}

SweepRunner::SweepRunner(std::size_t workers)
    : workers_(workers == 0 ? ThreadPool::default_workers() : workers) {}

namespace {

/// Identity of the whole sweep: the job list in order. A checkpoint is only
/// resumable into a sweep with the same fingerprint.
std::uint64_t sweep_fingerprint(const std::vector<SweepJob>& jobs) {
  snapshot::Writer w;
  w.u64(jobs.size());
  for (const SweepJob& j : jobs) {
    w.u64(snapshot::scenario_fingerprint(j.name, j.group, j.config, j.apps));
  }
  return w.digest();
}

/// Folds the cache delta a checkpoint carried over into the delta of the
/// resumed run: counters add, residency levels come from the live (later)
/// snapshot — the same level-vs-delta split LaunchCacheStats::operator-
/// uses.
LaunchCacheStats cache_sum(const LaunchCacheStats& saved, const LaunchCacheStats& live) {
  LaunchCacheStats out = live;
  out.hits += saved.hits;
  out.misses += saved.misses;
  out.bypasses += saved.bypasses;
  out.bytes_replayed += saved.bytes_replayed;
  out.evictions += saved.evictions;
  return out;
}

/// Mutable checkpoint of the running sweep, shared by every worker thread.
/// All mutation happens under `mutex`; publication re-encodes the whole
/// checkpoint (bench-scale sweeps are small) and lets the store rotate.
struct CheckpointState {
  std::mutex mutex;
  snapshot::SweepCheckpoint cp;
  snapshot::CheckpointStore* store = nullptr;
  LaunchCacheStats cache_base;  // process stats at run start (post-import)

  void publish_locked() {
    if (store != nullptr) store->publish(snapshot::encode_sweep_checkpoint(cp));
  }
};

}  // namespace

SweepResult SweepRunner::run(const std::vector<SweepJob>& jobs) const {
  return run(jobs, SweepSnapshotOptions{}, nullptr);
}

SweepResult SweepRunner::run(const std::vector<SweepJob>& jobs, const SweepSnapshotOptions& snap,
                             SweepResumeInfo* resume_info) const {
  for (const SweepJob& a : jobs) {
    SIGVP_REQUIRE(!a.name.empty(), "sweep job without a name");
    for (const SweepJob& b : jobs) {
      SIGVP_REQUIRE(&a == &b || a.name != b.name, "duplicate sweep job name: " + a.name);
    }
  }

  SweepResult out;
  out.workers = workers_;
  out.jobs.resize(jobs.size());

  const bool checkpointing = !snap.dir.empty();
  const bool resuming_file = !snap.resume_path.empty();
  const std::uint64_t fingerprint =
      (checkpointing || resuming_file) ? sweep_fingerprint(jobs) : 0;

  std::unique_ptr<snapshot::CheckpointStore> store;
  if (checkpointing) store = std::make_unique<snapshot::CheckpointStore>(snap.dir);

  // --- resume: newest valid checkpoint wins, corrupt ones are skipped --------
  SweepResumeInfo info;
  snapshot::SweepCheckpoint loaded;
  bool have = false;
  auto try_load = [&](const std::string& path) {
    try {
      snapshot::SweepCheckpoint cp =
          snapshot::decode_sweep_checkpoint(snapshot::load_snapshot_file(path));
      if (cp.fingerprint != fingerprint) {
        throw snapshot::SnapshotError("checkpoint is for a different sweep: " + path);
      }
      if (cp.jobs.size() != jobs.size()) {
        throw snapshot::SnapshotError("checkpoint job count mismatch: " + path);
      }
      loaded = std::move(cp);
      have = true;
      info.resumed_from = path;
    } catch (const snapshot::SnapshotError& e) {
      SIGVP_WARN("snapshot") << "rejected " << path << ": " << e.what();
      info.rejected.push_back(path);
    }
  };
  if (resuming_file) try_load(snap.resume_path);
  if (!have && store != nullptr) {
    snapshot::CheckpointStore::Latest latest = store->find_latest_valid();
    for (const std::string& r : latest.rejected) info.rejected.push_back(r);
    if (!latest.path.empty()) try_load(latest.path);
  }

  // Splice finished results and rebuild the launch cache's resident set.
  std::vector<char> done(jobs.size(), 0);
  if (have) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (loaded.jobs[i].done) {
        out.jobs[i].name = jobs[i].name;
        out.jobs[i].group = jobs[i].group;
        out.jobs[i].result = loaded.jobs[i].result;
        done[i] = 1;
        ++info.jobs_resumed;
      } else if (!loaded.jobs[i].captures.empty()) {
        ++info.jobs_replayed;
      }
    }
    if (!loaded.cache_blob.empty()) {
      snapshot::Reader r(loaded.cache_blob);
      LaunchCache::instance().import_state(r);
    }
    SIGVP_INFO("snapshot") << "resumed " << info.jobs_resumed << "/" << jobs.size()
                           << " finished jobs from " << info.resumed_from << " ("
                           << info.jobs_replayed << " replayed under digest verification)";
  }
  const LaunchCacheStats saved_delta = have ? loaded.cache_delta : LaunchCacheStats{};

  CheckpointState state;
  state.store = store.get();
  state.cp.fingerprint = fingerprint;
  state.cp.jobs.resize(jobs.size());
  if (have) {
    state.cp.cache_blob = loaded.cache_blob;
    state.cp.cache_delta = loaded.cache_delta;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (done[i]) state.cp.jobs[i] = loaded.jobs[i];
    }
  }

  const LaunchCacheStats cache_before = LaunchCache::instance().stats();
  state.cache_base = cache_before;
  const auto wall_start = std::chrono::steady_clock::now();
  {
    // Results land in their input slot, so aggregation order — and therefore
    // every downstream number — is independent of scheduling order.
    ThreadPool pool(std::min(workers_, std::max<std::size_t>(1, jobs.size())));
    trace::Tracer* tracer = trace::Tracer::active();
    parallel_for(pool, jobs.size(),
                 [&jobs, &out, tracer, &done, &loaded, have, checkpointing, &snap, &state,
                  &saved_delta](std::size_t i) {
      if (done[i]) return;  // spliced from the checkpoint
      // Host-domain span for this sweep job (how the simulator itself spent
      // its wall-clock); never part of the deterministic metrics.
      const double host_t0 = tracer != nullptr ? tracer->host_now_us() : 0.0;
      out.jobs[i].name = jobs[i].name;
      out.jobs[i].group = jobs[i].group;
      CaptureOptions co;
      if (have) co.expect = loaded.jobs[i].captures;
      if (checkpointing || !co.expect.empty()) co.every_us = snap.every_us;
      if (checkpointing) {
        co.on_capture = [&state, i](const FleetCapture& fc) {
          std::lock_guard<std::mutex> lock(state.mutex);
          state.cp.jobs[i].captures.push_back(fc);
          state.publish_locked();
        };
      }
      out.jobs[i].result = co.every_us > 0.0
                               ? run_scenario(jobs[i].config, jobs[i].apps, co, nullptr)
                               : run_scenario(jobs[i].config, jobs[i].apps);
      if (checkpointing) {
        std::lock_guard<std::mutex> lock(state.mutex);
        snapshot::JobCheckpoint& jc = state.cp.jobs[i];
        jc.done = true;
        jc.result = out.jobs[i].result;
        jc.captures.clear();
        // Job-completion boundary: refresh the durable cache state. Only
        // here — never at capture cadence — so a mid-job crash cannot
        // double-count the partial cache work of a job that will re-run.
        snapshot::Writer cw;
        LaunchCache::instance().export_state(cw);
        state.cp.cache_blob = cw.take();
        state.cp.cache_delta =
            cache_sum(saved_delta, LaunchCache::instance().stats() - state.cache_base);
        state.publish_locked();
      }
      if (tracer != nullptr) {
        tracer->complete(tracer->host_pid(), tracer->host_tid(), "sweep", jobs[i].name,
                         host_t0, tracer->host_now_us() - host_t0);
      }
    });
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                          wall_start)
                    .count();
  out.cache = cache_sum(saved_delta, LaunchCache::instance().stats() - cache_before);

  // Fold per-scenario metrics in canonical input order: counters add and
  // histograms sum bucket-wise, so the merged registry is bit-identical for
  // any worker count.
  for (const SweepJobResult& j : out.jobs) {
    if (j.result.metrics == nullptr) continue;
    if (out.metrics == nullptr) out.metrics = std::make_shared<trace::Metrics>();
    out.metrics->merge(*j.result.metrics);
  }
  if (resume_info != nullptr) *resume_info = info;
  return out;
}

SweepCli parse_sweep_cli(int argc, char** argv, const std::string& default_json) {
  SweepCli cli;
  cli.json_path = default_json;
  // Environment first, flags override.
  if (const char* dir = std::getenv("SIGVP_SNAPSHOT_DIR"); dir != nullptr && *dir != '\0') {
    cli.snapshot_dir = dir;
  }
  if (const char* every = std::getenv("SIGVP_SNAPSHOT_EVERY");
      every != nullptr && *every != '\0') {
    const double us = std::strtod(every, nullptr);
    if (us > 0.0) cli.snapshot_every_us = us;
  }
  if (const char* shards = std::getenv("SIGVP_SHARDS"); shards != nullptr && *shards != '\0') {
    cli.shards = static_cast<std::size_t>(std::strtoul(shards, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      cli.workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      cli.json_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      cli.trace_path = argv[++i];
    } else if (arg == "--snapshot-dir" && i + 1 < argc) {
      cli.snapshot_dir = argv[++i];
    } else if (arg == "--snapshot-every" && i + 1 < argc) {
      const double us = std::strtod(argv[++i], nullptr);
      if (us > 0.0) cli.snapshot_every_us = us;
    } else if (arg == "--resume" && i + 1 < argc) {
      cli.resume_path = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      cli.shards = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  if (!cli.trace_path.empty()) trace::Tracer::enable(cli.trace_path);
  set_fleet_shards(cli.shards);
  return cli;
}

bool flush_trace() {
  trace::Tracer* tracer = trace::Tracer::active();
  if (tracer == nullptr) return true;
  const bool ok = tracer->write();
  if (ok) {
    SIGVP_INFO("trace") << "wrote " << tracer->event_count() << " events to "
                        << tracer->path();
  }
  return ok;
}

}  // namespace sigvp::run
