#pragma once

#include <string>

#include "run/sweep.hpp"

namespace sigvp::run {

/// Serializes a sweep to the machine-readable bench trajectory format.
///
/// Schema (stable; documented in README "Parallel scenario sweeps"):
/// {
///   "bench": "<name>", "workers": N, "wall_ms": W,
///   "summary": {"count": n, "min_us": .., "mean_us": .., "p50_us": ..,
///               "p95_us": .., "max_us": ..},
///   "jobs": [{"name": .., "group": .., "makespan_us": ..,
///             "app_done_us": [..], "jobs_dispatched": .., "reorders": ..,
///             "coalesced_groups": .., "coalesced_jobs": ..,
///             "ipc_messages": .., "gpu_dynamic_energy_j": ..,
///             "gpu_compute_busy_us": .., "gpu_copy_busy_us": ..}, ...]
/// }
///
/// Jobs whose scenarios served open-loop traffic (AppInstance::arrivals)
/// additionally carry `"requests": N` and a `"latency"` object with the
/// per-request latency distribution ({"count", "mean_us", "p50_us",
/// "p95_us", "p99_us", "max_us"}, sim-domain µs, deterministic for any
/// worker count); zero-traffic jobs omit both keys.
/// Jobs that ran under an enabled fault plan additionally carry a "fault"
/// object with the injected/recovery counters (FaultStats). Zero-fault runs
/// omit the key entirely, keeping their JSON byte-identical to builds
/// without the fault layer. Likewise, when metrics collection was on
/// (SIGVP_TRACE / SIGVP_METRICS=1 / --trace) the document carries a
/// top-level "metrics" object (counters/gauges/histograms aggregated across
/// scenarios in canonical input order); default runs omit it.
std::string sweep_to_json(const SweepResult& sweep, const std::string& bench_name);

/// Writes `sweep_to_json` to `path` (e.g. "BENCH_fig11_suite.json").
void write_sweep_json(const SweepResult& sweep, const std::string& bench_name,
                      const std::string& path);

/// Like write_sweep_json but logs the failure and returns false instead of
/// throwing. Bench mains use this so `--json` to an unwritable path turns
/// into `return 1`, not an uncaught exception (or — worse — a silent
/// success, which is what the pre-flush good() check used to produce).
bool try_write_sweep_json(const SweepResult& sweep, const std::string& bench_name,
                          const std::string& path);

/// Low-level JSON primitives shared by the sweep serializer and the
/// non-sweep benches (e.g. `bench/interp_throughput`), so every BENCH_*.json
/// goes through one escaping/number-formatting implementation.
namespace json {

/// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
std::string escape(const std::string& s);

/// Shortest round-trippable decimal representation; NaN/Inf encode as null.
std::string number(double v);

}  // namespace json

/// Writes an already-serialized JSON document to `path`, with the same
/// error contract as `write_sweep_json`.
void write_json_file(const std::string& text, const std::string& path);

/// Like write_json_file but reports failure instead of throwing — the write
/// is only considered successful once the stream has flushed and closed
/// cleanly. Benches use this so `--json` to an unwritable path exits
/// nonzero instead of silently succeeding.
bool try_write_json_file(const std::string& text, const std::string& path);

}  // namespace sigvp::run
