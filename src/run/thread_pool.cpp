#include "run/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "util/check.hpp"

namespace sigvp::run {

namespace {
// Set at worker start and while a non-worker thread helps execute pool
// tasks, so nested-parallelism budgets see helpers as workers too.
thread_local bool tl_pool_worker = false;
}  // namespace

std::size_t ThreadPool::default_workers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

bool ThreadPool::on_worker_thread() { return tl_pool_worker; }

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_workers();
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SIGVP_REQUIRE(static_cast<bool>(task), "null task submitted to thread pool");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SIGVP_REQUIRE(!stopping_, "submit on a stopping thread pool");
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::finish_task() {
  std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
  if (in_flight_ == 0) all_done_.notify_all();
}

bool ThreadPool::help_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop_front();
  }
  const bool was_worker = tl_pool_worker;
  tl_pool_worker = true;
  task();
  tl_pool_worker = was_worker;
  finish_task();
  return true;
}

void ThreadPool::worker_loop() {
  tl_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    finish_task();
  }
}

namespace {

/// Completion tracking for one parallel_for call, so several calls can
/// share one pool: each call waits for *its* chunks, not for pool idleness
/// (wait_idle from inside a pool task would deadlock on its own task).
struct TaskGroup {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = 0;
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Chunked dispatch: tiny per-item work (fleet-domain advancement, 100k-VP
  // construction) must not pay one queue round-trip per item.
  const std::size_t grain = std::max<std::size_t>(1, count / (pool.size() * 4));
  const std::size_t n_chunks = (count + grain - 1) / grain;

  // First exception per chunk; chunks are in index order, and within a chunk
  // the first failing index is recorded, so rethrowing the first non-null
  // entry preserves the "lowest index wins" contract of the unchunked
  // implementation.
  std::vector<std::exception_ptr> errors(n_chunks);
  auto group = std::make_shared<TaskGroup>();
  group->remaining = n_chunks;

  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(count, begin + grain);
    pool.submit([begin, end, c, &fn, &errors, group] {
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (!errors[c]) errors[c] = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> lock(group->mutex);
        --group->remaining;
      }
      group->done.notify_all();
    });
  }

  // Help-while-waiting: run queued tasks (ours or another group's) on this
  // thread; sleep only when the queue is momentarily empty — at that point
  // every chunk of this group is either done or executing on some thread,
  // so the final decrement's notify is guaranteed to arrive.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(group->mutex);
      if (group->remaining == 0) break;
    }
    if (pool.help_one()) continue;
    std::unique_lock<std::mutex> lock(group->mutex);
    group->done.wait(lock, [&group, &pool] {
      return group->remaining == 0;
    });
    (void)pool;
  }

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::size_t inner_parallel_workers(std::size_t requested) {
  if (ThreadPool::on_worker_thread()) return 1;
  return requested == 0 ? ThreadPool::default_workers() : requested;
}

namespace {
std::atomic<std::size_t> g_fleet_shards{1};
std::mutex g_fleet_pool_mutex;
std::unique_ptr<ThreadPool> g_fleet_pool;
}  // namespace

void set_fleet_shards(std::size_t shards) {
  g_fleet_shards.store(shards == 0 ? 1 : shards, std::memory_order_relaxed);
}

std::size_t fleet_shards() { return g_fleet_shards.load(std::memory_order_relaxed); }

ThreadPool& fleet_pool(std::size_t workers) {
  SIGVP_REQUIRE(workers >= 1, "fleet pool needs at least one worker");
  std::lock_guard<std::mutex> lock(g_fleet_pool_mutex);
  if (g_fleet_pool == nullptr || g_fleet_pool->size() < workers) {
    g_fleet_pool = std::make_unique<ThreadPool>(workers);
  }
  return *g_fleet_pool;
}

}  // namespace sigvp::run
