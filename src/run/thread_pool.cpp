#include "run/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/check.hpp"

namespace sigvp::run {

namespace {
// Set once at worker start; never reset (pool workers stay workers for life).
thread_local bool tl_pool_worker = false;
}  // namespace

std::size_t ThreadPool::default_workers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

bool ThreadPool::on_worker_thread() { return tl_pool_worker; }

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_workers();
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SIGVP_REQUIRE(static_cast<bool>(task), "null task submitted to thread pool");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SIGVP_REQUIRE(!stopping_, "submit on a stopping thread pool");
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  tl_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::vector<std::exception_ptr> errors(count);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([i, &fn, &errors] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::size_t inner_parallel_workers(std::size_t requested) {
  if (ThreadPool::on_worker_thread()) return 1;
  return requested == 0 ? ThreadPool::default_workers() : requested;
}

}  // namespace sigvp::run
