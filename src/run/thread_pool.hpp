#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sigvp::run {

/// Fixed-size pool of host worker threads.
///
/// The simulation itself is single-threaded by design (one deterministic
/// EventQueue per scenario); the pool provides *host-side* parallelism across
/// independent scenario runs — the sharding layer every sweep-shaped workload
/// in this repository (Fig. 11 suite, design-space exploration, ablations)
/// funnels through. Tasks are drained FIFO; worker count is fixed at
/// construction.
class ThreadPool {
 public:
  /// `workers == 0` picks `default_workers()`.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueues a task. Tasks must not throw — wrap fallible work yourself
  /// (parallel_for does) so exceptions can be reported to the caller.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Host hardware concurrency, never less than 1.
  static std::size_t default_workers();

  /// True when the calling thread is a worker of *any* ThreadPool. Nested
  /// parallel regions (e.g. the block-parallel kernel interpreter running
  /// inside a SweepRunner job) use this to avoid oversubscribing the host.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;  // queued + executing
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// Runs `fn(0) ... fn(count-1)` on the pool and waits for all of them.
/// Exceptions are captured; the first one (lowest index) is rethrown after
/// every task has finished, so no work is silently lost mid-sweep.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Nested-parallelism budget: the worker count an *inner* parallel region
/// should actually use when `requested` workers were asked for (0 = "pick
/// for me"). On a pool worker thread the outer layer already owns the host
/// cores, so the budget collapses to 1 (serial); on any other thread it
/// resolves 0 to `ThreadPool::default_workers()` and passes explicit
/// requests through. This is what keeps sweep × interpreter thread counts
/// from multiplying.
std::size_t inner_parallel_workers(std::size_t requested);

}  // namespace sigvp::run
