#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sigvp::run {

/// Fixed-size pool of host worker threads.
///
/// The simulation itself is single-threaded by design (one deterministic
/// EventQueue per scenario); the pool provides *host-side* parallelism across
/// independent scenario runs — the sharding layer every sweep-shaped workload
/// in this repository (Fig. 11 suite, design-space exploration, ablations)
/// funnels through. Tasks are drained FIFO; worker count is fixed at
/// construction.
class ThreadPool {
 public:
  /// `workers == 0` picks `default_workers()`.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueues a task. Tasks must not throw — wrap fallible work yourself
  /// (parallel_for does) so exceptions can be reported to the caller.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Host hardware concurrency, never less than 1.
  static std::size_t default_workers();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;  // queued + executing
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// Runs `fn(0) ... fn(count-1)` on the pool and waits for all of them.
/// Exceptions are captured; the first one (lowest index) is rethrown after
/// every task has finished, so no work is silently lost mid-sweep.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace sigvp::run
