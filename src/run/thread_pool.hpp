#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sigvp::run {

/// Fixed-size pool of host worker threads.
///
/// The simulation itself is single-threaded by design (one deterministic
/// EventQueue per domain); the pool provides *host-side* parallelism across
/// independent units of work — sweep jobs, and the fleet executor's shard
/// advancement between synchronization horizons. Tasks are drained FIFO;
/// worker count is fixed at construction.
///
/// parallel_for() is safe to call from inside a pool task (the caller helps
/// execute queued tasks while waiting on its own group), so nested parallel
/// regions — a sweep job advancing fleet shards on the shared pool — cannot
/// deadlock the pool.
class ThreadPool {
 public:
  /// `workers == 0` picks `default_workers()`.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueues a task. Tasks must not throw — wrap fallible work yourself
  /// (parallel_for does) so exceptions can be reported to the caller.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  /// Pops and runs one queued task on the calling thread; false when the
  /// queue was empty. parallel_for's wait loop uses this so a caller that
  /// is itself a pool task keeps making progress instead of deadlocking.
  bool help_one();

  /// Total tasks ever submitted to this pool. The parallel_for grain
  /// regression test pins chunking behaviour with this counter.
  std::uint64_t tasks_submitted() const { return submitted_.load(std::memory_order_relaxed); }

  /// Host hardware concurrency, never less than 1.
  static std::size_t default_workers();

  /// True when the calling thread is a worker of *any* ThreadPool. Nested
  /// parallel regions (e.g. the block-parallel kernel interpreter running
  /// inside a SweepRunner job) use this to avoid oversubscribing the host.
  static bool on_worker_thread();

 private:
  void worker_loop();
  void finish_task();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;  // queued + executing
  bool stopping_ = false;
  std::atomic<std::uint64_t> submitted_{0};
  std::vector<std::thread> threads_;
};

/// Runs `fn(0) ... fn(count-1)` on the pool and waits for all of them.
///
/// Indices are dispatched in contiguous chunks of `max(1, count /
/// (pool.size() * 4))` so tiny per-item work (100k-VP fleet domains) does
/// not drown in per-task queue overhead. Every index runs even if earlier
/// ones throw; the first exception (lowest index) is rethrown after all
/// chunks have finished, so no work is silently lost mid-sweep. The calling
/// thread helps execute queued tasks while it waits, which makes nested
/// parallel_for calls on one shared pool deadlock-free.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Nested-parallelism budget: the worker count an *inner* parallel region
/// should actually use when `requested` workers were asked for (0 = "pick
/// for me"). On a pool worker thread the outer layer already owns the host
/// cores, so the budget collapses to 1 (serial); on any other thread it
/// resolves 0 to `ThreadPool::default_workers()` and passes explicit
/// requests through. This is what keeps sweep × interpreter thread counts
/// from multiplying.
std::size_t inner_parallel_workers(std::size_t requested);

/// Process-wide shard-execution knob (`--shards` / SIGVP_SHARDS): how many
/// host threads the fleet executor may advance simulation domains on.
/// Execution-only — it never appears in a scenario fingerprint and never
/// changes a result byte; `FleetConfig::domains` is the semantic knob.
/// Default 1 (serial domain advancement).
void set_fleet_shards(std::size_t shards);
std::size_t fleet_shards();

/// The shared fleet ThreadPool: one process-wide pool, lazily (re)built at
/// `workers` threads, shared by every concurrently-running sharded scenario
/// (group-based parallel_for makes concurrent use safe). Resizing happens
/// only when no sharded scenario is running — callers all derive `workers`
/// from the same fleet_shards() global.
ThreadPool& fleet_pool(std::size_t workers);

}  // namespace sigvp::run
