#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace sigvp::run::traffic {

/// Arrival-process shapes for open-loop request streams. Open-loop means
/// requests arrive at generator-stamped sim times regardless of how the
/// system keeps up — queueing delay shows up in the latency percentiles
/// instead of silently throttling the offered load.
enum class Shape {
  kPoisson,  // exponential inter-arrivals at rate 1/mean_interarrival_us
  kBursty,   // ON/OFF windows; arrivals only in ON, same long-run rate
};

const char* shape_name(Shape shape);

struct TrafficConfig {
  Shape shape = Shape::kPoisson;
  /// Long-run mean inter-arrival time in sim µs (both shapes preserve it).
  double mean_interarrival_us = 1000.0;
  /// Bursty only: deterministic ON/OFF window lengths. Arrivals land only
  /// inside ON windows ([k·(on+off), k·(on+off)+on)), compressed so the
  /// overall arrival rate still equals 1/mean_interarrival_us.
  double burst_on_us = 2000.0;
  double burst_off_us = 8000.0;
  std::uint64_t seed = 1;
};

/// Generates `count` ascending sim-domain arrival times for stream
/// `stream_id` (typically the VP index). A pure function of (config,
/// stream_id, count): bit-identical across runs, platforms, and worker
/// counts — the seeded xorshift generator never touches global state.
std::vector<SimTime> arrival_times(const TrafficConfig& config, std::uint32_t stream_id,
                                   std::uint32_t count);

}  // namespace sigvp::run::traffic
