#include "run/host_gpus.hpp"

#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace sigvp::run {

namespace {

GpuArch arch_by_name(const std::string& name) {
  if (name == "quadro4000") return make_quadro4000();
  if (name == "gridk520") return make_gridk520();
  if (name == "tegrak1") return make_tegrak1();
  SIGVP_REQUIRE(false, "unknown host GPU arch '" + name +
                           "' (expected quadro4000, gridk520 or tegrak1)");
  return make_quadro4000();  // unreachable
}

}  // namespace

std::vector<HostGpuSpec> parse_host_gpus(const std::string& spec) {
  std::vector<HostGpuSpec> out;
  if (spec.empty()) return out;
  SIGVP_REQUIRE(spec.back() != ',', "trailing comma in host GPU spec '" + spec + "'");
  std::istringstream is(spec);
  std::string entry;
  while (std::getline(is, entry, ',')) {
    SIGVP_REQUIRE(!entry.empty(), "empty entry in host GPU spec '" + spec + "'");
    std::string name = entry;
    std::uint64_t count = 1;
    const std::size_t star = entry.find('*');
    if (star != std::string::npos) {
      name = entry.substr(0, star);
      const std::string count_str = entry.substr(star + 1);
      char* end = nullptr;
      count = std::strtoull(count_str.c_str(), &end, 10);
      SIGVP_REQUIRE(end != nullptr && *end == '\0' && count >= 1,
                    "malformed device count in host GPU entry '" + entry + "'");
    }
    HostGpuSpec dev;
    dev.arch = arch_by_name(name);
    for (std::uint64_t i = 0; i < count; ++i) out.push_back(dev);
  }
  return out;
}

}  // namespace sigvp::run
