#include "run/traffic.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sigvp::run::traffic {

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::kPoisson: return "poisson";
    case Shape::kBursty: return "bursty";
  }
  return "?";
}

std::vector<SimTime> arrival_times(const TrafficConfig& config, std::uint32_t stream_id,
                                   std::uint32_t count) {
  SIGVP_REQUIRE(config.mean_interarrival_us > 0.0, "mean inter-arrival must be positive");
  if (config.shape == Shape::kBursty) {
    SIGVP_REQUIRE(config.burst_on_us > 0.0 && config.burst_off_us >= 0.0,
                  "bursty traffic needs a positive ON window");
  }

  // Per-stream seeding: streams are independent, and the same (seed, stream)
  // always reproduces the same sequence.
  Rng rng(config.seed ^ (0x9E3779B97F4A7C15ull * (stream_id + 1)));

  std::vector<SimTime> arrivals;
  arrivals.reserve(count);

  if (config.shape == Shape::kPoisson) {
    double t = 0.0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const double u = rng.next_double();  // [0, 1): 1-u never reaches 0
      t += -config.mean_interarrival_us * std::log(1.0 - u);
      arrivals.push_back(t);
    }
    return arrivals;
  }

  // Bursty ON/OFF: sample exponential gaps in *ON-time*, with the ON-local
  // mean scaled by the duty cycle so the long-run rate matches Poisson's,
  // then map accumulated ON-time onto the wall clock by skipping every OFF
  // window. All arrivals land inside ON windows by construction.
  const double cycle = config.burst_on_us + config.burst_off_us;
  const double duty = config.burst_on_us / cycle;
  const double on_mean = config.mean_interarrival_us * duty;
  double on_t = 0.0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const double u = rng.next_double();
    on_t += -on_mean * std::log(1.0 - u);
    const double k = std::floor(on_t / config.burst_on_us);
    arrivals.push_back(k * cycle + (on_t - k * config.burst_on_us));
  }
  return arrivals;
}

}  // namespace sigvp::run::traffic
