#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "gpu/launch_cache.hpp"
#include "trace/metrics.hpp"
#include "util/stats.hpp"

namespace sigvp::run {

/// One independent design point of a sweep: a scenario configuration plus
/// the app instances to run under it. `name` must be unique within a sweep;
/// `group` is a free-form aggregation key (typically the app or the backend)
/// the summary statistics are computed over.
struct SweepJob {
  std::string name;
  std::string group;
  ScenarioConfig config;
  std::vector<AppInstance> apps;
};

struct SweepJobResult {
  std::string name;
  std::string group;
  ScenarioResult result;
};

/// Results of a sweep, in the input job order regardless of worker count.
struct SweepResult {
  std::vector<SweepJobResult> jobs;
  std::size_t workers = 1;
  double wall_ms = 0.0;  // host wall-clock of the whole sweep

  /// Launch-cache activity during this sweep (counter deltas over the run;
  /// `entries`/`bytes` are residency levels at sweep end). The cache is
  /// process-wide, so concurrent jobs on different workers share hits.
  LaunchCacheStats cache;

  /// Per-scenario sim-domain metrics folded together in canonical input
  /// order (worker-count independent — see trace::Metrics). Null unless
  /// collection was on (`trace::collecting()`) during the sweep.
  std::shared_ptr<trace::Metrics> metrics;

  const SweepJobResult& find(const std::string& name) const;

  /// makespan(baseline) / makespan(job) — the speedup of `job` over the
  /// named baseline job.
  double speedup(const std::string& job, const std::string& baseline) const;

  /// min/mean/p50/p95/max over the makespans of every job, or of the jobs
  /// in one group.
  SampleSummary summarize() const;
  SampleSummary summarize_group(const std::string& group) const;
};

/// Shards a vector of scenario jobs across a fixed-size worker pool.
///
/// Determinism contract: every job owns its private EventQueue, GPU device,
/// IPC manager and dispatcher (all built inside `run_scenario`), so a job's
/// ScenarioResult is a pure function of its SweepJob — bit-identical across
/// runs and across worker counts. Only host wall-clock changes with N.
class SweepRunner {
 public:
  /// `workers == 0` picks the host's hardware concurrency.
  explicit SweepRunner(std::size_t workers = 0);

  std::size_t workers() const { return workers_; }

  /// Runs every job to completion and returns results in input order.
  /// The first scenario exception (lowest job index) is rethrown after all
  /// workers have drained.
  SweepResult run(const std::vector<SweepJob>& jobs) const;

 private:
  std::size_t workers_;
};

/// Shared CLI handling for the sweep-shaped benches: `--workers N`
/// (0 = hardware concurrency, the default), `--json PATH` to override the
/// bench's default `BENCH_<name>.json` output location, and `--trace PATH`
/// to enable the Chrome/Perfetto tracer (equivalent to SIGVP_TRACE=PATH;
/// parse_sweep_cli enables it immediately so every subsequent scenario is
/// captured).
struct SweepCli {
  std::size_t workers = 0;
  std::string json_path;
  std::string trace_path;
};

SweepCli parse_sweep_cli(int argc, char** argv, const std::string& default_json);

/// If the tracer is active, writes its trace file now and logs the path;
/// returns false only on an actual write failure (inactive tracer is a
/// trivially-successful no-op). Benches call this before exiting; an atexit
/// hook also writes the trace, so this mainly surfaces errors early enough
/// to affect the exit code.
bool flush_trace();

}  // namespace sigvp::run
