#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "gpu/launch_cache.hpp"
#include "trace/metrics.hpp"
#include "util/stats.hpp"

namespace sigvp::run {

/// One independent design point of a sweep: a scenario configuration plus
/// the app instances to run under it. `name` must be unique within a sweep;
/// `group` is a free-form aggregation key (typically the app or the backend)
/// the summary statistics are computed over.
struct SweepJob {
  std::string name;
  std::string group;
  ScenarioConfig config;
  std::vector<AppInstance> apps;
};

struct SweepJobResult {
  std::string name;
  std::string group;
  ScenarioResult result;
};

/// Results of a sweep, in the input job order regardless of worker count.
struct SweepResult {
  std::vector<SweepJobResult> jobs;
  std::size_t workers = 1;
  double wall_ms = 0.0;  // host wall-clock of the whole sweep

  /// Launch-cache activity during this sweep (counter deltas over the run;
  /// `entries`/`bytes` are residency levels at sweep end). The cache is
  /// process-wide, so concurrent jobs on different workers share hits.
  LaunchCacheStats cache;

  /// Per-scenario sim-domain metrics folded together in canonical input
  /// order (worker-count independent — see trace::Metrics). Null unless
  /// collection was on (`trace::collecting()`) during the sweep.
  std::shared_ptr<trace::Metrics> metrics;

  const SweepJobResult& find(const std::string& name) const;

  /// makespan(baseline) / makespan(job) — the speedup of `job` over the
  /// named baseline job.
  double speedup(const std::string& job, const std::string& baseline) const;

  /// min/mean/p50/p95/max over the makespans of every job, or of the jobs
  /// in one group.
  SampleSummary summarize() const;
  SampleSummary summarize_group(const std::string& group) const;
};

/// Checkpoint/restore policy of a sweep run (DESIGN.md §14).
struct SweepSnapshotOptions {
  /// Checkpoint directory. Non-empty enables both periodic checkpoint
  /// publication AND auto-resume from the newest valid checkpoint found
  /// there (a cold start simply finds none). Empty disables everything —
  /// the run is byte-identical to a build without the snapshot layer.
  std::string dir;

  /// Sim-time cadence (µs) of the per-job fleet captures that trigger
  /// checkpoint publication. Must match the cadence of the interrupted run
  /// being resumed — captures are verified position by position.
  SimTime every_us = 5000.0;

  /// Explicit snapshot file to resume from, tried before the `dir` scan.
  /// If it fails validation it is rejected (logged) and the scan provides
  /// the fallback.
  std::string resume_path;
};

/// What a checkpointed/resumed sweep actually did, for harness assertions.
struct SweepResumeInfo {
  std::string resumed_from;            // checkpoint used ("" = cold start)
  std::size_t jobs_resumed = 0;        // finished results spliced, not re-run
  std::size_t jobs_replayed = 0;       // re-executed under digest verification
  std::vector<std::string> rejected;   // snapshot files that failed validation
};

/// Shards a vector of scenario jobs across a fixed-size worker pool.
///
/// Determinism contract: every job owns its private EventQueue, GPU device,
/// IPC manager and dispatcher (all built inside `run_scenario`), so a job's
/// ScenarioResult is a pure function of its SweepJob — bit-identical across
/// runs and across worker counts. Only host wall-clock changes with N.
///
/// The checkpoint/restore path leans on exactly that contract: the durable
/// unit of progress is a *finished job's result* (serialized bit-exact and
/// spliced back without re-execution); an interrupted job re-executes from
/// its inputs and must reproduce the fleet-capture digest sequence the
/// checkpoint recorded — so a resumed sweep's output is bit-identical to a
/// never-interrupted run at any worker count.
class SweepRunner {
 public:
  /// `workers == 0` picks the host's hardware concurrency.
  explicit SweepRunner(std::size_t workers = 0);

  std::size_t workers() const { return workers_; }

  /// Runs every job to completion and returns results in input order.
  /// The first scenario exception (lowest job index) is rethrown after all
  /// workers have drained.
  SweepResult run(const std::vector<SweepJob>& jobs) const;

  /// Checkpoint-aware variant: resumes from `snap.dir`/`snap.resume_path`
  /// when a valid checkpoint for this exact job list exists, publishes
  /// rotating checkpoints while running, and reports what happened through
  /// `resume_info` (may be null). With default options this is the plain
  /// run() path.
  SweepResult run(const std::vector<SweepJob>& jobs, const SweepSnapshotOptions& snap,
                  SweepResumeInfo* resume_info) const;

 private:
  std::size_t workers_;
};

/// Shared CLI handling for the sweep-shaped benches: `--workers N`
/// (0 = hardware concurrency, the default), `--json PATH` to override the
/// bench's default `BENCH_<name>.json` output location, and `--trace PATH`
/// to enable the Chrome/Perfetto tracer (equivalent to SIGVP_TRACE=PATH;
/// parse_sweep_cli enables it immediately so every subsequent scenario is
/// captured).
///
/// Checkpoint/restore knobs: `--snapshot-dir PATH` (or SIGVP_SNAPSHOT_DIR)
/// enables rotating checkpoints plus auto-resume, `--snapshot-every US`
/// (or SIGVP_SNAPSHOT_EVERY) sets the sim-time capture cadence in µs, and
/// `--resume FILE` names an explicit snapshot file to resume from. Flags
/// override the environment.
///
/// Fleet sharding: `--shards N` (or SIGVP_SHARDS) sets how many host
/// threads advance a sharded fleet's simulation domains between
/// synchronization horizons (run::set_fleet_shards). Execution-only: any
/// value produces byte-identical BENCH JSON; 1 (the default) advances
/// domains serially.
struct SweepCli {
  std::size_t workers = 0;
  std::size_t shards = 1;
  std::string json_path;
  std::string trace_path;
  std::string snapshot_dir;
  SimTime snapshot_every_us = 5000.0;
  std::string resume_path;

  /// The snapshot policy these CLI settings describe.
  SweepSnapshotOptions snapshot_options() const {
    SweepSnapshotOptions snap;
    snap.dir = snapshot_dir;
    snap.every_us = snapshot_every_us;
    snap.resume_path = resume_path;
    return snap;
  }
};

SweepCli parse_sweep_cli(int argc, char** argv, const std::string& default_json);

/// If the tracer is active, writes its trace file now and logs the path;
/// returns false only on an actual write failure (inactive tracer is a
/// trivially-successful no-op). Benches call this before exiting; an atexit
/// hook also writes the trace, so this mainly surfaces errors early enough
/// to affect the exit code.
bool flush_trace();

}  // namespace sigvp::run
