#pragma once

#include <string>
#include <vector>

#include "gpu/host_gpu_set.hpp"

namespace sigvp::run {

/// Parses a host GPU declaration string into HostGpuSpecs — the CLI/env/
/// bench-side syntax behind the sweep JSON "host_gpus" block.
///
/// Grammar: comma-separated entries, each `<arch>` or `<arch>*<count>`,
/// where `<arch>` is one of the built-in presets (quadro4000, gridk520,
/// tegrak1). Examples:
///   "quadro4000*4"            — 4 homogeneous Fermi Quadro devices
///   "quadro4000*2,gridk520*2" — a heterogeneous 2+2 mix
///   ""                        — empty vector (the implicit single device)
/// Throws on unknown arch names, zero counts or malformed entries.
std::vector<HostGpuSpec> parse_host_gpus(const std::string& spec);

}  // namespace sigvp::run
