#include "sched/placement.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace sigvp {

const char* placement_policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kAffinity: return "affinity";
  }
  return "?";
}

SimTime migration_cost_us(const PlacementConfig& config, std::uint64_t ws_bytes) {
  // bytes / (GB/s) = ns per byte × bytes; convert to µs.
  const double restage_us = static_cast<double>(ws_bytes) / (config.migration_gbps * 1e3);
  return config.migration_fixed_us + restage_us;
}

std::vector<std::uint32_t> initial_placement(PlacementPolicy policy,
                                             const std::vector<std::uint64_t>& weights,
                                             const std::vector<double>& device_speed) {
  const std::size_t n_devices = device_speed.size();
  SIGVP_REQUIRE(n_devices >= 1, "placement needs at least one device");
  for (double s : device_speed) {
    SIGVP_REQUIRE(s > 0.0, "placement needs positive device speeds");
  }
  std::vector<std::uint32_t> assign(weights.size(), 0);
  if (n_devices == 1) return assign;

  if (policy == PlacementPolicy::kRoundRobin) {
    for (std::size_t i = 0; i < assign.size(); ++i) {
      assign[i] = static_cast<std::uint32_t>(i % n_devices);
    }
    return assign;
  }

  // Longest-processing-time greedy: heaviest VP first, each to the device
  // that would finish it earliest. Stable ordering (weight desc, index asc)
  // and lowest-index tie-breaks keep the result a pure function of the
  // inputs.
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&weights](std::size_t a, std::size_t b) {
    return weights[a] > weights[b];
  });
  std::vector<double> load(n_devices, 0.0);
  for (const std::size_t vp : order) {
    const double w = static_cast<double>(weights[vp]);
    std::size_t best = 0;
    double best_finish = (load[0] + w) / device_speed[0];
    for (std::size_t d = 1; d < n_devices; ++d) {
      const double finish = (load[d] + w) / device_speed[d];
      if (finish < best_finish) {
        best = d;
        best_finish = finish;
      }
    }
    load[best] += w;
    assign[vp] = static_cast<std::uint32_t>(best);
  }
  return assign;
}

}  // namespace sigvp
