#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/fault_stats.hpp"
#include "fault/health.hpp"
#include "gpu/device.hpp"
#include "ipc/job.hpp"
#include "sched/coalescer.hpp"
#include "sched/placement.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"

namespace sigvp {

namespace trace {
class RunTrace;
}
namespace snapshot {
class Writer;
}

/// Policy knobs of the Re-scheduler + Job Dispatcher pair (paper Fig. 2).
struct DispatchConfig {
  /// Kernel Interleaving: keep the Copy Engine and the Compute Engine of the
  /// host GPU busy concurrently, reordering across VPs (within each VP's
  /// partial order). When false, jobs are served strictly one at a time in
  /// arrival order — the plain GPU-multiplexing baseline of the paper.
  bool interleave = false;

  /// Kernel Coalescing: merge identical ready kernel requests from
  /// different VPs into a single launch.
  bool coalesce = false;

  /// How long a coalescable kernel job may wait in the queue for identical
  /// peers from other VPs before dispatching anyway. Jobs dispatch early
  /// once enough peers have gathered. Only used when `coalesce` is set.
  SimTime coalesce_window_us = 50.0;

  /// Peer count that triggers early dispatch of a coalescable group.
  std::uint32_t coalesce_eager_peers = 3;

  /// Host-side service time per dispatched job: popping the queue, kernel
  /// match, argument relocation, and arming the per-launch profiler the
  /// estimation flow depends on (paper Fig. 2's Job Dispatcher + Profiler).
  /// Serialized on the dispatcher thread, overlappable with GPU execution
  /// when interleaving, and paid ONCE per coalesced group — the `To` that
  /// dominates the paper's Eq. 9 and makes Kernel Coalescing profitable.
  /// Calibrated against Table 1's ΣVP row (≈1.9 ms per forwarded launch
  /// end to end).
  SimTime dispatch_overhead_us = 1150.0;
};

/// Host-side Job Queue + Re-scheduler + Job Dispatcher.
///
/// The Re-scheduler preserves the partial order of the original VPs: jobs of
/// one VP dispatch in sequence order; jobs of different VPs may be reordered
/// freely (paper §2, "non-preemptive scheduler augmented for job
/// dependencies"). Reordering is greedy: whenever an engine of the host GPU
/// is idle, the earliest queued ready job targeting that engine is
/// dispatched, even if it is not at the head of the queue — that is exactly
/// the asynchronous-request reordering of the paper's Fig. 4(a), and the
/// stop/resume interleaving of Fig. 4(b) emerges because a VP whose job
/// waits in the queue is effectively stopped until the completion message
/// releases it.
///
/// With more than one host device the dispatcher runs one *lane* per device
/// — its own service engine (the host thread pumping that device), its own
/// coalescer and service stream. Each VP is placed on exactly one device;
/// jobs of a VP dispatch through its lane, and coalesced groups only merge
/// VPs sharing a device. Under the affinity policy a fully idle VP may
/// migrate to a less-loaded lane, paying an explicit restaging cost
/// (PlacementConfig's migration model) before it becomes runnable again.
/// A 1-device dispatcher is byte-identical to every release before
/// multi-GPU existed.
class Dispatcher {
 public:
  /// Single-device dispatcher (the legacy shape: one lane, no placement).
  Dispatcher(EventQueue& queue, GpuDevice& device, DispatchConfig config);

  /// Multi-device dispatcher: one lane per device, in declaration order.
  /// Fault injection requires a single lane (enforced at set_fault).
  Dispatcher(EventQueue& queue, std::vector<GpuDevice*> devices, DispatchConfig config,
             PlacementConfig placement);

  /// Creates the device stream for a VP on its assigned device; call once
  /// per registered VP, in VP-id order.
  void register_vp(std::uint32_t device_index = 0);

  /// Installs the scenario's trace/metrics context (null = off; the default).
  /// Must outlive the dispatcher.
  void set_trace(trace::RunTrace* trace) { trace_ = trace; }

  /// Job Queue entry point (the IPC manager's sink).
  void submit(Job job);

  /// True when no job is queued or in flight.
  bool idle() const { return queue_.empty() && in_flight_ == 0; }

  // --- fault tolerance --------------------------------------------------------
  /// Installs the scenario's fault oracle plus the recovery policy (all must
  /// outlive the dispatcher) and registers the device kill handler that
  /// re-queues jobs whose in-flight ops a reset destroys. With a null plan
  /// (the default) every dispatch path is byte-identical to a build without
  /// the fault layer.
  void set_fault(const FaultPlan* plan, FaultStats* stats, HealthPolicy* health,
                 RecoveryConfig recovery);
  /// Sink for jobs the dispatcher gives up on (retry budget exhausted or VP
  /// failed): the scenario routes them to the EmulationDriver fallback.
  void set_escalation(std::function<void(std::uint32_t vp_id, Job job)> escalate);
  /// Injected full device reset (FaultConfig::device_reset_at_us): every
  /// in-flight op is killed, its job re-queued in per-VP sequence order, and
  /// the device is down for the configured recovery latency.
  void inject_device_reset();
  /// Removes every queued job of `vp_id` and escalates them in sequence
  /// order — called when the VP is degraded to the fallback path.
  void purge_vp(std::uint32_t vp_id);
  /// Human-readable list of VPs with queued or in-flight jobs, for the
  /// stall detector's diagnostic when the event queue drains non-idle.
  std::string stall_report() const;

  /// Serializes the re-scheduler state a fleet capture must pin down: the
  /// job queue (ids, VPs, kinds, sequence numbers), per-VP dispatch cursors
  /// and in-flight counters, the coalescing-window timer, the coalescer's
  /// group counters, the service engine's clock, and the pending reset-kill
  /// actions. Multi-lane dispatchers append the extra lanes' engine clocks
  /// plus the placement state (assignments, working sets, migration holds),
  /// so a 1-lane capture stays byte-identical to the legacy layout. Digest
  /// input for resume replay-verification.
  void capture_state(snapshot::Writer& w) const;

  // --- stats -------------------------------------------------------------------
  std::uint64_t jobs_dispatched() const { return jobs_dispatched_; }
  std::uint64_t reorders() const { return reorders_; }
  std::uint64_t coalesced_groups() const {
    std::uint64_t total = 0;
    for (const DeviceLane& lane : lanes_) total += lane.coalescer->groups_executed();
    return total;
  }
  std::uint64_t coalesced_jobs() const {
    std::uint64_t total = 0;
    for (const DeviceLane& lane : lanes_) total += lane.coalescer->jobs_merged();
    return total;
  }
  const DispatchConfig& config() const { return config_; }

  // --- placement --------------------------------------------------------------
  std::size_t num_lanes() const { return lanes_.size(); }
  /// Jobs dispatched through device `d`'s lane.
  std::uint64_t lane_jobs(std::size_t d) const { return lanes_.at(d).jobs_dispatched; }
  /// Current device assignment of a registered VP.
  std::uint32_t device_of(std::uint32_t vp_id) const { return vp_device_.at(vp_id); }
  /// Number of VPs currently assigned to device `d`.
  std::uint32_t vps_on_device(std::size_t d) const {
    std::uint32_t n = 0;
    for (const std::uint32_t dev : vp_device_) {
      if (dev == d) ++n;
    }
    return n;
  }
  std::uint64_t migrations() const { return migrations_; }
  std::uint64_t migrated_bytes() const { return migrated_bytes_; }

  /// Deterministic size-based estimate of resident host memory: struct plus
  /// job-queue and per-VP bookkeeping capacities (the fleet bytes-per-VP
  /// denominator).
  std::uint64_t resident_bytes() const {
    return sizeof(Dispatcher) + queue_.size() * sizeof(Job) +
           lanes_.capacity() * sizeof(DeviceLane) +
           vp_streams_.capacity() * sizeof(GpuDevice::StreamId) +
           next_seq_.capacity() * sizeof(std::uint64_t) +
           (vp_inflight_.capacity() + vp_group_inflight_.capacity() + vp_device_.capacity()) *
               sizeof(std::uint32_t) +
           vp_h2d_bytes_.capacity() * sizeof(std::uint64_t) +
           vp_ready_at_.capacity() * sizeof(SimTime) + kill_actions_.size() * 96;
  }

 private:
  /// One host device's dispatch path: the device, the coalescer's service
  /// stream on it, and the host-side service engine that serializes this
  /// lane's dispatch overheads. Lane 0 is the legacy dispatcher.
  struct DeviceLane {
    GpuDevice* device = nullptr;
    GpuDevice::StreamId service_stream = 0;
    std::unique_ptr<Coalescer> coalescer;
    std::unique_ptr<Engine> service;
    std::uint64_t jobs_dispatched = 0;
  };

  DeviceLane& lane_of(const Job& job) { return lanes_[vp_device_[job.vp_id]]; }
  const DeviceLane& lane_of(const Job& job) const { return lanes_[vp_device_[job.vp_id]]; }

  void pump();
  bool is_ready(const Job& job) const;
  /// True when `job` could start independently right now: sequence-ready,
  /// nothing of its VP in flight, VP stream drained. Gate for joining a
  /// coalesced group — merged groups run on the coalescer's service stream,
  /// outside the per-VP stream chaining, so a member whose predecessor is
  /// still in flight would complete out of its VP's sequence order.
  bool can_join_group(const Job& job) const;
  /// True when a coalescable job should keep waiting for peers.
  bool held_for_coalescing(const Job& job) const;
  std::uint32_t ready_peers(const Job& job) const;
  /// Schedules a wake-up pump at the earliest coalescing-window expiry.
  void arm_window_timer();
  /// Index into queue_ of the earliest ready job the policy may dispatch
  /// right now, or npos.
  std::size_t pick_next() const;
  /// Why the queue head was passed over (trace "reorder" annotations).
  const char* head_hold_reason() const;
  void dispatch_at(std::size_t index);
  void dispatch_single(Job job);
  void dispatch_group(std::vector<Job> group);
  void submit_to_device(Job job);
  void on_job_finished(std::uint32_t vp_id);

  // --- placement (inert with a single lane) ------------------------------------
  /// Affinity-policy migration check, run when `vp` submits a job while
  /// fully idle (nothing queued or in flight): if another lane's backlog
  /// beats the current one by more than the hysteresis margin plus the
  /// restaging cost, the VP moves there and is held until the restage
  /// completes. Deterministic: scores are pure functions of simulated state.
  void maybe_migrate(std::uint32_t vp);
  /// Estimated wait a newly placed job would see on lane `d`: host service
  /// backlog, compute-engine backlog, plus queued-not-yet-serviced jobs.
  SimTime lane_backlog(std::size_t d) const;

  // --- fault tolerance (inert without an active plan) --------------------------
  bool fault_active() const { return fault_plan_ != nullptr && fault_plan_->enabled(); }
  /// Coalescing eligibility under the health policy: quarantined VPs lose it.
  bool coalescable(const Job& job) const;
  /// Fault-mode device submission: registers a kill action for the op so a
  /// reset re-queues the job, and arms the transient-launch retry path.
  void submit_to_device_tolerant(Job job);
  /// Transient merged/single launch abort: bounded retry, then escalation.
  void on_launch_failed(std::shared_ptr<Job> job);
  /// Undoes the dispatch-time accounting of `job` so it can be re-queued.
  void rollback_dispatch(const Job& job);
  void requeue(Job job);
  /// Kill handler: a device reset destroyed op `op_id`; re-queue its job.
  void on_op_killed(std::uint64_t op_id);
  /// Merged-launch abort: re-queue every retained member as a single
  /// (coalescing eligibility cleared) — the paper group's partial failure.
  void resplit_group(std::shared_ptr<std::vector<Job>> members);
  /// Hands `job` to the escalation sink (fallback path).
  void escalate(Job job);

  const FaultPlan* fault_plan_ = nullptr;
  FaultStats* fault_stats_ = nullptr;
  HealthPolicy* health_ = nullptr;
  RecoveryConfig recovery_;
  std::function<void(std::uint32_t, Job)> escalate_;
  /// Live op id → action restoring the op's job after a reset kill; entries
  /// are erased on normal completion. Ordered so reset processes kills in
  /// submission order (ascending op id), matching the device's kill order.
  std::map<std::uint64_t, std::function<void()>> kill_actions_;

  EventQueue& events_;
  DispatchConfig config_;
  PlacementConfig placement_;
  trace::RunTrace* trace_ = nullptr;
  std::vector<DeviceLane> lanes_;

  std::deque<Job> queue_;
  std::vector<std::uint32_t> vp_device_;  // per VP: current device assignment
  std::vector<GpuDevice::StreamId> vp_streams_;
  std::vector<std::uint64_t> next_seq_;  // per VP: next sequence number to dispatch
  std::vector<std::uint32_t> vp_inflight_;  // per VP: dispatched, not yet completed
  /// Per VP: in-flight jobs merged into a coalesced group. Group launches
  /// run on the coalescer's service stream, outside the VP stream's FIFO
  /// chaining, so follow-up ops of the same VP must hold until they finish.
  std::vector<std::uint32_t> vp_group_inflight_;
  /// Per VP: cumulative H2D bytes — the working-set proxy the migration
  /// cost model restages.
  std::vector<std::uint64_t> vp_h2d_bytes_;
  /// Per VP: earliest time its next job may dispatch (a migration restage
  /// hold; 0 when never migrated).
  std::vector<SimTime> vp_ready_at_;
  std::uint32_t in_flight_ = 0;
  std::uint64_t jobs_dispatched_ = 0;
  std::uint64_t reorders_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t migrated_bytes_ = 0;
  bool pumping_ = false;
  SimTime window_timer_at_ = -1.0;
};

}  // namespace sigvp
