#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace sigvp {

/// How VPs are placed onto the host GPUs of a multi-device host set.
enum class PlacementPolicy : std::uint8_t {
  /// VP i goes to device i mod N — the naive baseline that stacks a skewed
  /// fleet's heavy VPs onto one device whenever the skew period divides N.
  kRoundRobin,
  /// Working-set-aware placement: initial assignment balances the per-VP
  /// load estimate across devices (longest-processing-time greedy, scaled
  /// by relative device throughput), and at runtime an idle VP may migrate
  /// to a less-backlogged device when the win exceeds the explicit
  /// migration cost plus a hysteresis margin.
  kAffinity,
};

const char* placement_policy_name(PlacementPolicy policy);

/// Placement knobs of a multi-GPU host set. Semantic configuration: it
/// changes which device serves which VP, so every field is part of the
/// scenario fingerprint. Ignored entirely when at most one device is
/// declared.
struct PlacementConfig {
  PlacementPolicy policy = PlacementPolicy::kAffinity;

  /// Fixed cost of moving a VP's context between devices (driver teardown +
  /// setup), µs. Charged once per migration before the VP's next job may
  /// dispatch on the new device.
  SimTime migration_fixed_us = 250.0;

  /// Bandwidth at which the VP's device-resident working set (cumulative
  /// h2d bytes) is re-staged onto the target device, GB/s. The byte-
  /// proportional half of the migration-cost model.
  double migration_gbps = 8.0;

  /// A migration is taken only when the estimated backlog win exceeds the
  /// migration cost by at least this margin, µs — damping that keeps a VP
  /// from oscillating between two near-equal devices.
  SimTime hysteresis_us = 500.0;

  /// Master switch for runtime migration (kAffinity only). Initial
  /// placement still applies when false. Migration is timing-model-only:
  /// the scenario layer clears this in functional mode, where a VP's
  /// buffers are physically resident on its build-time device.
  bool allow_migration = true;
};

/// Migration cost of moving a working set of `ws_bytes` under `config`, µs.
SimTime migration_cost_us(const PlacementConfig& config, std::uint64_t ws_bytes);

/// Deterministic initial placement of VPs onto `device_speed.size()` devices.
///
/// `weights[i]` is the load estimate of VP i (workload size × request
/// count); `device_speed[d]` is the relative throughput of device d (any
/// positive unit — only ratios matter). Round-robin ignores both. Affinity
/// is longest-processing-time greedy: VPs in descending weight order (ties
/// by ascending index) each go to the device whose estimated finish time
/// (load + weight) / speed is smallest, ties to the lowest device index —
/// a pure function of the inputs, bit-identical at any worker/shard count.
std::vector<std::uint32_t> initial_placement(PlacementPolicy policy,
                                             const std::vector<std::uint64_t>& weights,
                                             const std::vector<double>& device_speed);

}  // namespace sigvp
