#include "sched/dispatcher.hpp"

#include <limits>
#include <sstream>
#include <utility>

#include "fault/crash.hpp"
#include "snapshot/serial.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

#include <memory>

namespace sigvp {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}

Dispatcher::Dispatcher(EventQueue& queue, GpuDevice& device, DispatchConfig config)
    : Dispatcher(queue, std::vector<GpuDevice*>{&device}, config, PlacementConfig{}) {}

Dispatcher::Dispatcher(EventQueue& queue, std::vector<GpuDevice*> devices,
                       DispatchConfig config, PlacementConfig placement)
    : events_(queue), config_(config), placement_(placement) {
  SIGVP_REQUIRE(!devices.empty(), "dispatcher needs at least one device");
  lanes_.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    SIGVP_REQUIRE(devices[i] != nullptr, "dispatcher given a null device");
    DeviceLane lane;
    lane.device = devices[i];
    lane.service_stream = devices[i]->create_stream();
    lane.coalescer = std::make_unique<Coalescer>(queue, *devices[i], lane.service_stream);
    // Lane 0 keeps the legacy engine name so single-device runs trace and
    // capture byte-identically.
    lane.service = std::make_unique<Engine>(
        queue, i == 0 ? std::string("dispatcher") : "dispatcher" + std::to_string(i));
    lanes_.push_back(std::move(lane));
  }
}

void Dispatcher::register_vp(std::uint32_t device_index) {
  SIGVP_REQUIRE(device_index < lanes_.size(), "register_vp: unknown device index");
  vp_device_.push_back(device_index);
  vp_streams_.push_back(lanes_[device_index].device->create_stream());
  next_seq_.push_back(0);
  vp_inflight_.push_back(0);
  vp_group_inflight_.push_back(0);
  vp_h2d_bytes_.push_back(0);
  vp_ready_at_.push_back(0.0);
}

void Dispatcher::submit(Job job) {
  SIGVP_REQUIRE(job.vp_id < vp_streams_.size(), "job from unregistered VP");
  SIGVP_REQUIRE(job.kind != JobKind::kKernel || job.launch.request.kernel != nullptr,
                "kernel job without a kernel");
  maybe_migrate(job.vp_id);
  job.enqueue_time = events_.now();
  if (trace_ != nullptr) {
    if (job.id != 0) trace_->flow_step(trace::RunTrace::kTidDispatcher, events_.now(), job.id);
  }
  queue_.push_back(std::move(job));
  if (trace_ != nullptr) {
    trace_->queue_depth->record(static_cast<double>(queue_.size()));
    trace_->queue_depth_max->record_max(static_cast<double>(queue_.size()));
    trace_->counter("sched.queue_depth", events_.now(), static_cast<double>(queue_.size()));
  }
  pump();
}

// --- placement -------------------------------------------------------------------

SimTime Dispatcher::lane_backlog(std::size_t d) const {
  const SimTime now = events_.now();
  const DeviceLane& lane = lanes_[d];
  SimTime backlog = std::max(0.0, lane.service->free_at() - now) +
                    std::max(0.0, lane.device->compute_engine_free_at() - now);
  std::uint64_t queued = 0;
  for (const Job& j : queue_) {
    if (vp_device_[j.vp_id] == d) ++queued;
  }
  return backlog + static_cast<SimTime>(queued) * config_.dispatch_overhead_us;
}

void Dispatcher::maybe_migrate(std::uint32_t vp) {
  if (lanes_.size() < 2 || placement_.policy != PlacementPolicy::kAffinity ||
      !placement_.allow_migration || fault_active()) {
    return;
  }
  // Only a fully idle VP may move: nothing queued, nothing in flight, no
  // group membership — so no stream chaining or sequence state spans the
  // device switch.
  if (vp_inflight_[vp] != 0 || vp_group_inflight_[vp] != 0) return;
  for (const Job& j : queue_) {
    if (j.vp_id == vp) return;
  }
  const std::uint32_t cur = vp_device_[vp];
  const SimTime cost = migration_cost_us(placement_, vp_h2d_bytes_[vp]);
  const SimTime stay_score = lane_backlog(cur);
  std::size_t best = cur;
  SimTime best_score = stay_score;
  for (std::size_t d = 0; d < lanes_.size(); ++d) {
    if (d == cur) continue;
    const SimTime score = lane_backlog(d) + cost;
    if (score < best_score) {
      best = d;
      best_score = score;
    }
  }
  // Hysteresis: a move must beat staying by a clear margin, or a VP would
  // ping-pong between near-equal lanes paying the restage cost every hop.
  if (best == cur || best_score + placement_.hysteresis_us >= stay_score) return;

  vp_device_[vp] = static_cast<std::uint32_t>(best);
  vp_streams_[vp] = lanes_[best].device->create_stream();
  const SimTime ready_at = events_.now() + cost;
  vp_ready_at_[vp] = ready_at;
  ++migrations_;
  migrated_bytes_ += vp_h2d_bytes_[vp];
  SIGVP_DEBUG("dispatcher") << "migrate vp" << vp << " gpu" << cur << "->gpu" << best
                            << " ws=" << vp_h2d_bytes_[vp] << "B cost=" << cost
                            << "us t=" << events_.now();
  if (trace_ != nullptr) {
    trace_->instant(trace::RunTrace::kTidDispatcher, "placement", "migrate", events_.now(),
                    {trace::arg("vp", static_cast<int>(vp)),
                     trace::arg("from", static_cast<int>(cur)),
                     trace::arg("to", static_cast<int>(best)),
                     trace::arg("ws_bytes", vp_h2d_bytes_[vp]),
                     trace::arg("cost_us", cost)});
  }
  // The VP's next job waits out the restage; make sure something re-pumps
  // when the hold expires (its own submit may be the only trigger).
  events_.schedule_at(ready_at, [this] { pump(); });
}

bool Dispatcher::is_ready(const Job& job) const {
  return job.seq_in_vp == next_seq_[job.vp_id];
}

bool Dispatcher::coalescable(const Job& job) const {
  if (job.kind != JobKind::kKernel || !job.launch.coalesce.eligible) return false;
  // Quarantine policy: a VP with too many recovery incidents loses Kernel
  // Coalescing eligibility — a flaky VP must not drag healthy peers into
  // its retries.
  if (fault_active() && health_ != nullptr && health_->quarantined(job.vp_id)) return false;
  return true;
}

bool Dispatcher::can_join_group(const Job& job) const {
  // A peer may join a coalesced group only when NOTHING of its VP is still
  // in flight: merged groups execute on the coalescer's service stream, so
  // they bypass the per-VP stream chaining that orders single dispatches. A
  // merged kernel whose predecessor (e.g. a copy) is still pending would
  // complete out of its VP's sequence order — the partial-order violation
  // the scheduler property tests hunt for. The dispatcher-side in-flight
  // counter (not the device stream tail) is authoritative here because a
  // dispatched job only reaches its stream after the service delay.
  return is_ready(job) && vp_inflight_[job.vp_id] == 0 &&
         vp_ready_at_[job.vp_id] <= events_.now() &&
         lane_of(job).device->stream_idle_at(vp_streams_[job.vp_id]) <= events_.now();
}

std::uint32_t Dispatcher::ready_peers(const Job& job) const {
  std::uint32_t peers = 0;
  for (const Job& other : queue_) {
    if (&other == &job) continue;
    // Coalesced groups launch once, on one device: peers must share a lane.
    if (vp_device_[other.vp_id] != vp_device_[job.vp_id]) continue;
    if (coalescable(other) && other.launch.coalesce.key == job.launch.coalesce.key &&
        can_join_group(other)) {
      ++peers;
    }
  }
  return peers;
}

bool Dispatcher::held_for_coalescing(const Job& job) const {
  if (!config_.coalesce || !coalescable(job)) {
    return false;
  }
  if (events_.now() - job.enqueue_time >= config_.coalesce_window_us) return false;
  return ready_peers(job) < config_.coalesce_eager_peers;
}

void Dispatcher::arm_window_timer() {
  if (!config_.coalesce) return;
  SimTime earliest = -1.0;
  for (const Job& job : queue_) {
    if (!coalescable(job)) continue;
    const SimTime expiry = job.enqueue_time + config_.coalesce_window_us;
    if (expiry > events_.now() && (earliest < 0.0 || expiry < earliest)) earliest = expiry;
  }
  if (earliest < 0.0) return;
  // A strictly-future armed timer that fires no later than `earliest` will
  // re-pump in time; otherwise arm a fresh one (consumed timers reset the
  // marker before pumping).
  if (window_timer_at_ > events_.now() && window_timer_at_ <= earliest) return;
  window_timer_at_ = earliest;
  events_.schedule_at(earliest, [this] {
    window_timer_at_ = -1.0;
    pump();
  });
}

std::size_t Dispatcher::pick_next() const {
  if (!config_.interleave) {
    // Serial baseline: strictly one job at a time, arrival order.
    if (in_flight_ > 0) return kNone;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (vp_ready_at_[queue_[i].vp_id] > events_.now()) continue;
      if (is_ready(queue_[i]) && !held_for_coalescing(queue_[i])) return i;
    }
    return kNone;
  }

  // Kernel Interleaving: dispatch the earliest ready job that could START
  // right now — its engine must be idle AND its stream dependency (the
  // previous op of the same VP) must have completed. The second condition is
  // the "augmented for job dependencies" part of the paper's Re-scheduler:
  // without it, a dependency-stalled job would head-of-line-block its engine
  // while another VP's runnable job waits behind it (Fig. 3(a)). All engine
  // and service checks are against the job's own lane, so lanes of a
  // multi-device host pump independently.
  const SimTime now = events_.now();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Job& job = queue_[i];
    if (!is_ready(job) || held_for_coalescing(job)) continue;
    // A migrated VP is restaging its working set onto the target device.
    if (vp_ready_at_[job.vp_id] > now) continue;
    // A coalesced group member of this VP may still be running on the
    // coalescer's service stream; the VP stream would not chain behind it,
    // so the VP's next op must wait for the group's completion.
    if (vp_group_inflight_[job.vp_id] > 0) continue;
    // Fault mode only: hold the VP's next job until the in-flight one has
    // actually completed, so a transient abort or reset kill can re-queue
    // it (rolling next_seq_ back) without a later job of the same VP having
    // slipped past it. Without a fault plan this gate does not exist.
    if (fault_active() && vp_inflight_[job.vp_id] > 0) continue;
    const DeviceLane& lane = lane_of(job);
    const SimTime engine_free = job.kind == JobKind::kKernel
                                    ? lane.device->compute_engine_free_at()
                                    : (job.kind == JobKind::kMemcpyH2D
                                           ? lane.device->h2d_engine_free_at()
                                           : lane.device->d2h_engine_free_at());
    if (engine_free > now) continue;
    if (lane.service->free_at() > now) continue;  // one job in service per lane
    if (lane.device->stream_idle_at(vp_streams_[job.vp_id]) > now) continue;
    return i;
  }
  return kNone;
}

void Dispatcher::pump() {
  if (pumping_) return;
  pumping_ = true;
  for (std::size_t idx = pick_next(); idx != kNone; idx = pick_next()) {
    dispatch_at(idx);
  }
  arm_window_timer();
  pumping_ = false;
}

const char* Dispatcher::head_hold_reason() const {
  if (queue_.empty()) return "empty";
  const Job& head = queue_.front();
  if (!is_ready(head)) return "head waits on VP sequence order";
  if (vp_ready_at_[head.vp_id] > events_.now()) return "head restaging after migration";
  if (held_for_coalescing(head)) return "head held for coalescing peers";
  if (vp_group_inflight_[head.vp_id] > 0) return "head waits on a merged group";
  if (fault_active() && vp_inflight_[head.vp_id] > 0) return "head gated by fault-mode order";
  const DeviceLane& lane = lane_of(head);
  const SimTime engine_free = head.kind == JobKind::kKernel
                                  ? lane.device->compute_engine_free_at()
                                  : (head.kind == JobKind::kMemcpyH2D
                                         ? lane.device->h2d_engine_free_at()
                                         : lane.device->d2h_engine_free_at());
  if (engine_free > events_.now()) return "head engine busy";
  if (lane.device->stream_idle_at(vp_streams_[head.vp_id]) > events_.now())
    return "head stream busy";
  return "head ready (tie)";
}

void Dispatcher::dispatch_at(std::size_t index) {
  // A dispatch from behind the queue head is the Re-scheduler's asynchronous
  // cross-VP reordering (paper Fig. 4(a)) — only meaningful with Kernel
  // Interleaving. In the serial baseline the head can only be bypassed while
  // it waits out a coalescing window, which is a hold, not a reorder; the
  // `interleave == false ⇒ reorders == 0` invariant is property-tested.
  if (index > 0 && config_.interleave) {
    ++reorders_;
    if (trace_ != nullptr) {
      ++trace_->reorders->value;
      trace_->instant(trace::RunTrace::kTidDispatcher, "sched", "reorder", events_.now(),
                      {trace::arg("job", queue_[index].id),
                       trace::arg("vp", static_cast<int>(queue_[index].vp_id)),
                       trace::arg("picked_index", static_cast<int>(index)),
                       trace::arg("reason", head_hold_reason())});
    }
  }

  Job job = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));

  if (config_.coalesce && coalescable(job)) {
    // Kernel Match: sweep the queue for ready identical requests on the
    // same device (one merged launch targets one device's engines).
    std::vector<Job> group;
    group.push_back(std::move(job));
    for (auto it = queue_.begin(); it != queue_.end();) {
      const bool match = coalescable(*it) &&
                         vp_device_[it->vp_id] == vp_device_[group.front().vp_id] &&
                         it->launch.coalesce.key == group.front().launch.coalesce.key &&
                         can_join_group(*it);
      if (match) {
        group.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (group.size() >= 2 && Coalescer::can_merge(group)) {
      dispatch_group(std::move(group));
      return;
    }
    if (trace_ != nullptr) {
      // A coalescable kernel dispatching alone means its window expired (or
      // matching peers could not merge) — the "why didn't this coalesce"
      // annotation the trace promises.
      trace_->instant(trace::RunTrace::kTidDispatcher, "sched", "coalesce.window_expired",
                      events_.now(),
                      {trace::arg("job", group.front().id),
                       trace::arg("vp", static_cast<int>(group.front().vp_id)),
                       trace::arg("waited_us",
                                  events_.now() - group.front().enqueue_time),
                       trace::arg("unmergeable_peers", static_cast<int>(group.size() - 1))});
    }
    dispatch_single(std::move(group.front()));
    // Any extra matches that could not merge are re-queued at the front in
    // their original relative order.
    for (std::size_t i = group.size(); i-- > 1;) {
      queue_.push_front(std::move(group[i]));
    }
    return;
  }

  dispatch_single(std::move(job));
}

void Dispatcher::dispatch_single(Job job) {
  DeviceLane& lane = lane_of(job);
  ++next_seq_[job.vp_id];
  ++vp_inflight_[job.vp_id];
  ++in_flight_;
  ++jobs_dispatched_;
  ++lane.jobs_dispatched;
  if (job.kind == JobKind::kMemcpyH2D) vp_h2d_bytes_[job.vp_id] += job.bytes;
  // Injected process death between dispatch accounting and device
  // submission: the most scheduler-state-laden instant of a job's life.
  crash_point(CrashSite::kDispatch);
  SIGVP_TRACE("dispatcher") << "dispatch job " << job.id << " vp" << job.vp_id << " kind="
                            << static_cast<int>(job.kind) << " t=" << events_.now();
  if (trace_ != nullptr) {
    ++trace_->jobs_dispatched->value;
    trace_->queue_wait_us->record(events_.now() - job.enqueue_time);
    trace_->counter("sched.queue_depth", events_.now(), static_cast<double>(queue_.size()));
    // Queue residency on the VP's track, then the dispatcher's service slot.
    trace_->span(job.vp_id, "sched", std::string("queue:") + job_kind_name(job.kind),
                 job.enqueue_time, events_.now(), {trace::arg("job", job.id)});
    const SimTime service_start = std::max(events_.now(), lane.service->free_at());
    trace_->span(trace::RunTrace::kTidDispatcher, "sched",
                 std::string("service:") + job_kind_name(job.kind), service_start,
                 service_start + config_.dispatch_overhead_us,
                 {trace::arg("job", job.id), trace::arg("vp", static_cast<int>(job.vp_id))});
    if (job.id != 0) {
      trace_->flow_step(trace::RunTrace::kTidDispatcher, events_.now(), job.id);
    }
  }
  // Host-side job handling happens on the dispatcher thread before the op
  // reaches the device engines.
  lane.service->submit(config_.dispatch_overhead_us,
                       [this, job = std::make_shared<Job>(std::move(job))](SimTime) mutable {
                         submit_to_device(std::move(*job));
                         pump();
                       });
}

void Dispatcher::submit_to_device(Job job) {
  if (fault_active()) {
    submit_to_device_tolerant(std::move(job));
    return;
  }
  GpuDevice& device = *lane_of(job).device;
  const GpuDevice::StreamId stream = vp_streams_[job.vp_id];
  const std::uint32_t vp = job.vp_id;
  switch (job.kind) {
    case JobKind::kMemcpyH2D:
      device.memcpy_h2d(stream, job.device_addr, job.host_src, job.bytes,
                        [this, vp, cb = std::move(job.on_complete)](SimTime end) {
                          if (cb) cb(end, nullptr);
                          on_job_finished(vp);
                        });
      break;
    case JobKind::kMemcpyD2H:
      device.memcpy_d2h(stream, job.host_dst, job.device_addr, job.bytes,
                        [this, vp, cb = std::move(job.on_complete)](SimTime end) {
                          if (cb) cb(end, nullptr);
                          on_job_finished(vp);
                        });
      break;
    case JobKind::kKernel:
      device.launch(stream, job.launch.request,
                    [this, vp, cb = std::move(job.on_complete)](
                        SimTime end, const KernelExecStats& stats) {
                      if (cb) cb(end, &stats);
                      on_job_finished(vp);
                    });
      break;
  }
}

void Dispatcher::dispatch_group(std::vector<Job> group) {
  DeviceLane& lane = lane_of(group.front());
  in_flight_ += static_cast<std::uint32_t>(group.size());
  jobs_dispatched_ += group.size();
  lane.jobs_dispatched += group.size();
  if (trace_ != nullptr) {
    ++trace_->coalesced_groups->value;
    trace_->coalesced_jobs->value += group.size();
    trace_->jobs_dispatched->value += group.size();
    trace_->group_size->record(static_cast<double>(group.size()));
    trace_->counter("sched.queue_depth", events_.now(), static_cast<double>(queue_.size()));
    trace_->instant(trace::RunTrace::kTidDispatcher, "sched", "coalesce", events_.now(),
                    {trace::arg("size", static_cast<int>(group.size())),
                     trace::arg("lead_job", group.front().id),
                     trace::arg("reason", "identical ready kernels merged")});
    const SimTime service_start = std::max(events_.now(), lane.service->free_at());
    trace_->span(trace::RunTrace::kTidDispatcher, "sched", "service:group", service_start,
                 service_start + config_.dispatch_overhead_us,
                 {trace::arg("size", static_cast<int>(group.size()))});
    for (const Job& j : group) {
      trace_->queue_wait_us->record(events_.now() - j.enqueue_time);
      trace_->span(j.vp_id, "sched", std::string("queue:") + job_kind_name(j.kind),
                   j.enqueue_time, events_.now(), {trace::arg("job", j.id)});
      if (j.id != 0) trace_->flow_step(trace::RunTrace::kTidDispatcher, events_.now(), j.id);
    }
  }
  // Fault mode: retain pre-wrap member copies so a merged-launch abort or a
  // reset kill can re-queue members with their original completions.
  std::shared_ptr<std::vector<Job>> retained;
  std::shared_ptr<std::vector<std::uint64_t>> member_ops;
  if (fault_active()) {
    retained = std::make_shared<std::vector<Job>>(group);
    member_ops = std::make_shared<std::vector<std::uint64_t>>(group.size(), 0);
  }
  for (std::size_t idx = 0; idx < group.size(); ++idx) {
    Job& j = group[idx];
    ++next_seq_[j.vp_id];
    ++vp_inflight_[j.vp_id];
    ++vp_group_inflight_[j.vp_id];
    // Chain the dispatcher's accounting after the job's own completion.
    auto original = std::move(j.on_complete);
    const std::uint32_t vp = j.vp_id;
    j.on_complete = [this, vp, idx, member_ops, original](SimTime end,
                                                          const KernelExecStats* stats) {
      if (member_ops) kill_actions_.erase((*member_ops)[idx]);
      if (original) original(end, stats);
      SIGVP_ASSERT(vp_group_inflight_[vp] > 0, "group completion for an idle VP");
      --vp_group_inflight_[vp];
      on_job_finished(vp);
    };
  }
  // One host-side service charge for the whole merged group — the core of
  // the coalescing gain: N launches, one dispatch + one profiler arming.
  Coalescer* coalescer = lane.coalescer.get();
  lane.service->submit(
      config_.dispatch_overhead_us,
      [this, coalescer, retained, member_ops,
       group = std::make_shared<std::vector<Job>>(std::move(group))](SimTime) mutable {
        if (!fault_active()) {
          coalescer->execute(std::move(*group));
          pump();
          return;
        }
        // Wire the group's recovery hooks: the merged-launch abort (or a
        // reset racing it) re-splits the whole group; a reset killing a
        // member's scatter re-queues just that member.
        auto abort_op = std::make_shared<std::uint64_t>(0);
        Coalescer::GroupFaultHooks hooks;
        hooks.on_abort = [this, retained, abort_op](SimTime) {
          kill_actions_.erase(*abort_op);
          resplit_group(retained);
        };
        hooks.on_abort_op = [this, retained, abort_op](std::uint64_t op) {
          *abort_op = op;
          kill_actions_[op] = [this, retained] { resplit_group(retained); };
        };
        hooks.on_member_op = [this, retained, member_ops](std::size_t idx,
                                                          std::uint64_t op) {
          (*member_ops)[idx] = op;
          kill_actions_[op] = [this, retained, idx] {
            Job j = (*retained)[idx];
            SIGVP_ASSERT(vp_group_inflight_[j.vp_id] > 0,
                         "reset kill for a member of an idle VP");
            --vp_group_inflight_[j.vp_id];
            rollback_dispatch(j);
            ++fault_stats_->reset_requeues;
            requeue(std::move(j));
          };
        };
        coalescer->execute(std::move(*group), &hooks);
        pump();
      });
}

void Dispatcher::on_job_finished(std::uint32_t vp_id) {
  SIGVP_ASSERT(in_flight_ > 0, "completion without a job in flight");
  SIGVP_ASSERT(vp_inflight_[vp_id] > 0, "completion for an idle VP");
  --in_flight_;
  --vp_inflight_[vp_id];
  pump();
}

// --- fault tolerance -------------------------------------------------------------

void Dispatcher::set_fault(const FaultPlan* plan, FaultStats* stats, HealthPolicy* health,
                           RecoveryConfig recovery) {
  SIGVP_REQUIRE(plan == nullptr || (stats != nullptr && health != nullptr),
                "fault plan without stats/health sinks");
  SIGVP_REQUIRE(plan == nullptr || !plan->enabled() || lanes_.size() == 1,
                "fault injection requires a single host GPU");
  fault_plan_ = plan;
  fault_stats_ = stats;
  health_ = health;
  recovery_ = recovery;
  if (fault_active()) {
    lanes_[0].device->set_kill_handler([this](std::uint64_t op_id) { on_op_killed(op_id); });
  }
}

void Dispatcher::set_escalation(std::function<void(std::uint32_t, Job)> escalate) {
  escalate_ = std::move(escalate);
}

void Dispatcher::inject_device_reset() {
  SIGVP_REQUIRE(fault_active(), "device reset injection requires an active fault plan");
  // The reset's kill handler re-queues every killed job (in op submission
  // order, which is per-VP sequence order). With everything killed there may
  // be no pending completion left to re-enter pump(), so one is scheduled
  // for the moment the engines come back.
  const SimTime recovered_at =
      lanes_[0].device->reset(fault_plan_->config().device_reset_latency_us);
  pump();
  events_.schedule_at(recovered_at, [this] { pump(); });
}

void Dispatcher::on_op_killed(std::uint64_t op_id) {
  auto it = kill_actions_.find(op_id);
  if (it == kill_actions_.end()) return;  // op without a recovery action (gathers, ...)
  auto action = std::move(it->second);
  kill_actions_.erase(it);
  action();
}

void Dispatcher::rollback_dispatch(const Job& job) {
  SIGVP_ASSERT(in_flight_ > 0, "rollback without a job in flight");
  SIGVP_ASSERT(vp_inflight_[job.vp_id] > 0, "rollback for an idle VP");
  --in_flight_;
  --vp_inflight_[job.vp_id];
  // The fault-mode pick_next gate guarantees no later job of this VP was
  // dispatched while this one was in flight, so rolling the cursor back
  // preserves the VP's sequence order.
  SIGVP_ASSERT(next_seq_[job.vp_id] == job.seq_in_vp + 1,
               "re-queue would break the VP's sequence order");
  next_seq_[job.vp_id] = job.seq_in_vp;
}

void Dispatcher::requeue(Job job) {
  job.enqueue_time = events_.now();
  queue_.push_back(std::move(job));
}

void Dispatcher::escalate(Job job) {
  if (!escalate_) {
    ++fault_stats_->unrecovered_jobs;  // no fallback wired: the job is lost
    return;
  }
  const std::uint32_t vp = job.vp_id;
  escalate_(vp, std::move(job));
}

void Dispatcher::purge_vp(std::uint32_t vp_id) {
  SIGVP_REQUIRE(vp_id < vp_streams_.size(), "purge for an unregistered VP");
  // Jobs of one VP sit in the queue in sequence order, so draining the
  // deque front-to-back escalates them in program order.
  std::vector<Job> purged;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->vp_id == vp_id) {
      purged.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  for (Job& j : purged) escalate(std::move(j));
}

void Dispatcher::submit_to_device_tolerant(Job job) {
  const std::uint32_t vp = job.vp_id;
  if (health_ != nullptr && health_->failed(vp)) {
    // The VP was degraded while this job sat in service: follow its peers
    // to the fallback instead of touching the device.
    --in_flight_;
    --vp_inflight_[vp];
    escalate(std::move(job));
    pump();
    return;
  }
  GpuDevice& device = *lane_of(job).device;
  const GpuDevice::StreamId stream = vp_streams_[vp];
  auto boxed = std::make_shared<Job>(std::move(job));
  auto op_box = std::make_shared<std::uint64_t>(0);
  auto done = [this, vp, boxed, op_box](SimTime end, const KernelExecStats* stats) {
    kill_actions_.erase(*op_box);
    if (boxed->on_complete) boxed->on_complete(end, stats);
    on_job_finished(vp);
  };
  switch (boxed->kind) {
    case JobKind::kMemcpyH2D:
      device.memcpy_h2d(stream, boxed->device_addr, boxed->host_src, boxed->bytes,
                        [done](SimTime end) { done(end, nullptr); });
      break;
    case JobKind::kMemcpyD2H:
      device.memcpy_d2h(stream, boxed->host_dst, boxed->device_addr, boxed->bytes,
                        [done](SimTime end) { done(end, nullptr); });
      break;
    case JobKind::kKernel:
      device.launch(stream, boxed->launch.request,
                    [done](SimTime end, const KernelExecStats& stats) { done(end, &stats); },
                    [this, boxed, op_box](SimTime) {
                      kill_actions_.erase(*op_box);
                      on_launch_failed(boxed);
                    });
      break;
  }
  // Submission is single-threaded, so the op just submitted is last_op_id().
  *op_box = device.last_op_id();
  kill_actions_[*op_box] = [this, boxed] {
    rollback_dispatch(*boxed);
    ++fault_stats_->reset_requeues;
    requeue(*boxed);
  };
}

void Dispatcher::on_launch_failed(std::shared_ptr<Job> job) {
  const std::uint32_t vp = job->vp_id;
  ++job->attempts;
  if (health_) health_->report_incident(vp);
  if (job->attempts > recovery_.max_launch_retries) {
    // Bounded-retry budget exhausted: degrade the VP (purging its queued
    // successors to the fallback) and escalate this job after them — the
    // fallback drain re-sorts everything by sequence number.
    --in_flight_;
    --vp_inflight_[vp];
    if (health_) health_->mark_failed(vp);
    escalate(std::move(*job));
    pump();
    return;
  }
  ++fault_stats_->launch_retries;
  rollback_dispatch(*job);
  requeue(std::move(*job));
  pump();
}

void Dispatcher::resplit_group(std::shared_ptr<std::vector<Job>> members) {
  if (members->empty()) return;  // already re-split by a racing reset kill
  ++fault_stats_->group_resplits;
  SIGVP_DEBUG("dispatcher") << "merged launch aborted: re-splitting " << members->size()
                            << " members to singles at t=" << events_.now();
  for (Job& j : *members) {
    SIGVP_ASSERT(vp_group_inflight_[j.vp_id] > 0, "re-split for a member of an idle VP");
    --vp_group_inflight_[j.vp_id];
    rollback_dispatch(j);
    // A group that failed together must not re-merge and fail together
    // again: members retry as singles.
    j.launch.coalesce.eligible = false;
    requeue(std::move(j));
  }
  members->clear();
  pump();
}

std::string Dispatcher::stall_report() const {
  std::ostringstream os;
  os << queue_.size() << " job(s) queued, " << in_flight_ << " in flight:";
  for (std::size_t vp = 0; vp < vp_streams_.size(); ++vp) {
    std::size_t queued = 0;
    for (const Job& j : queue_) {
      if (j.vp_id == vp) ++queued;
    }
    if (queued == 0 && vp_inflight_[vp] == 0) continue;
    os << " vp" << vp << "={queued: " << queued << ", in_flight: " << vp_inflight_[vp]
       << ", next_seq: " << next_seq_[vp] << "}";
  }
  return os.str();
}

void Dispatcher::capture_state(snapshot::Writer& w) const {
  w.u64(queue_.size());
  for (const Job& j : queue_) {
    w.u64(j.id);
    w.u32(j.vp_id);
    w.u64(j.seq_in_vp);
    w.u8(static_cast<std::uint8_t>(j.kind));
    w.u64(j.bytes);
    w.f64(j.enqueue_time);
    w.u32(j.attempts);
  }
  w.u64_vec(next_seq_);
  w.u64(vp_inflight_.size());
  for (std::uint32_t v : vp_inflight_) w.u32(v);
  for (std::uint32_t v : vp_group_inflight_) w.u32(v);
  w.u32(in_flight_);
  w.u64(jobs_dispatched_);
  w.u64(reorders_);
  w.f64(window_timer_at_);
  w.u64(lanes_[0].coalescer->groups_executed());
  w.u64(lanes_[0].coalescer->jobs_merged());
  w.f64(lanes_[0].service->free_at());
  w.f64(lanes_[0].service->busy_time());
  w.u64(lanes_[0].service->jobs_submitted());
  w.u64(kill_actions_.size());
  for (const auto& [op_id, fn] : kill_actions_) w.u64(op_id);
  // Multi-lane state is appended past the legacy layout, so a single-device
  // capture digests byte-identically to every release before multi-GPU.
  if (lanes_.size() > 1) {
    w.u64(lanes_.size());
    for (std::size_t d = 1; d < lanes_.size(); ++d) {
      w.u64(lanes_[d].coalescer->groups_executed());
      w.u64(lanes_[d].coalescer->jobs_merged());
      w.f64(lanes_[d].service->free_at());
      w.f64(lanes_[d].service->busy_time());
      w.u64(lanes_[d].service->jobs_submitted());
      w.u64(lanes_[d].jobs_dispatched);
    }
    w.u64(lanes_[0].jobs_dispatched);
    w.u64(vp_device_.size());
    for (std::uint32_t d : vp_device_) w.u32(d);
    w.u64_vec(vp_h2d_bytes_);
    for (SimTime t : vp_ready_at_) w.f64(t);
    w.u64(migrations_);
    w.u64(migrated_bytes_);
  }
}

}  // namespace sigvp
