#include "sched/dispatcher.hpp"

#include <limits>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

#include <memory>

namespace sigvp {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}

Dispatcher::Dispatcher(EventQueue& queue, GpuDevice& device, DispatchConfig config)
    : events_(queue),
      device_(device),
      config_(config),
      service_stream_(device.create_stream()),
      coalescer_(queue, device, service_stream_),
      service_(queue, "dispatcher") {}

void Dispatcher::register_vp() {
  vp_streams_.push_back(device_.create_stream());
  next_seq_.push_back(0);
  vp_inflight_.push_back(0);
  vp_group_inflight_.push_back(0);
}

void Dispatcher::submit(Job job) {
  SIGVP_REQUIRE(job.vp_id < vp_streams_.size(), "job from unregistered VP");
  SIGVP_REQUIRE(job.kind != JobKind::kKernel || job.launch.request.kernel != nullptr,
                "kernel job without a kernel");
  job.enqueue_time = events_.now();
  queue_.push_back(std::move(job));
  pump();
}

bool Dispatcher::is_ready(const Job& job) const {
  return job.seq_in_vp == next_seq_[job.vp_id];
}

bool Dispatcher::can_join_group(const Job& job) const {
  // A peer may join a coalesced group only when NOTHING of its VP is still
  // in flight: merged groups execute on the coalescer's service stream, so
  // they bypass the per-VP stream chaining that orders single dispatches. A
  // merged kernel whose predecessor (e.g. a copy) is still pending would
  // complete out of its VP's sequence order — the partial-order violation
  // the scheduler property tests hunt for. The dispatcher-side in-flight
  // counter (not the device stream tail) is authoritative here because a
  // dispatched job only reaches its stream after the service delay.
  return is_ready(job) && vp_inflight_[job.vp_id] == 0 &&
         device_.stream_idle_at(vp_streams_[job.vp_id]) <= events_.now();
}

std::uint32_t Dispatcher::ready_peers(const Job& job) const {
  std::uint32_t peers = 0;
  for (const Job& other : queue_) {
    if (&other == &job) continue;
    if (other.kind == JobKind::kKernel && other.launch.coalesce.eligible &&
        other.launch.coalesce.key == job.launch.coalesce.key && can_join_group(other)) {
      ++peers;
    }
  }
  return peers;
}

bool Dispatcher::held_for_coalescing(const Job& job) const {
  if (!config_.coalesce || job.kind != JobKind::kKernel || !job.launch.coalesce.eligible) {
    return false;
  }
  if (events_.now() - job.enqueue_time >= config_.coalesce_window_us) return false;
  return ready_peers(job) < config_.coalesce_eager_peers;
}

void Dispatcher::arm_window_timer() {
  if (!config_.coalesce) return;
  SimTime earliest = -1.0;
  for (const Job& job : queue_) {
    if (job.kind != JobKind::kKernel || !job.launch.coalesce.eligible) continue;
    const SimTime expiry = job.enqueue_time + config_.coalesce_window_us;
    if (expiry > events_.now() && (earliest < 0.0 || expiry < earliest)) earliest = expiry;
  }
  if (earliest < 0.0) return;
  // A strictly-future armed timer that fires no later than `earliest` will
  // re-pump in time; otherwise arm a fresh one (consumed timers reset the
  // marker before pumping).
  if (window_timer_at_ > events_.now() && window_timer_at_ <= earliest) return;
  window_timer_at_ = earliest;
  events_.schedule_at(earliest, [this] {
    window_timer_at_ = -1.0;
    pump();
  });
}

std::size_t Dispatcher::pick_next() const {
  if (!config_.interleave) {
    // Serial baseline: strictly one job at a time, arrival order.
    if (in_flight_ > 0) return kNone;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (is_ready(queue_[i]) && !held_for_coalescing(queue_[i])) return i;
    }
    return kNone;
  }

  // Kernel Interleaving: dispatch the earliest ready job that could START
  // right now — its engine must be idle AND its stream dependency (the
  // previous op of the same VP) must have completed. The second condition is
  // the "augmented for job dependencies" part of the paper's Re-scheduler:
  // without it, a dependency-stalled job would head-of-line-block its engine
  // while another VP's runnable job waits behind it (Fig. 3(a)).
  const SimTime now = events_.now();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Job& job = queue_[i];
    if (!is_ready(job) || held_for_coalescing(job)) continue;
    // A coalesced group member of this VP may still be running on the
    // coalescer's service stream; the VP stream would not chain behind it,
    // so the VP's next op must wait for the group's completion.
    if (vp_group_inflight_[job.vp_id] > 0) continue;
    const SimTime engine_free = job.kind == JobKind::kKernel
                                    ? device_.compute_engine_free_at()
                                    : (job.kind == JobKind::kMemcpyH2D
                                           ? device_.h2d_engine_free_at()
                                           : device_.d2h_engine_free_at());
    if (engine_free > now) continue;
    if (service_.free_at() > now) continue;  // one job in service at a time
    if (device_.stream_idle_at(vp_streams_[job.vp_id]) > now) continue;
    return i;
  }
  return kNone;
}

void Dispatcher::pump() {
  if (pumping_) return;
  pumping_ = true;
  for (std::size_t idx = pick_next(); idx != kNone; idx = pick_next()) {
    dispatch_at(idx);
  }
  arm_window_timer();
  pumping_ = false;
}

void Dispatcher::dispatch_at(std::size_t index) {
  // A dispatch from behind the queue head is the Re-scheduler's asynchronous
  // cross-VP reordering (paper Fig. 4(a)) — only meaningful with Kernel
  // Interleaving. In the serial baseline the head can only be bypassed while
  // it waits out a coalescing window, which is a hold, not a reorder; the
  // `interleave == false ⇒ reorders == 0` invariant is property-tested.
  if (index > 0 && config_.interleave) ++reorders_;

  Job job = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));

  if (config_.coalesce && job.kind == JobKind::kKernel && job.launch.coalesce.eligible) {
    // Kernel Match: sweep the queue for ready identical requests.
    std::vector<Job> group;
    group.push_back(std::move(job));
    for (auto it = queue_.begin(); it != queue_.end();) {
      const bool match = it->kind == JobKind::kKernel && it->launch.coalesce.eligible &&
                         it->launch.coalesce.key == group.front().launch.coalesce.key &&
                         can_join_group(*it);
      if (match) {
        group.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (group.size() >= 2 && Coalescer::can_merge(group)) {
      dispatch_group(std::move(group));
      return;
    }
    dispatch_single(std::move(group.front()));
    // Any extra matches that could not merge are re-queued at the front in
    // their original relative order.
    for (std::size_t i = group.size(); i-- > 1;) {
      queue_.push_front(std::move(group[i]));
    }
    return;
  }

  dispatch_single(std::move(job));
}

void Dispatcher::dispatch_single(Job job) {
  ++next_seq_[job.vp_id];
  ++vp_inflight_[job.vp_id];
  ++in_flight_;
  ++jobs_dispatched_;
  SIGVP_TRACE("dispatcher") << "dispatch job " << job.id << " vp" << job.vp_id << " kind="
                            << static_cast<int>(job.kind) << " t=" << events_.now();
  // Host-side job handling happens on the dispatcher thread before the op
  // reaches the device engines.
  service_.submit(config_.dispatch_overhead_us,
                  [this, job = std::make_shared<Job>(std::move(job))](SimTime) mutable {
                    submit_to_device(std::move(*job));
                    pump();
                  });
}

void Dispatcher::submit_to_device(Job job) {
  const GpuDevice::StreamId stream = vp_streams_[job.vp_id];
  const std::uint32_t vp = job.vp_id;
  switch (job.kind) {
    case JobKind::kMemcpyH2D:
      device_.memcpy_h2d(stream, job.device_addr, job.host_src, job.bytes,
                         [this, vp, cb = std::move(job.on_complete)](SimTime end) {
                           if (cb) cb(end, nullptr);
                           on_job_finished(vp);
                         });
      break;
    case JobKind::kMemcpyD2H:
      device_.memcpy_d2h(stream, job.host_dst, job.device_addr, job.bytes,
                         [this, vp, cb = std::move(job.on_complete)](SimTime end) {
                           if (cb) cb(end, nullptr);
                           on_job_finished(vp);
                         });
      break;
    case JobKind::kKernel:
      device_.launch(stream, job.launch.request,
                     [this, vp, cb = std::move(job.on_complete)](
                         SimTime end, const KernelExecStats& stats) {
                       if (cb) cb(end, &stats);
                       on_job_finished(vp);
                     });
      break;
  }
}

void Dispatcher::dispatch_group(std::vector<Job> group) {
  in_flight_ += static_cast<std::uint32_t>(group.size());
  jobs_dispatched_ += group.size();
  for (Job& j : group) {
    ++next_seq_[j.vp_id];
    ++vp_inflight_[j.vp_id];
    ++vp_group_inflight_[j.vp_id];
    // Chain the dispatcher's accounting after the job's own completion.
    auto original = std::move(j.on_complete);
    const std::uint32_t vp = j.vp_id;
    j.on_complete = [this, vp, original](SimTime end, const KernelExecStats* stats) {
      if (original) original(end, stats);
      SIGVP_ASSERT(vp_group_inflight_[vp] > 0, "group completion for an idle VP");
      --vp_group_inflight_[vp];
      on_job_finished(vp);
    };
  }
  // One host-side service charge for the whole merged group — the core of
  // the coalescing gain: N launches, one dispatch + one profiler arming.
  service_.submit(config_.dispatch_overhead_us,
                  [this, group = std::make_shared<std::vector<Job>>(std::move(group))](
                      SimTime) mutable {
                    coalescer_.execute(std::move(*group));
                    pump();
                  });
}

void Dispatcher::on_job_finished(std::uint32_t vp_id) {
  SIGVP_ASSERT(in_flight_ > 0, "completion without a job in flight");
  SIGVP_ASSERT(vp_inflight_[vp_id] > 0, "completion for an idle VP");
  --in_flight_;
  --vp_inflight_[vp_id];
  pump();
}

}  // namespace sigvp
