#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gpu/device.hpp"
#include "ipc/job.hpp"
#include "sim/event_queue.hpp"

namespace sigvp {

/// Kernel Coalescing (paper §3, Fig. 5/6): merges identical kernel requests
/// from different VPs into a single launch over one physically-contiguous
/// data set, then scatters the results back.
///
/// Mechanics on the device model:
///  1. allocate one arena per buffer argument (summed element counts);
///  2. gather each VP's input chunks into its arena slice (device-to-device
///     copies on the coalescer's service stream);
///  3. launch the kernel once with the arena base pointers, the summed
///     element count, and a grid covering all elements — the merged grid is
///     also better aligned to the device's wave size, which is the second
///     gain the paper reports (Eq. 9);
///  4. scatter each VP's output slice back to its own buffers and free the
///     arenas.
///
/// Functional launches execute the merged kernel for real, so coalescing is
/// validated end-to-end, not just timed.
class Coalescer {
 public:
  Coalescer(EventQueue& queue, GpuDevice& device, GpuDevice::StreamId service_stream)
      : queue_(queue), device_(device), stream_(service_stream) {}

  /// True when `jobs` (all kernel jobs with equal coalesce keys) can merge:
  /// at least two jobs, uniform exec mode, uniform buffer layout.
  static bool can_merge(const std::vector<Job>& jobs);

  /// Recovery hooks for fault-tolerant group execution (dispatcher-owned).
  /// With hooks installed the group runs in its fault-tolerant shape: the
  /// merged launch may be aborted by an injected transient failure, and the
  /// output scatters are per-member DMAs instead of one batched DMA, so a
  /// device reset mid-group kills only the members whose results had not
  /// yet landed (partial failure, not all-or-nothing).
  struct GroupFaultHooks {
    /// Fires at the abort's completion time when the merged launch was hit
    /// by an injected transient failure. No scatters were submitted and no
    /// member completion will fire: the group must be re-queued.
    GpuDevice::LaunchFailCallback on_abort;
    /// Reports the tracked op id of the aborted merged launch, so a device
    /// reset racing the abort can still recover the group.
    std::function<void(std::uint64_t op_id)> on_abort_op;
    /// Reports the tracked op id of member `index`'s scatter — the op whose
    /// completion carries the member's on_complete and whose reset kill
    /// must re-queue that member.
    std::function<void(std::size_t index, std::uint64_t op_id)> on_member_op;
  };

  /// Merges and executes the group. Each job's on_complete fires at the
  /// simulated time its scattered results are available, with the merged
  /// launch's stats. Returns the completion time of the whole group.
  /// `hooks` (optional) switches execution to the fault-tolerant shape.
  SimTime execute(std::vector<Job> jobs, const GroupFaultHooks* hooks = nullptr);

  std::uint64_t groups_executed() const { return groups_; }
  std::uint64_t jobs_merged() const { return jobs_merged_; }

 private:
  EventQueue& queue_;
  GpuDevice& device_;
  GpuDevice::StreamId stream_;
  std::uint64_t groups_ = 0;
  std::uint64_t jobs_merged_ = 0;
};

}  // namespace sigvp
