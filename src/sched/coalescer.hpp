#pragma once

#include <cstdint>
#include <vector>

#include "gpu/device.hpp"
#include "ipc/job.hpp"
#include "sim/event_queue.hpp"

namespace sigvp {

/// Kernel Coalescing (paper §3, Fig. 5/6): merges identical kernel requests
/// from different VPs into a single launch over one physically-contiguous
/// data set, then scatters the results back.
///
/// Mechanics on the device model:
///  1. allocate one arena per buffer argument (summed element counts);
///  2. gather each VP's input chunks into its arena slice (device-to-device
///     copies on the coalescer's service stream);
///  3. launch the kernel once with the arena base pointers, the summed
///     element count, and a grid covering all elements — the merged grid is
///     also better aligned to the device's wave size, which is the second
///     gain the paper reports (Eq. 9);
///  4. scatter each VP's output slice back to its own buffers and free the
///     arenas.
///
/// Functional launches execute the merged kernel for real, so coalescing is
/// validated end-to-end, not just timed.
class Coalescer {
 public:
  Coalescer(EventQueue& queue, GpuDevice& device, GpuDevice::StreamId service_stream)
      : queue_(queue), device_(device), stream_(service_stream) {}

  /// True when `jobs` (all kernel jobs with equal coalesce keys) can merge:
  /// at least two jobs, uniform exec mode, uniform buffer layout.
  static bool can_merge(const std::vector<Job>& jobs);

  /// Merges and executes the group. Each job's on_complete fires at the
  /// simulated time its scattered results are available, with the merged
  /// launch's stats. Returns the completion time of the whole group.
  SimTime execute(std::vector<Job> jobs);

  std::uint64_t groups_executed() const { return groups_; }
  std::uint64_t jobs_merged() const { return jobs_merged_; }

 private:
  EventQueue& queue_;
  GpuDevice& device_;
  GpuDevice::StreamId stream_;
  std::uint64_t groups_ = 0;
  std::uint64_t jobs_merged_ = 0;
};

}  // namespace sigvp
