#include "sched/coalescer.hpp"

#include <algorithm>
#include <bit>
#include <memory>

#include "fault/crash.hpp"
#include "interp/decoded.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp {

namespace {

/// True when arg `index` is relocated by the merge (a buffer pointer the
/// coalescer points at its arena, or the summed size argument). Every other
/// argument is a scalar the merged launch runs with ONCE — so members must
/// agree on it byte-exactly or the merge would silently run some members
/// with another VP's parameters.
bool arg_is_relocated(const cuda::CoalesceInfo& c, std::size_t index) {
  if (index == c.size_arg_index) return true;
  for (const auto& buf : c.buffers) {
    if (buf.arg_index == index) return true;
  }
  return false;
}

}  // namespace

bool Coalescer::can_merge(const std::vector<Job>& jobs) {
  if (jobs.size() < 2) return false;
  const auto& first = jobs.front().launch;
  if (!first.coalesce.eligible) return false;
  if (first.request.kernel == nullptr) return false;
  // Kernel identity is structural, not positional: VPs build their own
  // KernelIR instances, so the almost-identical regime compares structural
  // fingerprints when the pointers differ (pointer equality short-circuits
  // the hash for the common single-suite case).
  std::uint64_t first_fp = 0;
  bool first_fp_computed = false;
  for (const Job& j : jobs) {
    if (j.kind != JobKind::kKernel) return false;
    const auto& c = j.launch.coalesce;
    if (!c.eligible || c.key != first.coalesce.key) return false;
    if (c.buffers.size() != first.coalesce.buffers.size()) return false;
    if (c.block_x != first.coalesce.block_x) return false;
    if (j.launch.request.mode != first.request.mode) return false;
    if (j.launch.request.kernel == nullptr) return false;
    if (j.launch.request.kernel != first.request.kernel) {
      if (!first_fp_computed) {
        first_fp = interp_detail::kernel_fingerprint(*first.request.kernel);
        first_fp_computed = true;
      }
      if (interp_detail::kernel_fingerprint(*j.launch.request.kernel) != first_fp) {
        return false;
      }
    }
    for (std::size_t b = 0; b < c.buffers.size(); ++b) {
      if (c.buffers[b].arg_index != first.coalesce.buffers[b].arg_index) return false;
      if (c.buffers[b].bytes_per_elem != first.coalesce.buffers[b].bytes_per_elem) return false;
      if (c.buffers[b].is_output != first.coalesce.buffers[b].is_output) return false;
    }
    // Scalar arguments must match byte-exactly: the merged launch keeps the
    // prototype's scalars, so any divergence (per-VP parameter jitter) makes
    // the group semantically unmergeable.
    const auto& args = j.launch.request.args.values;
    const auto& proto_args = first.request.args.values;
    if (args.size() != proto_args.size()) return false;
    for (std::size_t a = 0; a < args.size(); ++a) {
      if (arg_is_relocated(c, a)) continue;
      if (args[a] != proto_args[a]) return false;
    }
  }
  return true;
}

SimTime Coalescer::execute(std::vector<Job> jobs, const GroupFaultHooks* hooks) {
  SIGVP_REQUIRE(can_merge(jobs), "coalescer invoked on a non-mergeable group");
  const cuda::CoalesceInfo& shape = jobs.front().launch.coalesce;
  const LaunchRequest& proto = jobs.front().launch.request;

  std::uint64_t total_elems = 0;
  for (const Job& j : jobs) total_elems += j.launch.coalesce.elems;
  SIGVP_REQUIRE(total_elems > 0, "coalesced group has no elements");

  // 1. One arena per buffer argument; gather inputs into arena slices.
  struct Arena {
    std::uint64_t base = 0;
    std::uint64_t bytes_per_elem = 0;
    bool is_output = false;
    std::uint32_t arg_index = 0;
  };
  std::vector<Arena> arenas;
  arenas.reserve(shape.buffers.size());
  for (const auto& buf : shape.buffers) {
    arenas.push_back(Arena{device_.malloc(total_elems * buf.bytes_per_elem),
                           buf.bytes_per_elem, buf.is_output, buf.arg_index});
  }

  // Each arena's gather is one batched DMA (descriptor list), not N copies:
  // this is what makes coalescing profitable for tiny per-VP chunks.
  for (const Arena& a : arenas) {
    if (a.is_output) continue;
    std::vector<GpuDevice::CopyDesc> descs;
    std::uint64_t offset_elems = 0;
    for (const Job& j : jobs) {
      const std::uint64_t chunk_elems = j.launch.coalesce.elems;
      descs.push_back({a.base + offset_elems * a.bytes_per_elem,
                       j.launch.request.args.values[a.arg_index],
                       chunk_elems * a.bytes_per_elem});
      offset_elems += chunk_elems;
    }
    device_.memcpy_d2d_batch(stream_, descs);
  }

  // Injected process death mid-group: gathers submitted, merged launch not
  // yet issued — the multi-VP transaction is half done.
  crash_point(CrashSite::kCoalescedGroup);

  // 2. Merged launch request: arena pointers, summed element count, grid
  //    covering all elements in one well-aligned launch.
  LaunchRequest merged = proto;
  for (const Arena& a : arenas) merged.args.values[a.arg_index] = a.base;
  merged.args.values[shape.size_arg_index] =
      std::bit_cast<std::uint64_t>(static_cast<std::int64_t>(total_elems));
  merged.dims.block_x = shape.block_x;
  merged.dims.block_y = 1;
  merged.dims.grid_y = 1;
  merged.dims.grid_x =
      static_cast<std::uint32_t>((total_elems + shape.block_x - 1) / shape.block_x);

  if (merged.mode == ExecMode::kAnalytic) {
    // Merge the analytic profiles: σ and traffic add; per-block λ vectors of
    // differently-sized launches do not concatenate, so carry σ directly.
    DynamicProfile sum;
    MemoryBehavior behavior;
    for (const Job& j : jobs) {
      const DynamicProfile& p = j.launch.request.analytic_profile;
      ClassCounts sigma = p.instr_counts;
      if (sigma.total() == 0 && !p.block_visits.empty()) {
        sigma = DynamicProfile::counts_from_visits(*j.launch.request.kernel, p.block_visits);
      }
      sum.instr_counts += sigma;
      sum.global_load_bytes += p.global_load_bytes;
      sum.global_store_bytes += p.global_store_bytes;
      sum.sfu_instrs += p.sfu_instrs;
      sum.sqrt_instrs += p.sqrt_instrs;
      behavior.footprint_bytes += j.launch.request.mem_behavior.footprint_bytes;
      behavior.accesses += j.launch.request.mem_behavior.accesses;
      behavior.reuse_fraction = j.launch.request.mem_behavior.reuse_fraction;
      behavior.coalescing = j.launch.request.mem_behavior.coalescing;
    }
    merged.analytic_profile = std::move(sum);
    merged.mem_behavior = behavior;
  }

  SIGVP_DEBUG("coalescer") << "merged " << jobs.size() << " x " << proto.kernel->name
                           << " into one launch of " << total_elems << " elems";

  // 3. Launch once. The stats box is filled at kernel completion, which in
  //    simulated time precedes every scatter completion scheduled below.
  //    With recovery hooks installed the launch may be aborted by an
  //    injected transient failure (on_abort fires, no scatters happen).
  auto stats_box = std::make_shared<KernelExecStats>();
  GpuDevice::LaunchFailCallback on_fault;
  if (hooks != nullptr && hooks->on_abort) on_fault = hooks->on_abort;
  device_.launch(stream_, merged,
                 [stats_box](SimTime, const KernelExecStats& s) { *stats_box = s; },
                 std::move(on_fault));
  if (hooks != nullptr && device_.last_launch_faulted()) {
    if (hooks->on_abort_op) hooks->on_abort_op(device_.last_op_id());
    const SimTime abort_end = device_.stream_idle_at(stream_);
    for (const Arena& a : arenas) device_.free(a.base);
    return abort_end;
  }

  // 4. Scatter outputs back; every job's results are available when its
  //    scatter lands. Without hooks the scatter is one batched DMA per
  //    arena (the cheap shape); with hooks each member gets its own DMA so
  //    a reset kills members individually.
  if (hooks == nullptr) {
    for (const Arena& a : arenas) {
      if (!a.is_output) continue;
      std::vector<GpuDevice::CopyDesc> descs;
      std::uint64_t offset_elems = 0;
      for (const Job& j : jobs) {
        const std::uint64_t chunk_elems = j.launch.coalesce.elems;
        descs.push_back({j.launch.request.args.values[a.arg_index],
                         a.base + offset_elems * a.bytes_per_elem,
                         chunk_elems * a.bytes_per_elem});
        offset_elems += chunk_elems;
      }
      device_.memcpy_d2d_batch(stream_, descs);
    }
  } else {
    std::uint64_t offset_elems = 0;
    for (std::size_t ji = 0; ji < jobs.size(); ++ji) {
      const Job& j = jobs[ji];
      const std::uint64_t chunk_elems = j.launch.coalesce.elems;
      std::vector<GpuDevice::CopyDesc> descs;
      for (const Arena& a : arenas) {
        if (!a.is_output) continue;
        descs.push_back({j.launch.request.args.values[a.arg_index],
                         a.base + offset_elems * a.bytes_per_elem,
                         chunk_elems * a.bytes_per_elem});
      }
      // The member's completion rides its own scatter op (an empty DMA when
      // the kernel has no output buffers), so a reset that kills the op
      // also suppresses the completion — the dispatcher re-queues exactly
      // the members whose results never landed.
      device_.memcpy_d2d_batch(
          stream_, descs,
          [cb = j.on_complete, stats_box](SimTime end) {
            if (cb) cb(end, stats_box.get());
          });
      if (hooks->on_member_op) hooks->on_member_op(ji, device_.last_op_id());
      offset_elems += chunk_elems;
    }
  }

  const SimTime group_end = device_.stream_idle_at(stream_);
  std::vector<SimTime> job_done(jobs.size(), group_end);

  for (const Arena& a : arenas) device_.free(a.base);

  ++groups_;
  jobs_merged_ += jobs.size();

  if (hooks == nullptr) {
    for (std::size_t ji = 0; ji < jobs.size(); ++ji) {
      if (!jobs[ji].on_complete) continue;
      queue_.schedule_at(job_done[ji],
                         [cb = jobs[ji].on_complete, stats_box, when = job_done[ji]] {
                           cb(when, stats_box.get());
                         });
    }
  }
  return group_end;
}

}  // namespace sigvp
