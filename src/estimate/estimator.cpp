#include "estimate/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/time.hpp"
#include "util/check.hpp"

namespace sigvp {

ProfileBasedEstimator::ProfileBasedEstimator(GpuArch host, GpuArch target)
    : host_(std::move(host)), target_(std::move(target)) {}

ClassCounts ProfileBasedEstimator::compile_sigma(const KernelIR& kernel,
                                                 const std::vector<std::uint64_t>& lambda,
                                                 const GpuArch& arch) {
  SIGVP_REQUIRE(lambda.size() == kernel.blocks.size(),
                "λ vector does not match the kernel's block count");
  ClassCounts sigma;
  for (std::size_t b = 0; b < kernel.blocks.size(); ++b) {
    if (lambda[b] == 0) continue;
    const ClassCounts mu = kernel.blocks[b].static_counts();
    for (InstrClass c : kAllInstrClasses) {
      // Per-block rounding, like a compiler emitting whole instructions
      // (paper Fig. 8: µ grows 32 → 43 when recompiled for the target).
      const std::uint64_t mu_arch = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(mu[c]) * arch.compile_expansion[c]));
      sigma[c] += lambda[b] * mu_arch;
    }
  }
  return sigma;
}

double ProfileBasedEstimator::upsilon_data(const GpuArch& arch, const LaunchDims& dims,
                                           const MemoryBehavior& behavior) {
  const ProbCacheModel prob(arch.l2);
  return KernelCostModel::exposed_data_stalls(arch, dims, prob.expected_misses(behavior));
}

TimingEstimates ProfileBasedEstimator::estimate_time(const EstimationInput& input) const {
  SIGVP_REQUIRE(input.kernel != nullptr, "estimation input without a kernel");
  SIGVP_REQUIRE(input.host_stats.total_cycles > 0.0,
                "estimation input without a measured host execution");

  TimingEstimates out;
  out.sigma_target = compile_sigma(*input.kernel, input.lambda, target_);
  const ClassCounts sigma_host = compile_sigma(*input.kernel, input.lambda, host_);

  // --- Eq. 2: C = σ / (IPC_H × IPC_{H→T}) = σ / IPC_T ------------------------
  out.c_cycles = static_cast<double>(out.sigma_target.total()) / target_.max_ipc();

  // --- Eq. 3: C^P_{K,A} = Σ_i σ{Ki,A} × τ{i,A} -------------------------------
  // C^P (Eq. 3): ideal cycles from the per-class mix and the architecture's
  // per-class issue rates — computed with the same pipe-parallel issue
  // formula the device model itself uses — plus the deterministic per-block
  // dispatch cost (known from the launch geometry, not a stall).
  auto cp = [&](const ClassCounts& sigma, const GpuArch& arch) {
    double cycles = KernelCostModel::ideal_issue_cycles(arch, input.dims, sigma);
    const std::uint64_t serial_blocks =
        (input.dims.num_blocks() + arch.num_sms - 1) / arch.num_sms;
    cycles += static_cast<double>(serial_blocks) * arch.block_overhead_cycles;
    return cycles;
  };
  const double cp_target = cp(out.sigma_target, target_);
  const double cp_host = cp(sigma_host, host_);

  // --- Eq. 4: C' = C^P_{K,T} + C_{K,H} − C^P_{K,H} ---------------------------
  const double c_host = input.host_stats.total_cycles;
  out.c1_cycles = std::max(cp_target, cp_target + c_host - cp_host);

  // --- Eq. 5: C'' = C' − Υ^data_{K,H} + Υ^data_{K,T} --------------------------
  const double ups_host = upsilon_data(host_, input.dims, input.behavior);
  const double ups_target = upsilon_data(target_, input.dims, input.behavior);
  out.c2_cycles = std::max(cp_target, out.c1_cycles - ups_host + ups_target);

  out.et_c_us = us_from_cycles(out.c_cycles, target_.clock_ghz);
  out.et_c1_us = us_from_cycles(out.c1_cycles, target_.clock_ghz);
  out.et_c2_us = us_from_cycles(out.c2_cycles, target_.clock_ghz);
  return out;
}

double ProfileBasedEstimator::estimate_power_w(const EstimationInput& input,
                                               const TimingEstimates& timing) const {
  SIGVP_REQUIRE(timing.et_c2_us > 0.0, "power estimation needs a timing estimate");
  (void)input;
  // Eq. 6: P = P_static + Σ_i (σ_i / ET) × RP_i, with the per-instruction
  // runtime-power component expressed as energy per instruction.
  double dynamic_w = 0.0;
  const double et_s = s_from_us(timing.et_c2_us);
  for (InstrClass c : kAllInstrClasses) {
    dynamic_w +=
        static_cast<double>(timing.sigma_target[c]) * target_.instr_energy_nj[c] * 1e-9 / et_s;
  }
  return target_.static_power_w + dynamic_w;
}

}  // namespace sigvp
