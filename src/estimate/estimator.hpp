#pragma once

#include <cstdint>
#include <vector>

#include "gpu/arch.hpp"
#include "gpu/cost_model.hpp"
#include "gpu/prob_cache.hpp"
#include "interp/launch.hpp"
#include "ir/program.hpp"

namespace sigvp {

/// Everything the estimator consumes about one kernel execution on the host
/// GPU (paper Fig. 7, steps 1–2): the kernel, its launch geometry, the
/// instrumented per-block iteration counts λ, the host profiler's report,
/// and the locality summary for the probabilistic cache model.
struct EstimationInput {
  const KernelIR* kernel = nullptr;
  LaunchDims dims;
  std::vector<std::uint64_t> lambda;  // per-block visits from instrumentation
  KernelExecStats host_stats;         // measured on the host GPU
  MemoryBehavior behavior;
};

/// The three increasingly refined cycle estimates of the paper's §4 and
/// their derived execution times.
struct TimingEstimates {
  ClassCounts sigma_target;   // σ{K,T} from Eq. 1
  double c_cycles = 0.0;      // Eq. 2: IPC-ratio model
  double c1_cycles = 0.0;     // Eq. 4: per-class latency model (C')
  double c2_cycles = 0.0;     // Eq. 5: + probabilistic cache correction (C'')
  double et_c_us = 0.0;
  double et_c1_us = 0.0;
  double et_c2_us = 0.0;
};

/// Profile-Based Execution Analysis (paper §4): combine one profiled
/// execution on the host GPU with per-ISA compilation information and
/// analytic models to predict execution time and power on the target GPU,
/// without ever executing there.
class ProfileBasedEstimator {
 public:
  ProfileBasedEstimator(GpuArch host, GpuArch target);

  /// Eq. 1: σ{K,A} = Σ_i Σ_b λ_b · µ{b_i,A}, with µ{b,A} the per-block
  /// static counts of the kernel compiled for architecture A (per-block
  /// rounding, like a real compiler's code expansion).
  static ClassCounts compile_sigma(const KernelIR& kernel,
                                   const std::vector<std::uint64_t>& lambda,
                                   const GpuArch& arch);

  /// Υ^[data]{K,A}: expected exposed data-dependency stall cycles on A,
  /// from the probabilistic cache model (Eq. 5's correction terms).
  static double upsilon_data(const GpuArch& arch, const LaunchDims& dims,
                             const MemoryBehavior& behavior);

  /// Eq. 2–5.
  TimingEstimates estimate_time(const EstimationInput& input) const;

  /// Eq. 6: P{K,T} from the C''-based execution time. Returns watts.
  double estimate_power_w(const EstimationInput& input,
                          const TimingEstimates& timing) const;

  const GpuArch& host() const { return host_; }
  const GpuArch& target() const { return target_; }

 private:
  GpuArch host_;
  GpuArch target_;
};

}  // namespace sigvp
