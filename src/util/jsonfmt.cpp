#include "util/jsonfmt.hpp"

#include <cstdio>

namespace sigvp::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (v != v || v == 1.0 / 0.0 || v == -1.0 / 0.0) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace sigvp::util
