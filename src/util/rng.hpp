#pragma once

#include <cstdint>

namespace sigvp {

/// Deterministic xorshift128+ generator.
///
/// Workload input generation and the probabilistic cache model both need
/// reproducible randomness that does not depend on the standard library's
/// unspecified distributions; this generator is seed-stable across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to avoid correlated low-entropy states.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  std::uint64_t next_u64() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

 private:
  std::uint64_t s0_ = 0;
  std::uint64_t s1_ = 0;
};

}  // namespace sigvp
