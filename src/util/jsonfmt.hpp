#pragma once

#include <string>

namespace sigvp::util {

/// Low-level JSON formatting primitives shared by every JSON producer in the
/// repository (the sweep serializer in src/run, the trace/metrics subsystem
/// in src/trace, and the non-sweep benches), so escaping and number
/// formatting have exactly one implementation.

/// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
std::string json_escape(const std::string& s);

/// Shortest round-trippable decimal representation; NaN/Inf encode as null
/// (JSON has no NaN/Inf, and no simulated quantity should produce them).
std::string json_number(double v);

}  // namespace sigvp::util
