#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace sigvp {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SIGVP_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  SIGVP_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << "\n";
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_ms(double milliseconds) { return fmt_fixed(milliseconds, 2); }

std::string fmt_ratio(double ratio) { return fmt_fixed(ratio, 2); }

std::string fmt_int(long long value) { return std::to_string(value); }

}  // namespace sigvp
