#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sigvp {

/// Error thrown on violated preconditions / invariants inside the framework.
///
/// The simulator is a library, so contract violations surface as exceptions
/// rather than aborts; tests assert on them and applications may catch them.
class ContractError : public std::runtime_error {
 public:
  explicit ContractError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_contract_error(const char* kind, const char* expr,
                                              const char* file, int line,
                                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace sigvp

/// Precondition check: throws sigvp::ContractError when `expr` is false.
#define SIGVP_REQUIRE(expr, msg)                                                \
  do {                                                                          \
    if (!(expr)) {                                                              \
      ::sigvp::detail::raise_contract_error("precondition", #expr, __FILE__,    \
                                            __LINE__, (msg));                   \
    }                                                                           \
  } while (0)

/// Internal invariant check: same mechanics, different label in the message.
#define SIGVP_ASSERT(expr, msg)                                                 \
  do {                                                                          \
    if (!(expr)) {                                                              \
      ::sigvp::detail::raise_contract_error("invariant", #expr, __FILE__,       \
                                            __LINE__, (msg));                   \
    }                                                                           \
  } while (0)
