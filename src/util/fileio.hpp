#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace sigvp::util {

/// Crash-safe file publication: writes `contents` to `<path>.tmp.<pid>`,
/// fsyncs it, renames it over `path`, and fsyncs the containing directory,
/// so readers only ever observe either the previous file or the complete new
/// one — never a torn prefix. Returns false (leaving any previous `path`
/// intact and removing the temp file) on any failure.
///
/// When `path` already exists and is not a regular file (e.g. `/dev/full`,
/// `/dev/null`, a FIFO used by a test harness), the bytes are written
/// directly instead: renaming over a device node would *replace the node*,
/// which is never what a caller targeting a device means.
///
/// `before_rename`, when set, runs after the temp file is durable but before
/// the rename — the mid-snapshot-write crash-injection window: a process
/// killed there leaves only a stale temp file, and the previously published
/// `path` still wins.
bool write_file_atomic(const std::string& path, std::string_view contents,
                       const std::function<void()>& before_rename = {});

}  // namespace sigvp::util
