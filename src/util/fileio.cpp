#include "util/fileio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace sigvp::util {

namespace {

bool write_all(int fd, std::string_view contents) {
  const char* p = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Direct (non-atomic) write for non-regular destinations: preserves the
/// node and its error semantics (a full device fails the write itself).
bool write_direct(const std::string& path, std::string_view contents) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_TRUNC);
  if (fd < 0) return false;
  const bool ok = write_all(fd, contents);
  return (::close(fd) == 0) && ok;
}

bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view contents,
                       const std::function<void()>& before_rename) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 && !S_ISREG(st.st_mode)) {
    return write_direct(path, contents);
  }

  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = write_all(fd, contents);
  ok = (::fsync(fd) == 0) && ok;
  ok = (::close(fd) == 0) && ok;
  if (ok && before_rename) before_rename();
  if (ok) ok = ::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Durability of the rename itself; the publish already happened, so a
  // failure here (exotic filesystems) does not un-publish the file.
  fsync_parent_dir(path);
  return true;
}

}  // namespace sigvp::util
