#include "util/log.hpp"

namespace sigvp {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component, const std::string& message) {
  if (!enabled(level)) return;
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  os << "[" << level_name(level) << "] [" << component << "] " << message << "\n";
}

}  // namespace sigvp
