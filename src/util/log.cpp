#include "util/log.hpp"

namespace sigvp {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component, const std::string& message) {
  if (!enabled(level)) return;
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  // Assemble off-lock, emit the finished line under the mutex so concurrent
  // sweep workers never interleave fragments of different lines.
  std::ostringstream line;
  line << "[" << level_name(level) << "] [" << component << "] " << message << "\n";
  std::lock_guard<std::mutex> lock(write_mutex_);
  os << line.str();
}

}  // namespace sigvp
