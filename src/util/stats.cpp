#include "util/stats.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sigvp {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_abs_pct_error(const std::vector<double>& observed,
                          const std::vector<double>& estimates) {
  SIGVP_REQUIRE(observed.size() == estimates.size(), "series must have equal length");
  SIGVP_REQUIRE(!observed.empty(), "series must be non-empty");
  double total = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    SIGVP_REQUIRE(observed[i] != 0.0, "observed values must be non-zero");
    total += std::abs(estimates[i] - observed[i]) / std::abs(observed[i]);
  }
  return total / static_cast<double>(observed.size());
}

}  // namespace sigvp
