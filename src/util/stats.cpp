#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sigvp {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_abs_pct_error(const std::vector<double>& observed,
                          const std::vector<double>& estimates) {
  SIGVP_REQUIRE(observed.size() == estimates.size(), "series must have equal length");
  SIGVP_REQUIRE(!observed.empty(), "series must be non-empty");
  double total = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    SIGVP_REQUIRE(observed[i] != 0.0, "observed values must be non-zero");
    total += std::abs(estimates[i] - observed[i]) / std::abs(observed[i]);
  }
  return total / static_cast<double>(observed.size());
}

double percentile(std::vector<double> values, double p) {
  SIGVP_REQUIRE(!values.empty(), "percentile of an empty sample");
  SIGVP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile rank must be in [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

SampleSummary summarize(const std::vector<double>& values) {
  SIGVP_REQUIRE(!values.empty(), "summary of an empty sample");
  RunningStats rs;
  for (double v : values) rs.add(v);
  SampleSummary s;
  s.count = rs.count();
  s.min = rs.min();
  s.mean = rs.mean();
  s.p50 = percentile(values, 50.0);
  s.p95 = percentile(values, 95.0);
  s.max = rs.max();
  return s;
}

}  // namespace sigvp
