#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sigvp {

/// Console table printer used by the bench harnesses to reproduce the
/// paper's tables and figure series as aligned text plus optional CSV.
///
/// Usage:
///   TablePrinter t({"Language", "Executed by", "Time (ms)", "Ratio"});
///   t.add_row({"CUDA", "GPU", fmt_ms(170.79), "1.00"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;
  /// Renders as CSV (for plotting the figures externally).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision numeric formatting helpers for table cells.
std::string fmt_fixed(double value, int precision);
std::string fmt_ms(double milliseconds);
std::string fmt_ratio(double ratio);
std::string fmt_int(long long value);

}  // namespace sigvp
