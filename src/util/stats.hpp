#pragma once

#include <cstddef>
#include <vector>

namespace sigvp {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean absolute percentage error of `estimates` against `observed`;
/// used to score the timing/power estimation models (paper §5).
double mean_abs_pct_error(const std::vector<double>& observed,
                          const std::vector<double>& estimates);

/// p-th percentile (p in [0, 100]) of `values` by linear interpolation
/// between closest ranks; throws on an empty input.
double percentile(std::vector<double> values, double p);

/// Five-number summary of a sample — the aggregate the sweep runner reports
/// per job group (min/mean/p50/p95/max of the scenario makespans).
struct SampleSummary {
  std::size_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

SampleSummary summarize(const std::vector<double>& values);

}  // namespace sigvp
