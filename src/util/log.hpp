#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace sigvp {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide logging configuration. Benches set kWarn to keep tables clean;
/// tests may raise verbosity to trace scheduler decisions.
///
/// Thread-safe: the sweep runner executes scenarios on host worker threads
/// that all log through this singleton, so the level is atomic and lines are
/// written whole under a mutex (no interleaved fragments).
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const {
    const LogLevel current = this->level();
    return level >= current && current != LogLevel::kOff;
  }

  void write(LogLevel level, const std::string& component, const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex write_mutex_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::instance().write(level_, component_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace sigvp

#define SIGVP_LOG(level, component)                          \
  if (!::sigvp::Logger::instance().enabled(level)) {         \
  } else                                                     \
    ::sigvp::detail::LogLine(level, component)

#define SIGVP_TRACE(component) SIGVP_LOG(::sigvp::LogLevel::kTrace, component)
#define SIGVP_DEBUG(component) SIGVP_LOG(::sigvp::LogLevel::kDebug, component)
#define SIGVP_INFO(component) SIGVP_LOG(::sigvp::LogLevel::kInfo, component)
#define SIGVP_WARN(component) SIGVP_LOG(::sigvp::LogLevel::kWarn, component)
#define SIGVP_ERROR(component) SIGVP_LOG(::sigvp::LogLevel::kError, component)
