#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace sigvp {

namespace snapshot {
class Writer;
}

/// Deterministic discrete-event queue.
///
/// Events scheduled for the same timestamp fire in insertion order (a strict
/// FIFO tie-break), which keeps every simulation in this repository fully
/// reproducible — the re-scheduler's decisions depend on queue order.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t`; `t` must not be in the past.
  void schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` at `now() + dt` with `dt >= 0`.
  void schedule_after(SimTime dt, Callback cb);

  /// Pops and runs the earliest event. Returns false when the queue is empty.
  bool step();

  /// Runs until no events remain.
  void run();

  /// Runs events with timestamp <= `t`, then advances the clock to `t`
  /// (even if idle) so follow-up scheduling is relative to `t`.
  void run_until(SimTime t);

  std::size_t pending() const { return heap_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Serializes the sim-domain clock and queue counters (clock, sequence
  /// counter, processed count, pending count) into a fleet-capture digest.
  /// The closures themselves are deliberately NOT serialized — restore works
  /// by deterministic re-execution, and these counters are the part of the
  /// queue a replayed run must reproduce exactly (DESIGN.md §14).
  void capture_state(snapshot::Writer& w) const;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace sigvp
