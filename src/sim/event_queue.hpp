#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace sigvp {

namespace snapshot {
class Writer;
}

/// Deterministic discrete-event queue — the first-class event core every
/// simulation domain in this repository advances on.
///
/// Events scheduled for the same timestamp fire in insertion order (a strict
/// FIFO tie-break via a per-queue sequence number), which keeps every
/// simulation fully reproducible — the re-scheduler's decisions depend on
/// queue order, and the sharded fleet executor merges cross-domain messages
/// on exactly this (time, seq) total order.
///
/// The heap is hand-rolled over a contiguous vector (std::push_heap /
/// std::pop_heap with the same comparator std::priority_queue would use), so
/// fleet construction can `reserve()` the expected event count up front and
/// the executor can peek `next_event_time()` to compute synchronization
/// horizons without popping.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t`; `t` must not be in the past.
  void schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` at `now() + dt` with `dt >= 0`.
  void schedule_after(SimTime dt, Callback cb);

  /// Pops and runs the earliest event. Returns false when the queue is empty.
  bool step();

  /// Runs until no events remain.
  void run();

  /// Runs events with timestamp <= `t`, then advances the clock to `t`
  /// (even if idle) so follow-up scheduling is relative to `t`. This is the
  /// primitive the sharded fleet executor uses to advance each domain to a
  /// conservative synchronization horizon.
  void run_until(SimTime t);

  /// Pre-sizes the heap for `n` pending events so bulk insertion at fleet
  /// construction is O(n log n) heap work with no reallocation churn.
  void reserve(std::size_t n) { heap_.reserve(n); }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Deterministic size-based estimate of the queue's resident host memory
  /// (heap capacity, not just size — capacity is what the allocator holds).
  std::uint64_t resident_bytes() const {
    return sizeof(EventQueue) + heap_.capacity() * sizeof(Event);
  }

  /// Timestamp of the earliest pending event; the queue must not be empty.
  SimTime next_event_time() const;

  std::uint64_t events_processed() const { return processed_; }

  /// Serializes the sim-domain clock and queue counters (clock, sequence
  /// counter, processed count, pending count) into a fleet-capture digest.
  /// The closures themselves are deliberately NOT serialized — restore works
  /// by deterministic re-execution, and these counters are the part of the
  /// queue a replayed run must reproduce exactly (DESIGN.md §14).
  void capture_state(snapshot::Writer& w) const;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;  // binary heap, earliest event at front
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace sigvp
