#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp {

Engine::Engine(EventQueue& queue, std::string name) : queue_(queue), name_(std::move(name)) {}

void Engine::submit(SimTime duration, std::function<void(SimTime)> on_done) {
  SIGVP_REQUIRE(duration >= 0.0, "job duration must be non-negative");
  const SimTime start = std::max(queue_.now(), free_at_);
  const SimTime end = start + duration;
  free_at_ = end;
  busy_time_ += duration;
  ++jobs_submitted_;
  SIGVP_TRACE("engine") << name_ << " job start=" << start << "us end=" << end << "us";
  if (on_done) {
    queue_.schedule_at(end, [end, cb = std::move(on_done)]() { cb(end); });
  }
}

double Engine::utilization(SimTime horizon) const {
  if (horizon <= 0.0) return 0.0;
  return std::min(1.0, busy_time_ / horizon);
}

}  // namespace sigvp
