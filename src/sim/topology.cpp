#include "sim/topology.hpp"

#include <cctype>
#include <cstdlib>

#include "util/check.hpp"

namespace sigvp {

FleetTopology FleetTopology::flat(std::uint32_t domains, SimTime edge_latency_us) {
  SIGVP_REQUIRE(domains >= 2, "a fleet topology needs at least two domains");
  SIGVP_REQUIRE(edge_latency_us > 0.0, "fabric edge latency must be positive");
  FleetTopology t;
  t.to_root_us_.assign(domains, edge_latency_us);
  t.hops_.assign(domains, 1);
  t.to_root_us_[0] = 0.0;
  t.hops_[0] = 0;
  t.finalize();
  return t;
}

namespace {

/// Recursive-descent parser for the newick-style spec. Each item/group call
/// returns the domain ids of its subtree; edge latencies accumulate
/// bottom-up, so a switch's uplink latency (written after its ')') is added
/// to every domain beneath it exactly once.
struct Parser {
  const std::string& spec;
  std::size_t pos = 0;
  SimTime default_edge_us;
  std::vector<SimTime>& to_root;
  std::vector<std::uint32_t>& hops;
  std::vector<char>& seen;

  char peek() const { return pos < spec.size() ? spec[pos] : '\0'; }

  void expect(char c) {
    SIGVP_REQUIRE(peek() == c, "fleet topology spec: expected '" + std::string(1, c) +
                                   "' at offset " + std::to_string(pos) + " in \"" + spec +
                                   "\"");
    ++pos;
  }

  /// Optional ":latency" suffix; returns the default when absent.
  SimTime edge_latency() {
    if (peek() != ':') return default_edge_us;
    ++pos;
    const char* start = spec.c_str() + pos;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    SIGVP_REQUIRE(end != start, "fleet topology spec: malformed latency at offset " +
                                    std::to_string(pos) + " in \"" + spec + "\"");
    SIGVP_REQUIRE(v > 0.0, "fleet topology spec: edge latency must be positive in \"" +
                               spec + "\"");
    pos += static_cast<std::size_t>(end - start);
    return v;
  }

  /// domain-id [':' latency] | group — returns the subtree's domain ids,
  /// each with the latency/hops of its path up to (and including) this
  /// item's uplink edge.
  std::vector<std::uint32_t> item() {
    if (peek() == '(') return group();
    SIGVP_REQUIRE(std::isdigit(static_cast<unsigned char>(peek())),
                  "fleet topology spec: expected a domain id or '(' at offset " +
                      std::to_string(pos) + " in \"" + spec + "\"");
    std::uint64_t id = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      id = id * 10 + static_cast<std::uint64_t>(peek() - '0');
      ++pos;
    }
    const SimTime edge = edge_latency();
    SIGVP_REQUIRE(id >= 1 && id < to_root.size(),
                  "fleet topology spec: domain id " + std::to_string(id) +
                      " out of range (domain 0 is the implicit root) in \"" + spec + "\"");
    SIGVP_REQUIRE(!seen[id], "fleet topology spec: duplicate domain id " +
                                 std::to_string(id) + " in \"" + spec + "\"");
    seen[id] = 1;
    to_root[id] = edge;
    hops[id] = 1;
    return {static_cast<std::uint32_t>(id)};
  }

  /// '(' item (',' item)* ')' [':' latency] — a fabric switch; the latency
  /// after ')' is the switch's uplink edge toward the root.
  std::vector<std::uint32_t> group() {
    expect('(');
    std::vector<std::uint32_t> ids = item();
    while (peek() == ',') {
      ++pos;
      std::vector<std::uint32_t> more = item();
      ids.insert(ids.end(), more.begin(), more.end());
    }
    expect(')');
    const SimTime uplink = edge_latency();
    for (std::uint32_t id : ids) {
      to_root[id] += uplink;
      hops[id] += 1;
    }
    return ids;
  }
};

}  // namespace

FleetTopology FleetTopology::parse(const std::string& spec, std::uint32_t domains,
                                   SimTime default_edge_latency_us) {
  if (spec.empty() || spec == "flat") return flat(domains, default_edge_latency_us);
  SIGVP_REQUIRE(domains >= 2, "a fleet topology needs at least two domains");
  SIGVP_REQUIRE(default_edge_latency_us > 0.0, "fabric edge latency must be positive");

  FleetTopology t;
  t.to_root_us_.assign(domains, 0.0);
  t.hops_.assign(domains, 0);
  std::vector<char> seen(domains, 0);

  Parser p{spec, 0, default_edge_latency_us, t.to_root_us_, t.hops_, seen};
  // The outermost parens are the root switch itself (where domain 0 sits),
  // so its direct members get exactly their own edge latency — no uplink.
  p.expect('(');
  p.item();
  while (p.peek() == ',') {
    ++p.pos;
    p.item();
  }
  p.expect(')');
  SIGVP_REQUIRE(p.pos == spec.size(),
                "fleet topology spec: trailing characters after ')' in \"" + spec + "\"");

  for (std::uint32_t d = 1; d < domains; ++d) {
    SIGVP_REQUIRE(seen[d] != 0, "fleet topology spec: domain id " + std::to_string(d) +
                                    " missing from \"" + spec + "\"");
  }
  t.finalize();
  return t;
}

void FleetTopology::finalize() {
  lookahead_us_ = 0.0;
  for (std::uint32_t d = 1; d < domains(); ++d) {
    SIGVP_REQUIRE(to_root_us_[d] > 0.0, "fabric path latency must be positive");
    if (lookahead_us_ == 0.0 || to_root_us_[d] < lookahead_us_) {
      lookahead_us_ = to_root_us_[d];
    }
  }
  SIGVP_REQUIRE(lookahead_us_ > 0.0, "fleet topology lookahead must be positive");
}

}  // namespace sigvp
