#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "snapshot/serial.hpp"
#include "util/check.hpp"

namespace sigvp {

void EventQueue::schedule_at(SimTime t, Callback cb) {
  SIGVP_REQUIRE(t >= now_, "cannot schedule an event in the simulated past");
  SIGVP_REQUIRE(static_cast<bool>(cb), "event callback must be callable");
  heap_.push_back(Event{t, next_seq_++, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule_after(SimTime dt, Callback cb) {
  SIGVP_REQUIRE(dt >= 0.0, "event delay must be non-negative");
  schedule_at(now_ + dt, std::move(cb));
}

SimTime EventQueue::next_event_time() const {
  SIGVP_REQUIRE(!heap_.empty(), "next_event_time() on an empty event queue");
  return heap_.front().time;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

void EventQueue::run_until(SimTime t) {
  SIGVP_REQUIRE(t >= now_, "cannot run the queue backwards");
  while (!heap_.empty() && heap_.front().time <= t) step();
  now_ = t;
}

void EventQueue::capture_state(snapshot::Writer& w) const {
  w.f64(now_);
  w.u64(next_seq_);
  w.u64(processed_);
  w.u64(heap_.size());
}

}  // namespace sigvp
