#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sigvp {

/// How the scheduler/dispatcher domains of a sharded fleet are stitched
/// together by the host-side fabric.
///
/// The model is a tree of fabric switches with domain 0 — the frontend that
/// aggregates fleet completion — sitting at the root. Every other domain
/// hangs off the tree via edges with a per-edge latency; cross-domain
/// traffic (completion reports up, acknowledgements down) pays the summed
/// latency of the edges on its path.
///
/// Descriptions use a newick-style grammar (after CXLMemSim's multi-host
/// `-o "(1,(2,3))"` trees):
///
///   spec    := '(' item (',' item)* ')'
///   item    := domain-id [':' latency_us] | spec [':' latency_us]
///
/// Nested parentheses introduce an intermediate switch one hop further from
/// the root; `:latency` overrides the default edge latency of the edge
/// connecting that item to its parent switch. Domain ids 1..D-1 must each
/// appear exactly once (domain 0 is implicitly the root and never listed).
/// The empty spec means a flat star: every domain one hop from the root.
class FleetTopology {
 public:
  /// Flat star: domains 1..D-1 each attached to the root by one edge of
  /// `edge_latency_us`.
  static FleetTopology flat(std::uint32_t domains, SimTime edge_latency_us);

  /// Parses `spec` (see grammar above; empty = flat). Throws ContractError
  /// on malformed input, unknown/duplicate/missing domain ids, or a
  /// non-positive latency.
  static FleetTopology parse(const std::string& spec, std::uint32_t domains,
                             SimTime default_edge_latency_us);

  std::uint32_t domains() const { return static_cast<std::uint32_t>(to_root_us_.size()); }

  /// Summed edge latency from `domain` to the root (0 for domain 0).
  SimTime to_root_us(std::uint32_t domain) const { return to_root_us_.at(domain); }

  /// Number of fabric edges between `domain` and the root (0 for domain 0).
  std::uint32_t hops_to_root(std::uint32_t domain) const { return hops_.at(domain); }

  /// Minimum cross-domain flight time: the conservative lookahead of the
  /// sharded executor. Any message sent by an event executing at time E
  /// arrives no earlier than E + lookahead, so every domain may safely
  /// advance to (earliest pending event anywhere) + lookahead between
  /// synchronization barriers. Strictly positive by construction.
  SimTime lookahead_us() const { return lookahead_us_; }

 private:
  FleetTopology() = default;
  void finalize();

  std::vector<SimTime> to_root_us_;
  std::vector<std::uint32_t> hops_;
  SimTime lookahead_us_ = 0.0;
};

}  // namespace sigvp
