#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace sigvp {

/// A non-preemptive FIFO execution resource on the discrete-event queue.
///
/// The GPU device model instantiates two of these — the Copy Engine and the
/// Compute Engine — which is exactly the dual-engine structure the paper's
/// Kernel Interleaving optimization exploits (Fig. 3): jobs on different
/// engines overlap in time, jobs on the same engine serialize.
class Engine {
 public:
  Engine(EventQueue& queue, std::string name);

  /// Enqueues a job of the given duration. The job starts when the engine is
  /// free and all previously submitted jobs finished; `on_done` fires at the
  /// job's completion time with that timestamp as argument.
  void submit(SimTime duration, std::function<void(SimTime)> on_done);

  /// Earliest time a newly submitted job could start.
  SimTime free_at() const { return free_at_; }

  /// Cumulative busy time across all completed-or-scheduled jobs.
  SimTime busy_time() const { return busy_time_; }

  std::uint64_t jobs_submitted() const { return jobs_submitted_; }
  const std::string& name() const { return name_; }

  /// Fraction of [0, horizon] this engine was busy; 0 for a zero horizon.
  double utilization(SimTime horizon) const;

 private:
  EventQueue& queue_;
  std::string name_;
  SimTime free_at_ = 0.0;
  SimTime busy_time_ = 0.0;
  std::uint64_t jobs_submitted_ = 0;
};

}  // namespace sigvp
