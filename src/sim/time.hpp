#pragma once

namespace sigvp {

/// Simulated time in microseconds.
///
/// The paper reports milliseconds (Table 1, Fig. 9/10) and seconds (Fig. 11);
/// the event core uses microseconds so per-call overheads (IPC round trips,
/// kernel launch costs) stay well above representable resolution.
using SimTime = double;

constexpr SimTime us_from_ms(double ms) { return ms * 1e3; }
constexpr SimTime us_from_s(double s) { return s * 1e6; }
constexpr double ms_from_us(SimTime us) { return us / 1e3; }
constexpr double s_from_us(SimTime us) { return us / 1e6; }

/// Converts a cycle count at `clock_ghz` into simulated microseconds.
constexpr SimTime us_from_cycles(double cycles, double clock_ghz) {
  return cycles / (clock_ghz * 1e3);
}

}  // namespace sigvp
