#include "core/request_stream.hpp"

#include <algorithm>
#include <utility>

#include "snapshot/serial.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp {

/// Transient state of the request currently in service: its resolved
/// (workload, n, jitter), the allocated device buffers, and the chain
/// cursor. Held by shared_ptr through the callback chain.
struct RequestStream::Active {
  std::size_t index = 0;
  workloads::Request req;
  std::vector<workloads::BufferSpec> specs;
  std::vector<std::uint64_t> addrs;
  std::size_t cursor = 0;  // buffer index (copies) or stage index (launches)
};

RequestStream::RequestStream(EventQueue& queue, cuda::DeviceDriver& driver,
                             const workloads::Workload& workload, std::uint64_t n,
                             ExecMode mode, std::uint64_t jitter,
                             std::vector<SimTime> arrivals,
                             std::vector<workloads::Request> requests)
    : queue_(queue),
      driver_(driver),
      workload_(workload),
      n_(n),
      mode_(mode),
      jitter_(jitter),
      arrivals_(std::move(arrivals)),
      requests_(std::move(requests)) {
  SIGVP_REQUIRE(!arrivals_.empty(), "request stream needs at least one arrival");
  SIGVP_REQUIRE(requests_.empty() || requests_.size() == arrivals_.size(),
                "per-request overrides must align with the arrival schedule");
  SIGVP_REQUIRE(std::is_sorted(arrivals_.begin(), arrivals_.end()),
                "arrival times must be ascending");
  SIGVP_REQUIRE(arrivals_.front() >= 0.0, "arrival times must be non-negative");
}

workloads::Request RequestStream::resolve(std::size_t index) const {
  if (!requests_.empty()) {
    const workloads::Request& r = requests_[index];
    SIGVP_REQUIRE(r.workload != nullptr && r.n > 0, "malformed stream request");
    return r;
  }
  return workloads::Request{&workload_, n_, jitter_};
}

cuda::LaunchSpec RequestStream::make_spec(const Active& active, std::size_t stage) const {
  const workloads::Workload& w = *active.req.workload;
  cuda::LaunchSpec spec;
  if (w.stages.empty()) {
    spec.request.kernel = &w.kernel;
    spec.request.dims = w.dims(active.req.n);
    spec.request.args = w.args(active.addrs, active.req.n);
    spec.request.mode = mode_;
    if (mode_ == ExecMode::kAnalytic) {
      spec.request.analytic_profile = w.profile(active.req.n);
      spec.request.mem_behavior = w.behavior(active.req.n);
    }
    if (w.traits.coalescable && w.coalesce) spec.coalesce = w.coalesce(active.req.n);
    return spec;
  }
  const workloads::PipelineStage& st = w.stages[stage];
  spec.request.kernel = &st.kernel;
  spec.request.dims = st.dims(active.req.n);
  spec.request.args = st.args(active.addrs, active.req.n, active.req.jitter);
  spec.request.mode = mode_;
  if (mode_ == ExecMode::kAnalytic) {
    spec.request.analytic_profile = st.profile(active.req.n);
    spec.request.mem_behavior = st.behavior(active.req.n);
  }
  if (w.traits.coalescable && st.coalesce) spec.coalesce = st.coalesce(active.req.n);
  return spec;
}

void RequestStream::start(std::function<void(SimTime)> on_done) {
  SIGVP_REQUIRE(!self_, "RequestStream already started");
  on_done_ = std::move(on_done);
  self_ = shared_from_this();
  auto self = shared_from_this();
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    queue_.schedule_at(arrivals_[i], [self, i] { self->on_arrival(i); });
  }
}

void RequestStream::on_arrival(std::size_t index) {
  pending_.push_back(index);
  if (!busy_) begin_next();
}

void RequestStream::begin_next() {
  if (pending_.empty()) return;
  busy_ = true;
  const std::size_t index = pending_.front();
  pending_.pop_front();
  serve(index);
}

void RequestStream::serve(std::size_t index) {
  auto active = std::make_shared<Active>();
  active->index = index;
  active->req = resolve(index);
  active->specs = active->req.workload->buffers(active->req.n);
  for (const auto& spec : active->specs) {
    active->addrs.push_back(driver_.malloc(spec.bytes));
  }

  auto self = shared_from_this();

  // Chain: upload inputs -> stage launches in order -> download outputs.
  // Copies are timing-only (no host payload): open-loop streams measure
  // service latency, functional data paths are covered by AppRun.
  struct Chain {
    std::shared_ptr<RequestStream> rs;
    std::shared_ptr<Active> active;

    void upload() {
      auto& a = *active;
      while (a.cursor < a.specs.size() && !a.specs[a.cursor].is_input) ++a.cursor;
      if (a.cursor >= a.specs.size()) {
        a.cursor = 0;
        launch();
        return;
      }
      const std::size_t i = a.cursor++;
      auto chain = *this;
      rs->driver_.memcpy_h2d(a.addrs[i], nullptr, a.specs[i].bytes,
                             [chain](SimTime) mutable { chain.upload(); });
    }

    void launch() {
      auto& a = *active;
      const std::size_t stage_count =
          std::max<std::size_t>(1, a.req.workload->stages.size());
      if (a.cursor >= stage_count) {
        a.cursor = 0;
        download();
        return;
      }
      const std::size_t stage = a.cursor++;
      ++rs->kernels_launched_;
      auto chain = *this;
      rs->driver_.launch(rs->make_spec(a, stage),
                         [chain](SimTime, const KernelExecStats&) mutable { chain.launch(); });
    }

    void download() {
      auto& a = *active;
      while (a.cursor < a.specs.size() && !a.specs[a.cursor].is_output) ++a.cursor;
      if (a.cursor >= a.specs.size()) {
        // Inside the last op's completion event, so now() is that op's end.
        rs->finish_request(active, rs->queue_.now());
        return;
      }
      const std::size_t i = a.cursor++;
      auto chain = *this;
      rs->driver_.memcpy_d2h(nullptr, a.addrs[i], a.specs[i].bytes,
                             [chain](SimTime) mutable { chain.download(); });
    }
  };
  Chain{self, active}.upload();
}

void RequestStream::finish_request(std::shared_ptr<Active> active, SimTime end) {
  for (std::uint64_t addr : active->addrs) driver_.free(addr);
  latency_.record(end - arrivals_[active->index]);
  ++completed_;
  busy_ = false;
  if (completed_ == arrivals_.size()) {
    SIGVP_DEBUG("traffic") << workload_.app << " served " << completed_
                           << " requests, last at " << end / 1e6 << " s";
    finished_ = true;
    finished_at_ = end;
    auto done = std::move(on_done_);
    auto self = std::move(self_);  // release keep-alive after callback returns
    if (done) done(end);
    return;
  }
  begin_next();
}

void RequestStream::capture_state(snapshot::Writer& w) const {
  w.u64(pending_.size());
  for (std::size_t idx : pending_) w.u64(idx);
  w.boolean(busy_);
  w.u64(completed_);
  w.u64(kernels_launched_);
  w.boolean(finished_);
  w.f64(finished_at_);
  w.u64_vec(latency_.counts);
  w.u64(latency_.count);
  w.f64(latency_.sum);
  w.f64(latency_.min);
  w.f64(latency_.max);
}

}  // namespace sigvp
