#include "core/fleet.hpp"

#include <algorithm>
#include <utility>

#include "core/app_run.hpp"
#include "core/request_stream.hpp"
#include "fault/health.hpp"
#include "gpu/launch_cache.hpp"
#include "ipc/ipc_manager.hpp"
#include "run/thread_pool.hpp"
#include "sim/topology.hpp"
#include "snapshot/serial.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "vp/emulation_driver.hpp"
#include "vp/native_driver.hpp"
#include "vp/sigmavp_driver.hpp"

namespace sigvp {

namespace {

/// splitmix64-style mix: derives a domain-local fault seed from the
/// scenario seed, so sharded fleets keep seeded fault injection per domain
/// without correlating decisions across domains.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t domain) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (domain + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FleetDomain::FleetDomain() = default;
FleetDomain::~FleetDomain() = default;

void FleetDomain::build(const ScenarioConfig& config, const std::vector<AppInstance>& apps,
                        std::size_t begin, std::size_t end, std::uint32_t domain_id,
                        std::uint32_t num_domains, const std::string& trace_label) {
  SIGVP_REQUIRE(begin < end && end <= apps.size(), "malformed fleet domain slice");
  const Calibration& calib = config.calib;
  const bool sharded = num_domains > 1;
  id = domain_id;
  app_begin = begin;
  app_end = end;
  functional = config.mode == ExecMode::kFunctional;

  // Host-side infrastructure (only built when the backend needs it). An
  // empty host_gpus declaration resolves to one implicit device from the
  // legacy gpu/gpu_mem_bytes fields — byte-identical to every prior release.
  // HostGpuSet gives each device a private launch-cache shard whenever the
  // fleet is sharded or the set is multi-device: hit/miss sequences stay a
  // pure function of each device's own launch stream (the process singleton
  // would make first-fill outcomes depend on shard-thread interleaving).
  const bool needs_gpu =
      config.backend == Backend::kNativeGpu || config.backend == Backend::kSigmaVp;
  if (needs_gpu) {
    std::vector<HostGpuSpec> specs = config.host_gpus;
    if (specs.empty()) specs.push_back(HostGpuSpec{config.gpu, config.gpu_mem_bytes});
    multi_gpu = specs.size() > 1;
    gpus = std::make_unique<HostGpuSet>(queue, specs, sharded);
    device = gpus->primary();
  }
  if (config.backend == Backend::kSigmaVp) {
    ipc = std::make_unique<IpcManager>(queue, calib.ipc);
    // Migration only makes sense where the working set is priced, not
    // carried: analytic mode without faults. Functional runs keep VPs
    // pinned so device-memory contents stay where the VP allocated them.
    PlacementConfig placement = config.placement;
    if (config.mode != ExecMode::kAnalytic || config.fault.enabled()) {
      placement.allow_migration = false;
    }
    dispatcher =
        std::make_unique<Dispatcher>(queue, gpus->device_ptrs(), config.dispatch, placement);
    ipc->set_sink([&d = *dispatcher](Job job) { d.submit(std::move(job)); });
  }

  // Observability (ΣVP only): one track group + metrics registry per
  // domain. Built only when collection is on, so the default path hands
  // every component a null pointer — a branch-on-null no-op.
  if (config.backend == Backend::kSigmaVp && trace::collecting()) {
    rt = std::make_unique<trace::RunTrace>(trace_label);
    ipc->set_trace(rt.get());
    dispatcher->set_trace(rt.get());
    // Device 0 keeps the legacy gpu.compute/copy tracks; every extra device
    // of a multi-GPU set gets its own named track triple.
    for (std::size_t g = 0; g < gpus->count(); ++g) {
      GpuDevice& dev = gpus->device(g);
      dev.set_trace(rt.get());
      if (g >= 1) {
        const std::uint32_t base = 2000 + 8 * static_cast<std::uint32_t>(g);
        dev.set_trace_tids(base, base + 1, base + 2);
        const std::string nm = "gpu" + std::to_string(g);
        rt->thread_name(base, nm + ".compute");
        rt->thread_name(base + 1, nm + ".copy_in");
        rt->thread_name(base + 2, nm + ".copy_out");
      }
    }
  }

  // Fault injection + tolerance (ΣVP only). A zero-fault config builds none
  // of this, so the legacy code paths stay byte-identical. Sharded fleets
  // reseed the plan per domain and remap the stall-VP index into the slice.
  FaultConfig fc = config.fault;
  if (sharded) {
    fc.seed = mix_seed(fc.seed, domain_id);
    if (fc.stall_vp >= 0) {
      const std::int64_t sv = fc.stall_vp;
      fc.stall_vp = (sv >= static_cast<std::int64_t>(begin) &&
                     sv < static_cast<std::int64_t>(end))
                        ? sv - static_cast<std::int64_t>(begin)
                        : -1;
    }
  }
  faults_on = config.backend == Backend::kSigmaVp && fc.enabled();
  if (faults_on) {
    fault_plan = std::make_unique<FaultPlan>(fc);
    fault_stats = std::make_unique<FaultStats>();
    fault_stats->active = true;
    health = std::make_unique<HealthPolicy>(config.recovery, *fault_stats);
    device->set_fault(fault_plan.get(), fault_stats.get());
    ipc->set_fault(fault_plan.get(), fault_stats.get(), health.get(), config.recovery);
    dispatcher->set_fault(fault_plan.get(), fault_stats.get(), health.get(), config.recovery);
    for (SimTime t : fc.device_reset_at_us) {
      queue.schedule_at(t, [&d = *dispatcher] { d.inject_device_reset(); });
    }
  }

  // Multi-GPU sets: compute the slice's initial VP↔device assignment before
  // any VP registers. Weights proxy each app's demand (problem size times
  // request count); the affinity policy spreads them LPT-greedily over the
  // devices' relative speeds, round-robin ignores both.
  std::vector<std::uint32_t> assign;
  if (config.backend == Backend::kSigmaVp && gpus->count() > 1) {
    std::vector<std::uint64_t> weights;
    weights.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const AppInstance& a = apps[i];
      weights.push_back(a.n * std::max<std::uint64_t>(1, a.arrivals.size()));
    }
    assign = initial_placement(config.placement.policy, weights, gpus->relative_speeds());
  }

  // Per-app CPU contexts and drivers. On the paper's 32-core host each VP
  // gets its own core, so CPU contexts run concurrently in simulated time.
  // Tags use the *global* app index, so traces of a sharded fleet name VPs
  // consistently across domains.
  for (std::size_t i = begin; i < end; ++i) {
    const std::string tag = "app" + std::to_string(i);
    switch (config.backend) {
      case Backend::kNativeGpu: {
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".hostcpu",
                                                   calib.host_cpu.effective_ips));
        drivers.push_back(std::make_unique<NativeDriver>(queue, *device, calib.host_cpu));
        break;
      }
      case Backend::kEmulationHostCpu: {
        EmulationConfig ec = calib.emulation_on_host(functional);
        ec.cpu_ips /= calib.emulation_contention(apps.size());
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".hostcpu", ec.cpu_ips));
        drivers.push_back(std::make_unique<EmulationDriver>(*cpus.back(), ec));
        break;
      }
      case Backend::kEmulationOnVp: {
        EmulationConfig ec = calib.emulation_on_vp(functional);
        ec.cpu_ips /= calib.emulation_contention(apps.size());
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".guest", ec.cpu_ips));
        drivers.push_back(std::make_unique<EmulationDriver>(*cpus.back(), ec));
        break;
      }
      case Backend::kSigmaVp: {
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".guest",
                                                   calib.vp.guest_ips(calib.host_cpu)));
        const std::uint32_t ipc_id = ipc->register_vp(tag);
        const std::uint32_t dev_idx = assign.empty() ? 0 : assign[i - begin];
        dispatcher->register_vp(dev_idx);
        GpuDevice& vp_dev = gpus->device(dev_idx);
        auto drv =
            std::make_unique<SigmaVpDriver>(*cpus.back(), *ipc, vp_dev, ipc_id, calib.vp);
        if (faults_on) {
          health->register_vp();
          // Graceful-degradation path: an emulation driver on the guest CPU
          // that borrows the real device's address space, so jobs escalated
          // mid-run keep operating on valid device pointers and data.
          fallback_drivers.push_back(std::make_unique<EmulationDriver>(
              *cpus.back(), calib.emulation_on_vp(functional), vp_dev.memory()));
          drv->enable_fallback(fallback_drivers.back().get());
          sigma_drivers.push_back(drv.get());
        }
        drivers.push_back(std::move(drv));
        break;
      }
    }
  }

  if (faults_on) {
    // One escalation funnel for both escalation sources (IPC retry-budget
    // exhaustion and dispatcher launch-retry exhaustion / failed-VP purge):
    // hand the job to its driver's seq-ordered fallback queue.
    auto escalate = [&stats = *fault_stats, &sigma = sigma_drivers](std::uint32_t vp_id,
                                                                    Job job) {
      ++stats.fallback_jobs;
      sigma.at(vp_id)->run_fallback_job(std::move(job));
    };
    ipc->set_escalation(escalate);
    dispatcher->set_escalation(escalate);
    // Every in-order completion release may unblock the next parked
    // fallback job of that VP.
    ipc->set_release_listener(
        [&sigma = sigma_drivers](std::uint32_t vp_id) { sigma.at(vp_id)->pump_fallback(); });
    // When a VP is declared failed, its queued (not yet dispatched) jobs
    // escalate with it so nothing is stranded behind the failure.
    health->on_failed = [&d = *dispatcher](std::uint32_t vp_id) { d.purge_vp(vp_id); };
  }

  // Build every application — closed-loop AppRun by default, open-loop
  // RequestStream when the instance carries an arrival schedule. `runs`/
  // `streams` are index-aligned with the slice (exactly one non-null per
  // slot). Bulk event insertion at start() benefits from a pre-sized heap.
  const std::size_t slice = end - begin;
  queue.reserve(queue.pending() + slice + 1);
  runs.resize(slice);
  streams.resize(slice);
  for (std::size_t i = 0; i < slice; ++i) {
    const AppInstance& app = apps[begin + i];
    if (!app.arrivals.empty()) {
      streams[i] = std::make_shared<RequestStream>(queue, *drivers[i], *app.workload, app.n,
                                                   config.mode, app.jitter, app.arrivals,
                                                   app.requests);
      continue;
    }
    const workloads::AppTraits* traits = app.traits.has_value() ? &*app.traits : nullptr;
    runs[i] = std::make_shared<AppRun>(queue, *drivers[i], *cpus[i], *app.workload, app.n,
                                       config.mode, traits, config.async_launches,
                                       config.functional_io && functional, app.jitter);
  }
}

void FleetDomain::start(const std::function<void(std::size_t, SimTime)>& on_app_done) {
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::function<void(SimTime)> done;
    if (on_app_done) {
      done = [on_app_done, global = app_begin + i](SimTime t) { on_app_done(global, t); };
    }
    if (runs[i]) runs[i]->start(std::move(done));
    if (streams[i]) streams[i]->start(std::move(done));
  }
}

void FleetDomain::capture_components(snapshot::Writer& w, bool hash_memory) const {
  queue.capture_state(w);
  if (gpus) {
    // Declaration order; a 1-device set digests exactly like the legacy
    // single-device capture.
    for (std::size_t g = 0; g < gpus->count(); ++g) {
      gpus->device(g).capture_state(w, hash_memory);
    }
  }
  if (ipc) ipc->capture_state(w);
  if (dispatcher) dispatcher->capture_state(w);
  for (const auto& cpu : cpus) {
    w.f64(cpu->busy_until());
    w.f64(cpu->busy_total());
  }
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (streams[i]) {
      streams[i]->capture_state(w);
    } else {
      w.boolean(runs[i]->finished());
      w.f64(runs[i]->finished_at());
      w.u64(runs[i]->kernels_launched());
    }
  }
  if (faults_on) {
    w.u64(fault_stats->retransmits);
    w.u64(fault_stats->duplicates_suppressed);
    w.u64(fault_stats->launch_retries);
    w.u64(fault_stats->fallback_jobs);
    w.u64(fault_stats->unrecovered_jobs);
  }
}

void FleetDomain::append_app_results(ScenarioResult& result, bool want_outputs) const {
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (streams[i]) {
      SIGVP_ASSERT(streams[i]->finished(),
                   "event queue drained but a request stream never finished");
      result.app_done_us.push_back(streams[i]->finished_at());
      result.makespan_us = std::max(result.makespan_us, streams[i]->finished_at());
      // Canonical input order, so the folded histogram is bit-identical for
      // any sweep worker count.
      result.latency.merge(streams[i]->latency());
      result.requests_completed += streams[i]->requests_completed();
      continue;
    }
    const auto& run = runs[i];
    SIGVP_ASSERT(run->finished(), "event queue drained but an app never finished");
    result.app_done_us.push_back(run->finished_at());
    result.makespan_us = std::max(result.makespan_us, run->finished_at());
    if (want_outputs) result.app_outputs.push_back(run->output_bytes());
  }
}

void FleetDomain::fold_counters(ScenarioResult& result) const {
  if (dispatcher) {
    result.jobs_dispatched += dispatcher->jobs_dispatched();
    result.reorders += dispatcher->reorders();
    result.coalesced_groups += dispatcher->coalesced_groups();
    result.coalesced_jobs += dispatcher->coalesced_jobs();
  }
  if (ipc) result.ipc_messages += ipc->messages_sent();
  if (gpus) {
    // The legacy gpu_* totals sum over the whole set, so 1-device results
    // are unchanged and multi-GPU results stay comparable.
    for (std::size_t g = 0; g < gpus->count(); ++g) {
      const GpuDevice& dev = gpus->device(g);
      result.gpu_dynamic_energy_j += dev.dynamic_energy_j();
      result.gpu_compute_busy_us += dev.compute_busy_us();
      result.gpu_copy_busy_us += dev.copy_busy_us();
    }
  }
  if (multi_gpu) {
    MultiGpuStats& mg = result.gpus;
    mg.devices = static_cast<std::uint32_t>(gpus->count());
    if (mg.per_device.size() < gpus->count()) mg.per_device.resize(gpus->count());
    for (std::size_t g = 0; g < gpus->count(); ++g) {
      const GpuDevice& dev = gpus->device(g);
      GpuDeviceStats& ds = mg.per_device[g];
      if (ds.arch.empty()) ds.arch = dev.arch().name;
      ds.vps += dispatcher->vps_on_device(g);
      ds.jobs += dispatcher->lane_jobs(g);
      ds.kernels += dev.kernels_launched();
      ds.compute_busy_us += dev.compute_busy_us();
      ds.copy_busy_us += dev.copy_busy_us();
      ds.energy_j += dev.dynamic_energy_j();
    }
    mg.migrations += dispatcher->migrations();
    mg.migrated_bytes += dispatcher->migrated_bytes();
  }
  if (faults_on) result.fault.merge(*fault_stats);
}

std::uint64_t FleetDomain::resident_bytes() const {
  std::uint64_t total = sizeof(FleetDomain) + queue.resident_bytes();
  if (gpus) total += gpus->resident_bytes();
  if (ipc) total += ipc->resident_bytes();
  if (dispatcher) total += dispatcher->resident_bytes();
  total += cpus.size() * sizeof(Processor);
  total += drivers.size() * sizeof(SigmaVpDriver);  // largest driver variant
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs[i]) total += sizeof(AppRun);
    if (streams[i]) total += sizeof(RequestStream);
  }
  total += fallback_drivers.size() * sizeof(EmulationDriver);
  total += captures.capacity() * sizeof(FleetCapture);
  total += outbox.capacity() * sizeof(FabricMsg);
  return total;
}

ScenarioResult run_scenario_sharded(const ScenarioConfig& config,
                                    const std::vector<AppInstance>& apps,
                                    const CaptureOptions& capture,
                                    std::vector<FleetCapture>* out_captures) {
  const std::uint32_t D = config.fleet.domains;
  SIGVP_REQUIRE(config.backend == Backend::kSigmaVp,
                "sharded fleets (fleet.domains >= 2) require the ΣVP backend");
  SIGVP_REQUIRE(static_cast<std::size_t>(D) <= apps.size(),
                "a sharded fleet needs at least one app per domain");
  const FleetTopology topo =
      FleetTopology::parse(config.fleet.topology, D, config.fleet.edge_latency_us);
  const SimTime lookahead = topo.lookahead_us();
  const bool functional = config.mode == ExecMode::kFunctional;

  // Contiguous near-equal app slices: domain d owns [slice_at(d), slice_at(d+1)).
  auto slice_at = [&apps, D](std::uint32_t d) { return apps.size() * d / D; };

  // Shard execution: up to `--shards` host threads from the shared fleet
  // pool advance domains between barriers. Purely an execution knob — the
  // serial path below visits domains in the same order the merge uses.
  std::vector<std::unique_ptr<FleetDomain>> doms(D);
  const std::size_t shard_threads = std::min<std::size_t>(run::fleet_shards(), D);
  auto for_each_domain = [&](const std::function<void(std::size_t)>& fn) {
    if (shard_threads > 1) {
      run::parallel_for(run::fleet_pool(shard_threads), D, fn);
    } else {
      for (std::size_t d = 0; d < D; ++d) fn(d);
    }
  };

  const std::string base_label = backend_name(config.backend);
  for_each_domain([&](std::size_t d) {
    const std::size_t begin = slice_at(static_cast<std::uint32_t>(d));
    const std::size_t end = slice_at(static_cast<std::uint32_t>(d + 1));
    auto dom = std::make_unique<FleetDomain>();
    dom->build(config, apps, begin, end, static_cast<std::uint32_t>(d), D,
               base_label + " x" + std::to_string(end - begin) + " shard" +
                   std::to_string(d));
    doms[d] = std::move(dom);
  });
  FleetDomain& root = *doms[0];
  const std::uint64_t remote_reports_expected =
      apps.size() - (root.app_end - root.app_begin);

  // Fabric completion hooks: the root processes its own apps' completions
  // locally; every other domain reports leaf → root with the path latency,
  // and the root acks back. All hooks run inside their domain's events.
  for (std::uint32_t d = 0; d < D; ++d) {
    FleetDomain& dom = *doms[d];
    if (d == 0) {
      dom.start([&root](std::size_t, SimTime done) {
        if (done > root.fleet_done_us) root.fleet_done_us = done;
      });
    } else {
      const SimTime path = topo.to_root_us(d);
      dom.start([&dom, path](std::size_t app, SimTime done) {
        dom.outbox.push_back({done + path, dom.id, 0, dom.fabric_seq++, app, false});
        ++dom.reports_sent;
      });
    }
  }

  // Per-domain capture chains on the shared cadence grid. A chain re-arms
  // while its domain has pending events or open fabric business, so the
  // folded fleet captures span the whole fleet lifetime; everything feeding
  // the re-arm decision is sim-domain deterministic.
  if (capture.every_us > 0.0) {
    for (std::uint32_t d = 0; d < D; ++d) {
      FleetDomain& dom = *doms[d];
      const bool is_root = d == 0;
      auto take = std::make_shared<std::function<void()>>();
      *take = [&dom, take, every = capture.every_us, functional, is_root,
               remote_reports_expected] {
        FleetCapture fc;
        fc.at_us = dom.queue.now();
        fc.events_processed = dom.queue.events_processed();
        snapshot::Writer w;
        dom.capture_components(w, functional);
        w.u64(dom.reports_sent);
        w.u64(dom.acks_received);
        w.u64(dom.reports_received);
        w.f64(dom.fleet_done_us);
        fc.digest = w.digest();
        dom.captures.push_back(fc);
        const bool fabric_open =
            dom.reports_sent > dom.acks_received ||
            (is_root && dom.reports_received < remote_reports_expected);
        if (dom.queue.pending() > 0 || fabric_open) {
          dom.queue.schedule_at(dom.queue.now() + every, *take);
        }
      };
      dom.queue.schedule_at(capture.every_us, *take);
    }
  }

  ScenarioResult result;
  result.fleet.domains = D;
  result.fleet.lookahead_us = lookahead;

  auto resident_total = [&doms] {
    std::uint64_t sum = 0;
    for (const auto& dom : doms) sum += dom->resident_bytes();
    return sum;
  };
  std::uint64_t peak_resident = resident_total();  // construction peak

  // Barrier-time message routing: canonical (arrival, src, seq) order keeps
  // the destination queue's sequence assignment — and therefore every
  // downstream scheduling decision — independent of shard interleaving.
  auto route = [&](const FleetDomain::FabricMsg& m) {
    const std::uint32_t far_end = m.ack ? m.dst : m.src;
    ++result.fleet.fabric_messages;
    result.fleet.fabric_hops += topo.hops_to_root(far_end);
    if (!m.ack) {
      const SimTime back = topo.to_root_us(m.src);
      root.queue.schedule_at(m.arrive_us, [&root, src = m.src, app = m.app, back] {
        const SimTime now = root.queue.now();
        if (now > root.fleet_done_us) root.fleet_done_us = now;
        ++root.reports_received;
        if (root.rt) {
          root.rt->instant(trace::RunTrace::kTidIpc, "fabric", "report", now,
                           {trace::arg("app", static_cast<std::uint64_t>(app)),
                            trace::arg("src", static_cast<int>(src))});
        }
        root.outbox.push_back({now + back, 0, src, root.fabric_seq++, app, true});
      });
    } else {
      FleetDomain& dst = *doms[m.dst];
      dst.queue.schedule_at(m.arrive_us, [&dst] { ++dst.acks_received; });
    }
  };

  // Fold the per-domain capture chains into fleet captures, grid point by
  // grid point, verifying against the expected sequence as we go. The grid
  // accumulates (prev + every_us) exactly like the chains do, so times
  // match bit-for-bit.
  std::size_t folded = 0;
  std::size_t verify_idx = 0;
  SimTime next_grid = capture.every_us;
  bool chains_dead = capture.every_us <= 0.0;
  auto fold_captures = [&](SimTime horizon) {
    while (!chains_dead && next_grid <= horizon) {
      FleetCapture fc;
      fc.at_us = next_grid;
      snapshot::Writer w;
      std::uint64_t contributors = 0;
      for (std::uint32_t d = 0; d < D; ++d) {
        if (doms[d]->captures.size() > folded) ++contributors;
      }
      if (contributors == 0) {
        chains_dead = true;  // every chain ended — no entry at this grid, ever
        break;
      }
      w.u64(contributors);
      for (std::uint32_t d = 0; d < D; ++d) {
        if (doms[d]->captures.size() <= folded) continue;
        const FleetCapture& c = doms[d]->captures[folded];
        SIGVP_ASSERT(c.at_us == next_grid, "fleet capture chain left its cadence grid");
        w.u32(d);
        w.u64(c.events_processed);
        w.u64(c.digest);
        fc.events_processed += c.events_processed;
      }
      fc.digest = w.digest();
      if (verify_idx < capture.expect.size()) {
        const FleetCapture& e = capture.expect[verify_idx];
        if (!(fc == e)) {
          throw snapshot::SnapshotError(
              "fleet capture " + std::to_string(verify_idx) + " diverged from checkpoint: " +
              "expected t=" + std::to_string(e.at_us) + " events=" +
              std::to_string(e.events_processed) + " digest=" + std::to_string(e.digest) +
              ", got t=" + std::to_string(fc.at_us) + " events=" +
              std::to_string(fc.events_processed) + " digest=" + std::to_string(fc.digest));
        }
      }
      ++verify_idx;
      ++folded;
      next_grid += capture.every_us;
      if (out_captures != nullptr) out_captures->push_back(fc);
      if (capture.on_capture) capture.on_capture(fc);
    }
  };

  // The conservative horizon loop. Any message sent by an event at time t
  // arrives at t + path >= t + lookahead, and every event processed in a
  // round has t >= the round's earliest pending time, so advancing all
  // domains to (earliest + lookahead) can never deliver into a domain's
  // past — and idle stretches are skipped at full speed because the horizon
  // chases the earliest *pending* event, wherever it is.
  std::vector<FleetDomain::FabricMsg> msgs;
  for (;;) {
    bool any = false;
    SimTime earliest = 0.0;
    for (const auto& dom : doms) {
      if (dom->queue.empty()) continue;
      const SimTime t = dom->queue.next_event_time();
      if (!any || t < earliest) earliest = t;
      any = true;
    }
    if (!any) break;
    const SimTime horizon = earliest + lookahead;
    ++result.fleet.sync_rounds;

    for_each_domain([&doms, horizon](std::size_t d) { doms[d]->queue.run_until(horizon); });

    msgs.clear();
    for (const auto& dom : doms) {
      msgs.insert(msgs.end(), dom->outbox.begin(), dom->outbox.end());
      dom->outbox.clear();
    }
    std::sort(msgs.begin(), msgs.end(),
              [](const FleetDomain::FabricMsg& a, const FleetDomain::FabricMsg& b) {
                if (a.arrive_us != b.arrive_us) return a.arrive_us < b.arrive_us;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    for (const FleetDomain::FabricMsg& m : msgs) route(m);
    fold_captures(horizon);
  }

  if (verify_idx < capture.expect.size()) {
    throw snapshot::SnapshotError(
        "replay produced " + std::to_string(verify_idx) + " fleet captures but the checkpoint " +
        "recorded " + std::to_string(capture.expect.size()) + " — runs diverged");
  }

  // Fleet-level liveness: every queue drained, so any dispatcher with queued
  // or in-flight jobs, any unacked report, or any unreported app means the
  // system deadlocked — fail loudly instead of reporting a bogus result.
  for (const auto& dom : doms) {
    if (dom->dispatcher && !dom->dispatcher->idle()) {
      SIGVP_ASSERT(false, "fleet domain " + std::to_string(dom->id) +
                              " drained with the dispatcher stalled — " +
                              dom->dispatcher->stall_report());
    }
    SIGVP_ASSERT(dom->outbox.empty(), "fleet drained with fabric messages unrouted");
    SIGVP_ASSERT(dom->acks_received == dom->reports_sent,
                 "fleet drained with unacknowledged completion reports");
  }
  SIGVP_ASSERT(root.reports_received == remote_reports_expected,
               "fleet drained before every completion report reached the root");

  peak_resident = std::max(peak_resident, resident_total());

  // Canonical merge: domain order == global app order (slices are
  // contiguous and ascending), counters sum, histograms/metrics fold in
  // domain order — bit-identical for any shard/worker count.
  for (const auto& dom : doms) {
    dom->append_app_results(result, config.functional_io && functional);
    dom->fold_counters(result);
  }
  result.fleet.fleet_done_us = root.fleet_done_us;
  result.fleet.resident_bytes = peak_resident;
  for (const auto& dom : doms) {
    if (!dom->gpus || !dom->gpus->has_private_caches()) continue;
    const LaunchCacheStats cs = dom->gpus->cache_stats();
    result.fleet.cache_hits += cs.hits;
    result.fleet.cache_misses += cs.misses;
  }

  if (root.rt) {
    auto merged = std::make_shared<trace::Metrics>();
    for (const auto& dom : doms) merged->merge(dom->rt->metrics);
    merged->gauge("run.makespan_us").record_max(result.makespan_us);
    if (result.latency.count > 0) {
      merged->counter("traffic.requests").value += result.requests_completed;
      merged->histogram("traffic.request_latency_us", trace::latency_buckets_us())
          .merge(result.latency);
    }
    if (result.makespan_us > 0.0) {
      // Aggregate utilization across every device of every domain.
      const double devs = result.gpus.devices > 0 ? result.gpus.devices : 1.0;
      merged->gauge("gpu.compute_utilization")
          .record_max(result.gpu_compute_busy_us / (D * devs * result.makespan_us));
      merged->gauge("gpu.copy_utilization")
          .record_max(result.gpu_copy_busy_us / (D * devs * result.makespan_us));
    }
    if (result.gpus.devices > 0) {
      merged->counter("placement.migrations").value += result.gpus.migrations;
      merged->counter("placement.migrated_bytes").value += result.gpus.migrated_bytes;
    }
    merged->counter("fleet.fabric_messages").value += result.fleet.fabric_messages;
    merged->counter("fleet.sync_rounds").value += result.fleet.sync_rounds;
    merged->gauge("fleet.resident_bytes")
        .record_max(static_cast<double>(result.fleet.resident_bytes));
    result.metrics = std::move(merged);
  }
  return result;
}

}  // namespace sigvp
