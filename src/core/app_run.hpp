#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cuda/driver.hpp"
#include "gpu/device.hpp"
#include "sim/event_queue.hpp"
#include "vp/processor.hpp"
#include "workloads/workload.hpp"

namespace sigvp {

/// Drives one application instance (a Workload with AppTraits) against a
/// DeviceDriver backend, in the style of the CUDA SDK samples:
///
///   allocate buffers → upload inputs →
///   repeat iterations:
///     non-CUDA guest work (file I/O, OpenGL) on the app's CPU context,
///     optional per-iteration upload,
///     `launches_per_iter` synchronous kernel invocations,
///     optional per-iteration download
///   → download outputs → free buffers.
///
/// Every GPU call is synchronous from the app's point of view (the next op
/// issues from the previous op's completion callback), which is exactly the
/// invocation style the paper's VP-control-based interleaving targets.
class AppRun : public std::enable_shared_from_this<AppRun> {
 public:
  using DonePtr = std::shared_ptr<AppRun>;

  /// `mode` picks functional interpretation or analytic pricing for every
  /// kernel launch. `traits_override` replaces the workload's defaults
  /// (used e.g. by the Table 1 bench to run the paper's exact loop).
  /// With `async_launches`, the kernels of one iteration are submitted
  /// back-to-back (stream-style asynchronous invocations, the requests the
  /// paper's Re-scheduler reorders per Fig. 4(a)) and the iteration syncs
  /// once at its end; otherwise every call is synchronous.
  /// With `functional_io` (functional mode only), host staging buffers are
  /// materialized so the setup/teardown copies move real bytes instead of
  /// being timing-only; `output_bytes()` then returns the downloaded results.
  /// `jitter` is the per-VP scalar-jitter seed forwarded to pipeline-stage
  /// argument builders (0 = canonical scalars); single-kernel workloads
  /// ignore it.
  AppRun(EventQueue& queue, cuda::DeviceDriver& driver, Processor& cpu,
         const workloads::Workload& workload, std::uint64_t n, ExecMode mode,
         const workloads::AppTraits* traits_override = nullptr, bool async_launches = false,
         bool functional_io = false, std::uint64_t jitter = 0);
  ~AppRun();

  AppRun(const AppRun&) = delete;
  AppRun& operator=(const AppRun&) = delete;

  /// Begins the app; `on_done` fires at the simulated completion time.
  /// The AppRun keeps itself alive until then.
  void start(std::function<void(SimTime)> on_done);

  SimTime finished_at() const { return finished_at_; }
  bool finished() const { return finished_; }
  std::uint64_t kernels_launched() const { return kernels_launched_; }

  /// Concatenated bytes of the output buffers downloaded at teardown.
  /// Empty unless the run was constructed with `functional_io`.
  std::vector<std::uint8_t> output_bytes() const;

 private:
  void setup();
  void begin_iteration();
  void do_iter_upload();
  void do_launch();
  void do_iter_download();
  void finish_iteration();
  void teardown();
  void complete(SimTime end);
  /// Launch spec for launch number `launch_index` of an iteration: stage
  /// `launch_index % stages.size()` for pipeline apps (kernel chaining), the
  /// workload's single kernel otherwise.
  cuda::LaunchSpec make_spec(std::uint32_t launch_index) const;

  EventQueue& queue_;
  cuda::DeviceDriver& driver_;
  Processor& cpu_;
  const workloads::Workload& workload_;
  std::uint64_t n_;
  ExecMode mode_;
  workloads::AppTraits traits_;
  bool async_launches_;
  bool functional_io_;
  std::uint64_t jitter_;

  std::vector<workloads::BufferSpec> buffer_specs_;
  std::vector<std::uint64_t> buffer_addrs_;
  /// Host staging buffers, one per BufferSpec (functional_io only). Inputs
  /// are filled before setup's uploads; outputs receive teardown's
  /// downloads. Must outlive in-flight copies — jobs hold raw pointers.
  std::vector<std::vector<std::uint8_t>> host_bufs_;
  std::uint32_t iter_ = 0;
  std::uint32_t launch_in_iter_ = 0;
  std::uint64_t kernels_launched_ = 0;
  bool finished_ = false;
  SimTime finished_at_ = 0.0;
  std::function<void(SimTime)> on_done_;
  std::shared_ptr<AppRun> self_;  // keep-alive during the run
};

}  // namespace sigvp
