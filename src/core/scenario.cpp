#include "core/scenario.hpp"

#include <algorithm>
#include <memory>

#include "core/app_run.hpp"
#include "core/request_stream.hpp"
#include "fault/health.hpp"
#include "ipc/ipc_manager.hpp"
#include "snapshot/serial.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "vp/emulation_driver.hpp"
#include "vp/native_driver.hpp"
#include "vp/sigmavp_driver.hpp"

namespace sigvp {

std::string backend_name(Backend backend) {
  switch (backend) {
    case Backend::kNativeGpu: return "native-gpu";
    case Backend::kEmulationHostCpu: return "emulation-host-cpu";
    case Backend::kEmulationOnVp: return "emulation-on-vp";
    case Backend::kSigmaVp: return "sigma-vp";
  }
  return "?";
}

std::vector<AppInstance> replicate(const workloads::Workload& workload, std::uint64_t n,
                                   std::size_t count) {
  std::vector<AppInstance> apps(count);
  for (auto& a : apps) {
    a.workload = &workload;
    a.n = n;
  }
  return apps;
}

ScenarioResult run_scenario(const ScenarioConfig& config, const std::vector<AppInstance>& apps) {
  return run_scenario(config, apps, CaptureOptions{}, nullptr);
}

ScenarioResult run_scenario(const ScenarioConfig& config, const std::vector<AppInstance>& apps,
                            const CaptureOptions& capture,
                            std::vector<FleetCapture>* out_captures) {
  SIGVP_REQUIRE(!apps.empty(), "scenario needs at least one application");
  for (const AppInstance& a : apps) {
    SIGVP_REQUIRE(a.workload != nullptr && a.n > 0, "malformed app instance");
  }

  for (const AppInstance& a : apps) {
    SIGVP_REQUIRE(a.arrivals.empty() || !config.functional_io,
                  "open-loop request streams are timing-only (no functional_io)");
    SIGVP_REQUIRE(a.requests.empty() || a.requests.size() == a.arrivals.size(),
                  "per-request overrides must align with the arrival schedule");
  }

  EventQueue queue;
  const Calibration& calib = config.calib;

  // Host-side infrastructure (only built when the backend needs it).
  std::unique_ptr<GpuDevice> device;
  std::unique_ptr<IpcManager> ipc;
  std::unique_ptr<Dispatcher> dispatcher;
  const bool needs_gpu =
      config.backend == Backend::kNativeGpu || config.backend == Backend::kSigmaVp;
  if (needs_gpu) {
    device = std::make_unique<GpuDevice>(queue, config.gpu, config.gpu_mem_bytes, "hostGPU");
  }
  if (config.backend == Backend::kSigmaVp) {
    ipc = std::make_unique<IpcManager>(queue, calib.ipc);
    dispatcher = std::make_unique<Dispatcher>(queue, *device, config.dispatch);
    ipc->set_sink([&d = *dispatcher](Job job) { d.submit(std::move(job)); });
  }

  // Observability (ΣVP only): one track group + metrics registry per
  // scenario. Built only when collection is on, so the default path hands
  // every component a null pointer — a branch-on-null no-op.
  std::unique_ptr<trace::RunTrace> rt;
  if (config.backend == Backend::kSigmaVp && trace::collecting()) {
    rt = std::make_unique<trace::RunTrace>(
        backend_name(config.backend) + " x" + std::to_string(apps.size()));
    ipc->set_trace(rt.get());
    dispatcher->set_trace(rt.get());
    device->set_trace(rt.get());
  }

  // Fault injection + tolerance (ΣVP only). A zero-fault config builds none
  // of this, so the legacy code paths stay byte-identical.
  const bool faults_on = config.backend == Backend::kSigmaVp && config.fault.enabled();
  std::unique_ptr<FaultPlan> fault_plan;
  std::unique_ptr<FaultStats> fault_stats;
  std::unique_ptr<HealthPolicy> health;
  std::vector<std::unique_ptr<EmulationDriver>> fallback_drivers;
  std::vector<SigmaVpDriver*> sigma_drivers;
  if (faults_on) {
    fault_plan = std::make_unique<FaultPlan>(config.fault);
    fault_stats = std::make_unique<FaultStats>();
    fault_stats->active = true;
    health = std::make_unique<HealthPolicy>(config.recovery, *fault_stats);
    device->set_fault(fault_plan.get(), fault_stats.get());
    ipc->set_fault(fault_plan.get(), fault_stats.get(), health.get(), config.recovery);
    dispatcher->set_fault(fault_plan.get(), fault_stats.get(), health.get(), config.recovery);
    for (SimTime t : config.fault.device_reset_at_us) {
      queue.schedule_at(t, [&d = *dispatcher] { d.inject_device_reset(); });
    }
  }

  // Per-app CPU contexts and drivers. On the paper's 32-core host each VP
  // gets its own core, so CPU contexts run concurrently in simulated time.
  std::vector<std::unique_ptr<Processor>> cpus;
  std::vector<std::unique_ptr<cuda::DeviceDriver>> drivers;
  const bool functional = config.mode == ExecMode::kFunctional;

  for (std::size_t i = 0; i < apps.size(); ++i) {
    const std::string tag = "app" + std::to_string(i);
    switch (config.backend) {
      case Backend::kNativeGpu: {
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".hostcpu",
                                                   calib.host_cpu.effective_ips));
        drivers.push_back(std::make_unique<NativeDriver>(queue, *device, calib.host_cpu));
        break;
      }
      case Backend::kEmulationHostCpu: {
        EmulationConfig ec = calib.emulation_on_host(functional);
        ec.cpu_ips /= calib.emulation_contention(apps.size());
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".hostcpu", ec.cpu_ips));
        drivers.push_back(std::make_unique<EmulationDriver>(*cpus.back(), ec));
        break;
      }
      case Backend::kEmulationOnVp: {
        EmulationConfig ec = calib.emulation_on_vp(functional);
        ec.cpu_ips /= calib.emulation_contention(apps.size());
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".guest", ec.cpu_ips));
        drivers.push_back(std::make_unique<EmulationDriver>(*cpus.back(), ec));
        break;
      }
      case Backend::kSigmaVp: {
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".guest",
                                                   calib.vp.guest_ips(calib.host_cpu)));
        const std::uint32_t ipc_id = ipc->register_vp(tag);
        dispatcher->register_vp();
        auto drv =
            std::make_unique<SigmaVpDriver>(*cpus.back(), *ipc, *device, ipc_id, calib.vp);
        if (faults_on) {
          health->register_vp();
          // Graceful-degradation path: an emulation driver on the guest CPU
          // that borrows the real device's address space, so jobs escalated
          // mid-run keep operating on valid device pointers and data.
          fallback_drivers.push_back(std::make_unique<EmulationDriver>(
              *cpus.back(), calib.emulation_on_vp(functional), device->memory()));
          drv->enable_fallback(fallback_drivers.back().get());
          sigma_drivers.push_back(drv.get());
        }
        drivers.push_back(std::move(drv));
        break;
      }
    }
  }

  if (faults_on) {
    // One escalation funnel for both escalation sources (IPC retry-budget
    // exhaustion and dispatcher launch-retry exhaustion / failed-VP purge):
    // hand the job to its driver's seq-ordered fallback queue.
    auto escalate = [&stats = *fault_stats, &sigma = sigma_drivers](std::uint32_t vp_id,
                                                                    Job job) {
      ++stats.fallback_jobs;
      sigma.at(vp_id)->run_fallback_job(std::move(job));
    };
    ipc->set_escalation(escalate);
    dispatcher->set_escalation(escalate);
    // Every in-order completion release may unblock the next parked
    // fallback job of that VP.
    ipc->set_release_listener(
        [&sigma = sigma_drivers](std::uint32_t vp_id) { sigma.at(vp_id)->pump_fallback(); });
    // When a VP is declared failed, its queued (not yet dispatched) jobs
    // escalate with it so nothing is stranded behind the failure.
    health->on_failed = [&d = *dispatcher](std::uint32_t vp_id) { d.purge_vp(vp_id); };
  }

  // Launch every application — closed-loop AppRun by default, open-loop
  // RequestStream when the instance carries an arrival schedule — and run
  // the timeline to completion. `runs`/`streams` are index-aligned with
  // `apps` (exactly one non-null per slot).
  std::vector<std::shared_ptr<AppRun>> runs(apps.size());
  std::vector<std::shared_ptr<RequestStream>> streams(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (!apps[i].arrivals.empty()) {
      streams[i] = std::make_shared<RequestStream>(queue, *drivers[i], *apps[i].workload,
                                                   apps[i].n, config.mode, apps[i].jitter,
                                                   apps[i].arrivals, apps[i].requests);
      continue;
    }
    const workloads::AppTraits* traits =
        apps[i].traits.has_value() ? &*apps[i].traits : nullptr;
    runs[i] = std::make_shared<AppRun>(queue, *drivers[i], *cpus[i], *apps[i].workload,
                                       apps[i].n, config.mode, traits,
                                       config.async_launches,
                                       config.functional_io && functional, apps[i].jitter);
  }
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (runs[i]) runs[i]->start({});
    if (streams[i]) streams[i]->start({});
  }

  // Periodic fleet capture: a self-rescheduling event that digests every
  // stateful component at a fixed sim-time cadence. The capture event
  // re-arms only while other events remain, so it never keeps the queue
  // alive on its own — the scenario still terminates exactly when the
  // fleet is done. With capture disabled none of this enters the queue,
  // keeping the plain overload byte-identical.
  std::size_t verify_idx = 0;
  if (capture.every_us > 0.0) {
    auto take = std::make_shared<std::function<void()>>();
    *take = [&, take] {
      FleetCapture fc;
      fc.at_us = queue.now();
      fc.events_processed = queue.events_processed();
      snapshot::Writer w;
      queue.capture_state(w);
      if (device) device->capture_state(w, functional);
      if (ipc) ipc->capture_state(w);
      if (dispatcher) dispatcher->capture_state(w);
      for (const auto& cpu : cpus) {
        w.f64(cpu->busy_until());
        w.f64(cpu->busy_total());
      }
      for (std::size_t i = 0; i < apps.size(); ++i) {
        if (streams[i]) {
          streams[i]->capture_state(w);
        } else {
          w.boolean(runs[i]->finished());
          w.f64(runs[i]->finished_at());
          w.u64(runs[i]->kernels_launched());
        }
      }
      if (faults_on) {
        w.u64(fault_stats->retransmits);
        w.u64(fault_stats->duplicates_suppressed);
        w.u64(fault_stats->launch_retries);
        w.u64(fault_stats->fallback_jobs);
        w.u64(fault_stats->unrecovered_jobs);
      }
      fc.digest = w.digest();
      if (verify_idx < capture.expect.size()) {
        const FleetCapture& e = capture.expect[verify_idx];
        if (!(fc == e)) {
          throw snapshot::SnapshotError(
              "fleet capture " + std::to_string(verify_idx) + " diverged from checkpoint: " +
              "expected t=" + std::to_string(e.at_us) + " events=" +
              std::to_string(e.events_processed) + " digest=" + std::to_string(e.digest) +
              ", got t=" + std::to_string(fc.at_us) + " events=" +
              std::to_string(fc.events_processed) + " digest=" + std::to_string(fc.digest));
        }
      }
      ++verify_idx;
      if (out_captures != nullptr) out_captures->push_back(fc);
      if (capture.on_capture) capture.on_capture(fc);
      if (queue.pending() > 0) {
        queue.schedule_at(queue.now() + capture.every_us, *take);
      }
    };
    queue.schedule_at(capture.every_us, *take);
  }

  queue.run();

  if (verify_idx < capture.expect.size()) {
    throw snapshot::SnapshotError(
        "replay produced " + std::to_string(verify_idx) + " fleet captures but the checkpoint " +
        "recorded " + std::to_string(capture.expect.size()) + " — runs diverged");
  }

  // Stall detector: the event queue drained, so if the dispatcher still
  // holds queued or in-flight jobs the system deadlocked — fail loudly with
  // a per-VP diagnostic instead of reporting a bogus "finished" scenario.
  if (dispatcher && !dispatcher->idle()) {
    SIGVP_ASSERT(false, "event queue drained with the dispatcher stalled — " +
                            dispatcher->stall_report());
  }

  ScenarioResult result;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (streams[i]) {
      SIGVP_ASSERT(streams[i]->finished(),
                   "event queue drained but a request stream never finished");
      result.app_done_us.push_back(streams[i]->finished_at());
      result.makespan_us = std::max(result.makespan_us, streams[i]->finished_at());
      // Canonical input order, so the folded histogram is bit-identical for
      // any sweep worker count.
      result.latency.merge(streams[i]->latency());
      result.requests_completed += streams[i]->requests_completed();
      continue;
    }
    const auto& run = runs[i];
    SIGVP_ASSERT(run->finished(), "event queue drained but an app never finished");
    result.app_done_us.push_back(run->finished_at());
    result.makespan_us = std::max(result.makespan_us, run->finished_at());
    if (config.functional_io && functional) result.app_outputs.push_back(run->output_bytes());
  }
  if (dispatcher) {
    result.jobs_dispatched = dispatcher->jobs_dispatched();
    result.reorders = dispatcher->reorders();
    result.coalesced_groups = dispatcher->coalesced_groups();
    result.coalesced_jobs = dispatcher->coalesced_jobs();
  }
  if (ipc) result.ipc_messages = ipc->messages_sent();
  if (device) {
    result.gpu_dynamic_energy_j = device->dynamic_energy_j();
    result.gpu_compute_busy_us = device->compute_busy_us();
    result.gpu_copy_busy_us = device->copy_busy_us();
  }
  if (faults_on) result.fault = *fault_stats;
  if (rt) {
    // Close out run-level gauges; everything here is a pure function of the
    // scenario (sim-domain), so the registry stays deterministic.
    rt->metrics.gauge("run.makespan_us").record_max(result.makespan_us);
    if (result.latency.count > 0) {
      rt->metrics.counter("traffic.requests").value += result.requests_completed;
      rt->metrics.histogram("traffic.request_latency_us", trace::latency_buckets_us())
          .merge(result.latency);
    }
    if (result.makespan_us > 0.0 && device) {
      rt->metrics.gauge("gpu.compute_utilization")
          .record_max(result.gpu_compute_busy_us / result.makespan_us);
      rt->metrics.gauge("gpu.copy_utilization")
          .record_max(result.gpu_copy_busy_us / result.makespan_us);
    }
    result.metrics = std::make_shared<trace::Metrics>(std::move(rt->metrics));
  }
  return result;
}

}  // namespace sigvp
