#include "core/scenario.hpp"

#include <algorithm>
#include <memory>

#include "core/fleet.hpp"
#include "sched/dispatcher.hpp"
#include "snapshot/serial.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace sigvp {

std::string backend_name(Backend backend) {
  switch (backend) {
    case Backend::kNativeGpu: return "native-gpu";
    case Backend::kEmulationHostCpu: return "emulation-host-cpu";
    case Backend::kEmulationOnVp: return "emulation-on-vp";
    case Backend::kSigmaVp: return "sigma-vp";
  }
  return "?";
}

std::vector<AppInstance> replicate(const workloads::Workload& workload, std::uint64_t n,
                                   std::size_t count) {
  std::vector<AppInstance> apps(count);
  for (auto& a : apps) {
    a.workload = &workload;
    a.n = n;
  }
  return apps;
}

ScenarioResult run_scenario(const ScenarioConfig& config, const std::vector<AppInstance>& apps) {
  return run_scenario(config, apps, CaptureOptions{}, nullptr);
}

ScenarioResult run_scenario(const ScenarioConfig& config, const std::vector<AppInstance>& apps,
                            const CaptureOptions& capture,
                            std::vector<FleetCapture>* out_captures) {
  SIGVP_REQUIRE(!apps.empty(), "scenario needs at least one application");
  for (const AppInstance& a : apps) {
    SIGVP_REQUIRE(a.workload != nullptr && a.n > 0, "malformed app instance");
  }

  for (const AppInstance& a : apps) {
    SIGVP_REQUIRE(a.arrivals.empty() || !config.functional_io,
                  "open-loop request streams are timing-only (no functional_io)");
    SIGVP_REQUIRE(a.requests.empty() || a.requests.size() == a.arrivals.size(),
                  "per-request overrides must align with the arrival schedule");
  }

  if (config.host_gpus.size() > 1) {
    // The placement layer lives in the ΣVP dispatcher; other backends have
    // no job queue to place over. Fault injection models one flaky device —
    // combining it with a device *set* is undefined until someone needs it.
    SIGVP_REQUIRE(config.backend == Backend::kSigmaVp,
                  "multiple host GPUs require the ΣVP backend");
    SIGVP_REQUIRE(!config.fault.enabled(),
                  "fault injection supports a single host GPU only");
  }

  SIGVP_REQUIRE(config.fleet.domains >= 1, "fleet.domains must be >= 1");
  if (config.fleet.domains > 1) {
    // Sharded fleet: D scheduler/dispatcher domains over contiguous app
    // slices, advanced between conservative synchronization horizons.
    return run_scenario_sharded(config, apps, capture, out_captures);
  }

  // Single-domain (classic) path: one FleetDomain covering every app —
  // construction, event composition and result assembly are the exact
  // pre-sharding sequences, so results stay byte-identical to every release
  // before the fleet executor existed.
  FleetDomain dom;
  dom.build(config, apps, 0, apps.size(), 0, 1,
            backend_name(config.backend) + " x" + std::to_string(apps.size()));
  dom.start({});

  // Periodic fleet capture: a self-rescheduling event that digests every
  // stateful component at a fixed sim-time cadence. The capture event
  // re-arms only while other events remain, so it never keeps the queue
  // alive on its own — the scenario still terminates exactly when the
  // fleet is done. With capture disabled none of this enters the queue,
  // keeping the plain overload byte-identical.
  std::size_t verify_idx = 0;
  if (capture.every_us > 0.0) {
    auto take = std::make_shared<std::function<void()>>();
    *take = [&, take] {
      FleetCapture fc;
      fc.at_us = dom.queue.now();
      fc.events_processed = dom.queue.events_processed();
      snapshot::Writer w;
      dom.capture_components(w, dom.functional);
      fc.digest = w.digest();
      if (verify_idx < capture.expect.size()) {
        const FleetCapture& e = capture.expect[verify_idx];
        if (!(fc == e)) {
          throw snapshot::SnapshotError(
              "fleet capture " + std::to_string(verify_idx) + " diverged from checkpoint: " +
              "expected t=" + std::to_string(e.at_us) + " events=" +
              std::to_string(e.events_processed) + " digest=" + std::to_string(e.digest) +
              ", got t=" + std::to_string(fc.at_us) + " events=" +
              std::to_string(fc.events_processed) + " digest=" + std::to_string(fc.digest));
        }
      }
      ++verify_idx;
      if (out_captures != nullptr) out_captures->push_back(fc);
      if (capture.on_capture) capture.on_capture(fc);
      if (dom.queue.pending() > 0) {
        dom.queue.schedule_at(dom.queue.now() + capture.every_us, *take);
      }
    };
    dom.queue.schedule_at(capture.every_us, *take);
  }

  dom.queue.run();

  if (verify_idx < capture.expect.size()) {
    throw snapshot::SnapshotError(
        "replay produced " + std::to_string(verify_idx) + " fleet captures but the checkpoint " +
        "recorded " + std::to_string(capture.expect.size()) + " — runs diverged");
  }

  // Stall detector: the event queue drained, so if the dispatcher still
  // holds queued or in-flight jobs the system deadlocked — fail loudly with
  // a per-VP diagnostic instead of reporting a bogus "finished" scenario.
  if (dom.dispatcher && !dom.dispatcher->idle()) {
    SIGVP_ASSERT(false, "event queue drained with the dispatcher stalled — " +
                            dom.dispatcher->stall_report());
  }

  ScenarioResult result;
  dom.append_app_results(result, config.functional_io && dom.functional);
  dom.fold_counters(result);
  if (dom.rt) {
    // Close out run-level gauges; everything here is a pure function of the
    // scenario (sim-domain), so the registry stays deterministic.
    dom.rt->metrics.gauge("run.makespan_us").record_max(result.makespan_us);
    if (result.latency.count > 0) {
      dom.rt->metrics.counter("traffic.requests").value += result.requests_completed;
      dom.rt->metrics.histogram("traffic.request_latency_us", trace::latency_buckets_us())
          .merge(result.latency);
    }
    if (result.makespan_us > 0.0 && dom.device) {
      // Utilization is per device: divide the summed busy time by the
      // declared device count (1 for every legacy scenario).
      const double devs = result.gpus.devices > 0 ? result.gpus.devices : 1.0;
      dom.rt->metrics.gauge("gpu.compute_utilization")
          .record_max(result.gpu_compute_busy_us / (devs * result.makespan_us));
      dom.rt->metrics.gauge("gpu.copy_utilization")
          .record_max(result.gpu_copy_busy_us / (devs * result.makespan_us));
    }
    if (result.gpus.devices > 0) {
      dom.rt->metrics.counter("placement.migrations").value += result.gpus.migrations;
      dom.rt->metrics.counter("placement.migrated_bytes").value += result.gpus.migrated_bytes;
    }
    result.metrics = std::make_shared<trace::Metrics>(std::move(dom.rt->metrics));
  }
  return result;
}

}  // namespace sigvp
