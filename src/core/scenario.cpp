#include "core/scenario.hpp"

#include <algorithm>
#include <memory>

#include "core/app_run.hpp"
#include "ipc/ipc_manager.hpp"
#include "util/check.hpp"
#include "vp/emulation_driver.hpp"
#include "vp/native_driver.hpp"
#include "vp/sigmavp_driver.hpp"

namespace sigvp {

std::string backend_name(Backend backend) {
  switch (backend) {
    case Backend::kNativeGpu: return "native-gpu";
    case Backend::kEmulationHostCpu: return "emulation-host-cpu";
    case Backend::kEmulationOnVp: return "emulation-on-vp";
    case Backend::kSigmaVp: return "sigma-vp";
  }
  return "?";
}

std::vector<AppInstance> replicate(const workloads::Workload& workload, std::uint64_t n,
                                   std::size_t count) {
  std::vector<AppInstance> apps(count);
  for (auto& a : apps) {
    a.workload = &workload;
    a.n = n;
  }
  return apps;
}

ScenarioResult run_scenario(const ScenarioConfig& config, const std::vector<AppInstance>& apps) {
  SIGVP_REQUIRE(!apps.empty(), "scenario needs at least one application");
  for (const AppInstance& a : apps) {
    SIGVP_REQUIRE(a.workload != nullptr && a.n > 0, "malformed app instance");
  }

  EventQueue queue;
  const Calibration& calib = config.calib;

  // Host-side infrastructure (only built when the backend needs it).
  std::unique_ptr<GpuDevice> device;
  std::unique_ptr<IpcManager> ipc;
  std::unique_ptr<Dispatcher> dispatcher;
  const bool needs_gpu =
      config.backend == Backend::kNativeGpu || config.backend == Backend::kSigmaVp;
  if (needs_gpu) {
    device = std::make_unique<GpuDevice>(queue, config.gpu, config.gpu_mem_bytes, "hostGPU");
  }
  if (config.backend == Backend::kSigmaVp) {
    ipc = std::make_unique<IpcManager>(queue, calib.ipc);
    dispatcher = std::make_unique<Dispatcher>(queue, *device, config.dispatch);
    ipc->set_sink([&d = *dispatcher](Job job) { d.submit(std::move(job)); });
  }

  // Per-app CPU contexts and drivers. On the paper's 32-core host each VP
  // gets its own core, so CPU contexts run concurrently in simulated time.
  std::vector<std::unique_ptr<Processor>> cpus;
  std::vector<std::unique_ptr<cuda::DeviceDriver>> drivers;
  const bool functional = config.mode == ExecMode::kFunctional;

  for (std::size_t i = 0; i < apps.size(); ++i) {
    const std::string tag = "app" + std::to_string(i);
    switch (config.backend) {
      case Backend::kNativeGpu: {
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".hostcpu",
                                                   calib.host_cpu.effective_ips));
        drivers.push_back(std::make_unique<NativeDriver>(queue, *device, calib.host_cpu));
        break;
      }
      case Backend::kEmulationHostCpu: {
        EmulationConfig ec = calib.emulation_on_host(functional);
        ec.cpu_ips /= calib.emulation_contention(apps.size());
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".hostcpu", ec.cpu_ips));
        drivers.push_back(std::make_unique<EmulationDriver>(*cpus.back(), ec));
        break;
      }
      case Backend::kEmulationOnVp: {
        EmulationConfig ec = calib.emulation_on_vp(functional);
        ec.cpu_ips /= calib.emulation_contention(apps.size());
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".guest", ec.cpu_ips));
        drivers.push_back(std::make_unique<EmulationDriver>(*cpus.back(), ec));
        break;
      }
      case Backend::kSigmaVp: {
        cpus.push_back(std::make_unique<Processor>(queue, tag + ".guest",
                                                   calib.vp.guest_ips(calib.host_cpu)));
        const std::uint32_t ipc_id = ipc->register_vp(tag);
        dispatcher->register_vp();
        drivers.push_back(
            std::make_unique<SigmaVpDriver>(*cpus.back(), *ipc, *device, ipc_id, calib.vp));
        break;
      }
    }
  }

  // Launch every application and run the timeline to completion.
  std::vector<std::shared_ptr<AppRun>> runs;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const workloads::AppTraits* traits =
        apps[i].traits.has_value() ? &*apps[i].traits : nullptr;
    runs.push_back(std::make_shared<AppRun>(queue, *drivers[i], *cpus[i], *apps[i].workload,
                                            apps[i].n, config.mode, traits,
                                            config.async_launches,
                                            config.functional_io && functional));
  }
  for (auto& run : runs) {
    run->start({});
  }
  queue.run();

  ScenarioResult result;
  for (const auto& run : runs) {
    SIGVP_ASSERT(run->finished(), "event queue drained but an app never finished");
    result.app_done_us.push_back(run->finished_at());
    result.makespan_us = std::max(result.makespan_us, run->finished_at());
    if (config.functional_io && functional) result.app_outputs.push_back(run->output_bytes());
  }
  if (dispatcher) {
    result.jobs_dispatched = dispatcher->jobs_dispatched();
    result.reorders = dispatcher->reorders();
    result.coalesced_groups = dispatcher->coalesced_groups();
    result.coalesced_jobs = dispatcher->coalesced_jobs();
  }
  if (ipc) result.ipc_messages = ipc->messages_sent();
  if (device) {
    result.gpu_dynamic_energy_j = device->dynamic_energy_j();
    result.gpu_compute_busy_us = device->compute_busy_us();
    result.gpu_copy_busy_us = device->copy_busy_us();
  }
  return result;
}

}  // namespace sigvp
