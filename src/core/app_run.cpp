#include "core/app_run.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace sigvp {

AppRun::AppRun(EventQueue& queue, cuda::DeviceDriver& driver, Processor& cpu,
               const workloads::Workload& workload, std::uint64_t n, ExecMode mode,
               const workloads::AppTraits* traits_override, bool async_launches,
               bool functional_io, std::uint64_t jitter)
    : queue_(queue),
      driver_(driver),
      cpu_(cpu),
      workload_(workload),
      n_(n),
      mode_(mode),
      traits_(traits_override != nullptr ? *traits_override : workload.traits),
      async_launches_(async_launches),
      functional_io_(functional_io),
      jitter_(jitter) {
  SIGVP_REQUIRE(n_ > 0, "application size must be positive");
  SIGVP_REQUIRE(traits_.iterations > 0, "application must run at least one iteration");
  SIGVP_REQUIRE(!functional_io_ || mode_ == ExecMode::kFunctional,
                "functional_io requires functional execution mode");
  SIGVP_REQUIRE(workload_.stages.empty() ||
                    traits_.launches_per_iter % workload_.stages.size() == 0,
                "launches_per_iter must cover whole pipeline passes");
}

AppRun::~AppRun() = default;

cuda::LaunchSpec AppRun::make_spec(std::uint32_t launch_index) const {
  cuda::LaunchSpec spec;
  if (!workload_.stages.empty()) {
    const workloads::PipelineStage& st =
        workload_.stages[launch_index % workload_.stages.size()];
    spec.request.kernel = &st.kernel;
    spec.request.dims = st.dims(n_);
    spec.request.args = st.args(buffer_addrs_, n_, jitter_);
    spec.request.mode = mode_;
    if (mode_ == ExecMode::kAnalytic) {
      spec.request.analytic_profile = st.profile(n_);
      spec.request.mem_behavior = st.behavior(n_);
    }
    if (traits_.coalescable && st.coalesce) spec.coalesce = st.coalesce(n_);
    return spec;
  }
  spec.request.kernel = &workload_.kernel;
  spec.request.dims = workload_.dims(n_);
  spec.request.args = workload_.args(buffer_addrs_, n_);
  spec.request.mode = mode_;
  if (mode_ == ExecMode::kAnalytic) {
    spec.request.analytic_profile = workload_.profile(n_);
    spec.request.mem_behavior = workload_.behavior(n_);
  }
  if (traits_.coalescable && workload_.coalesce) {
    spec.coalesce = workload_.coalesce(n_);
  }
  return spec;
}

void AppRun::start(std::function<void(SimTime)> on_done) {
  SIGVP_REQUIRE(!self_, "AppRun already started");
  on_done_ = std::move(on_done);
  self_ = shared_from_this();
  setup();
}

void AppRun::setup() {
  buffer_specs_ = workload_.buffers(n_);
  buffer_addrs_.clear();
  for (const auto& spec : buffer_specs_) {
    buffer_addrs_.push_back(driver_.malloc(spec.bytes));
  }
  if (functional_io_) {
    host_bufs_.clear();
    for (const auto& spec : buffer_specs_) {
      host_bufs_.emplace_back(spec.bytes, std::uint8_t{0});
    }
    if (workload_.fill_inputs) workload_.fill_inputs(n_, host_bufs_);
  }

  // Upload every input buffer sequentially (real payloads under
  // functional_io, timing-only otherwise), then run.
  struct Chain {
    std::shared_ptr<AppRun> run;
    std::size_t index = 0;
    void next() {
      while (index < run->buffer_specs_.size() && !run->buffer_specs_[index].is_input) {
        ++index;
      }
      if (index >= run->buffer_specs_.size()) {
        run->begin_iteration();
        return;
      }
      const std::size_t i = index++;
      auto chain = *this;
      const void* src = run->functional_io_ ? run->host_bufs_[i].data() : nullptr;
      run->driver_.memcpy_h2d(run->buffer_addrs_[i], src, run->buffer_specs_[i].bytes,
                              [chain](SimTime) mutable { chain.next(); });
    }
  };
  Chain{shared_from_this(), 0}.next();
}

void AppRun::begin_iteration() {
  if (iter_ >= traits_.iterations) {
    teardown();
    return;
  }
  launch_in_iter_ = 0;
  auto self = shared_from_this();
  if (traits_.noncuda_guest_instrs > 0) {
    cpu_.run_instrs(traits_.noncuda_guest_instrs, [self](SimTime) { self->do_iter_upload(); });
  } else {
    do_iter_upload();
  }
}

void AppRun::do_iter_upload() {
  auto self = shared_from_this();
  if (traits_.iter_h2d_bytes == 0) {
    do_launch();
    return;
  }
  // Stream fresh data into the first input buffer (clamped to its size).
  std::uint64_t addr = buffer_addrs_.empty() ? 0 : buffer_addrs_[0];
  std::uint64_t cap = buffer_specs_.empty() ? traits_.iter_h2d_bytes : buffer_specs_[0].bytes;
  driver_.memcpy_h2d(addr, nullptr, std::min<std::uint64_t>(traits_.iter_h2d_bytes, cap),
                     [self](SimTime) { self->do_launch(); });
}

void AppRun::do_launch() {
  auto self = shared_from_this();
  if (launch_in_iter_ >= traits_.launches_per_iter) {
    do_iter_download();
    return;
  }
  if (async_launches_ && traits_.launches_per_iter > 1) {
    // Asynchronous invocations: queue the whole cascade, sync once. Stage
    // order within a pass is preserved by the VP's in-order stream, so
    // pipeline data dependencies hold even under cross-VP reordering.
    const std::uint32_t start = launch_in_iter_;
    const std::uint32_t count = traits_.launches_per_iter - launch_in_iter_;
    launch_in_iter_ = traits_.launches_per_iter;
    kernels_launched_ += count;
    for (std::uint32_t i = 0; i < count; ++i) {
      driver_.launch(make_spec(start + i), {});
    }
    driver_.synchronize([self](SimTime) { self->do_iter_download(); });
    return;
  }
  const std::uint32_t launch_index = launch_in_iter_;
  ++launch_in_iter_;
  ++kernels_launched_;
  driver_.launch(make_spec(launch_index),
                 [self](SimTime, const KernelExecStats&) { self->do_launch(); });
}

void AppRun::do_iter_download() {
  auto self = shared_from_this();
  if (traits_.iter_d2h_bytes == 0) {
    finish_iteration();
    return;
  }
  // Read back from the first output buffer.
  std::uint64_t addr = 0;
  std::uint64_t cap = traits_.iter_d2h_bytes;
  for (std::size_t i = 0; i < buffer_specs_.size(); ++i) {
    if (buffer_specs_[i].is_output) {
      addr = buffer_addrs_[i];
      cap = buffer_specs_[i].bytes;
      break;
    }
  }
  driver_.memcpy_d2h(nullptr, addr, std::min<std::uint64_t>(traits_.iter_d2h_bytes, cap),
                     [self](SimTime) { self->finish_iteration(); });
}

void AppRun::finish_iteration() {
  ++iter_;
  begin_iteration();
}

void AppRun::teardown() {
  // Download outputs sequentially, then free and complete.
  struct Chain {
    std::shared_ptr<AppRun> run;
    std::size_t index = 0;
    void next(SimTime now) {
      while (index < run->buffer_specs_.size() && !run->buffer_specs_[index].is_output) {
        ++index;
      }
      if (index >= run->buffer_specs_.size()) {
        for (std::size_t i = 0; i < run->buffer_addrs_.size(); ++i) {
          run->driver_.free(run->buffer_addrs_[i]);
        }
        run->complete(now);
        return;
      }
      const std::size_t i = index++;
      auto chain = *this;
      void* dst = run->functional_io_ ? run->host_bufs_[i].data() : nullptr;
      run->driver_.memcpy_d2h(dst, run->buffer_addrs_[i], run->buffer_specs_[i].bytes,
                              [chain](SimTime end) mutable { chain.next(end); });
    }
  };
  Chain{shared_from_this(), 0}.next(queue_.now());
}

std::vector<std::uint8_t> AppRun::output_bytes() const {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < buffer_specs_.size() && i < host_bufs_.size(); ++i) {
    if (!buffer_specs_[i].is_output) continue;
    out.insert(out.end(), host_bufs_[i].begin(), host_bufs_[i].end());
  }
  return out;
}

void AppRun::complete(SimTime end) {
  finished_ = true;
  finished_at_ = end;
  SIGVP_DEBUG("app") << workload_.app << " finished at " << end / 1e6 << " s";
  auto done = std::move(on_done_);
  auto self = std::move(self_);  // release keep-alive after callback returns
  if (done) done(end);
}

}  // namespace sigvp
