#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cuda/driver.hpp"
#include "sim/event_queue.hpp"
#include "trace/metrics.hpp"
#include "workloads/spec.hpp"
#include "workloads/workload.hpp"

namespace sigvp {

namespace snapshot {
class Writer;
}

/// Open-loop request service for one VP: requests arrive at generator-
/// stamped sim times (independent of prior completions) and are served
/// FIFO — allocate the request's buffers, upload its inputs, chain its
/// pipeline-stage launches (or the single kernel), download its outputs,
/// free. Per-request latency = service completion - arrival, so queueing
/// delay behind a busy VP lands in the histogram exactly as an open-loop
/// load generator would measure it.
///
/// Every latency sample is sim-domain and the arrival schedule is part of
/// the input, so the histogram is a pure function of the instance — the
/// sweep determinism contract (bit-identical at any --workers) extends to
/// the latency percentiles.
class RequestStream : public std::enable_shared_from_this<RequestStream> {
 public:
  /// `requests` may be empty (every arrival runs workload/n/jitter) or have
  /// exactly one entry per arrival (mixed streams from a WorkloadSpec).
  RequestStream(EventQueue& queue, cuda::DeviceDriver& driver,
                const workloads::Workload& workload, std::uint64_t n, ExecMode mode,
                std::uint64_t jitter, std::vector<SimTime> arrivals,
                std::vector<workloads::Request> requests);

  RequestStream(const RequestStream&) = delete;
  RequestStream& operator=(const RequestStream&) = delete;

  /// Schedules every arrival; `on_done` fires when the last request's
  /// results have landed. Keeps itself alive until then.
  void start(std::function<void(SimTime)> on_done);

  bool finished() const { return finished_; }
  SimTime finished_at() const { return finished_at_; }
  std::uint64_t kernels_launched() const { return kernels_launched_; }
  std::uint64_t requests_completed() const { return completed_; }

  /// Latency histogram over the canonical ladder (trace::latency_buckets_us).
  const trace::Histogram& latency() const { return latency_; }

  /// Serializes the stream's service state (pending/served cursors plus the
  /// full latency histogram) for fleet-capture digests.
  void capture_state(snapshot::Writer& w) const;

 private:
  struct Active;  // one in-service request's transient state

  void on_arrival(std::size_t index);
  void begin_next();
  void serve(std::size_t index);
  void finish_request(std::shared_ptr<Active> active, SimTime end);
  workloads::Request resolve(std::size_t index) const;
  cuda::LaunchSpec make_spec(const Active& active, std::size_t stage) const;

  EventQueue& queue_;
  cuda::DeviceDriver& driver_;
  const workloads::Workload& workload_;
  std::uint64_t n_;
  ExecMode mode_;
  std::uint64_t jitter_;
  std::vector<SimTime> arrivals_;
  std::vector<workloads::Request> requests_;

  std::deque<std::size_t> pending_;
  bool busy_ = false;
  std::size_t completed_ = 0;
  std::uint64_t kernels_launched_ = 0;
  trace::Histogram latency_{trace::latency_buckets_us()};
  bool finished_ = false;
  SimTime finished_at_ = 0.0;
  std::function<void(SimTime)> on_done_;
  std::shared_ptr<RequestStream> self_;  // keep-alive during the run
};

}  // namespace sigvp
