#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "sim/event_queue.hpp"

namespace sigvp {

class GpuDevice;
class IpcManager;
class Dispatcher;
class LaunchCache;
class FaultPlan;
class HealthPolicy;
class EmulationDriver;
class SigmaVpDriver;
class Processor;
class AppRun;
class RequestStream;
namespace cuda {
class DeviceDriver;
}
namespace trace {
class RunTrace;
}
namespace snapshot {
class Writer;
}

/// One scheduler/dispatcher domain of a fleet: a private deterministic event
/// queue plus everything that advances on it — GPU device model, IPC
/// manager, re-scheduler/dispatcher with its own job queue and coalescing
/// window, per-VP CPU contexts/drivers, fault machinery, and (in sharded
/// runs) a private launch-cache shard covering the domain's VP slice.
///
/// The classic unsharded scenario is exactly one FleetDomain covering every
/// app; a sharded fleet (FleetConfig::domains >= 2) is D of them over
/// contiguous app slices, advanced between conservative synchronization
/// horizons and stitched by the fabric described by FleetTopology
/// (DESIGN.md §16). All members are domain-local: between barriers a domain
/// is touched by exactly one host thread.
struct FleetDomain {
  FleetDomain();
  ~FleetDomain();  // out-of-line: members hold forward-declared types
  FleetDomain(const FleetDomain&) = delete;
  FleetDomain& operator=(const FleetDomain&) = delete;

  EventQueue queue;
  /// The domain's host GPU complement: one implicit device unless the
  /// scenario declares host_gpus. Owns the per-device launch-cache shards
  /// (sharded runs and multi-GPU sets).
  std::unique_ptr<HostGpuSet> gpus;
  /// Primary device (gpus->primary()); null when the backend needs no GPU.
  /// Single-device call sites keep reading through this pointer.
  GpuDevice* device = nullptr;
  std::unique_ptr<IpcManager> ipc;
  std::unique_ptr<Dispatcher> dispatcher;
  std::unique_ptr<trace::RunTrace> rt;
  std::unique_ptr<FaultPlan> fault_plan;
  std::unique_ptr<FaultStats> fault_stats;
  std::unique_ptr<HealthPolicy> health;
  std::vector<std::unique_ptr<EmulationDriver>> fallback_drivers;
  std::vector<SigmaVpDriver*> sigma_drivers;
  std::vector<std::unique_ptr<Processor>> cpus;
  std::vector<std::unique_ptr<cuda::DeviceDriver>> drivers;
  /// Slice-local (index 0 = app `app_begin`); exactly one non-null per slot.
  std::vector<std::shared_ptr<AppRun>> runs;
  std::vector<std::shared_ptr<RequestStream>> streams;

  bool faults_on = false;
  bool functional = false;
  bool multi_gpu = false;  // scenario declared two or more host GPUs
  std::uint32_t id = 0;
  std::size_t app_begin = 0;
  std::size_t app_end = 0;

  // --- fabric bookkeeping (sharded runs only) --------------------------------
  /// One cross-domain message: a completion report (leaf → root) or its
  /// acknowledgement (root → leaf). Messages are created domain-locally
  /// during a round and routed at the barrier in canonical
  /// (arrival, src, seq) order.
  struct FabricMsg {
    SimTime arrive_us = 0.0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t seq = 0;  // per-source sequence, for the canonical sort
    std::size_t app = 0;    // global app index the message is about
    bool ack = false;
  };
  std::vector<FabricMsg> outbox;
  std::uint64_t fabric_seq = 0;
  std::uint64_t reports_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t reports_received = 0;  // root (domain 0) only
  SimTime fleet_done_us = 0.0;         // root only: last report processed
  std::vector<FleetCapture> captures;  // sharded runs: this domain's chain

  /// Builds the domain over apps [begin, end). Construction order matches
  /// the pre-sharding run_scenario exactly, so a single-domain fleet is
  /// byte-identical to every release before sharding existed. In sharded
  /// fleets (num_domains >= 2) the fault plan is reseeded per domain, the
  /// stall-VP index is remapped into the slice, and the domain gets a
  /// private launch-cache shard instead of the process singleton.
  void build(const ScenarioConfig& config, const std::vector<AppInstance>& apps,
             std::size_t begin, std::size_t end, std::uint32_t domain_id,
             std::uint32_t num_domains, const std::string& trace_label);

  /// Starts every app of the slice. `on_app_done(global_index, done_us)` is
  /// the fabric hook (fires inside this domain's events); pass null for the
  /// classic path to keep it byte-identical (AppRun::start({})).
  void start(const std::function<void(std::size_t, SimTime)>& on_app_done);

  /// Digests every stateful component in the canonical order (queue, device,
  /// IPC, dispatcher, CPUs, apps, fault counters) — the per-domain half of a
  /// fleet capture. `hash_memory` folds the device address space in
  /// (functional scenarios).
  void capture_components(snapshot::Writer& w, bool hash_memory) const;

  /// Appends the slice's app results (done times, makespan, latency,
  /// outputs) to `out` — called in domain order, so the concatenation is the
  /// canonical app order.
  void append_app_results(ScenarioResult& out, bool want_outputs) const;

  /// Adds this domain's component counters (dispatcher, IPC, device, fault)
  /// into `out`.
  void fold_counters(ScenarioResult& out) const;

  /// Deterministic size-based estimate of this domain's resident host
  /// memory: struct sizes plus container capacities (event heap, dispatcher
  /// queue, IPC endpoints, cache shard residency). Modeled device memory is
  /// excluded — it is simulated, not resident.
  std::uint64_t resident_bytes() const;
};

/// The sharded fleet executor (FleetConfig::domains >= 2): partitions apps
/// into contiguous slices, advances every domain's event queue between
/// conservative synchronization horizons (lookahead = the topology's minimum
/// cross-domain flight time) on up to run::fleet_shards() host threads, and
/// merges results in canonical domain order — bit-identical for any
/// `--shards` and `--workers` value.
ScenarioResult run_scenario_sharded(const ScenarioConfig& config,
                                    const std::vector<AppInstance>& apps,
                                    const CaptureOptions& capture,
                                    std::vector<FleetCapture>* out_captures);

}  // namespace sigvp
