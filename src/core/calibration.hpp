#pragma once

#include "ipc/ipc_manager.hpp"
#include "vp/emulation_driver.hpp"
#include "vp/processor.hpp"

namespace sigvp {

/// Central calibration record for the whole framework.
///
/// Every constant is either taken from a public datasheet (GPU architecture
/// parameters live in gpu/arch.cpp) or derived from the paper's own Table 1,
/// as follows:
///
///   Table 1 (matmul 320x320 FP64, 300 invocations)      time (ms)   ratio
///     CUDA / GPU                                          170.79      1.00
///     CUDA / emulated on CPU                             9141.51     53.52
///     CUDA / emulated on VP                            374534.34   2192.95
///     CUDA / ΣVP (this work)                              568.12      3.32
///     C    / CPU                                         8213.09     48.09
///     C    / VP                                        269874.03   1580.15
///
///   - binary-translation slowdown = 269874.03 / 8213.09 = 32.86
///   - emulator overhead vs plain C = 9141.51 / 8213.09  = 1.113
///   - emulator ISA expansion under translation
///       = (374534.34 / 9141.51) / 32.86                 = 1.247
///   - host CPU effective ips calibrated so the C row lands near 8213 ms
///   - IPC transport calibrated so the ΣVP row lands near 3.3× native.
struct Calibration {
  HostCpuConfig host_cpu{};
  VpConfig vp{};
  IpcCostModel ipc = IpcCostModel::shared_memory();

  /// Emulation cost model for the Mesa-style emulator on the native host CPU
  /// (Table 1 row "CUDA / Emul. on CPU").
  EmulationConfig emulation_on_host(bool functional) const {
    EmulationConfig e;
    e.cpu_ips = host_cpu.effective_ips;
    e.overhead = 1.113;
    e.memcpy_gbps = host_cpu.memcpy_gbps;
    e.per_call_us = 2.0;
    e.functional = functional;
    return e;
  }

  /// Emulation cost model inside a VP under binary translation
  /// (Table 1 row "CUDA / Emul. on VP"; the baseline of Fig. 11).
  EmulationConfig emulation_on_vp(bool functional) const {
    EmulationConfig e = emulation_on_host(functional);
    e.cpu_ips = host_cpu.effective_ips / (vp.bt_slowdown * vp.emul_isa_expansion);
    e.memcpy_gbps = host_cpu.memcpy_gbps / vp.bt_slowdown;
    e.per_call_us = 2.0 * vp.bt_slowdown;
    return e;
  }

  /// Host-core oversubscription when several VPs emulate GPUs concurrently:
  /// each QEMU instance runs a Mesa-style emulator that spawns roughly one
  /// worker thread per host core, so N simultaneous VPs contend for the
  /// 32-core machine and each one slows down. Linear contention model,
  /// calibrated so the 8-VP baseline of Fig. 11 matches the paper's bars
  /// while the single-VP Table 1 numbers are untouched.
  double emulation_contention(std::size_t num_vps) const {
    if (num_vps <= 1) return 1.0;
    return 1.0 + 0.3 * static_cast<double>(num_vps - 1);
  }
};

}  // namespace sigvp
