#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_stats.hpp"
#include "gpu/arch.hpp"
#include "gpu/device.hpp"
#include "gpu/host_gpu_set.hpp"
#include "sched/dispatcher.hpp"
#include "sched/placement.hpp"
#include "trace/metrics.hpp"
#include "workloads/spec.hpp"
#include "workloads/workload.hpp"

namespace sigvp {

/// Which execution backend serves the applications' GPU calls.
enum class Backend {
  /// The application runs natively on the host CPU and uses the host GPU
  /// through the vendor driver (paper Table 1 baseline).
  kNativeGpu,
  /// Software GPU emulation on the native host CPU (Fig. 1(a) without a VP).
  kEmulationHostCpu,
  /// Software GPU emulation inside a VP under binary translation —
  /// the paper's Fig. 1(a) and the blue bars of Fig. 11.
  kEmulationOnVp,
  /// ΣVP: guest stack → IPC → Job Queue → Re-scheduler → host GPU
  /// (Fig. 1(b)/Fig. 2); DispatchConfig picks plain multiplexing or the
  /// optimized variant with Kernel Interleaving / Kernel Coalescing.
  kSigmaVp,
};

std::string backend_name(Backend backend);

/// One application instance in a scenario.
struct AppInstance {
  const workloads::Workload* workload = nullptr;
  std::uint64_t n = 0;
  /// Replaces the workload's default traits (iterations, copies, ...).
  std::optional<workloads::AppTraits> traits;

  /// Per-VP scalar-jitter seed for pipeline-stage arguments (0 = canonical
  /// scalars). Passed through to every stage's jitter-aware args builder.
  std::uint64_t jitter = 0;

  /// Non-empty switches this instance from the closed-loop AppRun lifecycle
  /// to an open-loop RequestStream: one request per entry, submitted at the
  /// given ascending sim time regardless of prior completions, with
  /// per-request latency (completion - arrival) recorded into
  /// ScenarioResult::latency. Incompatible with `functional_io`.
  std::vector<SimTime> arrivals;

  /// Optional per-request overrides, aligned with `arrivals` (same length):
  /// mixed request streams from a WorkloadSpec. Empty = every request runs
  /// (workload, n, jitter) above.
  std::vector<workloads::Request> requests;
};

/// Sharded-fleet model (DESIGN.md §16): how many scheduler/dispatcher
/// domains the fleet is partitioned into and how the host-side fabric
/// stitches them together.
///
/// This is a *semantic* knob: it changes what system is simulated (D job
/// queues, D coalescing windows, D launch-cache shards, fabric latency on
/// cross-domain completion traffic), so it is part of the scenario
/// fingerprint. How many host threads advance those domains is the
/// *execution-only* `--shards` / SIGVP_SHARDS knob (run::set_fleet_shards),
/// which never changes a result byte.
struct FleetConfig {
  /// Number of scheduler/dispatcher domains. 1 (the default) is the classic
  /// unsharded fleet — byte-identical to every release before sharding
  /// existed. >= 2 requires Backend::kSigmaVp and at most one domain per
  /// app; apps are partitioned into contiguous, near-equal slices.
  std::uint32_t domains = 1;

  /// Fabric topology spec (see sim/topology.hpp); "" = flat star.
  std::string topology;

  /// Default per-edge fabric latency (µs); individual edges may override it
  /// in the topology spec. Also the conservative lookahead floor.
  SimTime edge_latency_us = 50.0;
};

struct ScenarioConfig {
  Backend backend = Backend::kSigmaVp;
  DispatchConfig dispatch;   // ΣVP only
  Calibration calib;
  FleetConfig fleet;         // ΣVP only when fleet.domains >= 2
  GpuArch gpu = make_quadro4000();
  std::uint64_t gpu_mem_bytes = 2ull * 1024 * 1024 * 1024;

  /// Declared host GPU complement (ΣVP backend only). Empty — the default —
  /// means one implicit device built from `gpu` + `gpu_mem_bytes` above,
  /// byte-identical to every release before multi-GPU existed. Two or more
  /// specs (heterogeneous mixes allowed) turn on the placement layer:
  /// per-device dispatcher lanes, launch-cache shards and trace tracks, VPs
  /// placed by `placement`. Requires Backend::kSigmaVp and no fault plan.
  std::vector<HostGpuSpec> host_gpus;

  /// VP↔device placement policy; only consulted when `host_gpus` declares
  /// two or more devices. Part of the scenario fingerprint.
  PlacementConfig placement;

  ExecMode mode = ExecMode::kAnalytic;

  /// Submit each iteration's kernel cascade asynchronously (stream-style)
  /// instead of call-by-call. This is the invocation mode the Re-scheduler's
  /// asynchronous reordering (paper Fig. 4(a)) operates on; the optimized
  /// ΣVP scenario of Fig. 11 enables it together with interleave/coalesce.
  bool async_launches = false;

  /// Deterministic fault-injection plan (ΣVP backend only). The default —
  /// a zero-fault plan — leaves every code path byte-identical to a build
  /// without the fault layer; an enabled plan arms the lossy transport, the
  /// flaky device and the recovery machinery configured by `recovery`.
  FaultConfig fault;
  RecoveryConfig recovery;

  /// Functional mode only: carry real data through the full scenario path.
  /// Each app fills host input buffers (workload.fill_inputs when present,
  /// zeros otherwise), the setup h2d copies upload the actual bytes, and the
  /// teardown d2h copies read the device results back; ScenarioResult then
  /// exposes each app's output bytes. This is what makes cross-backend
  /// differential testing possible: kSigmaVp and kEmulationOnVp must return
  /// byte-identical outputs for the same inputs.
  bool functional_io = false;
};

/// Sharded-fleet observables; `domains == 0` means the scenario ran the
/// classic unsharded path and the whole block is absent from JSON/snapshot
/// comparisons of legacy runs.
struct FleetStats {
  std::uint32_t domains = 0;
  SimTime lookahead_us = 0.0;        // conservative horizon increment
  std::uint64_t sync_rounds = 0;     // barrier rounds the executor ran
  std::uint64_t fabric_messages = 0; // completion reports + acks routed
  std::uint64_t fabric_hops = 0;     // summed edge traversals of the above
  /// Sim time at which the root (domain 0) has processed the completion
  /// report of every app — the fleet-level "all done" instant, later than
  /// makespan_us by the fabric flight time of the final report.
  SimTime fleet_done_us = 0.0;
  /// Deterministic size-based estimate of peak resident fleet state (VP
  /// structs, event heaps, dispatcher queues, cache shards) — the honest
  /// denominator behind bench/fleet_scale's bytes-per-VP. Also recorded as
  /// the `fleet.resident_bytes` metrics gauge when collection is on.
  std::uint64_t resident_bytes = 0;
  /// Per-domain launch-cache shard activity, summed in domain order.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  bool operator==(const FleetStats&) const = default;
};

/// One declared host device's share of a multi-GPU run.
struct GpuDeviceStats {
  std::string arch;               // GpuArch::name of the declared spec
  std::uint32_t vps = 0;          // VPs assigned at end of run
  std::uint64_t jobs = 0;         // jobs dispatched through this device's lane
  std::uint64_t kernels = 0;      // kernel launches the device executed
  SimTime compute_busy_us = 0.0;
  SimTime copy_busy_us = 0.0;
  double energy_j = 0.0;

  bool operator==(const GpuDeviceStats&) const = default;
};

/// Multi-GPU placement observables; `devices == 0` means the scenario ran
/// with the single implicit host GPU and the whole block is absent from
/// JSON/snapshot comparisons of legacy runs.
struct MultiGpuStats {
  std::uint32_t devices = 0;
  std::uint64_t migrations = 0;      // VP moves the affinity policy made
  std::uint64_t migrated_bytes = 0;  // working-set bytes those moves restaged
  std::vector<GpuDeviceStats> per_device;

  bool operator==(const MultiGpuStats&) const = default;
};

struct ScenarioResult {
  /// Completion time of the last application (the number the paper's
  /// Fig. 11 reports per app: "time for completing all the executions").
  SimTime makespan_us = 0.0;
  std::vector<SimTime> app_done_us;

  // ΣVP-path statistics.
  std::uint64_t jobs_dispatched = 0;
  std::uint64_t reorders = 0;
  std::uint64_t coalesced_groups = 0;
  std::uint64_t coalesced_jobs = 0;
  std::uint64_t ipc_messages = 0;
  double gpu_dynamic_energy_j = 0.0;
  SimTime gpu_compute_busy_us = 0.0;
  SimTime gpu_copy_busy_us = 0.0;

  /// Fault-injection and recovery counters; `fault.active` is false (and
  /// every counter zero) unless the scenario ran with an enabled FaultConfig.
  FaultStats fault;

  /// Sharded-fleet observables; inert (domains == 0) on the unsharded path.
  FleetStats fleet;

  /// Multi-GPU observables; inert (devices == 0) unless the scenario
  /// declared host_gpus.
  MultiGpuStats gpus;

  /// Per app: the concatenated bytes of its output buffers after teardown.
  /// Populated only when `ScenarioConfig::functional_io` is set.
  std::vector<std::vector<std::uint8_t>> app_outputs;

  /// Per-request latency histogram (sim µs, completion - arrival) over all
  /// open-loop request streams, folded in canonical app order. Empty
  /// (count == 0) when no instance carried arrivals — the classic AppRun
  /// path never touches it. Always populated for traffic scenarios, with or
  /// without trace collection: latency percentiles are a first-class result,
  /// not an observability extra.
  trace::Histogram latency{trace::latency_buckets_us()};
  std::uint64_t requests_completed = 0;

  /// Deterministic sim-domain metrics for this run (queue depths, job
  /// latency histograms, scheduler decisions, cache outcomes). Null unless
  /// collection was on (`trace::collecting()`) when the scenario ran.
  std::shared_ptr<trace::Metrics> metrics;
};

/// One deterministic mid-run observation of the whole fleet: taken at a
/// fixed sim time, it digests every stateful component (event clock, GPU
/// engines/streams/allocator, IPC endpoints, re-scheduler queue and
/// coalescing window, CPU engines, request streams — and, in functional
/// mode, the full device address-space content). Because a scenario is a
/// pure function of its inputs, re-executing the same job MUST reproduce
/// the same digest sequence — which is how a resumed run proves it walked
/// through the exact states the interrupted run checkpointed.
struct FleetCapture {
  SimTime at_us = 0.0;
  std::uint64_t events_processed = 0;
  std::uint64_t digest = 0;

  bool operator==(const FleetCapture&) const = default;
};

/// Periodic fleet-capture configuration for run_scenario.
struct CaptureOptions {
  /// Sim-time cadence between captures (µs); <= 0 disables capturing.
  SimTime every_us = 0.0;

  /// Replay verification: the capture sequence recorded by a previous run
  /// of the same job. Each new capture must match the corresponding entry
  /// (position, time, event count and digest) or run_scenario throws —
  /// a restored run that diverges from its checkpoint is detected at the
  /// first capture point, not at the final result diff.
  std::vector<FleetCapture> expect;

  /// Invoked after each capture is taken (and verified): the checkpoint
  /// publication hook. Runs on the scenario's thread, mid-simulation.
  std::function<void(const FleetCapture&)> on_capture;
};

/// Builds the full system for `config`, runs every app instance to
/// completion on the discrete-event timeline, and reports the schedule.
ScenarioResult run_scenario(const ScenarioConfig& config, const std::vector<AppInstance>& apps);

/// Capture-enabled variant: additionally takes a FleetCapture every
/// `capture.every_us` of sim time, appending to `out_captures` (may be
/// null). The no-capture overload above is byte-identical to this one with
/// a disabled CaptureOptions — the capture event never enters the queue.
ScenarioResult run_scenario(const ScenarioConfig& config, const std::vector<AppInstance>& apps,
                            const CaptureOptions& capture,
                            std::vector<FleetCapture>* out_captures);

/// Convenience: `count` identical instances of one workload at size n.
std::vector<AppInstance> replicate(const workloads::Workload& workload, std::uint64_t n,
                                   std::size_t count);

}  // namespace sigvp
