// Quickstart: run a GPU application inside one virtual platform, forwarded
// to the (simulated) host GPU through the full ΣVP stack:
//
//   app → GPU user library → guest driver → virtual GPU model → IPC →
//   job queue → re-scheduler → host GPU device model → back.
//
// The kernel executes functionally — the results read back are real — and
// every step is charged simulated time, so the same run yields both the
// numerical output and the simulated wall clock.

#include <cstdio>
#include <vector>

#include "core/calibration.hpp"
#include "cuda/runtime.hpp"
#include "gpu/device.hpp"
#include "ipc/ipc_manager.hpp"
#include "sched/dispatcher.hpp"
#include "vp/sigmavp_driver.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace sigvp;

  // --- build the host: event queue, GPU model, IPC, re-scheduler -------------
  EventQueue queue;
  GpuDevice gpu(queue, make_quadro4000(), 1ull << 30, "hostGPU");
  Calibration calib;
  IpcManager ipc(queue, calib.ipc);
  DispatchConfig dispatch;
  dispatch.interleave = true;
  Dispatcher dispatcher(queue, gpu, dispatch);
  ipc.set_sink([&](Job job) { dispatcher.submit(std::move(job)); });

  // --- build one virtual platform with the ΣVP guest stack --------------------
  Processor guest(queue, "vp0.guest", calib.vp.guest_ips(calib.host_cpu));
  const std::uint32_t vp_id = ipc.register_vp("vp0");
  dispatcher.register_vp();
  SigmaVpDriver driver(guest, ipc, gpu, vp_id, calib.vp);
  cuda::Runtime rt(queue, driver);  // the CUDA-like user library

  // --- the application: vectorAdd, exactly as it would use the real API ------
  const workloads::Workload w = workloads::make_vector_add();
  const std::uint64_t n = 1 << 12;

  const std::uint64_t d_a = rt.malloc(4 * n);
  const std::uint64_t d_b = rt.malloc(4 * n);
  const std::uint64_t d_c = rt.malloc(4 * n);

  std::vector<float> a(n), b(n), c(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    a[i] = 0.001f * static_cast<float>(i);
    b[i] = 1.0f;
  }
  rt.memcpy_h2d(d_a, a.data(), 4 * n);
  rt.memcpy_h2d(d_b, b.data(), 4 * n);

  cuda::LaunchSpec spec;
  spec.request.kernel = &w.kernel;
  spec.request.dims = w.dims(n);
  spec.request.args = w.args({d_a, d_b, d_c}, n);
  spec.request.mode = ExecMode::kFunctional;
  const KernelExecStats stats = rt.launch(spec);

  rt.memcpy_d2h(c.data(), d_c, 4 * n);
  rt.synchronize();

  // --- results -----------------------------------------------------------------
  bool ok = true;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (c[i] != a[i] + b[i]) ok = false;
  }
  std::printf("vectorAdd over %llu elements: %s\n", static_cast<unsigned long long>(n),
              ok ? "results correct" : "RESULTS WRONG");
  std::printf("kernel: %llu dynamic instructions, %.0f device cycles, %.1f us on %s\n",
              static_cast<unsigned long long>(stats.sigma.total()), stats.total_cycles,
              stats.duration_us, gpu.arch().name.c_str());
  std::printf("simulated wall clock for the whole run: %.3f ms\n",
              ms_from_us(queue.now()));
  std::printf("IPC messages exchanged: %llu, guest CPU busy: %.3f ms\n",
              static_cast<unsigned long long>(ipc.messages_sent()),
              ms_from_us(guest.busy_total()));
  return ok ? 0 : 1;
}
