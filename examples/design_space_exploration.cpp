// Design-space exploration: the paper's §4 use case. Profile a kernel ONCE
// on the host GPU, then — without ever executing on the candidates —
// estimate execution time and power for a family of embedded-GPU designs
// (varying SM count and clock around the Tegra K1 baseline) using
// Profile-Based Execution Analysis.
//
// The profiling run happens once, serially; the per-candidate estimations
// are independent and fan out across host cores with parallel_for
// (--workers N bounds the pool). Rows land in indexed slots, so the table
// is identical for any worker count.

#include <cstdio>
#include <vector>

#include "estimate/estimator.hpp"
#include "gpu/offline.hpp"
#include "mem/allocator.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace sigvp;
  const run::SweepCli cli = run::parse_sweep_cli(argc, argv, "");
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "BlackScholes");
  const std::uint64_t n = w.estimate_n ? w.estimate_n : w.test_n;
  const GpuArch host = make_quadro4000();

  // --- step 1-2 (paper Fig. 7): run once on the host GPU and profile it ------
  AddressSpace mem(512ull * 1024 * 1024, "m");
  FreeListAllocator alloc(4096, mem.size() - 4096);
  std::vector<std::uint64_t> addrs;
  const auto bufs = w.buffers(n);
  for (const auto& b : bufs) addrs.push_back(*alloc.allocate(b.bytes));
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    if (!bufs[i].is_input) continue;
    for (std::uint64_t off = 0; off + 4 <= bufs[i].bytes; off += 4) {
      mem.write<float>(addrs[i] + off, 0.6f);
    }
  }
  const LaunchEvaluation profiled =
      evaluate_functional(host, w.kernel, w.dims(n), w.args(addrs, n), mem);
  std::printf("Profiled %s (%llu elems) once on %s: %llu instructions, %.0f cycles\n\n",
              w.app.c_str(), static_cast<unsigned long long>(n), host.name.c_str(),
              static_cast<unsigned long long>(profiled.stats.sigma.total()),
              profiled.stats.total_cycles);

  // --- steps 3-5: estimate over the embedded-GPU design space ----------------
  struct Candidate {
    const char* name;
    std::uint32_t sms;
    double clock;
  };
  const std::vector<Candidate> candidates = {{"K1-lowpower", 1, 0.60},
                                             {"K1-baseline", 1, 0.85},
                                             {"K1-boost", 1, 1.00},
                                             {"2xSMX", 2, 0.85},
                                             {"4xSMX-halfclock", 4, 0.45}};
  struct Estimate {
    double time_ms = 0.0;
    double power_w = 0.0;
    double energy_mj = 0.0;
  };
  std::vector<Estimate> estimates(candidates.size());
  {
    run::ThreadPool pool(cli.workers == 0 ? run::ThreadPool::default_workers()
                                          : cli.workers);
    run::parallel_for(pool, candidates.size(), [&](std::size_t idx) {
      const Candidate& cand = candidates[idx];
      GpuArch target = make_tegrak1();
      target.name = cand.name;
      target.num_sms = cand.sms;
      target.clock_ghz = cand.clock;
      // Static power scales with area (SM count); dynamic energy per
      // instruction is voltage/frequency dependent — first-order model.
      target.static_power_w *= cand.sms;

      ProfileBasedEstimator est(host, target);
      EstimationInput in;
      in.kernel = &w.kernel;
      in.dims = w.dims(n);
      in.lambda = profiled.profile.block_visits;
      in.host_stats = profiled.stats;
      in.behavior = w.behavior(n);
      const TimingEstimates timing = est.estimate_time(in);
      const double power = est.estimate_power_w(in, timing);
      estimates[idx] = Estimate{ms_from_us(timing.et_c2_us), power,
                                power * s_from_us(timing.et_c2_us) * 1e3};
    });
  }

  TablePrinter t({"Candidate", "SMs", "Clock (GHz)", "Est. time (ms)", "Est. power (W)",
                  "Energy (mJ)"});
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    t.add_row({candidates[i].name, fmt_int(candidates[i].sms),
               fmt_fixed(candidates[i].clock, 2), fmt_fixed(estimates[i].time_ms, 3),
               fmt_fixed(estimates[i].power_w, 2), fmt_fixed(estimates[i].energy_mj, 3)});
  }
  std::printf("Estimated execution on candidate embedded GPUs (C'' model):\n\n");
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nNo candidate was ever executed: every row derives from the single\n"
              "host-GPU profile plus per-ISA compilation info — the paper's key\n"
              "productivity claim for simulation-driven design-space exploration.\n");
  return 0;
}
