// Custom kernel: write your own GPU kernel against the IR builder (the
// "CUDA source" of this framework), validate it functionally on the device
// model, inspect its disassembly and profile, and see Kernel Coalescing run
// it for three virtual platforms in one merged launch.

#include <cstdio>
#include <sstream>

#include "ir/builder.hpp"
#include "ir/disasm.hpp"
#include "sched/dispatcher.hpp"
#include "util/table.hpp"

using namespace sigvp;

// saxpy: y[i] = alpha * x[i] + y[i], guarded for partial final blocks.
static KernelIR make_saxpy() {
  KernelBuilder b("saxpy", 4);
  const auto px = b.reg(), py = b.reg(), alpha = b.reg(), n = b.reg();
  b.block("entry");
  b.ld_param(px, 0);
  b.ld_param(py, 1);
  b.ld_param(alpha, 2);
  b.ld_param(n, 3);

  const auto ctaid = b.reg(), ntid = b.reg(), tid = b.reg(), gid = b.reg(), cond = b.reg();
  b.special(ctaid, SpecialReg::kCtaidX);
  b.special(ntid, SpecialReg::kNtidX);
  b.special(tid, SpecialReg::kTidX);
  b.mul_i(gid, ctaid, ntid);
  b.add_i(gid, gid, tid);
  b.set_lt_i(cond, gid, n);
  b.bra_z(cond, "exit");

  b.block("body");
  const auto xaddr = b.reg(), yaddr = b.reg(), x = b.reg(), y = b.reg();
  b.addr_of(xaddr, px, gid, 2);
  b.addr_of(yaddr, py, gid, 2);
  b.ld_global_f32(x, xaddr);
  b.ld_global_f32(y, yaddr);
  b.fma_f32(y, alpha, x, y);
  b.st_global_f32(y, yaddr);
  b.ret();

  b.block("exit");
  b.ret();
  return b.build();
}

int main() {
  const KernelIR saxpy = make_saxpy();
  std::printf("=== disassembly ===\n%s\n", disassemble(saxpy).c_str());

  // Run it for three VPs through the re-scheduler with Kernel Coalescing:
  // three requests, one merged launch, per-VP results scattered back.
  EventQueue q;
  GpuDevice gpu(q, make_quadro4000(), 256ull << 20, "gpu");
  DispatchConfig cfg;
  cfg.interleave = true;
  cfg.coalesce = true;
  cfg.coalesce_window_us = 5.0;
  cfg.coalesce_eager_peers = 2;
  cfg.dispatch_overhead_us = 0.0;  // keep the demo timeline readable
  Dispatcher disp(q, gpu, cfg);

  const std::uint64_t n = 1000;
  struct Vp {
    std::uint64_t x, y;
    float alpha;
  };
  std::vector<Vp> vps;
  for (std::uint32_t v = 0; v < 3; ++v) {
    Vp vp{gpu.malloc(4 * n), gpu.malloc(4 * n), 2.0f};
    for (std::uint64_t i = 0; i < n; ++i) {
      gpu.memory().write<float>(vp.x + 4 * i, static_cast<float>(i));
      gpu.memory().write<float>(vp.y + 4 * i, static_cast<float>(v));
    }
    vps.push_back(vp);
    disp.register_vp();
  }

  // NOTE: coalescing requires a uniform scalar argument (alpha) across the
  // group — that is part of the Kernel Match key in a real deployment; here
  // all VPs use alpha = 2.
  for (std::uint32_t v = 0; v < 3; ++v) {
    Job j;
    j.vp_id = v;
    j.seq_in_vp = 0;
    j.kind = JobKind::kKernel;
    j.launch.request.kernel = &saxpy;
    j.launch.request.dims = LaunchDims{(static_cast<std::uint32_t>(n) + 255) / 256, 1, 256, 1};
    j.launch.request.mode = ExecMode::kFunctional;
    j.launch.request.args.push_ptr(vps[v].x);
    j.launch.request.args.push_ptr(vps[v].y);
    j.launch.request.args.push_f32(vps[v].alpha);
    j.launch.request.args.push_i64(static_cast<std::int64_t>(n));
    j.launch.coalesce.eligible = true;
    j.launch.coalesce.key = "saxpy.f32.alpha2";
    j.launch.coalesce.elems = n;
    j.launch.coalesce.buffers = {{0, 4, false}, {1, 4, true}};
    j.launch.coalesce.size_arg_index = 3;
    j.launch.coalesce.block_x = 256;
    disp.submit(std::move(j));
  }
  q.run();

  bool ok = true;
  for (std::uint32_t v = 0; v < 3; ++v) {
    for (std::uint64_t i = 0; i < n; i += 111) {
      const float expect = 2.0f * static_cast<float>(i) + static_cast<float>(v);
      if (gpu.memory().read<float>(vps[v].y + 4 * i) != expect) ok = false;
    }
  }
  std::printf("3 VPs coalesced into %llu merged launch(es); results %s\n",
              static_cast<unsigned long long>(disp.coalesced_groups()),
              ok ? "correct for every VP" : "WRONG");
  std::printf("simulated time: %.1f us; kernels actually launched on the GPU: %llu\n",
              q.now(), static_cast<unsigned long long>(gpu.kernels_launched()));
  return ok ? 0 : 1;
}
