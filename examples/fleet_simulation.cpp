// Fleet simulation: the paper's headline use case — many embedded devices,
// each a virtual platform with its own GPU application, simulated
// concurrently against one host GPU. Compares software GPU emulation with
// plain and optimized ΣVP multiplexing for a mixed-application fleet.
//
// The three configurations are independent simulations, so they run as one
// sweep (fleet_simulation [--workers N] [--json PATH]); the comparison is
// also written as a machine-readable JSON report.

#include <cstdio>

#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace sigvp;
  const run::SweepCli cli =
      run::parse_sweep_cli(argc, argv, "BENCH_fleet_simulation.json");
  const auto suite = workloads::make_suite();

  // A heterogeneous 8-device fleet (e.g. a distributed gaming scenario, the
  // paper's netShip-style motivation): physics, vision, finance, sorting.
  std::vector<AppInstance> fleet;
  for (const char* app : {"nbody", "smokeParticles", "SobelFilter", "stereoDisparity",
                          "BlackScholes", "MonteCarlo", "mergeSort", "simpleGL"}) {
    const workloads::Workload& w = workloads::find(suite, app);
    fleet.push_back(AppInstance{&w, w.default_n, std::nullopt});
  }

  auto make_job = [&](const char* name, Backend backend, bool optimized) {
    run::SweepJob job;
    job.name = name;
    job.config.backend = backend;
    job.config.mode = ExecMode::kAnalytic;
    if (optimized) {
      job.config.dispatch.interleave = true;
      job.config.dispatch.coalesce = true;
      job.config.async_launches = true;
    }
    job.apps = fleet;
    return job;
  };

  std::printf("Simulating an 8-device fleet (one app per virtual platform)...\n\n");
  const run::SweepRunner runner(cli.workers);
  const run::SweepResult sweep = runner.run({
      make_job("emulation", Backend::kEmulationOnVp, false),
      make_job("sigmavp", Backend::kSigmaVp, false),
      make_job("sigmavp-opt", Backend::kSigmaVp, true),
  });
  const ScenarioResult& emul = sweep.find("emulation").result;
  const ScenarioResult& plain = sweep.find("sigmavp").result;
  const ScenarioResult& opt = sweep.find("sigmavp-opt").result;

  std::printf("%-28s %14s\n", "configuration", "makespan");
  std::printf("%-28s %11.1f s\n", "GPU emulation on the VPs", s_from_us(emul.makespan_us));
  std::printf("%-28s %11.1f s   (%.0fx faster)\n", "SigmaVP multiplexing",
              s_from_us(plain.makespan_us), sweep.speedup("sigmavp", "emulation"));
  std::printf("%-28s %11.1f s   (%.0fx faster)\n", "SigmaVP + optimizations",
              s_from_us(opt.makespan_us), sweep.speedup("sigmavp-opt", "emulation"));

  std::printf("\nPer-device completion under optimized SigmaVP:\n");
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    std::printf("  vp%zu %-22s %8.1f s\n", i, fleet[i].workload->app.c_str(),
                s_from_us(opt.app_done_us[i]));
  }
  std::printf("\nhost GPU: compute busy %.1f s, copy busy %.1f s, %llu jobs, "
              "%llu reorders, %llu coalesced groups\n",
              s_from_us(opt.gpu_compute_busy_us), s_from_us(opt.gpu_copy_busy_us),
              static_cast<unsigned long long>(opt.jobs_dispatched),
              static_cast<unsigned long long>(opt.reorders),
              static_cast<unsigned long long>(opt.coalesced_groups));
  std::printf("host GPU energy (dynamic): %.1f J\n", opt.gpu_dynamic_energy_j);

  write_sweep_json(sweep, "fleet_simulation", cli.json_path);
  std::printf("\n[sweep] %zu scenarios on %zu workers in %.0f ms -> %s\n",
              sweep.jobs.size(), sweep.workers, sweep.wall_ms, cli.json_path.c_str());
  return 0;
}
