// Fleet simulation: the paper's headline use case — many embedded devices,
// each a virtual platform with its own GPU application, simulated
// concurrently against one host GPU. Compares software GPU emulation with
// plain and optimized ΣVP multiplexing for a mixed-application fleet.

#include <cstdio>

#include "core/scenario.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace sigvp;
  const auto suite = workloads::make_suite();

  // A heterogeneous 8-device fleet (e.g. a distributed gaming scenario, the
  // paper's netShip-style motivation): physics, vision, finance, sorting.
  std::vector<AppInstance> fleet;
  for (const char* app : {"nbody", "smokeParticles", "SobelFilter", "stereoDisparity",
                          "BlackScholes", "MonteCarlo", "mergeSort", "simpleGL"}) {
    const workloads::Workload& w = workloads::find(suite, app);
    fleet.push_back(AppInstance{&w, w.default_n, std::nullopt});
  }

  auto run = [&](Backend backend, bool optimized) {
    ScenarioConfig cfg;
    cfg.backend = backend;
    cfg.mode = ExecMode::kAnalytic;
    if (optimized) {
      cfg.dispatch.interleave = true;
      cfg.dispatch.coalesce = true;
      cfg.async_launches = true;
    }
    return run_scenario(cfg, fleet);
  };

  std::printf("Simulating an 8-device fleet (one app per virtual platform)...\n\n");
  const ScenarioResult emul = run(Backend::kEmulationOnVp, false);
  const ScenarioResult plain = run(Backend::kSigmaVp, false);
  const ScenarioResult opt = run(Backend::kSigmaVp, true);

  std::printf("%-28s %14s\n", "configuration", "makespan");
  std::printf("%-28s %11.1f s\n", "GPU emulation on the VPs", s_from_us(emul.makespan_us));
  std::printf("%-28s %11.1f s   (%.0fx faster)\n", "SigmaVP multiplexing",
              s_from_us(plain.makespan_us), emul.makespan_us / plain.makespan_us);
  std::printf("%-28s %11.1f s   (%.0fx faster)\n", "SigmaVP + optimizations",
              s_from_us(opt.makespan_us), emul.makespan_us / opt.makespan_us);

  std::printf("\nPer-device completion under optimized SigmaVP:\n");
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    std::printf("  vp%zu %-22s %8.1f s\n", i, fleet[i].workload->app.c_str(),
                s_from_us(opt.app_done_us[i]));
  }
  std::printf("\nhost GPU: compute busy %.1f s, copy busy %.1f s, %llu jobs, "
              "%llu reorders, %llu coalesced groups\n",
              s_from_us(opt.gpu_compute_busy_us), s_from_us(opt.gpu_copy_busy_us),
              static_cast<unsigned long long>(opt.jobs_dispatched),
              static_cast<unsigned long long>(opt.reorders),
              static_cast<unsigned long long>(opt.coalesced_groups));
  std::printf("host GPU energy (dynamic): %.1f J\n", opt.gpu_dynamic_energy_j);
  return 0;
}
