#pragma once

// Shared construction of the app-suite sweep (DESIGN.md §13): the exact job
// list is built here, once, so the `app_suite` bench and the kill–resume
// soak harness (`soak_recovery`) run byte-for-byte the same sweep — the
// soak's "resumed output equals uninterrupted golden" comparison is only
// meaningful if both binaries agree on every scenario parameter.

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "run/sweep.hpp"
#include "run/traffic.hpp"
#include "workloads/spec.hpp"
#include "workloads/suite.hpp"
#include "workloads/workload.hpp"

namespace sigvp::appsuite {

/// Open-loop requests per VP. With the calibrated dispatch overhead the
/// offered load saturates the dispatcher, so the percentiles measure
/// multiplexing pressure (queueing delay), not just service time.
constexpr std::uint32_t kRequestsPerVp = 10;
constexpr double kMeanInterarrivalUs = 2000.0;
constexpr std::uint64_t kBenchN = 4096;  // multiple of 32 (mlInference)
constexpr std::uint64_t kTrafficSeed = 7;

inline run::traffic::TrafficConfig traffic_config(run::traffic::Shape shape) {
  run::traffic::TrafficConfig tc;
  tc.shape = shape;
  tc.mean_interarrival_us = kMeanInterarrivalUs;
  tc.seed = kTrafficSeed;
  return tc;
}

/// `scalar_jitter` arms per-VP parameter jitter (seed 1000+vp): kernels stay
/// structurally identical across VPs but their f32 scalars diverge.
inline run::SweepJob make_traffic_job(const workloads::Workload& w, std::size_t vps,
                                      run::traffic::Shape shape, bool coalesce_on,
                                      bool scalar_jitter, const std::string& name) {
  run::SweepJob job;
  job.name = name;
  job.group = w.app;
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kAnalytic;
  job.config.dispatch.interleave = true;
  job.config.dispatch.coalesce = coalesce_on;
  // The suite's buffers are tiny; the default 2 GiB address space would be
  // zero-initialized once per scenario and dominate host wall-clock.
  job.config.gpu_mem_bytes = 64ull * 1024 * 1024;
  const run::traffic::TrafficConfig tc = traffic_config(shape);
  for (std::size_t vp = 0; vp < vps; ++vp) {
    AppInstance a;
    a.workload = &w;
    a.n = kBenchN;
    a.jitter = scalar_jitter ? 1000 + vp : 0;
    a.arrivals =
        run::traffic::arrival_times(tc, static_cast<std::uint32_t>(vp), kRequestsPerVp);
    job.apps.push_back(std::move(a));
  }
  return job;
}

/// Mixed-population job from a declarative WorkloadSpec: every VP draws its
/// own seeded request sequence over the three apps, with size and scalar
/// jitter, served under Poisson arrivals.
inline run::SweepJob make_mixed_job(const std::vector<workloads::Workload>& suite) {
  workloads::WorkloadSpec spec;
  spec.request_count = 12;
  spec.vp_count = 4;
  spec.mix = {{"graphAnalytics", 50}, {"mlInference", 25}, {"camPipeline", 25}};
  spec.base_n = 2048;
  spec.n_jitter_pct = 25;
  spec.scalar_jitter = true;
  spec.seed = 42;
  const auto streams = workloads::build_request_streams(spec, suite);

  run::SweepJob job;
  job.name = "mixed/poisson/vps4/coal";
  job.group = "mixed";
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kAnalytic;
  job.config.dispatch.interleave = true;
  job.config.dispatch.coalesce = true;
  job.config.gpu_mem_bytes = 64ull * 1024 * 1024;
  const run::traffic::TrafficConfig tc = traffic_config(run::traffic::Shape::kPoisson);
  for (std::size_t vp = 0; vp < streams.size(); ++vp) {
    AppInstance a;
    a.workload = streams[vp].front().workload;
    a.n = spec.base_n;
    a.arrivals = run::traffic::arrival_times(tc, static_cast<std::uint32_t>(vp),
                                             spec.request_count);
    a.requests = streams[vp];
    job.apps.push_back(std::move(a));
  }
  return job;
}

/// The full app-suite job list over `suite` (made by workloads::make_app_suite
/// — the caller owns it and must keep it alive for the jobs' lifetime).
inline std::vector<run::SweepJob> build_app_suite_jobs(
    const std::vector<workloads::Workload>& suite) {
  using run::traffic::Shape;
  std::vector<run::SweepJob> jobs;
  for (const workloads::Workload& w : suite) {
    // graph/ml exercise the almost-identical regime (per-VP scalar jitter);
    // cam keeps canonical scalars so its eligible stages can merge.
    const bool jittered = w.app != "camPipeline";
    for (const Shape shape : {Shape::kPoisson, Shape::kBursty}) {
      for (const std::size_t vps : {4, 8}) {
        for (const bool coal : {false, true}) {
          const std::string name = std::string(w.app) + "/" +
                                   run::traffic::shape_name(shape) + "/vps" +
                                   std::to_string(vps) + (coal ? "/coal" : "/nocoal");
          jobs.push_back(make_traffic_job(w, vps, shape, coal, jittered, name));
        }
      }
    }
  }
  jobs.push_back(make_mixed_job(suite));
  return jobs;
}

}  // namespace sigvp::appsuite
