// Reproduces Fig. 12 of the paper: normalized execution times of four
// kernels on the target GPU (Tegra K1) — the observation on the host GPU,
// the observation on the target, and the three estimates C, C', C'' of the
// Profile-Based Execution Analysis — using execution profiles from both
// host GPUs (Quadro 4000 and Grid K520).
//
// Each (host arch, app) cell is an independent functional evaluation with
// its own address space, so the 8 cells are sharded across host cores with
// parallel_for; rows land in indexed slots and the printed tables are
// byte-identical for any worker count. Use --workers N to bound the pool.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "estimate/estimator.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

using bench::evaluate_workload_on;

struct Cell {
  double h_norm = 0.0;       // host time / observed target time
  double c_norm = 0.0;       // estimate C, normalized
  double c1_norm = 0.0;      // estimate C'
  double c2_norm = 0.0;      // estimate C''
  double t_obs_us = 0.0;     // observed target time (for the error summary)
  double et_c2_us = 0.0;     // C'' estimate in us
};

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;
  const run::SweepCli cli = run::parse_sweep_cli(argc, argv, "");
  const auto suite = workloads::make_suite();
  const GpuArch target = make_tegrak1();
  const std::vector<const char*> apps = {"BlackScholes", "matrixMul", "dct8x8",
                                         "Mandelbrot"};
  const std::vector<GpuArch> hosts = {make_quadro4000(), make_gridk520()};

  // One cell per (host, app) pair, filled in parallel.
  std::vector<Cell> cells(hosts.size() * apps.size());
  {
    run::ThreadPool pool(cli.workers == 0 ? run::ThreadPool::default_workers()
                                          : cli.workers);
    run::parallel_for(pool, cells.size(), [&](std::size_t idx) {
      const GpuArch& host = hosts[idx / apps.size()];
      const workloads::Workload& w = workloads::find(suite, apps[idx % apps.size()]);
      const std::uint64_t n = w.estimate_n ? w.estimate_n : w.test_n;

      const LaunchEvaluation on_host = evaluate_workload_on(w, n, host);
      const LaunchEvaluation on_target = evaluate_workload_on(w, n, target);

      ProfileBasedEstimator est(host, target);
      EstimationInput in;
      in.kernel = &w.kernel;
      in.dims = w.dims(n);
      in.lambda = on_host.profile.block_visits;
      in.host_stats = on_host.stats;
      in.behavior = w.behavior(n);
      const TimingEstimates ts = est.estimate_time(in);

      // Normalize by the observed target execution time (paper's y-axis).
      Cell& cell = cells[idx];
      cell.t_obs_us = us_from_cycles(on_target.stats.total_cycles, target.clock_ghz);
      cell.h_norm =
          us_from_cycles(on_host.stats.total_cycles, host.clock_ghz) / cell.t_obs_us;
      cell.c_norm = ts.et_c_us / cell.t_obs_us;
      cell.c1_norm = ts.et_c1_us / cell.t_obs_us;
      cell.c2_norm = ts.et_c2_us / cell.t_obs_us;
      cell.et_c2_us = ts.et_c2_us;
    });
  }

  for (std::size_t h = 0; h < hosts.size(); ++h) {
    const GpuArch& host = hosts[h];
    std::cout << "== Fig. 12: normalized execution times, profile host = " << host.name
              << ", target = Tegra K1 ==\n"
              << "   (all values divided by the observed target-device time)\n\n";
    TablePrinter t({"Kernel", "H(" + host.name + ")", "T(Tegra)", "C", "C'", "C''"});
    std::vector<double> observed, est_c2;
    for (std::size_t a = 0; a < apps.size(); ++a) {
      const Cell& cell = cells[h * apps.size() + a];
      observed.push_back(cell.t_obs_us);
      est_c2.push_back(cell.et_c2_us);
      t.add_row({apps[a], fmt_fixed(cell.h_norm, 3), "1.000", fmt_fixed(cell.c_norm, 2),
                 fmt_fixed(cell.c1_norm, 2), fmt_fixed(cell.c2_norm, 2)});
    }
    t.print(std::cout);
    std::cout << "C'' mean abs error vs observed target: "
              << fmt_fixed(100.0 * mean_abs_pct_error(observed, est_c2), 1) << "%\n\n";
  }

  std::cout << "(As in the paper: host executions are far faster than the target;\n"
            << " the refined estimates cluster near 1.0 regardless of which host\n"
            << " GPU supplied the profile; C — the bare IPC-ratio model — is the\n"
            << " crudest of the three.)\n";
  if (!run::flush_trace()) return 1;
  return 0;
}
