// Reproduces Fig. 12 of the paper: normalized execution times of four
// kernels on the target GPU (Tegra K1) — the observation on the host GPU,
// the observation on the target, and the three estimates C, C', C'' of the
// Profile-Based Execution Analysis — using execution profiles from both
// host GPUs (Quadro 4000 and Grid K520).

#include <iostream>
#include <vector>

#include "estimate/estimator.hpp"
#include "gpu/offline.hpp"
#include "mem/allocator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

LaunchEvaluation run_on(const workloads::Workload& w, std::uint64_t n, const GpuArch& arch) {
  AddressSpace mem(512ull * 1024 * 1024, "m");
  FreeListAllocator alloc(4096, mem.size() - 4096);
  std::vector<std::uint64_t> addrs;
  const auto bufs = w.buffers(n);
  for (const auto& b : bufs) addrs.push_back(*alloc.allocate(b.bytes));
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    if (!bufs[i].is_input) continue;
    for (std::uint64_t off = 0; off + 4 <= bufs[i].bytes; off += 4) {
      mem.write<float>(addrs[i] + off, 0.75f);
    }
  }
  return evaluate_functional(arch, w.kernel, w.dims(n), w.args(addrs, n), mem);
}

}  // namespace
}  // namespace sigvp

int main() {
  using namespace sigvp;
  const auto suite = workloads::make_suite();
  const GpuArch target = make_tegrak1();
  const char* apps[] = {"BlackScholes", "matrixMul", "dct8x8", "Mandelbrot"};

  for (const GpuArch& host : {make_quadro4000(), make_gridk520()}) {
    std::cout << "== Fig. 12: normalized execution times, profile host = " << host.name
              << ", target = Tegra K1 ==\n"
              << "   (all values divided by the observed target-device time)\n\n";
    TablePrinter t({"Kernel", "H(" + host.name + ")", "T(Tegra)", "C", "C'", "C''"});
    std::vector<double> observed, est_c2;
    for (const char* app : apps) {
      const workloads::Workload& w = workloads::find(suite, app);
      const std::uint64_t n = w.estimate_n ? w.estimate_n : w.test_n;

      const LaunchEvaluation on_host = run_on(w, n, host);
      const LaunchEvaluation on_target = run_on(w, n, target);

      ProfileBasedEstimator est(host, target);
      EstimationInput in;
      in.kernel = &w.kernel;
      in.dims = w.dims(n);
      in.lambda = on_host.profile.block_visits;
      in.host_stats = on_host.stats;
      in.behavior = w.behavior(n);
      const TimingEstimates ts = est.estimate_time(in);

      // Normalize by the observed target execution time (paper's y-axis).
      const double t_obs_us =
          us_from_cycles(on_target.stats.total_cycles, target.clock_ghz);
      const double h_us = us_from_cycles(on_host.stats.total_cycles, host.clock_ghz);

      observed.push_back(t_obs_us);
      est_c2.push_back(ts.et_c2_us);
      t.add_row({app, fmt_fixed(h_us / t_obs_us, 3), "1.000",
                 fmt_fixed(ts.et_c_us / t_obs_us, 2), fmt_fixed(ts.et_c1_us / t_obs_us, 2),
                 fmt_fixed(ts.et_c2_us / t_obs_us, 2)});
    }
    t.print(std::cout);
    std::cout << "C'' mean abs error vs observed target: "
              << fmt_fixed(100.0 * mean_abs_pct_error(observed, est_c2), 1) << "%\n\n";
  }

  std::cout << "(As in the paper: host executions are far faster than the target;\n"
            << " the refined estimates cluster near 1.0 regardless of which host\n"
            << " GPU supplied the profile; C — the bare IPC-ratio model — is the\n"
            << " crudest of the three.)\n";
  return 0;
}
