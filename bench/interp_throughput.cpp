// Measures the block-parallel kernel interpreter (DESIGN.md §10): wall-clock
// and dynamic instrs/sec for every workload in the suite at a ladder of
// worker counts, so the parallel-interpreter speedup is measured rather than
// claimed. Kernels with global atomics execute serially at every worker
// count (the determinism fallback), so they are reported separately and
// excluded from the speedup aggregate.
//
//   interp_throughput [--workers N] [--n SIZE] [--reps R] [--json PATH] [--trace PATH]
//
// Without --workers the full {1,2,4,8} ladder runs; `--workers N` restricts
// the run to one count (CI uses `--workers 1` as a smoke check). Every run
// is differenced against the serial profile — any mismatch makes the bench
// exit nonzero, so the throughput numbers can never outlive the determinism
// contract they advertise.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "interp/interpreter.hpp"
#include "mem/address_space.hpp"
#include "mem/allocator.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kSpace = 256ull * 1024 * 1024;

struct RunSample {
  std::size_t workers = 0;
  double wall_ms = 0.0;
  std::uint64_t instrs = 0;
  double instrs_per_sec = 0.0;
};

struct AppReport {
  std::string app;
  std::string kernel;  // kernel name, for per-kernel attribution (tier bench)
  bool atomic = false;
  std::uint64_t n = 0;
  std::vector<RunSample> runs;

  /// Per-kernel Minstr/s at workers=1 — the number the tier bench and the
  /// baseline gate attribute wins/regressions to.
  double minstr_per_sec_w1() const {
    for (const RunSample& s : runs) {
      if (s.workers == 1) return s.instrs_per_sec / 1e6;
    }
    return runs.empty() ? 0.0 : runs.front().instrs_per_sec / 1e6;
  }
};

/// One timed launch of `w` at size `n` with the given worker count. Fresh
/// memory per call; returns the profile (for the differential check) and
/// the wall-clock of the `run` call alone.
DynamicProfile timed_run(const workloads::Workload& w, std::uint64_t n, std::size_t workers,
                         double& wall_ms) {
  AddressSpace mem(kSpace, "bench");
  FreeListAllocator alloc(4096, mem.size() - 4096);
  std::vector<std::uint64_t> addrs;
  for (const auto& b : w.buffers(n)) {
    const auto a = alloc.allocate(b.bytes);
    SIGVP_REQUIRE(a.has_value(), w.app + ": bench arena too small for n");
    addrs.push_back(*a);
    if (b.is_input) {
      for (std::uint64_t off = 0; off + 4 <= b.bytes; off += 4) {
        mem.write<float>(*a + off, 0.5f);
      }
    }
  }

  Interpreter interp;
  Interpreter::Options options;
  options.workers = workers;
  const auto start = std::chrono::steady_clock::now();
  DynamicProfile profile = interp.run(w.kernel, w.dims(n), w.args(addrs, n), mem, options);
  wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  return profile;
}

bool profiles_equal(const DynamicProfile& a, const DynamicProfile& b) {
  return a.block_visits == b.block_visits && a.instr_counts == b.instr_counts &&
         a.global_load_bytes == b.global_load_bytes &&
         a.global_store_bytes == b.global_store_bytes &&
         a.barriers_waited == b.barriers_waited && a.sfu_instrs == b.sfu_instrs &&
         a.sqrt_instrs == b.sqrt_instrs;
}

std::string to_json(const std::vector<AppReport>& apps,
                    const std::vector<std::size_t>& ladder, double total_wall_ms,
                    double speedup_max_vs_1) {
  using run::json::escape;
  using run::json::number;
  std::ostringstream os;
  os << "{\n  \"bench\": \"interp_throughput\",\n";
  os << "  \"worker_counts\": [";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (i != 0) os << ", ";
    os << ladder[i];
  }
  os << "],\n  \"wall_ms\": " << number(total_wall_ms) << ",\n";
  os << "  \"nonatomic_speedup_max_workers_vs_1\": " << number(speedup_max_vs_1) << ",\n";
  os << "  \"apps\": [\n";
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const AppReport& a = apps[i];
    os << "    {\"app\": \"" << escape(a.app) << "\", \"kernel\": \"" << escape(a.kernel)
       << "\", \"atomic\": " << (a.atomic ? "true" : "false") << ", \"n\": " << a.n
       << ", \"minstr_per_sec_w1\": " << number(a.minstr_per_sec_w1()) << ", \"runs\": [";
    for (std::size_t r = 0; r < a.runs.size(); ++r) {
      const RunSample& s = a.runs[r];
      if (r != 0) os << ", ";
      os << "{\"workers\": " << s.workers << ", \"wall_ms\": " << number(s.wall_ms)
         << ", \"instrs\": " << s.instrs
         << ", \"instrs_per_sec\": " << number(s.instrs_per_sec) << "}";
    }
    os << "]}";
    if (i + 1 != apps.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;

  std::size_t only_workers = 0;
  std::uint64_t size_override = 0;
  std::size_t reps = 1;
  std::string json_path = "BENCH_interp.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      only_workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--n" && i + 1 < argc) {
      size_override = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace::Tracer::enable(argv[++i]);
    }
  }

  std::vector<std::size_t> ladder = {1, 2, 4, 8};
  if (only_workers != 0) ladder = {only_workers};

  std::cout << "== interp_throughput: block-parallel interpreter, workload suite ==\n\n";

  const auto suite = workloads::make_suite();
  std::vector<AppReport> reports;
  // Non-atomic aggregate wall-clock per ladder entry (for the speedup line).
  std::vector<double> nonatomic_wall_ms(ladder.size(), 0.0);
  bool mismatch = false;

  TablePrinter table({"Application", "Instrs", "Mode", "Workers", "Wall (ms)", "Minstr/s"});
  const auto total_start = std::chrono::steady_clock::now();

  for (const auto& w : suite) {
    AppReport rep;
    rep.app = w.app;
    rep.kernel = w.kernel.name;
    rep.atomic = Interpreter::uses_global_atomics(w.kernel);
    rep.n = size_override != 0 ? size_override
                               : (w.estimate_n != 0 ? w.estimate_n : w.test_n);

    // Serial reference: correctness anchor for every other worker count.
    double ref_ms = 0.0;
    const DynamicProfile reference = timed_run(w, rep.n, 1, ref_ms);

    for (std::size_t li = 0; li < ladder.size(); ++li) {
      const std::size_t workers = ladder[li];
      double best_ms = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        double ms = 0.0;
        const DynamicProfile p = timed_run(w, rep.n, workers, ms);
        if (!profiles_equal(p, reference)) {
          std::cerr << "DETERMINISM VIOLATION: " << w.app << " @ workers=" << workers
                    << " diverged from the serial profile\n";
          mismatch = true;
        }
        if (r == 0 || ms < best_ms) best_ms = ms;
      }
      RunSample s;
      s.workers = workers;
      s.wall_ms = best_ms;
      s.instrs = reference.total_instrs();
      s.instrs_per_sec = best_ms > 0.0 ? 1e3 * static_cast<double>(s.instrs) / best_ms : 0.0;
      rep.runs.push_back(s);
      if (!rep.atomic) nonatomic_wall_ms[li] += best_ms;
      table.add_row({w.app, fmt_int(static_cast<long long>(s.instrs)),
                     rep.atomic ? "serial(atomic)" : "parallel",
                     fmt_int(static_cast<long long>(workers)), fmt_fixed(best_ms, 2),
                     fmt_fixed(s.instrs_per_sec / 1e6, 1)});
    }
    reports.push_back(std::move(rep));
  }

  const double total_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - total_start)
          .count();

  table.print(std::cout);

  double speedup = 1.0;
  if (ladder.size() > 1 && nonatomic_wall_ms.back() > 0.0) {
    speedup = nonatomic_wall_ms.front() / nonatomic_wall_ms.back();
    std::cout << "\nNon-atomic suite wall-clock: " << fmt_fixed(nonatomic_wall_ms.front(), 1)
              << " ms @ workers=" << ladder.front() << " -> "
              << fmt_fixed(nonatomic_wall_ms.back(), 1) << " ms @ workers=" << ladder.back()
              << "  (speedup " << fmt_ratio(speedup) << "x)\n";
  }

  if (!run::try_write_json_file(to_json(reports, ladder, total_wall_ms, speedup), json_path)) {
    std::cerr << "error: failed writing JSON results file: " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";

  if (mismatch) {
    std::cerr << "\ninterp_throughput: determinism differential FAILED\n";
    return 1;
  }
  if (!run::flush_trace()) return 1;
  return 0;
}
