// Reproduces Fig. 13 of the paper: normalized power dissipation on the
// target GPU (Tegra K1) — observed on the target-device model vs the
// estimate P{K,T} of Eq. 6 — for profiles gathered on both host GPUs.
// The paper reports estimates within ~10% of the measured values.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "estimate/estimator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

using bench::evaluate_workload_on;

}  // namespace
}  // namespace sigvp

int main() {
  using namespace sigvp;
  const auto suite = workloads::make_suite();
  const GpuArch target = make_tegrak1();
  const char* apps[] = {"BlackScholes", "matrixMul", "dct8x8", "Mandelbrot"};

  for (const GpuArch& host : {make_quadro4000(), make_gridk520()}) {
    std::cout << "== Fig. 13: normalized power on Tegra K1, profile host = " << host.name
              << " ==\n   (observed target power = 1.0)\n\n";
    TablePrinter t({"Kernel", "Observed (W)", "Estimate P (W)", "P / observed"});
    std::vector<double> obs, est_p;
    for (const char* app : apps) {
      const workloads::Workload& w = workloads::find(suite, app);
      const std::uint64_t n = w.estimate_n ? w.estimate_n : w.test_n;

      const LaunchEvaluation on_host = evaluate_workload_on(w, n, host);
      const LaunchEvaluation on_target = evaluate_workload_on(w, n, target);

      ProfileBasedEstimator est(host, target);
      EstimationInput in;
      in.kernel = &w.kernel;
      in.dims = w.dims(n);
      in.lambda = on_host.profile.block_visits;
      in.host_stats = on_host.stats;
      in.behavior = w.behavior(n);
      const TimingEstimates ts = est.estimate_time(in);
      const double p_est = est.estimate_power_w(in, ts);

      const double kernel_us = on_target.stats.duration_us - target.launch_overhead_us;
      const double p_obs =
          target.static_power_w + on_target.stats.dynamic_energy_j / s_from_us(kernel_us);

      obs.push_back(p_obs);
      est_p.push_back(p_est);
      t.add_row({app, fmt_fixed(p_obs, 3), fmt_fixed(p_est, 3),
                 fmt_fixed(p_est / p_obs, 3)});
    }
    t.print(std::cout);
    std::cout << "Mean abs error: " << fmt_fixed(100.0 * mean_abs_pct_error(obs, est_p), 1)
              << "% (paper: ~10%)\n\n";
  }
  return 0;
}
