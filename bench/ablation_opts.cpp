// Ablation (ours, not in the paper): isolates the contribution of each
// optimization — Kernel Interleaving (with asynchronous reordering) and
// Kernel Coalescing — on representative apps from the suite.
//
// 6 apps x 4 configurations = 24 independent scenarios, sharded across host
// cores by the sweep runner (--workers N); results are identical for any N.

#include <iostream>

#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::size_t kNumVps = 8;

run::SweepJob make_job(const workloads::Workload& w, const std::string& variant,
                       bool interleave, bool coalesce, bool async) {
  run::SweepJob job;
  job.name = w.app + "/" + variant;
  job.group = w.app;
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kAnalytic;
  job.config.dispatch.interleave = interleave;
  job.config.dispatch.coalesce = coalesce;
  job.config.dispatch.coalesce_eager_peers = kNumVps - 1;
  job.config.async_launches = async;
  job.apps = replicate(w, w.default_n, kNumVps);
  return job;
}

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;
  const run::SweepCli cli = run::parse_sweep_cli(argc, argv, "BENCH_ablation_opts.json");
  std::cout << "== Ablation: per-optimization contribution (8 VPs, makespan in ms) ==\n\n";

  const auto suite = workloads::make_suite();
  const std::vector<const char*> apps = {"vectorAdd",  "BlackScholes",
                                         "mergeSort",  "matrixMul",
                                         "convolutionSeparable", "segmentationTreeThrust"};

  std::vector<run::SweepJob> jobs;
  for (const char* app : apps) {
    const workloads::Workload& w = workloads::find(suite, app);
    jobs.push_back(make_job(w, "none", false, false, false));
    jobs.push_back(make_job(w, "interleave", true, false, false));
    jobs.push_back(make_job(w, "coalesce", false, true, false));
    jobs.push_back(make_job(w, "both", true, true, true));
  }

  const run::SweepRunner runner(cli.workers);
  const run::SweepResult sweep = runner.run(jobs);

  TablePrinter t({"Application", "None", "+Interleave", "+Coalesce", "+Both+Async",
                  "Total gain", "Coalesced groups"});
  for (const char* app : apps) {
    const std::string name(app);
    const ScenarioResult& none = sweep.find(name + "/none").result;
    const ScenarioResult& inter = sweep.find(name + "/interleave").result;
    const ScenarioResult& coal = sweep.find(name + "/coalesce").result;
    const ScenarioResult& both = sweep.find(name + "/both").result;
    t.add_row({app, fmt_fixed(ms_from_us(none.makespan_us), 1),
               fmt_fixed(ms_from_us(inter.makespan_us), 1),
               fmt_fixed(ms_from_us(coal.makespan_us), 1),
               fmt_fixed(ms_from_us(both.makespan_us), 1),
               fmt_ratio(sweep.speedup(name + "/both", name + "/none")),
               fmt_int(static_cast<long long>(both.coalesced_groups))});
  }
  t.print(std::cout);
  std::cout << "\n(Apps the paper lists as not helped — convolutionSeparable among\n"
            << " them — show gains near 1.0x; kernel-cascade apps like mergeSort\n"
            << " gain the most, matching the paper's best case.)\n";

  if (!try_write_sweep_json(sweep, "ablation_opts", cli.json_path)) return 1;
  std::cout << "\n[sweep] " << sweep.jobs.size() << " scenarios on " << sweep.workers
            << " workers in " << fmt_fixed(sweep.wall_ms, 0) << " ms -> " << cli.json_path
            << "\n";
  if (!run::flush_trace()) return 1;
  return 0;
}
