// Ablation (ours, not in the paper): isolates the contribution of each
// optimization — Kernel Interleaving (with asynchronous reordering) and
// Kernel Coalescing — on representative apps from the suite.

#include <iostream>

#include "core/scenario.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::size_t kNumVps = 8;

ScenarioResult run(const workloads::Workload& w, bool interleave, bool coalesce,
                   bool async) {
  ScenarioConfig cfg;
  cfg.backend = Backend::kSigmaVp;
  cfg.mode = ExecMode::kAnalytic;
  cfg.dispatch.interleave = interleave;
  cfg.dispatch.coalesce = coalesce;
  cfg.dispatch.coalesce_eager_peers = kNumVps - 1;
  cfg.async_launches = async;
  return run_scenario(cfg, replicate(w, w.default_n, kNumVps));
}

}  // namespace
}  // namespace sigvp

int main() {
  using namespace sigvp;
  std::cout << "== Ablation: per-optimization contribution (8 VPs, makespan in ms) ==\n\n";

  TablePrinter t({"Application", "None", "+Interleave", "+Coalesce", "+Both+Async",
                  "Total gain", "Coalesced groups"});
  const auto suite = workloads::make_suite();
  for (const char* app : {"vectorAdd", "BlackScholes", "mergeSort", "matrixMul",
                          "convolutionSeparable", "segmentationTreeThrust"}) {
    const workloads::Workload& w = workloads::find(suite, app);
    const auto none = run(w, false, false, false);
    const auto inter = run(w, true, false, false);
    const auto coal = run(w, false, true, false);
    const auto both = run(w, true, true, true);
    t.add_row({app, fmt_fixed(ms_from_us(none.makespan_us), 1),
               fmt_fixed(ms_from_us(inter.makespan_us), 1),
               fmt_fixed(ms_from_us(coal.makespan_us), 1),
               fmt_fixed(ms_from_us(both.makespan_us), 1),
               fmt_ratio(none.makespan_us / both.makespan_us),
               fmt_int(static_cast<long long>(both.coalesced_groups))});
  }
  t.print(std::cout);
  std::cout << "\n(Apps the paper lists as not helped — convolutionSeparable among\n"
            << " them — show gains near 1.0x; kernel-cascade apps like mergeSort\n"
            << " gain the most, matching the paper's best case.)\n";
  return 0;
}
