// Fleet-scale bench (DESIGN.md §16): one ΣVP scenario per point, growing the
// VP count 64 → 131072 (100k+) across sharded scheduler/dispatcher domains,
// reporting host wall time, VPs/s, and honest bytes-per-VP (the deterministic
// peak-resident estimate the executor publishes as FleetStats::resident_bytes).
//
// Two contracts ride along and make the numbers trustworthy:
//
//   * shard determinism — the dispatch-bound 1k-VP fleet is re-run at
//     --shards {1, 2, 4, 8} and its full BENCH JSON (every sim-domain byte,
//     fleet block included) must be identical; any divergence exits nonzero.
//   * shard speedup — the same 1k-VP point is timed at 1 vs 8 shards; on a
//     host with >= 8 cores the 8-shard run must be >= 2x faster (skipped,
//     but still reported, on smaller hosts where the target is unreachable).
//
//   fleet_scale [--max-vps N] [--scale-shards N] [--reps R] [--json PATH]
//               [--no-speedup-gate]
//
// scripts/bench_regression_check.py --fleet bands VPs/s (25%), compares
// resident_bytes and sync_rounds exactly (both are pure functions of the
// scenario), and fails if shard_determinism is not true.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

/// VP counts of the scale ladder; trimmed by --max-vps for smoke runs.
constexpr std::size_t kLadder[] = {64, 512, 4096, 32768, 131072};

std::uint32_t domains_for(std::size_t vps) {
  return static_cast<std::uint32_t>(
      std::clamp<std::size_t>(vps / 512, 2, 256));
}

ScenarioConfig fleet_config(std::uint32_t domains, SimTime edge_latency_us) {
  ScenarioConfig cfg;
  cfg.backend = Backend::kSigmaVp;
  cfg.mode = ExecMode::kAnalytic;
  cfg.gpu_mem_bytes = 32ull * 1024 * 1024;  // per-domain device arena
  cfg.fleet.domains = domains;
  cfg.fleet.edge_latency_us = edge_latency_us;
  return cfg;
}

std::vector<AppInstance> make_fleet(const workloads::Workload& w, std::uint64_t n,
                                    std::size_t vps, std::uint32_t iterations) {
  workloads::AppTraits t = w.traits;
  t.iterations = iterations;
  t.launches_per_iter = 1;
  t.iter_h2d_bytes = 0;
  t.iter_d2h_bytes = 0;
  t.noncuda_guest_instrs = 0.0;
  std::vector<AppInstance> apps;
  apps.reserve(vps);
  for (std::size_t i = 0; i < vps; ++i) apps.push_back(AppInstance{&w, n, t});
  return apps;
}

/// run_scenario under a wall clock; best-of-`reps` wall, first result kept.
ScenarioResult timed_run(const ScenarioConfig& cfg, const std::vector<AppInstance>& apps,
                         std::size_t reps, double& best_ms) {
  ScenarioResult result;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    ScenarioResult got = run_scenario(cfg, apps);
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (r == 0) {
      result = std::move(got);
      best_ms = ms;
    } else if (ms < best_ms) {
      best_ms = ms;
    }
  }
  return result;
}

/// Full sim-domain JSON of one result — the byte-identity probe. Host-only
/// fields (workers, wall_ms) are pinned so only simulation bytes remain.
std::string result_json(const ScenarioResult& r) {
  run::SweepResult one;
  one.jobs.push_back(run::SweepJobResult{"probe", "fleet", r});
  one.workers = 1;
  one.wall_ms = 0.0;
  return run::sweep_to_json(one, "fleet_scale_probe");
}

struct Point {
  std::size_t vps = 0;
  std::uint32_t domains = 0;
  double wall_ms = 0.0;
  double vps_per_sec = 0.0;
  std::uint64_t resident_bytes = 0;
  double bytes_per_vp = 0.0;
  std::uint64_t sync_rounds = 0;
  std::uint64_t fabric_messages = 0;
};

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;

  std::size_t max_vps = kLadder[sizeof(kLadder) / sizeof(kLadder[0]) - 1];
  std::size_t scale_shards = std::min<std::size_t>(8, run::ThreadPool::default_workers());
  std::size_t reps = 1;
  std::string json_path = "BENCH_fleet_scale.json";
  bool speedup_gate = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-vps" && i + 1 < argc) {
      max_vps = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--scale-shards" && i + 1 < argc) {
      scale_shards = std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--no-speedup-gate") {
      speedup_gate = false;
    }
  }

  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  bool failed = false;

  std::cout << "== fleet_scale: sharded fleet simulation, 64 -> " << max_vps
            << " VPs ==\n   (" << scale_shards << " shard threads, "
            << run::ThreadPool::default_workers() << " host cores)\n\n";

  // --- scale ladder -----------------------------------------------------------
  run::set_fleet_shards(scale_shards);
  std::vector<Point> points;
  TablePrinter table({"VPs", "Domains", "Wall ms", "VPs/s", "Resident", "B/VP",
                      "Sync rounds"});
  for (const std::size_t vps : kLadder) {
    if (vps > max_vps) break;
    const std::uint32_t domains = domains_for(vps);
    const ScenarioConfig cfg = fleet_config(domains, /*edge_latency_us=*/200.0);
    const auto apps = make_fleet(w, /*n=*/64, vps, /*iterations=*/1);
    Point p;
    p.vps = vps;
    p.domains = domains;
    const ScenarioResult r = timed_run(cfg, apps, reps, p.wall_ms);
    p.vps_per_sec = p.wall_ms > 0.0 ? static_cast<double>(vps) / (p.wall_ms / 1e3) : 0.0;
    p.resident_bytes = r.fleet.resident_bytes;
    p.bytes_per_vp = static_cast<double>(p.resident_bytes) / static_cast<double>(vps);
    p.sync_rounds = r.fleet.sync_rounds;
    p.fabric_messages = r.fleet.fabric_messages;
    if (r.app_done_us.size() != vps) {
      std::cerr << "FLEET INCOMPLETE: " << vps << " VPs, only " << r.app_done_us.size()
                << " completions\n";
      failed = true;
    }
    table.add_row({fmt_int(static_cast<long long>(p.vps)),
                   fmt_int(static_cast<long long>(p.domains)), fmt_fixed(p.wall_ms, 1),
                   fmt_fixed(p.vps_per_sec, 0),
                   fmt_int(static_cast<long long>(p.resident_bytes)),
                   fmt_fixed(p.bytes_per_vp, 1),
                   fmt_int(static_cast<long long>(p.sync_rounds))});
    points.push_back(p);
  }
  table.print(std::cout);

  // --- dispatch-bound 1k-VP point: shard speedup + byte-identity --------------
  constexpr std::size_t kDispatchVps = 1024;
  constexpr std::uint32_t kDispatchDomains = 16;
  ScenarioConfig dcfg = fleet_config(kDispatchDomains, /*edge_latency_us=*/500.0);
  dcfg.dispatch.interleave = true;
  dcfg.async_launches = true;
  const auto dispatch_apps = make_fleet(w, /*n=*/256, kDispatchVps, /*iterations=*/4);

  const std::size_t dispatch_reps = std::max<std::size_t>(reps, 3);
  run::set_fleet_shards(1);
  double wall_1shard = 0.0;
  const ScenarioResult base = timed_run(dcfg, dispatch_apps, dispatch_reps, wall_1shard);
  run::set_fleet_shards(8);
  double wall_8shards = 0.0;
  const ScenarioResult at8 = timed_run(dcfg, dispatch_apps, dispatch_reps, wall_8shards);
  const double speedup = wall_8shards > 0.0 ? wall_1shard / wall_8shards : 0.0;

  std::cout << "\ndispatch-bound " << kDispatchVps << " VPs x " << kDispatchDomains
            << " domains: " << fmt_fixed(wall_1shard, 1) << " ms at 1 shard, "
            << fmt_fixed(wall_8shards, 1) << " ms at 8 shards (" << fmt_ratio(speedup)
            << "x)\n";

  // Byte-identity battery: every shard count must produce the same JSON,
  // and the two executor stats that deliberately stay out of sweep JSON
  // (sync_rounds, resident_bytes — see json_writer.cpp) must match too:
  // shard threads only parallelize domain advancement inside a round, so
  // the round structure is a pure function of the simulation.
  auto exec_stats_match = [&](const ScenarioResult& got, std::size_t shards) {
    if (got.fleet.sync_rounds == base.fleet.sync_rounds &&
        got.fleet.resident_bytes == base.fleet.resident_bytes) {
      return true;
    }
    std::cerr << "SHARD DIVERGENCE: --shards " << shards << " changed executor stats ("
              << got.fleet.sync_rounds << " rounds / " << got.fleet.resident_bytes
              << " resident vs " << base.fleet.sync_rounds << " / "
              << base.fleet.resident_bytes << ")\n";
    return false;
  };
  const std::string golden = result_json(base);
  if (result_json(at8) != golden) {
    std::cerr << "SHARD DIVERGENCE: --shards 8 changed simulation bytes\n";
    failed = true;
  }
  if (!exec_stats_match(at8, 8)) failed = true;
  bool determinism = !failed;
  for (const std::size_t shards : {2u, 4u}) {
    run::set_fleet_shards(shards);
    double ms = 0.0;
    const ScenarioResult got = timed_run(dcfg, dispatch_apps, 1, ms);
    if (result_json(got) != golden || !exec_stats_match(got, shards)) {
      std::cerr << "SHARD DIVERGENCE: --shards " << shards << " changed simulation bytes\n";
      determinism = false;
      failed = true;
    }
  }
  run::set_fleet_shards(1);
  std::cout << "shard determinism: "
            << (determinism ? "byte-identical at shards {1, 2, 4, 8}" : "FAILED") << "\n";

  // The >= 2x target needs real cores under the 8 shard threads; report
  // always, enforce only where the hardware can possibly deliver it.
  if (speedup_gate && run::ThreadPool::default_workers() >= 8 && speedup < 2.0) {
    std::cerr << "SHARD SPEEDUP REGRESSION: " << fmt_ratio(speedup)
              << "x at 8 shards on a >= 8-core host (target >= 2x)\n";
    failed = true;
  }

  // --- JSON -------------------------------------------------------------------
  using run::json::number;
  std::ostringstream os;
  os << "{\n  \"bench\": \"fleet_scale\",\n";
  os << "  \"scale_shards\": " << scale_shards << ",\n";
  os << "  \"shard_determinism\": " << (determinism ? "true" : "false") << ",\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    os << "    {\"vps\": " << p.vps << ", \"domains\": " << p.domains
       << ", \"wall_ms\": " << number(p.wall_ms)
       << ", \"vps_per_sec\": " << number(p.vps_per_sec)
       << ", \"resident_bytes\": " << p.resident_bytes
       << ", \"bytes_per_vp\": " << number(p.bytes_per_vp)
       << ", \"sync_rounds\": " << p.sync_rounds
       << ", \"fabric_messages\": " << p.fabric_messages << "}"
       << (i + 1 != points.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"dispatch_bound\": {\"vps\": " << kDispatchVps
     << ", \"domains\": " << kDispatchDomains
     << ", \"wall_ms_1shard\": " << number(wall_1shard)
     << ", \"wall_ms_8shards\": " << number(wall_8shards)
     << ", \"shard_speedup\": " << number(speedup)
     << ", \"host_cores\": " << run::ThreadPool::default_workers() << "}\n";
  os << "}\n";

  if (!run::try_write_json_file(os.str(), json_path)) {
    std::cerr << "error: failed writing JSON results file: " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";

  if (failed) {
    std::cerr << "\nfleet_scale: contract checks FAILED\n";
    return 1;
  }
  return 0;
}
