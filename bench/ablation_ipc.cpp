// Ablation (ours): cost of the IPC transport between the virtual embedded
// GPUs and the host-side job queue — shared memory vs socket, the two
// mechanisms the paper's IPC Manager supports.

#include <iostream>

#include "core/scenario.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

SimTime run_with_transport(const IpcCostModel& ipc, std::uint64_t m,
                           std::uint32_t iterations) {
  const workloads::Workload w = workloads::make_matrix_mul();
  workloads::AppTraits traits;
  traits.iterations = iterations;
  traits.launches_per_iter = 1;
  traits.iter_h2d_bytes = 2 * 8 * m * m;
  traits.iter_d2h_bytes = 8 * m * m;
  traits.noncuda_guest_instrs = 0;

  ScenarioConfig cfg;
  cfg.backend = Backend::kSigmaVp;
  cfg.mode = ExecMode::kAnalytic;
  cfg.calib.ipc = ipc;
  AppInstance app{&w, m, traits};
  return run_scenario(cfg, {app}).makespan_us;
}

}  // namespace
}  // namespace sigvp

int main() {
  using namespace sigvp;
  constexpr std::uint64_t kM = 320;
  constexpr std::uint32_t kIters = 100;

  std::cout << "== Ablation: IPC transport (Table 1 matmul loop, " << kIters
            << " iterations) ==\n\n";
  const SimTime shm = run_with_transport(IpcCostModel::shared_memory(), kM, kIters);
  const SimTime sock = run_with_transport(IpcCostModel::socket(), kM, kIters);

  TablePrinter t({"Transport", "per-msg (us)", "bandwidth (GB/s)", "Time (ms)", "vs shm"});
  const IpcCostModel m_shm = IpcCostModel::shared_memory();
  const IpcCostModel m_sock = IpcCostModel::socket();
  t.add_row({"shared memory", fmt_fixed(m_shm.per_message_us, 0),
             fmt_fixed(m_shm.bandwidth_gbps, 1), fmt_ms(ms_from_us(shm)), "1.00"});
  t.add_row({"socket", fmt_fixed(m_sock.per_message_us, 0),
             fmt_fixed(m_sock.bandwidth_gbps, 1), fmt_ms(ms_from_us(sock)),
             fmt_ratio(sock / shm)});
  t.print(std::cout);
  std::cout << "\n(Data-heavy guest memcpys make the transport choice visible; the\n"
            << " paper's prototype defaults to shared memory for this reason.)\n";
  return 0;
}
