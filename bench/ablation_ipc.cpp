// Ablation (ours): cost of the IPC transport between the virtual embedded
// GPUs and the host-side job queue — shared memory vs socket, the two
// mechanisms the paper's IPC Manager supports. Both transports run as one
// two-job sweep (--workers N) and the comparison lands in a JSON report.

#include <iostream>

#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

run::SweepJob make_job(const workloads::Workload& w, const std::string& name,
                       const IpcCostModel& ipc, std::uint64_t m,
                       std::uint32_t iterations) {
  workloads::AppTraits traits;
  traits.iterations = iterations;
  traits.launches_per_iter = 1;
  traits.iter_h2d_bytes = 2 * 8 * m * m;
  traits.iter_d2h_bytes = 8 * m * m;
  traits.noncuda_guest_instrs = 0;

  run::SweepJob job;
  job.name = name;
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kAnalytic;
  job.config.calib.ipc = ipc;
  job.apps = {AppInstance{&w, m, traits}};
  return job;
}

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;
  constexpr std::uint64_t kM = 320;
  constexpr std::uint32_t kIters = 100;
  const run::SweepCli cli = run::parse_sweep_cli(argc, argv, "BENCH_ablation_ipc.json");

  std::cout << "== Ablation: IPC transport (Table 1 matmul loop, " << kIters
            << " iterations) ==\n\n";

  // The workload must outlive the sweep: AppInstance holds a pointer to it.
  const workloads::Workload w = workloads::make_matrix_mul();
  const IpcCostModel m_shm = IpcCostModel::shared_memory();
  const IpcCostModel m_sock = IpcCostModel::socket();

  const run::SweepRunner runner(cli.workers);
  const run::SweepResult sweep = runner.run({
      make_job(w, "shm", m_shm, kM, kIters),
      make_job(w, "socket", m_sock, kM, kIters),
  });
  const SimTime shm = sweep.find("shm").result.makespan_us;
  const SimTime sock = sweep.find("socket").result.makespan_us;

  TablePrinter t({"Transport", "per-msg (us)", "bandwidth (GB/s)", "Time (ms)", "vs shm"});
  t.add_row({"shared memory", fmt_fixed(m_shm.per_message_us, 0),
             fmt_fixed(m_shm.bandwidth_gbps, 1), fmt_ms(ms_from_us(shm)), "1.00"});
  t.add_row({"socket", fmt_fixed(m_sock.per_message_us, 0),
             fmt_fixed(m_sock.bandwidth_gbps, 1), fmt_ms(ms_from_us(sock)),
             fmt_ratio(sock / shm)});
  t.print(std::cout);
  std::cout << "\n(Data-heavy guest memcpys make the transport choice visible; the\n"
            << " paper's prototype defaults to shared memory for this reason.)\n";

  if (!try_write_sweep_json(sweep, "ablation_ipc", cli.json_path)) return 1;
  std::cout << "\n[sweep] " << sweep.jobs.size() << " scenarios on " << sweep.workers
            << " workers in " << fmt_fixed(sweep.wall_ms, 0) << " ms -> " << cli.json_path
            << "\n";
  if (!run::flush_trace()) return 1;
  return 0;
}
